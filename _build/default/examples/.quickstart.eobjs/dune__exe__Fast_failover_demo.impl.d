examples/fast_failover_demo.ml: Apps Evcore Eventsim Format Netcore Tmgr Workloads
