examples/fast_failover_demo.mli:
