examples/hula_demo.ml: Apps Array Evcore Eventsim Format Netcore Tmgr Workloads
