examples/hula_demo.mli:
