examples/microburst_demo.ml: Apps Evcore Eventsim Format List Netcore Workloads
