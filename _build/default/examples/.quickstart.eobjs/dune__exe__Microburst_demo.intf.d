examples/microburst_demo.mli:
