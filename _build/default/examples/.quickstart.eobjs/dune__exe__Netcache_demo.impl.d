examples/netcache_demo.ml: Apps Evcore Eventsim Format List Netcore Stats String
