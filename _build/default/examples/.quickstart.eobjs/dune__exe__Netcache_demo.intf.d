examples/netcache_demo.mli:
