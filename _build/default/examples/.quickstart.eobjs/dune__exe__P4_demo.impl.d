examples/p4_demo.ml: Array Devents Evcore Eventsim Format List Netcore P4dsl Pisa String Sys Workloads
