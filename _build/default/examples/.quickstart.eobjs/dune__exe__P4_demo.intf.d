examples/p4_demo.mli:
