examples/quickstart.ml: Array Devents Evcore Eventsim Format Netcore Pisa Printf Workloads
