examples/quickstart.mli:
