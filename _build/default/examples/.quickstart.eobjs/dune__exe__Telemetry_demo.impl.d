examples/telemetry_demo.ml: Apps Evcore Eventsim Format List Netcore Stats Tmgr Workloads
