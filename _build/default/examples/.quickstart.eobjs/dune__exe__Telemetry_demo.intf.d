examples/telemetry_demo.mli:
