examples/wfq_demo.ml: Apps Evcore Eventsim Format Hashtbl List Netcore Option Tmgr Workloads
