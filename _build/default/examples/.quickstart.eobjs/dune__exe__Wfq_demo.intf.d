examples/wfq_demo.mli:
