(* Fast re-route: a link-status-change event flips traffic to a backup
   path inside the data plane, a PHY detection delay (10us) after the
   failure — no control plane involved.

   Run with: dune exec examples/fast_failover_demo.exe *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host

let () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let mk id =
    let spec, app =
      Apps.Fast_reroute.program ~mode:Apps.Fast_reroute.Event_driven ~primary:1 ~backup:2 ()
    in
    (Event_switch.create ~sched ~id ~config ~program:spec (), app)
  in
  let sw_a, app_a = mk 0 in
  let sw_b, _ = mk 1 in
  let primary = Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  ignore (Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_b, 2) ());
  let src = Host.create ~sched ~id:0 () and dst = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:src ~switch:(sw_a, 0) ());
  ignore (Network.connect_host network ~host:dst ~switch:(sw_b, 0) ());

  let sent = ref 0 in
  ignore
    (Workloads.Traffic.cbr ~sched
       ~flow:
         (Netcore.Flow.make
            ~src:(Netcore.Ipv4_addr.of_string "10.0.0.1")
            ~dst:(Netcore.Ipv4_addr.of_string "10.0.1.1")
            ~src_port:7 ~dst_port:7 ())
       ~pkt_bytes:500 ~rate_gbps:2. ~stop:(Sim_time.ms 2)
       ~send:(fun pkt ->
         incr sent;
         Host.send src pkt)
       ());

  (* Fail the primary link at 1 ms. *)
  ignore (Scheduler.schedule sched ~at:(Sim_time.ms 1) (fun () -> Tmgr.Link.fail primary));
  Scheduler.run ~until:(Sim_time.ms 2 + Sim_time.us 500) sched;

  Format.printf "sent %d, delivered %d, lost %d@." !sent (Host.received dst)
    (!sent - Host.received dst);
  (match Apps.Fast_reroute.failover_time app_a with
  | Some t ->
      Format.printf "failover completed %a after the failure@." Sim_time.pp (t - Sim_time.ms 1)
  | None -> Format.printf "no failover?!@.");
  Format.printf "packets re-routed via backup: %d@." (Apps.Fast_reroute.switched_packets app_a)
