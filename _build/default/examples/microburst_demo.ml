(* The paper's Section 2 worked example: detect microburst culprits at
   ingress from exact per-flow buffer occupancy maintained by
   enqueue/dequeue event handlers.

   Run with: dune exec examples/microburst_demo.exe *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let flow i =
  Netcore.Flow.make
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
    ~src_port:(1000 + i) ~dst_port:80 ()

let () =
  let sched = Scheduler.create () in
  let spec, detector =
    Apps.Microburst.program ~threshold_bytes:20_000 ~out_port:(fun _ -> 3) ()
  in
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:3 (fun _ -> ());

  (* Polite background flows... *)
  for i = 0 to 3 do
    ignore
      (Traffic.cbr ~sched ~flow:(flow i) ~pkt_bytes:400 ~rate_gbps:0.5 ~stop:(Sim_time.ms 1)
         ~send:(fun pkt -> Event_switch.inject sw ~port:(i mod 3) pkt)
         ())
  done;
  (* ...and one culprit that dumps 60 KB at 20 Gb/s (two input ports at
     once) at t = 400us — faster than the 10 Gb/s output can drain. *)
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(flow 9) ~pkt_bytes:1000 ~count:30 ~rate_gbps:10.
           ~at:(Sim_time.us 400)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 0; 1 ];

  Scheduler.run ~until:(Sim_time.ms 1) sched;

  Format.printf "state allocated: %d bits@." (Apps.Microburst.state_bits detector);
  match Apps.Microburst.detections detector with
  | [] -> Format.printf "no culprits detected (unexpected!)@."
  | detections ->
      List.iter
        (fun (d : Apps.Microburst.detection) ->
          Format.printf "culprit: flow slot %d, occupancy %d bytes, detected at %a@."
            d.Apps.Microburst.flow_id d.Apps.Microburst.occupancy_bytes Sim_time.pp
            d.Apps.Microburst.time)
        detections
