(* NetCache-style in-network key-value caching with timer-driven
   statistics decay: the cache follows the workload when the hot key
   set shifts.

   Run with: dune exec examples/netcache_demo.exe *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host

let () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let spec, cache =
    Apps.Netcache.program ~cache_size:16 ~promote_threshold:5 ~decay_period:(Sim_time.ms 1)
      ~idle_windows:2 ~with_timers:true ~server_port:3
      ~client_port:(fun _ -> 0) ()
  in
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:0 (fun _ -> ());

  (* The key-value server behind port 3. *)
  let server = Host.create ~sched ~id:9 () in
  let server_load = ref 0 in
  Host.set_receiver server (fun h pkt ->
      match pkt.Packet.payload with
      | Apps.Netcache.Kv_get { key } ->
          incr server_load;
          let reply =
            Packet.udp_packet
              ~src:(Netcore.Ipv4_addr.host ~subnet:9 1)
              ~dst:(Netcore.Ipv4_addr.host ~subnet:3 0)
              ~src_port:11_211 ~dst_port:10_000 ~payload_len:64 ()
          in
          reply.Packet.payload <- Apps.Netcache.Kv_reply { key; from_cache = false };
          Host.send h reply
      | _ -> ());
  ignore (Network.connect_host network ~host:server ~switch:(sw, 3) ());

  (* Zipf GET stream; the hot set shifts by +1000 at 4 ms. *)
  let rng = Stats.Rng.create ~seed:7 in
  let zipf = Stats.Dist.zipf ~n:200 ~alpha:1.2 in
  for i = 0 to 3999 do
    let at = i * Sim_time.us 2 in
    ignore
      (Scheduler.schedule sched ~at (fun () ->
           let rank = Stats.Dist.zipf_draw rng zipf in
           let key = if at < Sim_time.ms 4 then rank else 1000 + rank in
           Event_switch.inject sw ~port:0 (Apps.Netcache.get_packet ~client:0 ~key)))
  done;

  Scheduler.run ~until:(Sim_time.ms 8 + Sim_time.ms 1) sched;
  Format.printf "hit ratio:   %.1f%%@." (100. *. Apps.Netcache.hit_ratio cache);
  Format.printf "server load: %d of 4000 requests@." !server_load;
  Format.printf "promotions:  %d, evictions: %d@." (Apps.Netcache.promotions cache)
    (Apps.Netcache.evictions cache);
  Format.printf "cached keys now (new hot set is 1001+): %s@."
    (String.concat ", " (List.map string_of_int (Apps.Netcache.cached_keys cache)))
