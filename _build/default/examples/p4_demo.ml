(* Load an event-driven P4 program from source and run it on the
   simulated switch under a microburst workload.

   Run with: dune exec examples/p4_demo.exe [FILE.p4]
   (defaults to the paper's microburst.p4, embedded) *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let source, origin =
    if Array.length Sys.argv > 1 then (read_file Sys.argv.(1), Sys.argv.(1))
    else (P4dsl.Loader.microburst_p4, "embedded microburst.p4")
  in
  Format.printf "loading %s (%d bytes of P4)...@." origin (String.length source);
  let spec = P4dsl.Loader.load ~name:origin source in
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:3 (fun _ -> ());
  Event_switch.on_notification sw (fun ~time msg ->
      Format.printf "[%a] notify <- %s@." Sim_time.pp time msg);

  (* Background flows plus one two-port culprit burst. *)
  let flow i =
    Netcore.Flow.make
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 i)
      ~src_port:(1000 + i) ~dst_port:80 ()
  in
  for i = 0 to 2 do
    ignore
      (Traffic.cbr ~sched ~flow:(flow i) ~pkt_bytes:500 ~rate_gbps:0.5 ~stop:(Sim_time.ms 1)
         ~send:(fun pkt -> Event_switch.inject sw ~port:i pkt)
         ())
  done;
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(flow 9) ~pkt_bytes:1000 ~count:40 ~rate_gbps:10.
           ~at:(Sim_time.us 300)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 0; 1 ];
  Scheduler.run ~until:(Sim_time.ms 1 + Sim_time.us 200) sched;

  let h cls = Event_switch.handled sw cls in
  Format.printf "@.ingress handled:  %d@." (h Devents.Event.Ingress_packet);
  Format.printf "enqueue handled:  %d@." (h Devents.Event.Buffer_enqueue);
  Format.printf "dequeue handled:  %d@." (h Devents.Event.Buffer_dequeue);
  Format.printf "notifications:    %d@." (Event_switch.notification_count sw);
  Format.printf "state allocated:  %d bits@."
    (Pisa.Register_alloc.total_bits (Event_switch.alloc sw))
