(* Quickstart: build an event-driven switch, install a program with
   packet AND event handlers, push some traffic through, look at what
   happened.

   Run with: dune exec examples/quickstart.exe *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch

let () =
  (* 1. A simulation clock. *)
  let sched = Scheduler.create () in

  (* 2. A program: count bytes enqueued per output port in a shared
     register (updated by enqueue events), report once per millisecond
     (timer event), forward everything from port 0 to port 1. *)
  let program ctx =
    let bytes_per_port =
      Program.shared_register ctx ~name:"port_bytes" ~entries:4 ~width:48
    in
    ignore (ctx.Program.add_timer ~period:(Sim_time.ms 1));
    Program.make ~name:"quickstart"
      ~ingress:(fun _ctx pkt ->
        pkt.Packet.meta.Packet.enq_meta.(0) <- 1 (* destination port *);
        pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
        Program.Forward 1)
      ~enqueue:(fun _ctx ev ->
        Devents.Shared_register.event_add bytes_per_port Devents.Shared_register.Enq_side
          ev.Event.meta.(0) ev.Event.meta.(1))
      ~timer:(fun ctx _ev ->
        ctx.Program.notify_monitor
          (Printf.sprintf "port1 saw %d bytes so far"
             (Devents.Shared_register.read bytes_per_port 1)))
      ()
  in

  (* 3. A switch running it, on the full event-driven architecture. *)
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program () in
  let delivered = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _pkt -> incr delivered);
  Event_switch.on_notification sw (fun ~time msg ->
      Format.printf "[%a] monitor <- %s@." Sim_time.pp time msg);

  (* 4. Traffic: 1 Gb/s of 500-byte packets for 3 ms. *)
  ignore
    (Workloads.Traffic.cbr ~sched
       ~flow:
         (Netcore.Flow.make
            ~src:(Netcore.Ipv4_addr.of_string "10.0.0.1")
            ~dst:(Netcore.Ipv4_addr.of_string "10.0.0.2")
            ~src_port:1234 ~dst_port:80 ())
       ~pkt_bytes:500 ~rate_gbps:1. ~stop:(Sim_time.ms 3)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());

  (* 5. Run and inspect. *)
  Scheduler.run ~until:(Sim_time.ms 3 + Sim_time.us 10) sched;
  Format.printf "@.delivered packets:       %d@." !delivered;
  Format.printf "ingress events handled:  %d@." (Event_switch.handled sw Event.Ingress_packet);
  Format.printf "enqueue events handled:  %d@." (Event_switch.handled sw Event.Buffer_enqueue);
  Format.printf "timer events handled:    %d@." (Event_switch.handled sw Event.Timer_expiration);
  Format.printf "pipeline busy fraction:  %.2f%%@."
    (100. *. Pisa.Pipeline.busy_fraction (Event_switch.pipeline sw))
