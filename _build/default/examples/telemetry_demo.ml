(* INT-style telemetry with event-driven aggregation: a congestion
   episode hits one output port; the switch reports once per window,
   and only anomalies — instead of one report per packet.

   Run with: dune exec examples/telemetry_demo.exe *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Int_telemetry.program
      ~strategy:
        (Apps.Int_telemetry.Aggregated
           {
             report_period = Sim_time.us 100;
             occupancy_threshold = 30_000;
             heartbeat_every = 10;
           })
      ~out_port:(fun _ -> 1) ()
  in
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let config =
    {
      config with
      Event_switch.tm_config =
        { config.Event_switch.tm_config with Tmgr.Traffic_manager.buffer_bytes = 64_000 };
    }
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  Event_switch.on_notification sw (fun ~time msg ->
      Format.printf "[%a] %s@." Sim_time.pp time msg);
  let flow i =
    Netcore.Flow.make
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
      ~src_port:(1000 + i) ~dst_port:80 ()
  in
  ignore
    (Traffic.poisson ~sched ~rng:(Stats.Rng.create ~seed:3) ~flow:(flow 0) ~pkt_bytes:500
       ~rate_pps:500_000. ~stop:(Sim_time.ms 2)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(flow port) ~pkt_bytes:1000 ~count:60 ~rate_gbps:10.
           ~at:(Sim_time.ms 1)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 2; 3 ];
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  Format.printf "@.packets forwarded: %d@." (Apps.Int_telemetry.packets_forwarded app);
  Format.printf "monitor reports:   %d (a per-packet INT sink would have sent %d)@."
    (Apps.Int_telemetry.report_count app)
    (Apps.Int_telemetry.packets_forwarded app)
