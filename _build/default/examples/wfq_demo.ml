(* Weighted fair queueing from dequeue events + a PIFO scheduler
   (paper §3: programmable packet scheduling). Two flows with weights
   1 and 3 overload one port; goodput splits ~1:3.

   Run with: dune exec examples/wfq_demo.exe *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Event_switch = Evcore.Event_switch

let () =
  let sched = Scheduler.create () in
  let f1 =
    Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 1) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
      ~src_port:1001 ~dst_port:80 ()
  in
  let f2 =
    Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 2) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 2)
      ~src_port:1002 ~dst_port:80 ()
  in
  let slot f = Netcore.Hashes.fold_range (Flow.hash f) 64 in
  let spec, _ =
    Apps.Wfq.program ~slots:64
      ~weight_of:(fun ~flow_slot -> if flow_slot = slot f2 then 3 else 1)
      ~out_port:(fun _ -> 3) ()
  in
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let config =
    {
      config with
      Event_switch.tm_config =
        {
          config.Event_switch.tm_config with
          Tmgr.Traffic_manager.policy = Tmgr.Traffic_manager.Pifo_sched;
          (* The PIFO's rank-based eviction must be the binding drop
             mechanism (worst rank evicted on overflow) — a blind
             shared byte pool would equalise loss across flows and
             erase the weights. *)
          pifo_capacity = 128;
          buffer_bytes = 4 * 1024 * 1024;
        };
    }
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let bytes = Hashtbl.create 4 in
  Event_switch.set_port_tx sw ~port:3 (fun pkt ->
      match Packet.flow pkt with
      | Some f ->
          let k = f.Flow.src_port in
          Hashtbl.replace bytes k
            (Packet.len pkt + Option.value (Hashtbl.find_opt bytes k) ~default:0)
      | None -> ());
  List.iter
    (fun flow ->
      ignore
        (Workloads.Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:10. ~stop:(Sim_time.ms 1)
           ~send:(fun pkt -> Event_switch.inject sw ~port:(flow.Flow.src_port mod 2) pkt)
           ()))
    [ f1; f2 ];
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  let got f = Option.value (Hashtbl.find_opt bytes f.Flow.src_port) ~default:0 in
  Format.printf "flow 1 (weight 1): %.2f Gb/s@." (float_of_int (got f1 * 8) /. 1e-3 /. 1e9);
  Format.printf "flow 2 (weight 3): %.2f Gb/s@." (float_of_int (got f2 * 8) /. 1e-3 /. 1e9);
  Format.printf "share ratio:       %.2f (weights say 3.0)@."
    (float_of_int (got f2) /. float_of_int (max 1 (got f1)))
