lib/apps/aqm.ml: Array Devents Evcore Eventsim Float Netcore Stats
