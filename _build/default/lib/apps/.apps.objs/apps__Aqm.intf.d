lib/apps/aqm.mli: Evcore Eventsim Netcore
