lib/apps/cms_reset.ml: Devents Evcore Eventsim Hashtbl List Netcore Pisa Stats
