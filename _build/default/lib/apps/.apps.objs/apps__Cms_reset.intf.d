lib/apps/cms_reset.mli: Evcore Eventsim Netcore Stats
