lib/apps/ecn_mark.ml: Array Devents Evcore Netcore Printf
