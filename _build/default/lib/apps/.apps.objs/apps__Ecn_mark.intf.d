lib/apps/ecn_mark.mli: Evcore Netcore
