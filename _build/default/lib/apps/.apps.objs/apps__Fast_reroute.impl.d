lib/apps/fast_reroute.ml: Devents Evcore Eventsim Netcore Pisa
