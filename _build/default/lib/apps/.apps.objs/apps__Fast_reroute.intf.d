lib/apps/fast_reroute.mli: Evcore Eventsim
