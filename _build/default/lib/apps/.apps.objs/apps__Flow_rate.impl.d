lib/apps/flow_rate.ml: Array Devents Evcore Eventsim List Netcore Pisa Stats
