lib/apps/flow_rate.mli: Evcore Eventsim Netcore
