lib/apps/hula.ml: Array Devents Evcore Eventsim Float Fun Hashtbl List Netcore Pisa Printf Stats Workloads
