lib/apps/hula.mli: Evcore Eventsim Netcore Workloads
