lib/apps/int_telemetry.ml: Array Devents Evcore Eventsim List Netcore Pisa Printf
