lib/apps/int_telemetry.mli: Evcore Eventsim Netcore
