lib/apps/liveness.ml: Devents Evcore Eventsim Netcore Pisa Printf
