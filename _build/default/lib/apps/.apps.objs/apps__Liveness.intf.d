lib/apps/liveness.mli: Evcore Eventsim Netcore
