lib/apps/microburst.ml: Array Devents Evcore List Netcore
