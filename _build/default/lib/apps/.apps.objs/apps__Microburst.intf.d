lib/apps/microburst.mli: Evcore Netcore
