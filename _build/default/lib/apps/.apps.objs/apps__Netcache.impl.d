lib/apps/netcache.ml: Devents Evcore Eventsim Hashtbl Int List Netcore Pisa
