lib/apps/netcache.mli: Evcore Eventsim Netcore
