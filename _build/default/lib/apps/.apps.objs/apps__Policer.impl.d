lib/apps/policer.ml: Array Devents Evcore Eventsim Netcore Pisa
