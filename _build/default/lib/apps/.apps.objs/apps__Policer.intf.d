lib/apps/policer.mli: Evcore Eventsim Netcore
