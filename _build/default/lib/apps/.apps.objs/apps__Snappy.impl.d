lib/apps/snappy.ml: Array Evcore List Netcore Pisa Printf
