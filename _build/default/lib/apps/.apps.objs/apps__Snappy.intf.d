lib/apps/snappy.mli: Evcore Netcore
