lib/apps/state_migration.ml: Devents Evcore Eventsim Netcore Pisa
