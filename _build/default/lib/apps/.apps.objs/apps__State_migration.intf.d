lib/apps/state_migration.mli: Evcore Eventsim Netcore
