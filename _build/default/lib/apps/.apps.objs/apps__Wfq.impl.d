lib/apps/wfq.ml: Array Devents Evcore Netcore Pisa
