lib/apps/wfq.mli: Evcore Netcore
