module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Event = Devents.Event
module Program = Evcore.Program
module Shared_register = Devents.Shared_register

type policy =
  | Taildrop
  | Red of { min_th : int; max_th : int; max_p : float; weight : float }
  | Fred of { multiplier : float }
  | Pie of {
      target_delay : Eventsim.Sim_time.t;
      update_period : Eventsim.Sim_time.t;
      alpha : float;
      beta : float;
    }

type t = {
  mutable early_drops : int;
  mutable ecn_marks : int;
  mutable reg : Shared_register.t option;
  mutable flow_count_reg : Shared_register.t option;
  avg : Stats.Ewma.t;
  mutable active : int;
  mutable bits : int;
  mutable drop_p : float; (* PIE *)
  mutable old_delay_sec : float;
  mutable deq_bytes_window : int;
}

let early_drops t = t.early_drops
let ecn_marks t = t.ecn_marks
let active_flows t = t.active
let avg_queue_bytes t = Stats.Ewma.value t.avg

let drop_probability t = t.drop_p

let flow_occupancy t ~flow_slot =
  match t.reg with None -> 0 | Some r -> Shared_register.read r flow_slot

let state_bits t = t.bits

let program ?(slots = 256) ?(mark_instead_of_drop = false) ~policy ~buffer_bytes ~out_port () =
  let weight = match policy with Red r -> r.weight | Taildrop | Fred _ | Pie _ -> 0.2 in
  let t =
    {
      early_drops = 0;
      ecn_marks = 0;
      reg = None;
      flow_count_reg = None;
      avg = Stats.Ewma.create ~alpha:weight;
      active = 0;
      bits = 0;
      drop_p = 0.;
      old_delay_sec = 0.;
      deq_bytes_window = 0;
    }
  in
  let spec ctx =
    (* Per-flow occupancy + per-flow packet counts (to track active
       flows) + total occupancy, all exact via enqueue/dequeue
       events. *)
    let flow_occ = Program.shared_register ctx ~name:"aqm_flow_occ" ~entries:slots ~width:32 in
    let flow_pkts = Program.shared_register ctx ~name:"aqm_flow_pkts" ~entries:slots ~width:32 in
    let total_occ = Program.shared_register ctx ~name:"aqm_total_occ" ~entries:1 ~width:32 in
    t.reg <- Some flow_occ;
    t.flow_count_reg <- Some flow_pkts;
    t.bits <-
      Shared_register.total_bits flow_occ + Shared_register.total_bits flow_pkts
      + Shared_register.total_bits total_occ;
    let flow_slot pkt =
      match Packet.flow pkt with
      | Some flow -> Netcore.Hashes.fold_range (Flow.hash flow) slots
      | None -> 0
    in
    let ingress ctx pkt =
      let fid = flow_slot pkt in
      pkt.Packet.meta.Packet.flow_id <- fid;
      pkt.Packet.meta.Packet.enq_meta.(0) <- fid;
      pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
      pkt.Packet.meta.Packet.deq_meta.(0) <- fid;
      pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
      let drop_or_mark () =
        if mark_instead_of_drop then begin
          t.ecn_marks <- t.ecn_marks + 1;
          (* Multi-bit congestion mark: quantised queue occupancy. *)
          pkt.Packet.meta.Packet.mark <-
            min 15 (Shared_register.read total_occ 0 * 16 / max 1 buffer_bytes);
          Program.Forward (out_port pkt)
        end
        else begin
          t.early_drops <- t.early_drops + 1;
          Program.Drop
        end
      in
      match policy with
      | Taildrop -> Program.Forward (out_port pkt)
      | Red { min_th; max_th; max_p; weight = _ } ->
          (* Refresh the average from the event-maintained occupancy on
             every arrival, so the estimate tracks the queue draining
             even while early drops suppress enqueue events. *)
          let avg = Stats.Ewma.update t.avg (float_of_int (Shared_register.read total_occ 0)) in
          if avg <= float_of_int min_th then Program.Forward (out_port pkt)
          else if avg >= float_of_int max_th then drop_or_mark ()
          else
            let p =
              max_p *. (avg -. float_of_int min_th) /. float_of_int (max_th - min_th)
            in
            if Stats.Rng.float ctx.Program.rng < p then drop_or_mark ()
            else Program.Forward (out_port pkt)
      | Fred { multiplier } ->
          let occ = Shared_register.read flow_occ fid in
          let fair =
            float_of_int buffer_bytes /. float_of_int (max 1 t.active) *. multiplier
          in
          if float_of_int occ > fair then drop_or_mark () else Program.Forward (out_port pkt)
      | Pie _ ->
          if t.drop_p > 0. && Stats.Rng.float ctx.Program.rng < t.drop_p then drop_or_mark ()
          else Program.Forward (out_port pkt)
    in
    (match policy with
    | Pie { update_period; _ } -> ignore (ctx.Program.add_timer ~period:update_period)
    | Taildrop | Red _ | Fred _ -> ());
    let timer =
      match policy with
      | Pie { target_delay; update_period; alpha; beta } ->
          let target_sec = Eventsim.Sim_time.to_sec target_delay in
          let period_sec = Eventsim.Sim_time.to_sec update_period in
          Some
            (fun _ctx (_ev : Event.timer_event) ->
              (* Queueing delay estimate: occupancy / departure rate
                 over the last window, both derived from events. *)
              let occ = float_of_int (Shared_register.true_value total_occ 0) in
              let rate = float_of_int t.deq_bytes_window /. period_sec in
              t.deq_bytes_window <- 0;
              let delay = if rate > 0. then occ /. rate else if occ > 0. then 1. else 0. in
              let p' =
                t.drop_p
                +. (alpha *. (delay -. target_sec))
                +. (beta *. (delay -. t.old_delay_sec))
              in
              t.old_delay_sec <- delay;
              t.drop_p <- Float.max 0. (Float.min 1. p'))
      | Taildrop | Red _ | Fred _ -> None
    in
    let enqueue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add flow_occ Shared_register.Enq_side ev.Event.meta.(0)
        ev.Event.meta.(1);
      Shared_register.event_add flow_pkts Shared_register.Enq_side ev.Event.meta.(0) 1;
      Shared_register.event_add total_occ Shared_register.Enq_side 0 ev.Event.meta.(1);
      if Shared_register.true_value flow_pkts ev.Event.meta.(0) = 1 then t.active <- t.active + 1;
      ignore (Stats.Ewma.update t.avg (float_of_int (Shared_register.true_value total_occ 0)))
    in
    let dequeue _ctx (ev : Event.buffer_event) =
      t.deq_bytes_window <- t.deq_bytes_window + ev.Event.meta.(1);
      Shared_register.event_add flow_occ Shared_register.Deq_side ev.Event.meta.(0)
        (-ev.Event.meta.(1));
      Shared_register.event_add flow_pkts Shared_register.Deq_side ev.Event.meta.(0) (-1);
      Shared_register.event_add total_occ Shared_register.Deq_side 0 (-ev.Event.meta.(1));
      if Shared_register.true_value flow_pkts ev.Event.meta.(0) = 0 then
        t.active <- max 0 (t.active - 1)
    in
    Program.make ~name:"aqm" ~ingress ~enqueue ~dequeue ?timer ()
  in
  (spec, t)
