(** Active queue management from congestion signals derived from
    enqueue/dequeue events (§3 Traffic Management, §5 "Computing
    Congestion Signals").

    Three drop policies over the same forwarding program:
    - [Taildrop]: no AQM; the traffic manager drops on overflow.
    - [Red]: random early detection on the EWMA of total buffer
      occupancy — the occupancy is exact because enqueue and dequeue
      events update it; the EWMA is refreshed on every enqueue event.
    - [Fred]: flow-level fairness a la FRED: per-active-flow buffer
      occupancy (exact, from events) plus active-flow count; a packet
      whose flow already holds more than [fair share * multiplier]
      bytes of the buffer is dropped at ingress.

    None of these are implementable on a baseline PISA architecture
    without approximations, which is the paper's point; E11 compares
    the fairness they achieve. *)

type policy =
  | Taildrop
  | Red of { min_th : int; max_th : int; max_p : float; weight : float }
  | Fred of { multiplier : float }
  | Pie of {
      target_delay : Eventsim.Sim_time.t;
      update_period : Eventsim.Sim_time.t;
      alpha : float;
      beta : float;
    }
      (** PIE (Pan et al., HPSR'13): a timer event periodically updates
          the drop probability from the estimated queueing delay
          (occupancy / departure rate, both event-maintained);
          ingress drops with that probability. *)

type t

val early_drops : t -> int
val ecn_marks : t -> int
val drop_probability : t -> float
(** PIE's current drop probability (0 for other policies). *)

val active_flows : t -> int
val avg_queue_bytes : t -> float
val flow_occupancy : t -> flow_slot:int -> int
val state_bits : t -> int

val program :
  ?slots:int ->
  ?mark_instead_of_drop:bool ->
  policy:policy ->
  buffer_bytes:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [mark_instead_of_drop] turns RED drops into multi-bit ECN marks in
    [pkt.meta.mark] (the paper's "variants of ECN marking, with packets
    carrying multiple bits"). *)
