module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Program = Evcore.Program
module Cms = Pisa.Cms
module Scheduler = Eventsim.Scheduler

type mode = Timer_reset | Control_plane_reset of Evcore.Control_plane.t

type window_report = {
  window_index : int;
  boundary_time : int;
  heavy_hitters : (int * int) list;
}

type t = {
  mutable reports : window_report list;
  mutable resets : int;
  mutable bits : int;
  reset_lag : Stats.Welford.t;
  mutable touched : (int, unit) Hashtbl.t;
      (* keys seen this window, to enumerate candidates *)
}

let reports t = List.rev t.reports
let resets t = t.resets
let state_bits t = t.bits
let reset_lag t = t.reset_lag

let program ~mode ~window ~threshold_packets ?(cms_width = 1024) ?(cms_depth = 3) ~out_port () =
  let t =
    {
      reports = [];
      resets = 0;
      bits = 0;
      reset_lag = Stats.Welford.create ();
      touched = Hashtbl.create 64;
    }
  in
  let spec ctx =
    let cms =
      Cms.create ~alloc:ctx.Program.alloc ~name:"hh_cms" ~width:cms_width ~depth:cms_depth
        ~counter_bits:32 ()
    in
    t.bits <- Cms.bits cms;
    let window_index = ref 0 in
    let do_reset () =
      let now = ctx.Program.now () in
      let ideal = (!window_index + 1) * window in
      Stats.Welford.add t.reset_lag (Eventsim.Sim_time.to_ns (max 0 (now - ideal)));
      let heavy_hitters =
        Hashtbl.fold
          (fun key () acc ->
            let est = Cms.query cms ~key in
            if est >= threshold_packets then (key, est) :: acc else acc)
          t.touched []
      in
      t.reports <-
        { window_index = !window_index; boundary_time = now; heavy_hitters } :: t.reports;
      incr window_index;
      Hashtbl.reset t.touched;
      Cms.reset cms;
      t.resets <- t.resets + 1
    in
    (match mode with
    | Timer_reset -> ignore (ctx.Program.add_timer ~period:window)
    | Control_plane_reset cp ->
        (* The CPU asks for a reset every window; the request pays the
           channel costs before it lands on the device. *)
        ignore (Evcore.Control_plane.periodic cp ~period:window do_reset));
    let ingress _ctx pkt =
      let key =
        match Packet.flow pkt with
        | Some flow -> Flow.hash_addresses flow land 0xffffff
        | None -> 0
      in
      Cms.update cms ~key ~delta:1;
      Hashtbl.replace t.touched key ();
      Program.Forward (out_port pkt)
    in
    let timer =
      match mode with
      | Timer_reset -> Some (fun _ctx (_ev : Devents.Event.timer_event) -> do_reset ())
      | Control_plane_reset _ -> None
    in
    Program.make ~name:"cms-heavy-hitters" ~ingress ?timer ()
  in
  (spec, t)
