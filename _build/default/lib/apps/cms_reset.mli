(** Windowed heavy-hitter detection with a count-min sketch that must
    be reset every measurement window (§1: "when a CMS is used in a
    baseline PISA architecture, the control plane must be responsible
    for performing the reset operation").

    Two variants of the same program:
    - [Timer_reset]: a data-plane timer event zeroes the sketch at
      exact window boundaries — no control-plane involvement.
    - [Control_plane_reset]: a control-plane agent is asked to reset
      every window; each reset pays channel latency + jitter and queues
      under the agent's op-rate limit, so windows stretch and samples
      from the previous window pollute the next (E7 measures both the
      control-channel op volume and the resulting detection error).

    At each window boundary (just before the reset takes effect) the
    flows whose estimate exceeds the threshold are recorded as that
    window's heavy hitters. *)

type mode = Timer_reset | Control_plane_reset of Evcore.Control_plane.t

type window_report = {
  window_index : int;
  boundary_time : int;  (** when the reset actually happened *)
  heavy_hitters : (int * int) list;  (** (key, estimated packets) *)
}

type t

val reports : t -> window_report list
val resets : t -> int
val state_bits : t -> int
val reset_lag : t -> Stats.Welford.t
(** Actual reset time minus ideal window boundary, in ns. *)

val program :
  mode:mode ->
  window:Eventsim.Sim_time.t ->
  threshold_packets:int ->
  ?cms_width:int ->
  ?cms_depth:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
