module Packet = Netcore.Packet
module Event = Devents.Event
module Program = Evcore.Program
module Shared_register = Devents.Shared_register

type t = {
  mutable marks_applied : int;
  mutable reg : Shared_register.t option;
}

let marks_applied t = t.marks_applied

let occupancy_bytes t =
  match t.reg with None -> 0 | Some r -> Shared_register.read r 0

let quantise ~buffer_bytes ~levels occ =
  if occ <= 0 then 0 else min (levels - 1) (occ * levels / max 1 buffer_bytes)

let program ~levels ~buffer_bytes ~out_port () =
  if levels < 2 then invalid_arg "Ecn_mark.program: need at least 2 levels";
  let t = { marks_applied = 0; reg = None } in
  let spec ctx =
    let occ = Program.shared_register ctx ~name:"ecn_occ" ~entries:1 ~width:32 in
    t.reg <- Some occ;
    let ingress _ctx pkt =
      pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
      pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
      let level = quantise ~buffer_bytes ~levels (Shared_register.read occ 0) in
      if level > pkt.Packet.meta.Packet.mark then begin
        pkt.Packet.meta.Packet.mark <- level;
        t.marks_applied <- t.marks_applied + 1
      end;
      Program.Forward (out_port pkt)
    in
    let enqueue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add occ Shared_register.Enq_side 0 ev.Event.meta.(1)
    in
    let dequeue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add occ Shared_register.Deq_side 0 (-ev.Event.meta.(1))
    in
    Program.make ~name:(Printf.sprintf "ecn-%d-level" levels) ~ingress ~enqueue ~dequeue ()
  in
  (spec, t)
