(** Multi-bit ECN marking (§3 Congestion Aware Forwarding: "variants
    of ECN marking, with packets carrying multiple bits rather than
    just one, to communicate queue occupancy along the path, or just
    the maximum queue occupancy at the bottleneck").

    Each switch on the path maintains its exact buffer occupancy from
    enqueue/dequeue events and stamps every transit packet with
    [max(pkt.mark, quantised local occupancy)] — so the receiver reads
    the bottleneck's occupancy in [levels] steps. A single-bit marker
    ([levels = 2]) degenerates to classic ECN for comparison. *)

type t

val marks_applied : t -> int
(** Packets whose mark this switch raised. *)

val occupancy_bytes : t -> int
(** Current (event-maintained) total occupancy of this switch. *)

val quantise : buffer_bytes:int -> levels:int -> int -> int
(** The marking function: occupancy -> level in [\[0, levels)]. *)

val program :
  levels:int ->
  buffer_bytes:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
