module Packet = Netcore.Packet
module Program = Evcore.Program
module Event = Devents.Event

type mode =
  | Event_driven
  | Cp_polling of { cp : Evcore.Control_plane.t; poll_period : Eventsim.Sim_time.t }

type t = {
  mutable failover_time : int option;
  mutable failback_time : int option;
  mutable using_backup : bool;
  mutable switched_packets : int;
}

let failover_time t = t.failover_time
let failback_time t = t.failback_time
let using_backup t = t.using_backup
let switched_packets t = t.switched_packets

let program ~mode ~primary ~backup () =
  let t =
    { failover_time = None; failback_time = None; using_backup = false; switched_packets = 0 }
  in
  let spec ctx =
    (* active-path register: 0 = primary, 1 = backup. *)
    let active =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"frr_active" ~entries:1 ~width:1
    in
    let switch_to now backup_on =
      Pisa.Register_array.write active 0 (if backup_on then 1 else 0);
      t.using_backup <- backup_on;
      if backup_on then begin
        if t.failover_time = None then t.failover_time <- Some now
      end
      else if t.failover_time <> None && t.failback_time = None then t.failback_time <- Some now
    in
    (match mode with
    | Event_driven -> ()
    | Cp_polling { cp; poll_period } ->
        (* CPU-side poll loop: read the PHY status (one channel
           crossing); on a change, issue a table update (a second
           crossing). *)
        ignore
          (Evcore.Control_plane.periodic cp ~period:poll_period (fun () ->
               let up = ctx.Program.link_is_up primary in
               if (not up) && not t.using_backup then
                 Evcore.Control_plane.submit cp (fun () ->
                     switch_to (ctx.Program.now ()) true)
               else if up && t.using_backup then
                 Evcore.Control_plane.submit cp (fun () ->
                     switch_to (ctx.Program.now ()) false))));
    let ingress _ctx pkt =
      let ingress_port = pkt.Packet.meta.Packet.ingress_port in
      if ingress_port = primary || ingress_port = backup then Program.Forward 0
      else begin
        let use_backup = Pisa.Register_array.read active 0 = 1 in
        if use_backup then begin
          t.switched_packets <- t.switched_packets + 1;
          Program.Forward backup
        end
        else Program.Forward primary
      end
    in
    let link_change =
      match mode with
      | Event_driven ->
          Some
            (fun ctx (ev : Event.link_event) ->
              if ev.Event.port = primary then switch_to (ctx.Program.now ()) (not ev.Event.up))
      | Cp_polling _ -> None
    in
    Program.make ~name:"fast-reroute" ~ingress ?link_change ()
  in
  (spec, t)
