(** Fast re-route (§3 Network Management, §5 "Fast Re-Route").

    The program forwards all transit traffic over a primary port with a
    preconfigured backup. Failover:

    - [Event_driven]: the Link Status Change event flips the active
      path inside the pipeline, one PHY detection delay after the
      failure — no control-plane round trip.
    - [Cp_polling]: a baseline switch has no link events; the control
      plane polls the PHY's status register every [poll_period] and,
      on seeing the port down, pays another channel crossing to update
      the forwarding state. Packets arriving in the window keep going
      to the dead link (E12 counts them). *)

type mode =
  | Event_driven
  | Cp_polling of { cp : Evcore.Control_plane.t; poll_period : Eventsim.Sim_time.t }

type t

val failover_time : t -> int option
(** When the active path flipped to backup (None = never). *)

val failback_time : t -> int option
val using_backup : t -> bool
val switched_packets : t -> int
(** Packets forwarded via the backup path. *)

val program :
  mode:mode -> primary:int -> backup:int -> unit -> Evcore.Program.spec * t
(** Traffic arriving on [primary] or [backup] is delivered to port 0
    (the host side); everything else transits over the active path. *)
