module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Program = Evcore.Program
module Sliding_window = Stats.Sliding_window

type t = {
  mutable windows : Sliding_window.t array;
  mutable sample_log : (int * (float * float)) list; (* slot, (t_sec, bps) *)
  mutable rotations : int;
  mutable bits : int;
  slots : int;
}

let estimate_bps t ~flow_slot = Sliding_window.completed_rate t.windows.(flow_slot)

let samples t ~flow_slot =
  List.rev
    (List.filter_map
       (fun (slot, s) -> if slot = flow_slot then Some s else None)
       t.sample_log)

let rotations t = t.rotations
let state_bits t = t.bits

let program ?(slots = 256) ?(window_slices = 8) ~slice ~out_port () =
  let slice_sec = Eventsim.Sim_time.to_sec slice in
  let t =
    {
      windows = [||];
      sample_log = [];
      rotations = 0;
      bits = 0;
      slots;
    }
  in
  let spec ctx =
    (* The shift register: [slots] flows x [window_slices] slices of a
       32-bit byte counter. Charged as real register state. *)
    let backing =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"rate_shift_reg"
        ~entries:(slots * window_slices) ~width:32
    in
    t.bits <- Pisa.Register_array.bits backing;
    t.windows <-
      Array.init slots (fun _ -> Sliding_window.create ~slots:window_slices ~slot_width:slice_sec);
    ignore (ctx.Program.add_timer ~period:slice);
    let ingress _ctx pkt =
      let slot =
        match Packet.flow pkt with
        | Some flow -> Netcore.Hashes.fold_range (Flow.hash_addresses flow) slots
        | None -> 0
      in
      Sliding_window.add t.windows.(slot) (float_of_int (Packet.len pkt));
      Program.Forward (out_port pkt)
    in
    let timer ctx (_ev : Devents.Event.timer_event) =
      t.rotations <- t.rotations + 1;
      let now_sec = Eventsim.Sim_time.to_sec (ctx.Program.now ()) in
      Array.iteri
        (fun slot w ->
          if Sliding_window.sum w > 0. then
            t.sample_log <- (slot, (now_sec, Sliding_window.completed_rate w)) :: t.sample_log;
          Sliding_window.rotate w)
        t.windows
    in
    Program.make ~name:"flow-rate" ~ingress ~timer ()
  in
  (spec, t)
