(** Time-windowed flow-rate measurement (§5, "Time-Windowed Network
    Measurement"): timer events rotate a shift register of
    per-interval byte counts, giving a sliding-window rate estimate
    entirely in the data plane. *)

type t

val estimate_bps : t -> flow_slot:int -> float
(** Current windowed estimate in bytes/sec for a flow slot. *)

val samples : t -> flow_slot:int -> (float * float) list
(** (time_sec, estimate_bps) samples recorded at each rotation for the
    given slot, oldest first. *)

val rotations : t -> int
val state_bits : t -> int

val program :
  ?slots:int ->
  ?window_slices:int ->
  slice:Eventsim.Sim_time.t ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** The window is [window_slices * slice] (defaults: 8 slices). A
    timer fires every [slice] to rotate all per-flow shift
    registers. *)
