module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Ethernet = Netcore.Ethernet
module Mac_addr = Netcore.Mac_addr
module Program = Evcore.Program
module Event = Devents.Event
module Topology = Workloads.Topology

type Packet.payload += Hula_probe of { origin_leaf : int; mutable max_util : int }

type params = {
  num_leaves : int;
  num_spines : int;
  hosts_per_leaf : int;
  link_rate_gbps : float;
  probe_period : Eventsim.Sim_time.t;
  util_period : Eventsim.Sim_time.t;
  util_alpha : float;
  flowlet_timeout : Eventsim.Sim_time.t option;
}

let default_params =
  {
    num_leaves = 4;
    num_spines = 4;
    hosts_per_leaf = 4;
    link_rate_gbps = 10.;
    probe_period = Eventsim.Sim_time.us 100;
    util_period = Eventsim.Sim_time.us 100;
    util_alpha = 0.3;
    flowlet_timeout = None;
  }

type mode =
  | Event_driven
  | No_probes (* plain flow-hash ECMP: the probe-less baseline *)
  | Cp_probes of {
      cp : Evcore.Control_plane.t;
      inject : (int -> Netcore.Packet.t -> unit) ref;
    }

type leaf_state = {
  best_hop_reg : Pisa.Register_array.t; (* per dst leaf: uplink port *)
  best_util_reg : Pisa.Register_array.t; (* per dst leaf: per-mille util *)
  util : Stats.Ewma.t array; (* per port *)
}

type t = {
  params : params;
  mode : mode;
  mutable leaves : (int, leaf_state) Hashtbl.t;
  probe_arrivals : (int * int, int list ref) Hashtbl.t;
  origin_times : (int, int list ref) Hashtbl.t; (* leaf -> origination instants *)
  mutable hop_changes : int;
  mutable probes_originated : int;
  mutable probes_delivered : int;
}

let create params mode =
  {
    params;
    mode;
    leaves = Hashtbl.create 8;
    probe_arrivals = Hashtbl.create 32;
    origin_times = Hashtbl.create 8;
    hop_changes = 0;
    probes_originated = 0;
    probes_delivered = 0;
  }

let probe_packet ~origin_leaf =
  let eth =
    Ethernet.make ~dst:Mac_addr.broadcast
      ~src:(Mac_addr.switch_port ~switch:origin_leaf ~port:0)
      ~ethertype:Ethernet.ethertype_event
  in
  Packet.create ~eth ~payload:(Hula_probe { origin_leaf; max_util = 0 }) ~payload_len:16 ()

let data_packet ~src_leaf ~src_host ~dst_leaf ~dst_host ~bytes =
  let payload_len =
    max 0 (bytes - Netcore.Ethernet.size - Netcore.Ipv4.size - Netcore.Udp.size)
  in
  Packet.udp_packet
    ~src:(Ipv4_addr.host ~subnet:src_leaf src_host)
    ~dst:(Ipv4_addr.host ~subnet:dst_leaf dst_host)
    ~src_port:(5000 + src_host) ~dst_port:(6000 + dst_host) ~payload_len ()

let dst_leaf_of pkt =
  match pkt.Packet.ip with
  | Some ip -> (Ipv4_addr.to_int ip.Netcore.Ipv4.dst lsr 16) land 0xff
  | None -> -1

let dst_host_of pkt =
  match pkt.Packet.ip with
  | Some ip -> Ipv4_addr.to_int ip.Netcore.Ipv4.dst land 0xffff
  | None -> 0

(* Shared per-switch utilisation machinery: transmit-side byte
   counters per port (fed by Packet-Transmitted events), decayed into
   an EWMA of link utilisation each util window. A probe arriving on
   port [p] reads the tx utilisation of [p] — the direction data
   towards the probe's origin will flow. *)
let make_util_tracker t ctx ~num_ports =
  let tx_bytes =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"hula_tx_bytes" ~entries:num_ports
      ~width:48
  in
  let util = Array.init num_ports (fun _ -> Stats.Ewma.create ~alpha:t.params.util_alpha) in
  let window_bits =
    t.params.link_rate_gbps *. 1e9 *. Eventsim.Sim_time.to_sec t.params.util_period
  in
  let sample () =
    Array.iteri
      (fun port e ->
        let bytes = Pisa.Register_array.read tx_bytes port in
        Pisa.Register_array.write tx_bytes port 0;
        ignore (Stats.Ewma.update e (float_of_int (bytes * 8) /. window_bits)))
      util
  in
  let on_transmit (ev : Event.transmit_event) =
    if ev.Event.port >= 0 && ev.Event.port < num_ports then
      ignore (Pisa.Register_array.add tx_bytes ev.Event.port ev.Event.pkt_len)
  in
  (util, sample, on_transmit)

let per_mille e = int_of_float (Float.min 1000. (Stats.Ewma.value e *. 1000.))

let leaf_program t leaf_id : Program.spec =
 fun ctx ->
  let p = t.params in
  let num_ports = p.hosts_per_leaf + p.num_spines in
  let best_hop_reg =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"hula_best_hop" ~entries:p.num_leaves
      ~width:8
  in
  let best_util_reg =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"hula_best_util" ~entries:p.num_leaves
      ~width:10
  in
  Pisa.Register_array.fill best_hop_reg 0xff (* 0xff = no probe yet *);
  Pisa.Register_array.fill best_util_reg 1000;
  (* Flowlet state: per flow slot, the assigned uplink and the last
     packet time (HULA Sec 4.2). *)
  let flowlet_slots = 256 in
  let flowlet_hop =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"hula_flowlet_hop" ~entries:flowlet_slots
      ~width:8
  in
  let flowlet_last =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"hula_flowlet_last"
      ~entries:flowlet_slots ~width:62
  in
  Pisa.Register_array.fill flowlet_hop 0xff;
  let util, sample_util, on_transmit = make_util_tracker t ctx ~num_ports in
  Hashtbl.replace t.leaves leaf_id { best_hop_reg; best_util_reg; util };
  ignore (ctx.Program.add_timer ~period:p.util_period);
  let record_origination () =
    t.probes_originated <- t.probes_originated + 1;
    let cell =
      match Hashtbl.find_opt t.origin_times leaf_id with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace t.origin_times leaf_id c;
          c
    in
    cell := ctx.Program.now () :: !cell
  in
  (match t.mode with
  | No_probes -> ()
  | Event_driven ->
      ctx.Program.configure_pktgen ~period:p.probe_period
        ~template:(fun _ ->
          record_origination ();
          probe_packet ~origin_leaf:leaf_id)
        ()
  | Cp_probes { cp; inject } ->
      ignore
        (Evcore.Control_plane.periodic cp ~period:p.probe_period (fun () ->
             record_origination ();
             !inject leaf_id (probe_packet ~origin_leaf:leaf_id))));
  let uplinks = List.init p.num_spines (fun s -> p.hosts_per_leaf + s) in
  let handle_probe pkt origin_leaf (probe_util : int) =
    let port = pkt.Packet.meta.Packet.ingress_port in
    if origin_leaf = leaf_id then
      (* Our own probe entering the pipeline: fan out over all
         uplinks. *)
      Program.Multicast uplinks
    else begin
      t.probes_delivered <- t.probes_delivered + 1;
      let key = (leaf_id, origin_leaf) in
      let cell =
        match Hashtbl.find_opt t.probe_arrivals key with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace t.probe_arrivals key c;
            c
      in
      cell := ctx.Program.now () :: !cell;
      let link_util = per_mille util.(port) in
      let path_util = max probe_util link_util in
      let best = Pisa.Register_array.read best_util_reg origin_leaf in
      let best_port = Pisa.Register_array.read best_hop_reg origin_leaf in
      (* HULA update rule: strictly better path wins; the current best
         path is always refreshed (its utilisation may have grown). *)
      if path_util < best || best_port = port || best_port = 0xff then begin
        if best_port <> port then t.hop_changes <- t.hop_changes + 1;
        Pisa.Register_array.write best_util_reg origin_leaf path_util;
        Pisa.Register_array.write best_hop_reg origin_leaf port
      end;
      Program.Drop
    end
  in
  let ingress _ctx pkt =
    match pkt.Packet.payload with
    | Hula_probe { origin_leaf; max_util } -> handle_probe pkt origin_leaf max_util
    | _ ->
        let dst_leaf = dst_leaf_of pkt in
        if dst_leaf = leaf_id then Program.Forward (dst_host_of pkt mod p.hosts_per_leaf)
        else if dst_leaf < 0 || dst_leaf >= p.num_leaves then Program.Drop
        else begin
          let best () =
            let hop = Pisa.Register_array.read best_hop_reg dst_leaf in
            if hop <> 0xff then hop
            else
              (* ECMP fallback before any probe arrives. *)
              let h =
                match Packet.flow pkt with
                | Some f -> Netcore.Flow.hash f
                | None -> pkt.Packet.uid
              in
              p.hosts_per_leaf + Netcore.Hashes.fold_range h p.num_spines
          in
          match p.flowlet_timeout with
          | None -> Program.Forward (best ())
          | Some gap ->
              let slot =
                match Packet.flow pkt with
                | Some f -> Netcore.Hashes.fold_range (Netcore.Flow.hash f) flowlet_slots
                | None -> 0
              in
              let now = ctx.Program.now () in
              let last = Pisa.Register_array.read flowlet_last slot in
              let assigned = Pisa.Register_array.read flowlet_hop slot in
              Pisa.Register_array.write flowlet_last slot now;
              if assigned <> 0xff && now - last <= gap then Program.Forward assigned
              else begin
                let hop = best () in
                Pisa.Register_array.write flowlet_hop slot hop;
                Program.Forward hop
              end
        end
  in
  let timer _ctx (_ev : Event.timer_event) = sample_util () in
  let transmitted _ctx ev = on_transmit ev in
  Program.make ~name:(Printf.sprintf "hula-leaf%d" leaf_id) ~ingress ~timer ~transmitted ()

let spine_program t spine_id : Program.spec =
 fun ctx ->
  let p = t.params in
  let num_ports = p.num_leaves in
  let util, sample_util, on_transmit = make_util_tracker t ctx ~num_ports in
  ignore (ctx.Program.add_timer ~period:p.util_period);
  let ingress _ctx pkt =
    match pkt.Packet.payload with
    | Hula_probe ({ origin_leaf; max_util = _ } as probe) ->
        let port = pkt.Packet.meta.Packet.ingress_port in
        let link_util = per_mille util.(port) in
        probe.max_util <- max probe.max_util link_util;
        (* Fan the probe out to every other leaf. *)
        let downs =
          List.filter_map
            (fun l -> if l = origin_leaf || l = port then None else Some l)
            (List.init p.num_leaves Fun.id)
        in
        if downs = [] then Program.Drop else Program.Multicast downs
    | _ ->
        let dst_leaf = dst_leaf_of pkt in
        if dst_leaf >= 0 && dst_leaf < p.num_leaves then Program.Forward dst_leaf
        else Program.Drop
  in
  let timer _ctx (_ev : Event.timer_event) = sample_util () in
  let transmitted _ctx ev = on_transmit ev in
  Program.make ~name:(Printf.sprintf "hula-spine%d" spine_id) ~ingress ~timer ~transmitted ()

let program t role : Program.spec =
  match role with
  | Topology.Leaf l -> leaf_program t l
  | Topology.Spine s -> spine_program t s
  | Topology.Standalone i -> leaf_program t i

let probe_arrivals t ~at_leaf ~from_leaf =
  match Hashtbl.find_opt t.probe_arrivals (at_leaf, from_leaf) with
  | Some c -> List.rev !c
  | None -> []

let origination_gaps_us t ~leaf =
  match Hashtbl.find_opt t.origin_times leaf with
  | None -> [||]
  | Some c ->
      let times = List.rev !c in
      let rec go = function
        | a :: (b :: _ as rest) -> (float_of_int (b - a) /. 1e6) :: go rest
        | [ _ ] | [] -> []
      in
      Array.of_list (go times)

let best_hop t ~leaf ~dst_leaf =
  match Hashtbl.find_opt t.leaves leaf with
  | None -> None
  | Some st ->
      let v = Pisa.Register_array.read st.best_hop_reg dst_leaf in
      if v = 0xff then None else Some v

let hop_changes t = t.hop_changes
let probes_originated t = t.probes_originated
let probes_delivered t = t.probes_delivered

let util_estimate t ~leaf ~port =
  match Hashtbl.find_opt t.leaves leaf with
  | None -> 0.
  | Some st -> Stats.Ewma.value st.util.(port)
