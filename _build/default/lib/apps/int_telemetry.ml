module Packet = Netcore.Packet
module Program = Evcore.Program
module Event = Devents.Event

type strategy =
  | Per_packet
  | Aggregated of {
      report_period : Eventsim.Sim_time.t;
      occupancy_threshold : int;
      heartbeat_every : int;
    }

type report = {
  time : int;
  max_occupancy : int;
  losses : int;
  packets_seen : int;
  anomalous : bool;
}

type t = {
  mutable reports : report list;
  mutable report_count : int;
  mutable anomalies : int;
  mutable forwarded : int;
}

let reports t = List.rev t.reports
let report_count t = t.report_count
let anomalies_reported t = t.anomalies
let packets_forwarded t = t.forwarded

let program ~strategy ~out_port () =
  let t = { reports = []; report_count = 0; anomalies = 0; forwarded = 0 } in
  let spec ctx =
    let emit_report ~max_occupancy ~losses ~packets_seen ~anomalous =
      t.report_count <- t.report_count + 1;
      if anomalous then t.anomalies <- t.anomalies + 1;
      t.reports <-
        { time = ctx.Program.now (); max_occupancy; losses; packets_seen; anomalous }
        :: t.reports;
      ctx.Program.notify_monitor
        (Printf.sprintf "int-report occ=%d loss=%d pkts=%d%s" max_occupancy losses packets_seen
           (if anomalous then " ANOMALY" else ""))
    in
    match strategy with
    | Per_packet ->
        let ingress ctx pkt =
          t.forwarded <- t.forwarded + 1;
          let occ = ctx.Program.port_occupancy_bytes (out_port pkt) in
          emit_report ~max_occupancy:occ ~losses:0 ~packets_seen:1 ~anomalous:false;
          Program.Forward (out_port pkt)
        in
        Program.make ~name:"int-per-packet" ~ingress ()
    | Aggregated { report_period; occupancy_threshold; heartbeat_every } ->
        (* Window state: max occupancy, loss count, packet count. *)
        let stats =
          Pisa.Register_alloc.array ctx.Program.alloc ~name:"int_window" ~entries:3 ~width:32
        in
        let windows_since_report = ref 0 in
        ignore (ctx.Program.add_timer ~period:report_period);
        let ingress _ctx pkt =
          t.forwarded <- t.forwarded + 1;
          pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
          ignore (Pisa.Register_array.add stats 2 1);
          Program.Forward (out_port pkt)
        in
        let enqueue _ctx (ev : Event.buffer_event) =
          if ev.Event.occupancy_bytes > Pisa.Register_array.read stats 0 then
            Pisa.Register_array.write stats 0 ev.Event.occupancy_bytes
        in
        let overflow _ctx (_ev : Event.buffer_event) = ignore (Pisa.Register_array.add stats 1 1) in
        let timer _ctx (_ev : Event.timer_event) =
          let max_occupancy = Pisa.Register_array.read stats 0 in
          let losses = Pisa.Register_array.read stats 1 in
          let packets_seen = Pisa.Register_array.read stats 2 in
          let anomalous = max_occupancy > occupancy_threshold || losses > 0 in
          incr windows_since_report;
          if anomalous || !windows_since_report >= heartbeat_every then begin
            emit_report ~max_occupancy ~losses ~packets_seen ~anomalous;
            windows_since_report := 0
          end;
          Pisa.Register_array.reset stats
        in
        Program.make ~name:"int-aggregated" ~ingress ~enqueue ~overflow ~timer ()
  in
  (spec, t)
