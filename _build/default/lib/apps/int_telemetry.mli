(** In-band telemetry report reduction (§3 Network Monitoring).

    INT produces "a potentially huge volume of measurement data, which
    might overwhelm a software-based logging and analysis system". Two
    reporting strategies over the same congestion signals:

    - [Per_packet]: classic INT sink behaviour — every forwarded
      packet emits a report to the monitor.
    - [Aggregated]: enqueue/dequeue/overflow events fold the signals
      (max queue occupancy, loss count, active flow estimate) into
      registers; a timer flushes one report per [report_period], and
      only when the window was anomalous (occupancy over threshold or
      any loss) or when the heartbeat counter expires.

    E4/E2 use the report-volume ratio; both strategies must still
    catch an injected congestion episode. *)

type strategy =
  | Per_packet
  | Aggregated of {
      report_period : Eventsim.Sim_time.t;
      occupancy_threshold : int;  (** bytes *)
      heartbeat_every : int;  (** force a report every N windows *)
    }

type report = {
  time : int;
  max_occupancy : int;
  losses : int;
  packets_seen : int;
  anomalous : bool;
}

type t

val reports : t -> report list
val report_count : t -> int
val anomalies_reported : t -> int
val packets_forwarded : t -> int

val program :
  strategy:strategy -> out_port:(Netcore.Packet.t -> int) -> unit -> Evcore.Program.spec * t
