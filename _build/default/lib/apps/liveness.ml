module Packet = Netcore.Packet
module Program = Evcore.Program
module Event = Devents.Event
module Ethernet = Netcore.Ethernet
module Mac_addr = Netcore.Mac_addr

type Packet.payload +=
  | Echo_request of { origin : int; seq : int }
  | Echo_reply of { origin : int; seq : int }

type mode =
  | Event_driven of { probe_period : Eventsim.Sim_time.t; check_period : Eventsim.Sim_time.t }
  | Cp_driven of {
      cp : Evcore.Control_plane.t;
      probe_period : Eventsim.Sim_time.t;
      check_period : Eventsim.Sim_time.t;
      inject : (Packet.t -> unit) ref;
    }

type t = {
  mutable declared_dead_at : int option;
  mutable declared_alive_at : int option;
  mutable probes_sent : int;
  mutable replies_heard : int;
}

let declared_dead_at t = t.declared_dead_at
let declared_alive_at t = t.declared_alive_at
let probes_sent t = t.probes_sent
let replies_heard t = t.replies_heard

let probe_packet ~origin ~seq =
  let eth =
    Ethernet.make ~dst:Mac_addr.broadcast
      ~src:(Mac_addr.switch_port ~switch:origin ~port:0)
      ~ethertype:Ethernet.ethertype_event
  in
  Packet.create ~eth ~payload:(Echo_request { origin; seq }) ~payload_len:16 ()

let program ~mode ~timeout ~neighbor_port ~out_port () =
  let t =
    { declared_dead_at = None; declared_alive_at = None; probes_sent = 0; replies_heard = 0 }
  in
  let spec ctx =
    let me = ctx.Program.switch_id in
    (* last time we heard the neighbor, and whether we currently deem
       it alive. *)
    let last_heard =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"live_last_heard" ~entries:1 ~width:62
    in
    let alive =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"live_alive" ~entries:1 ~width:1
    in
    Pisa.Register_array.write alive 0 1;
    let check () =
      let now = ctx.Program.now () in
      let heard = Pisa.Register_array.read last_heard 0 in
      if Pisa.Register_array.read alive 0 = 1 then begin
        if now - heard > timeout then begin
          Pisa.Register_array.write alive 0 0;
          if t.declared_dead_at = None then t.declared_dead_at <- Some now;
          ctx.Program.notify_monitor (Printf.sprintf "neighbor-down switch=%d" me)
        end
      end
      else if now - heard <= timeout then begin
        Pisa.Register_array.write alive 0 1;
        if t.declared_alive_at = None && t.declared_dead_at <> None then
          t.declared_alive_at <- Some now;
        ctx.Program.notify_monitor (Printf.sprintf "neighbor-up switch=%d" me)
      end
    in
    (match mode with
    | Event_driven { probe_period; check_period } ->
        ctx.Program.configure_pktgen ~period:probe_period
          ~template:(fun seq ->
            t.probes_sent <- t.probes_sent + 1;
            probe_packet ~origin:me ~seq)
          ();
        ignore (ctx.Program.add_timer ~period:check_period)
    | Cp_driven { cp; probe_period; check_period; inject } ->
        let seq = ref 0 in
        ignore
          (Evcore.Control_plane.periodic cp ~period:probe_period (fun () ->
               t.probes_sent <- t.probes_sent + 1;
               incr seq;
               !inject (probe_packet ~origin:me ~seq:!seq)));
        ignore (Evcore.Control_plane.periodic cp ~period:check_period check));
    let ingress _ctx pkt =
      match pkt.Packet.payload with
      | Echo_request { origin; seq } ->
          if origin = me then
            (* Our own probe entering the pipeline: send it out. *)
            Program.Forward neighbor_port
          else begin
            (* Neighbor's probe: answer it. *)
            pkt.Packet.payload <- Echo_reply { origin; seq };
            Program.Forward pkt.Packet.meta.Packet.ingress_port
          end
      | Echo_reply { origin; seq = _ } ->
          if origin = me then begin
            t.replies_heard <- t.replies_heard + 1;
            Pisa.Register_array.write last_heard 0 (ctx.Program.now ());
            Program.Drop
          end
          else Program.Drop
      | _ -> Program.Forward (out_port pkt)
    in
    let timer =
      match mode with
      | Event_driven _ -> Some (fun _ctx (_ev : Event.timer_event) -> check ())
      | Cp_driven _ -> None
    in
    Program.make ~name:"liveness" ~ingress ?timer ()
  in
  (spec, t)
