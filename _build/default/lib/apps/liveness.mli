(** Data-plane liveness monitoring (§5 "Liveness Monitoring in the Data
    Plane"): each switch periodically transmits echo requests to its
    neighbor and tracks the last time it heard a reply; a timer handler
    declares the neighbor dead after [timeout] and notifies a central
    monitor — with no control-plane involvement in the event-driven
    variant.

    [Cp_driven] is the baseline: the control plane injects the pings
    and polls the last-heard register, so both probing and detection
    pay channel latency, jitter and op-rate limiting. The echo
    {e responder} logic is pure packet processing and runs on any
    architecture.

    Detection latency (E9) = declared-dead time minus the link-failure
    instant. *)

type Netcore.Packet.payload +=
  | Echo_request of { origin : int; seq : int }
  | Echo_reply of { origin : int; seq : int }

type mode =
  | Event_driven of { probe_period : Eventsim.Sim_time.t; check_period : Eventsim.Sim_time.t }
  | Cp_driven of {
      cp : Evcore.Control_plane.t;
      probe_period : Eventsim.Sim_time.t;
      check_period : Eventsim.Sim_time.t;
      inject : (Netcore.Packet.t -> unit) ref;
          (** wire to [Event_switch.inject_from_control_plane] after
              creating the switch *)
    }

type t

val declared_dead_at : t -> int option
val declared_alive_at : t -> int option
(** First probe reply after having been declared dead. *)

val probes_sent : t -> int
val replies_heard : t -> int

val program :
  mode:mode ->
  timeout:Eventsim.Sim_time.t ->
  neighbor_port:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** The program both monitors its neighbor over [neighbor_port] and
    answers the neighbor's echoes; non-echo traffic is forwarded via
    [out_port]. *)

val probe_packet : origin:int -> seq:int -> Netcore.Packet.t
