(** Microburst-culprit detection — the paper's §2 worked example
    ([microburst.p4]).

    The ingress logic hashes the packet's IP pair into a flow id, reads
    that flow's buffer occupancy from a [shared_register], and flags
    the flow as a culprit if the occupancy exceeds a threshold — before
    the packet is even enqueued. Enqueue and dequeue event handlers
    keep the occupancy exact. State: one register array (three in
    aggregated mode, per Figure 3). *)

type detection = {
  flow_id : int;
  occupancy_bytes : int;
  time : int;  (** detection instant (at ingress, pre-enqueue) *)
}

type t

val detections : t -> detection list
(** In detection order. Consecutive detections of the same flow are
    deduplicated while the flow stays over threshold. *)

val detection_count : t -> int
val state_bits : t -> int
(** Total register bits the detector allocated. *)

val occupancy : t -> flow_slot:int -> int
(** Current (possibly stale) occupancy of a flow slot. *)

val program :
  ?slots:int ->
  threshold_bytes:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [slots] is the flow-id hash-table size (default 1024); [out_port]
    is the routing function. Returns the program spec plus the
    detector's result handle. *)
