module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Program = Evcore.Program
module Event = Devents.Event
module Cms = Pisa.Cms

type Packet.payload +=
  | Kv_get of { key : int }
  | Kv_reply of { key : int; from_cache : bool }

type entry = { mutable last_hit_window : int; mutable hits : int }

type t = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable promotions : int;
  mutable evictions : int;
  mutable bits : int;
  cache : (int, entry) Hashtbl.t;
}

let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses

let hit_ratio t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0. else float_of_int t.cache_hits /. float_of_int total

let cached_keys t = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.cache [])
let promotions t = t.promotions
let evictions t = t.evictions
let state_bits t = t.bits

let get_packet ~client ~key =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.host ~subnet:3 client)
      ~dst:(Ipv4_addr.host ~subnet:9 1)
      ~src_port:(10_000 + client) ~dst_port:11_211 ~payload_len:16 ()
  in
  pkt.Packet.payload <- Kv_get { key };
  pkt

let program ?(cache_size = 64) ?(promote_threshold = 8) ?(decay_period = Eventsim.Sim_time.ms 1)
    ?(idle_windows = 4) ~with_timers ~server_port ~client_port () =
  let t =
    {
      cache_hits = 0;
      cache_misses = 0;
      promotions = 0;
      evictions = 0;
      bits = 0;
      cache = Hashtbl.create 64;
    }
  in
  let spec ctx =
    let popularity =
      Cms.create ~alloc:ctx.Program.alloc ~name:"netcache_pop" ~width:512 ~depth:2
        ~counter_bits:16 ()
    in
    (* Cache membership is an exact-match table plus per-entry aging
       state (64 bits/entry charged as register state). *)
    let membership = Pisa.Match_table.exact ~name:"netcache_cache" in
    t.bits <- Cms.bits popularity + (cache_size * 64);
    let window = ref 0 in
    let evict_lru () =
      let victim =
        Hashtbl.fold
          (fun key entry acc ->
            match acc with
            | Some (_, best) when best.last_hit_window <= entry.last_hit_window -> acc
            | Some _ | None -> Some (key, entry))
          t.cache None
      in
      match victim with
      | Some (key, _) ->
          Hashtbl.remove t.cache key;
          Pisa.Match_table.remove_exact membership ~key;
          t.evictions <- t.evictions + 1
      | None -> ()
    in
    let promote key =
      if Hashtbl.length t.cache >= cache_size then evict_lru ();
      Hashtbl.replace t.cache key { last_hit_window = !window; hits = 0 };
      Pisa.Match_table.add_exact membership ~key ();
      t.promotions <- t.promotions + 1
    in
    if with_timers then ignore (ctx.Program.add_timer ~period:decay_period);
    let ingress _ctx pkt =
      match pkt.Packet.payload with
      | Kv_get { key } -> (
          match Pisa.Match_table.lookup membership key with
          | Some () ->
              t.cache_hits <- t.cache_hits + 1;
              (match Hashtbl.find_opt t.cache key with
              | Some entry ->
                  entry.last_hit_window <- !window;
                  entry.hits <- entry.hits + 1
              | None -> ());
              pkt.Packet.payload <- Kv_reply { key; from_cache = true };
              Program.Forward pkt.Packet.meta.Packet.ingress_port
          | None ->
              t.cache_misses <- t.cache_misses + 1;
              Cms.update popularity ~key ~delta:1;
              if
                Cms.query popularity ~key >= promote_threshold
                && not (Hashtbl.mem t.cache key)
              then promote key;
              Program.Forward server_port)
      | Kv_reply _ -> Program.Forward (client_port pkt)
      | _ -> Program.Forward server_port
    in
    let timer =
      if with_timers then
        Some
          (fun _ctx (_ev : Event.timer_event) ->
            incr window;
            (* Clear popularity statistics (NetCache: "quickly clear
               all statistics") and age out idle cache entries. *)
            Cms.reset popularity;
            let stale =
              Hashtbl.fold
                (fun key entry acc ->
                  if !window - entry.last_hit_window > idle_windows then key :: acc else acc)
                t.cache []
            in
            List.iter
              (fun key ->
                Hashtbl.remove t.cache key;
                Pisa.Match_table.remove_exact membership ~key;
                t.evictions <- t.evictions + 1)
              stale)
      else None
    in
    Program.make ~name:(if with_timers then "netcache-timers" else "netcache-static") ~ingress
      ?timer ()
  in
  (spec, t)
