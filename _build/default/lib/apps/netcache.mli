(** NetCache-style in-network key-value caching (§3 In-Network
    Computing; Jin et al., SOSP'17).

    The switch sits between clients and a key-value server. GET
    requests for cached keys are answered directly by the data plane;
    misses are forwarded to the server. A count-min sketch tracks key
    popularity; keys whose count crosses [promote_threshold] are
    inserted into the bounded cache, evicting the
    least-recently-hit entry.

    Timer events add what the NetCache authors wished for: periodic
    decay of the popularity statistics and eviction of cache entries
    not hit for [idle_windows] periods (approximate LRU aging), which
    lets the cache track workload shifts. [with_timers:false] gives
    the baseline behaviour — statistics and cache contents only ever
    grow, so after the hot set shifts, the cache stays stale. *)

type Netcore.Packet.payload +=
  | Kv_get of { key : int }
  | Kv_reply of { key : int; from_cache : bool }

type t

val cache_hits : t -> int
val cache_misses : t -> int
val hit_ratio : t -> float
val cached_keys : t -> int list
val promotions : t -> int
val evictions : t -> int
val state_bits : t -> int

val program :
  ?cache_size:int ->
  ?promote_threshold:int ->
  ?decay_period:Eventsim.Sim_time.t ->
  ?idle_windows:int ->
  with_timers:bool ->
  server_port:int ->
  client_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [client_port] routes replies back toward the requesting client
    (from the reply packet's destination). *)

val get_packet : client:int -> key:int -> Netcore.Packet.t
(** Build a GET for tests/workloads; source encodes the client id. *)
