module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Program = Evcore.Program

type mode = Timer_bucket of { refill_period : Eventsim.Sim_time.t } | Extern_meter

type t = {
  mutable accepted : int array;
  mutable dropped : int array;
  mutable total_accepted : int;
  mutable bits : int;
  slots : int;
}

let accepted t ~flow_slot = t.accepted.(flow_slot)
let dropped t ~flow_slot = t.dropped.(flow_slot)
let total_accepted_bytes t = t.total_accepted
let state_bits t = t.bits

let program ?(slots = 64) ~mode ~cir_bytes_per_sec ~burst_bytes ~out_port () =
  if cir_bytes_per_sec <= 0. || burst_bytes <= 0 then invalid_arg "Policer.program";
  let t =
    {
      accepted = Array.make slots 0;
      dropped = Array.make slots 0;
      total_accepted = 0;
      bits = 0;
      slots;
    }
  in
  let spec ctx =
    let flow_slot pkt =
      match Packet.flow pkt with
      | Some flow -> Netcore.Hashes.fold_range (Flow.hash flow) slots
      | None -> 0
    in
    let admit pkt fid ok =
      if ok then begin
        t.accepted.(fid) <- t.accepted.(fid) + Packet.len pkt;
        t.total_accepted <- t.total_accepted + Packet.len pkt;
        Program.Forward (out_port pkt)
      end
      else begin
        t.dropped.(fid) <- t.dropped.(fid) + Packet.len pkt;
        Program.Drop
      end
    in
    match mode with
    | Timer_bucket { refill_period } ->
        let tokens =
          Pisa.Register_alloc.array ctx.Program.alloc ~name:"policer_tokens" ~entries:slots
            ~width:32
        in
        t.bits <- Pisa.Register_array.bits tokens;
        Pisa.Register_array.fill tokens burst_bytes;
        let refill_amount =
          max 1
            (int_of_float (cir_bytes_per_sec *. Eventsim.Sim_time.to_sec refill_period))
        in
        ignore (ctx.Program.add_timer ~period:refill_period);
        let timer _ctx (_ev : Devents.Event.timer_event) =
          for i = 0 to slots - 1 do
            let v = Pisa.Register_array.read tokens i in
            Pisa.Register_array.write tokens i (min burst_bytes (v + refill_amount))
          done
        in
        let ingress _ctx pkt =
          let fid = flow_slot pkt in
          let len = Packet.len pkt in
          let v = Pisa.Register_array.read tokens fid in
          if v >= len then begin
            Pisa.Register_array.write tokens fid (v - len);
            admit pkt fid true
          end
          else admit pkt fid false
        in
        Program.make ~name:"policer-timer" ~ingress ~timer ()
    | Extern_meter ->
        let meters =
          Array.init slots (fun _ ->
              Pisa.Meter.create ~cir_bytes_per_sec ~cbs:burst_bytes ~ebs:0)
        in
        (* A fixed-function meter bank is not register state, but it
           does occupy device resources; charge the equivalent token
           storage for comparability. *)
        t.bits <- slots * 64;
        let ingress ctx pkt =
          let fid = flow_slot pkt in
          match
            Pisa.Meter.mark meters.(fid) ~now_ps:(ctx.Program.now ())
              ~bytes:(Packet.len pkt)
          with
          | Pisa.Meter.Green -> admit pkt fid true
          | Pisa.Meter.Yellow | Pisa.Meter.Red -> admit pkt fid false
        in
        Program.make ~name:"policer-extern" ~ingress ()
  in
  (spec, t)
