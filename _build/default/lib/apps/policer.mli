(** Per-flow token-bucket policing (§3 Traffic Management: "if we use
    timer events, token bucket meters can be constructed from simple
    registers").

    - [Timer_bucket]: tokens live in registers; a timer event refills
      all buckets every [refill_period]. Refill granularity bounds the
      conformance error, which E13 sweeps.
    - [Extern_meter]: the fixed-function srTCM primitive a baseline
      PISA target would expose ({!Pisa.Meter}); exact continuous-time
      refill but not programmable.

    Both police to the same committed rate; non-conforming packets are
    dropped at ingress. *)

type mode = Timer_bucket of { refill_period : Eventsim.Sim_time.t } | Extern_meter

type t

val accepted : t -> flow_slot:int -> int
(** Accepted bytes per flow slot. *)

val dropped : t -> flow_slot:int -> int
val total_accepted_bytes : t -> int
val state_bits : t -> int

val program :
  ?slots:int ->
  mode:mode ->
  cir_bytes_per_sec:float ->
  burst_bytes:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
