module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Program = Evcore.Program
module Cms = Pisa.Cms

type detection = { flow_id : int; estimate_bytes : int; time : int }

type t = {
  mutable detections : detection list;
  mutable count : int;
  mutable bits : int;
  mutable over : bool array;
}

let detections t = List.rev t.detections
let detection_count t = t.count
let state_bits t = t.bits

let program ?(num_snapshots = 8) ?(cms_width = 512) ?(cms_depth = 2) ?(slots = 1024)
    ?(buffer_bytes = 512 * 1024) ~threshold_bytes ~out_port () =
  if num_snapshots < 2 then invalid_arg "Snappy.program: need at least 2 snapshots";
  let t = { detections = []; count = 0; bits = 0; over = Array.make slots false } in
  let spec ctx =
    let snapshots =
      Array.init num_snapshots (fun i ->
          Cms.create ~alloc:ctx.Program.alloc
            ~name:(Printf.sprintf "snappy_snap%d" i)
            ~width:cms_width ~depth:cms_depth ~counter_bits:32 ())
    in
    (* Ring bookkeeping registers (window index, per-window byte
       volume), also real data-plane state. *)
    let window_bytes =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"snappy_window_bytes"
        ~entries:num_snapshots ~width:32
    in
    let head = ref 0 in
    let bytes_in_head = ref 0 in
    t.bits <-
      Array.fold_left (fun acc s -> acc + Cms.bits s) 0 snapshots
      + Pisa.Register_array.bits window_bytes;
    (* Rotate when the head snapshot has absorbed 1/k of the buffer. *)
    let rotate_bytes = max 1 (buffer_bytes / num_snapshots) in
    let flow_slot pkt =
      match Packet.flow pkt with
      | Some flow -> Netcore.Hashes.fold_range (Flow.hash_addresses flow) slots
      | None -> 0
    in
    let ingress _ctx pkt =
      pkt.Packet.meta.Packet.flow_id <- flow_slot pkt;
      Program.Forward (out_port pkt)
    in
    (* Egress-side estimation: PSA egress sees the queue depth the
       packet experienced; sum the snapshots covering that many bytes
       of recent arrivals. *)
    let egress ctx ~port pkt =
      let len = Packet.len pkt in
      let fid = pkt.Packet.meta.Packet.flow_id in
      (* Record the arrival into the head snapshot. *)
      Cms.update snapshots.(!head) ~key:fid ~delta:len;
      bytes_in_head := !bytes_in_head + len;
      Pisa.Register_array.write window_bytes !head !bytes_in_head;
      if !bytes_in_head >= rotate_bytes then begin
        head := (!head + 1) mod num_snapshots;
        Cms.reset snapshots.(!head);
        Pisa.Register_array.write window_bytes !head 0;
        bytes_in_head := 0
      end;
      (* Estimate occupancy: walk back windows until their cumulative
         byte volume covers the current queue depth. *)
      let qdepth = ctx.Program.port_occupancy_bytes port in
      let estimate = ref 0 and covered = ref 0 and k = ref 0 in
      while !covered < qdepth && !k < num_snapshots do
        let idx = (!head - !k + num_snapshots) mod num_snapshots in
        estimate := !estimate + Cms.query snapshots.(idx) ~key:fid;
        covered := !covered + Pisa.Register_array.read window_bytes idx;
        incr k
      done;
      if !estimate > threshold_bytes then begin
        if not t.over.(fid) then begin
          t.over.(fid) <- true;
          t.count <- t.count + 1;
          t.detections <-
            { flow_id = fid; estimate_bytes = !estimate; time = ctx.Program.now () }
            :: t.detections
        end
      end
      else t.over.(fid) <- false;
      Some pkt
    in
    Program.make ~name:"snappy" ~ingress ~egress ()
  in
  (spec, t)
