(** Snappy-style microburst detection for baseline (PSA) architectures,
    after Chen et al., "Catching the Microburst Culprits with Snappy"
    (SDN-NFV'18).

    Without enqueue/dequeue events, per-flow buffer occupancy must be
    {e approximated} from packet events alone: Snappy keeps a ring of
    [k] count-min-sketch snapshots of recently arrived bytes and
    estimates a flow's occupancy by summing the flow's counts over the
    snapshots that plausibly cover the bytes still buffered (inferred
    from the queue depth seen at egress). The cost of not having
    events, which E6 quantifies:

    - state: [k] sketches instead of one register array (the paper's
      "at least four-fold" reduction claim, §2);
    - detection runs at egress, {e after} the packet suffered the
      queueing delay, so detection lags the event-driven detector;
    - the occupancy estimate is approximate (sketch collisions and
      window quantisation), so precision/recall suffer. *)

type detection = { flow_id : int; estimate_bytes : int; time : int }

type t

val detections : t -> detection list
val detection_count : t -> int
val state_bits : t -> int

val program :
  ?num_snapshots:int ->
  ?cms_width:int ->
  ?cms_depth:int ->
  ?slots:int ->
  ?buffer_bytes:int ->
  threshold_bytes:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** Defaults follow the Snappy paper's small configuration: 8
    snapshots of a 512x2 sketch. [slots] must match the event-driven
    detector's hash size so flow ids are comparable (default 1024). *)
