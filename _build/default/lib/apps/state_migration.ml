module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Program = Evcore.Program
module Event = Devents.Event
module Ethernet = Netcore.Ethernet
module Mac_addr = Netcore.Mac_addr

type Packet.payload += State_chunk of { slot : int; value : int }

type mode =
  | Event_driven of { chunk_period : Eventsim.Sim_time.t }
  | Cp_driven of { cp : Evcore.Control_plane.t; batch : int }

type t = {
  slots : int;
  mutable active_reg : Pisa.Register_array.t option;
  mutable standby_reg : Pisa.Register_array.t option;
  mutable started_at : int option;
  mutable completed_at : int option;
  mutable chunks_sent : int;
  mutable chunks_installed : int;
}

let create ?(slots = 64) () =
  {
    slots;
    active_reg = None;
    standby_reg = None;
    started_at = None;
    completed_at = None;
    chunks_sent = 0;
    chunks_installed = 0;
  }

let migration_started_at t = t.started_at
let migration_completed_at t = t.completed_at
let chunks_sent t = t.chunks_sent
let chunks_installed t = t.chunks_installed

let counter t ~role ~slot =
  let reg = match role with `Active -> t.active_reg | `Standby -> t.standby_reg in
  match reg with None -> 0 | Some r -> Pisa.Register_array.read r slot

let state_bits t =
  let bits = function None -> 0 | Some r -> Pisa.Register_array.bits r in
  bits t.active_reg + bits t.standby_reg

let flow_slot t pkt =
  match Packet.flow pkt with
  | Some flow -> Netcore.Hashes.fold_range (Flow.hash_addresses flow) t.slots
  | None -> 0

let chunk_packet ~slot ~value =
  let eth =
    Ethernet.make ~dst:Mac_addr.broadcast
      ~src:(Mac_addr.switch_port ~switch:0 ~port:0)
      ~ethertype:Ethernet.ethertype_event
  in
  Packet.create ~eth ~payload:(State_chunk { slot; value }) ~payload_len:8 ()

let active_program t ~mode ~primary ~backup : Program.spec =
 fun ctx ->
  let counters =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"mig_counters" ~entries:t.slots ~width:32
  in
  t.active_reg <- Some counters;
  let failed_over = ref false in
  let start_migration () =
    if t.started_at = None then begin
      t.started_at <- Some (ctx.Program.now ());
      match mode with
      | Event_driven { chunk_period } ->
          (* One chunk per slot, emitted by the packet generator; the
             generated handler routes them over the backup port. *)
          ctx.Program.configure_pktgen ~period:chunk_period ~count:t.slots
            ~template:(fun i ->
              t.chunks_sent <- t.chunks_sent + 1;
              if i = t.slots - 1 then t.completed_at <- Some (ctx.Program.now ());
              chunk_packet ~slot:i ~value:(Pisa.Register_array.read counters i))
            ()
      | Cp_driven { cp; batch } ->
          (* The CPU reads [batch] slots per op and writes them into
             the standby through another op-equivalent: each batch is
             one submit. *)
          let batches = (t.slots + batch - 1) / batch in
          for b = 0 to batches - 1 do
            Evcore.Control_plane.submit cp (fun () ->
                for i = b * batch to min ((b + 1) * batch) t.slots - 1 do
                  t.chunks_sent <- t.chunks_sent + 1;
                  let value = Pisa.Register_array.read counters i in
                  match t.standby_reg with
                  | Some standby ->
                      ignore (Pisa.Register_array.add standby i value);
                      t.chunks_installed <- t.chunks_installed + 1
                  | None -> ()
                done;
                if b = batches - 1 then t.completed_at <- Some (ctx.Program.now ()))
          done
    end
  in
  let ingress _ctx pkt =
    match pkt.Packet.payload with
    | State_chunk _ ->
        (* Our own generated chunk: ship it over the backup path. *)
        Program.Forward backup
    | _ ->
        if !failed_over then
          (* Ownership of the state moved with the traffic: the standby
             counts from here on; we only forward. *)
          Program.Forward backup
        else begin
          let slot = flow_slot t pkt in
          ignore (Pisa.Register_array.add counters slot 1);
          Program.Forward primary
        end
  in
  let link_change _ctx (ev : Event.link_event) =
    if ev.Event.port = primary && not ev.Event.up then begin
      failed_over := true;
      start_migration ()
    end
  in
  Program.make ~name:"migration-active" ~ingress ~link_change ()

let standby_program t ~out_port : Program.spec =
 fun ctx ->
  let counters =
    Pisa.Register_alloc.array ctx.Program.alloc ~name:"mig_standby" ~entries:t.slots ~width:32
  in
  t.standby_reg <- Some counters;
  let ingress _ctx pkt =
    match pkt.Packet.payload with
    | State_chunk { slot; value } ->
        (* Install the migrated base on top of whatever we counted
           while the chunks were in flight. *)
        ignore (Pisa.Register_array.add counters slot value);
        t.chunks_installed <- t.chunks_installed + 1;
        Program.Drop
    | _ ->
        let slot = flow_slot t pkt in
        ignore (Pisa.Register_array.add counters slot 1);
        Program.Forward out_port
  in
  Program.make ~name:"migration-standby" ~ingress ()
