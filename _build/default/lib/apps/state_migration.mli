(** Data-plane state migration (Table 2, Network Management; after
    swing-state, Luo et al., SOSR'17).

    An active switch keeps per-flow state (packet counters here). When
    its primary link fails, traffic swings to a standby switch — and
    the state must swing with it, or the standby restarts every flow
    from zero.

    - [Event_driven]: the link-status-change event triggers the
      migration entirely in the data plane: the packet generator emits
      one state-chunk packet per register slot over the backup path;
      the standby's ingress installs each chunk. Migration completes
      in (slots x generator period) with no control-plane involvement.
    - [Cp_driven]: the control plane reads the active switch's
      registers and writes them into the standby, paying channel
      latency and the op-rate limit per batch.

    The standby keeps counting arriving packets while chunks install;
    installing a chunk {e adds} the migrated base to the live count,
    so no packets are lost from the state if data and chunks
    interleave. *)

type Netcore.Packet.payload += State_chunk of { slot : int; value : int }

type mode =
  | Event_driven of { chunk_period : Eventsim.Sim_time.t }
  | Cp_driven of {
      cp : Evcore.Control_plane.t;
      batch : int;  (** register slots read+written per CP op *)
    }

type t

val migration_started_at : t -> int option
val migration_completed_at : t -> int option
val chunks_sent : t -> int
val chunks_installed : t -> int
val counter : t -> role:[ `Active | `Standby ] -> slot:int -> int
val state_bits : t -> int

val active_program :
  t -> mode:mode -> primary:int -> backup:int -> Evcore.Program.spec
(** Counts packets per flow slot; forwards via [primary] until it
    fails, then via [backup]; migrates its counters on the failure. *)

val standby_program : t -> out_port:int -> Evcore.Program.spec
(** Continues counting and forwarding to [out_port]; installs
    arriving state chunks. *)

val create : ?slots:int -> unit -> t
val flow_slot : t -> Netcore.Packet.t -> int
