module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Program = Evcore.Program
module Event = Devents.Event

type t = { mutable bits : int; mutable vt : int }

let state_bits t = t.bits
let virtual_time t = t.vt

let program ?(slots = 64) ~weight_of ~out_port () =
  let t = { bits = 0; vt = 0 } in
  let spec ctx =
    let finish =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"wfq_finish" ~entries:slots ~width:62
    in
    let vtime =
      Pisa.Register_alloc.array ctx.Program.alloc ~name:"wfq_vtime" ~entries:1 ~width:62
    in
    t.bits <- Pisa.Register_array.bits finish + Pisa.Register_array.bits vtime;
    let ingress _ctx pkt =
      let slot =
        match Packet.flow pkt with
        | Some flow -> Netcore.Hashes.fold_range (Flow.hash flow) slots
        | None -> 0
      in
      let weight = max 1 (weight_of ~flow_slot:slot) in
      let v = Pisa.Register_array.read vtime 0 in
      let start = max v (Pisa.Register_array.read finish slot) in
      Pisa.Register_array.write finish slot (start + (Packet.len pkt * 1000 / weight));
      pkt.Packet.meta.Packet.priority <- start;
      pkt.Packet.meta.Packet.flow_id <- slot;
      (* Carry the start tag so the dequeue event can advance V
         (STFQ: V = start tag of the packet in service), and the
         finish increment so an overflow event can roll it back if the
         packet is evicted. *)
      pkt.Packet.meta.Packet.deq_meta.(2) <- start;
      pkt.Packet.meta.Packet.enq_meta.(0) <- slot;
      pkt.Packet.meta.Packet.enq_meta.(2) <- Packet.len pkt * 1000 / weight;
      Program.Forward (out_port pkt)
    in
    (* Dequeue events advance the virtual time to the served packet's
       start tag — the exact signal baseline PISA lacks. *)
    let dequeue _ctx (ev : Event.buffer_event) =
      if ev.Event.meta.(2) > t.vt then begin
        t.vt <- ev.Event.meta.(2);
        Pisa.Register_array.write vtime 0 t.vt
      end
    in
    (* A dropped packet must not advance its flow's finish tag, or a
       backlogged flow's tags run away and eviction starves it: the
       Buffer Overflow event carries the increment to undo. *)
    let overflow _ctx (ev : Event.buffer_event) =
      let slot = ev.Event.meta.(0) in
      let f = Pisa.Register_array.read finish slot in
      Pisa.Register_array.write finish slot (max 0 (f - ev.Event.meta.(2)))
    in
    Program.make ~name:"wfq-pifo" ~ingress ~dequeue ~overflow ()
  in
  (spec, t)
