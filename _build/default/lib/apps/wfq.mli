(** Weighted fair queueing via PIFO ranks (§3: "we can construct a
    complete, programmable packet scheduler using our event-driven
    model in combination with the recently proposed Push-In-First-Out
    (PIFO) queue").

    Start-Time Fair Queueing over three event classes:

    - ingress computes each packet's virtual start time
      [max(V, finish[flow])] as its PIFO rank and advances
      [finish[flow]] by [len/weight];
    - {e dequeue events} advance the virtual time [V] to the start tag
      of the packet entering service (carried in [deq_meta]) — the
      signal a baseline architecture cannot see;
    - {e buffer overflow events} roll back the finish tag of evicted
      packets (carried in [enq_meta]), without which a backlogged
      flow's tags run away and rank-based eviction starves it.

    Install with a TM configured with [Pifo_sched] and with the PIFO
    capacity (rank-aware eviction) as the binding drop mechanism; a
    blind shared-pool tail drop would equalise loss and erase the
    weights. With weights 1:3 at 2x overload the measured goodput
    split is 3.00 (see [examples/wfq_demo.ml]). *)

type t

val state_bits : t -> int
val virtual_time : t -> int

val program :
  ?slots:int ->
  weight_of:(flow_slot:int -> int) ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [weight_of] returns a positive integer weight per flow slot. *)
