lib/core/arch.ml: Devents Format List String
