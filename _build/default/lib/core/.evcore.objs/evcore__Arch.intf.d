lib/core/arch.mli: Devents Format
