lib/core/control_plane.ml: Eventsim Stats
