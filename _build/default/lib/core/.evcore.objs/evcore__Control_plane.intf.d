lib/core/control_plane.mli: Eventsim Stats
