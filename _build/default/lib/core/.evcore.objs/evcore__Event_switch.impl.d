lib/core/event_switch.ml: Arch Array Devents Eventsim List Netcore Obs Option Pisa Program Queue Stats Tmgr
