lib/core/event_switch.mli: Arch Devents Eventsim Netcore Obs Pisa Program Tmgr
