lib/core/event_switch.mli: Arch Devents Eventsim Netcore Pisa Program Tmgr
