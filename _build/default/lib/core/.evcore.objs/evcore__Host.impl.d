lib/core/host.ml: Eventsim Netcore Printf
