lib/core/host.mli: Eventsim Netcore
