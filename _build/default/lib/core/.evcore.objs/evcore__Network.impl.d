lib/core/network.ml: Event_switch Eventsim Host List Tmgr
