lib/core/network.mli: Event_switch Eventsim Host Tmgr
