lib/core/program.ml: Devents Eventsim List Netcore Pisa Stats
