lib/core/program.mli: Devents Eventsim Netcore Pisa Stats
