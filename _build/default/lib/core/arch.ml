module Event = Devents.Event

type t = {
  name : string;
  events : Event.cls list;
  has_timers : bool;
  has_packet_generator : bool;
  has_recirculation : bool;
}

let baseline_pisa =
  {
    name = "baseline-pisa";
    events = [ Event.Ingress_packet; Event.Recirculated_packet ];
    has_timers = false;
    has_packet_generator = false;
    has_recirculation = true;
  }

let baseline_psa =
  {
    name = "baseline-psa";
    events = [ Event.Ingress_packet; Event.Egress_packet; Event.Recirculated_packet ];
    has_timers = false;
    has_packet_generator = false;
    has_recirculation = true;
  }

let sume_event_switch =
  {
    name = "sume-event-switch";
    events =
      [
        Event.Ingress_packet;
        Event.Generated_packet;
        Event.Buffer_enqueue;
        Event.Buffer_dequeue;
        Event.Buffer_overflow;
        Event.Timer_expiration;
        Event.Link_status_change;
      ];
    has_timers = true;
    has_packet_generator = true;
    has_recirculation = false;
  }

let event_pisa_full =
  {
    name = "event-pisa";
    events = Event.all_classes;
    has_timers = true;
    has_packet_generator = true;
    has_recirculation = true;
  }

let tofino_like =
  {
    name = "tofino-like";
    events =
      [
        Event.Ingress_packet;
        Event.Egress_packet;
        Event.Recirculated_packet;
        Event.Generated_packet;
      ];
    has_timers = false;
    has_packet_generator = true;
    has_recirculation = true;
  }

let supports t cls = List.exists (Event.cls_equal cls) t.events

let pp ppf t =
  Format.fprintf ppf "%s [%s]" t.name
    (String.concat ", " (List.map Event.cls_name t.events))
