(** Architecture descriptions.

    A target architecture "exposes the precise set of events that it
    supports via the P4 architecture description file" (§2). Here that
    file is a value: the event classes the target exposes plus feature
    flags. Programs installed on a switch only receive events their
    architecture supports (and that they subscribed to by defining a
    handler). *)

type t = {
  name : string;
  events : Devents.Event.cls list;
  has_timers : bool;
  has_packet_generator : bool;
  has_recirculation : bool;
}

val baseline_pisa : t
(** The simple single-pipeline PISA of Bosshart et al.: ingress packet
    events and recirculation only. *)

val baseline_psa : t
(** The Portable Switch Architecture (Figure 1): ingress and egress
    packet events, recirculation; no other events. *)

val sume_event_switch : t
(** The paper's prototype (§5, Figure 4): packet events plus enqueue,
    dequeue and drop (buffer-overflow) events, timer events, link
    status change events, and a configurable packet generator. *)

val event_pisa_full : t
(** The general event-driven PISA architecture the paper proposes: all
    thirteen classes of Table 1. *)

val tofino_like : t
(** A modern fixed-function-assisted baseline (§6): packet events, a
    control-plane-configurable packet generator (emulates timers) and
    recirculation (emulates dequeue events); no native events. *)

val supports : t -> Devents.Event.cls -> bool
val pp : Format.formatter -> t -> unit
