module Packet = Netcore.Packet

type t = {
  sched : Eventsim.Scheduler.t;
  id : int;
  mutable tx : (Packet.t -> unit) option;
  mutable receiver : (t -> Packet.t -> unit) option;
  mutable sent : int;
  mutable received : int;
  mutable sent_bytes : int;
  mutable received_bytes : int;
}

let create ~sched ~id () =
  { sched; id; tx = None; receiver = None; sent = 0; received = 0; sent_bytes = 0; received_bytes = 0 }

let id t = t.id
let set_receiver t f = t.receiver <- Some f
let set_tx t f = t.tx <- Some f

let send t pkt =
  t.sent <- t.sent + 1;
  t.sent_bytes <- t.sent_bytes + Packet.len pkt;
  match t.tx with
  | Some tx -> tx pkt
  | None -> failwith (Printf.sprintf "Host %d: not connected" t.id)

let deliver t pkt =
  t.received <- t.received + 1;
  t.received_bytes <- t.received_bytes + Packet.len pkt;
  match t.receiver with Some f -> f t pkt | None -> ()

let sent t = t.sent
let received t = t.received
let received_bytes t = t.received_bytes
let sent_bytes t = t.sent_bytes
