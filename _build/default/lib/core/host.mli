(** End host: a traffic source/sink attached to one switch port via a
    link. Workload generators drive [send]; applications inspect
    received packets via the receiver callback or the counters. *)

type t

val create : sched:Eventsim.Scheduler.t -> id:int -> unit -> t
val id : t -> int
val set_receiver : t -> (t -> Netcore.Packet.t -> unit) -> unit
val set_tx : t -> (Netcore.Packet.t -> unit) -> unit
(** Wired by {!Network.connect_host}. *)

val send : t -> Netcore.Packet.t -> unit
val deliver : t -> Netcore.Packet.t -> unit
(** Called by the link when a packet arrives. *)

val sent : t -> int
val received : t -> int
val received_bytes : t -> int
val sent_bytes : t -> int
