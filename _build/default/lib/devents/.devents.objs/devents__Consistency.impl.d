lib/devents/consistency.ml: Array Int List
