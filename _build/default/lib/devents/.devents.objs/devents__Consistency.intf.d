lib/devents/consistency.mli:
