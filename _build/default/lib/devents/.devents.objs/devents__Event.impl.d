lib/devents/event.ml: Format
