lib/devents/event.mli: Format
