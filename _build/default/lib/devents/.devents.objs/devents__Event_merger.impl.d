lib/devents/event_merger.ml: Array Event Event_queue Eventsim List Netcore Pisa
