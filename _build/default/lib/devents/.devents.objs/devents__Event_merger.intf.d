lib/devents/event_merger.mli: Event Eventsim Netcore Pisa
