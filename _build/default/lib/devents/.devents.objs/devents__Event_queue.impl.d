lib/devents/event_queue.ml: Queue
