lib/devents/event_queue.mli:
