lib/devents/packet_gen.ml: Eventsim Netcore
