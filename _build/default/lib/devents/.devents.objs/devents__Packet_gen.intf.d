lib/devents/packet_gen.mli: Eventsim Netcore
