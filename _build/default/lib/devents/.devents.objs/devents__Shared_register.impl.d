lib/devents/shared_register.ml: Array Pisa Queue Stats
