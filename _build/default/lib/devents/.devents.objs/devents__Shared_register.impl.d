lib/devents/shared_register.ml: Array Obs Pisa Queue Stats
