lib/devents/shared_register.mli: Pisa Stats
