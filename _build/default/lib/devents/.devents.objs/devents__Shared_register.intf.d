lib/devents/shared_register.mli: Obs Pisa Stats
