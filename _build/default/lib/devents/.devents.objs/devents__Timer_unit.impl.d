lib/devents/timer_unit.ml: Event Eventsim Hashtbl
