lib/devents/timer_unit.mli: Event Eventsim
