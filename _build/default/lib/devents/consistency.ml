type event =
  | Update of { issue : int; delta : int }
  | Read of { time : int; value : int }

type violation = { read_time : int; observed : int; valid_values : int list }

let split history =
  let updates, reads =
    List.fold_left
      (fun (ups, rds) ev ->
        match ev with
        | Update { issue; delta } -> ((issue, delta) :: ups, rds)
        | Read { time; value } -> (ups, (time, value) :: rds))
      ([], []) history
  in
  let by_time (a, _) (b, _) = Int.compare a b in
  (Array.of_list (List.sort by_time updates), List.sort by_time reads)

(* Prefix sums: sums.(k) = sum of the first k updates in issue order. *)
let prefix_sums updates =
  let n = Array.length updates in
  let sums = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    sums.(i + 1) <- sums.(i) + snd updates.(i)
  done;
  sums

(* A cut k is valid for a read at time T with bound B iff every update
   issued strictly before T - B is included (k covers them) and no
   included update was issued after T. *)
let valid_cuts ~bound updates ~read_time =
  let n = Array.length updates in
  let lo =
    (* smallest k that includes all updates with issue < read_time - bound *)
    let rec go k =
      if k >= n then n
      else if fst updates.(k) < read_time - bound then go (k + 1)
      else k
    in
    go 0
  in
  let hi =
    (* largest k whose last included update has issue <= read_time *)
    let rec go k = if k < n && fst updates.(k) <= read_time then go (k + 1) else k in
    go 0
  in
  (lo, hi)

let check ~bound history =
  if bound < 0 then invalid_arg "Consistency.check: bound must be non-negative";
  let updates, reads = split history in
  let sums = prefix_sums updates in
  let rec go = function
    | [] -> Ok ()
    | (read_time, observed) :: rest ->
        let lo, hi = valid_cuts ~bound updates ~read_time in
        if lo > hi then
          Error { read_time; observed; valid_values = [] }
        else begin
          let ok = ref false in
          for k = lo to hi do
            if sums.(k) = observed then ok := true
          done;
          if !ok then go rest
          else
            Error
              {
                read_time;
                observed;
                valid_values = List.init (hi - lo + 1) (fun i -> sums.(lo + i));
              }
        end
  in
  go reads

let check_interval ~bound history =
  if bound < 0 then invalid_arg "Consistency.check_interval: bound must be non-negative";
  let updates, reads = split history in
  let sums = prefix_sums updates in
  let n = Array.length updates in
  let rec go = function
    | [] -> Ok ()
    | (read_time, observed) :: rest ->
        let lo, hi = valid_cuts ~bound updates ~read_time in
        let mandatory = sums.(lo) in
        (* Window ops are the updates with indexes lo .. hi-1. *)
        let neg = ref 0 and pos = ref 0 in
        for k = lo to min hi n - 1 do
          let d = snd updates.(k) in
          if d < 0 then neg := !neg + d else pos := !pos + d
        done;
        if observed >= mandatory + !neg && observed <= mandatory + !pos then go rest
        else
          Error
            {
              read_time;
              observed;
              valid_values = [ mandatory + !neg; mandatory + !pos ];
            }
  in
  go reads

let eventually_consistent history = check ~bound:max_int history = Ok ()

type recorder = { mutable events : event list; mutable count : int }

let recorder () = { events = []; count = 0 }

let record_update r ~issue ~delta =
  r.events <- Update { issue; delta } :: r.events;
  r.count <- r.count + 1

let record_read r ~time ~value =
  r.events <- Read { time; value } :: r.events;
  r.count <- r.count + 1

let history r = List.rev r.events
let length r = r.count
