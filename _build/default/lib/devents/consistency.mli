(** Consistency checking for multi-threaded data-plane state.

    §7 of the paper: "Defining a consistency model for multi-threaded
    data-plane programs remains an area of future work." This module
    supplies the natural model for the architecture's dominant state
    pattern — commutative counter updates from event threads, reads
    from packet threads — and a checker for it:

    {b Bounded-staleness consistency with bound B}: a read at time [T]
    must return the sum of a prefix (in issue order) of the update
    history such that every update issued before [T - B] is included
    and no update issued after [T] is. With [B = 0] this is
    linearizability of a counter; with [B = infinity] it is mere
    eventual consistency.

    §4's claim — "staleness is bounded if the pipeline runs slightly
    faster than line rate ... the resulting algorithm has well-defined
    behavior" — becomes checkable: record a history against a
    {!Shared_register} and verify it against the bound the idle-cycle
    supply implies. Tests do exactly that. *)

type event =
  | Update of { issue : int; delta : int }  (** event-thread increment *)
  | Read of { time : int; value : int }  (** packet-thread observation *)

type violation = {
  read_time : int;
  observed : int;
  valid_values : int list;  (** the sums the model would have allowed *)
}

val check : bound:int -> event list -> (unit, violation) result
(** Validate a single-slot history (events in any order; they are
    sorted internally). Returns the first violating read, if any.
    [bound] is in the same time unit as the events (cycles here).

    This is the {e prefix} model: correct when all updates funnel
    through one aggregation queue (e.g. enqueue-side only). *)

val check_interval : bound:int -> event list -> (unit, violation) result
(** The model the two-queue Figure 3 design actually guarantees: the
    enqueue-side and dequeue-side queues drain independently, so
    updates inside the staleness window may apply in {e any} subset
    order. A read is valid when its value lies between
    [mandatory + (sum of negative window deltas)] and
    [mandatory + (sum of positive window deltas)], where [mandatory]
    is the sum of all updates issued before [T - bound]. Sound
    (never rejects a legal execution); slightly over-permissive for
    adversarial windows. Because counter updates commute, this is the
    natural consistency contract for event-driven counters — the
    checkable rendering of §4's "temporarily imprecise but
    well-defined behavior". *)

val eventually_consistent : event list -> bool
(** [check] with an unbounded staleness window: each read must still
    equal {e some} prefix sum — values from thin air are never
    allowed. *)

type recorder

val recorder : unit -> recorder
val record_update : recorder -> issue:int -> delta:int -> unit
val record_read : recorder -> time:int -> value:int -> unit
val history : recorder -> event list
val length : recorder -> int
