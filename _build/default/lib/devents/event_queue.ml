type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutable pushed : int;
  mutable dropped : int;
  mutable high_watermark : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Event_queue.create: capacity must be positive";
  { q = Queue.create (); capacity; pushed = 0; dropped = 0; high_watermark = 0 }

let push t x =
  if Queue.length t.q >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.push x t.q;
    t.pushed <- t.pushed + 1;
    if Queue.length t.q > t.high_watermark then t.high_watermark <- Queue.length t.q;
    true
  end

let pop t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let capacity t = t.capacity
let pushed t = t.pushed
let dropped t = t.dropped
let high_watermark t = t.high_watermark
