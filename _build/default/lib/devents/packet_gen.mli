(** Configurable in-dataplane packet generator (Figure 4, "Packet
    Generator" block).

    Periodically builds a packet from a template function and hands it
    to the architecture's sink, which injects it into the pipeline as a
    {e Generated Packet} event. The control plane (or the data-plane
    program itself, via a context call) can reconfigure period and
    template at run time. *)

type t

val create :
  sched:Eventsim.Scheduler.t -> sink:(Netcore.Packet.t -> unit) -> unit -> t

val configure :
  t -> period:Eventsim.Sim_time.t -> ?count:int -> template:(int -> Netcore.Packet.t) -> unit -> unit
(** Start (or restart) generation: packet [i] (from 0) is
    [template i], emitted every [period]; stop after [count] packets
    when given. *)

val stop : t -> unit
val generated : t -> int
val running : t -> bool
