module Register_array = Pisa.Register_array
module Pipeline = Pisa.Pipeline

type mode = Multiport | Aggregated
type side = Enq_side | Deq_side
type drain_policy = Round_robin | Enq_first | Deq_first

type agg_side = {
  deltas : int array;
  dirty : bool array;
  queue : (int * int) Queue.t; (* (index, issue_cycle) in issue order *)
  side_staleness : Stats.Histogram.t;
}

type t = {
  name : string;
  mode : mode;
  drain_policy : drain_policy;
  pipeline : Pipeline.t;
  main : Register_array.t;
  agg : agg_side array; (* [| enq; deq |], empty in Multiport mode *)
  mutable drain_mark : Pipeline.mark;
  mutable next_side : int; (* round-robin pointer between sides *)
  staleness : Stats.Histogram.t;
  mutable applied : int;
  agg_bits : int;
}

let make_side n =
  {
    deltas = Array.make n 0;
    dirty = Array.make n false;
    queue = Queue.create ();
    side_staleness = Stats.Histogram.log2 ~max_exponent:30;
  }

let create ~alloc ~pipeline ~mode ?(drain_policy = Round_robin) ~name ~entries ~width () =
  let main =
    Pisa.Register_alloc.array alloc ~name:(name ^ "_main") ~entries ~width
  in
  let agg, agg_bits =
    match mode with
    | Multiport -> ([||], 0)
    | Aggregated ->
        (* The two aggregation arrays are real state: charge them. *)
        let enq = Pisa.Register_alloc.array alloc ~name:(name ^ "_enq_agg") ~entries ~width in
        let deq = Pisa.Register_alloc.array alloc ~name:(name ^ "_deq_agg") ~entries ~width in
        (* The allocator meters them; the live delta state lives in
           plain arrays for signed arithmetic, so keep the register
           arrays as footprint-only placeholders. *)
        ( [| make_side entries; make_side entries |],
          Register_array.bits enq + Register_array.bits deq )
  in
  {
    name;
    mode;
    drain_policy;
    pipeline;
    main;
    agg;
    drain_mark = Pipeline.mark pipeline;
    next_side = 0;
    staleness = Stats.Histogram.log2 ~max_exponent:30;
    applied = 0;
    agg_bits;
  }

let mode t = t.mode
let entries t = Register_array.entries t.main

let apply_one t side ~apply_cycle =
  match Queue.take_opt side.queue with
  | None -> false
  | Some (index, issue_cycle) ->
      side.dirty.(index) <- false;
      let delta = side.deltas.(index) in
      side.deltas.(index) <- 0;
      ignore (Register_array.add t.main index delta);
      t.applied <- t.applied + 1;
      let stale = float_of_int (max 0 (apply_cycle - issue_cycle)) in
      Stats.Histogram.add t.staleness stale;
      Stats.Histogram.add side.side_staleness stale;
      true

(* Fold pending deltas into the main array, spending at most the
   idle-cycle budget accumulated since the last drain. Sides alternate
   so neither starves. The k-th op drained in this call is deemed to
   have been applied k idle cycles after the mark, never before the
   cycle after it was issued. *)
let drain t =
  match t.mode with
  | Multiport -> ()
  | Aggregated ->
      let budget, mark' = Pipeline.idle_cycles_since t.pipeline t.drain_mark in
      t.drain_mark <- mark';
      let current = Pipeline.current_cycle t.pipeline in
      let remaining = ref budget in
      let exhausted = ref false in
      while (not !exhausted) && !remaining > 0 do
        let apply_cycle = max 0 (current - !remaining + 1) in
        let first =
          match t.drain_policy with
          | Round_robin ->
              let f = t.next_side in
              t.next_side <- 1 - t.next_side;
              f
          | Enq_first -> 0
          | Deq_first -> 1
        in
        let a = t.agg.(first) and b = t.agg.(1 - first) in
        if apply_one t a ~apply_cycle then decr remaining
        else if apply_one t b ~apply_cycle then decr remaining
        else exhausted := true
      done

let read t i =
  drain t;
  Register_array.read t.main i

let write t i v =
  drain t;
  Register_array.write t.main i v

let add t i delta =
  drain t;
  Register_array.add t.main i delta

let side_index = function Enq_side -> 0 | Deq_side -> 1

let event_add t side i delta =
  match t.mode with
  | Multiport -> ignore (Register_array.add t.main i delta)
  | Aggregated ->
      drain t;
      let s = t.agg.(side_index side) in
      if i < 0 || i >= Array.length s.deltas then
        invalid_arg "Shared_register.event_add: index out of range";
      s.deltas.(i) <- s.deltas.(i) + delta;
      if not s.dirty.(i) then begin
        s.dirty.(i) <- true;
        Queue.push (i, Pipeline.current_cycle t.pipeline) s.queue
      end

let event_read t i = read t i

let true_value t i =
  let base = Register_array.read t.main i in
  match t.mode with
  | Multiport -> base
  | Aggregated -> base + t.agg.(0).deltas.(i) + t.agg.(1).deltas.(i)

let pending_ops t =
  match t.mode with
  | Multiport -> 0
  | Aggregated -> Queue.length t.agg.(0).queue + Queue.length t.agg.(1).queue

let sync t =
  match t.mode with
  | Multiport -> ()
  | Aggregated ->
      Array.iter
        (fun s ->
          Queue.iter
            (fun (i, _) ->
              if s.dirty.(i) then begin
                s.dirty.(i) <- false;
                ignore (Register_array.add t.main i s.deltas.(i));
                s.deltas.(i) <- 0
              end)
            s.queue;
          Queue.clear s.queue)
        t.agg

let staleness t = t.staleness

let side_staleness t side =
  match t.mode with
  | Multiport -> Stats.Histogram.log2 ~max_exponent:1
  | Aggregated -> t.agg.(side_index side).side_staleness
let max_staleness_cycles t = Stats.Histogram.max_seen t.staleness
let applied_ops t = t.applied
let total_bits t = Register_array.bits t.main + t.agg_bits
let name t = t.name

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    let labels = ("register", t.name) :: labels in
    Obs.Metrics.Counter.set
      (Obs.Metrics.counter reg ~labels "shared_register.applied_ops")
      t.applied;
    Obs.Metrics.Gauge.set
      (Obs.Metrics.gauge reg ~labels "shared_register.pending_ops")
      (pending_ops t);
    Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels "shared_register.bits") (total_bits t);
    match t.mode with
    | Multiport -> ()
    | Aggregated ->
        Obs.Metrics.attach_histogram reg ~labels "shared_register.staleness_cycles" t.staleness;
        Array.iteri
          (fun i s ->
            Obs.Metrics.attach_histogram reg
              ~labels:(("side", if i = 0 then "enq" else "deq") :: labels)
              "shared_register.staleness_cycles" s.side_staleness)
          t.agg
  end
