(** The paper's [shared_register] extern: state shared between packet
    processing threads and event handling threads (§2), with the two
    physical realisations discussed in §4:

    - [Multiport]: one memory with a dedicated port per thread — viable
      at low line rates. Event-side operations apply immediately; reads
      are never stale. Charged as multi-ported memory by the resource
      model.

    - [Aggregated] (Figure 3): the main single-ported register array is
      owned by packet events; enqueue-side and dequeue-side operations
      coalesce into dedicated aggregation register arrays (one delta
      slot per index) and are folded into the main array during idle
      pipeline cycles, one index per spare cycle, alternating sides.
      Reads by packet threads see the main array and can therefore be
      stale by a bounded amount when the pipeline has spare cycles —
      exactly the paper's staleness trade-off, which {!staleness}
      quantifies.

    All arrays are allocated from the program's {!Pisa.Register_alloc},
    so both realisations are metered (Aggregated costs 3x the bits, as
    Figure 3's three arrays imply). *)

type mode = Multiport | Aggregated

type side = Enq_side | Deq_side

(** §4 leaves open "how memory accesses are scheduled, depending on
    which events are the most important and urgent". The drain policy
    decides which side's pending updates get each idle cycle:
    [Round_robin] alternates (the default — neither side starves);
    [Enq_first]/[Deq_first] strictly prioritise one side (fresher
    increments resp. decrements, at the cost of staleness on the
    other). E-ablation measures per-side staleness under each. *)
type drain_policy = Round_robin | Enq_first | Deq_first

type t

val create :
  alloc:Pisa.Register_alloc.t ->
  pipeline:Pisa.Pipeline.t ->
  mode:mode ->
  ?drain_policy:drain_policy ->
  name:string ->
  entries:int ->
  width:int ->
  unit ->
  t

val mode : t -> mode
val entries : t -> int

val read : t -> int -> int
(** Packet-thread read of the main array (possibly stale in
    [Aggregated] mode). Draining of pending aggregated ops up to the
    current idle-cycle budget happens first, as the hardware would have
    done during the interval. *)

val write : t -> int -> int -> unit
(** Packet-thread write (direct). *)

val add : t -> int -> int -> int
(** Packet-thread read-modify-write; returns the new value. *)

val event_add : t -> side -> int -> int -> unit
(** Event-thread increment (use a negative delta to decrement). In
    [Aggregated] mode the delta coalesces into the side's aggregation
    array; in [Multiport] mode it applies immediately. *)

val event_read : t -> int -> int
(** Event-thread read; sees the same (possibly stale) main array. *)

val true_value : t -> int -> int
(** Main value plus all pending aggregated deltas — the value an
    oracle (or a multiported memory) would see. *)

val pending_ops : t -> int
(** Dirty aggregation entries not yet folded in. *)

val sync : t -> unit
(** Fold in all pending deltas regardless of budget (end-of-run
    accounting only; does not record staleness). *)

val staleness : t -> Stats.Histogram.t
(** Per-applied-op staleness in pipeline cycles (both sides). *)

val side_staleness : t -> side -> Stats.Histogram.t
(** Per-side staleness, for drain-policy ablations. *)

val max_staleness_cycles : t -> float
val applied_ops : t -> int
val total_bits : t -> int
val name : t -> string

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Publish applied/pending aggregation-op counts, the register's bit
    footprint, and (in [Aggregated] mode) the observed staleness
    histograms — overall and per side — into [reg], labelled by
    register name. Idempotent; a no-op when [reg] is disabled. *)
