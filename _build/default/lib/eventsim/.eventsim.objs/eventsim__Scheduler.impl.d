lib/eventsim/scheduler.ml: Event_heap Printf Sim_time
