lib/eventsim/scheduler.ml: Event_heap Hashtbl List Obs Printf Sim_time String Sys
