lib/eventsim/scheduler.mli: Obs Sim_time
