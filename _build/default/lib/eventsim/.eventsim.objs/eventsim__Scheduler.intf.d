lib/eventsim/scheduler.mli: Sim_time
