lib/eventsim/sim_time.ml: Float Format
