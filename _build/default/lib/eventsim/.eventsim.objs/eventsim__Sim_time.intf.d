lib/eventsim/sim_time.mli: Format
