lib/eventsim/trace.ml: List Queue Sim_time String
