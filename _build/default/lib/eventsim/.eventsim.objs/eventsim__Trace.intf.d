lib/eventsim/trace.mli: Sim_time
