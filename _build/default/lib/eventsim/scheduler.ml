type cell = { mutable cancelled : bool; mutable callback : unit -> unit }
type handle = cell

type t = {
  heap : cell Event_heap.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
}

let create () = { heap = Event_heap.create (); clock = 0; executed = 0 }
let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule: at=%d is before now=%d" at t.clock);
  let cell = { cancelled = false; callback = f } in
  Event_heap.push t.heap ~time:at cell;
  cell

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Scheduler.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) f

let cancel cell = cell.cancelled <- true

let every t ?start ~period f =
  if period <= 0 then invalid_arg "Scheduler.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  let cell = { cancelled = false; callback = (fun () -> ()) } in
  let rec fire () =
    if not cell.cancelled then begin
      f ();
      if not cell.cancelled then begin
        cell.callback <- fire;
        Event_heap.push t.heap ~time:(t.clock + period) cell
      end
    end
  in
  cell.callback <- fire;
  Event_heap.push t.heap ~time:first cell;
  cell

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, cell) ->
      t.clock <- max t.clock time;
      if not cell.cancelled then begin
        t.executed <- t.executed + 1;
        cell.callback ()
      end;
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match (Event_heap.peek_time t.heap, until) with
    | None, _ -> continue := false
    | Some time, Some limit when time > limit -> continue := false
    | Some _, _ -> ignore (step t)
  done;
  match until with Some limit when limit > t.clock -> t.clock <- limit | Some _ | None -> ()

let pending t = Event_heap.length t.heap
let executed t = t.executed
