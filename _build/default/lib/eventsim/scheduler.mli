(** Discrete-event simulation driver.

    Callbacks are executed in non-decreasing time order; ties run in
    schedule order. A callback may schedule further work, including at
    the current instant. *)

type t
type handle

val create : unit -> t
val now : t -> Sim_time.t

val schedule : t -> at:Sim_time.t -> (unit -> unit) -> handle
(** Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> delay:Sim_time.t -> (unit -> unit) -> handle
val cancel : handle -> unit
(** Cancelling an already-run or cancelled handle is a no-op. For a
    periodic handle, cancellation stops all future firings. *)

val every : t -> ?start:Sim_time.t -> period:Sim_time.t -> (unit -> unit) -> handle
(** Fire at [start] (default: now + period) and then every [period]
    until cancelled. *)

val run : ?until:Sim_time.t -> t -> unit
(** Execute events until the queue is empty or the next event is after
    [until]; with [until], the clock is left at [until]. *)

val step : t -> bool
(** Run the single earliest event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of queued (possibly cancelled) events — a debugging aid. *)

val executed : t -> int
(** Total callbacks executed so far. *)
