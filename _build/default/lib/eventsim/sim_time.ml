type t = int

let zero = 0
let ps x = x
let ns x = x * 1_000
let us x = x * 1_000_000
let ms x = x * 1_000_000_000
let sec x = x * 1_000_000_000_000
let to_ns t = float_of_int t /. 1e3
let to_us t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e9
let to_sec t = float_of_int t /. 1e12
let of_ns_float f = int_of_float (Float.round (f *. 1e3))

let tx_time ~bytes ~gbps =
  if gbps <= 0. then invalid_arg "Sim_time.tx_time: rate must be positive";
  (* 1 bit at [gbps] Gb/s takes 1000/gbps picoseconds. *)
  int_of_float (Float.round (float_of_int (bytes * 8) *. 1000. /. gbps))

let cycles t ~cycle =
  if cycle <= 0 then invalid_arg "Sim_time.cycles: cycle must be positive";
  t / cycle

let pp ppf t =
  if t >= 1_000_000_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fus" (to_us t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fns" (to_ns t)
  else Format.fprintf ppf "%dps" t
