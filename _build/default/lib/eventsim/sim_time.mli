(** Simulation time.

    Time is an integer number of picoseconds, so both 10 Gb/s
    serialization (0.8 ns per byte = 800 ps) and a 200 MHz pipeline clock
    (5 ns = 5000 ps per cycle) are exact. A 63-bit int holds about 106
    days of picoseconds, far beyond any experiment here. *)

type t = int

val zero : t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val of_ns_float : float -> t
(** Round a nanosecond quantity to picoseconds. *)

val tx_time : bytes:int -> gbps:float -> t
(** Serialization delay of [bytes] at [gbps] gigabits per second. *)

val cycles : t -> cycle:t -> int
(** [cycles t ~cycle] is the number of whole clock cycles of length
    [cycle] elapsed at time [t]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable with an adaptive unit. *)
