type t = {
  limit : int;
  q : (Sim_time.t * string) Queue.t;
  mutable enabled : bool;
  mutable count : int;
}

let create ?(limit = 10_000) () = { limit; q = Queue.create (); enabled = false; count = 0 }
let enable t = t.enabled <- true
let disable t = t.enabled <- false

let record t ~time msg =
  if t.enabled then begin
    t.count <- t.count + 1;
    Queue.push (time, msg) t.q;
    if Queue.length t.q > t.limit then ignore (Queue.pop t.q)
  end

let records t = List.of_seq (Queue.to_seq t.q)
let count t = t.count

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i = if i + nn > nh then false else String.sub hay i nn = needle || go (i + 1) in
    go 0

let find t ~pattern =
  Queue.fold
    (fun acc (time, msg) ->
      match acc with
      | Some _ -> acc
      | None -> if contains_substring msg pattern then Some (time, msg) else None)
    None t.q

let clear t =
  Queue.clear t.q;
  t.count <- 0
