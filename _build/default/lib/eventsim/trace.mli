(** Lightweight bounded trace recorder for debugging and tests.

    Components log one-line records; tests assert on their order and
    content; experiments usually leave tracing disabled. *)

type t

val create : ?limit:int -> unit -> t
(** Keep at most [limit] most recent records (default 10_000). *)

val enable : t -> unit
val disable : t -> unit
val record : t -> time:Sim_time.t -> string -> unit
val records : t -> (Sim_time.t * string) list
(** Oldest first. *)

val count : t -> int
(** Number of records ever offered while enabled (including any that
    were dropped by the bound). *)

val find : t -> pattern:string -> (Sim_time.t * string) option
(** First record whose message contains [pattern] as a substring. *)

val clear : t -> unit
