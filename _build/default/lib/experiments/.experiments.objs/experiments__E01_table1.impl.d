lib/experiments/e01_table1.ml: Devents Evcore Eventsim List Netcore Printf Report Tmgr
