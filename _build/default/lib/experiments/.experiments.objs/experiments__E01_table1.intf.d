lib/experiments/e01_table1.mli: Devents Obs
