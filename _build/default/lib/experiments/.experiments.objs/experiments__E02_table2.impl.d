lib/experiments/e02_table2.ml: Apps Array Devents Evcore Eventsim List Netcore Report Stats String Tmgr Workloads
