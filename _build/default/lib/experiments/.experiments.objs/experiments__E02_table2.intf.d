lib/experiments/e02_table2.mli: Devents
