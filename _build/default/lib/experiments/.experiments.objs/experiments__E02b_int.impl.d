lib/experiments/e02b_int.ml: Apps Evcore Eventsim List Netcore Printf Report Stats Tmgr Workloads
