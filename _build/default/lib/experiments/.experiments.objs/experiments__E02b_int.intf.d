lib/experiments/e02b_int.mli:
