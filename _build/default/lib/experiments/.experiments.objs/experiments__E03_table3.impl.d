lib/experiments/e03_table3.ml: Format List Printf Report Resmodel
