lib/experiments/e03_table3.mli: Resmodel
