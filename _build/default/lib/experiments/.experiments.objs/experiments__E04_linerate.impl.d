lib/experiments/e04_linerate.ml: Apps Devents Evcore Eventsim Float List Netcore Pisa Printf Report Stats Tmgr Workloads
