lib/experiments/e04_linerate.mli: Eventsim Obs
