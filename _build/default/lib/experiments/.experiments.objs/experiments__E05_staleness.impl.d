lib/experiments/e05_staleness.ml: Array Devents Evcore Eventsim Float List Netcore Option Pisa Report Stats Workloads
