lib/experiments/e05_staleness.mli: Obs
