lib/experiments/e06_microburst.ml: Apps Array Devents Evcore Eventsim Int List Netcore Printf Report Stats String Workloads
