lib/experiments/e06_microburst.mli: Obs
