lib/experiments/e07_cms_reset.ml: Apps Array Evcore Eventsim Hashtbl List Netcore Option Printf Report Stats
