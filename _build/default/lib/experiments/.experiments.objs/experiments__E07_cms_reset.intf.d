lib/experiments/e07_cms_reset.mli:
