lib/experiments/e08_hula.ml: Apps Array Evcore Eventsim Float Hashtbl List Netcore Option Printf Report Stats Tmgr Workloads
