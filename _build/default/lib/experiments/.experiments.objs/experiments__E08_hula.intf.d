lib/experiments/e08_hula.mli:
