lib/experiments/e09_liveness.ml: Apps Evcore Eventsim Option Report Stats Tmgr
