lib/experiments/e09_liveness.mli:
