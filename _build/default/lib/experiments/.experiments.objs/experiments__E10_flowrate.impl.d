lib/experiments/e10_flowrate.ml: Apps Array Evcore Eventsim Float List Netcore Printf Report Stats Workloads
