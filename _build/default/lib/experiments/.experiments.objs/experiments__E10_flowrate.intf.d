lib/experiments/e10_flowrate.mli:
