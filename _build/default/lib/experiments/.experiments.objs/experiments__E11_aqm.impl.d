lib/experiments/e11_aqm.ml: Apps Array Evcore Eventsim List Netcore Report Stats Tmgr Workloads
