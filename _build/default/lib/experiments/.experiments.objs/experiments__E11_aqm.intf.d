lib/experiments/e11_aqm.mli:
