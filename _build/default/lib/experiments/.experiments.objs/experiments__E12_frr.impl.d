lib/experiments/e12_frr.ml: Apps Evcore Eventsim Netcore Option Printf Report Stats Tmgr Workloads
