lib/experiments/e12_frr.mli:
