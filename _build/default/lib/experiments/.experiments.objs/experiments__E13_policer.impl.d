lib/experiments/e13_policer.ml: Apps Evcore Eventsim Float List Netcore Report Stats Workloads
