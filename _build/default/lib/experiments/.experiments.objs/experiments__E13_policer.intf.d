lib/experiments/e13_policer.mli:
