lib/experiments/e14_netcache.ml: Apps Evcore Eventsim Float List Netcore Printf Report Stats
