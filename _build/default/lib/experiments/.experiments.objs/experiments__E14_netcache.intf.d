lib/experiments/e14_netcache.mli:
