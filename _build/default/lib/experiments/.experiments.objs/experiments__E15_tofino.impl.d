lib/experiments/e15_tofino.ml: Array Devents Evcore Eventsim List Netcore Option Pisa Printf Report Stats Tmgr Workloads
