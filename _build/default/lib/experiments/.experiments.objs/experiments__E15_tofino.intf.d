lib/experiments/e15_tofino.mli:
