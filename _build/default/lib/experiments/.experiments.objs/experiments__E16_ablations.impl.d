lib/experiments/e16_ablations.ml: Apps Array Devents Evcore Eventsim Float List Netcore Option Pisa Report Stats Workloads
