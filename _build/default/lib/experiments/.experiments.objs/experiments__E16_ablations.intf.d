lib/experiments/e16_ablations.mli:
