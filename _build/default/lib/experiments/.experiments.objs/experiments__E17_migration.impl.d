lib/experiments/e17_migration.ml: Apps Array Evcore Eventsim Hashtbl List Netcore Option Printf Report Stats Tmgr Workloads
