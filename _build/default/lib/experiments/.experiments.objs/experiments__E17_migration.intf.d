lib/experiments/e17_migration.mli:
