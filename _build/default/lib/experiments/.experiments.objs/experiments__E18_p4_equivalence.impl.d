lib/experiments/e18_p4_equivalence.ml: Apps Devents Evcore Eventsim Int List Netcore P4dsl Pisa Printf Report Stats String Workloads
