lib/experiments/e18_p4_equivalence.mli:
