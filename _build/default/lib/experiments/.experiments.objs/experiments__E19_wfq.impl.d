lib/experiments/e19_wfq.ml: Apps Evcore Eventsim Float Hashtbl List Netcore Option Report Stats Tmgr Workloads
