lib/experiments/e19_wfq.mli:
