lib/experiments/e20_ecn.ml: Apps Array Evcore Eventsim List Netcore Report Stats Tmgr Workloads
