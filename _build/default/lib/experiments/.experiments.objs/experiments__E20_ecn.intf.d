lib/experiments/e20_ecn.mli:
