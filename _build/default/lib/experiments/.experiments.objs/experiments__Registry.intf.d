lib/experiments/registry.mli:
