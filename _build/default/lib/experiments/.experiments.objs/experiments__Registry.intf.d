lib/experiments/registry.mli: Obs
