lib/experiments/report.ml: Array Float List Obs Printf String
