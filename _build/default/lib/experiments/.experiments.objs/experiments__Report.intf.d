lib/experiments/report.mli:
