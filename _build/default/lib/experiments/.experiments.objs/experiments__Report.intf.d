lib/experiments/report.mli: Obs
