(* E1 — Table 1: the set of data-plane events.

   One program subscribes to every event class and a single scenario
   provokes all of them (traffic, a burst that overflows a tiny
   buffer, recirculation, generated packets, timers, a control-plane
   trigger, a link flap, a user event). Running it on three
   architectures shows which classes each target delivers: the full
   event-driven PISA handles all thirteen, the SUME Event Switch its
   documented subset, and the baseline PSA only packet events. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch

type arch_result = {
  arch_name : string;
  fired : (Event.cls * int) list;
  handled : (Event.cls * int) list;
}

type result = { arches : arch_result list }

let omni_program () : Program.spec =
 fun ctx ->
  let seen_first = ref false in
  (try
     ignore (ctx.Program.add_timer ~period:(Sim_time.us 10));
     ctx.Program.configure_pktgen ~period:(Sim_time.us 25) ~count:4
       ~template:(fun i ->
         Packet.udp_packet
           ~src:(Netcore.Ipv4_addr.host ~subnet:7 i)
           ~dst:(Netcore.Ipv4_addr.host ~subnet:1 0)
           ~src_port:9 ~dst_port:9 ~payload_len:22 ())
       ()
   with Program.Unsupported _ -> ());
  let ingress ctx _pkt =
    if not !seen_first then begin
      seen_first := true;
      ctx.Program.emit_user_event ~tag:1 ~data:42;
      Program.Recirculate
    end
    else Program.Forward 0
  in
  let nop_buffer _ctx (_ev : Event.buffer_event) = () in
  Program.make ~name:"omni" ~ingress
    ~recirculated:(fun _ctx _pkt -> Program.Forward 0)
    ~generated:(fun _ctx _pkt -> Program.Forward 0)
    ~egress:(fun _ctx ~port:_ pkt -> Some pkt)
    ~enqueue:nop_buffer ~dequeue:nop_buffer ~overflow:nop_buffer
    ~underflow:(fun _ctx _ev -> ())
    ~transmitted:(fun _ctx _ev -> ())
    ~timer:(fun _ctx _ev -> ())
    ~link_change:(fun _ctx _ev -> ())
    ~control:(fun _ctx _ev -> ())
    ~user:(fun _ctx _ev -> ())
    ()

let run_arch ?metrics arch =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config arch in
  let config =
    {
      config with
      Event_switch.tm_config =
        { config.Event_switch.tm_config with Tmgr.Traffic_manager.buffer_bytes = 4_000 };
    }
  in
  let sw = Event_switch.create ~sched ~config ~program:(omni_program ()) () in
  let obs_labels = [ ("arch", arch.Arch.name) ] in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels sched m
  | None -> ());
  Event_switch.set_port_tx sw ~port:0 (fun _ -> ());
  (* Traffic: a burst big enough to overflow the 4 KB buffer. *)
  for i = 0 to 39 do
    ignore
      (Scheduler.schedule sched ~at:(i * Sim_time.ns 100) (fun () ->
           Event_switch.inject sw ~port:1
             (Packet.udp_packet
                ~src:(Netcore.Ipv4_addr.host ~subnet:2 i)
                ~dst:(Netcore.Ipv4_addr.host ~subnet:1 0)
                ~src_port:i ~dst_port:80 ~payload_len:958 ())))
  done;
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 30) (fun () ->
         Event_switch.control_event sw ~opcode:1 ~arg:0));
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 40) (fun () ->
         Event_switch.link_status sw ~port:2 ~up:false));
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 50) (fun () ->
         Event_switch.link_status sw ~port:2 ~up:true));
  Scheduler.run ~until:(Sim_time.us 200) sched;
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw m
  | None -> ());
  {
    arch_name = arch.Arch.name;
    fired = List.map (fun cls -> (cls, Event_switch.fired sw cls)) Event.all_classes;
    handled = List.map (fun cls -> (cls, Event_switch.handled sw cls)) Event.all_classes;
  }

let run ?metrics () =
  {
    arches =
      List.map (run_arch ?metrics)
        [ Arch.baseline_psa; Arch.sume_event_switch; Arch.event_pisa_full ];
  }

let cell ar cls =
  let handled = List.assoc cls ar.handled in
  let fired = List.assoc cls ar.fired in
  if handled > 0 then Printf.sprintf "yes (%d)" handled
  else if fired > 0 then "masked"
  else "-"

let print r =
  Report.section "E1 / Table 1 — data-plane event classes delivered per architecture";
  Report.note "'yes (n)' = n events delivered to the program; 'masked' = the";
  Report.note "hardware produced the event but the architecture does not expose it.";
  Report.blank ();
  let headers = "Event" :: List.map (fun a -> a.arch_name) r.arches in
  let rows =
    List.map
      (fun cls -> Event.cls_name cls :: List.map (fun ar -> cell ar cls) r.arches)
      Event.all_classes
  in
  Report.table ~headers ~rows;
  let full = List.nth r.arches 2 in
  let all_handled =
    List.for_all (fun cls -> List.assoc cls full.handled > 0) Event.all_classes
  in
  Report.blank ();
  Report.kv "event-pisa handles all 13 classes" (if all_handled then "PASS" else "FAIL")

let name = "table1"
