(** E1 — reproduces Table 1: which data-plane event classes each
    architecture delivers to an omni-subscribed program. *)

type arch_result = {
  arch_name : string;
  fired : (Devents.Event.cls * int) list;
  handled : (Devents.Event.cls * int) list;
}

type result = { arches : arch_result list }

val run : unit -> result
val print : result -> unit
val name : string
