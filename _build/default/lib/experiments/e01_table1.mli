(** E1 — reproduces Table 1: which data-plane event classes each
    architecture delivers to an omni-subscribed program. *)

type arch_result = {
  arch_name : string;
  fired : (Devents.Event.cls * int) list;
  handled : (Devents.Event.cls * int) list;
}

type result = { arches : arch_result list }

val run : ?metrics:Obs.Metrics.t -> unit -> result
(** With [metrics], scheduler profiling plus per-switch series are
    recorded per architecture (labelled [arch=...]). *)

val print : result -> unit
val name : string
