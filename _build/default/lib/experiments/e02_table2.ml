(* E2 — Table 2: application classes and the events they use.

   Each of the paper's five application classes is represented by the
   implemented applications; a short scenario runs each and the
   switch's per-class delivery counters record which data-plane events
   the programs actually consumed. The printed matrix puts the
   measured event set next to the paper's "Events Used" column. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Topology = Workloads.Topology
module Traffic = Workloads.Traffic

type class_row = {
  class_name : string;
  examples : string;
  paper_events : string;
  measured : Event.cls list;
}

type result = { rows : class_row list }

(* The event classes Table 2's "Events Used" column draws from. *)
let reportable =
  [
    Event.Buffer_enqueue;
    Event.Buffer_dequeue;
    Event.Buffer_overflow;
    Event.Buffer_underflow;
    Event.Packet_transmitted;
    Event.Timer_expiration;
    Event.Link_status_change;
    Event.Control_plane;
    Event.User_event;
    Event.Generated_packet;
  ]

let measured_of switches =
  List.filter
    (fun cls -> List.exists (fun sw -> Event_switch.handled sw cls > 0) switches)
    reportable

let mk_flow i =
  Netcore.Flow.make
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 i)
    ~src_port:(1000 + i) ~dst_port:80 ()

let single_switch_run ?(tm_config = Tmgr.Traffic_manager.default_config) ~spec ~drive () =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config = { config with Event_switch.tm_config } in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  drive sched sw;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  sw

let drive_cbr ?(flows = 3) ?(rate_gbps = 2.) sched sw =
  for i = 0 to flows - 1 do
    ignore
      (Traffic.cbr ~sched ~flow:(mk_flow i) ~pkt_bytes:500 ~rate_gbps
         ~stop:(Sim_time.us 800)
         ~send:(fun pkt -> Event_switch.inject sw ~port:(i mod 3) pkt)
         ())
  done

(* Congestion-aware forwarding: HULA on a small fabric. *)
let congestion_aware () =
  let sched = Scheduler.create () in
  let hula =
    Apps.Hula.create
      {
        Apps.Hula.default_params with
        Apps.Hula.num_leaves = 2;
        num_spines = 2;
        hosts_per_leaf = 1;
        probe_period = Sim_time.us 50;
        util_period = Sim_time.us 50;
      }
      Apps.Hula.Event_driven
  in
  let topo =
    Topology.leaf_spine ~sched ~num_leaves:2 ~num_spines:2 ~hosts_per_leaf:1
      ~config:(fun _ -> Event_switch.default_config Arch.event_pisa_full)
      ~program:(Apps.Hula.program hula) ()
  in
  ignore
    (Traffic.cbr ~sched
       ~flow:
         (Netcore.Flow.make
            ~src:(Netcore.Ipv4_addr.host ~subnet:0 0)
            ~dst:(Netcore.Ipv4_addr.host ~subnet:1 0)
            ~src_port:5000 ~dst_port:6000 ())
       ~pkt_bytes:1000 ~rate_gbps:2. ~stop:(Sim_time.us 800)
       ~send:(fun pkt -> Evcore.Host.send topo.Topology.hosts.(0).(0) pkt)
       ());
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Array.to_list topo.Topology.leaves @ Array.to_list topo.Topology.spines

(* Network management: fast re-route across a link failure plus
   liveness monitoring. *)
let network_management () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let spec_frr, _ = Apps.Fast_reroute.program ~mode:Apps.Fast_reroute.Event_driven ~primary:1 ~backup:2 () in
  let spec_live, _ =
    Apps.Liveness.program
      ~mode:
        (Apps.Liveness.Event_driven
           { probe_period = Sim_time.us 50; check_period = Sim_time.us 50 })
      ~timeout:(Sim_time.us 150) ~neighbor_port:3 ~out_port:(fun _ -> 0) ()
  in
  let sw_a = Event_switch.create ~sched ~id:0 ~config ~program:spec_frr () in
  let sw_b = Event_switch.create ~sched ~id:1 ~config ~program:spec_live () in
  let link = Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw_b ~port:p (fun _ -> ())
  done;
  Event_switch.set_port_tx sw_a ~port:0 (fun _ -> ());
  Event_switch.set_port_tx sw_a ~port:2 (fun _ -> ());
  ignore
    (Traffic.cbr ~sched ~flow:(mk_flow 0) ~pkt_bytes:500 ~rate_gbps:1. ~stop:(Sim_time.us 800)
       ~send:(fun pkt -> Event_switch.inject sw_a ~port:0 pkt)
       ());
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 400) (fun () -> Tmgr.Link.fail link));
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  [ sw_a; sw_b ]

(* Network monitoring: microburst detection + CMS-with-reset +
   flow-rate measurement + aggregated INT. *)
let network_monitoring () =
  let burst sched sw =
    drive_cbr sched sw;
    ignore
      (Traffic.burst_once ~sched ~flow:(mk_flow 7) ~pkt_bytes:1000 ~count:50 ~rate_gbps:10.
         ~at:(Sim_time.us 300)
         ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
         ())
  in
  let tiny_buffer =
    { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.buffer_bytes = 20_000 }
  in
  let mb =
    let spec, _ = Apps.Microburst.program ~threshold_bytes:10_000 ~out_port:(fun _ -> 3) () in
    single_switch_run ~tm_config:tiny_buffer ~spec ~drive:burst ()
  in
  let cms =
    let spec, _ =
      Apps.Cms_reset.program ~mode:Apps.Cms_reset.Timer_reset ~window:(Sim_time.us 200)
        ~threshold_packets:50 ~out_port:(fun _ -> 3) ()
    in
    single_switch_run ~spec ~drive:drive_cbr ()
  in
  let rate =
    let spec, _ = Apps.Flow_rate.program ~slice:(Sim_time.us 100) ~out_port:(fun _ -> 3) () in
    single_switch_run ~spec ~drive:drive_cbr ()
  in
  let int_sw =
    let spec, _ =
      Apps.Int_telemetry.program
        ~strategy:
          (Apps.Int_telemetry.Aggregated
             {
               report_period = Sim_time.us 100;
               occupancy_threshold = 10_000;
               heartbeat_every = 4;
             })
        ~out_port:(fun _ -> 3) ()
    in
    single_switch_run ~tm_config:tiny_buffer ~spec ~drive:burst ()
  in
  [ mb; cms; rate; int_sw ]

(* Traffic management: FRED-like AQM + timer policer + PIFO WFQ. *)
let traffic_management () =
  let congest sched sw = drive_cbr ~flows:4 ~rate_gbps:4. sched sw in
  let aqm =
    let spec, _ =
      Apps.Aqm.program
        ~policy:(Apps.Aqm.Fred { multiplier = 0.6 })
        ~buffer_bytes:(256 * 1024)
        ~out_port:(fun _ -> 3) ()
    in
    single_switch_run ~spec ~drive:congest ()
  in
  let pol =
    let spec, _ =
      Apps.Policer.program
        ~mode:(Apps.Policer.Timer_bucket { refill_period = Sim_time.us 50 })
        ~cir_bytes_per_sec:125_000_000. ~burst_bytes:64_000 ~out_port:(fun _ -> 3) ()
    in
    single_switch_run ~spec ~drive:drive_cbr ()
  in
  let wfq =
    let spec, _ =
      Apps.Wfq.program ~weight_of:(fun ~flow_slot -> 1 + (flow_slot mod 4)) ~out_port:(fun _ -> 3) ()
    in
    let tm_config =
      { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.policy = Tmgr.Traffic_manager.Pifo_sched }
    in
    single_switch_run ~tm_config ~spec ~drive:congest ()
  in
  [ aqm; pol; wfq ]

(* In-network computing: NetCache with timer-driven decay. *)
let in_network_computing ~seed =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let spec, _ =
    Apps.Netcache.program ~with_timers:true ~server_port:3
      ~client_port:(fun _ -> 0) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let server = Evcore.Host.create ~sched ~id:9 () in
  Evcore.Host.set_receiver server (fun h pkt ->
      match pkt.Packet.payload with
      | Apps.Netcache.Kv_get { key } ->
          let reply =
            Packet.udp_packet
              ~src:(Netcore.Ipv4_addr.host ~subnet:9 1)
              ~dst:(Netcore.Ipv4_addr.host ~subnet:3 0)
              ~src_port:11_211 ~dst_port:10_000 ~payload_len:64 ()
          in
          reply.Packet.payload <- Apps.Netcache.Kv_reply { key; from_cache = false };
          Evcore.Host.send h reply
      | _ -> ());
  ignore (Network.connect_host network ~host:server ~switch:(sw, 3) ());
  Event_switch.set_port_tx sw ~port:0 (fun _ -> ());
  let rng = Stats.Rng.create ~seed in
  let zipf = Stats.Dist.zipf ~n:100 ~alpha:1.2 in
  for i = 0 to 400 do
    ignore
      (Scheduler.schedule sched
         ~at:(i * Sim_time.us 2)
         (fun () ->
           Event_switch.inject sw ~port:0
             (Apps.Netcache.get_packet ~client:0 ~key:(Stats.Dist.zipf_draw rng zipf))))
  done;
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  [ sw ]

let run ?(seed = 42) () =
  {
    rows =
      [
        {
          class_name = "Congestion Aware Forwarding";
          examples = "HULA load balancing";
          paper_events = "Enqueue, Dequeue, Buffer Overflow, Timer";
          measured = measured_of (congestion_aware ());
        };
        {
          class_name = "Network Management";
          examples = "Fast Re-Route, liveness detection";
          paper_events = "Timer, Link Status";
          measured = measured_of (network_management ());
        };
        {
          class_name = "Network Monitoring";
          examples = "microburst, CMS, rate, INT";
          paper_events = "Timer, Enqueue, Dequeue, Buffer Overflow";
          measured = measured_of (network_monitoring ());
        };
        {
          class_name = "Traffic Management";
          examples = "FRED AQM, policer, PIFO WFQ";
          paper_events = "Enqueue, Dequeue, Overflow/Underflow, Timer";
          measured = measured_of (traffic_management ());
        };
        {
          class_name = "In-Network Computing";
          examples = "NetCache-style caching";
          paper_events = "Timer, Link Status";
          measured = measured_of (in_network_computing ~seed);
        };
      ];
  }

let print r =
  Report.section "E2 / Table 2 — application classes and the events they consume";
  Report.note "'measured' = event classes actually delivered to the running programs.";
  Report.blank ();
  Report.table
    ~headers:[ "Application class"; "Examples run"; "Events used (measured)" ]
    ~rows:
      (List.map
         (fun row ->
           [
             row.class_name;
             row.examples;
             String.concat ", " (List.map Event.cls_name row.measured);
           ])
         r.rows);
  Report.blank ();
  Report.table
    ~headers:[ "Application class"; "Events used (paper Table 2)" ]
    ~rows:(List.map (fun row -> [ row.class_name; row.paper_events ]) r.rows);
  Report.blank ();
  let uses cls row = List.exists (Event.cls_equal cls) row.measured in
  let get i = List.nth r.rows i in
  Report.kv "every class consumes timer events"
    (if List.for_all (uses Event.Timer_expiration) r.rows then "PASS" else "FAIL");
  Report.kv "monitoring + traffic mgmt use enq/deq"
    (if
       uses Event.Buffer_enqueue (get 2) && uses Event.Buffer_dequeue (get 2)
       && uses Event.Buffer_enqueue (get 3)
       && uses Event.Buffer_dequeue (get 3)
     then "PASS"
     else "FAIL");
  Report.kv "network management uses link status"
    (if uses Event.Link_status_change (get 1) then "PASS" else "FAIL")

let name = "table2"
