(** E2 — reproduces Table 2: application classes and the event classes
    their programs actually consume, measured by instrumentation. *)

type class_row = {
  class_name : string;
  examples : string;
  paper_events : string;
  measured : Devents.Event.cls list;
}

type result = { rows : class_row list }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
