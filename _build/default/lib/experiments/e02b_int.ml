(* E2b — §3 Network Monitoring: INT report volume reduction.

   A congested episode is injected mid-run. Per-packet INT reports
   every forwarded packet to the monitor; the event-driven aggregator
   folds enqueue/overflow signals into registers and reports once per
   timer window, and only when the window is anomalous (or on a
   heartbeat). Both must catch the episode; the report volume differs
   by orders of magnitude. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let duration = Sim_time.ms 2
let burst_at = Sim_time.ms 1

type variant_result = {
  variant : string;
  reports : int;
  anomalies : int;
  packets : int;
  caught_burst : bool;
}

type result = { per_packet : variant_result; aggregated : variant_result }

let run_variant ~seed ~variant strategy =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config =
    {
      config with
      Event_switch.tm_config =
        { config.Event_switch.tm_config with Tmgr.Traffic_manager.buffer_bytes = 64_000 };
    }
  in
  let spec, app = Apps.Int_telemetry.program ~strategy ~out_port:(fun _ -> 1) () in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  let rng = Stats.Rng.create ~seed in
  (* Steady 2 Gb/s background plus a 60-packet burst at [burst_at]
     that drives the 64KB buffer over the anomaly threshold. *)
  ignore
    (Traffic.poisson ~sched ~rng
       ~flow:
         (Netcore.Flow.make
            ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
            ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
            ~src_port:1 ~dst_port:80 ())
       ~pkt_bytes:500 ~rate_pps:500_000. ~stop:duration
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  (* Two simultaneous 10G bursts into the single 10G output: the
     queue spikes past the anomaly threshold and overflows. *)
  List.iter
    (fun (port, host) ->
      ignore
        (Traffic.burst_once ~sched
           ~flow:
             (Netcore.Flow.make
                ~src:(Netcore.Ipv4_addr.host ~subnet:1 host)
                ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
                ~src_port:host ~dst_port:80 ())
           ~pkt_bytes:1000 ~count:60 ~rate_gbps:10. ~at:burst_at
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ (2, 8); (3, 9) ];
  Scheduler.run ~until:(duration + Sim_time.us 200) sched;
  let reports = Apps.Int_telemetry.reports app in
  let caught =
    List.exists
      (fun (rep : Apps.Int_telemetry.report) ->
        (rep.Apps.Int_telemetry.max_occupancy > 30_000 || rep.Apps.Int_telemetry.losses > 0)
        && rep.Apps.Int_telemetry.time >= burst_at)
      reports
  in
  {
    variant;
    reports = Apps.Int_telemetry.report_count app;
    anomalies = Apps.Int_telemetry.anomalies_reported app;
    packets = Apps.Int_telemetry.packets_forwarded app;
    caught_burst = caught;
  }

let run ?(seed = 42) () =
  {
    per_packet = run_variant ~seed ~variant:"per-packet INT" Apps.Int_telemetry.Per_packet;
    aggregated =
      run_variant ~seed ~variant:"event-driven aggregation"
        (Apps.Int_telemetry.Aggregated
           {
             report_period = Sim_time.us 100;
             occupancy_threshold = 30_000;
             heartbeat_every = 10;
           });
  }

let print r =
  Report.section "E2b / §3 — INT: data-plane aggregation cuts report volume";
  Report.blank ();
  let row v =
    [
      v.variant;
      string_of_int v.packets;
      string_of_int v.reports;
      string_of_int v.anomalies;
      (if v.caught_burst then "yes" else "NO");
    ]
  in
  Report.table
    ~headers:[ "variant"; "packets"; "monitor reports"; "anomaly reports"; "caught burst" ]
    ~rows:[ row r.per_packet; row r.aggregated ];
  Report.blank ();
  let reduction = float_of_int r.per_packet.reports /. float_of_int (max 1 r.aggregated.reports) in
  Report.kv "report volume reduction" (Printf.sprintf "%.0fx" reduction);
  Report.kv "both catch the congestion episode"
    (if r.per_packet.caught_burst && r.aggregated.caught_burst then "PASS" else "FAIL");
  Report.kv "at least 20x fewer reports" (if reduction >= 20. then "PASS" else "FAIL")

let name = "int-telemetry"
