(** E2b — §3 Network Monitoring: INT report-volume reduction through
    event-driven aggregation. *)

type variant_result = {
  variant : string;
  reports : int;
  anomalies : int;
  packets : int;
  caught_burst : bool;
}

type result = { per_packet : variant_result; aggregated : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
