(* E3 — Table 3: FPGA resource cost of event support.

   Composes the resource model's baseline switch and event-support
   components on the Virtex-7 690T and reports the event logic's cost
   as a percentage of the device, next to the paper's numbers
   (LUT +0.5%, FF +0.4%, BRAM +2.0%). *)

module Rm = Resmodel.Resource_model

type result = {
  device : Rm.device;
  baseline : Rm.cost;
  event_extra : Rm.cost;
  increases : (string * float) list;
}

let paper = [ ("Lookup Tables", 0.5); ("Flip Flops", 0.4); ("Block RAM", 2.0) ]

let run () =
  {
    device = Rm.virtex7_690t;
    baseline = Rm.sum Rm.baseline_components;
    event_extra = Rm.sum Rm.event_components;
    increases = Rm.table3 ();
  }

let print r =
  Report.section "E3 / Table 3 — resource cost of event support (Virtex-7 690T)";
  let bl, bf, bb = Rm.utilisation r.device r.baseline in
  Report.kv "baseline switch utilisation"
    (Printf.sprintf "LUT %.1f%%  FF %.1f%%  BRAM %.1f%%" (100. *. bl) (100. *. bf) (100. *. bb));
  Report.kv "event logic absolute cost"
    (Format.asprintf "%a" Rm.pp_cost r.event_extra);
  Report.blank ();
  Report.table
    ~headers:[ "FPGA Resource"; "% increase (model)"; "% increase (paper)" ]
    ~rows:
      (List.map
         (fun (name, model_pct) ->
           let paper_pct = List.assoc name paper in
           [ name; Report.f1 model_pct; Report.f1 paper_pct ])
         r.increases);
  Report.blank ();
  Report.table
    ~headers:[ "Event component"; "LUT"; "FF"; "BRAM" ]
    ~rows:
      (List.map
         (fun (c : Rm.component) ->
           [
             c.Rm.name;
             string_of_int c.Rm.cost.Rm.luts;
             string_of_int c.Rm.cost.Rm.ffs;
             string_of_int c.Rm.cost.Rm.brams;
           ])
         Rm.event_components)

let name = "table3"
