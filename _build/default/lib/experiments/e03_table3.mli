(** E3 — reproduces Table 3: FPGA resource cost of event support on a
    Virtex-7 690T, from the documented component cost model. *)

type result = {
  device : Resmodel.Resource_model.device;
  baseline : Resmodel.Resource_model.cost;
  event_extra : Resmodel.Resource_model.cost;
  increases : (string * float) list;
}

val paper : (string * float) list
(** The paper's Table 3 values. *)

val run : unit -> result
val print : result -> unit
val name : string
