(** E4 — Figure 4 / §1: line-rate packet processing is preserved while
    event handling rides spare pipeline capacity. *)

type point = {
  load : float;
  offered_pkts : int;
  delivered_pkts : int;
  busy_fraction : float;
  empty_carriers : int;
  piggybacked : int;
  events_handled : int;
  events_dropped : int;
}

type result = { pkt_bytes : int; duration : Eventsim.Sim_time.t; points : point list }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
