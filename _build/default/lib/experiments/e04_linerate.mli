(** E4 — Figure 4 / §1: line-rate packet processing is preserved while
    event handling rides spare pipeline capacity. *)

type point = {
  load : float;
  offered_pkts : int;
  delivered_pkts : int;
  busy_fraction : float;
  empty_carriers : int;
  piggybacked : int;
  events_handled : int;
  events_dropped : int;
}

type result = { pkt_bytes : int; duration : Eventsim.Sim_time.t; points : point list }

val run : ?metrics:Obs.Metrics.t -> ?seed:int -> unit -> result
(** With [metrics], scheduler profiling plus per-switch series are
    recorded per load point (labelled [load=...]). *)

val print : result -> unit
val name : string
