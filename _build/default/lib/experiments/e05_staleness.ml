(* E5 — Figure 3 / §4: aggregation registers and bounded staleness.

   A queue-size program keeps per-flow occupancy in an Aggregated
   shared register: enqueue/dequeue deltas coalesce in aggregation
   arrays and fold into the main array during idle pipeline cycles.
   Staleness is bounded by the supply of idle cycles, i.e. by how much
   faster than line rate the pipeline runs. We sweep the pipeline
   clock so the busy fraction rises towards 1 and report per-op
   staleness and the error packet-thread reads observe, with the
   multiported realisation as the zero-staleness reference. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Shared_register = Devents.Shared_register
module Traffic = Workloads.Traffic

type point = {
  label : string;
  clock_ns : float;
  busy_fraction : float;
  staleness_p50 : float;
  staleness_p99 : float;
  staleness_max : float;
  read_error_mean : float;  (** bytes, at ingress reads *)
  read_error_max : float;
  applied_ops : int;
}

type result = { points : point list }

let slots = 64

let run_point ?metrics ~seed ~mode ~clock_period ~pkt_bytes ?(load = 1.0) ~label () =
  let sched = Scheduler.create () in
  let base = Event_switch.default_config Arch.event_pisa_full in
  let config = { base with Event_switch.state_mode = mode; clock_period } in
  let reg = ref None in
  let err = Stats.Welford.create () in
  let program ctx =
    let r = Program.shared_register ctx ~name:"qsize" ~entries:slots ~width:32 in
    reg := Some r;
    let ingress _ctx pkt =
      let fid =
        match Packet.flow pkt with
        | Some f -> Netcore.Hashes.fold_range (Netcore.Flow.hash_addresses f) slots
        | None -> 0
      in
      pkt.Packet.meta.Packet.enq_meta.(0) <- fid;
      pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
      pkt.Packet.meta.Packet.deq_meta.(0) <- fid;
      pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
      (* What the packet thread reads vs what an oracle would see. *)
      let seen = Shared_register.read r fid in
      let truth = Shared_register.true_value r fid in
      Stats.Welford.add err (float_of_int (abs (truth - seen)));
      Program.Forward ((pkt.Packet.meta.Packet.ingress_port + 1) mod 4)
    in
    let enqueue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add r Shared_register.Enq_side ev.Event.meta.(0) ev.Event.meta.(1)
    in
    let dequeue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add r Shared_register.Deq_side ev.Event.meta.(0)
        (-ev.Event.meta.(1))
    in
    Program.make ~name:"qsize" ~ingress ~enqueue ~dequeue ()
  in
  let sw = Event_switch.create ~sched ~config ~program () in
  let obs_labels = [ ("point", label) ] in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels sched m
  | None -> ());
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  let rng = Stats.Rng.create ~seed in
  ignore
    (List.init 4 (fun port ->
         Traffic.poisson ~sched ~rng:(Stats.Rng.split rng)
           ~flow:
             (Netcore.Flow.make
                ~src:(Netcore.Ipv4_addr.host ~subnet:port 1)
                ~dst:(Netcore.Ipv4_addr.host ~subnet:((port + 1) mod 4) 1)
                ~src_port:port ~dst_port:80 ())
           ~pkt_bytes
           ~rate_pps:(load *. 10e9 /. (8. *. float_of_int pkt_bytes))
           ~stop:(Sim_time.us 100)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()));
  Scheduler.run ~until:(Sim_time.us 120) sched;
  let r = Option.get !reg in
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw m;
      Shared_register.export_metrics ~labels:obs_labels r m
  | None -> ());
  let h = Shared_register.staleness r in
  let pctile q = if Stats.Histogram.count h = 0 then 0. else Stats.Histogram.percentile h q in
  {
    label;
    clock_ns = Sim_time.to_ns clock_period;
    busy_fraction = Pisa.Pipeline.busy_fraction (Event_switch.pipeline sw);
    staleness_p50 = pctile 0.5;
    staleness_p99 = pctile 0.99;
    staleness_max = Float.max 0. (Stats.Histogram.max_seen h);
    read_error_mean = Stats.Welford.mean err;
    read_error_max = (if Stats.Welford.count err = 0 then 0. else Stats.Welford.max err);
    applied_ops = Shared_register.applied_ops r;
  }

let run ?metrics ?(seed = 42) () =
  let agg ?load ~clock ~pkt_bytes label =
    run_point ?metrics ~seed ~mode:Shared_register.Aggregated ~clock_period:clock ~pkt_bytes
      ?load ~label ()
  in
  (* Idle cycles — the aggregation budget — come from load below line
     rate, from larger-than-minimum packets, or from pipeline
     overspeed. The last point removes the overspeed (16ns clock vs a
     16.8ns min-packet arrival gap) to show the saturation regime §4
     warns about. *)
  let points =
    [
      run_point ?metrics ~seed ~mode:Shared_register.Multiport ~clock_period:(Sim_time.ns 5)
        ~pkt_bytes:64 ~label:"multiport (reference)" ();
      agg ~clock:(Sim_time.ns 5) ~pkt_bytes:64 ~load:0.3 "aggregated, 64B, 30% load";
      agg ~clock:(Sim_time.ns 5) ~pkt_bytes:64 ~load:0.6 "aggregated, 64B, 60% load";
      agg ~clock:(Sim_time.ns 5) ~pkt_bytes:64 ~load:1.0 "aggregated, 64B, 100% load";
      agg ~clock:(Sim_time.ns 5) ~pkt_bytes:1500 ~load:1.0 "aggregated, 1500B, 100% load";
      agg ~clock:(Sim_time.ns 16) ~pkt_bytes:64 ~load:1.0 "aggregated, no overspeed (16ns clk)";
    ]
  in
  { points }

let print r =
  Report.section "E5 / Fig 3 — aggregated shared registers: staleness vs overspeed";
  Report.note "4x10G at full load of 64B packets (~16.8ns/pkt aggregate);";
  Report.note "staleness in pipeline cycles, read error in bytes at ingress.";
  Report.blank ();
  Report.table
    ~headers:
      [ "configuration"; "clk(ns)"; "busy"; "stale p50"; "p99"; "max"; "err mean"; "err max" ]
    ~rows:
      (List.map
         (fun p ->
           [
             p.label;
             Report.f1 p.clock_ns;
             Report.pct (100. *. p.busy_fraction);
             Report.f1 p.staleness_p50;
             Report.f1 p.staleness_p99;
             Report.f1 p.staleness_max;
             Report.f1 p.read_error_mean;
             Report.f1 p.read_error_max;
           ])
         r.points);
  Report.blank ();
  (match r.points with
  | [ reference; low; mid; high; big_pkts; saturated ] ->
      Report.kv "multiport reference stale-free"
        (if reference.staleness_max = 0. && reference.read_error_max = 0. then "PASS" else "FAIL");
      let monotone =
        low.staleness_p99 <= mid.staleness_p99 && mid.staleness_p99 <= high.staleness_p99
      in
      Report.kv "staleness grows with busy fraction" (if monotone then "PASS" else "FAIL");
      Report.kv "large packets leave idle cycles (low staleness)"
        (if big_pkts.staleness_p99 <= low.staleness_p99 +. 16. then "PASS" else "FAIL");
      Report.kv "no overspeed => aggregation starves (paper's caveat)"
        (if saturated.applied_ops < high.applied_ops / 4 then "PASS" else "FAIL")
  | _ -> ())

let name = "fig3-staleness"
