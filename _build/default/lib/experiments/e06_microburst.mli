(** E6 — the paper's §2 worked example: microburst culprit detection,
    event-driven vs the Snappy-like baseline (state, latency,
    accuracy). *)

type variant_result = {
  variant : string;
  state_bits : int;
  detected_slots : int list;
  latencies_ns : float list;
}

type result = {
  culprit_slots : int list;
  event_driven : variant_result;
  event_driven_aggregated_bits : int;
  snappy : variant_result;
}

val run : ?metrics:Obs.Metrics.t -> ?seed:int -> unit -> result
(** With [metrics], scheduler profiling plus per-switch series are
    recorded per variant (labelled [variant=...]). *)

val print : result -> unit
val name : string
