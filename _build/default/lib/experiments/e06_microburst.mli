(** E6 — the paper's §2 worked example: microburst culprit detection,
    event-driven vs the Snappy-like baseline (state, latency,
    accuracy). *)

type variant_result = {
  variant : string;
  state_bits : int;
  detected_slots : int list;
  latencies_ns : float list;
}

type result = {
  culprit_slots : int list;
  event_driven : variant_result;
  event_driven_aggregated_bits : int;
  snappy : variant_result;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
