(* E7 — §1/§3: periodic count-min-sketch reset.

   Windowed heavy-hitter detection needs the sketch cleared at every
   window boundary. A data-plane timer resets exactly on time; the
   control plane resets late (channel latency + jitter + op-rate
   queueing) and pays one op per window, so windows smear into each
   other and per-window heavy-hitter sets degrade. Identical Zipf
   workloads drive both variants; truth is computed from the exact
   per-ideal-window counts. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Control_plane = Evcore.Control_plane

let window = Sim_time.us 500
let num_windows = 12
let threshold = 80
let key_space = 200
let rate_pps = 1_000_000.

type variant_result = {
  variant : string;
  mean_f1 : float;
  resets : int;
  reset_lag_mean_ns : float;
  reset_lag_max_ns : float;
  cp_ops : int;
}

type result = { timer : variant_result; control_plane : variant_result }

let flow_of_rank rank =
  Flow.make
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 rank)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 rank)
    ~src_port:(1024 + rank) ~dst_port:80 ()

let key_of_rank rank = Flow.hash_addresses (flow_of_rank rank) land 0xffffff

(* One deterministic workload: (time, rank) arrivals. The hot set
   rotates every window (rank shifted by 37 per window), so counting
   part of a window under the previous window's sketch — what a late
   reset does — misattributes real volume. *)
let workload ~seed =
  let rng = Stats.Rng.create ~seed in
  let zipf = Stats.Dist.zipf ~n:key_space ~alpha:1.2 in
  let stop = num_windows * window in
  let rec go time acc =
    if time >= stop then List.rev acc
    else
      let gap = int_of_float (Stats.Dist.exponential rng ~rate:rate_pps *. 1e12) in
      let time = time + max 1 gap in
      let w = time / window in
      let rank = 1 + ((Stats.Dist.zipf_draw rng zipf - 1 + (w * 37)) mod key_space) in
      go time ((time, rank) :: acc)
  in
  go 0 []

let truth_sets arrivals =
  let sets = Array.make num_windows [] in
  let counts = Hashtbl.create 64 in
  let current = ref 0 in
  let flush w = if w < num_windows then begin
      sets.(w) <-
        Hashtbl.fold (fun key c acc -> if c >= threshold then key :: acc else acc) counts [];
      Hashtbl.reset counts
    end
  in
  List.iter
    (fun (time, rank) ->
      let w = time / window in
      while !current < w do
        flush !current;
        incr current
      done;
      if w < num_windows then
        let key = key_of_rank rank in
        Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
    arrivals;
  flush !current;
  sets

let f1 ~truth ~got =
  match (truth, got) with
  | [], [] -> 1.
  | _ ->
      let inter = List.length (List.filter (fun k -> List.mem k truth) got) in
      let p = if got = [] then 0. else float_of_int inter /. float_of_int (List.length got) in
      let r = if truth = [] then 1. else float_of_int inter /. float_of_int (List.length truth) in
      if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)

let run_variant ~arrivals ~truth mode arch =
  let sched = Scheduler.create () in
  let cp_ops_of = ref (fun () -> 0) in
  let mode_v, variant =
    match mode with
    | `Timer -> (Apps.Cms_reset.Timer_reset, "timer events")
    | `Cp seed ->
        let cp =
          Control_plane.create ~sched ~op_rate_per_sec:10_000.
            ~rng:(Stats.Rng.create ~seed) ()
        in
        (cp_ops_of := fun () -> Control_plane.ops cp);
        (Apps.Cms_reset.Control_plane_reset cp, "control-plane reset")
  in
  let spec, app =
    Apps.Cms_reset.program ~mode:mode_v ~window ~threshold_packets:threshold
      ~out_port:(fun _ -> 1) ()
  in
  let config = Event_switch.default_config arch in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  List.iter
    (fun (time, rank) ->
      ignore
        (Scheduler.schedule sched ~at:time (fun () ->
             let flow = flow_of_rank rank in
             Event_switch.inject sw ~port:0
               (Packet.udp_packet ~src:flow.Flow.src ~dst:flow.Flow.dst
                  ~src_port:flow.Flow.src_port ~dst_port:flow.Flow.dst_port ~payload_len:100 ()))))
    arrivals;
  Scheduler.run ~until:(num_windows * window) sched;
  let reports = Apps.Cms_reset.reports app in
  let scores =
    List.filter_map
      (fun (r : Apps.Cms_reset.window_report) ->
        if r.Apps.Cms_reset.window_index < num_windows then
          Some
            (f1
               ~truth:truth.(r.Apps.Cms_reset.window_index)
               ~got:(List.map fst r.Apps.Cms_reset.heavy_hitters))
        else None)
      reports
  in
  let lag = Apps.Cms_reset.reset_lag app in
  {
    variant;
    mean_f1 = (if scores = [] then 0. else Stats.Summary.mean (Array.of_list scores));
    resets = Apps.Cms_reset.resets app;
    reset_lag_mean_ns = Stats.Welford.mean lag;
    reset_lag_max_ns = (if Stats.Welford.count lag = 0 then 0. else Stats.Welford.max lag);
    cp_ops = !cp_ops_of ();
  }

let run ?(seed = 42) () =
  let arrivals = workload ~seed in
  let truth = truth_sets arrivals in
  {
    timer = run_variant ~arrivals ~truth `Timer Arch.event_pisa_full;
    control_plane = run_variant ~arrivals ~truth (`Cp seed) Arch.baseline_psa;
  }

let print r =
  Report.section "E7 / §1,§3 — CMS window reset: data-plane timer vs control plane";
  Report.kv "workload"
    (Printf.sprintf "Zipf(1.2) over %d keys, 1 Mpps, %d windows of %s" key_space num_windows
       (Report.time_ps window));
  Report.blank ();
  let row v =
    [
      v.variant;
      Report.f2 v.mean_f1;
      string_of_int v.resets;
      Report.ns v.reset_lag_mean_ns;
      Report.ns v.reset_lag_max_ns;
      string_of_int v.cp_ops;
    ]
  in
  Report.table
    ~headers:[ "variant"; "mean F1"; "resets"; "lag mean"; "lag max"; "CP ops" ]
    ~rows:[ row r.timer; row r.control_plane ];
  Report.blank ();
  Report.kv "timer resets on exact boundaries"
    (if r.timer.reset_lag_max_ns < 1000. then "PASS" else "FAIL");
  Report.kv "timer F1 at least as good"
    (if r.timer.mean_f1 >= r.control_plane.mean_f1 then "PASS" else "FAIL");
  Report.kv "control plane pays one op per window"
    (if r.control_plane.cp_ops >= num_windows - 1 then "PASS" else "FAIL")

let name = "cms-reset"
