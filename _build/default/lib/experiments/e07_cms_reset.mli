(** E7 — §1/§3: periodic count-min-sketch reset via timer events vs the
    control plane (reset lag, channel ops, heavy-hitter F1). *)

type variant_result = {
  variant : string;
  mean_f1 : float;
  resets : int;
  reset_lag_mean_ns : float;
  reset_lag_max_ns : float;
  cp_ops : int;
}

type result = { timer : variant_result; control_plane : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
