(* E8 — §3 Congestion Aware Forwarding: HULA on a leaf-spine fabric.

   One spine is degraded to 1 Gb/s; leaf0's hosts push 6 Gb/s towards
   leaf1. Flow-hash ECMP keeps sending a share of flows through the
   degraded spine and loses it to its saturated port. HULA probes
   (periodically flooded, carrying max path utilisation) steer traffic
   onto healthy spines. The probe generation mechanism is the paper's
   §1 point: the data-plane packet generator emits probes at an exact
   period, while the control plane generates them late and jittery.
   All variants run on the same event architecture so only the probe
   mechanism differs. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host
module Topology = Workloads.Topology
module Control_plane = Evcore.Control_plane
module Traffic = Workloads.Traffic

let num_leaves = 3
let num_spines = 3
let hosts_per_leaf = 2
let degraded_spine = 0
let stop_at = Sim_time.ms 10

type variant_result = {
  variant : string;
  goodput_gbps : float;
  offered_gbps : float;
  probe_gap_mean_us : float;
  probe_gap_std_us : float;
  probes_delivered : int;
  hop_changes : int;
  degraded_spine_drops : int;
  reordered : int;  (** out-of-order data arrivals at leaf1's hosts *)
}

type result = {
  ecmp : variant_result;
  event_driven : variant_result;
  flowlet : variant_result;
  cp_probes : variant_result;
}

let params =
  {
    Apps.Hula.default_params with
    Apps.Hula.num_leaves;
    num_spines;
    hosts_per_leaf;
    probe_period = Sim_time.us 100;
    util_period = Sim_time.us 50;
  }

let run_variant ?flowlet_timeout ~seed:_ ~variant mk_mode () =
  let sched = Scheduler.create () in
  let mode, wire = mk_mode ~sched in
  let hula = Apps.Hula.create { params with Apps.Hula.flowlet_timeout } mode in
  let config role =
    let base = Event_switch.default_config Arch.event_pisa_full in
    match role with
    | Topology.Spine s when s = degraded_spine ->
        {
          base with
          Event_switch.tm_config =
            { base.Event_switch.tm_config with Tmgr.Traffic_manager.port_rate_gbps = 1. };
        }
    | Topology.Spine _ | Topology.Leaf _ | Topology.Standalone _ -> base
  in
  let topo =
    Topology.leaf_spine ~sched ~num_leaves ~num_spines ~hosts_per_leaf ~config
      ~program:(Apps.Hula.program hula) ()
  in
  wire topo;
  (* Reordering detector: packet uids are monotone per flow at the
     sender, so a smaller uid after a larger one means reordering. *)
  let reordered = ref 0 in
  let max_uid = Hashtbl.create 16 in
  Array.iter
    (fun host ->
      Evcore.Host.set_receiver host (fun _ pkt ->
          match Netcore.Packet.flow pkt with
          | Some f ->
              let key = f.Netcore.Flow.src_port in
              let prev = Option.value (Hashtbl.find_opt max_uid key) ~default:0 in
              if pkt.Netcore.Packet.uid < prev then incr reordered
              else Hashtbl.replace max_uid key pkt.Netcore.Packet.uid
          | None -> ()))
    topo.Topology.hosts.(1);
  (* 12 flows leaf0 -> leaf1 at 0.5 Gb/s each. *)
  let sources =
    List.init 12 (fun i ->
        let src_host = i mod hosts_per_leaf in
        let dst_host = i mod hosts_per_leaf in
        let flow =
          Netcore.Flow.make
            ~src:(Netcore.Ipv4_addr.host ~subnet:0 src_host)
            ~dst:(Netcore.Ipv4_addr.host ~subnet:1 dst_host)
            ~src_port:(5000 + i) ~dst_port:(6000 + i) ()
        in
        Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:0.5 ~stop:stop_at
          ~send:(fun pkt -> Host.send topo.Topology.hosts.(0).(src_host) pkt)
          ())
  in
  Scheduler.run ~until:(stop_at + Sim_time.us 500) sched;
  let received_bytes =
    Array.fold_left (fun acc h -> acc + Host.received_bytes h) 0 topo.Topology.hosts.(1)
  in
  let offered_bytes = List.fold_left (fun acc s -> acc + Traffic.sent_bytes s) 0 sources in
  let seconds = Sim_time.to_sec stop_at in
  (* Probe origination period jitter at leaf1 (the probes leaf0 uses). *)
  let gaps = Apps.Hula.origination_gaps_us hula ~leaf:1 in
  {
    variant;
    goodput_gbps = float_of_int (received_bytes * 8) /. seconds /. 1e9;
    offered_gbps = float_of_int (offered_bytes * 8) /. seconds /. 1e9;
    probe_gap_mean_us = (if Array.length gaps = 0 then 0. else Stats.Summary.mean gaps);
    probe_gap_std_us = (if Array.length gaps = 0 then 0. else Stats.Summary.std gaps);
    probes_delivered = Apps.Hula.probes_delivered hula;
    hop_changes = Apps.Hula.hop_changes hula;
    degraded_spine_drops =
      Tmgr.Traffic_manager.drops (Event_switch.tm topo.Topology.spines.(degraded_spine));
    reordered = !reordered;
  }

let run ?(seed = 42) () =
  let ecmp ~sched:_ = (Apps.Hula.No_probes, fun _ -> ()) in
  let event ~sched:_ = (Apps.Hula.Event_driven, fun _ -> ()) in
  let cp ~sched =
    let cp = Control_plane.create ~sched ~rng:(Stats.Rng.create ~seed) () in
    let inject = ref (fun _ _ -> ()) in
    ( Apps.Hula.Cp_probes { cp; inject },
      fun (topo : Topology.leaf_spine) ->
        inject :=
          fun leaf pkt ->
            Event_switch.inject_from_control_plane topo.Topology.leaves.(leaf) pkt )
  in
  {
    ecmp = run_variant ~seed ~variant:"ecmp (no probes)" ecmp ();
    event_driven = run_variant ~seed ~variant:"hula, data-plane probes" event ();
    flowlet =
      run_variant ~flowlet_timeout:(Sim_time.us 50) ~seed ~variant:"hula + flowlets (50us)"
        event ();
    cp_probes = run_variant ~seed ~variant:"hula, control-plane probes" cp ();
  }

let print r =
  Report.section "E8 / §3 — HULA load balancing: probe generation mechanisms";
  Report.kv "fabric"
    (Printf.sprintf "%d leaves x %d spines, spine %d degraded to 1 Gb/s; 6 Gb/s leaf0->leaf1"
       num_leaves num_spines degraded_spine);
  Report.blank ();
  let row v =
    [
      v.variant;
      Report.f2 v.goodput_gbps;
      Report.f2 v.offered_gbps;
      Report.f1 v.probe_gap_mean_us;
      Report.f1 v.probe_gap_std_us;
      string_of_int v.probes_delivered;
      string_of_int v.hop_changes;
      string_of_int v.degraded_spine_drops;
      string_of_int v.reordered;
    ]
  in
  Report.table
    ~headers:
      [
        "variant"; "goodput Gb/s"; "offered"; "probe gap us"; "gap std"; "probes"; "hop chg";
        "drops@slow"; "reorder";
      ]
    ~rows:[ row r.ecmp; row r.event_driven; row r.flowlet; row r.cp_probes ];
  Report.blank ();
  Report.kv "HULA delivers the full offered load"
    (if r.event_driven.goodput_gbps >= 0.99 *. r.event_driven.offered_gbps then "PASS" else "FAIL");
  Report.kv "ECMP loses traffic to the degraded spine"
    (if r.ecmp.goodput_gbps < 0.97 *. r.ecmp.offered_gbps && r.ecmp.degraded_spine_drops > 0 then
       "PASS"
     else "FAIL");
  Report.kv "data-plane probes are periodic (std < 5us)"
    (if r.event_driven.probe_gap_std_us < 5. then "PASS" else "FAIL");
  Report.kv "control-plane probes jitter (std > 5x)"
    (if r.cp_probes.probe_gap_std_us > 5. *. Float.max 0.1 r.event_driven.probe_gap_std_us then
       "PASS"
     else "FAIL");
  Report.kv "flowlets deliver full goodput with less reordering"
    (if
       r.flowlet.goodput_gbps >= 0.99 *. r.flowlet.offered_gbps
       && r.flowlet.reordered <= r.event_driven.reordered
     then "PASS"
     else "FAIL")

let name = "hula"
