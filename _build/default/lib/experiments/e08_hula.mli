(** E8 — §3 Congestion Aware Forwarding: HULA on a leaf-spine fabric
    with a degraded spine; probe-generation mechanisms and flowlet
    switching compared. *)

type variant_result = {
  variant : string;
  goodput_gbps : float;
  offered_gbps : float;
  probe_gap_mean_us : float;
  probe_gap_std_us : float;
  probes_delivered : int;
  hop_changes : int;
  degraded_spine_drops : int;
  reordered : int;
}

type result = {
  ecmp : variant_result;
  event_driven : variant_result;
  flowlet : variant_result;
  cp_probes : variant_result;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
