(* E9 — §5: liveness monitoring in the data plane.

   Two switches ping each other through a link; the link fails
   mid-run. The event-driven monitor (packet-generator probes +
   timer-checked timeout) detects the failure within roughly
   timeout + check period; the baseline monitor, whose probes and
   timeout checks both live in the control plane, needs coarser
   periods (the op-rate budget) and pays channel latency, so detection
   is an order of magnitude slower. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Control_plane = Evcore.Control_plane

let fail_at = Sim_time.ms 5

type variant_result = {
  variant : string;
  detection_latency_ns : float option;
  probes_sent : int;
  replies_heard : int;
  notifications : int;
}

type result = { event_driven : variant_result; cp_driven : variant_result }

let run_variant ~seed ~timeout mode_of arch variant =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let mk id =
    let mode, wire = mode_of ~sched ~seed:(seed + id) in
    let spec, app =
      Apps.Liveness.program ~mode ~timeout ~neighbor_port:1 ~out_port:(fun _ -> 0) ()
    in
    let config = Event_switch.default_config arch in
    let sw = Event_switch.create ~sched ~id ~config ~program:spec () in
    wire sw;
    (sw, app)
  in
  let sw_a, app_a = mk 0 in
  let sw_b, _app_b = mk 1 in
  let link = Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  Event_switch.set_port_tx sw_a ~port:0 (fun _ -> ());
  Event_switch.set_port_tx sw_b ~port:0 (fun _ -> ());
  ignore (Scheduler.schedule sched ~at:fail_at (fun () -> Tmgr.Link.fail link));
  Scheduler.run ~until:(Sim_time.ms 30) sched;
  {
    variant;
    detection_latency_ns =
      Option.map
        (fun t -> Sim_time.to_ns (t - fail_at))
        (Apps.Liveness.declared_dead_at app_a);
    probes_sent = Apps.Liveness.probes_sent app_a;
    replies_heard = Apps.Liveness.replies_heard app_a;
    notifications = Event_switch.notification_count sw_a;
  }

let run ?(seed = 42) () =
  let event_mode ~sched:_ ~seed:_ =
    ( Apps.Liveness.Event_driven
        { probe_period = Sim_time.us 100; check_period = Sim_time.us 50 },
      fun _sw -> () )
  in
  let cp_mode ~sched ~seed =
    let cp = Control_plane.create ~sched ~rng:(Stats.Rng.create ~seed) () in
    let inject = ref (fun _ -> ()) in
    ( Apps.Liveness.Cp_driven
        {
          cp;
          probe_period = Sim_time.ms 1;
          check_period = Sim_time.ms 1;
          inject;
        },
      fun sw -> inject := Event_switch.inject_from_control_plane sw )
  in
  (* A monitor cannot time out faster than it probes: each variant's
     timeout is 2.5x its probe period. The event-driven monitor can
     afford a 100us probe period (packets generated in the data plane);
     the control plane realistically probes at 1ms. *)
  {
    event_driven =
      run_variant ~seed ~timeout:(Sim_time.us 250) event_mode Arch.event_pisa_full
        "event-driven";
    cp_driven =
      run_variant ~seed ~timeout:(Sim_time.us 2500) cp_mode Arch.baseline_psa "control-plane";
  }

let print r =
  Report.section "E9 / §5 — neighbor liveness: failure detection latency";
  Report.kv "scenario" "bidirectional echo; link fails at 5ms";
  Report.blank ();
  let row v =
    [
      v.variant;
      (match v.detection_latency_ns with None -> "not detected" | Some l -> Report.ns l);
      string_of_int v.probes_sent;
      string_of_int v.replies_heard;
      string_of_int v.notifications;
    ]
  in
  Report.table
    ~headers:[ "variant"; "detection latency"; "probes"; "replies"; "notifications" ]
    ~rows:[ row r.event_driven; row r.cp_driven ];
  Report.blank ();
  match (r.event_driven.detection_latency_ns, r.cp_driven.detection_latency_ns) with
  | Some ed, Some cp ->
      Report.kv "both detect the failure" "PASS";
      Report.kv "event-driven at least 3x faster" (if ed *. 3. <= cp then "PASS" else "FAIL")
  | _ -> Report.kv "both detect the failure" "FAIL"

let name = "liveness"
