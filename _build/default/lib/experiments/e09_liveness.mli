(** E9 — §5: neighbor liveness monitoring; failure detection latency of
    data-plane echo+timeout vs control-plane probing. *)

type variant_result = {
  variant : string;
  detection_latency_ns : float option;
  probes_sent : int;
  replies_heard : int;
  notifications : int;
}

type result = { event_driven : variant_result; cp_driven : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
