(* E10 — §5: time-windowed network measurement.

   Timer events rotate a shift register of per-flow byte counts; the
   windowed sum is a flow-rate estimate. Known CBR flows give exact
   ground truth; the estimate error is swept across window sizes:
   small windows track quickly but quantise coarsely, large windows
   smooth — exactly the behaviour of the student project the paper
   describes. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Flow = Netcore.Flow
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

type flow_spec = { label : string; rate_gbps : float; flow : Flow.t }

let flows =
  [
    { label = "flow-A (1 Gb/s)"; rate_gbps = 1.; flow = Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 1) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1) ~src_port:1 ~dst_port:80 () };
    { label = "flow-B (2 Gb/s)"; rate_gbps = 2.; flow = Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 2) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 2) ~src_port:2 ~dst_port:80 () };
    { label = "flow-C (4 Gb/s)"; rate_gbps = 4.; flow = Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 3) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 3) ~src_port:3 ~dst_port:80 () };
  ]

type point = {
  slice_us : float;
  window_slices : int;
  per_flow : (string * float * float) list;  (** label, true Gb/s, estimated Gb/s *)
  nrmse : float;
  rotations : int;
}

type result = { points : point list }

let run_point ~slice ~window_slices =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let spec, app = Apps.Flow_rate.program ~slots:256 ~window_slices ~slice ~out_port:(fun _ -> 1) () in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  List.iter
    (fun fs ->
      ignore
        (Traffic.cbr ~sched ~flow:fs.flow ~pkt_bytes:1000 ~rate_gbps:fs.rate_gbps
           ~stop:(Sim_time.ms 2)
           ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
           ()))
    flows;
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  let per_flow =
    List.map
      (fun fs ->
        let slot = Netcore.Hashes.fold_range (Flow.hash_addresses fs.flow) 256 in
        let est_gbps = Apps.Flow_rate.estimate_bps app ~flow_slot:slot *. 8. /. 1e9 in
        (fs.label, fs.rate_gbps, est_gbps))
      flows
  in
  let actual = Array.of_list (List.map (fun (_, t, _) -> t) per_flow) in
  let predicted = Array.of_list (List.map (fun (_, _, e) -> e) per_flow) in
  {
    slice_us = Sim_time.to_us slice;
    window_slices;
    per_flow;
    nrmse = Stats.Summary.normalized_rmse ~predicted ~actual;
    rotations = Apps.Flow_rate.rotations app;
  }

let run ?(seed = 42) () =
  ignore seed;
  {
    points =
      [
        run_point ~slice:(Sim_time.us 10) ~window_slices:4;
        run_point ~slice:(Sim_time.us 50) ~window_slices:8;
        run_point ~slice:(Sim_time.us 100) ~window_slices:8;
        run_point ~slice:(Sim_time.us 200) ~window_slices:4;
      ];
  }

let print r =
  Report.section "E10 / §5 — time-windowed flow-rate measurement via timer events";
  Report.note "CBR ground truth 1/2/4 Gb/s; estimates from a timer-rotated shift register.";
  Report.blank ();
  Report.table
    ~headers:[ "slice"; "slices"; "window"; "flow"; "true Gb/s"; "est Gb/s"; "NRMSE" ]
    ~rows:
      (List.concat_map
         (fun p ->
           List.mapi
             (fun i (label, truth, est) ->
               [
                 (if i = 0 then Printf.sprintf "%.0fus" p.slice_us else "");
                 (if i = 0 then string_of_int p.window_slices else "");
                 (if i = 0 then Printf.sprintf "%.0fus" (p.slice_us *. float_of_int p.window_slices)
                  else "");
                 label;
                 Report.f2 truth;
                 Report.f2 est;
                 (if i = 0 then Report.f2 p.nrmse else "");
               ])
             p.per_flow)
         r.points);
  Report.blank ();
  let worst = List.fold_left (fun acc p -> Float.max acc p.nrmse) 0. r.points in
  Report.kv "worst NRMSE across windows" (Report.f2 worst);
  Report.kv "estimates within 10% of truth" (if worst < 0.10 then "PASS" else "FAIL")

let name = "flowrate"
