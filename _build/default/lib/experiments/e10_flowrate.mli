(** E10 — §5: time-windowed flow-rate measurement accuracy across
    window configurations. *)

type point = {
  slice_us : float;
  window_slices : int;
  per_flow : (string * float * float) list;
  nrmse : float;
  rotations : int;
}

type result = { points : point list }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
