(* E11 — §3 Traffic Management / §5 congestion signals: AQM built from
   enqueue/dequeue events.

   Four UDP flows (1/2/4/8 Gb/s) share one 10 Gb/s output port. With
   taildrop, the hog keeps its share of the buffer and of the
   goodput. FRED-style flow fairness — per-active-flow buffer
   occupancy computed exactly from enqueue/dequeue events — caps each
   flow's buffer share at ingress, equalising goodput (higher Jain
   index). RED (EWMA of total occupancy, also event-maintained) sits
   in between. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Flow = Netcore.Flow
module Packet = Netcore.Packet
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let rates = [ 1.; 2.; 4.; 8. ]
let out_port = 3
let buffer_bytes = 256 * 1024
let duration = Sim_time.ms 2

type policy_result = {
  policy : string;
  goodput_gbps : float list;  (** per flow, in [rates] order *)
  jain : float;
  maxmin_err : float;  (** NRMSE to the max-min fair allocation *)
  early_drops : int;
  tm_drops : int;
}

(* Max-min fair allocation of a capacity among the offered rates. *)
let maxmin ~capacity offered =
  let n = List.length offered in
  let alloc = Array.make n 0. in
  let remaining = ref capacity and active = ref (List.mapi (fun i r -> (i, r)) offered) in
  let continue = ref true in
  while !continue && !active <> [] do
    let share = !remaining /. float_of_int (List.length !active) in
    let below, above = List.partition (fun (_, r) -> r <= share) !active in
    if below = [] then begin
      List.iter (fun (i, _) -> alloc.(i) <- share) above;
      remaining := 0.;
      continue := false
    end
    else begin
      List.iter
        (fun (i, r) ->
          alloc.(i) <- r;
          remaining := !remaining -. r)
        below;
      active := above
    end
  done;
  alloc

type result = { policies : policy_result list }

let flow_of i =
  Flow.make
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 (i + 1))
    ~dst:(Netcore.Ipv4_addr.host ~subnet:5 1)
    ~src_port:(4000 + i) ~dst_port:80 ()

let run_policy ~label policy =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config =
    {
      config with
      Event_switch.tm_config =
        { config.Event_switch.tm_config with Tmgr.Traffic_manager.buffer_bytes };
    }
  in
  let spec, app = Apps.Aqm.program ~policy ~buffer_bytes ~out_port:(fun _ -> out_port) () in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let received = Array.make (List.length rates) 0 in
  Event_switch.set_port_tx sw ~port:out_port (fun pkt ->
      match Packet.flow pkt with
      | Some f ->
          let i = f.Flow.src_port - 4000 in
          if i >= 0 && i < Array.length received then
            received.(i) <- received.(i) + Packet.len pkt
      | None -> ());
  List.iteri
    (fun i rate_gbps ->
      ignore
        (Traffic.cbr ~sched ~flow:(flow_of i) ~pkt_bytes:1000 ~rate_gbps ~stop:duration
           ~send:(fun pkt -> Event_switch.inject sw ~port:(i mod 3) pkt)
           ()))
    rates;
  Scheduler.run ~until:(duration + Sim_time.us 300) sched;
  let seconds = Sim_time.to_sec duration in
  let goodput =
    Array.to_list (Array.map (fun b -> float_of_int (b * 8) /. seconds /. 1e9) received)
  in
  let ideal = maxmin ~capacity:10. rates in
  {
    policy = label;
    goodput_gbps = goodput;
    jain = Stats.Summary.jain_fairness (Array.of_list goodput);
    maxmin_err =
      Stats.Summary.normalized_rmse ~predicted:(Array.of_list goodput) ~actual:ideal;
    early_drops = Apps.Aqm.early_drops app;
    tm_drops = Tmgr.Traffic_manager.drops (Event_switch.tm sw);
  }

let run ?(seed = 42) () =
  ignore seed;
  {
    policies =
      [
        run_policy ~label:"taildrop" Apps.Aqm.Taildrop;
        run_policy ~label:"RED"
          (Apps.Aqm.Red
             {
               min_th = buffer_bytes / 8;
               max_th = buffer_bytes / 2;
               max_p = 0.2;
               weight = 0.05;
             });
        run_policy ~label:"FRED-like" (Apps.Aqm.Fred { multiplier = 0.6 });
        run_policy ~label:"PIE"
          (Apps.Aqm.Pie
             {
               (* Gains scaled for a 2 ms run: PIE's reference gains
                  converge over ~100 ms, far longer than this
                  experiment. *)
               target_delay = Sim_time.us 20;
               update_period = Sim_time.us 50;
               alpha = 100.;
               beta = 800.;
             });
      ];
  }

let print r =
  Report.section "E11 / §3,§5 — event-driven AQM: flow fairness under congestion";
  Report.kv "offered" "1/2/4/8 Gb/s UDP onto one 10 Gb/s port";
  Report.blank ();
  Report.note "max-min ideal: 1.00 / 2.00 / 3.50 / 3.50 Gb/s";
  Report.table
    ~headers:
      [ "policy"; "f1"; "f2"; "f3"; "f4 (hog)"; "Jain"; "maxmin-err"; "AQM drops"; "tail drops" ]
    ~rows:
      (List.map
         (fun p ->
           (p.policy :: List.map Report.f2 p.goodput_gbps)
           @ [
               Report.f2 p.jain;
               Report.f2 p.maxmin_err;
               string_of_int p.early_drops;
               string_of_int p.tm_drops;
             ])
         r.policies);
  Report.blank ();
  match r.policies with
  | [ taildrop; red; fred; pie ] ->
      Report.kv "FRED closest to max-min fairness"
        (if fred.maxmin_err < taildrop.maxmin_err && fred.maxmin_err < red.maxmin_err then "PASS"
         else "FAIL");
      Report.kv "FRED fairer than taildrop (Jain)"
        (if fred.jain > taildrop.jain then "PASS" else "FAIL");
      Report.kv "AQM drops happen at ingress (pre-enqueue)"
        (if fred.early_drops > 0 && fred.tm_drops < taildrop.tm_drops then "PASS" else "FAIL");
      Report.kv "PIE keeps the queue off the tail (no tail drops)"
        (if pie.tm_drops = 0 && pie.early_drops > 0 then "PASS" else "FAIL")
  | _ -> ()

let name = "aqm"
