(** E11 — §3/§5: AQM policies built from event-derived congestion
    signals; fairness under UDP congestion. *)

type policy_result = {
  policy : string;
  goodput_gbps : float list;
  jain : float;
  maxmin_err : float;
  early_drops : int;
  tm_drops : int;
}

type result = { policies : policy_result list }

val maxmin : capacity:float -> float list -> float array
(** Max-min fair allocation (exposed for tests). *)

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
