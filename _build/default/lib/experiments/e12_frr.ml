(* E12 — §3 Network Management / §5: fast re-route on link failure.

   Host -> switch A -> (primary | backup parallel links) -> switch B
   -> sink. The primary link fails mid-run. With link-status-change
   events the data plane flips to the backup one PHY detection delay
   after the failure; the baseline control plane polls the PHY and
   then pushes a table update, losing every packet sent to the dead
   link in between. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host
module Control_plane = Evcore.Control_plane
module Traffic = Workloads.Traffic

let fail_at = Sim_time.ms 1
let stop_at = Sim_time.ms 4
let rate_gbps = 2.

type variant_result = {
  variant : string;
  failover_latency_ns : float option;
  sent : int;
  received : int;
  lost : int;
  via_backup : int;
}

type result = { event_driven : variant_result; cp_polling : variant_result }

let run_variant ~seed mode_a arch variant =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let mk id mode =
    let spec, app = Apps.Fast_reroute.program ~mode ~primary:1 ~backup:2 () in
    let config = Event_switch.default_config arch in
    (Event_switch.create ~sched ~id ~config ~program:spec (), app)
  in
  let mode_a = mode_a ~sched ~seed in
  let sw_a, app_a = mk 0 mode_a in
  let sw_b, _app_b = mk 1 Apps.Fast_reroute.Event_driven in
  let primary = Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  ignore (Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_b, 2) ());
  let src = Host.create ~sched ~id:0 () and dst = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:src ~switch:(sw_a, 0) ());
  ignore (Network.connect_host network ~host:dst ~switch:(sw_b, 0) ());
  let traffic =
    Traffic.cbr ~sched
      ~flow:
        (Netcore.Flow.make
           ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
           ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
           ~src_port:7 ~dst_port:7 ())
      ~pkt_bytes:500 ~rate_gbps ~stop:stop_at
      ~send:(fun pkt -> Host.send src pkt)
      ()
  in
  ignore (Scheduler.schedule sched ~at:fail_at (fun () -> Tmgr.Link.fail primary));
  Scheduler.run ~until:(stop_at + Sim_time.ms 1) sched;
  {
    variant;
    failover_latency_ns =
      Option.map (fun t -> Sim_time.to_ns (t - fail_at)) (Apps.Fast_reroute.failover_time app_a);
    sent = Traffic.sent traffic;
    received = Host.received dst;
    lost = Traffic.sent traffic - Host.received dst;
    via_backup = Apps.Fast_reroute.switched_packets app_a;
  }

let run ?(seed = 42) () =
  let event_mode ~sched:_ ~seed:_ = Apps.Fast_reroute.Event_driven in
  let cp_mode ~sched ~seed =
    let cp = Control_plane.create ~sched ~rng:(Stats.Rng.create ~seed) () in
    Apps.Fast_reroute.Cp_polling { cp; poll_period = Sim_time.ms 1 }
  in
  {
    event_driven = run_variant ~seed event_mode Arch.event_pisa_full "event-driven";
    cp_polling = run_variant ~seed cp_mode Arch.baseline_psa "cp-polling (1ms)";
  }

let print r =
  Report.section "E12 / §3,§5 — fast re-route: packets lost across a link failure";
  Report.kv "scenario"
    (Printf.sprintf "%.0f Gb/s of 500B packets; primary link fails at %s" rate_gbps
       (Report.time_ps fail_at));
  Report.blank ();
  let row v =
    [
      v.variant;
      (match v.failover_latency_ns with None -> "never" | Some l -> Report.ns l);
      string_of_int v.sent;
      string_of_int v.received;
      string_of_int v.lost;
      string_of_int v.via_backup;
    ]
  in
  Report.table
    ~headers:[ "variant"; "failover latency"; "sent"; "received"; "lost"; "via backup" ]
    ~rows:[ row r.event_driven; row r.cp_polling ];
  Report.blank ();
  Report.kv "event-driven loses 10x fewer packets"
    (if r.event_driven.lost * 10 <= r.cp_polling.lost then "PASS" else "FAIL");
  Report.kv "both eventually fail over"
    (if r.event_driven.via_backup > 0 && r.cp_polling.via_backup > 0 then "PASS" else "FAIL")

let name = "frr"
