(** E12 — §3/§5: fast re-route; packets lost across a link failure with
    link-status events vs control-plane polling. *)

type variant_result = {
  variant : string;
  failover_latency_ns : float option;
  sent : int;
  received : int;
  lost : int;
  via_backup : int;
}

type result = { event_driven : variant_result; cp_polling : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
