(* E13 — §3 Traffic Management: token-bucket policing from timer
   events.

   "While baseline PISA architectures might expose fixed-function
   meters ... if we use timer events, token bucket meters can be
   constructed from simple registers." The register+timer policer's
   conformance error against the fixed-function srTCM extern is
   bounded by the refill granularity; sweeping the refill period shows
   the trade-off, under a bursty on/off offered load of twice the
   committed rate. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let cir_bytes_per_sec = 125_000_000. (* 1 Gb/s committed *)
let burst_bytes = 64_000
let duration = Sim_time.ms 20

type point = {
  label : string;
  accepted_rate_gbps : float;
  error_vs_cir : float;  (** |accepted - CIR| / CIR *)
  state_bits : int;
}

type result = { points : point list }

let run_point ~seed ~label mode arch =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config arch in
  let spec, app =
    Apps.Policer.program ~slots:16 ~mode ~cir_bytes_per_sec ~burst_bytes
      ~out_port:(fun _ -> 1) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  let rng = Stats.Rng.create ~seed in
  (* Bursty source: 4 Gb/s bursts, 50% duty cycle -> 2 Gb/s offered,
     2x the committed rate. *)
  ignore
    (Traffic.on_off ~sched ~rng
       ~flow:
         (Netcore.Flow.make
            ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
            ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
            ~src_port:9 ~dst_port:80 ())
       ~pkt_bytes:1000 ~burst_rate_gbps:4. ~on_time:(Sim_time.us 100)
       ~off_time:(Sim_time.us 100) ~stop:duration
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  Scheduler.run ~until:duration sched;
  let accepted = float_of_int (Apps.Policer.total_accepted_bytes app) in
  let rate = accepted /. Sim_time.to_sec duration in
  {
    label;
    accepted_rate_gbps = rate *. 8. /. 1e9;
    error_vs_cir = Float.abs (rate -. cir_bytes_per_sec) /. cir_bytes_per_sec;
    state_bits = Apps.Policer.state_bits app;
  }

let run ?(seed = 42) () =
  let timer p label =
    run_point ~seed ~label
      (Apps.Policer.Timer_bucket { refill_period = p })
      Arch.event_pisa_full
  in
  {
    points =
      [
        run_point ~seed ~label:"fixed-function srTCM extern" Apps.Policer.Extern_meter
          Arch.baseline_psa;
        timer (Sim_time.us 10) "timer bucket, 10us refill";
        timer (Sim_time.us 100) "timer bucket, 100us refill";
        timer (Sim_time.ms 1) "timer bucket, 1ms refill";
      ];
  }

let print r =
  Report.section "E13 / §3 — policing: timer-event token bucket vs fixed-function meter";
  Report.kv "offered" "2x CIR (4 Gb/s bursts, 50% duty), CIR = 1 Gb/s, burst = 64 KB";
  Report.blank ();
  Report.table
    ~headers:[ "policer"; "accepted Gb/s"; "error vs CIR"; "state bits" ]
    ~rows:
      (List.map
         (fun p ->
           [ p.label; Report.f2 p.accepted_rate_gbps; Report.pct (100. *. p.error_vs_cir); string_of_int p.state_bits ])
         r.points);
  Report.blank ();
  match r.points with
  | [ extern_m; t10; t100; t1000 ] ->
      Report.kv "extern meter enforces CIR (< 5% error)"
        (if extern_m.error_vs_cir < 0.05 then "PASS" else "FAIL");
      Report.kv "fine timer refill matches the extern"
        (if Float.abs (t10.error_vs_cir -. extern_m.error_vs_cir) < 0.03 then "PASS" else "FAIL");
      Report.kv "100us refill still within 5%"
        (if t100.error_vs_cir < 0.05 then "PASS" else "FAIL");
      Report.kv "refill period beyond cbs/cir starves the bucket"
        (if t1000.error_vs_cir > 0.20 && t1000.accepted_rate_gbps < 1. then "PASS" else "FAIL")
  | _ -> ()

let name = "policer"
