(** E13 — §3: token-bucket policing from timer events vs the
    fixed-function srTCM extern; conformance error vs refill
    granularity. *)

type point = {
  label : string;
  accepted_rate_gbps : float;
  error_vs_cir : float;
  state_bits : int;
}

type result = { points : point list }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
