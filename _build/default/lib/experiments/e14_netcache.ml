(* E14 — §3 In-Network Computing: NetCache-style caching with
   timer-driven statistics decay.

   Clients issue Zipf GETs through the switch to a key-value server;
   the switch caches hot keys. Halfway through, the hot set shifts.
   With timer events the popularity sketch is cleared periodically and
   idle cache entries age out, so the cache re-converges onto the new
   hot set; the static variant keeps stale statistics (old keys
   re-promote forever) and its hit ratio collapses after the shift —
   exactly the adaptation the NetCache authors said timers would
   buy. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host
module Network = Evcore.Network

let key_space = 500
let shift_at = Sim_time.ms 5
let stop_at = Sim_time.ms 10
let request_rate = 500_000.
let server_port = 3

type variant_result = {
  variant : string;
  phase1_hit_ratio : float;
  phase2_hit_ratio : float;
  server_requests_phase1 : int;
  server_requests_phase2 : int;
  promotions : int;
  evictions : int;
}

type result = { with_timers : variant_result; static : variant_result }

let client_port_of pkt =
  match pkt.Packet.ip with
  | Some ip -> Netcore.Ipv4_addr.to_int ip.Netcore.Ipv4.dst land 0xffff mod 3
  | None -> 0

let run_variant ~seed ~with_timers variant =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let arch = if with_timers then Arch.event_pisa_full else Arch.baseline_psa in
  let config = Event_switch.default_config arch in
  let spec, app =
    Apps.Netcache.program ~cache_size:32 ~promote_threshold:8
      ~decay_period:(Sim_time.ms 1) ~idle_windows:2 ~with_timers ~server_port
      ~client_port:client_port_of ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  (* Server host: answers every GET. *)
  let server = Host.create ~sched ~id:99 () in
  let server_requests = ref 0 in
  Host.set_receiver server (fun h pkt ->
      match pkt.Packet.payload with
      | Apps.Netcache.Kv_get { key } ->
          incr server_requests;
          let reply =
            Packet.udp_packet
              ~src:(Netcore.Ipv4_addr.host ~subnet:9 1)
              ~dst:(match pkt.Packet.ip with
                   | Some ip -> ip.Netcore.Ipv4.src
                   | None -> Netcore.Ipv4_addr.host ~subnet:3 0)
              ~src_port:11_211 ~dst_port:10_000 ~payload_len:64 ()
          in
          reply.Packet.payload <- Apps.Netcache.Kv_reply { key; from_cache = false };
          Host.send h reply
      | _ -> ());
  ignore (Network.connect_host network ~host:server ~switch:(sw, server_port) ());
  for p = 0 to 2 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  (* Zipf request stream; hot set shifts at [shift_at]. *)
  let rng = Stats.Rng.create ~seed in
  let zipf = Stats.Dist.zipf ~n:key_space ~alpha:1.05 in
  let rec arrivals time acc =
    if time >= stop_at then List.rev acc
    else
      let gap = max 1 (int_of_float (Stats.Dist.exponential rng ~rate:request_rate *. 1e12)) in
      let time = time + gap in
      let rank = Stats.Dist.zipf_draw rng zipf in
      let key = if time < shift_at then rank else 1000 + rank in
      let client = Stats.Rng.int rng 3 in
      arrivals time ((time, client, key) :: acc)
  in
  List.iter
    (fun (time, client, key) ->
      ignore
        (Scheduler.schedule sched ~at:time (fun () ->
             Event_switch.inject sw ~port:client (Apps.Netcache.get_packet ~client ~key))))
    (arrivals 0 []);
  (* Sample counters at the phase boundary. *)
  let p1 = ref (0, 0, 0) in
  ignore
    (Scheduler.schedule sched ~at:shift_at (fun () ->
         p1 := (Apps.Netcache.cache_hits app, Apps.Netcache.cache_misses app, !server_requests)));
  Scheduler.run ~until:(stop_at + Sim_time.ms 1) sched;
  let h1, m1, s1 = !p1 in
  let h2 = Apps.Netcache.cache_hits app - h1 in
  let m2 = Apps.Netcache.cache_misses app - m1 in
  let ratio h m = if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m) in
  {
    variant;
    phase1_hit_ratio = ratio h1 m1;
    phase2_hit_ratio = ratio h2 m2;
    server_requests_phase1 = s1;
    server_requests_phase2 = !server_requests - s1;
    promotions = Apps.Netcache.promotions app;
    evictions = Apps.Netcache.evictions app;
  }

let run ?(seed = 42) () =
  {
    with_timers = run_variant ~seed ~with_timers:true "timer decay + aging";
    static = run_variant ~seed ~with_timers:false "static (no timers)";
  }

let print r =
  Report.section "E14 / §3 — NetCache-style caching: adapting to a workload shift";
  Report.kv "workload"
    (Printf.sprintf "Zipf(1.05) over %d keys at %.0fk req/s; hot set replaced at %s" key_space
       (request_rate /. 1000.) (Report.time_ps shift_at));
  Report.blank ();
  let row v =
    [
      v.variant;
      Report.pct (100. *. v.phase1_hit_ratio);
      Report.pct (100. *. v.phase2_hit_ratio);
      string_of_int v.server_requests_phase1;
      string_of_int v.server_requests_phase2;
      string_of_int v.promotions;
      string_of_int v.evictions;
    ]
  in
  Report.table
    ~headers:
      [ "variant"; "hit p1"; "hit p2"; "srv reqs p1"; "srv reqs p2"; "promos"; "evicts" ]
    ~rows:[ row r.with_timers; row r.static ];
  Report.blank ();
  Report.kv "similar hit ratio before the shift"
    (if Float.abs (r.with_timers.phase1_hit_ratio -. r.static.phase1_hit_ratio) < 0.15 then
       "PASS"
     else "FAIL");
  Report.kv "timers keep the cache useful after the shift"
    (if r.with_timers.phase2_hit_ratio > r.static.phase2_hit_ratio +. 0.1 then "PASS" else "FAIL");
  Report.kv "timers reduce server load after the shift"
    (if r.with_timers.server_requests_phase2 < r.static.server_requests_phase2 then "PASS"
     else "FAIL")

let name = "netcache"
