(** E14 — §3 In-Network Computing: NetCache-style caching with
    timer-driven statistics decay across a workload shift. *)

type variant_result = {
  variant : string;
  phase1_hit_ratio : float;
  phase2_hit_ratio : float;
  server_requests_phase1 : int;
  server_requests_phase2 : int;
  promotions : int;
  evictions : int;
}

type result = { with_timers : variant_result; static : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
