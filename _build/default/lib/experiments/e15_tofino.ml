(* E15 — §6: emulating dequeue events on today's devices.

   A Tofino-like baseline can approximate dequeue events by mirroring
   each departing packet from egress back to ingress (recirculation),
   where a handler decrements the occupancy register. The emulation
   costs a pipeline slot per packet — doubling pipeline bandwidth
   demand — and when the pipeline has no spare capacity the mirror
   queue overflows and decrements are lost for good, leaving the
   occupancy state permanently wrong. Native events piggyback or
   coalesce and survive. We run both on a pipeline with limited
   headroom and compare slots per packet, signal loss and end-state
   error. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Shared_register = Devents.Shared_register
module Traffic = Workloads.Traffic

let pkt_bytes = 256
let duration = Sim_time.us 200
(* 4x10G of 256B packets = 19.5 Mpps; a 30ns pipeline admits 33 Mpps:
   enough for packets + native events, not enough for packets + a
   mirror copy per packet. *)
let clock_period = Sim_time.ns 30

type variant_result = {
  variant : string;
  delivered : int;
  admissions : int;
  slots_per_packet : float;
  signal_drops : int;  (** lost dequeue notifications / events *)
  end_state_error_bytes : int;  (** |occupancy register| after full drain *)
}

type result = { native : variant_result; emulated : variant_result }


let drive sw sched ~seed =
  let rng = Stats.Rng.create ~seed in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  ignore
    (List.init 4 (fun port ->
         Traffic.poisson ~sched ~rng:(Stats.Rng.split rng)
           ~flow:
             (Netcore.Flow.make
                ~src:(Netcore.Ipv4_addr.host ~subnet:port 1)
                ~dst:(Netcore.Ipv4_addr.host ~subnet:((port + 1) mod 4) 1)
                ~src_port:port ~dst_port:80 ())
           ~pkt_bytes
           ~rate_pps:(10e9 /. (8. *. float_of_int pkt_bytes))
           ~stop:duration
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))

let run_native ~seed =
  let sched = Scheduler.create () in
  let base = Event_switch.default_config Arch.event_pisa_full in
  let config = { base with Event_switch.clock_period } in
  let reg = ref None in
  let program ctx =
    let r = Program.shared_register ctx ~name:"occ" ~entries:1 ~width:40 in
    reg := Some r;
    Program.make ~name:"native-occ"
      ~ingress:(fun _ctx pkt ->
        pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
        pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
        Program.Forward ((pkt.Packet.meta.Packet.ingress_port + 1) mod 4))
      ~enqueue:(fun _ctx ev ->
        Shared_register.event_add r Shared_register.Enq_side 0 ev.Event.meta.(1))
      ~dequeue:(fun _ctx ev ->
        Shared_register.event_add r Shared_register.Deq_side 0 (-ev.Event.meta.(1)))
      ()
  in
  let sw = Event_switch.create ~sched ~config ~program () in
  drive sw sched ~seed;
  Scheduler.run ~until:(duration + Sim_time.us 100) sched;
  let r = Option.get !reg in
  Shared_register.sync r;
  let merger = Event_switch.merger sw in
  let ev_drops =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Devents.Event_merger.event_drops merger)
  in
  let delivered = Tmgr.Traffic_manager.transmitted (Event_switch.tm sw) in
  let admissions = Pisa.Pipeline.admissions (Event_switch.pipeline sw) in
  {
    variant = "native enq/deq events";
    delivered;
    admissions;
    slots_per_packet = float_of_int admissions /. float_of_int (max 1 delivered);
    signal_drops = ev_drops;
    end_state_error_bytes = abs (Shared_register.read r 0);
  }

let run_emulated ~seed =
  let sched = Scheduler.create () in
  let base = Event_switch.default_config Arch.tofino_like in
  let config = { base with Event_switch.clock_period } in
  let occ = ref None in
  let program ctx =
    let r = Pisa.Register_alloc.array ctx.Program.alloc ~name:"occ" ~entries:1 ~width:40 in
    occ := Some r;
    Program.make ~name:"tofino-emulated-occ"
      ~ingress:(fun _ctx pkt ->
        (* Enqueue side runs natively at ingress. *)
        ignore (Pisa.Register_array.add r 0 (Packet.len pkt));
        Program.Forward ((pkt.Packet.meta.Packet.ingress_port + 1) mod 4))
      ~recirculated:(fun _ctx pkt ->
        (* The mirrored copy is the emulated dequeue event. *)
        ignore (Pisa.Register_array.add r 0 (-pkt.Packet.meta.Packet.deq_meta.(1)));
        Program.Drop)
      ~egress:(fun ctx ~port:_ pkt ->
        pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
        ctx.Program.mirror_to_ingress pkt;
        Some pkt)
      ()
  in
  let sw = Event_switch.create ~sched ~config ~program () in
  drive sw sched ~seed;
  Scheduler.run ~until:(duration + Sim_time.us 100) sched;
  let r = Option.get !occ in
  let merger = Event_switch.merger sw in
  let delivered = Tmgr.Traffic_manager.transmitted (Event_switch.tm sw) in
  let admissions = Pisa.Pipeline.admissions (Event_switch.pipeline sw) in
  {
    variant = "recirculation-emulated (Tofino-like)";
    delivered;
    admissions;
    slots_per_packet = float_of_int admissions /. float_of_int (max 1 delivered);
    signal_drops = Devents.Event_merger.packet_drops merger;
    end_state_error_bytes = abs (Pisa.Register_array.read r 0);
  }

let run ?(seed = 42) () = { native = run_native ~seed; emulated = run_emulated ~seed }

let print r =
  Report.section "E15 / §6 — native events vs recirculation emulation";
  Report.kv "setup"
    (Printf.sprintf "4x10G of %dB packets at line rate; %s pipeline cycle (limited headroom)"
       pkt_bytes
       (Report.time_ps clock_period));
  Report.blank ();
  let row v =
    [
      v.variant;
      string_of_int v.delivered;
      string_of_int v.admissions;
      Report.f2 v.slots_per_packet;
      string_of_int v.signal_drops;
      string_of_int v.end_state_error_bytes;
    ]
  in
  Report.table
    ~headers:[ "variant"; "delivered"; "admissions"; "slots/pkt"; "signal drops"; "end error(B)" ]
    ~rows:[ row r.native; row r.emulated ];
  Report.blank ();
  let demanded =
    float_of_int (r.emulated.admissions + r.emulated.signal_drops)
    /. float_of_int (max 1 r.emulated.delivered)
  in
  Report.kv "emulation demands ~2 pipeline slots per packet"
    (if demanded >= 1.9 then Printf.sprintf "PASS (%.2f)" demanded
     else Printf.sprintf "FAIL (%.2f)" demanded);
  Report.kv "native occupancy exact after drain"
    (if r.native.end_state_error_bytes = 0 then "PASS" else "FAIL");
  Report.kv "emulated signal collapses without headroom"
    (if r.emulated.signal_drops > 0 && r.emulated.end_state_error_bytes > 0 then "PASS"
     else "FAIL")

let name = "tofino-emulation"
