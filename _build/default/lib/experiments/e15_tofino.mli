(** E15 — §6: native enqueue/dequeue events vs emulating them with
    egress-to-ingress recirculation on a Tofino-like baseline. *)

type variant_result = {
  variant : string;
  delivered : int;
  admissions : int;
  slots_per_packet : float;
  signal_drops : int;
  end_state_error_bytes : int;
}

type result = { native : variant_result; emulated : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
