(* E16 — ablations of the architecture's design choices.

   Three knobs the paper leaves open (§4 "we plan to address these
   questions in future work", and the prototype's fixed constants):

   1. Aggregation drain scheduling: which side's pending updates get
      each idle cycle. Strict priority keeps one signal fresh and
      starves the other; round-robin balances — measured as per-side
      staleness.
   2. Carrier metadata width: how many events can piggyback on one
      carrier. Narrow buses force more empty carriers (more pipeline
      slots spent on events) and can drop events under load.
   3. Event queue capacity in the merger: under saturation, small
      queues shed events; larger ones trade memory for delivery. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Event_merger = Devents.Event_merger
module Shared_register = Devents.Shared_register
module Traffic = Workloads.Traffic

(* --- part 1: drain policy --- *)

type drain_row = {
  policy_label : string;
  enq_p99 : float;
  deq_p99 : float;
  total_applied : int;
}

let drive_line_rate ~seed ~pkt_bytes ~stop sw sched =
  let rng = Stats.Rng.create ~seed in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  ignore
    (List.init 4 (fun port ->
         Traffic.poisson ~sched ~rng:(Stats.Rng.split rng)
           ~flow:
             (Netcore.Flow.make
                ~src:(Netcore.Ipv4_addr.host ~subnet:port 1)
                ~dst:(Netcore.Ipv4_addr.host ~subnet:((port + 1) mod 4) 1)
                ~src_port:port ~dst_port:80 ())
           ~pkt_bytes
           ~rate_pps:(10e9 /. (8. *. float_of_int pkt_bytes))
           ~stop
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))

let run_drain_policy ~seed policy policy_label =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let reg = ref None in
  let program ctx =
    let r =
      Shared_register.create ~alloc:ctx.Program.alloc ~pipeline:ctx.Program.pipeline
        ~mode:Shared_register.Aggregated ~drain_policy:policy ~name:"occ" ~entries:64
        ~width:32 ()
    in
    reg := Some r;
    Program.make ~name:"drain-ablation"
      ~ingress:(fun _ctx pkt ->
        let fid = pkt.Packet.uid land 63 in
        pkt.Packet.meta.Packet.enq_meta.(0) <- fid;
        pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
        pkt.Packet.meta.Packet.deq_meta.(0) <- fid;
        pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
        Program.Forward ((pkt.Packet.meta.Packet.ingress_port + 1) mod 4))
      ~enqueue:(fun _ctx ev ->
        Shared_register.event_add r Shared_register.Enq_side ev.Event.meta.(0) ev.Event.meta.(1))
      ~dequeue:(fun _ctx ev ->
        Shared_register.event_add r Shared_register.Deq_side ev.Event.meta.(0)
          (-ev.Event.meta.(1)))
      ()
  in
  let sw = Event_switch.create ~sched ~config ~program () in
  drive_line_rate ~seed ~pkt_bytes:64 ~stop:(Sim_time.us 100) sw sched;
  Scheduler.run ~until:(Sim_time.us 120) sched;
  let r = Option.get !reg in
  let p99 side =
    let h = Shared_register.side_staleness r side in
    if Stats.Histogram.count h = 0 then 0. else Stats.Histogram.percentile h 0.99
  in
  {
    policy_label;
    enq_p99 = p99 Shared_register.Enq_side;
    deq_p99 = p99 Shared_register.Deq_side;
    total_applied = Shared_register.applied_ops r;
  }

(* --- part 2: carrier width --- *)

type width_row = {
  width : int;
  piggybacked : int;
  empty_carriers : int;
  event_drops : int;
  busy : float;
}

let run_carrier_width ~seed width =
  let sched = Scheduler.create () in
  let base = Event_switch.default_config Arch.event_pisa_full in
  let config =
    {
      base with
      Event_switch.merger_config =
        { base.Event_switch.merger_config with Event_merger.max_events_per_carrier = width };
    }
  in
  let spec, _ =
    Apps.Microburst.program ~threshold_bytes:1_000_000
      ~out_port:(fun pkt -> (pkt.Packet.meta.Packet.ingress_port + 1) mod 4)
      ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  drive_line_rate ~seed ~pkt_bytes:64 ~stop:(Sim_time.us 100) sw sched;
  Scheduler.run ~until:(Sim_time.us 150) sched;
  let merger = Event_switch.merger sw in
  {
    width;
    piggybacked = Event_merger.piggybacked_events merger;
    empty_carriers = Event_merger.empty_carriers merger;
    event_drops =
      List.fold_left (fun acc (_, n) -> acc + n) 0 (Event_merger.event_drops merger);
    busy = Pisa.Pipeline.busy_fraction (Event_switch.pipeline sw);
  }

(* --- part 3: event queue capacity under saturation --- *)

type capacity_row = { capacity : int; delivered_events : int; dropped_events : int }

let run_queue_capacity ~seed capacity =
  let sched = Scheduler.create () in
  let base = Event_switch.default_config Arch.event_pisa_full in
  let config =
    {
      base with
      (* No overspeed: 16ns cycle against a 16.8ns min-packet arrival
         gap leaves almost no slots for event carriers. *)
      Event_switch.clock_period = Sim_time.ns 16;
      merger_config =
        { base.Event_switch.merger_config with Event_merger.event_queue_capacity = capacity };
    }
  in
  let spec, _ =
    Apps.Microburst.program ~threshold_bytes:1_000_000
      ~out_port:(fun pkt -> (pkt.Packet.meta.Packet.ingress_port + 1) mod 4)
      ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  drive_line_rate ~seed ~pkt_bytes:64 ~stop:(Sim_time.us 100) sw sched;
  Scheduler.run ~until:(Sim_time.us 150) sched;
  let merger = Event_switch.merger sw in
  {
    capacity;
    delivered_events =
      Event_switch.handled sw Event.Buffer_enqueue + Event_switch.handled sw Event.Buffer_dequeue;
    dropped_events =
      List.fold_left (fun acc (_, n) -> acc + n) 0 (Event_merger.event_drops merger);
  }

type result = {
  drains : drain_row list;
  widths : width_row list;
  capacities : capacity_row list;
}

let run ?(seed = 42) () =
  {
    drains =
      [
        run_drain_policy ~seed Shared_register.Round_robin "round-robin";
        run_drain_policy ~seed Shared_register.Enq_first "enqueue-first";
        run_drain_policy ~seed Shared_register.Deq_first "dequeue-first";
      ];
    widths = List.map (run_carrier_width ~seed) [ 1; 2; 4; 8 ];
    capacities = List.map (run_queue_capacity ~seed) [ 8; 64; 512 ];
  }

let print r =
  Report.section "E16 — ablations: drain scheduling, carrier width, event queues";
  Report.note "1) Which side gets each idle cycle (per-side staleness p99, cycles):";
  Report.table
    ~headers:[ "drain policy"; "enq-side p99"; "deq-side p99"; "ops applied" ]
    ~rows:
      (List.map
         (fun d ->
           [ d.policy_label; Report.f1 d.enq_p99; Report.f1 d.deq_p99; string_of_int d.total_applied ])
         r.drains);
  Report.blank ();
  Report.note "2) Events per carrier (metadata bus width), 4x10G 64B line rate:";
  Report.table
    ~headers:[ "width"; "piggybacked"; "empty carriers"; "event drops"; "pipe busy" ]
    ~rows:
      (List.map
         (fun w ->
           [
             string_of_int w.width;
             string_of_int w.piggybacked;
             string_of_int w.empty_carriers;
             string_of_int w.event_drops;
             Report.pct (100. *. w.busy);
           ])
         r.widths);
  Report.blank ();
  Report.note "3) Merger event-queue capacity under pipeline saturation:";
  Report.table
    ~headers:[ "capacity"; "events delivered"; "events dropped" ]
    ~rows:
      (List.map
         (fun c ->
           [ string_of_int c.capacity; string_of_int c.delivered_events; string_of_int c.dropped_events ])
         r.capacities);
  Report.blank ();
  (match r.drains with
  | [ rr; enq_first; deq_first ] ->
      Report.kv "strict priority starves the other side"
        (if
           enq_first.deq_p99 > 2. *. Float.max 1. enq_first.enq_p99
           && deq_first.enq_p99 > 2. *. Float.max 1. deq_first.deq_p99
         then "PASS"
         else "FAIL");
      Report.kv "round-robin balances the sides"
        (if
           Float.abs (rr.enq_p99 -. rr.deq_p99)
           <= 0.5 *. Float.max 8. (Float.max rr.enq_p99 rr.deq_p99)
         then "PASS"
         else "FAIL")
  | _ -> ());
  (match (List.hd r.widths, List.nth r.widths (List.length r.widths - 1)) with
  | narrow, wide ->
      Report.kv "narrow metadata bus costs pipeline slots"
        (if narrow.empty_carriers > wide.empty_carriers && narrow.busy > wide.busy then "PASS"
         else "FAIL"));
  match r.capacities with
  | small :: _ ->
      let large = List.nth r.capacities (List.length r.capacities - 1) in
      Report.kv "bigger event queues shed less under saturation"
        (if large.dropped_events < small.dropped_events then "PASS" else "FAIL")
  | [] -> ()

let name = "ablations"
