(** E16 — ablations of design choices the paper leaves open:
    aggregation drain scheduling, carrier metadata width, and merger
    event-queue capacity. *)

type drain_row = {
  policy_label : string;
  enq_p99 : float;
  deq_p99 : float;
  total_applied : int;
}

type width_row = {
  width : int;
  piggybacked : int;
  empty_carriers : int;
  event_drops : int;
  busy : float;
}

type capacity_row = { capacity : int; delivered_events : int; dropped_events : int }

type result = {
  drains : drain_row list;
  widths : width_row list;
  capacities : capacity_row list;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
