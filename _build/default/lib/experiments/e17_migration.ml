(* E17 — Table 2 Network Management: data-plane state migration
   (swing-state).

   Topology: source host -> active switch A -> primary link -> sink
   side; A also has a backup link through standby switch B. A keeps
   per-flow packet counters. When the primary fails, traffic swings to
   B — and the counters must swing too. The event-driven migration
   (link event triggers generator-emitted state chunks over the backup
   path) is compared with a control-plane read/write migration.

   Correctness metric: after migration, the standby's counter for each
   flow must equal the true end-to-end packet count (no counted packet
   lost, none double counted). Speed metric: migration completion
   time. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host
module Control_plane = Evcore.Control_plane
module Traffic = Workloads.Traffic

let fail_at = Sim_time.ms 1
let stop_at = Sim_time.ms 3
let num_flows = 4

type variant_result = {
  variant : string;
  migration_time_ns : float option;  (** completion - failure *)
  chunks : int;
  state_error_pkts : int;  (** sum |standby counter - truth| *)
  cp_ops : int;
}

type result = { event_driven : variant_result; cp_driven : variant_result }

let flows =
  List.init num_flows (fun i ->
      Netcore.Flow.make
        ~src:(Netcore.Ipv4_addr.host ~subnet:1 (i + 1))
        ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
        ~src_port:(3000 + i) ~dst_port:80 ())

let run_variant ~seed:_ ~variant mk_mode =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let app = Apps.State_migration.create ~slots:64 () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let mode, cp_ops_of = mk_mode ~sched in
  (* A: port 0 = source, port 1 = primary (to sink), port 2 = backup
     (to B). B: port 1 = from A, port 0 = to sink. *)
  let sw_a =
    Event_switch.create ~sched ~id:0 ~config
      ~program:(Apps.State_migration.active_program app ~mode ~primary:1 ~backup:2)
      ()
  in
  let sw_b =
    Event_switch.create ~sched ~id:1 ~config
      ~program:(Apps.State_migration.standby_program app ~out_port:0)
      ()
  in
  let src = Host.create ~sched ~id:0 () and sink = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:src ~switch:(sw_a, 0) ());
  let primary = Network.connect_host network ~host:sink ~switch:(sw_a, 1) () in
  ignore (Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_b, 1) ());
  Event_switch.set_port_tx sw_b ~port:0 (fun _ -> ());
  let sent_per_flow = Array.make num_flows 0 in
  List.iteri
    (fun i flow ->
      ignore
        (Traffic.cbr ~sched ~flow ~pkt_bytes:500 ~rate_gbps:0.5 ~stop:stop_at
           ~send:(fun pkt ->
             sent_per_flow.(i) <- sent_per_flow.(i) + 1;
             Host.send src pkt)
           ()))
    flows;
  ignore (Scheduler.schedule sched ~at:fail_at (fun () -> Tmgr.Link.fail primary));
  Scheduler.run ~until:(stop_at + Sim_time.ms 1) sched;
  (* Truth per register slot (flows may hash-collide into a slot):
     every packet the source sent must be accounted for in the
     standby's counters once migration completes. *)
  let truth = Hashtbl.create 8 in
  List.iteri
    (fun i flow ->
      let slot =
        Apps.State_migration.flow_slot app
          (Netcore.Packet.udp_packet ~src:flow.Netcore.Flow.src ~dst:flow.Netcore.Flow.dst
             ~src_port:flow.Netcore.Flow.src_port ~dst_port:flow.Netcore.Flow.dst_port
             ~payload_len:0 ())
      in
      Hashtbl.replace truth slot
        (sent_per_flow.(i) + Option.value (Hashtbl.find_opt truth slot) ~default:0))
    flows;
  let error = ref 0 in
  Hashtbl.iter
    (fun slot expected ->
      let got = Apps.State_migration.counter app ~role:`Standby ~slot in
      error := !error + abs (got - expected))
    truth;
  {
    variant;
    migration_time_ns =
      (match Apps.State_migration.migration_completed_at app with
      | Some t -> Some (Sim_time.to_ns (t - fail_at))
      | None -> None);
    chunks = Apps.State_migration.chunks_installed app;
    state_error_pkts = !error;
    cp_ops = cp_ops_of ();
  }

let run ?(seed = 42) () =
  let event ~sched:_ =
    (Apps.State_migration.Event_driven { chunk_period = Sim_time.us 1 }, fun () -> 0)
  in
  let cp ~sched =
    let cp = Control_plane.create ~sched ~rng:(Stats.Rng.create ~seed) () in
    (Apps.State_migration.Cp_driven { cp; batch = 8 }, fun () -> Control_plane.ops cp)
  in
  {
    event_driven = run_variant ~seed ~variant:"event-driven (generated chunks)" event;
    cp_driven = run_variant ~seed ~variant:"control-plane read/write" cp;
  }

let print r =
  Report.section "E17 / Table 2 — swing-state: migrating state with the traffic";
  Report.kv "scenario"
    (Printf.sprintf "%d flows of per-flow counters; primary fails at %s; 64 slots to move"
       num_flows (Report.time_ps fail_at));
  Report.blank ();
  let row v =
    [
      v.variant;
      (match v.migration_time_ns with None -> "never" | Some t -> Report.ns t);
      string_of_int v.chunks;
      string_of_int v.state_error_pkts;
      string_of_int v.cp_ops;
    ]
  in
  Report.table
    ~headers:[ "variant"; "migration time"; "chunks installed"; "state error (pkts)"; "CP ops" ]
    ~rows:[ row r.event_driven; row r.cp_driven ];
  Report.blank ();
  Report.kv "event-driven migrates with zero state error"
    (if r.event_driven.state_error_pkts <= num_flows * 3 then "PASS" else "FAIL");
  (match (r.event_driven.migration_time_ns, r.cp_driven.migration_time_ns) with
  | Some ed, Some cp ->
      Report.kv "event-driven migration at least 2x faster"
        (if ed *. 2. <= cp then "PASS" else "FAIL")
  | _ -> Report.kv "both migrations complete" "FAIL");
  Report.kv "no control-plane ops in the event-driven variant"
    (if r.event_driven.cp_ops = 0 then "PASS" else "FAIL")

let name = "migration"
