(** E17 — Table 2 Network Management: swing-state-style data-plane
    state migration triggered by a link event, vs control-plane
    read/write migration. *)

type variant_result = {
  variant : string;
  migration_time_ns : float option;
  chunks : int;
  state_error_pkts : int;
  cp_ops : int;
}

type result = { event_driven : variant_result; cp_driven : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
