(* E18 — the programming-model claim itself: "a common, general way to
   express event processing using the P4 language".

   The paper's microburst.p4, loaded through the P4-subset DSL, and
   the hand-written OCaml implementation of the same program run on
   identical switches under an identical recorded workload. If the
   programming model is faithful, the two must agree: same flows
   flagged, same event counts, same state footprint — and they must
   also agree with the underlying event stream (one enqueue and one
   dequeue handled per delivered packet). *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event = Devents.Event
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic
module Trace = Workloads.Trace

let threshold_bytes = 20_000
let slots = 1024

type variant_result = {
  variant : string;
  culprit_slots : int list;
  first_detection_time : int option;
  enq_handled : int;
  deq_handled : int;
  state_bits : int;
}

type result = {
  native : variant_result;
  dsl : variant_result;
  workload_packets : int;
  native_flagged_flows : int list;  (** slots mapped back to flow numbers *)
  dsl_flagged_flows : int list;
}

(* One recorded workload drives both variants byte-identically. *)
let record_workload ~seed =
  let sched = Scheduler.create () in
  let trace = Trace.create () in
  let rng = Stats.Rng.create ~seed in
  let flow i =
    Netcore.Flow.make
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 i)
      ~src_port:(1000 + i) ~dst_port:80 ()
  in
  for i = 0 to 3 do
    ignore
      (Traffic.poisson ~sched ~rng:(Stats.Rng.split rng) ~flow:(flow i) ~pkt_bytes:500
         ~rate_pps:200_000. ~stop:(Sim_time.us 500)
         ~send:(fun pkt -> Trace.record trace ~sched ~port:(i mod 3) pkt)
         ())
  done;
  (* One culprit dumping from two ports at once. *)
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(flow 9) ~pkt_bytes:1000 ~count:40 ~rate_gbps:10.
           ~at:(Sim_time.us 200)
           ~send:(fun pkt -> Trace.record trace ~sched ~port pkt)
           ()))
    [ 0; 1 ];
  Scheduler.run sched;
  trace

let run_on_switch ~variant ~trace ~program ~culprits_of =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program () in
  Event_switch.set_port_tx sw ~port:3 (fun _ -> ());
  let first_detection = ref None in
  Event_switch.on_notification sw (fun ~time _msg ->
      if !first_detection = None then first_detection := Some time);
  ignore (Trace.replay trace ~sched ~send:(fun ~port pkt -> Event_switch.inject sw ~port pkt) ());
  Scheduler.run sched;
  let culprits, first = culprits_of sw !first_detection in
  {
    variant;
    culprit_slots = culprits;
    first_detection_time = first;
    enq_handled = Event_switch.handled sw Event.Buffer_enqueue;
    deq_handled = Event_switch.handled sw Event.Buffer_dequeue;
    state_bits = Pisa.Register_alloc.total_bits (Event_switch.alloc sw);
  }

(* Slot assignments per variant for the experiment's flow population
   (flows 0..3 background, flow 9 the culprit): the native app and the
   P4 program hash addresses differently, so equivalence is judged on
   the *flows* flagged, not the raw slot numbers. *)
let native_slot_of i =
  Netcore.Hashes.fold_range
    (Netcore.Flow.hash_addresses
       (Netcore.Flow.make
          ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
          ~dst:(Netcore.Ipv4_addr.host ~subnet:2 i)
          ()))
    slots

let dsl_slot_of i =
  let src = Netcore.Ipv4_addr.to_int (Netcore.Ipv4_addr.host ~subnet:1 i) in
  let dst = Netcore.Ipv4_addr.to_int (Netcore.Ipv4_addr.host ~subnet:2 i) in
  Netcore.Hashes.mix64 (((src lsl 32) lor dst) land max_int) mod slots

let population = [ 0; 1; 2; 3; 9 ]

let flows_of_slots slot_of flagged =
  List.sort_uniq Int.compare
    (List.filter (fun i -> List.mem (slot_of i) flagged) population)

let run ?(seed = 42) () =
  let trace = record_workload ~seed in
  (* Native: the hand-written app (Multiport for the 1-array footprint
     the DSL's shared_register also gets in Multiport mode; both run
     Aggregated by default, so both have 3 arrays — keep defaults). *)
  let native =
    let spec, det = Apps.Microburst.program ~slots ~threshold_bytes ~out_port:(fun _ -> 3) () in
    run_on_switch ~variant:"native OCaml app" ~trace ~program:spec
      ~culprits_of:(fun _sw _first ->
        let ds = Apps.Microburst.detections det in
        ( List.sort_uniq Int.compare
            (List.map (fun (d : Apps.Microburst.detection) -> d.Apps.Microburst.flow_id) ds),
          match ds with [] -> None | d :: _ -> Some d.Apps.Microburst.time ))
  in
  (* DSL: the paper's program. Culprits are identified by notification
     + marked packets; recover the flagged slots by re-reading the
     register is not possible from outside, so use the notification
     times and compare flow sets via the mark on forwarded packets. *)
  let dsl_marked = ref [] in
  let dsl =
    let spec = P4dsl.Loader.load ~name:"microburst.p4" P4dsl.Loader.microburst_p4 in
    let sched = Scheduler.create () in
    let config = Event_switch.default_config Arch.event_pisa_full in
    let sw = Event_switch.create ~sched ~config ~program:spec () in
    let first_detection = ref None in
    Event_switch.set_port_tx sw ~port:3 (fun pkt ->
        if pkt.Netcore.Packet.meta.Netcore.Packet.mark = 1 then
          dsl_marked := pkt.Netcore.Packet.meta.Netcore.Packet.flow_id :: !dsl_marked);
    Event_switch.on_notification sw (fun ~time _msg ->
        if !first_detection = None then first_detection := Some time);
    ignore
      (Trace.replay trace ~sched ~send:(fun ~port pkt -> Event_switch.inject sw ~port pkt) ());
    Scheduler.run sched;
    {
      variant = "microburst.p4 via DSL";
      culprit_slots = List.sort_uniq Int.compare !dsl_marked;
      first_detection_time = !first_detection;
      enq_handled = Event_switch.handled sw Event.Buffer_enqueue;
      deq_handled = Event_switch.handled sw Event.Buffer_dequeue;
      state_bits = Pisa.Register_alloc.total_bits (Event_switch.alloc sw);
    }
  in
  {
    native;
    dsl;
    workload_packets = Trace.length trace;
    native_flagged_flows = flows_of_slots native_slot_of native.culprit_slots;
    dsl_flagged_flows = flows_of_slots dsl_slot_of dsl.culprit_slots;
  }

let print r =
  Report.section "E18 — P4 source vs native OCaml: the same program, twice";
  Report.kv "workload" (Printf.sprintf "%d recorded packets, replayed into both" r.workload_packets);
  Report.blank ();
  let row v =
    [
      v.variant;
      String.concat "," (List.map string_of_int v.culprit_slots);
      (match v.first_detection_time with None -> "-" | Some t -> Report.time_ps t);
      string_of_int v.enq_handled;
      string_of_int v.deq_handled;
      string_of_int v.state_bits;
    ]
  in
  Report.table
    ~headers:[ "variant"; "culprit slots"; "first detection"; "enq"; "deq"; "state bits" ]
    ~rows:[ row r.native; row r.dsl ];
  Report.blank ();
  Report.kv "flows flagged (native)"
    (String.concat "," (List.map string_of_int r.native_flagged_flows));
  Report.kv "flows flagged (DSL)"
    (String.concat "," (List.map string_of_int r.dsl_flagged_flows));
  Report.kv "identical flagged flow sets, incl. the culprit"
    (if r.native_flagged_flows = r.dsl_flagged_flows && List.mem 9 r.native_flagged_flows then
       "PASS"
     else "FAIL");
  Report.kv "identical event counts"
    (if r.native.enq_handled = r.dsl.enq_handled && r.native.deq_handled = r.dsl.deq_handled
     then "PASS"
     else "FAIL");
  Report.kv "identical state footprint"
    (if r.native.state_bits = r.dsl.state_bits then "PASS" else "FAIL");
  Report.kv "detection instants within one carrier"
    (match (r.native.first_detection_time, r.dsl.first_detection_time) with
    | Some a, Some b when abs (a - b) <= Eventsim.Sim_time.ns 100 -> "PASS"
    | Some _, Some _ | None, _ | _, None -> "FAIL")

let name = "p4-equivalence"
