(** E18 — programming-model fidelity: the paper's [microburst.p4]
    loaded through the P4-subset DSL must behave identically to the
    hand-written OCaml implementation under a byte-identical recorded
    workload (same flagged flows, same event counts, same state
    footprint). *)

type variant_result = {
  variant : string;
  culprit_slots : int list;
  first_detection_time : int option;
  enq_handled : int;
  deq_handled : int;
  state_bits : int;
}

type result = {
  native : variant_result;
  dsl : variant_result;
  workload_packets : int;
  native_flagged_flows : int list;
  dsl_flagged_flows : int list;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
