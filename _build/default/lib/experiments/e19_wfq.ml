(* E19 — §3 Traffic Management: "a complete, programmable packet
   scheduler using our event-driven model in combination with the
   recently proposed Push-In-First-Out (PIFO) queue".

   Start-Time Fair Queueing built from three event classes (ranks at
   ingress, virtual time from dequeue events, finish-tag rollback from
   overflow events) scheduling two 10 Gb/s flows into one 10 Gb/s
   port. The measured goodput ratio must track the configured weight
   ratio across a sweep; a FIFO traffic manager, which ignores ranks,
   splits roughly evenly no matter the weights. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic_manager = Tmgr.Traffic_manager
module Traffic = Workloads.Traffic

type point = {
  label : string;
  weight_ratio : float;
  measured_ratio : float;
  goodput_total_gbps : float;
}

type result = { points : point list }

let duration = Sim_time.ms 1

let f1 =
  Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 1) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
    ~src_port:1001 ~dst_port:80 ()

let f2 =
  Flow.make ~src:(Netcore.Ipv4_addr.host ~subnet:1 2) ~dst:(Netcore.Ipv4_addr.host ~subnet:2 2)
    ~src_port:1002 ~dst_port:80 ()

let run_point ~seed ~label ~policy ~w1 ~w2 () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed in
  let slot f = Netcore.Hashes.fold_range (Flow.hash f) 64 in
  let spec, _ =
    Apps.Wfq.program ~slots:64
      ~weight_of:(fun ~flow_slot -> if flow_slot = slot f2 then w2 else w1)
      ~out_port:(fun _ -> 3) ()
  in
  let base = Event_switch.default_config Arch.event_pisa_full in
  let config =
    {
      base with
      Event_switch.tm_config =
        {
          base.Event_switch.tm_config with
          Traffic_manager.policy;
          pifo_capacity = 128;
          buffer_bytes = 4 * 1024 * 1024;
          queue_limit_bytes = Some 128_000 (* comparable FIFO depth *);
        };
    }
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let got = Hashtbl.create 4 in
  Event_switch.set_port_tx sw ~port:3 (fun pkt ->
      match Packet.flow pkt with
      | Some f ->
          let k = f.Flow.src_port in
          Hashtbl.replace got k (Packet.len pkt + Option.value (Hashtbl.find_opt got k) ~default:0)
      | None -> ());
  (* A little send jitter breaks the phase lock two synchronised CBR
     sources would otherwise have at the queue. *)
  List.iter
    (fun flow ->
      ignore
        (Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:10. ~stop:duration
           ~jitter:(Stats.Rng.split rng, Sim_time.ns 200)
           ~send:(fun pkt -> Event_switch.inject sw ~port:(flow.Flow.src_port mod 2) pkt)
           ()))
    [ f1; f2 ];
  Scheduler.run ~until:duration sched;
  let b1 = Option.value (Hashtbl.find_opt got f1.Flow.src_port) ~default:0 in
  let b2 = Option.value (Hashtbl.find_opt got f2.Flow.src_port) ~default:0 in
  {
    label;
    weight_ratio = float_of_int w2 /. float_of_int w1;
    measured_ratio = float_of_int b2 /. Float.max 1. (float_of_int b1);
    goodput_total_gbps = float_of_int ((b1 + b2) * 8) /. Sim_time.to_sec duration /. 1e9;
  }

let run ?(seed = 42) () =
  {
    points =
      [
        run_point ~seed ~label:"PIFO, weights 1:1" ~policy:Traffic_manager.Pifo_sched ~w1:1
          ~w2:1 ();
        run_point ~seed ~label:"PIFO, weights 1:3" ~policy:Traffic_manager.Pifo_sched ~w1:1
          ~w2:3 ();
        run_point ~seed ~label:"PIFO, weights 1:7" ~policy:Traffic_manager.Pifo_sched ~w1:1
          ~w2:7 ();
        run_point ~seed ~label:"FIFO (ranks ignored), weights 1:7" ~policy:Traffic_manager.Fifo
          ~w1:1 ~w2:7 ();
      ];
  }

let print r =
  Report.section "E19 / §3 — programmable scheduling: STFQ over PIFO from events";
  Report.kv "offered" "2 x 10 Gb/s into one 10 Gb/s port, 1 ms";
  Report.blank ();
  Report.table
    ~headers:[ "scheduler"; "weight ratio"; "measured goodput ratio"; "total Gb/s" ]
    ~rows:
      (List.map
         (fun p ->
           [ p.label; Report.f2 p.weight_ratio; Report.f2 p.measured_ratio; Report.f2 p.goodput_total_gbps ])
         r.points);
  Report.blank ();
  (match r.points with
  | [ even; w3; w7; fifo ] ->
      let close a b = Float.abs (a -. b) /. b < 0.15 in
      Report.kv "equal weights split evenly"
        (if close even.measured_ratio 1. then "PASS" else "FAIL");
      Report.kv "1:3 weights give a 3x split" (if close w3.measured_ratio 3. then "PASS" else "FAIL");
      Report.kv "1:7 weights give a 7x split" (if close w7.measured_ratio 7. then "PASS" else "FAIL");
      Report.kv "FIFO ignores the weights"
        (if fifo.measured_ratio < 1.5 then "PASS" else "FAIL")
  | _ -> ());
  Report.kv "port stays fully utilised"
    (if List.for_all (fun p -> p.goodput_total_gbps > 9.5) r.points then "PASS" else "FAIL")

let name = "wfq"
