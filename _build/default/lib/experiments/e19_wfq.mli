(** E19 — §3 Traffic Management: STFQ-over-PIFO programmable
    scheduling from events; goodput ratios track configured weights,
    FIFO ignores them. *)

type point = {
  label : string;
  weight_ratio : float;
  measured_ratio : float;
  goodput_total_gbps : float;
}

type result = { points : point list }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
