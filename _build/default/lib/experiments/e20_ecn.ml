(* E20 — §3: multi-bit ECN along a path.

   A three-switch chain carries traffic end to end; the middle
   switch's egress is degraded to 1 Gb/s, so its buffer is the
   bottleneck. Every switch stamps packets with max(mark, quantised
   local occupancy) from its event-maintained occupancy register. The
   receiver therefore reads the bottleneck occupancy: during the
   congestion episode the received marks must track the bottleneck
   switch's true occupancy (and stay at zero before it), and a
   16-level mark must carry more information than classic 1-bit ECN —
   measured as correlation of the received signal with the true
   bottleneck occupancy. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host
module Traffic = Workloads.Traffic

let buffer_bytes = 128 * 1024
let congest_from = Sim_time.us 300
let stop_at = Sim_time.ms 1 + Sim_time.us 500

type variant_result = {
  variant : string;
  samples : (float * float) list;  (** (true occupancy fraction, received signal) *)
  marks_before_congestion : int;
  correlation : float;
  distinct_levels : int;
}

type result = { multibit : variant_result; single_bit : variant_result }

let pearson xs ys =
  let n = float_of_int (Array.length xs) in
  if n < 2. then 0.
  else begin
    let mx = Stats.Summary.mean xs and my = Stats.Summary.mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    Array.iteri
      (fun i x ->
        let dx = x -. mx and dy = ys.(i) -. my in
        sxy := !sxy +. (dx *. dy);
        sxx := !sxx +. (dx *. dx);
        syy := !syy +. (dy *. dy))
      xs;
    if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)
  end

let run_variant ~levels ~variant () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  (* Chain: host0 - sw0 - sw1(bottleneck) - sw2 - host1. Ports: 0 =
     host side, 1 = towards sw2/host1, 2 = towards sw0/host0. *)
  let mk ~degraded i out_port =
    let spec, app = Apps.Ecn_mark.program ~levels ~buffer_bytes ~out_port () in
    let base = Event_switch.default_config Arch.event_pisa_full in
    let config =
      if degraded then
        {
          base with
          Event_switch.tm_config =
            {
              base.Event_switch.tm_config with
              Tmgr.Traffic_manager.port_rate_gbps = 1.;
              buffer_bytes;
            };
        }
      else
        {
          base with
          Event_switch.tm_config =
            { base.Event_switch.tm_config with Tmgr.Traffic_manager.buffer_bytes };
        }
    in
    (Event_switch.create ~sched ~id:i ~config ~program:spec (), app)
  in
  let sw0, _ = mk ~degraded:false 0 (fun _ -> 1) in
  let sw1, bottleneck = mk ~degraded:true 1 (fun _ -> 1) in
  let sw2, _ = mk ~degraded:false 2 (fun _ -> 0) in
  ignore (Network.connect_switches network ~a:(sw0, 1) ~b:(sw1, 2) ());
  ignore (Network.connect_switches network ~a:(sw1, 1) ~b:(sw2, 2) ());
  let src = Host.create ~sched ~id:0 () and dst = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:src ~switch:(sw0, 0) ());
  ignore (Network.connect_host network ~host:dst ~switch:(sw2, 0) ());
  (* Receiver: pair each packet's mark with the bottleneck's true
     occupancy at arrival (the queueing delay means the mark reflects
     slightly older state — part of the measured signal quality). *)
  let samples = ref [] in
  let marks_before = ref 0 in
  Host.set_receiver dst (fun _ pkt ->
      let occ_frac =
        float_of_int (Apps.Ecn_mark.occupancy_bytes bottleneck) /. float_of_int buffer_bytes
      in
      let signal = float_of_int pkt.Packet.meta.Packet.mark /. float_of_int (levels - 1) in
      samples := (occ_frac, signal) :: !samples;
      if Scheduler.now sched < congest_from && pkt.Packet.meta.Packet.mark > 0 then
        incr marks_before);
  (* 0.8 Gb/s baseline fits the 1 Gb/s bottleneck; from [congest_from]
     a second flow pushes the total to 2 Gb/s and the queue climbs. *)
  let flow i =
    Netcore.Flow.make
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
      ~src_port:(1000 + i) ~dst_port:80 ()
  in
  ignore
    (Traffic.cbr ~sched ~flow:(flow 1) ~pkt_bytes:1000 ~rate_gbps:0.8 ~stop:stop_at
       ~send:(fun pkt -> Host.send src pkt)
       ());
  ignore
    (Traffic.cbr ~sched ~flow:(flow 2) ~pkt_bytes:1000 ~rate_gbps:1.2 ~start:congest_from
       ~stop:stop_at
       ~send:(fun pkt -> Host.send src pkt)
       ());
  Scheduler.run ~until:stop_at sched;
  let samples = List.rev !samples in
  let xs = Array.of_list (List.map fst samples) in
  let ys = Array.of_list (List.map snd samples) in
  {
    variant;
    samples;
    marks_before_congestion = !marks_before;
    correlation = pearson xs ys;
    distinct_levels =
      List.length (List.sort_uniq compare (List.map snd samples));
  }

let run ?(seed = 42) () =
  ignore seed;
  {
    multibit = run_variant ~levels:16 ~variant:"16-level mark" ();
    single_bit = run_variant ~levels:2 ~variant:"classic 1-bit ECN" ();
  }

let print r =
  Report.section "E20 / §3 — multi-bit ECN: reading the bottleneck queue end to end";
  Report.kv "path" "host - sw0 - sw1 (1 Gb/s bottleneck) - sw2 - host; congestion from 300us";
  Report.blank ();
  let row v =
    [
      v.variant;
      string_of_int (List.length v.samples);
      string_of_int v.distinct_levels;
      Report.f2 v.correlation;
      string_of_int v.marks_before_congestion;
    ]
  in
  Report.table
    ~headers:[ "variant"; "rx packets"; "signal levels seen"; "corr. w/ occupancy"; "false marks" ]
    ~rows:[ row r.multibit; row r.single_bit ];
  Report.blank ();
  Report.kv "no marks before congestion"
    (if r.multibit.marks_before_congestion = 0 && r.single_bit.marks_before_congestion = 0 then
       "PASS"
     else "FAIL");
  Report.kv "multi-bit signal tracks the bottleneck (corr > 0.8)"
    (if r.multibit.correlation > 0.8 then "PASS" else "FAIL");
  Report.kv "multi-bit carries more information than 1-bit"
    (if
       r.multibit.distinct_levels > r.single_bit.distinct_levels
       && r.multibit.correlation > r.single_bit.correlation
     then "PASS"
     else "FAIL")

let name = "ecn"
