(** E20 — §3: multi-bit ECN marking; the receiver reads the
    bottleneck's occupancy from event-maintained state stamped along
    the path, vs classic 1-bit ECN. *)

type variant_result = {
  variant : string;
  samples : (float * float) list;
  marks_before_congestion : int;
  correlation : float;
  distinct_levels : int;
}

type result = { multibit : variant_result; single_bit : variant_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
val name : string
