(** The experiment registry: every reproduced table/figure experiment
    by name, so the bench harness and the CLI share one list. *)

type entry = {
  name : string;  (** CLI name, e.g. "table3" *)
  experiment_id : string;  (** e.g. "E3" *)
  paper_artifact : string;  (** e.g. "Table 3" *)
  run_and_print : seed:int -> unit;
}

val all : entry list
val find : string -> entry option
val names : unit -> string list
