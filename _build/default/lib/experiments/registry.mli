(** The experiment registry: every reproduced table/figure experiment
    by name, so the bench harness and the CLI share one list. *)

type entry = {
  name : string;  (** CLI name, e.g. "table3" *)
  experiment_id : string;  (** e.g. "E3" *)
  paper_artifact : string;  (** e.g. "Table 3" *)
  run_and_print : metrics:Obs.Metrics.t option -> seed:int -> unit;
      (** Experiments wired for observability (table1, fig4-linerate,
          fig3-staleness, microburst) record scheduler, event-switch
          and traffic-manager series into [metrics]; the rest ignore
          it. *)
}

val all : entry list
val find : string -> entry option
val names : unit -> string list
