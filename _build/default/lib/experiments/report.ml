let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let kv key value = Printf.printf "  %-36s %s\n" (key ^ ":") value

let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    print_string "  ";
    List.iteri (fun i cell -> Printf.printf "%-*s  " widths.(i) cell) row;
    print_newline ()
  in
  print_row headers;
  print_string "  ";
  Array.iter (fun w -> print_string (String.make w '-' ^ "  ")) widths;
  print_newline ();
  List.iter print_row rows

let note s = Printf.printf "  %s\n" s
let blank () = print_newline ()
let pct x = Printf.sprintf "%.1f%%" x
let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x

let ns x =
  if Float.abs x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
  else if Float.abs x >= 1e3 then Printf.sprintf "%.2fus" (x /. 1e3)
  else Printf.sprintf "%.0fns" x

let time_ps t = ns (float_of_int t /. 1e3)
