let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let kv key value = Printf.printf "  %-36s %s\n" (key ^ ":") value

let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    print_string "  ";
    List.iteri (fun i cell -> Printf.printf "%-*s  " widths.(i) cell) row;
    print_newline ()
  in
  print_row headers;
  print_string "  ";
  Array.iter (fun w -> print_string (String.make w '-' ^ "  ")) widths;
  print_newline ();
  List.iter print_row rows

let note s = Printf.printf "  %s\n" s
let blank () = print_newline ()
let pct x = Printf.sprintf "%.1f%%" x
let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x

let ns x =
  if Float.abs x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
  else if Float.abs x >= 1e3 then Printf.sprintf "%.2fus" (x /. 1e3)
  else Printf.sprintf "%.0fns" x

let time_ps t = ns (float_of_int t /. 1e3)

let metrics_summary reg =
  let samples = Obs.Metrics.snapshot reg in
  section (Printf.sprintf "Metrics snapshot (%d series)" (List.length samples));
  let row { Obs.Metrics.name; labels; value } =
    let labels_s = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) labels) in
    let kind, shown =
      match value with
      | Obs.Metrics.Counter_v v -> ("counter", string_of_int v)
      | Obs.Metrics.Gauge_v { last; max; min = _ } ->
          ("gauge", Printf.sprintf "%d (max %d)" last max)
      | Obs.Metrics.Histo_v { count; mean; p50; p99; max } ->
          ( "histogram",
            Printf.sprintf "n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g" count mean p50 p99 max )
      | Obs.Metrics.Summary_v { count; mean; std; min = _; max } ->
          ("summary", Printf.sprintf "n=%d mean=%.3g std=%.3g max=%.3g" count mean std max)
    in
    [ name; labels_s; kind; shown ]
  in
  table ~headers:[ "series"; "labels"; "kind"; "value" ] ~rows:(List.map row samples)
