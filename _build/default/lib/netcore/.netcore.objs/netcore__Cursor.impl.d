lib/netcore/cursor.ml: Bytes Int32
