lib/netcore/cursor.mli:
