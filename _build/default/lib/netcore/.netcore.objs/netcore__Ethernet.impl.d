lib/netcore/ethernet.ml: Cursor Format Mac_addr
