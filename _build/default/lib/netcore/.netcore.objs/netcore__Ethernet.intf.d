lib/netcore/ethernet.mli: Cursor Format Mac_addr
