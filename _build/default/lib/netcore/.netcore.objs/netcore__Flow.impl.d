lib/netcore/flow.ml: Format Hashes Hashtbl Ipv4_addr Stdlib
