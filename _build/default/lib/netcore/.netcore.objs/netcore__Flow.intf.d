lib/netcore/flow.mli: Format Hashtbl Ipv4_addr
