lib/netcore/frame.ml: Cursor Ethernet Ipv4 Packet Tcp Udp
