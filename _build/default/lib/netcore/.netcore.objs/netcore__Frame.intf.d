lib/netcore/frame.mli: Packet
