lib/netcore/hashes.ml: Array Bytes Int64 Lazy
