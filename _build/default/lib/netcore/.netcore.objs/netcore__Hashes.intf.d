lib/netcore/hashes.mli:
