lib/netcore/ipv4.ml: Bytes Cursor Format Ipv4_addr
