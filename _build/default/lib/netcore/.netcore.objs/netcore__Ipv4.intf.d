lib/netcore/ipv4.mli: Cursor Format Ipv4_addr
