lib/netcore/ipv4_addr.ml: Format Int Printf String
