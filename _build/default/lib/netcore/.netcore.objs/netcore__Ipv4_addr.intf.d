lib/netcore/ipv4_addr.mli: Format
