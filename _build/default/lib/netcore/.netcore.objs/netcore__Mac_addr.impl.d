lib/netcore/mac_addr.ml: Format Int List Printf String
