lib/netcore/mac_addr.mli: Format
