lib/netcore/packet.ml: Array Ethernet Flow Format Ipv4 Ipv4_addr Mac_addr Tcp Udp
