lib/netcore/packet.mli: Ethernet Flow Format Ipv4 Ipv4_addr Tcp Udp
