lib/netcore/tcp.ml: Cursor Format
