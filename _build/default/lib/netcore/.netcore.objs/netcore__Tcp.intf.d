lib/netcore/tcp.mli: Cursor Format
