lib/netcore/udp.ml: Cursor Format
