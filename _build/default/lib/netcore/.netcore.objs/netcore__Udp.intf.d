lib/netcore/udp.mli: Cursor Format
