exception Truncated

type writer = { buf : bytes; mutable wpos : int }
type reader = { src : bytes; mutable rpos : int }

let writer n = { buf = Bytes.make n '\000'; wpos = 0 }
let contents w = w.buf
let pos_w w = w.wpos

let check_w w n = if w.wpos + n > Bytes.length w.buf then raise Truncated

let u8 w v =
  check_w w 1;
  Bytes.set_uint8 w.buf w.wpos (v land 0xff);
  w.wpos <- w.wpos + 1

let u16 w v =
  check_w w 2;
  Bytes.set_uint16_be w.buf w.wpos (v land 0xffff);
  w.wpos <- w.wpos + 2

let u32 w v =
  check_w w 4;
  Bytes.set_int32_be w.buf w.wpos (Int32.of_int (v land 0xffffffff));
  w.wpos <- w.wpos + 4

let blit w src =
  let n = Bytes.length src in
  check_w w n;
  Bytes.blit src 0 w.buf w.wpos n;
  w.wpos <- w.wpos + n

let skip_w w n =
  check_w w n;
  w.wpos <- w.wpos + n

let reader src = { src; rpos = 0 }
let reader_at src pos = { src; rpos = pos }
let pos_r r = r.rpos
let remaining r = Bytes.length r.src - r.rpos
let check_r r n = if r.rpos + n > Bytes.length r.src then raise Truncated

let read_u8 r =
  check_r r 1;
  let v = Bytes.get_uint8 r.src r.rpos in
  r.rpos <- r.rpos + 1;
  v

let read_u16 r =
  check_r r 2;
  let v = Bytes.get_uint16_be r.src r.rpos in
  r.rpos <- r.rpos + 2;
  v

let read_u32 r =
  check_r r 4;
  let v = Int32.to_int (Bytes.get_int32_be r.src r.rpos) land 0xffffffff in
  r.rpos <- r.rpos + 4;
  v

let read_bytes r n =
  check_r r n;
  let b = Bytes.sub r.src r.rpos n in
  r.rpos <- r.rpos + n;
  b

let skip_r r n =
  check_r r n;
  r.rpos <- r.rpos + n

let buffer r = r.src
