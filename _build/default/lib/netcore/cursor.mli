(** Big-endian byte-level reader/writer used by header
    serialization/parsing. Bounds errors raise [Truncated]. *)

exception Truncated

type writer
type reader

val writer : int -> writer
(** A writer over a fresh zeroed buffer of the given size. *)

val contents : writer -> bytes
val pos_w : writer -> int
val u8 : writer -> int -> unit
val u16 : writer -> int -> unit
val u32 : writer -> int -> unit
val blit : writer -> bytes -> unit
val skip_w : writer -> int -> unit
(** Advance over already-zeroed space. *)

val reader : bytes -> reader
val reader_at : bytes -> int -> reader
val pos_r : reader -> int
val remaining : reader -> int
val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int
val read_bytes : reader -> int -> bytes
val skip_r : reader -> int -> unit

val buffer : reader -> bytes
(** The underlying buffer (for checksum verification over a span). *)
