(** Ethernet II header. *)

type t = { dst : Mac_addr.t; src : Mac_addr.t; ethertype : int }

val size : int
(** 14 bytes (no VLAN tag). *)

val ethertype_ipv4 : int
val ethertype_event : int
(** Private ethertype used by the simulated architecture for internally
    generated control/event packets (probes, echoes, reports). *)

val make : dst:Mac_addr.t -> src:Mac_addr.t -> ethertype:int -> t
val write : Cursor.writer -> t -> unit
val read : Cursor.reader -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
