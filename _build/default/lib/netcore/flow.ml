type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  proto : int;
  src_port : int;
  dst_port : int;
}

let make ~src ~dst ?(proto = 17) ?(src_port = 0) ?(dst_port = 0) () =
  { src; dst; proto; src_port; dst_port }

let equal a b =
  Ipv4_addr.equal a.src b.src && Ipv4_addr.equal a.dst b.dst && a.proto = b.proto
  && a.src_port = b.src_port && a.dst_port = b.dst_port

let compare = Stdlib.compare

let pack t =
  let h = Ipv4_addr.to_int t.src in
  let h = Hashes.mix64 ((h lsl 7) lxor Ipv4_addr.to_int t.dst) in
  let h = Hashes.mix64 ((h lsl 5) lxor ((t.proto lsl 32) lor (t.src_port lsl 16) lor t.dst_port)) in
  h

let hash t = Hashes.mix64 (pack t)
let hash_addresses t = Hashes.mix64 ((Ipv4_addr.to_int t.src lsl 16) lxor Ipv4_addr.to_int t.dst)

let pp ppf t =
  Format.fprintf ppf "%a:%d -> %a:%d/%d" Ipv4_addr.pp t.src t.src_port Ipv4_addr.pp t.dst
    t.dst_port t.proto

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = hash t land max_int
end)
