(** Five-tuple flow identification. *)

type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  proto : int;
  src_port : int;
  dst_port : int;
}

val make :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> ?proto:int -> ?src_port:int -> ?dst_port:int -> unit -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val pack : t -> int
(** Injective packing of the tuple into an int is impossible (104 bits),
    so [pack] returns a 62-bit mix suitable as a hash key; collision
    probability is negligible at simulation scale. *)

val hash : t -> int
(** [Hashes.mix64] of [pack]. *)

val hash_addresses : t -> int
(** Hash of source and destination addresses only — the paper's
    microburst example hashes [ip.src ++ ip.dst]. *)

val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
