let to_bytes (p : Packet.t) =
  let w = Cursor.writer (Packet.len p) in
  Ethernet.write w p.eth;
  (match p.ip with Some ip -> Ipv4.write w ip | None -> ());
  (match p.l4 with
  | Packet.Udp u -> Udp.write w u
  | Packet.Tcp t -> Tcp.write w t
  | Packet.No_l4 -> ());
  Cursor.skip_w w p.payload_len;
  Cursor.contents w

let of_bytes buf =
  let r = Cursor.reader buf in
  let eth = Ethernet.read r in
  if eth.Ethernet.ethertype = Ethernet.ethertype_ipv4 then begin
    let ip = Ipv4.read r in
    let l4, l4_len =
      if ip.Ipv4.proto = Ipv4.proto_udp then (Packet.Udp (Udp.read r), Udp.size)
      else if ip.Ipv4.proto = Ipv4.proto_tcp then (Packet.Tcp (Tcp.read r), Tcp.size)
      else (Packet.No_l4, 0)
    in
    let payload_len = ip.Ipv4.total_len - Ipv4.size - l4_len in
    if payload_len < 0 then failwith "Frame.of_bytes: inconsistent lengths";
    Packet.create ~ip ~l4 ~payload_len ~eth ()
  end
  else
    let payload_len = Cursor.remaining r in
    Packet.create ~payload_len ~eth ()

let roundtrip_equal (a : Packet.t) (b : Packet.t) =
  Ethernet.equal a.eth b.eth
  && (match (a.ip, b.ip) with
     | Some x, Some y -> Ipv4.equal x y
     | None, None -> true
     | Some _, None | None, Some _ -> false)
  && (match (a.l4, b.l4) with
     | Packet.Udp x, Packet.Udp y -> Udp.equal x y
     | Packet.Tcp x, Packet.Tcp y -> Tcp.equal x y
     | Packet.No_l4, Packet.No_l4 -> true
     | (Packet.Udp _ | Packet.Tcp _ | Packet.No_l4), _ -> false)
  && a.payload_len = b.payload_len
