(** Byte-level serialization of packets.

    [to_bytes] produces a full wire frame; application payloads
    (extensible variants) serialize as zero bytes of [payload_len]
    because the event architecture never needs their wire form — only
    workload replay and tests do. [of_bytes] parses headers back and
    returns the payload as [Packet.Opaque]. *)

val to_bytes : Packet.t -> bytes
val of_bytes : bytes -> Packet.t
(** Raises [Failure] on malformed input (bad version, bad checksum) and
    [Cursor.Truncated] on short input. *)

val roundtrip_equal : Packet.t -> Packet.t -> bool
(** Header-level equality ignoring uid/payload constructor — what a
    serialize/parse cycle preserves. *)
