let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 buf =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = 0 to Bytes.length buf - 1 do
    c := table.((!c lxor Bytes.get_uint8 buf i) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32_int v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  crc32 b

let fnv1a64 buf =
  let prime = 0x100000001b3L and offset = 0xcbf29ce484222325L in
  let h = ref offset in
  for i = 0 to Bytes.length buf - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Bytes.get_uint8 buf i))) prime
  done;
  Int64.to_int (Int64.shift_right_logical !h 2)

let mix64 v =
  let z = Int64.add (Int64.of_int v) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let salted ~salt key = mix64 (key lxor mix64 (salt + 0x5bd1))

let fold_range h n =
  if n <= 0 then invalid_arg "Hashes.fold_range: n must be positive";
  (h land max_int) mod n
