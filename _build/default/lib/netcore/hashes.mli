(** Hash functions used by data-plane externs (flow hashing, sketch
    rows, Bloom filters). All are deterministic pure functions. *)

val crc32 : bytes -> int
(** IEEE 802.3 CRC-32 over the whole buffer (the polynomial hardware
    hash units typically expose). *)

val crc32_int : int -> int
(** CRC-32 of an int's 8 bytes, for hashing packed header fields. *)

val fnv1a64 : bytes -> int
(** 64-bit FNV-1a folded to 62 bits (non-negative). *)

val mix64 : int -> int
(** A strong finalizing mixer (splitmix64 finalizer), non-negative
    result. *)

val salted : salt:int -> int -> int
(** [salted ~salt key] is an independent-looking hash per salt; CMS and
    Bloom rows use salts 0, 1, 2, ... *)

val fold_range : int -> int -> int
(** [fold_range h n] maps a hash onto [\[0, n)]. *)
