type t = int

let mask = 0xffffffff
let of_int v = v land mask
let to_int t = t

let of_octets a b c d =
  of_int (((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16) lor ((c land 0xff) lsl 8) lor (d land 0xff))

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try
        let oct x =
          let v = int_of_string x in
          if v < 0 || v > 255 then failwith "octet";
          v
        in
        of_octets (oct a) (oct b) (oct c) (oct d)
      with Failure _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s))
  | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let host ~subnet n = of_octets 10 (subnet land 0xff) ((n lsr 8) land 0xff) (n land 0xff)

let in_prefix t ~prefix ~len =
  if len < 0 || len > 32 then invalid_arg "Ipv4_addr.in_prefix: bad length";
  if len = 0 then true
  else
    let shift = 32 - len in
    t lsr shift = (prefix : t :> int) lsr shift

let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.pp_print_string ppf (to_string t)
