(** IPv4 addresses as 32-bit values in an int. *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val of_string : string -> t
(** Dotted quad; raises [Invalid_argument] on bad syntax. *)

val to_string : t -> string
val of_octets : int -> int -> int -> int -> t
val host : subnet:int -> int -> t
(** [host ~subnet n] is 10.[subnet].x.y for host number [n]. *)

val in_prefix : t -> prefix:t -> len:int -> bool
(** Longest-prefix-match test: do the top [len] bits agree? *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
