type t = int

let mask = (1 lsl 48) - 1
let of_int v = v land mask
let to_int t = t
let broadcast = mask
let zero = 0

let of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then invalid_arg ("Mac_addr.of_string: " ^ s);
  List.fold_left
    (fun acc part ->
      let v = try int_of_string ("0x" ^ part) with Failure _ -> invalid_arg ("Mac_addr.of_string: " ^ s) in
      if v < 0 || v > 0xff then invalid_arg ("Mac_addr.of_string: " ^ s);
      (acc lsl 8) lor v)
    0 parts

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff)
    ((t lsr 32) land 0xff) ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let host n = of_int ((0x02 lsl 40) lor (n land 0xffffffff))
let switch_port ~switch ~port = of_int ((0x06 lsl 40) lor ((switch land 0xffff) lsl 16) lor (port land 0xffff))
let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)
