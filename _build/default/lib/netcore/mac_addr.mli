(** 48-bit Ethernet MAC addresses, stored in the low bits of an int. *)

type t = private int

val of_int : int -> t
(** Masks to 48 bits. *)

val to_int : t -> int
val broadcast : t
val zero : t

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"]; raises [Invalid_argument] on bad
    syntax. *)

val to_string : t -> string
val host : int -> t
(** [host n] is a conventional locally-administered address for
    simulated host [n] ("02:00:00:.."). *)

val switch_port : switch:int -> port:int -> t
(** Conventional address for a switch-port interface. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
