type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int;
  window : int;
}

let size = 20
let flag_fin = 0x001
let flag_syn = 0x002
let flag_rst = 0x004
let flag_ack = 0x010

let make ~src_port ~dst_port ?(seq = 0) ?(ack = 0) ?(flags = 0) ?(window = 65535) () =
  {
    src_port = src_port land 0xffff;
    dst_port = dst_port land 0xffff;
    seq = seq land 0xffffffff;
    ack = ack land 0xffffffff;
    flags = flags land 0x1ff;
    window = window land 0xffff;
  }

let write w t =
  Cursor.u16 w t.src_port;
  Cursor.u16 w t.dst_port;
  Cursor.u32 w t.seq;
  Cursor.u32 w t.ack;
  (* data offset = 5 words, then flags *)
  Cursor.u16 w ((5 lsl 12) lor t.flags);
  Cursor.u16 w t.window;
  Cursor.u16 w 0 (* checksum *);
  Cursor.u16 w 0 (* urgent pointer *)

let read r =
  let src_port = Cursor.read_u16 r in
  let dst_port = Cursor.read_u16 r in
  let seq = Cursor.read_u32 r in
  let ack = Cursor.read_u32 r in
  let off_flags = Cursor.read_u16 r in
  if off_flags lsr 12 <> 5 then failwith "Tcp.read: options unsupported";
  let window = Cursor.read_u16 r in
  let _csum = Cursor.read_u16 r in
  let _urg = Cursor.read_u16 r in
  { src_port; dst_port; seq; ack; flags = off_flags land 0x1ff; window }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port && a.seq = b.seq && a.ack = b.ack
  && a.flags = b.flags && a.window = b.window

let pp ppf t =
  Format.fprintf ppf "tcp %d -> %d seq=%d flags=0x%x" t.src_port t.dst_port t.seq t.flags
