(** TCP header (no options; the simulator does not run a TCP stack, but
    workloads can mark flows as TCP so five-tuple handling and parsing
    are exercised end to end). *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int; (* low 9 bits: NS CWR ECE URG ACK PSH RST SYN FIN *)
  window : int;
}

val size : int
val flag_syn : int
val flag_ack : int
val flag_fin : int
val flag_rst : int

val make :
  src_port:int -> dst_port:int -> ?seq:int -> ?ack:int -> ?flags:int -> ?window:int -> unit -> t

val write : Cursor.writer -> t -> unit
val read : Cursor.reader -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
