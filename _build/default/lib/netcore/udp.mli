(** UDP header (checksum left zero: legal for IPv4 and what most
    switch-centric simulations do). *)

type t = { src_port : int; dst_port : int; length : int }

val size : int
val make : src_port:int -> dst_port:int -> payload_len:int -> t
val write : Cursor.writer -> t -> unit
val read : Cursor.reader -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
