lib/obs/metrics.ml: Buffer Char Float Format Hashtbl List Option Printf Stats String
