lib/obs/metrics.mli: Format Stats
