lib/p4dsl/ast.ml: Format List
