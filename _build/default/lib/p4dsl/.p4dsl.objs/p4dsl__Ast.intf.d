lib/p4dsl/ast.mli: Format
