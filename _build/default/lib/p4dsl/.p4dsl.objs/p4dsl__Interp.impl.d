lib/p4dsl/interp.ml: Ast Hashtbl List Printf
