lib/p4dsl/interp.mli: Ast Hashtbl
