lib/p4dsl/lexer.ml: Ast Buffer List Printf String
