lib/p4dsl/lexer.mli: Ast
