lib/p4dsl/loader.ml: Array Ast Devents Evcore Eventsim Hashtbl Interp List Netcore Option Parser Pisa Printf String
