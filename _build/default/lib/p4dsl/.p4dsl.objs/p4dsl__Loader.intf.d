lib/p4dsl/loader.mli: Ast Evcore
