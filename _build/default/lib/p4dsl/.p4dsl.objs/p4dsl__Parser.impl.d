lib/p4dsl/parser.ml: Ast Hashtbl Lexer List Printf String
