lib/p4dsl/parser.mli: Ast
