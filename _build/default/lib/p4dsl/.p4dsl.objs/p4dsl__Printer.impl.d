lib/p4dsl/printer.ml: Ast List Printf String
