lib/p4dsl/printer.mli: Ast
