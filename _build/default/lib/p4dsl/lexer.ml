type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LANGLE
  | RANGLE
  | LE
  | GE
  | EQEQ
  | NEQ
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | ANDAND
  | OROR
  | SHL
  | SHR
  | CONCAT
  | DOT
  | COMMA
  | SEMI
  | EOF

type lexed = { token : token; pos : Ast.position }

exception Lex_error of string * Ast.position

type state = { src : string; mutable i : int; mutable line : int; mutable col : int }

let peek st k = if st.i + k < String.length st.src then Some st.src.[st.i + k] else None

let advance st =
  (match peek st 0 with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.i <- st.i + 1

let pos st = { Ast.line = st.line; col = st.col }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek st 1 = Some '/' ->
      let rec to_eol () =
        match peek st 0 with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | Some '/' when peek st 1 = Some '*' ->
      let start = pos st in
      advance st;
      advance st;
      let rec to_close () =
        match (peek st 0, peek st 1) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> raise (Lex_error ("unterminated block comment", start))
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_ws st
  | Some _ | None -> ()

let lex_ident st =
  let start = st.i in
  while (match peek st 0 with Some c -> is_ident c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.i - start)

let lex_int st p =
  let start = st.i in
  if peek st 0 = Some '0' && (peek st 1 = Some 'x' || peek st 1 = Some 'X') then begin
    advance st;
    advance st;
    while
      match peek st 0 with
      | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance st
    done
  end
  else
    while
      (* Underscores as digit separators, e.g. 512_000. *)
      match peek st 0 with Some c -> is_digit c || c = '_' | None -> false
    do
      advance st
    done;
  let raw = String.sub st.src start (st.i - start) in
  let cleaned = String.concat "" (String.split_on_char '_' raw) in
  match int_of_string_opt cleaned with
  | Some v -> v
  | None -> raise (Lex_error (Printf.sprintf "bad integer literal %S" raw, p))

let lex_string st p =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st 0 with
    | Some '"' -> advance st
    | None -> raise (Lex_error ("unterminated string", p))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let tokenize src =
  let st = { src; i = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit token p = out := { token; pos = p } :: !out in
  let rec go () =
    skip_ws st;
    let p = pos st in
    match peek st 0 with
    | None -> emit EOF p
    | Some c ->
        (if is_ident_start c then
           match lex_ident st with
           | "true" -> emit (IDENT "true") p
           | id -> emit (IDENT id) p
         else if is_digit c then emit (INT (lex_int st p)) p
         else if c = '"' then emit (STRING (lex_string st p)) p
         else begin
           let two a b tok =
             if peek st 0 = Some a && peek st 1 = Some b then begin
               advance st;
               advance st;
               emit tok p;
               true
             end
             else false
           in
           if two '+' '+' CONCAT then ()
           else if two '<' '<' SHL then ()
           else if two '>' '>' SHR then ()
           else if two '<' '=' LE then ()
           else if two '>' '=' GE then ()
           else if two '=' '=' EQEQ then ()
           else if two '!' '=' NEQ then ()
           else if two '&' '&' ANDAND then ()
           else if two '|' '|' OROR then ()
           else begin
             advance st;
             let tok =
               match c with
               | '(' -> LPAREN
               | ')' -> RPAREN
               | '{' -> LBRACE
               | '}' -> RBRACE
               | '<' -> LANGLE
               | '>' -> RANGLE
               | '=' -> ASSIGN
               | '+' -> PLUS
               | '-' -> MINUS
               | '*' -> STAR
               | '/' -> SLASH
               | '%' -> PERCENT
               | '&' -> AMP
               | '|' -> PIPE
               | '^' -> CARET
               | '~' -> TILDE
               | '!' -> BANG
               | '.' -> DOT
               | ',' -> COMMA
               | ';' -> SEMI
               | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, p))
             in
             emit tok p
           end
         end);
        if (match !out with { token = EOF; _ } :: _ -> false | _ -> true) then go ()
  in
  go ();
  List.rev !out

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LANGLE -> "'<'"
  | RANGLE -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | CONCAT -> "'++'"
  | DOT -> "'.'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | EOF -> "end of input"
