(** Hand-written lexer for the P4 subset. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LANGLE  (** [<] — also the comparison operator; the parser decides *)
  | RANGLE
  | LE
  | GE
  | EQEQ
  | NEQ
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | ANDAND
  | OROR
  | SHL
  | SHR
  | CONCAT  (** [++] *)
  | DOT
  | COMMA
  | SEMI
  | EOF

type lexed = { token : token; pos : Ast.position }

exception Lex_error of string * Ast.position

val tokenize : string -> lexed list
(** Lexes the whole source ([//] line and [/* */] block comments are
    skipped); raises [Lex_error] on an illegal character. *)

val token_to_string : token -> string
