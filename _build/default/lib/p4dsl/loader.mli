(** Bind a parsed P4-subset program onto the event-driven architecture:
    [load] turns source text into an {!Evcore.Program.spec} installable
    on any {!Evcore.Event_switch}.

    {2 Control-to-event binding}

    A [control]'s name selects the event class it handles:
    [Ingress], [Recirculated], [Generated], [Egress], [Enqueue],
    [Dequeue], [Overflow], [Underflow], [Transmitted], [Timer],
    [LinkChange], [ControlPlane], [UserEvent]. At least [Ingress] must
    be present.

    {2 Environments}

    Packet controls read [pkt.len], [pkt.ingress_port], [hdr.ip.src],
    [hdr.ip.dst], [hdr.ip.proto], [hdr.udp.sport], [hdr.udp.dport]
    ([pkt.*] works as an alias for [hdr.*]) and may write
    [enq_meta.flowID] / [enq_meta.pkt_len] / [enq_meta.slot2] /
    [enq_meta.slot3] and the same under [deq_meta.*] — the paper's
    metadata initialisation. Effect builtins: [forward(port)],
    [multicast(p1, ..)], [drop()], [recirculate()], [mark(v)],
    [emit_user(tag, data)], [notify("msg")]. If no decision builtin
    runs, the packet is dropped.

    Buffer-event controls read [meta.flowID], [meta.pkt_len],
    [meta.slot2], [meta.slot3] (the metadata the ingress control
    wrote), plus [meta.port], [meta.qid], [meta.occ_bytes],
    [meta.occ_pkts]. Timer controls read [timer.id] and [timer.count]
    (each [timer(period_us) name;] declaration also binds [name] as a
    constant holding the timer's id). Link controls read [link.port]
    and [link.up]; control-plane controls [ctl.opcode] / [ctl.arg];
    user-event controls [user.tag] / [user.data].

    {2 Register semantics}

    [shared_register<bit<W>>(N) r;] allocates a {!Devents.Shared_register}
    in the switch's state mode. In packet controls, [r.read]/[r.write]/
    [r.add] use the packet-thread port. In event controls, [r.read]
    returns the up-to-date value and [r.write(i, v)] aggregates the
    difference into the control's side (Enqueue -> enq side, others ->
    deq side) — exactly how §4 says event-side read-modify-writes are
    realised, so the paper's Enqueue/Dequeue blocks work verbatim.
    Register indexes are truncated modulo the entry count (hardware
    index truncation). [register<...>] declares plain single-thread
    state.

    Value builtins usable in expressions: [max(a,b)], [min(a,b)],
    [now_us()]. *)

exception Load_error of string

val load : ?name:string -> string -> Evcore.Program.spec
(** Parse and bind source text. Parse errors raise
    {!Parser.Parse_error}; binding errors raise {!Load_error};
    handler-time errors raise {!Interp.Runtime_error}. *)

val load_ast : ?name:string -> Ast.program -> Evcore.Program.spec

val microburst_p4 : string
(** The paper's §2 program, as accepted by this DSL. *)
