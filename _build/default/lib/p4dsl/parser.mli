(** Recursive-descent parser for the P4 subset. *)

exception Parse_error of string * Ast.position

val parse : string -> Ast.program
(** Parse a full source string; raises {!Parse_error} or
    {!Lexer.Lex_error} with a position on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
