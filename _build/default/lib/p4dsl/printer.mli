(** Pretty-printer for the P4 subset: emits source text that
    {!Parser.parse} accepts and that round-trips to the same AST
    (property-tested). Useful for program generation, golden tests and
    error reporting. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val decl_to_string : Ast.decl -> string
val program_to_string : Ast.program -> string
