lib/pisa/bloom.ml: Netcore Register_alloc Register_array
