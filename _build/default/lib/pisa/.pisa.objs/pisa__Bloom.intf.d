lib/pisa/bloom.mli: Register_alloc
