lib/pisa/cms.ml: Array Netcore Printf Register_alloc Register_array Seq
