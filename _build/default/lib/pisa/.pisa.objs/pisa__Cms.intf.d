lib/pisa/cms.mli: Register_alloc
