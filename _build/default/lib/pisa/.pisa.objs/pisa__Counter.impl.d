lib/pisa/counter.ml: Array
