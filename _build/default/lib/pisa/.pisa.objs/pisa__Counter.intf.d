lib/pisa/counter.mli:
