lib/pisa/match_table.ml: Hashtbl Int List
