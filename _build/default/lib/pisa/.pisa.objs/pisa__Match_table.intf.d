lib/pisa/match_table.mli:
