lib/pisa/meter.ml: Float Format
