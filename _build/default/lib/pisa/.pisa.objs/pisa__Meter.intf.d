lib/pisa/meter.mli: Format
