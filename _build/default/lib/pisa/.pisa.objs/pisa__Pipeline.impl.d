lib/pisa/pipeline.ml: Eventsim
