lib/pisa/pipeline.mli: Eventsim
