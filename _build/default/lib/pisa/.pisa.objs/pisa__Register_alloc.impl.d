lib/pisa/register_alloc.ml: List Register_array
