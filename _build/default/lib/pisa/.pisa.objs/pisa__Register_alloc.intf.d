lib/pisa/register_alloc.mli: Register_array
