lib/pisa/register_array.ml: Array Printf
