lib/pisa/register_array.mli:
