type t = { reg : Register_array.t; bits : int; hashes : int }

let create ~alloc ?(name = "bloom") ~bits ~hashes () =
  if bits <= 0 || hashes <= 0 then invalid_arg "Bloom.create";
  { reg = Register_alloc.array alloc ~name ~entries:bits ~width:1; bits; hashes }

let slot t salt key = Netcore.Hashes.fold_range (Netcore.Hashes.salted ~salt key) t.bits

let add t key =
  for i = 0 to t.hashes - 1 do
    Register_array.write t.reg (slot t i key) 1
  done

let mem t key =
  let rec go i = i >= t.hashes || (Register_array.read t.reg (slot t i key) = 1 && go (i + 1)) in
  go 0

let reset t = Register_array.reset t.reg

let fill_ratio t =
  float_of_int (Register_array.nonzero_entries t.reg) /. float_of_int t.bits

let size_bits t = t.bits
