(** Bloom filter over 1-bit register arrays; used e.g. for
    active-flow membership with no false negatives. *)

type t

val create : alloc:Register_alloc.t -> ?name:string -> bits:int -> hashes:int -> unit -> t
val add : t -> int -> unit
val mem : t -> int -> bool
val reset : t -> unit
val fill_ratio : t -> float
(** Fraction of set bits — a saturation indicator. *)

val size_bits : t -> int
