type t = {
  rows : Register_array.t array;
  width : int;
  mutable updates : int;
}

let create ~alloc ?(name = "cms") ~width ~depth ~counter_bits () =
  if width <= 0 || depth <= 0 then invalid_arg "Cms.create";
  let rows =
    Array.init depth (fun i ->
        Register_alloc.array alloc
          ~name:(Printf.sprintf "%s_row%d" name i)
          ~entries:width ~width:counter_bits)
  in
  { rows; width; updates = 0 }

let slot t row key = Netcore.Hashes.fold_range (Netcore.Hashes.salted ~salt:row key) t.width

let update t ~key ~delta =
  t.updates <- t.updates + 1;
  Array.iteri (fun row reg -> ignore (Register_array.add reg (slot t row key) delta)) t.rows

let query t ~key =
  Array.to_seq t.rows
  |> Seq.mapi (fun row reg -> Register_array.read reg (slot t row key))
  |> Seq.fold_left min max_int

let reset t = Array.iter Register_array.reset t.rows
let width t = t.width
let depth t = Array.length t.rows
let bits t = Array.fold_left (fun acc r -> acc + Register_array.bits r) 0 t.rows
let updates t = t.updates
