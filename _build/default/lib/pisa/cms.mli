(** Count-min sketch (Cormode & Muthukrishnan) built over register
    arrays allocated from a {!Register_alloc.t}, so its state footprint
    is metered like any other data-plane state.

    Guarantees: the estimate never under-counts, and with width [w] and
    depth [d] the over-count exceeds [e*N/w] with probability at most
    [(1/2)^d]-ish (classically e/w and e^-d with w = ceil(e/eps)). *)

type t

val create :
  alloc:Register_alloc.t -> ?name:string -> width:int -> depth:int -> counter_bits:int -> unit -> t
val update : t -> key:int -> delta:int -> unit
val query : t -> key:int -> int
val reset : t -> unit
val width : t -> int
val depth : t -> int
val bits : t -> int
val updates : t -> int
