type t = { name : string; pkts : int array; byts : int array }

let create ~name ~entries =
  if entries <= 0 then invalid_arg "Counter.create";
  { name; pkts = Array.make entries 0; byts = Array.make entries 0 }

let count t ~index ~bytes =
  t.pkts.(index) <- t.pkts.(index) + 1;
  t.byts.(index) <- t.byts.(index) + bytes

let packets t i = t.pkts.(i)
let bytes t i = t.byts.(i)
let total_packets t = Array.fold_left ( + ) 0 t.pkts
let total_bytes t = Array.fold_left ( + ) 0 t.byts

let reset t =
  Array.fill t.pkts 0 (Array.length t.pkts) 0;
  Array.fill t.byts 0 (Array.length t.byts) 0

let entries t = Array.length t.pkts
