(** Packet/byte counter arrays (the P4 [counter] extern). *)

type t

val create : name:string -> entries:int -> t
val count : t -> index:int -> bytes:int -> unit
val packets : t -> int -> int
val bytes : t -> int -> int
val total_packets : t -> int
val total_bytes : t -> int
val reset : t -> unit
val entries : t -> int
