type kind = Exact | Lpm | Ternary

type 'a entries =
  | Exact_entries of (int, 'a) Hashtbl.t
  | Lpm_entries of { key_bits : int; mutable rules : (int * int * 'a) list }
    (* (prefix, len, action), kept sorted by decreasing len *)
  | Ternary_entries of { mutable rules : (int * int * int * int * 'a) list }
    (* (value, mask, priority, insertion_seq, action), sorted best-first *)

type 'a t = {
  name : string;
  entries : 'a entries;
  mutable default : 'a option;
  mutable lookups : int;
  mutable hits : int;
  mutable next_seq : int;
}

let make name entries =
  { name; entries; default = None; lookups = 0; hits = 0; next_seq = 0 }

let exact ~name = make name (Exact_entries (Hashtbl.create 64))

let lpm ~name ~key_bits =
  if key_bits <= 0 || key_bits > 62 then invalid_arg "Match_table.lpm: key_bits in 1..62";
  make name (Lpm_entries { key_bits; rules = [] })

let ternary ~name = make name (Ternary_entries { rules = [] })
let name t = t.name

let kind t =
  match t.entries with
  | Exact_entries _ -> Exact
  | Lpm_entries _ -> Lpm
  | Ternary_entries _ -> Ternary

let size t =
  match t.entries with
  | Exact_entries h -> Hashtbl.length h
  | Lpm_entries l -> List.length l.rules
  | Ternary_entries l -> List.length l.rules

let set_default t a = t.default <- Some a

let add_exact t ~key action =
  match t.entries with
  | Exact_entries h -> Hashtbl.replace h key action
  | Lpm_entries _ | Ternary_entries _ ->
      invalid_arg ("Match_table.add_exact on non-exact table " ^ t.name)

let remove_exact t ~key =
  match t.entries with
  | Exact_entries h -> Hashtbl.remove h key
  | Lpm_entries _ | Ternary_entries _ ->
      invalid_arg ("Match_table.remove_exact on non-exact table " ^ t.name)

let add_lpm t ~prefix ~len action =
  match t.entries with
  | Lpm_entries l ->
      if len < 0 || len > l.key_bits then invalid_arg "Match_table.add_lpm: bad prefix length";
      let rule = (prefix, len, action) in
      (* Keep longest prefixes first so lookup can take the first hit. *)
      l.rules <-
        List.stable_sort (fun (_, l1, _) (_, l2, _) -> Int.compare l2 l1) (rule :: l.rules)
  | Exact_entries _ | Ternary_entries _ ->
      invalid_arg ("Match_table.add_lpm on non-lpm table " ^ t.name)

let add_ternary t ?(priority = 0) ~value ~mask action =
  match t.entries with
  | Ternary_entries l ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let rule = (value, mask, priority, seq, action) in
      let better (_, _, p1, s1, _) (_, _, p2, s2, _) =
        if p1 <> p2 then Int.compare p2 p1 else Int.compare s1 s2
      in
      l.rules <- List.stable_sort better (rule :: l.rules)
  | Exact_entries _ | Lpm_entries _ ->
      invalid_arg ("Match_table.add_ternary on non-ternary table " ^ t.name)

let lookup t key =
  t.lookups <- t.lookups + 1;
  let found =
    match t.entries with
    | Exact_entries h -> Hashtbl.find_opt h key
    | Lpm_entries l ->
        let matches (prefix, len, _) =
          len = 0 || key lsr (l.key_bits - len) = prefix lsr (l.key_bits - len)
        in
        (match List.find_opt matches l.rules with
        | Some (_, _, a) -> Some a
        | None -> None)
    | Ternary_entries l -> (
        match List.find_opt (fun (v, m, _, _, _) -> key land m = v land m) l.rules with
        | Some (_, _, _, _, a) -> Some a
        | None -> None)
  in
  match found with
  | Some _ ->
      t.hits <- t.hits + 1;
      found
  | None -> t.default

let lookups t = t.lookups
let hits t = t.hits

let clear t =
  match t.entries with
  | Exact_entries h -> Hashtbl.reset h
  | Lpm_entries l -> l.rules <- []
  | Ternary_entries l -> l.rules <- []

let iter_exact t f =
  match t.entries with
  | Exact_entries h -> Hashtbl.iter f h
  | Lpm_entries _ | Ternary_entries _ ->
      invalid_arg ("Match_table.iter_exact on non-exact table " ^ t.name)
