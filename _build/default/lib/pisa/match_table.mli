(** Match-action tables.

    A table matches an integer key (packed header fields) against its
    entries and yields an action value ['a]. The three PISA match kinds
    are supported; a table is created with one kind and only accepts
    entries of that kind. Control planes install and remove entries;
    the data plane only calls [lookup]. *)

type 'a t

type kind = Exact | Lpm | Ternary

val exact : name:string -> 'a t
val lpm : name:string -> key_bits:int -> 'a t
(** [key_bits] is the width of lookup keys (32 for IPv4 prefixes). *)

val ternary : name:string -> 'a t
val name : 'a t -> string
val kind : 'a t -> kind
val size : 'a t -> int

val set_default : 'a t -> 'a -> unit
(** Action when no entry matches. *)

val add_exact : 'a t -> key:int -> 'a -> unit
val remove_exact : 'a t -> key:int -> unit
val add_lpm : 'a t -> prefix:int -> len:int -> 'a -> unit
val add_ternary : 'a t -> ?priority:int -> value:int -> mask:int -> 'a -> unit
(** Higher [priority] wins among multiple ternary matches (default 0);
    insertion order breaks ties (earlier wins). *)

val lookup : 'a t -> int -> 'a option
(** [None] only when there is no match and no default. *)

val lookups : 'a t -> int
val hits : 'a t -> int
val clear : 'a t -> unit
(** Remove all entries (keeps the default). *)

val iter_exact : 'a t -> (int -> 'a -> unit) -> unit
(** Iterate exact entries (raises [Invalid_argument] on other kinds). *)
