type color = Green | Yellow | Red

type t = {
  cir : float; (* bytes per second *)
  cbs : float;
  ebs : float;
  mutable tc : float;
  mutable te : float;
  mutable last_ps : int;
}

let create ~cir_bytes_per_sec ~cbs ~ebs =
  if cir_bytes_per_sec <= 0. || cbs <= 0 || ebs < 0 then invalid_arg "Meter.create";
  {
    cir = cir_bytes_per_sec;
    cbs = float_of_int cbs;
    ebs = float_of_int ebs;
    tc = float_of_int cbs;
    te = float_of_int ebs;
    last_ps = 0;
  }

let refill t ~now_ps =
  if now_ps > t.last_ps then begin
    let dt = float_of_int (now_ps - t.last_ps) *. 1e-12 in
    let tokens = t.cir *. dt in
    (* RFC 2697: overflow of the committed bucket spills into the excess
       bucket. *)
    let tc' = t.tc +. tokens in
    if tc' > t.cbs then begin
      t.te <- Float.min t.ebs (t.te +. (tc' -. t.cbs));
      t.tc <- t.cbs
    end
    else t.tc <- tc';
    t.last_ps <- now_ps
  end

let mark t ~now_ps ~bytes =
  refill t ~now_ps;
  let b = float_of_int bytes in
  if t.tc >= b then begin
    t.tc <- t.tc -. b;
    Green
  end
  else if t.te >= b then begin
    t.te <- t.te -. b;
    Yellow
  end
  else Red

let tokens t ~now_ps =
  refill t ~now_ps;
  (t.tc, t.te)

let color_to_string = function Green -> "green" | Yellow -> "yellow" | Red -> "red"
let pp_color ppf c = Format.pp_print_string ppf (color_to_string c)
