(** Fixed-function single-rate three-color marker (srTCM, RFC 2697) —
    the "primitive element" meter that baseline PISA targets expose
    (paper §3, Traffic Management). Token buckets are refilled lazily
    and continuously from timestamps, which is what dedicated hardware
    does; E13 compares this exact meter against a timer-event-driven
    register implementation. *)

type color = Green | Yellow | Red

type t

val create : cir_bytes_per_sec:float -> cbs:int -> ebs:int -> t
(** [cir_bytes_per_sec] committed information rate; [cbs]/[ebs]
    committed/excess burst sizes in bytes. *)

val mark : t -> now_ps:int -> bytes:int -> color
(** Color a packet of [bytes] arriving at [now_ps] (picoseconds), in
    color-blind mode, consuming tokens accordingly. *)

val tokens : t -> now_ps:int -> float * float
(** Current (committed, excess) token levels after lazy refill. *)

val color_to_string : color -> string
val pp_color : Format.formatter -> color -> unit
