(** Cycle-accounted PISA pipeline.

    The pipeline admits at most one carrier (packet, or event-only empty
    packet) per clock cycle and has a fixed traversal depth. It does not
    execute programs itself — the architecture (event merger + switch)
    decides what enters; the pipeline provides the timing/cycle ledger:

    - when the next admission slot is,
    - the traversal latency,
    - how many cycles were idle over any interval, which is precisely
      the memory bandwidth available to drain aggregation registers
      (paper §4, Figure 3).

    The defaults model the NetFPGA SUME P4 pipeline: 200 MHz clock
    (5 ns cycle) and a 16-cycle depth. A 4x10 Gb/s device at minimum
    packet size offers ~59.5 Mpps < 200 MHz, so the pipeline naturally
    runs "faster than line rate" and idle cycles exist, as §4 assumes. *)

type t

val default_clock_period : Eventsim.Sim_time.t
val default_depth : int

val create : sched:Eventsim.Scheduler.t -> ?clock_period:Eventsim.Sim_time.t -> ?depth:int -> unit -> t
val clock_period : t -> Eventsim.Sim_time.t
val depth : t -> int
val latency : t -> Eventsim.Sim_time.t
(** [depth * clock_period]. *)

val current_cycle : t -> int
val clock : t -> unit -> int
(** The cycle clock function, to plug into register arrays. *)

val earliest_admission : t -> Eventsim.Sim_time.t
(** The earliest instant >= now at which a new carrier may be admitted
    (one admission per cycle). *)

val admit : t -> has_packet:bool -> Eventsim.Sim_time.t
(** Record an admission at the current time (the caller must have
    scheduled itself no earlier than [earliest_admission]) and return
    the pipeline exit time. Raises [Invalid_argument] if the admission
    slot is already taken this cycle. *)

type mark
(** A ledger position used to measure idle cycles over an interval. *)

val mark : t -> mark
val idle_cycles_since : t -> mark -> int * mark
(** Idle cycles (cycles with no admission) between the mark and now,
    and a fresh mark. *)

val admissions : t -> int
val packet_carriers : t -> int
val empty_carriers : t -> int
val busy_fraction : t -> float
(** Admissions divided by elapsed cycles (0 before the first cycle). *)
