(** Register allocator: every data-plane program allocates its stateful
    arrays through one of these so the experiment harness can meter the
    program's total state footprint (the paper's §2 claims an at least
    four-fold reduction for microburst detection; E6 measures it from
    these allocations). *)

type t

val create : ?clock:(unit -> int) -> unit -> t
val array : t -> name:string -> entries:int -> width:int -> Register_array.t
val registers : t -> Register_array.t list
(** In allocation order. *)

val total_bits : t -> int
val total_conflicts : t -> int
val report : t -> (string * int * int) list
(** [(name, entries, bits)] per register. *)
