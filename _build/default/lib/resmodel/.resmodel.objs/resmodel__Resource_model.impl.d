lib/resmodel/resource_model.ml: Float Format List
