lib/resmodel/resource_model.mli: Format
