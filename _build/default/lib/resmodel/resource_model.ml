type cost = { luts : int; ffs : int; brams : int }
type component = { name : string; cost : cost }
type device = { name : string; capacity : cost }

let virtex7_690t =
  { name = "xc7vx690t"; capacity = { luts = 433_200; ffs = 866_400; brams = 1_470 } }

let zero = { luts = 0; ffs = 0; brams = 0 }
let add a b = { luts = a.luts + b.luts; ffs = a.ffs + b.ffs; brams = a.brams + b.brams }
let sum components = List.fold_left (fun acc c -> add acc c.cost) zero components

(* Calibration notes: the P4->NetFPGA reference switch reports roughly
   half the 690T consumed; per-block splits below are plausible
   fractions of that total (4 MAC/PHY wrappers, DMA, AXI interconnect,
   SDNet-generated parser + match-action stages + deparser, output
   queues). *)
let baseline_components =
  [
    { name = "10G MAC/PHY x4"; cost = { luts = 18_000; ffs = 24_000; brams = 16 } };
    { name = "DMA engine"; cost = { luts = 12_000; ffs = 18_000; brams = 30 } };
    { name = "AXI interconnect"; cost = { luts = 8_000; ffs = 12_000; brams = 8 } };
    { name = "input arbiter"; cost = { luts = 2_500; ffs = 3_500; brams = 4 } };
    { name = "SDNet parser"; cost = { luts = 15_000; ffs = 20_000; brams = 10 } };
    { name = "SDNet match-action x8"; cost = { luts = 80_000; ffs = 112_000; brams = 160 } };
    { name = "SDNet deparser"; cost = { luts = 8_000; ffs = 10_000; brams = 6 } };
    { name = "output queues"; cost = { luts = 6_000; ffs = 9_000; brams = 60 } };
  ]

(* Event-support blocks: calibrated so the deltas reproduce Table 3
   (+0.5% LUT, +0.4% FF, +2.0% BRAM of the device). *)
let event_components =
  [
    { name = "event merger"; cost = { luts = 900; ffs = 1_400; brams = 6 } };
    { name = "timer unit"; cost = { luts = 150; ffs = 300; brams = 0 } };
    { name = "packet generator"; cost = { luts = 500; ffs = 800; brams = 8 } };
    { name = "link status monitor"; cost = { luts = 100; ffs = 166; brams = 0 } };
    { name = "enq/deq/drop plumbing"; cost = { luts = 516; ffs = 800; brams = 7 } };
    { name = "event queues"; cost = { luts = 0; ffs = 0; brams = 8 } };
  ]

let utilisation device cost =
  ( float_of_int cost.luts /. float_of_int device.capacity.luts,
    float_of_int cost.ffs /. float_of_int device.capacity.ffs,
    float_of_int cost.brams /. float_of_int device.capacity.brams )

let pct_increase device ~extra =
  let l, f, b = utilisation device extra in
  (100. *. l, 100. *. f, 100. *. b)

let round1 x = Float.round (x *. 10.) /. 10.

let table3 () =
  let l, f, b = pct_increase virtex7_690t ~extra:(sum event_components) in
  [ ("Lookup Tables", round1 l); ("Flip Flops", round1 f); ("Block RAM", round1 b) ]

let brams_for_bits bits =
  if bits <= 0 then 0 else ((bits - 1) / 36_864) + 1

let pp_cost ppf c = Format.fprintf ppf "LUT=%d FF=%d BRAM=%d" c.luts c.ffs c.brams
