(** FPGA resource cost model (reproduces Table 3).

    We have no synthesis toolchain, so the model assigns each
    architectural block a documented LUT/FF/BRAM cost, calibrated so
    that (a) the baseline P4 switch lands in the utilisation range
    reported for the P4->NetFPGA reference switch on a Virtex-7 690T
    and (b) the *delta* contributed by the event blocks reproduces the
    paper's reported increases (LUT +0.5%, FF +0.4%, BRAM +2.0% of the
    device). The shape claim being tested is that event support is a
    marginal add-on — a few percent of the device — not the absolute
    LUT counts. *)

type cost = { luts : int; ffs : int; brams : int }
(** [brams] are 36 Kb blocks. *)

type component = { name : string; cost : cost }

type device = { name : string; capacity : cost }

val virtex7_690t : device
(** The NetFPGA SUME FPGA (XC7VX690T): 433,200 LUTs / 866,400 FFs /
    1,470 BRAM36. *)

val zero : cost
val add : cost -> cost -> cost
val sum : component list -> cost

val baseline_components : component list
(** MACs, DMA, parser, match-action stages, deparser, output queues —
    the baseline SUME P4 switch. *)

val event_components : component list
(** Event merger, timer unit, packet generator, link monitor,
    enqueue/dequeue/drop plumbing, event queues — what the SUME Event
    Switch adds. *)

val utilisation : device -> cost -> float * float * float
(** (LUT, FF, BRAM) fractions of the device. *)

val pct_increase : device -> extra:cost -> float * float * float
(** The paper's Table 3 metric: the extra cost as a percentage of the
    total device capacity. *)

val table3 : unit -> (string * float) list
(** [("Lookup Tables", 0.5); ("Flip Flops", 0.4); ("Block RAM", 2.0)]
    computed from the model (values rounded to one decimal). *)

val brams_for_bits : int -> int
(** BRAM36 blocks needed for a register footprint of that many bits. *)

val pp_cost : Format.formatter -> cost -> unit
