lib/stats/ewma.ml:
