lib/stats/ewma.mli:
