lib/stats/rng.mli:
