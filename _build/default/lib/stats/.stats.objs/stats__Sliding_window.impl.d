lib/stats/sliding_window.ml: Array
