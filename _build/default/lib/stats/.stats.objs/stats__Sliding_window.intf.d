lib/stats/sliding_window.mli:
