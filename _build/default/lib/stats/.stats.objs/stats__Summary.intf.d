lib/stats/summary.mli:
