let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log1p (-.Rng.float rng) /. rate

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.pareto: parameters must be positive";
  scale /. ((1. -. Rng.float rng) ** (1. /. shape))

let normal rng ~mean ~std =
  let u1 = 1. -. Rng.float rng and u2 = Rng.float rng in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p must be in (0,1]";
  if p = 1. then 1
  else
    let u = 1. -. Rng.float rng in
    1 + int_of_float (log u /. log (1. -. p))

type zipf = { cdf : float array }

let zipf ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (i + 1) ** alpha));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let zipf_draw rng z =
  let u = Rng.float rng in
  (* Binary search for the first index whose CDF exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let zipf_pmf z rank =
  if rank < 1 || rank > Array.length z.cdf then invalid_arg "Dist.zipf_pmf: rank out of range";
  if rank = 1 then z.cdf.(0) else z.cdf.(rank - 1) -. z.cdf.(rank - 2)
