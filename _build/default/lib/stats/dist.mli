(** Random variates for workload synthesis. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] draws from Exp(rate); mean is [1. /. rate].
    Used for Poisson inter-arrival gaps. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto with minimum value [scale] and tail index [shape]. Heavy-tailed
    flow sizes use [shape] around 1.2-1.6. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian via Box-Muller. *)

val geometric : Rng.t -> p:float -> int
(** Number of Bernoulli(p) trials up to and including the first success
    (support 1, 2, ...). *)

type zipf
(** Precomputed Zipf sampler over [1..n]. *)

val zipf : n:int -> alpha:float -> zipf
val zipf_draw : Rng.t -> zipf -> int
(** [zipf_draw rng z] draws a rank in [\[1, n\]]; rank 1 is the most
    popular. *)

val zipf_pmf : zipf -> int -> float
(** Probability mass of a rank, for analytic comparisons in tests. *)
