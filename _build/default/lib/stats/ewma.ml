type t = { alpha : float; mutable value : float; mutable primed : bool }

let create ~alpha =
  if alpha <= 0. || alpha > 1. then invalid_arg "Ewma.create: alpha must be in (0,1]";
  { alpha; value = 0.; primed = false }

let create_init ~alpha ~init =
  let t = create ~alpha in
  t.value <- init;
  t.primed <- true;
  t

let update t x =
  if t.primed then t.value <- t.value +. (t.alpha *. (x -. t.value))
  else begin
    t.value <- x;
    t.primed <- true
  end;
  t.value

let value t = t.value

let decay t = t.value <- t.value *. (1. -. t.alpha)

let reset t =
  t.value <- 0.;
  t.primed <- false
