(** Exponentially weighted moving average, as used for queue-occupancy
    smoothing in RED-style AQM and for link-utilization estimates. *)

type t

val create : alpha:float -> t
(** [alpha] in (0, 1]; larger alpha weights recent samples more. *)

val create_init : alpha:float -> init:float -> t
val update : t -> float -> float
(** Feed a sample, return the new average. *)

val value : t -> float
(** Current average (0 before any sample unless initialised). *)

val decay : t -> unit
(** Multiply the current value by [1 - alpha]; used by timer-driven decay
    of rate estimates when no traffic is observed. *)

val reset : t -> unit
