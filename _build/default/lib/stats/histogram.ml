type layout =
  | Linear of { lo : float; width : float }
  | Log2

type t = {
  layout : layout;
  counts : int array;
  bounds : (float * float) array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
}

let make layout bounds =
  {
    layout;
    counts = Array.make (Array.length bounds) 0;
    bounds;
    underflow = 0;
    overflow = 0;
    total = 0;
    sum = 0.;
    max_seen = neg_infinity;
  }

let linear ~lo ~hi ~buckets =
  if buckets <= 0 || hi <= lo then invalid_arg "Histogram.linear";
  let width = (hi -. lo) /. float_of_int buckets in
  let bounds =
    Array.init buckets (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width)))
  in
  make (Linear { lo; width }) bounds

let log2 ~max_exponent =
  if max_exponent <= 0 then invalid_arg "Histogram.log2";
  let bounds =
    Array.init (max_exponent + 1) (fun i ->
        if i = 0 then (0., 1.) else (2. ** float_of_int (i - 1), 2. ** float_of_int i))
  in
  make Log2 bounds

let bucket_index t x =
  match t.layout with
  | Linear { lo; width } ->
      if x < lo then -1
      else
        let i = int_of_float ((x -. lo) /. width) in
        if i >= Array.length t.counts then Array.length t.counts else i
  | Log2 ->
      if x < 0. then -1
      else if x < 1. then 0
      else
        let i = 1 + int_of_float (Float.log2 x) in
        if i >= Array.length t.counts then Array.length t.counts else i

let add_n t x n =
  t.total <- t.total + n;
  t.sum <- t.sum +. (x *. float_of_int n);
  if x > t.max_seen then t.max_seen <- x;
  let i = bucket_index t x in
  if i < 0 then t.underflow <- t.underflow + n
  else if i >= Array.length t.counts then t.overflow <- t.overflow + n
  else t.counts.(i) <- t.counts.(i) + n

let add t x = add_n t x 1
let count t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total
let max_seen t = t.max_seen

let percentile t q =
  if t.total = 0 then nan
  else begin
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.underflow) in
    let result = ref nan in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc +. float_of_int t.counts.(i);
         if !acc >= target then begin
           result := snd t.bounds.(i);
           raise Exit
         end
       done;
       result := t.max_seen
     with Exit -> ());
    (* Never report beyond the observed maximum. *)
    Float.min !result t.max_seen
  end

let buckets t =
  let out = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then
      let lo, hi = t.bounds.(i) in
      out := (lo, hi, t.counts.(i)) :: !out
  done;
  !out

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.total <- 0;
  t.sum <- 0.;
  t.max_seen <- neg_infinity

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g" t.total (mean t)
    (percentile t 0.5) (percentile t 0.99) t.max_seen
