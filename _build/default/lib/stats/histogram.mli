(** Fixed-bucket histograms with approximate percentiles.

    Two bucket layouts are provided: linear buckets over a closed range,
    and power-of-two (log2) buckets for long-tailed quantities such as
    staleness in cycles or latency in nanoseconds. *)

type t

val linear : lo:float -> hi:float -> buckets:int -> t
(** [linear ~lo ~hi ~buckets] divides [\[lo, hi)] into equal buckets.
    Samples outside the range are counted in underflow/overflow bins. *)

val log2 : max_exponent:int -> t
(** Buckets [\[0,1), \[1,2), \[2,4), \[4,8), ... up to 2^max_exponent.
    Negative samples land in the underflow bin. *)

val add : t -> float -> unit
val add_n : t -> float -> int -> unit
val count : t -> int
val underflow : t -> int
val overflow : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] returns an estimate (bucket upper bound
    interpolation) of the given quantile in [\[0, 1\]]. Returns [nan]
    when empty. *)

val max_seen : t -> float
(** Exact maximum of all added samples ([neg_infinity] when empty). *)

val buckets : t -> (float * float * int) list
(** [(lo, hi, count)] for each non-empty bucket, in order. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
