type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }
let copy t = { state = t.state }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int r *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
