(** Deterministic pseudo-random number generator.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] seeded by the experiment, so that runs are reproducible.
    The generator is splitmix64 (Steele et al.), which has a full 2^64
    period and passes BigCrush; it is more than adequate for workload
    synthesis. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Two generators created with
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each traffic source its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copies then evolve
    independently but identically). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly distributed non-negative bits (fits in an OCaml [int]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
