type t = {
  data : float array;
  slot_width : float;
  mutable head : int; (* index of the newest slot *)
  mutable sum : float;
}

let create ~slots ~slot_width =
  if slots <= 0 || slot_width <= 0. then invalid_arg "Sliding_window.create";
  { data = Array.make slots 0.; slot_width; head = 0; sum = 0. }

let add t x =
  t.data.(t.head) <- t.data.(t.head) +. x;
  t.sum <- t.sum +. x

let rotate t =
  let n = Array.length t.data in
  let next = (t.head + 1) mod n in
  t.sum <- t.sum -. t.data.(next);
  t.data.(next) <- 0.;
  t.head <- next

let sum t = t.sum
let window t = float_of_int (Array.length t.data) *. t.slot_width
let rate t = t.sum /. window t

let completed_rate t =
  let n = Array.length t.data in
  if n <= 1 then rate t
  else (t.sum -. t.data.(t.head)) /. (float_of_int (n - 1) *. t.slot_width)

let slots t =
  let n = Array.length t.data in
  Array.init n (fun i -> t.data.((t.head - i + (2 * n)) mod n))

let clear t =
  Array.fill t.data 0 (Array.length t.data) 0.;
  t.sum <- 0.
