(** Time-windowed accumulator backed by a circular array of slots — the
    "shift register" the paper's §5 time-windowed measurement project
    uses. Each slot covers [slot_width] time units; [rotate]-ing on a
    timer advances the window. *)

type t

val create : slots:int -> slot_width:float -> t
(** Window length is [slots * slot_width] time units. *)

val add : t -> float -> unit
(** Accumulate into the current (newest) slot. *)

val rotate : t -> unit
(** Advance the window by one slot, discarding the oldest. Driven by a
    periodic timer event. *)

val sum : t -> float
(** Sum over all live slots. *)

val rate : t -> float
(** [sum / window-length]: the windowed average rate. *)

val completed_rate : t -> float
(** Average rate over the completed slots only, excluding the
    in-progress newest slot — the unbiased estimator to read right
    after a rotation. Falls back to {!rate} for a single-slot
    window. *)

val window : t -> float
(** Window length in time units. *)

val slots : t -> float array
(** Newest-first snapshot of the slot contents. *)

val clear : t -> unit
