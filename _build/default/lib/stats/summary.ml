let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let std xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs in
    sqrt (acc /. float_of_int n)

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float pos in
  let frac = pos -. float_of_int i in
  if i >= n - 1 then sorted.(n - 1) else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)

let normalized_rmse ~predicted ~actual =
  let n = Array.length actual in
  if n = 0 || n <> Array.length predicted then invalid_arg "Summary.normalized_rmse";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = predicted.(i) -. actual.(i) in
    acc := !acc +. (d *. d)
  done;
  let rmse = sqrt (!acc /. float_of_int n) in
  let m = mean actual in
  if m = 0. then rmse else rmse /. m
