(** Batch statistics over complete sample sets. *)

val mean : float array -> float
val std : float array -> float
val percentile : float array -> float -> float
(** [percentile xs 0.5] sorts a copy and interpolates linearly. Raises
    [Invalid_argument] on an empty array. *)

val jain_fairness : float array -> float
(** Jain's fairness index: [(sum x)^2 / (n * sum x^2)]; 1.0 means all
    equal. Returns 1.0 for an empty or all-zero input. *)

val normalized_rmse : predicted:float array -> actual:float array -> float
(** Root-mean-square error divided by the mean of [actual]; used to score
    estimation accuracy (rate estimates, utilization estimates). *)
