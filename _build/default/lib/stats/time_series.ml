type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { times = Array.make capacity 0.; values = Array.make capacity 0.; len = 0 }

let grow t =
  let cap = Array.length t.times * 2 in
  let times = Array.make cap 0. and values = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let add t ~time ~value =
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len

let nth t i =
  if i < 0 || i >= t.len then invalid_arg "Time_series.nth";
  (t.times.(i), t.values.(i))

let to_arrays t = (Array.sub t.times 0 t.len, Array.sub t.values 0 t.len)
let values t = Array.sub t.values 0 t.len
let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.times.(i) t.values.(i)
  done;
  !acc

let max_value t = fold t ~init:neg_infinity ~f:(fun acc _ v -> Float.max acc v)

let mean_value t =
  if t.len = 0 then 0. else fold t ~init:0. ~f:(fun acc _ v -> acc +. v) /. float_of_int t.len
