(** Append-only (time, value) series with simple reductions; used by
    monitoring applications that periodically sample buffer occupancy
    and by experiment harnesses that print figure series. *)

type t

val create : ?capacity:int -> unit -> t
val add : t -> time:float -> value:float -> unit
val length : t -> int
val nth : t -> int -> float * float
val to_arrays : t -> float array * float array
val values : t -> float array
val last : t -> (float * float) option

val fold : t -> init:'a -> f:('a -> float -> float -> 'a) -> 'a
(** [fold t ~init ~f] folds [f acc time value] in insertion order. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val mean_value : t -> float
