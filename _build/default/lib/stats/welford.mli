(** Streaming mean / variance / extrema (Welford's algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val std : t -> float
val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float
val merge : t -> t -> t
(** Combine two summaries as if all samples were added to one. *)

val pp : Format.formatter -> t -> unit
