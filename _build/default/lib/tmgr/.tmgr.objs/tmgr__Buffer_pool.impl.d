lib/tmgr/buffer_pool.ml:
