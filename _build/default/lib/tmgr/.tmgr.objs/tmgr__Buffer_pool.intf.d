lib/tmgr/buffer_pool.mli:
