lib/tmgr/fifo_queue.ml: Netcore Queue
