lib/tmgr/fifo_queue.mli: Netcore
