lib/tmgr/link.ml: Eventsim Netcore
