lib/tmgr/link.mli: Eventsim Netcore
