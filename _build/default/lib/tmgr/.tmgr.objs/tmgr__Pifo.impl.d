lib/tmgr/pifo.ml: Array
