lib/tmgr/pifo.mli:
