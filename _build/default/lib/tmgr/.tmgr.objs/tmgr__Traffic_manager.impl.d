lib/tmgr/traffic_manager.ml: Array Buffer_pool Devents Eventsim Fifo_queue Netcore Obs Pifo Printf
