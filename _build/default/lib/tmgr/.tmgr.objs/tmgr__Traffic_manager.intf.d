lib/tmgr/traffic_manager.mli: Devents Eventsim Netcore Obs
