type t = {
  capacity : int;
  mutable used : int;
  mutable high_watermark : int;
  mutable failed : int;
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Buffer_pool.create";
  { capacity = capacity_bytes; used = 0; high_watermark = 0; failed = 0 }

let try_alloc t n =
  if t.used + n > t.capacity then begin
    t.failed <- t.failed + 1;
    false
  end
  else begin
    t.used <- t.used + n;
    if t.used > t.high_watermark then t.high_watermark <- t.used;
    true
  end

let free t n =
  if n > t.used then invalid_arg "Buffer_pool.free: more than allocated";
  t.used <- t.used - n

let capacity t = t.capacity
let occupancy t = t.used
let high_watermark t = t.high_watermark
let failed_allocs t = t.failed
