(** Shared packet-buffer byte pool. All queues of a device draw from
    one pool, so one congested port can exhaust buffering for the
    others — the behaviour microburst detection cares about. *)

type t

val create : capacity_bytes:int -> t
val try_alloc : t -> int -> bool
(** Reserve bytes; [false] (and no reservation) when the pool would
    overflow. *)

val free : t -> int -> unit
val capacity : t -> int
val occupancy : t -> int
val high_watermark : t -> int
val failed_allocs : t -> int
