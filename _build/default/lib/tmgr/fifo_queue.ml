type t = {
  q : Netcore.Packet.t Queue.t;
  limit_bytes : int option;
  mutable bytes : int;
  mutable high_watermark : int;
}

let create ?limit_bytes () = { q = Queue.create (); limit_bytes; bytes = 0; high_watermark = 0 }

let can_accept t n =
  match t.limit_bytes with None -> true | Some limit -> t.bytes + n <= limit

let push t pkt =
  Queue.push pkt t.q;
  t.bytes <- t.bytes + Netcore.Packet.len pkt;
  if t.bytes > t.high_watermark then t.high_watermark <- t.bytes

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some pkt ->
      t.bytes <- t.bytes - Netcore.Packet.len pkt;
      Some pkt

let peek t = Queue.peek_opt t.q
let occupancy_pkts t = Queue.length t.q
let occupancy_bytes t = t.bytes
let high_watermark_bytes t = t.high_watermark
let is_empty t = Queue.is_empty t.q
