(** Packet FIFO with byte/packet occupancy accounting. *)

type t

val create : ?limit_bytes:int -> unit -> t
val can_accept : t -> int -> bool
(** Does a packet of this many bytes fit under the per-queue limit? *)

val push : t -> Netcore.Packet.t -> unit
val pop : t -> Netcore.Packet.t option
val peek : t -> Netcore.Packet.t option
val occupancy_pkts : t -> int
val occupancy_bytes : t -> int
val high_watermark_bytes : t -> int
val is_empty : t -> bool
