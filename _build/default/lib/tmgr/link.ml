module Scheduler = Eventsim.Scheduler

type endpoint = {
  deliver : Netcore.Packet.t -> unit;
  notify_status : up:bool -> unit;
}

type t = {
  sched : Scheduler.t;
  delay : int;
  detection_delay : int;
  a : endpoint;
  b : endpoint;
  mutable up : bool;
  mutable epoch : int; (* bumped on every status change to void in-flight packets *)
  mutable delivered : int;
  mutable lost : int;
}

let create ~sched ?(delay = Eventsim.Sim_time.us 1) ?(detection_delay = Eventsim.Sim_time.us 10)
    ~a ~b () =
  { sched; delay; detection_delay; a; b; up = true; epoch = 0; delivered = 0; lost = 0 }

let send t ~from_a pkt =
  if not t.up then t.lost <- t.lost + 1
  else begin
    let epoch = t.epoch in
    let dst = if from_a then t.b else t.a in
    ignore
      (Scheduler.schedule_after ~cls:"link" t.sched ~delay:t.delay (fun () ->
           if t.up && t.epoch = epoch then begin
             t.delivered <- t.delivered + 1;
             dst.deliver pkt
           end
           else t.lost <- t.lost + 1))
  end

let change_status t up =
  if t.up <> up then begin
    t.up <- up;
    t.epoch <- t.epoch + 1;
    ignore
      (Scheduler.schedule_after ~cls:"link" t.sched ~delay:t.detection_delay (fun () ->
           t.a.notify_status ~up;
           t.b.notify_status ~up))
  end

let fail t = change_status t false
let restore t = change_status t true
let is_up t = t.up
let delivered t = t.delivered
let lost t = t.lost
