(** Point-to-point link between two device ports.

    Carries packets with a propagation delay; supports failure
    injection. When the link fails (or is restored), each endpoint's
    PHY notices after [detection_delay] and calls its status callback —
    which an event-driven switch turns into a Link Status Change event,
    while a baseline switch must wait for control-plane polling.
    Packets in flight when the failure occurs, and packets sent while
    down, are lost. *)

type endpoint = {
  deliver : Netcore.Packet.t -> unit;
  notify_status : up:bool -> unit;
}

type t

val create :
  sched:Eventsim.Scheduler.t ->
  ?delay:Eventsim.Sim_time.t ->
  ?detection_delay:Eventsim.Sim_time.t ->
  a:endpoint ->
  b:endpoint ->
  unit ->
  t
(** Defaults: 1 us propagation, 10 us failure detection. *)

val send : t -> from_a:bool -> Netcore.Packet.t -> unit
val fail : t -> unit
val restore : t -> unit
val is_up : t -> bool
val delivered : t -> int
val lost : t -> int
