(** Push-In-First-Out queue (Sivaraman et al., SIGCOMM'16): elements
    are pushed with a rank and always popped smallest-rank-first; among
    equal ranks, FIFO. The programmable scheduler building block the
    paper combines with event-driven programming (§3, Traffic
    Management). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] bounds the number of queued elements (default
    unbounded). *)

val push : 'a t -> rank:int -> 'a -> bool
(** [false] when at capacity and the new element's rank is not better
    than the current worst (in which case it is rejected); if it is
    better, the worst element is evicted — PIFO's bounded behaviour. *)

val push_evict : 'a t -> rank:int -> 'a -> [ `Accepted | `Rejected | `Evicted of 'a ]
(** Like {!push} but returns the evicted element so the caller can
    release its resources. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
val evictions : 'a t -> int
