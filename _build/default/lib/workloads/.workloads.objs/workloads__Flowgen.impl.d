lib/workloads/flowgen.ml: Eventsim Hashtbl List Netcore Option Stats Traffic
