lib/workloads/flowgen.mli: Eventsim Hashtbl Netcore Stats Traffic
