lib/workloads/topology.ml: Array Evcore Tmgr
