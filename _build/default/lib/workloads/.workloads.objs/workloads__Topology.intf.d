lib/workloads/topology.mli: Evcore Eventsim Tmgr
