lib/workloads/trace.ml: Eventsim List Netcore
