lib/workloads/trace.mli: Eventsim Netcore
