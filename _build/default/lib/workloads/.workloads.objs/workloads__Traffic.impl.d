lib/workloads/traffic.ml: Eventsim Netcore Stats
