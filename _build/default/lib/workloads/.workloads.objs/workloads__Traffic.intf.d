lib/workloads/traffic.mli: Eventsim Netcore Stats
