(** Synthetic flow populations for measurement experiments: Zipf
    popularity over keys, Pareto sizes, Poisson arrivals — the standard
    shape for heavy-hitter / sketch workloads. *)

type flow_desc = {
  flow : Netcore.Flow.t;
  packets : int;  (** flow length in packets *)
  pkt_bytes : int;
  start : Eventsim.Sim_time.t;
  rank : int;  (** popularity rank of the flow's key (1 = hottest) *)
}

type spec = {
  num_flows : int;
  key_space : int;  (** distinct (src,dst) pairs *)
  zipf_alpha : float;
  mean_packets : float;  (** mean flow length (Pareto, shape 1.4) *)
  pkt_bytes : int;
  arrival_rate_per_sec : float;  (** Poisson flow arrivals *)
}

val default_spec : spec
val generate : rng:Stats.Rng.t -> spec -> flow_desc list
(** Flows ordered by start time. *)

val true_packet_counts : flow_desc list -> (int, int) Hashtbl.t
(** Key (packed flow hash) -> total packets; ground truth for sketch
    accuracy experiments. *)

val replay :
  sched:Eventsim.Scheduler.t ->
  flows:flow_desc list ->
  rate_pps_per_flow:float ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  Traffic.t list
(** Start a CBR-ish sub-source per flow emitting its packets. *)
