module Network = Evcore.Network
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host

type role = Leaf of int | Spine of int | Standalone of int

type single = {
  network : Network.t;
  switch : Event_switch.t;
  hosts : Host.t array;
  host_links : Tmgr.Link.t array;
}

let with_ports config n =
  if config.Event_switch.num_ports >= n then config
  else { config with Event_switch.num_ports = n }

let single ~sched ~num_hosts ~config ~program ?host_delay () =
  if num_hosts <= 0 then invalid_arg "Topology.single: num_hosts";
  let network = Network.create ~sched in
  let config = with_ports config num_hosts in
  let switch = Event_switch.create ~sched ~id:0 ~config ~program () in
  let hosts = Array.init num_hosts (fun id -> Host.create ~sched ~id ()) in
  let host_links =
    Array.mapi
      (fun i host ->
        Network.connect_host network ~host ~switch:(switch, i) ?delay:host_delay ())
      hosts
  in
  { network; switch; hosts; host_links }

type chain = {
  network : Network.t;
  switches : Event_switch.t array;
  hosts : Host.t array;
  inter_links : Tmgr.Link.t array;
}

let chain ~sched ~num_switches ~config ~program ?link_delay ?detection_delay () =
  if num_switches <= 0 then invalid_arg "Topology.chain: num_switches";
  let network = Network.create ~sched in
  let switches =
    Array.init num_switches (fun i ->
        let role = Standalone i in
        let cfg = with_ports (config role) 3 in
        Event_switch.create ~sched ~id:i ~config:cfg ~program:(program role) ())
  in
  let hosts = Array.init num_switches (fun id -> Host.create ~sched ~id ()) in
  Array.iteri
    (fun i host -> ignore (Network.connect_host network ~host ~switch:(switches.(i), 0) ()))
    hosts;
  let inter_links =
    Array.init (max 0 (num_switches - 1)) (fun i ->
        Network.connect_switches network ~a:(switches.(i), 1) ~b:(switches.(i + 1), 2)
          ?delay:link_delay ?detection_delay ())
  in
  { network; switches; hosts; inter_links }

type leaf_spine = {
  network : Network.t;
  leaves : Event_switch.t array;
  spines : Event_switch.t array;
  hosts : Host.t array array;
  uplinks : Tmgr.Link.t array array;
}

let uplink_port ~hosts_per_leaf ~spine = hosts_per_leaf + spine

let leaf_spine ~sched ~num_leaves ~num_spines ~hosts_per_leaf ~config ~program ?host_delay
    ?fabric_delay ?detection_delay () =
  if num_leaves <= 0 || num_spines <= 0 || hosts_per_leaf <= 0 then
    invalid_arg "Topology.leaf_spine: sizes must be positive";
  let network = Network.create ~sched in
  let leaves =
    Array.init num_leaves (fun l ->
        let cfg = with_ports (config (Leaf l)) (hosts_per_leaf + num_spines) in
        Event_switch.create ~sched ~id:l ~config:cfg ~program:(program (Leaf l)) ())
  in
  let spines =
    Array.init num_spines (fun s ->
        let cfg = with_ports (config (Spine s)) num_leaves in
        Event_switch.create ~sched ~id:(1000 + s) ~config:cfg ~program:(program (Spine s)) ())
  in
  let hosts =
    Array.init num_leaves (fun l ->
        Array.init hosts_per_leaf (fun h -> Host.create ~sched ~id:((l * hosts_per_leaf) + h) ()))
  in
  Array.iteri
    (fun l row ->
      Array.iteri
        (fun h host ->
          ignore (Network.connect_host network ~host ~switch:(leaves.(l), h) ?delay:host_delay ()))
        row)
    hosts;
  let uplinks =
    Array.init num_leaves (fun l ->
        Array.init num_spines (fun s ->
            Network.connect_switches network
              ~a:(leaves.(l), uplink_port ~hosts_per_leaf ~spine:s)
              ~b:(spines.(s), l) ?delay:fabric_delay ?detection_delay ()))
  in
  { network; leaves; spines; hosts; uplinks }
