(** Topology builders.

    Port conventions:
    - [single]: host [i] on port [i].
    - [chain]: host [i] on port 0 of switch [i]; switch [i] port 1
      connects to switch [i+1] port 2.
    - [leaf_spine]: on a leaf, ports [0 .. hosts_per_leaf-1] face
      hosts and port [hosts_per_leaf + s] is the uplink to spine [s];
      on a spine, port [l] faces leaf [l]. *)

type role = Leaf of int | Spine of int | Standalone of int

type single = {
  network : Evcore.Network.t;
  switch : Evcore.Event_switch.t;
  hosts : Evcore.Host.t array;
  host_links : Tmgr.Link.t array;
}

val single :
  sched:Eventsim.Scheduler.t ->
  num_hosts:int ->
  config:Evcore.Event_switch.config ->
  program:Evcore.Program.spec ->
  ?host_delay:Eventsim.Sim_time.t ->
  unit ->
  single
(** One switch with [num_hosts] hosts; the config's [num_ports] is
    raised to at least [num_hosts]. *)

type chain = {
  network : Evcore.Network.t;
  switches : Evcore.Event_switch.t array;
  hosts : Evcore.Host.t array;
  inter_links : Tmgr.Link.t array;  (** [i] connects switch i and i+1 *)
}

val chain :
  sched:Eventsim.Scheduler.t ->
  num_switches:int ->
  config:(role -> Evcore.Event_switch.config) ->
  program:(role -> Evcore.Program.spec) ->
  ?link_delay:Eventsim.Sim_time.t ->
  ?detection_delay:Eventsim.Sim_time.t ->
  unit ->
  chain

type leaf_spine = {
  network : Evcore.Network.t;
  leaves : Evcore.Event_switch.t array;
  spines : Evcore.Event_switch.t array;
  hosts : Evcore.Host.t array array;  (** hosts.(leaf).(i) *)
  uplinks : Tmgr.Link.t array array;  (** uplinks.(leaf).(spine) *)
}

val leaf_spine :
  sched:Eventsim.Scheduler.t ->
  num_leaves:int ->
  num_spines:int ->
  hosts_per_leaf:int ->
  config:(role -> Evcore.Event_switch.config) ->
  program:(role -> Evcore.Program.spec) ->
  ?host_delay:Eventsim.Sim_time.t ->
  ?fabric_delay:Eventsim.Sim_time.t ->
  ?detection_delay:Eventsim.Sim_time.t ->
  unit ->
  leaf_spine

val uplink_port : hosts_per_leaf:int -> spine:int -> int
(** The leaf port facing [spine]. *)
