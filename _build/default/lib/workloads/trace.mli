(** Synthetic trace record/replay.

    A trace is an ordered list of timed packet descriptors. Recording
    captures a workload once (e.g. from generators wired through
    {!record}); replaying injects the identical arrival sequence into
    any switch — so event-driven and baseline variants of an
    experiment can be driven by byte-identical input, and regression
    runs are immune to generator changes. Descriptors keep the five
    tuple and size rather than the packet object, so replay
    constructs fresh packets (fresh uids, clean metadata). *)

type entry = {
  at : Eventsim.Sim_time.t;
  port : int;
  flow : Netcore.Flow.t;
  pkt_bytes : int;
}

type t

val create : unit -> t
val length : t -> int
val entries : t -> entry list
(** In arrival order. *)

val record : t -> sched:Eventsim.Scheduler.t -> port:int -> Netcore.Packet.t -> unit
(** Note an arrival now (use as/inside a [send] callback). Packets
    without an IP header are skipped. *)

val add : t -> entry -> unit
(** Append an explicit entry (must not go back in time). *)

val duration : t -> Eventsim.Sim_time.t

val replay :
  t ->
  sched:Eventsim.Scheduler.t ->
  ?time_offset:Eventsim.Sim_time.t ->
  send:(port:int -> Netcore.Packet.t -> unit) ->
  unit ->
  int
(** Schedule every entry; returns the number scheduled. *)

val total_bytes : t -> int
