test/test_apps.ml: Alcotest Apps Array Devents Evcore Eventsim Float Hashtbl List Netcore Option Printf QCheck Stats Tmgr Workloads
