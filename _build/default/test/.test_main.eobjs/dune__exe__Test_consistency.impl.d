test/test_consistency.ml: Alcotest Devents Eventsim List Pisa QCheck QCheck_alcotest Stats String
