test/test_determinism.ml: Alcotest Apps Evcore Eventsim List Netcore Obs Printf Stats
