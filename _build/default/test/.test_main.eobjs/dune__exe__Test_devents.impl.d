test/test_devents.ml: Alcotest Array Devents Eventsim Fun List Netcore Pisa Printf QCheck QCheck_alcotest Stats
