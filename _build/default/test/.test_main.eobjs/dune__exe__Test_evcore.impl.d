test/test_evcore.ml: Alcotest Array Devents Evcore Eventsim List Netcore Option Pisa QCheck QCheck_alcotest Stats Tmgr
