test/test_eventsim.ml: Alcotest Eventsim List Printf QCheck QCheck_alcotest
