test/test_eventsim.ml: Alcotest Eventsim List Option Printf QCheck QCheck_alcotest Stats
