test/test_netcore.ml: Alcotest Array Bytes Netcore QCheck QCheck_alcotest
