test/test_obs.ml: Alcotest Filename List Obs Stats String Sys
