test/test_p4dsl.ml: Alcotest Array Devents Evcore Eventsim Hashtbl List Netcore P4dsl Pisa Printf QCheck QCheck_alcotest String Workloads
