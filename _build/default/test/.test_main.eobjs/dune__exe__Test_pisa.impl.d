test/test_pisa.ml: Alcotest Eventsim Hashtbl List Netcore Option Pisa QCheck QCheck_alcotest Stats
