test/test_resmodel.ml: Alcotest List Resmodel
