test/test_stats.ml: Alcotest Array List QCheck QCheck_alcotest Stats
