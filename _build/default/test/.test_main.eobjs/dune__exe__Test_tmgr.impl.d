test/test_tmgr.ml: Alcotest Devents Eventsim List Netcore Option QCheck QCheck_alcotest Stats Tmgr
