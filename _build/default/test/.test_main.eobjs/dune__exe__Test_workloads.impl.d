test/test_workloads.ml: Alcotest Array Evcore Eventsim Float Hashtbl List Netcore Printf Stats Workloads
