(* Tests for the bounded-staleness consistency checker, including an
   end-to-end verification of a Shared_register execution against the
   model — the checkable form of §4's "temporarily imprecise but
   well-defined behavior". *)

module C = Devents.Consistency
module Scheduler = Eventsim.Scheduler
module Pipeline = Pisa.Pipeline
module Shared_register = Devents.Shared_register

let up ~issue ~delta = C.Update { issue; delta }
let rd ~time ~value = C.Read { time; value }

let test_linearizable_history () =
  (* bound 0: reads must reflect exactly the updates issued so far. *)
  let h = [ up ~issue:1 ~delta:10; rd ~time:5 ~value:10; up ~issue:6 ~delta:5; rd ~time:7 ~value:15 ] in
  Alcotest.(check bool) "valid" true (C.check ~bound:0 h = Ok ())

let test_stale_read_within_bound () =
  let h = [ up ~issue:10 ~delta:10; rd ~time:12 ~value:0 ] in
  Alcotest.(check bool) "rejected at bound 0" true (C.check ~bound:0 h <> Ok ());
  Alcotest.(check bool) "accepted at bound 5" true (C.check ~bound:5 h = Ok ())

let test_too_stale_read () =
  (* The update is 100 cycles old; a bound of 10 requires it applied. *)
  let h = [ up ~issue:0 ~delta:10; rd ~time:100 ~value:0 ] in
  match C.check ~bound:10 h with
  | Ok () -> Alcotest.fail "should violate"
  | Error v ->
      Alcotest.(check int) "read flagged" 100 v.C.read_time;
      Alcotest.(check (list int)) "only 10 allowed" [ 10 ] v.C.valid_values

let test_value_from_thin_air () =
  let h = [ up ~issue:1 ~delta:10; rd ~time:50 ~value:7 ] in
  Alcotest.(check bool) "7 is not a prefix sum" false (C.eventually_consistent h)

let test_future_update_not_visible () =
  let h = [ rd ~time:5 ~value:10; up ~issue:20 ~delta:10 ] in
  Alcotest.(check bool) "cannot see the future" true (C.check ~bound:1000 h <> Ok ())

let test_interval_model_accepts_out_of_order_sides () =
  (* enq (+100) at cycle 5 and deq (-40) at cycle 3: the two queues may
     apply the later-issued +100 first. A read seeing +100 alone is not
     a prefix (prefix sums: 0, -40, 60) but is legal under the interval
     model. *)
  let h = [ up ~issue:3 ~delta:(-40); up ~issue:5 ~delta:100; rd ~time:6 ~value:100 ] in
  Alcotest.(check bool) "prefix model rejects" true (C.check ~bound:10 h <> Ok ());
  Alcotest.(check bool) "interval model accepts" true (C.check_interval ~bound:10 h = Ok ())

let test_interval_model_still_bounds () =
  let h = [ up ~issue:0 ~delta:50; rd ~time:100 ~value:0 ] in
  Alcotest.(check bool) "mandatory updates enforced" true
    (C.check_interval ~bound:10 h <> Ok ())

let qcheck_lazy_application_is_consistent =
  (* Generate updates; simulate a lazy applier that randomly defers
     application up to [bound] cycles; the resulting read history must
     always check out under the prefix model. *)
  QCheck.Test.make ~name:"lazily applied counter satisfies bounded staleness" ~count:200
    QCheck.(pair (int_bound 1_000_000) (list (pair (int_bound 50) (int_range (-20) 20))))
    (fun (seed, raw) ->
      let rng = Stats.Rng.create ~seed in
      let bound = 10 in
      let rec build time applied_through pending acc = function
        | [] -> List.rev acc
        | (gap, delta) :: rest ->
            let time = time + 1 + gap in
            (* Apply everything older than [bound]; maybe more. *)
            let must = List.filter (fun (i, _) -> i < time - bound) pending in
            let may = List.filter (fun (i, _) -> i >= time - bound) pending in
            let extra = Stats.Rng.int rng (List.length may + 1) in
            let applied_now, still_pending =
              (must @ List.filteri (fun i _ -> i < extra) may,
               List.filteri (fun i _ -> i >= extra) may)
            in
            let applied_through = applied_through + List.fold_left (fun a (_, d) -> a + d) 0 applied_now in
            let acc = C.Read { time; value = applied_through } :: acc in
            let acc = C.Update { issue = time; delta } :: acc in
            build time applied_through (still_pending @ [ (time, delta) ]) acc rest
      in
      let history = build 0 0 [] [] raw in
      C.check ~bound history = Ok ())

let test_shared_register_execution_checks_out () =
  (* Drive an Aggregated register with a real pipeline and verify the
     recorded history against the interval model with the measured
     staleness bound. *)
  let sched = Scheduler.create () in
  let pipeline = Pipeline.create ~sched () in
  let alloc = Pisa.Register_alloc.create () in
  let reg =
    Shared_register.create ~alloc ~pipeline ~mode:Shared_register.Aggregated ~name:"c"
      ~entries:1 ~width:32 ()
  in
  let rec_ = C.recorder () in
  let rng = Stats.Rng.create ~seed:77 in
  for k = 0 to 299 do
    ignore
      (Scheduler.schedule sched
         ~at:(k * Pipeline.clock_period pipeline)
         (fun () ->
           let cycle = Pipeline.current_cycle pipeline in
           if Stats.Rng.bool rng then begin
             let delta = Stats.Rng.int rng 100 in
             let side =
               if Stats.Rng.bool rng then Shared_register.Enq_side else Shared_register.Deq_side
             in
             C.record_update rec_ ~issue:cycle ~delta;
             Shared_register.event_add reg side 0 delta
           end
           else C.record_read rec_ ~time:cycle ~value:(Shared_register.read reg 0)))
  done;
  Scheduler.run sched;
  let bound =
    let m = Shared_register.max_staleness_cycles reg in
    if m = neg_infinity then 1 else int_of_float m + 2
  in
  (match C.check_interval ~bound (C.history rec_) with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "violation at cycle %d: saw %d, allowed %s" v.C.read_time v.C.observed
        (String.concat "," (List.map string_of_int v.C.valid_values)));
  Alcotest.(check bool) "history non-trivial" true (C.length rec_ > 100)

let suite =
  [
    Alcotest.test_case "linearizable history" `Quick test_linearizable_history;
    Alcotest.test_case "stale read within bound" `Quick test_stale_read_within_bound;
    Alcotest.test_case "too-stale read flagged" `Quick test_too_stale_read;
    Alcotest.test_case "thin-air value flagged" `Quick test_value_from_thin_air;
    Alcotest.test_case "future not visible" `Quick test_future_update_not_visible;
    Alcotest.test_case "interval model, out-of-order sides" `Quick
      test_interval_model_accepts_out_of_order_sides;
    Alcotest.test_case "interval model bounds" `Quick test_interval_model_still_bounds;
    QCheck_alcotest.to_alcotest qcheck_lazy_application_is_consistent;
    Alcotest.test_case "shared register execution verified" `Quick
      test_shared_register_execution_checks_out;
  ]
