(* Tests for the observability layer (Obs.Metrics). *)

module M = Obs.Metrics

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_counter () =
  let reg = M.create () in
  let c = M.counter reg "requests" in
  M.Counter.incr c;
  M.Counter.add c 4;
  Alcotest.(check int) "value" 5 (M.Counter.value c);
  M.Counter.set c 42;
  Alcotest.(check int) "set is absolute" 42 (M.Counter.value c)

let test_gauge () =
  let reg = M.create () in
  let g = M.gauge reg "depth" in
  M.Gauge.set g 3;
  M.Gauge.set g 9;
  M.Gauge.set g 5;
  Alcotest.(check int) "last" 5 (M.Gauge.value g);
  Alcotest.(check int) "hwm" 9 (M.Gauge.max_seen g);
  Alcotest.(check int) "lwm" 3 (M.Gauge.min_seen g)

let test_histogram_summary () =
  let reg = M.create () in
  let h = M.histogram reg "latency" in
  let s = M.summary reg "load" in
  for i = 1 to 100 do
    M.Histo.observe h (float_of_int i);
    M.Summary.observe s (float_of_int i)
  done;
  (match M.find_value reg "latency" with
  | Some (M.Histo_v { count; p50; p99; _ }) ->
      Alcotest.(check int) "histo count" 100 count;
      Alcotest.(check bool) "histo p99 above p50" true (p99 >= p50)
  | _ -> Alcotest.fail "expected Histo_v");
  match M.find_value reg "load" with
  | Some (M.Summary_v { count; mean; _ }) ->
      Alcotest.(check int) "summary count" 100 count;
      Alcotest.(check (float 1e-6)) "summary mean" 50.5 mean
  | _ -> Alcotest.fail "expected Summary_v"

let test_registration_idempotent () =
  let reg = M.create () in
  let a = M.counter reg ~labels:[ ("port", "1"); ("switch", "0") ] "tx" in
  (* Same series, labels in a different order: shared instrument. *)
  let b = M.counter reg ~labels:[ ("switch", "0"); ("port", "1") ] "tx" in
  M.Counter.incr a;
  M.Counter.incr b;
  Alcotest.(check int) "shared series" 2 (M.Counter.value a);
  Alcotest.(check int) "one series registered" 1 (M.cardinality reg);
  (* Different labels: a distinct series. *)
  let c = M.counter reg ~labels:[ ("port", "2") ] "tx" in
  M.Counter.incr c;
  Alcotest.(check int) "distinct series" 1 (M.Counter.value c);
  Alcotest.(check int) "two series registered" 2 (M.cardinality reg)

let test_kind_collision () =
  let reg = M.create () in
  ignore (M.counter reg "clash");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"clash\" already registered as a counter, not a gauge")
    (fun () -> ignore (M.gauge reg "clash"))

let test_disabled_noop () =
  let reg = M.create ~enabled:false () in
  let c = M.counter reg "c" in
  let g = M.gauge reg "g" in
  let h = M.histogram reg "h" in
  M.Counter.incr c;
  M.Counter.add c 10;
  M.Gauge.set g 7;
  M.Histo.observe h 1.0;
  Alcotest.(check int) "counter untouched" 0 (M.Counter.value c);
  Alcotest.(check int) "gauge untouched" 0 (M.Gauge.value g);
  (match M.find_value reg "h" with
  | Some (M.Histo_v { count; _ }) -> Alcotest.(check int) "histo untouched" 0 count
  | _ -> Alcotest.fail "expected Histo_v");
  (* Re-enabling makes the same instruments live again. *)
  M.enable reg;
  M.Counter.incr c;
  Alcotest.(check int) "live after enable" 1 (M.Counter.value c)

let test_snapshot_sorted () =
  let reg = M.create () in
  ignore (M.counter reg "zz");
  ignore (M.counter reg ~labels:[ ("x", "2") ] "aa");
  ignore (M.counter reg ~labels:[ ("x", "1") ] "aa");
  let names = List.map (fun s -> s.M.name) (M.snapshot reg) in
  Alcotest.(check (list string)) "sorted by name then labels" [ "aa"; "aa"; "zz" ] names;
  match M.snapshot reg with
  | { M.labels = l1; _ } :: { M.labels = l2; _ } :: _ ->
      Alcotest.(check (list (pair string string))) "label tiebreak" [ ("x", "1") ] l1;
      Alcotest.(check (list (pair string string))) "label tiebreak 2" [ ("x", "2") ] l2
  | _ -> Alcotest.fail "expected 3 samples"

let test_json_export () =
  let reg = M.create () in
  let c = M.counter reg ~labels:[ ("sw", "0") ] "pkts" in
  M.Counter.add c 7;
  let s = M.summary reg "lat" in
  M.Summary.observe s 1.5;
  let json = M.to_json reg in
  Alcotest.(check bool) "has metrics key" true
    (contains ~affix:"\"metrics\"" json);
  Alcotest.(check bool) "has series" true
    (contains ~affix:"\"pkts\"" json);
  Alcotest.(check bool) "has label" true
    (contains ~affix:"\"sw\": \"0\"" json);
  Alcotest.(check bool) "has value" true
    (contains ~affix:"7" json);
  (* nan/inf never leak into the document. *)
  Alcotest.(check bool) "no nan" false (contains ~affix:"nan" json);
  Alcotest.(check bool) "no inf" false (contains ~affix:"inf" json)

let test_csv_export () =
  let reg = M.create () in
  let c = M.counter reg ~labels:[ ("port", "3") ] "drops" in
  M.Counter.add c 2;
  let csv = M.to_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row" 2 (List.length lines);
  Alcotest.(check string) "header"
    "name,labels,kind,value,count,mean,p50,p99,min,max" (List.hd lines);
  Alcotest.(check bool) "row has series" true
    (contains ~affix:"drops" (List.nth lines 1))

let test_write_files () =
  let reg = M.create () in
  M.Counter.add (M.counter reg "n") 5;
  let jpath = Filename.temp_file "obs_test" ".json" in
  let cpath = Filename.temp_file "obs_test" ".csv" in
  M.write_json reg ~path:jpath;
  M.write_csv reg ~path:cpath;
  let read p =
    let ic = open_in p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check string) "json file matches to_json" (M.to_json reg) (read jpath);
  Alcotest.(check string) "csv file matches to_csv" (M.to_csv reg) (read cpath);
  Sys.remove jpath;
  Sys.remove cpath

let test_attach_histogram () =
  let reg = M.create () in
  let native = Stats.Histogram.log2 ~max_exponent:20 in
  M.attach_histogram reg "component.cycles" native;
  Stats.Histogram.add native 64.;
  Stats.Histogram.add native 128.;
  match M.find_value reg "component.cycles" with
  | Some (M.Histo_v { count; _ }) -> Alcotest.(check int) "snapshot reads live histogram" 2 count
  | _ -> Alcotest.fail "expected Histo_v"

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge watermarks" `Quick test_gauge;
    Alcotest.test_case "histogram and summary" `Quick test_histogram_summary;
    Alcotest.test_case "registration idempotent" `Quick test_registration_idempotent;
    Alcotest.test_case "kind collision raises" `Quick test_kind_collision;
    Alcotest.test_case "disabled recording is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "snapshot deterministically sorted" `Quick test_snapshot_sorted;
    Alcotest.test_case "json export" `Quick test_json_export;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "write_json/write_csv" `Quick test_write_files;
    Alcotest.test_case "attach_histogram reads live" `Quick test_attach_histogram;
  ]
