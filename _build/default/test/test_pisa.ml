(* Tests for PISA pipeline primitives. *)

module Register_array = Pisa.Register_array
module Register_alloc = Pisa.Register_alloc
module Match_table = Pisa.Match_table
module Counter = Pisa.Counter
module Meter = Pisa.Meter
module Cms = Pisa.Cms
module Bloom = Pisa.Bloom
module Pipeline = Pisa.Pipeline
module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time

let test_register_basics () =
  let r = Register_array.create ~name:"r" ~entries:8 ~width:16 () in
  Register_array.write r 3 0x1234;
  Alcotest.(check int) "read back" 0x1234 (Register_array.read r 3);
  Register_array.write r 3 0x12345 (* masked to 16 bits *);
  Alcotest.(check int) "width mask" 0x2345 (Register_array.read r 3);
  Alcotest.(check int) "bits" 128 (Register_array.bits r);
  Alcotest.(check int) "adds wrap" 0 (Register_array.add r 0 0x10000)

let test_register_bounds () =
  let r = Register_array.create ~name:"r" ~entries:4 ~width:8 () in
  Alcotest.check_raises "oob" (Invalid_argument "Register_array r: index 4 out of [0,4)")
    (fun () -> ignore (Register_array.read r 4))

let test_register_conflicts () =
  let cycle = ref 0 in
  let r = Register_array.create ~clock:(fun () -> !cycle) ~name:"r" ~entries:4 ~width:8 () in
  Register_array.write r 0 1;
  Register_array.write r 1 1 (* same cycle: conflict *);
  cycle := 1;
  Register_array.write r 2 1 (* new cycle: fine *);
  Alcotest.(check int) "one conflict" 1 (Register_array.conflicts r)

let test_register_alloc_accounting () =
  let alloc = Register_alloc.create () in
  let _a = Register_alloc.array alloc ~name:"a" ~entries:1024 ~width:32 in
  let _b = Register_alloc.array alloc ~name:"b" ~entries:16 ~width:1 in
  Alcotest.(check int) "total bits" ((1024 * 32) + 16) (Register_alloc.total_bits alloc);
  Alcotest.(check int) "two registers" 2 (List.length (Register_alloc.registers alloc))

let test_exact_table () =
  let t = Match_table.exact ~name:"t" in
  Match_table.add_exact t ~key:42 "a";
  Match_table.set_default t "dflt";
  Alcotest.(check (option string)) "hit" (Some "a") (Match_table.lookup t 42);
  Alcotest.(check (option string)) "default" (Some "dflt") (Match_table.lookup t 7);
  Match_table.remove_exact t ~key:42;
  Alcotest.(check (option string)) "removed" (Some "dflt") (Match_table.lookup t 42);
  Alcotest.(check int) "lookups" 3 (Match_table.lookups t);
  Alcotest.(check int) "hits" 1 (Match_table.hits t)

let test_lpm_table () =
  let t = Match_table.lpm ~name:"routes" ~key_bits:32 in
  let ip s = Netcore.Ipv4_addr.to_int (Netcore.Ipv4_addr.of_string s) in
  Match_table.add_lpm t ~prefix:(ip "10.0.0.0") ~len:8 "coarse";
  Match_table.add_lpm t ~prefix:(ip "10.1.0.0") ~len:16 "fine";
  Match_table.add_lpm t ~prefix:0 ~len:0 "default-route";
  Alcotest.(check (option string)) "longest wins" (Some "fine") (Match_table.lookup t (ip "10.1.2.3"));
  Alcotest.(check (option string)) "coarse" (Some "coarse") (Match_table.lookup t (ip "10.9.2.3"));
  Alcotest.(check (option string)) "zero-length" (Some "default-route")
    (Match_table.lookup t (ip "192.168.0.1"))

let test_ternary_table () =
  let t = Match_table.ternary ~name:"acl" in
  Match_table.add_ternary t ~priority:1 ~value:0xff00 ~mask:0xff00 "hi";
  Match_table.add_ternary t ~priority:0 ~value:0x0000 ~mask:0x0000 "any";
  Alcotest.(check (option string)) "priority wins" (Some "hi") (Match_table.lookup t 0xff42);
  Alcotest.(check (option string)) "fallthrough" (Some "any") (Match_table.lookup t 0x0042)

let test_table_kind_mismatch () =
  let t = Match_table.exact ~name:"t" in
  Alcotest.check_raises "lpm on exact"
    (Invalid_argument "Match_table.add_lpm on non-lpm table t") (fun () ->
      Match_table.add_lpm t ~prefix:0 ~len:0 "x")

let test_counter () =
  let c = Counter.create ~name:"c" ~entries:4 in
  Counter.count c ~index:1 ~bytes:100;
  Counter.count c ~index:1 ~bytes:200;
  Alcotest.(check int) "pkts" 2 (Counter.packets c 1);
  Alcotest.(check int) "bytes" 300 (Counter.bytes c 1);
  Alcotest.(check int) "total" 300 (Counter.total_bytes c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.total_packets c)

let test_meter_colors () =
  (* 1000 B/s CIR, 500 B committed burst, 300 B excess. *)
  let m = Meter.create ~cir_bytes_per_sec:1000. ~cbs:500 ~ebs:300 in
  Alcotest.(check string) "burst fits" "green"
    (Meter.color_to_string (Meter.mark m ~now_ps:0 ~bytes:400));
  Alcotest.(check string) "excess bucket" "yellow"
    (Meter.color_to_string (Meter.mark m ~now_ps:0 ~bytes:200));
  Alcotest.(check string) "exhausted" "red"
    (Meter.color_to_string (Meter.mark m ~now_ps:0 ~bytes:200));
  (* After one second the committed bucket refills. *)
  Alcotest.(check string) "refill" "green"
    (Meter.color_to_string (Meter.mark m ~now_ps:(Sim_time.sec 1) ~bytes:400))

let test_meter_long_term_rate () =
  let m = Meter.create ~cir_bytes_per_sec:10_000. ~cbs:1_000 ~ebs:0 in
  let accepted = ref 0 in
  (* Offer 100B packets at 2x CIR (200 pkts over one second). *)
  let gap = Sim_time.ms 5 in
  for i = 0 to 199 do
    match Meter.mark m ~now_ps:(i * gap) ~bytes:100 with
    | Meter.Green -> accepted := !accepted + 100
    | Meter.Yellow | Meter.Red -> ()
  done;
  (* Accepted volume over 1s must be close to CIR (plus one burst). *)
  let rate = float_of_int !accepted in
  Alcotest.(check bool) "within 15% of CIR" true (abs_float (rate -. 10_000.) < 1_500.)

let test_cms_never_undercounts () =
  let alloc = Register_alloc.create () in
  let cms = Cms.create ~alloc ~width:64 ~depth:3 ~counter_bits:32 () in
  let truth = Hashtbl.create 16 in
  let rng = Stats.Rng.create ~seed:99 in
  for _ = 1 to 2000 do
    let key = Stats.Rng.int rng 200 in
    Cms.update cms ~key ~delta:1;
    Hashtbl.replace truth key (1 + Option.value (Hashtbl.find_opt truth key) ~default:0)
  done;
  Hashtbl.iter
    (fun key count ->
      if Cms.query cms ~key < count then
        Alcotest.failf "undercount for key %d: %d < %d" key (Cms.query cms ~key) count)
    truth

let qcheck_cms_overcount_bounded =
  QCheck.Test.make ~name:"cms overestimate bounded by eN/width" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let alloc = Register_alloc.create () in
      let cms = Cms.create ~alloc ~width:256 ~depth:4 ~counter_bits:32 () in
      let rng = Stats.Rng.create ~seed in
      let n = 2000 in
      let truth = Hashtbl.create 64 in
      for _ = 1 to n do
        let key = Stats.Rng.int rng 500 in
        Cms.update cms ~key ~delta:1;
        Hashtbl.replace truth key (1 + Option.value (Hashtbl.find_opt truth key) ~default:0)
      done;
      (* With width 256 and depth 4, an error beyond 4*e*N/w is
         essentially impossible. *)
      let bound = 4. *. 2.72 *. float_of_int n /. 256. in
      Hashtbl.fold
        (fun key count ok ->
          ok && float_of_int (Cms.query cms ~key - count) <= bound)
        truth true)

let test_cms_reset () =
  let alloc = Register_alloc.create () in
  let cms = Cms.create ~alloc ~width:32 ~depth:2 ~counter_bits:32 () in
  Cms.update cms ~key:5 ~delta:10;
  Cms.reset cms;
  Alcotest.(check int) "cleared" 0 (Cms.query cms ~key:5)

let test_bloom () =
  let alloc = Register_alloc.create () in
  let b = Bloom.create ~alloc ~bits:1024 ~hashes:3 () in
  for k = 0 to 49 do
    Bloom.add b k
  done;
  (* No false negatives. *)
  for k = 0 to 49 do
    if not (Bloom.mem b k) then Alcotest.failf "false negative for %d" k
  done;
  (* Low false positive rate at this load. *)
  let fp = ref 0 in
  for k = 1000 to 1999 do
    if Bloom.mem b k then incr fp
  done;
  Alcotest.(check bool) "few false positives" true (!fp < 20);
  Bloom.reset b;
  Alcotest.(check bool) "reset clears" false (Bloom.mem b 0)

let test_pipeline_admission_serialisation () =
  let sched = Scheduler.create () in
  let p = Pipeline.create ~sched () in
  Alcotest.(check int) "first admission now" 0 (Pipeline.earliest_admission p);
  let exit1 = Pipeline.admit p ~has_packet:true in
  Alcotest.(check int) "latency 80ns" (Sim_time.ns 80) exit1;
  (* Same instant: next slot is the next cycle. *)
  Alcotest.(check int) "next slot" (Sim_time.ns 5) (Pipeline.earliest_admission p);
  Alcotest.check_raises "double admission"
    (Invalid_argument "Pipeline.admit: admission slot already used this cycle") (fun () ->
      ignore (Pipeline.admit p ~has_packet:false))

let test_pipeline_idle_accounting () =
  let sched = Scheduler.create () in
  let p = Pipeline.create ~sched () in
  let m0 = Pipeline.mark p in
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.ns 50) (fun () ->
         ignore (Pipeline.admit p ~has_packet:true)));
  Scheduler.run ~until:(Sim_time.ns 100) sched;
  (* 20 cycles elapsed, 1 admission -> 19 idle. *)
  let idle, _ = Pipeline.idle_cycles_since p m0 in
  Alcotest.(check int) "idle cycles" 19 idle;
  Alcotest.(check int) "admissions" 1 (Pipeline.admissions p);
  Alcotest.(check (float 0.001)) "busy fraction" 0.05 (Pipeline.busy_fraction p)

let suite =
  [
    Alcotest.test_case "register basics" `Quick test_register_basics;
    Alcotest.test_case "register bounds" `Quick test_register_bounds;
    Alcotest.test_case "register conflicts" `Quick test_register_conflicts;
    Alcotest.test_case "register alloc accounting" `Quick test_register_alloc_accounting;
    Alcotest.test_case "exact table" `Quick test_exact_table;
    Alcotest.test_case "lpm table" `Quick test_lpm_table;
    Alcotest.test_case "ternary table" `Quick test_ternary_table;
    Alcotest.test_case "table kind mismatch" `Quick test_table_kind_mismatch;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "meter colors" `Quick test_meter_colors;
    Alcotest.test_case "meter long-term rate" `Quick test_meter_long_term_rate;
    Alcotest.test_case "cms never undercounts" `Quick test_cms_never_undercounts;
    QCheck_alcotest.to_alcotest qcheck_cms_overcount_bounded;
    Alcotest.test_case "cms reset" `Quick test_cms_reset;
    Alcotest.test_case "bloom filter" `Quick test_bloom;
    Alcotest.test_case "pipeline admission" `Quick test_pipeline_admission_serialisation;
    Alcotest.test_case "pipeline idle accounting" `Quick test_pipeline_idle_accounting;
  ]
