(* Tests for the FPGA resource model (Table 3). *)

module Rm = Resmodel.Resource_model

let test_table3_matches_paper () =
  let t = Rm.table3 () in
  Alcotest.(check (float 1e-9)) "LUT +0.5%" 0.5 (List.assoc "Lookup Tables" t);
  Alcotest.(check (float 1e-9)) "FF +0.4%" 0.4 (List.assoc "Flip Flops" t);
  Alcotest.(check (float 1e-9)) "BRAM +2.0%" 2.0 (List.assoc "Block RAM" t)

let test_event_logic_is_marginal () =
  let extra = Rm.sum Rm.event_components in
  let l, f, b = Rm.utilisation Rm.virtex7_690t extra in
  Alcotest.(check bool) "all under 2.5% of device" true (l < 0.025 && f < 0.025 && b < 0.025)

let test_baseline_plausible () =
  let base = Rm.sum Rm.baseline_components in
  let l, _, _ = Rm.utilisation Rm.virtex7_690t base in
  (* The P4->NetFPGA reference switch lands somewhere near half the
     device; the model must stay in a plausible band. *)
  Alcotest.(check bool) "baseline in 20-70% LUT band" true (l > 0.2 && l < 0.7)

let test_cost_arithmetic () =
  let a = { Rm.luts = 1; ffs = 2; brams = 3 } in
  let b = { Rm.luts = 10; ffs = 20; brams = 30 } in
  let s = Rm.add a b in
  Alcotest.(check int) "luts" 11 s.Rm.luts;
  Alcotest.(check int) "ffs" 22 s.Rm.ffs;
  Alcotest.(check int) "brams" 33 s.Rm.brams;
  Alcotest.(check int) "zero is neutral" s.Rm.luts (Rm.add Rm.zero s).Rm.luts

let test_brams_for_bits () =
  Alcotest.(check int) "0 bits" 0 (Rm.brams_for_bits 0);
  Alcotest.(check int) "1 bit" 1 (Rm.brams_for_bits 1);
  Alcotest.(check int) "exactly one block" 1 (Rm.brams_for_bits 36_864);
  Alcotest.(check int) "one over" 2 (Rm.brams_for_bits 36_865);
  (* The microburst detector's multiport state (32 Kb) fits in one
     BRAM; Snappy's 262 Kb needs 8. *)
  Alcotest.(check int) "microburst" 1 (Rm.brams_for_bits (1024 * 32));
  Alcotest.(check int) "snappy" 8 (Rm.brams_for_bits 262_400)

let suite =
  [
    Alcotest.test_case "table3 matches paper" `Quick test_table3_matches_paper;
    Alcotest.test_case "event logic marginal" `Quick test_event_logic_is_marginal;
    Alcotest.test_case "baseline plausible" `Quick test_baseline_plausible;
    Alcotest.test_case "cost arithmetic" `Quick test_cost_arithmetic;
    Alcotest.test_case "brams for bits" `Quick test_brams_for_bits;
  ]
