(* Tests for the statistics substrate. *)

module Rng = Stats.Rng
module Dist = Stats.Dist
module Histogram = Stats.Histogram
module Ewma = Stats.Ewma
module Welford = Stats.Welford
module Sliding_window = Stats.Sliding_window
module Summary = Stats.Summary
module Time_series = Stats.Time_series

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_different_seeds () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_copy_and_split () =
  let a = Rng.create ~seed:3 in
  let c = Rng.copy a in
  Alcotest.(check int) "copy same" (Rng.bits a) (Rng.bits c);
  let s = Rng.split a in
  Alcotest.(check bool) "split differs" true (Rng.bits s <> Rng.bits a)

let qcheck_rng_int_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair (int_bound 1000) small_int)
    (fun (bound, seed) ->
      QCheck.assume (bound > 0);
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_float_range () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_rng_uniformity () =
  let rng = Rng.create ~seed:5 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Dist.exponential rng ~rate:2.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check (float 0.02)) "mean 1/rate" 0.5 mean

let test_pareto_minimum () =
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 1000 do
    let x = Dist.pareto rng ~shape:1.5 ~scale:100. in
    if x < 100. then Alcotest.failf "pareto below scale: %f" x
  done

let test_normal_moments () =
  let rng = Rng.create ~seed:19 in
  let w = Welford.create () in
  for _ = 1 to 50_000 do
    Welford.add w (Dist.normal rng ~mean:10. ~std:2.)
  done;
  Alcotest.(check (float 0.05)) "mean" 10. (Welford.mean w);
  Alcotest.(check (float 0.05)) "std" 2. (Welford.std w)

let test_zipf_skew () =
  let rng = Rng.create ~seed:23 in
  let z = Dist.zipf ~n:100 ~alpha:1.1 in
  let counts = Array.make 101 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let r = Dist.zipf_draw rng z in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank1 most popular" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank1 heavier than rank50" true (counts.(1) > 10 * max 1 counts.(50));
  (* Empirical frequency of rank 1 close to pmf. *)
  let freq1 = float_of_int counts.(1) /. float_of_int n in
  let pmf1 = Dist.zipf_pmf z 1 in
  Alcotest.(check (float 0.03)) "pmf matches" pmf1 freq1

let test_zipf_pmf_sums_to_one () =
  let z = Dist.zipf ~n:50 ~alpha:0.9 in
  let total = ref 0. in
  for r = 1 to 50 do
    total := !total +. Dist.zipf_pmf z r
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_geometric () =
  let rng = Rng.create ~seed:29 in
  let w = Welford.create () in
  for _ = 1 to 20_000 do
    Welford.add w (float_of_int (Dist.geometric rng ~p:0.25))
  done;
  Alcotest.(check (float 0.15)) "mean 1/p" 4.0 (Welford.mean w)

let test_histogram_linear () =
  let h = Histogram.linear ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.; 12. ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  Alcotest.(check (float 1e-9)) "max" 12. (Histogram.max_seen h)

let test_histogram_percentile () =
  let h = Histogram.linear ~lo:0. ~hi:100. ~buckets:100 in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i -. 0.5)
  done;
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 near 50" true (p50 >= 49. && p50 <= 51.);
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p99 near 99" true (p99 >= 98. && p99 <= 99.5)

let test_histogram_log2 () =
  let h = Histogram.log2 ~max_exponent:10 in
  List.iter (Histogram.add h) [ 0.; 0.5; 1.; 3.; 1000. ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  let buckets = Histogram.buckets h in
  Alcotest.(check int) "four non-empty buckets" 4 (List.length buckets)

let test_histogram_clear () =
  let h = Histogram.log2 ~max_exponent:5 in
  Histogram.add h 3.;
  Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Histogram.count h)

let test_ewma () =
  let e = Ewma.create ~alpha:0.5 in
  Alcotest.(check (float 1e-9)) "first sample primes" 10. (Ewma.update e 10.);
  Alcotest.(check (float 1e-9)) "second" 15. (Ewma.update e 20.);
  Ewma.decay e;
  Alcotest.(check (float 1e-9)) "decay" 7.5 (Ewma.value e)

let test_welford_merge () =
  let rng = Rng.create ~seed:31 in
  let all = Welford.create () and a = Welford.create () and b = Welford.create () in
  for i = 1 to 1000 do
    let x = Rng.float rng in
    Welford.add all x;
    if i mod 2 = 0 then Welford.add a x else Welford.add b x
  done;
  let merged = Welford.merge a b in
  Alcotest.(check (float 1e-9)) "mean" (Welford.mean all) (Welford.mean merged);
  Alcotest.(check (float 1e-9)) "var" (Welford.variance all) (Welford.variance merged);
  Alcotest.(check int) "count" (Welford.count all) (Welford.count merged)

let test_sliding_window () =
  let w = Sliding_window.create ~slots:4 ~slot_width:10. in
  Sliding_window.add w 100.;
  Sliding_window.rotate w;
  Sliding_window.add w 200.;
  Alcotest.(check (float 1e-9)) "sum" 300. (Sliding_window.sum w);
  Alcotest.(check (float 1e-9)) "rate over window 40" 7.5 (Sliding_window.rate w);
  (* Rotate enough to expire the first slot. *)
  Sliding_window.rotate w;
  Sliding_window.rotate w;
  Sliding_window.rotate w;
  Alcotest.(check (float 1e-9)) "oldest expired" 200. (Sliding_window.sum w);
  Sliding_window.rotate w;
  Alcotest.(check (float 1e-9)) "all expired" 0. (Sliding_window.sum w)

let qcheck_sliding_window_sum =
  QCheck.Test.make ~name:"sliding window sum equals sum of live slots" ~count:200
    QCheck.(list (pair (int_bound 100) bool))
    (fun ops ->
      let w = Sliding_window.create ~slots:8 ~slot_width:1. in
      List.iter
        (fun (v, rot) ->
          if rot then Sliding_window.rotate w else Sliding_window.add w (float_of_int v))
        ops;
      let slots = Sliding_window.slots w in
      let expect = Array.fold_left ( +. ) 0. slots in
      abs_float (expect -. Sliding_window.sum w) < 1e-9)

let test_summary_percentile () =
  let xs = Array.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "p50" 50. (Summary.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p0" 0. (Summary.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Summary.percentile xs 1.)

let test_jain () =
  Alcotest.(check (float 1e-9)) "equal is 1" 1. (Summary.jain_fairness [| 5.; 5.; 5. |]);
  let one_hog = Summary.jain_fairness [| 10.; 0.; 0.; 0. |] in
  Alcotest.(check (float 1e-9)) "one hog is 1/n" 0.25 one_hog

let test_nrmse () =
  let actual = [| 10.; 10.; 10. |] in
  Alcotest.(check (float 1e-9)) "perfect" 0.
    (Summary.normalized_rmse ~predicted:actual ~actual);
  let off = Summary.normalized_rmse ~predicted:[| 11.; 11.; 11. |] ~actual in
  Alcotest.(check (float 1e-9)) "10%% off" 0.1 off

let test_time_series () =
  let ts = Time_series.create ~capacity:2 () in
  for i = 1 to 10 do
    Time_series.add ts ~time:(float_of_int i) ~value:(float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 10 (Time_series.length ts);
  Alcotest.(check (pair (float 0.) (float 0.))) "nth" (3., 9.) (Time_series.nth ts 2);
  Alcotest.(check (float 1e-9)) "max" 100. (Time_series.max_value ts);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "last" (Some (10., 100.))
    (Time_series.last ts)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_different_seeds;
    Alcotest.test_case "rng copy/split" `Quick test_rng_copy_and_split;
    QCheck_alcotest.to_alcotest qcheck_rng_int_range;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto minimum" `Quick test_pareto_minimum;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf pmf normalised" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "geometric mean" `Quick test_geometric;
    Alcotest.test_case "histogram linear" `Quick test_histogram_linear;
    Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
    Alcotest.test_case "histogram log2" `Quick test_histogram_log2;
    Alcotest.test_case "histogram clear" `Quick test_histogram_clear;
    Alcotest.test_case "ewma" `Quick test_ewma;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "sliding window" `Quick test_sliding_window;
    QCheck_alcotest.to_alcotest qcheck_sliding_window_sum;
    Alcotest.test_case "summary percentile" `Quick test_summary_percentile;
    Alcotest.test_case "jain fairness" `Quick test_jain;
    Alcotest.test_case "normalized rmse" `Quick test_nrmse;
    Alcotest.test_case "time series" `Quick test_time_series;
  ]
