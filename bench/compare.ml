(* Diff two bench baselines written by [main.exe --json FILE].

   Usage: compare.exe OLD.json NEW.json

   Prints a per-kernel delta table and exits non-zero if any kernel
   regressed by more than 20% — loose enough to ride out OLS noise,
   tight enough to catch a real hot-path regression.

   The baselines are flat {"results": {"name": ns, ...}} documents, so a
   full JSON parser would be overkill: scanning for "string": number
   pairs recovers every kernel (string-valued fields like "schema" are
   skipped by the number parse). *)

let threshold = 0.20

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* All ("name", float) pairs in [s], in order of appearance. *)
let pairs s =
  let acc = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      (* Scan the quoted name (baseline names contain no escapes). *)
      let start = !i + 1 in
      let j = ref start in
      while !j < n && s.[!j] <> '"' do
        incr j
      done;
      let name = String.sub s start (!j - start) in
      (* Skip whitespace, then require a colon followed by a number. *)
      let k = ref (!j + 1) in
      while !k < n && (s.[!k] = ' ' || s.[!k] = '\n' || s.[!k] = '\t') do
        incr k
      done;
      if !k < n && s.[!k] = ':' then begin
        incr k;
        while !k < n && (s.[!k] = ' ' || s.[!k] = '\n' || s.[!k] = '\t') do
          incr k
        done;
        let num_start = !k in
        while
          !k < n
          && (match s.[!k] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
        do
          incr k
        done;
        if !k > num_start then
          match float_of_string_opt (String.sub s num_start (!k - num_start)) with
          | Some v -> acc := (name, v) :: !acc
          | None -> ()
      end;
      i := !k
    end
    else incr i
  done;
  List.rev !acc

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: compare OLD.json NEW.json";
    exit 2
  end;
  let old_rows = pairs (read_file Sys.argv.(1)) in
  let new_rows = pairs (read_file Sys.argv.(2)) in
  let regressions = ref 0 in
  Printf.printf "%-42s %12s %12s %9s\n" "kernel" "old ns" "new ns" "delta";
  List.iter
    (fun (name, nv) ->
      match List.assoc_opt name old_rows with
      | None -> Printf.printf "%-42s %12s %12.1f %9s\n" name "-" nv "new"
      | Some ov ->
          let delta = (nv -. ov) /. ov in
          let flag =
            if delta > threshold then begin
              incr regressions;
              "  << REGRESSION"
            end
            else ""
          in
          Printf.printf "%-42s %12.1f %12.1f %+8.1f%%%s\n" name ov nv (100. *. delta) flag)
    new_rows;
  List.iter
    (fun (name, ov) ->
      if not (List.mem_assoc name new_rows) then
        Printf.printf "%-42s %12.1f %12s %9s\n" name ov "-" "gone")
    old_rows;
  if !regressions > 0 then begin
    Printf.printf "\n%d kernel(s) regressed by more than %.0f%%\n" !regressions
      (100. *. threshold);
    exit 1
  end
  else print_endline "\nno regressions above threshold"
