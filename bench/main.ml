(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (the
   experiment registry: Tables 1-3, Figures 3-4, and the per-section
   application experiments E6-E15).

   Part 2 runs Bechamel microbenchmarks — one per reproduced artifact —
   of the hot kernel each experiment leans on, so simulator performance
   regressions are visible: event dispatch (Table 1), sketch updates
   (Table 2 workloads), the aggregation drain (Figure 3), pipeline
   admission (Figure 4 line rate), and the per-application primitives. *)

open Bechamel

let mk_pkt () =
  Netcore.Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.of_string "10.0.0.1")
    ~dst:(Netcore.Ipv4_addr.of_string "10.0.0.2")
    ~src_port:1234 ~dst_port:80 ~payload_len:86 ()

(* Table 1 kernel: firing + merging + dispatching one event through a
   live switch.  [metrics] optionally attaches a registry to the
   scheduler; with a disabled registry this measures the cost of the
   instrumentation branches alone. *)
let make_event_dispatch ~name ?metrics ?backend () =
  let sched = Eventsim.Scheduler.create ?backend () in
  let config = Evcore.Event_switch.default_config Evcore.Arch.event_pisa_full in
  let count = ref 0 in
  let program _ctx =
    Evcore.Program.make ~name:"bench"
      ~ingress:(fun _ctx _pkt -> Evcore.Program.Forward 0)
      ~user:(fun _ctx _ev -> incr count)
      ()
  in
  let sw = Evcore.Event_switch.create ~sched ~config ~program () in
  Evcore.Event_switch.set_port_tx sw ~port:0 (fun _ -> ());
  (match metrics with
  | Some reg -> Eventsim.Scheduler.set_metrics ~wall:false sched reg
  | None -> ());
  let ctx = Evcore.Event_switch.ctx sw in
  Test.make ~name
    (Staged.stage (fun () ->
         ctx.Evcore.Program.emit_user_event ~tag:1 ~data:2;
         Eventsim.Scheduler.run sched))

(* The pair must bracket the cost of observability: [event-dispatch]
   records scheduler metrics through an *enabled* registry, and
   [-metrics-off] attaches the same registry disabled (one load and
   branch per event). Attaching no registry at all to the baseline —
   as this kernel originally did — inverts the pair: "metrics off"
   then measures strictly more work than "metrics on". *)
let bench_event_dispatch =
  make_event_dispatch ~name:"table1/event-dispatch"
    ~metrics:(Obs.Metrics.create ~enabled:true ()) ()

let bench_event_dispatch_metrics_off =
  make_event_dispatch ~name:"table1/event-dispatch-metrics-off"
    ~metrics:(Obs.Metrics.create ~enabled:false ()) ()

(* Table 2 kernel: count-min sketch update+query (the monitoring
   workhorse). *)
let bench_cms =
  let alloc = Pisa.Register_alloc.create () in
  let cms = Pisa.Cms.create ~alloc ~width:1024 ~depth:3 ~counter_bits:32 () in
  let key = ref 0 in
  Test.make ~name:"table2/cms-update-query"
    (Staged.stage (fun () ->
         incr key;
         Pisa.Cms.update cms ~key:!key ~delta:1;
         ignore (Pisa.Cms.query cms ~key:!key)))

(* Table 2 kernel: one per-flow EFSM transition — lookup, guard
   evaluation, parallel register update, LRU bookkeeping — over a hot
   table of 1024 flows (the stateful-processing hot path of E24). *)
let bench_efsm =
  let e =
    Pisa.Efsm.create ~alloc:(Pisa.Register_alloc.create ()) ~name:"bench" ~entries:1024
      ~nregs:2
      ~transitions:
        [
          {
            Pisa.Efsm.from_state = 0;
            guard = Pisa.Efsm.Cmp (Pisa.Efsm.Ge, Pisa.Efsm.Reg 0, Pisa.Efsm.Const 1_000_000);
            next_state = 1;
            actions = [];
          };
          {
            Pisa.Efsm.from_state = 0;
            guard = Pisa.Efsm.Always;
            next_state = 0;
            actions =
              [
                {
                  Pisa.Efsm.reg = 0;
                  update = Pisa.Efsm.Sat_add (Pisa.Efsm.Reg 0, Pisa.Efsm.Input);
                };
                { Pisa.Efsm.reg = 1; update = Pisa.Efsm.Add (Pisa.Efsm.Reg 1, Pisa.Efsm.Const 1) };
              ];
          };
          { Pisa.Efsm.from_state = 1; guard = Pisa.Efsm.Always; next_state = 0; actions = [] };
        ]
      ()
  in
  let i = ref 0 in
  Test.make ~name:"table2/efsm-transition"
    (Staged.stage (fun () ->
         incr i;
         ignore (Pisa.Efsm.step e ~now:!i ~key:(!i land 1023) ~input:64 : Pisa.Efsm.outcome)))

(* E25 kernel: one compiled CEP pattern step — the SYN-signature
   automaton (within + count compiled onto the EFSM extern) consuming
   one encoded event over a hot table of 1024 victim keys, with a
   broadcast window tick every 256 events so armed countdowns decay as
   they would under the detector's timer. *)
let bench_cep_pattern =
  let c =
    Cep.Compile.compile
      ~tick_period:(Eventsim.Sim_time.us 10)
      (Apps.Syn_signature.pattern ~syns:8 ~window:(Eventsim.Sim_time.us 60))
  in
  let e =
    Cep.Compile.efsm ~alloc:(Pisa.Register_alloc.create ()) ~entries:1024 ~name:"bench-cep" c
      ()
  in
  let syn =
    Cep.Pattern.encode { Cep.Pattern.cls = Devents.Event.Ingress_packet; attr = 1 }
  in
  let i = ref 0 in
  Test.make ~name:"cep/pattern-step"
    (Staged.stage (fun () ->
         incr i;
         if !i land 255 = 0 then Pisa.Efsm.step_all e ~input:Cep.Pattern.tick_input;
         ignore (Pisa.Efsm.step e ~now:!i ~key:(!i land 1023) ~input:syn : Pisa.Efsm.outcome)))

(* Table 3 kernel: the resource-model composition. *)
let bench_resmodel =
  Test.make ~name:"table3/resource-model"
    (Staged.stage (fun () -> ignore (Resmodel.Resource_model.table3 ())))

(* Figure 3 kernel: aggregated shared-register event_add + drain. *)
let bench_shared_register =
  let sched = Eventsim.Scheduler.create () in
  let pipeline = Pisa.Pipeline.create ~sched () in
  let alloc = Pisa.Register_alloc.create () in
  let reg =
    Devents.Shared_register.create ~alloc ~pipeline ~mode:Devents.Shared_register.Aggregated
      ~name:"bench" ~entries:1024 ~width:32 ()
  in
  let i = ref 0 in
  Test.make ~name:"fig3/shared-register-agg"
    (Staged.stage (fun () ->
         incr i;
         let slot = !i land 1023 in
         Devents.Shared_register.event_add reg Devents.Shared_register.Enq_side slot 100;
         ignore (Devents.Shared_register.read reg slot)))

(* Figure 4 kernel: a full packet traversal (inject -> pipeline ->
   TM -> transmit) including enqueue/dequeue events. Packets come from
   an arena and are released at transmit, so steady state recycles one
   packet record instead of building a fresh header tree per run. *)
let make_packet_path ~name ?backend () =
  let sched = Eventsim.Scheduler.create ?backend () in
  let config = Evcore.Event_switch.default_config Evcore.Arch.event_pisa_full in
  let spec, _ =
    Apps.Microburst.program ~threshold_bytes:1_000_000 ~out_port:(fun _ -> 1) ()
  in
  let sw = Evcore.Event_switch.create ~sched ~config ~program:spec () in
  let arena = Netcore.Packet_arena.create () in
  Evcore.Event_switch.set_port_tx sw ~port:1 (Netcore.Packet_arena.release arena);
  let src = Netcore.Ipv4_addr.of_string "10.0.0.1" in
  let dst = Netcore.Ipv4_addr.of_string "10.0.0.2" in
  Test.make ~name
    (Staged.stage (fun () ->
         let pkt =
           Netcore.Packet_arena.acquire_udp arena ~src ~dst ~src_port:1234 ~dst_port:80
             ~payload_len:86 ()
         in
         Evcore.Event_switch.inject sw ~port:0 pkt;
         Eventsim.Scheduler.run sched))

let bench_packet_path = make_packet_path ~name:"fig4/packet-traversal" ()

let bench_packet_path_heap =
  make_packet_path ~name:"fig4/packet-traversal-heap" ~backend:Eventsim.Sched_backend.Heap ()

(* Substrate + application-experiment kernels.

   The scheduler kernel measures one schedule+dispatch cycle against a
   queue that also holds parked far-future work (512 background timers),
   the shape every real experiment produces: the binary heap pays
   O(log n) sift per hot event for that depth, the wheel keeps parked
   timers in their overflow page untouched. *)
let make_scheduler_event ~name ~backend =
  let sched = Eventsim.Scheduler.create ~backend () in
  for i = 0 to 511 do
    Eventsim.Scheduler.post sched ~at:(Eventsim.Sim_time.ms 100 + i) (fun () -> ())
  done;
  Test.make ~name
    (Staged.stage (fun () ->
         Eventsim.Scheduler.post_after sched ~delay:10 (fun () -> ());
         ignore (Eventsim.Scheduler.step sched)))

let bench_scheduler_heap =
  make_scheduler_event ~name:"substrate/scheduler-event-heap" ~backend:Eventsim.Sched_backend.Heap

let bench_scheduler_wheel =
  make_scheduler_event ~name:"substrate/scheduler-event-wheel"
    ~backend:Eventsim.Sched_backend.Wheel

let bench_scheduler_ladder =
  make_scheduler_event ~name:"substrate/scheduler-event-ladder"
    ~backend:Eventsim.Sched_backend.Ladder

let bench_pifo =
  let pifo = Tmgr.Pifo.create () in
  let rng = Stats.Rng.create ~seed:7 in
  Test.make ~name:"substrate/pifo-push-pop"
    (Staged.stage (fun () ->
         ignore (Tmgr.Pifo.push pifo ~rank:(Stats.Rng.int rng 1000) ());
         ignore (Tmgr.Pifo.pop pifo)))

let bench_lpm =
  let table = Pisa.Match_table.lpm ~name:"bench" ~key_bits:32 in
  let () =
    for i = 0 to 255 do
      Pisa.Match_table.add_lpm table ~prefix:(i lsl 24) ~len:(8 + (i mod 17)) i
    done
  in
  let key = ref 0 in
  Test.make ~name:"substrate/lpm-lookup"
    (Staged.stage (fun () ->
         key := (!key + 0x01020304) land 0xffffffff;
         ignore (Pisa.Match_table.lookup table !key)))

let bench_frame =
  let pkt = mk_pkt () in
  Test.make ~name:"substrate/frame-serialize-parse"
    (Staged.stage (fun () -> ignore (Netcore.Frame.of_bytes (Netcore.Frame.to_bytes pkt))))

let bench_meter =
  let meter = Pisa.Meter.create ~cir_bytes_per_sec:1e9 ~cbs:64_000 ~ebs:64_000 in
  let now = ref 0 in
  Test.make ~name:"e13/meter-mark"
    (Staged.stage (fun () ->
         now := !now + 800_000;
         ignore (Pisa.Meter.mark meter ~now_ps:!now ~bytes:1000)))

(* E26 kernel: one complete two-phase policy commit — install, flip,
   drain, GC across 8 switches over the modeled control plane — as
   whole-transaction wall time. Scheduler, agents and controller
   persist across iterations; each run proposes the next version
   (alternating two ring policies so every table genuinely changes)
   and drives the event loop until the update commits. *)
let bench_netupd_commit =
  let sched = Eventsim.Scheduler.create ~backend:Eventsim.Sched_backend.Heap () in
  let agents =
    Array.init 8 (fun sw ->
        Some (Netupd.Agent.create ~switch:sw ~keys:8 ~edge_port:(fun p -> p = 0) ()))
  in
  let ctrl =
    Netupd.Controller.create ~sched ~switches:8 ~agents
      ~initial:(Netupd.Policy.with_version (Netupd.Policy.ring_uniform ~switches:8 ~name:"cw" ()) 1)
      ~seed:42 ()
  in
  let split = Netupd.Policy.ring_threshold ~switches:8 ~ccw_at:5 ~name:"split5" () in
  let cw = Netupd.Policy.ring_uniform ~switches:8 ~name:"cw" () in
  let i = ref 0 in
  Test.make ~name:"netupd/commit-latency"
    (Staged.stage (fun () ->
         incr i;
         Netupd.Controller.propose ctrl (if !i land 1 = 0 then cw else split);
         Eventsim.Scheduler.run sched))

(* E23 kernel: one full (short) fat-tree scale run per iteration, at a
   given shard count — the sequential-vs-sharded throughput curve as
   whole-simulation wall time. The simulated work is identical at
   every shard count (conformance guarantees it), so the estimates are
   directly comparable; on a single-core host the sharded entries
   price the synchronization overhead rather than any speedup. *)
let make_e23_run ~shards =
  let topo = Experiments.E23_scale.topo () in
  Test.make ~name:(Printf.sprintf "e23/scale-run-%dshard" shards)
    (Staged.stage (fun () ->
         let cfg =
           Experiments.E23_scale.scenario ~shards ~record_trace:false ~seed:42
             ~until:Experiments.E23_scale.golden_until ()
         in
         ignore (Parsim.run cfg topo : Parsim.result)))

let bench_e23_shards = List.map (fun shards -> make_e23_run ~shards) [ 1; 2; 4 ]

(* E27 kernel: the k=16 datacenter scenario at golden size (320
   switches, ~15k streaming Zipf flows, arrival digest on) — prices
   the adaptive-horizon round protocol and the streaming flow source
   at a topology 16x the E23 tree. Same caveat as E23: on a
   single-core host the sharded entries measure synchronization
   overhead, not speedup. *)
let make_e27_run ~shards =
  let topo = Experiments.E27_dcscale.topo () in
  Test.make ~name:(Printf.sprintf "e27/scale-run-%dshard" shards)
    (Staged.stage (fun () ->
         let cfg =
           Experiments.E27_dcscale.scenario ~shards ~seed:42
             ~knobs:Experiments.E27_dcscale.golden_knobs ()
         in
         ignore (Parsim.run cfg topo : Parsim.result)))

let bench_e27_shards = List.map (fun shards -> make_e27_run ~shards) [ 1; 4 ]

let benchmarks =
  Test.make_grouped ~name:"evpp"
    ([
      bench_event_dispatch;
      bench_event_dispatch_metrics_off;
      bench_cms;
      bench_efsm;
      bench_cep_pattern;
      bench_resmodel;
      bench_shared_register;
      bench_packet_path;
      bench_packet_path_heap;
      bench_scheduler_heap;
      bench_scheduler_wheel;
      bench_scheduler_ladder;
      bench_pifo;
      bench_lpm;
      bench_frame;
      bench_meter;
      bench_netupd_commit;
    ]
    @ bench_e23_shards @ bench_e27_shards)

let run_microbenches () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] benchmarks in
  let results = Analyze.all ols instance raw in
  Printf.printf "\nMicrobenchmarks (ns per run, OLS estimate)\n";
  Printf.printf "==========================================\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter (fun (name, est) -> Printf.printf "  %-40s %12.1f ns/run\n" name est) rows;
  rows

(* Persist the OLS estimates as a flat JSON baseline that
   [compare.exe old new] can diff across commits. *)
let write_json ~path rows =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"evpp-bench/1\",\n  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name est (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "\nbaseline written to %s (%d kernels)\n" path n

(* Chaos kernel: one packet over a link, with or without a
   zero-probability perturbation installed — the disabled-faults cost
   on the per-packet fast path. *)
let make_link_send ~name ~perturb () =
  let sched = Eventsim.Scheduler.create () in
  let delivered = ref 0 in
  let ep =
    { Tmgr.Link.deliver = (fun _ -> incr delivered); notify_status = (fun ~up:_ -> ()) }
  in
  let link = Tmgr.Link.create ~sched ~delay:10 ~a:ep ~b:ep () in
  if perturb then
    Faults.Perturb.attach ~rng:(Stats.Rng.create ~seed:1) Faults.Perturb.none link;
  let pkt = mk_pkt () in
  ( Test.make ~name
      (Staged.stage (fun () ->
           Tmgr.Link.send link ~from_a:true pkt;
           Eventsim.Scheduler.run sched)),
    link,
    delivered )

(* --quick: the tier-1 smoke pass.  Runs only the event-dispatch kernel
   with and without a disabled metrics registry attached, checks the
   disabled path really records nothing, and trips only on a gross
   overhead regression (the headline <5% number comes from the full
   harness; short quotas are too noisy for a tight assert). *)
let run_quick () =
  let reg = Obs.Metrics.create ~enabled:false () in
  let c = Obs.Metrics.counter reg "smoke.count" in
  Obs.Metrics.Counter.incr c;
  assert (Obs.Metrics.Counter.value c = 0);
  let estimate test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"quick" [ test ]) in
    let results = Analyze.all ols instance raw in
    let est = ref nan in
    Hashtbl.iter
      (fun _ r ->
        match Analyze.OLS.estimates r with Some [ e ] -> est := e | _ -> ())
      results;
    !est
  in
  let base = estimate (make_event_dispatch ~name:"event-dispatch" ()) in
  let off =
    estimate
      (make_event_dispatch ~name:"event-dispatch-metrics-off"
         ~metrics:(Obs.Metrics.create ~enabled:false ()) ())
  in
  let overhead = (off -. base) /. base in
  Printf.printf "event-dispatch:              %10.1f ns/run\n" base;
  Printf.printf "event-dispatch, metrics off: %10.1f ns/run\n" off;
  Printf.printf "disabled-metrics overhead:   %+10.1f%%\n" (100. *. overhead);
  assert (Float.is_finite base && base > 0.);
  assert (Float.is_finite off && off > 0.);
  assert (overhead < 0.5);
  (* Chaos smoke: a zero-probability perturbation must perturb nothing
     (functional check, exact) and stay cheap on the per-packet path
     (measured, loose bound as above). *)
  let bare_test, bare_link, _ = make_link_send ~name:"link-send" ~perturb:false () in
  let off_test, off_link, off_delivered =
    make_link_send ~name:"link-send-faults-off" ~perturb:true ()
  in
  let bare = estimate bare_test in
  let faults_off = estimate off_test in
  assert (!off_delivered > 0);
  assert (!off_delivered = Tmgr.Link.delivered off_link);
  assert (Tmgr.Link.perturb_drops off_link = 0);
  assert (Tmgr.Link.perturb_dups off_link = 0);
  assert (Tmgr.Link.perturb_delays off_link = 0);
  assert (Tmgr.Link.lost bare_link = 0 && Tmgr.Link.lost off_link = 0);
  let chaos_overhead = (faults_off -. bare) /. bare in
  Printf.printf "link-send:                   %10.1f ns/run\n" bare;
  Printf.printf "link-send, faults off:       %10.1f ns/run\n" faults_off;
  Printf.printf "disabled-faults overhead:    %+10.1f%%\n" (100. *. chaos_overhead);
  assert (Float.is_finite bare && bare > 0.);
  assert (Float.is_finite faults_off && faults_off > 0.);
  assert (chaos_overhead < 0.5);
  (* Backend smoke: heap, wheel and ladder run the same event-dispatch
     kernel. The wheel is the default backend and the ladder the
     adaptive alternative, so both must stay in the heap's ballpark —
     trip if either drifts past 2x. (The bound was 1.5x when dispatch
     itself dominated the kernel; the SoA/epoch-cache refactor halved
     that shared term, so the same absolute backend gap now shows up as
     a larger ratio — all three backends got faster in absolute ns.) *)
  let heap =
    estimate
      (make_event_dispatch ~name:"event-dispatch-heap" ~backend:Eventsim.Sched_backend.Heap ())
  in
  let wheel =
    estimate
      (make_event_dispatch ~name:"event-dispatch-wheel" ~backend:Eventsim.Sched_backend.Wheel ())
  in
  let ladder =
    estimate
      (make_event_dispatch ~name:"event-dispatch-ladder" ~backend:Eventsim.Sched_backend.Ladder
         ())
  in
  Printf.printf "event-dispatch, heap:        %10.1f ns/run\n" heap;
  Printf.printf "event-dispatch, wheel:       %10.1f ns/run\n" wheel;
  Printf.printf "event-dispatch, ladder:      %10.1f ns/run\n" ladder;
  assert (Float.is_finite heap && heap > 0.);
  assert (Float.is_finite wheel && wheel > 0.);
  assert (Float.is_finite ladder && ladder > 0.);
  assert (wheel <= 2.0 *. heap);
  assert (ladder <= 2.0 *. heap);
  print_endline "bench --quick OK"

let json_path () =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  if Array.exists (( = ) "--quick") Sys.argv then run_quick ()
  else
    match json_path () with
    | Some path ->
        (* Baseline mode: microbenches only, estimates persisted. *)
        write_json ~path (run_microbenches ())
    | None ->
        let seed =
          match Sys.getenv_opt "EVPP_SEED" with Some s -> int_of_string s | None -> 42
        in
        Printf.printf "Event-Driven Packet Processing — paper reproduction harness (seed %d)\n"
          seed;
        List.iter
          (fun (e : Experiments.Registry.entry) ->
            e.Experiments.Registry.run_and_print ~metrics:None ~seed)
          Experiments.Registry.all;
        ignore (run_microbenches ());
        print_newline ()
