(* evsim: run the paper-reproduction experiments from the command line. *)

let list_cmd () =
  Experiments.Registry.(
    List.iter
      (fun e ->
        Printf.printf "%-18s %-4s %s\n" e.name e.experiment_id e.paper_artifact)
      all)

let set_backend name =
  match Eventsim.Sched_backend.of_string name with
  | Some b ->
      Eventsim.Sched_backend.default := b;
      None
  | None ->
      Some
        (Printf.sprintf "unknown scheduler backend %S; try: %s" name
           (String.concat ", " Eventsim.Sched_backend.names))

let set_resil_policy name =
  match Resil.Policy.of_string name with
  | Some p ->
      Resil.Policy.default := p;
      None
  | None ->
      Some
        (Printf.sprintf "unknown resilience policy %S; try: %s" name
           (String.concat ", " Resil.Policy.names))

let set_shed_watermark = function
  | None -> None
  | Some w when w > 0 ->
      Resil.Shedder.default_watermark := Some w;
      None
  | Some w -> Some (Printf.sprintf "--shed-watermark must be positive, got %d" w)

let configure ~backend ~policy ~watermark =
  match set_backend backend with
  | Some _ as e -> e
  | None -> (
      match set_resil_policy policy with
      | Some _ as e -> e
      | None -> set_shed_watermark watermark)

(* Convert stray exceptions from command bodies — notably a fail-fast
   supervisor abort — into a clean usage-style failure instead of
   Cmdliner's internal-error backtrace. *)
let guarded f =
  match f () with
  | r -> r
  | exception Resil.Supervisor.Failed (name, exn) ->
      `Error
        ( false,
          Printf.sprintf
            "handler %S failed and --resil-policy is fail-fast (inner: %s); rerun \
             with --resil-policy quarantine to recover instead"
            name (Printexc.to_string exn) )
  | exception Sys_error msg -> `Error (false, msg)
  | exception Failure msg -> `Error (false, msg)
  | exception exn -> `Error (false, Printexc.to_string exn)

(* --shards N narrows the sharded experiments' sweep (E23-E27) to
   {1, N}: the sequential reference plus the requested sharding, which
   is what the conformance check needs. --shards 0 asks Parsim to pick
   the shard count itself (recommended_domain_count, capped by the
   topology) — the sweep becomes {1, auto}. Other experiments are
   single-switch and ignore it. *)
let set_shards = function
  | None -> None
  | Some n when n >= 0 ->
      let counts = if n = 1 then [ 1 ] else [ 1; n ] in
      Experiments.E23_scale.default_shard_counts := counts;
      Experiments.E24_efsm.default_shard_counts := counts;
      Experiments.E25_cep.default_shard_counts := counts;
      Experiments.E26_netupd.default_shard_counts := counts;
      Experiments.E27_dcscale.default_shard_counts := counts;
      None
  | Some n -> Some (Printf.sprintf "--shards must be non-negative, got %d" n)

let run_cmd backend policy watermark shards name seed metrics_out =
  match configure ~backend ~policy ~watermark with
  | Some err -> `Error (false, err)
  | None ->
  match set_shards shards with
  | Some err -> `Error (false, err)
  | None ->
  guarded @@ fun () ->
  let metrics =
    match metrics_out with None -> None | Some _ -> Some (Obs.Metrics.create ())
  in
  let finish () =
    (match (metrics_out, metrics) with
    | Some path, Some reg ->
        Experiments.Report.metrics_summary reg;
        Obs.Metrics.write_json ~path reg;
        Printf.printf "\nmetrics written to %s (%d series)\n" path
          (Obs.Metrics.cardinality reg)
    | _ -> ());
    `Ok ()
  in
  match name with
  | None ->
      List.iter
        (fun (e : Experiments.Registry.entry) ->
          e.Experiments.Registry.run_and_print ~metrics ~seed)
        Experiments.Registry.all;
      finish ()
  | Some n -> (
      match Experiments.Registry.find n with
      | Some e ->
          e.Experiments.Registry.run_and_print ~metrics ~seed;
          finish ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; try: %s" n
                (String.concat ", " (Experiments.Registry.names ())) ))

let chaos_cmd backend policy watermark shards seed profile metrics_out =
  match configure ~backend ~policy ~watermark with
  | Some err -> `Error (false, err)
  | None ->
  guarded @@ fun () ->
  match shards with
  | Some n when n < 1 -> `Error (false, Printf.sprintf "--shards must be positive, got %d" n)
  | Some n when n > 1 ->
      (* Sharded chaos: the E23 fat tree under per-shard fault engines
         (intra-shard links only — cross-shard links cannot fail). *)
      let r = Experiments.E23_scale.chaos ~shards:n ~seed () in
      Experiments.E23_scale.print_chaos r;
      (match metrics_out with
      | Some path ->
          let reg = Obs.Metrics.create () in
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg "e23.chaos.injected") r.injected;
          Obs.Metrics.write_json ~path reg
      | None -> ());
      if Experiments.E23_scale.chaos_passed r then `Ok ()
      else `Error (false, "sharded chaos run failed a degradation check")
  | _ -> (
  match Faults.Profile.of_string profile with
  | None ->
      `Error
        ( false,
          Printf.sprintf "unknown profile %S; try: %s" profile
            (String.concat ", " Faults.Profile.names) )
  | Some profile ->
      let metrics = Obs.Metrics.create () in
      let r = Experiments.E21_chaos.run ~metrics ~seed ~profile () in
      Experiments.E21_chaos.print r;
      let json = Obs.Metrics.to_json metrics in
      (match metrics_out with
      | Some path -> Obs.Metrics.write_json ~path metrics
      | None -> ());
      (* The digest makes two invocations byte-comparable without
         shipping the full snapshot to stdout. *)
      Printf.printf "\nmetrics series:                      %d\n"
        (Obs.Metrics.cardinality metrics);
      Printf.printf "metrics digest:                      %s\n"
        (Digest.to_hex (Digest.string json));
      let ok =
        r.Experiments.E21_chaos.balance = 0
        && r.Experiments.E21_chaos.final_consistent
        && r.Experiments.E21_chaos.received > 0
        && Experiments.E21_chaos.exercised r
      in
      if ok then `Ok () else `Error (false, "chaos run failed a degradation check"))

let p4_cmd backend file duration_us =
  match set_backend backend with
  | Some err -> `Error (false, err)
  | None ->
  let source =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match P4dsl.Loader.load ~name:file source with
  | exception P4dsl.Parser.Parse_error (msg, pos) ->
      `Error (false, Printf.sprintf "%s:%d:%d: %s" file pos.P4dsl.Ast.line pos.P4dsl.Ast.col msg)
  | exception P4dsl.Lexer.Lex_error (msg, pos) ->
      `Error (false, Printf.sprintf "%s:%d:%d: %s" file pos.P4dsl.Ast.line pos.P4dsl.Ast.col msg)
  | exception P4dsl.Loader.Load_error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
  | spec ->
      let module Scheduler = Eventsim.Scheduler in
      let module Sim_time = Eventsim.Sim_time in
      let module Event_switch = Evcore.Event_switch in
      let sched = Scheduler.create () in
      let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
      let sw = Event_switch.create ~sched ~config ~program:spec () in
      for p = 0 to 3 do
        Event_switch.set_port_tx sw ~port:p (fun _ -> ())
      done;
      Event_switch.on_notification sw (fun ~time msg ->
          Printf.printf "[%.3fus] notify <- %s
" (Sim_time.to_us time) msg);
      (* A generic exercise workload: 3 CBR flows across the input
         ports. *)
      for i = 0 to 2 do
        ignore
          (Workloads.Traffic.cbr ~sched
             ~flow:
               (Netcore.Flow.make
                  ~src:(Netcore.Ipv4_addr.host ~subnet:1 i)
                  ~dst:(Netcore.Ipv4_addr.host ~subnet:2 i)
                  ~src_port:(1000 + i) ~dst_port:80 ())
             ~pkt_bytes:500 ~rate_gbps:1.
             ~stop:(Sim_time.us duration_us)
             ~send:(fun pkt -> Event_switch.inject sw ~port:i pkt)
             ())
      done;
      Scheduler.run ~until:(Sim_time.us duration_us + Sim_time.us 100) sched;
      Printf.printf "program:        %s
" (Event_switch.program_name sw);
      List.iter
        (fun cls ->
          let n = Event_switch.handled sw cls in
          if n > 0 then Printf.printf "%-24s %d handled
" (Devents.Event.cls_name cls) n)
        Devents.Event.all_classes;
      Printf.printf "state:          %d bits
"
        (Pisa.Register_alloc.total_bits (Event_switch.alloc sw));
      `Ok ()

open Cmdliner

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let name_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"Experiment name.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record simulator metrics (scheduler, event switch, traffic manager) \
           during the run and write a JSON snapshot to $(docv).")

let sched_backend =
  Arg.(
    value
    & opt string (Eventsim.Sched_backend.to_string !Eventsim.Sched_backend.default)
    & info [ "sched-backend" ] ~docv:"BACKEND"
        ~doc:
          (Printf.sprintf
             "Scheduler event-queue backend: %s. Both fire events in the same \
              order, so outputs are byte-identical; the choice is a \
              performance knob."
             (String.concat ", " Eventsim.Sched_backend.names)))

let resil_policy =
  Arg.(
    value
    & opt string (Resil.Policy.to_string !Resil.Policy.default)
    & info [ "resil-policy" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf
             "Handler supervision policy: %s. $(b,fail-fast) re-raises handler \
              faults (the unsupervised behaviour), $(b,drop-event) absorbs each \
              fault at the cost of its event, $(b,quarantine) unsubscribes the \
              tripped handler and re-enables it after exponential backoff."
             (String.concat ", " Resil.Policy.names)))

let shed_watermark =
  Arg.(
    value
    & opt (some int) None
    & info [ "shed-watermark" ] ~docv:"DEPTH"
        ~doc:
          "Enable graceful event shedding: once the event-merger backlog \
           reaches $(docv) entries, telemetry event classes are shed first, \
           control classes at 2x$(docv), packet classes at 4x$(docv). Off by \
           default.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Parallel shard count for the sharded experiments. On $(b,run), the \
           sharded experiments (E23-E27) compare the sequential run against \
           an $(docv)-shard run (default sweep: 1, 2, 4 ... ). $(docv) = 0 \
           lets the engine pick the shard count from the machine's \
           recommended domain count, capped by the topology size. On \
           $(b,chaos) with $(docv) > 1, runs the sharded fat-tree chaos \
           scenario with one fault engine per shard instead of E21.")

let run_term =
  Term.(
    ret
      (const run_cmd $ sched_backend $ resil_policy $ shed_watermark $ shards_arg $ name_arg
     $ seed $ metrics_out))

let run_info =
  Cmd.info "run" ~doc:"Run one experiment (or all when no name is given)."

let list_term = Term.(const list_cmd $ const ())
let list_info = Cmd.info "list" ~doc:"List available experiments."

let chaos_profile =
  Arg.(
    value
    & opt string "flaky-links"
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:
          (Printf.sprintf "Fault profile: %s."
             (String.concat ", " Faults.Profile.names)))

let chaos_term =
  Term.(
    ret
      (const chaos_cmd $ sched_backend $ resil_policy $ shed_watermark $ shards_arg $ seed
     $ chaos_profile $ metrics_out))

let chaos_info =
  Cmd.info "chaos"
    ~doc:
      "Run the fault-injection experiment (E21): microburst detection and fast \
       re-route under a seeded chaos profile. Exits non-zero if a degradation \
       check fails."

let p4_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"P4 source file.")

let p4_duration =
  Arg.(value & opt int 1000 & info [ "duration-us" ] ~doc:"Traffic duration in microseconds.")

let p4_term = Term.(ret (const p4_cmd $ sched_backend $ p4_file $ p4_duration))

let p4_info =
  Cmd.info "p4" ~doc:"Load an event-driven P4 program and run it under generic traffic."

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info = Cmd.info "evsim" ~version:"1.0" ~doc:"Event-driven packet processing experiments." in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            Cmd.v run_info run_term;
            Cmd.v list_info list_term;
            Cmd.v chaos_info chaos_term;
            Cmd.v p4_info p4_term;
          ]))
