// microburst.p4 — the paper's Section 2 worked example, as accepted by
// the evpp P4 subset (see P4dsl.Loader for the binding rules).
//
// Run it with:  dune exec examples/p4_demo.exe examples/microburst.p4

const NUM_REGS = 1024;
const FLOW_THRESH = 20000;

shared_register<bit<32>>(NUM_REGS) bufSize_reg;

// Ingress Packet Event Logic
control Ingress(pkt, enq_meta, deq_meta) {
  bit<32> bufSize;
  bit<32> flowID;
  apply {
    // compute flowID
    hash(hdr.ip.src ++ hdr.ip.dst, flowID);
    flowID = flowID % NUM_REGS;
    // initialize enq & deq metadata for this pkt
    enq_meta.flowID = flowID;
    enq_meta.pkt_len = pkt.len;
    deq_meta.flowID = flowID;
    deq_meta.pkt_len = pkt.len;
    // read buffer occupancy of this flow
    bufSize_reg.read(flowID, bufSize);
    // detect microburst
    if (bufSize > FLOW_THRESH) {
      /* microburst culprit! */
      mark(1);
      notify("microburst-culprit");
    }
    forward(3);
  }
}

// Enqueue Event Logic
control Enqueue(enq_data_t meta) {
  bit<32> bufSize;
  apply {
    // increment buffer occupancy of this flow
    bufSize_reg.read(meta.flowID, bufSize);
    bufSize = bufSize + meta.pkt_len;
    bufSize_reg.write(meta.flowID, bufSize);
  }
}

// Dequeue Event Logic
control Dequeue(deq_data_t meta) {
  bit<32> bufSize;
  apply {
    bufSize_reg.read(meta.flowID, bufSize);
    bufSize = bufSize - meta.pkt_len;
    bufSize_reg.write(meta.flowID, bufSize);
  }
}
