module Sim_time = Eventsim.Sim_time
module Program = Evcore.Program
module Event = Devents.Event
module P = Cep.Pattern

type t = { det : Cep.Detector.t }

(* Per-port buffer events carry queue occupancy as the attribute and
   the port as the correlation key (the detector's defaults). *)
let pattern ~ramp ~depth ~window =
  P.within window
    (P.seq
       [
         P.count ramp (P.atom ~label:"hot-enqueue" ~lo:depth Event.Buffer_enqueue);
         P.atom ~label:"overflow" Event.Buffer_overflow;
       ])

let program ?slots ?timeout ?(ramp = 8) ?(depth = 16) ?(window = Sim_time.us 50)
    ?(tick_period = Sim_time.us 10) ?on_match ~out_port () =
  let c = Cep.Compile.compile ~tick_period (pattern ~ramp ~depth ~window) in
  let forward ctx pkt =
    ignore (ctx : Program.ctx);
    Program.Forward (out_port pkt)
  in
  let spec, det =
    Cep.Detector.program ?slots ?timeout ~forward ?on_match ~name:"burst-forensics"
      ~compiled:c ()
  in
  (spec, { det })

let detector t = t.det
let bursts t = Cep.Detector.matches t.det
let culprit_ports t = List.map fst (Cep.Detector.match_log t.det)
