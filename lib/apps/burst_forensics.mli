(** Microburst forensics as a compiled CEP pattern, correlated per
    output port: [within window (seq [count ramp (enqueue >= depth);
    overflow])] — a queue that climbs past [depth] packets [ramp]
    times and then actually drops, all inside [window], is a microburst
    that caused loss; a slow ramp whose window expires before the
    overflow is congestion, not a burst, and is not reported. Distinct
    from {!Microburst} (which byte-counts one culprit flow): this one
    sequences buffer {e events} and reports the afflicted port. *)

type t

val program :
  ?slots:int ->
  ?timeout:Eventsim.Sim_time.t ->
  ?ramp:int ->
  ?depth:int ->
  ?window:Eventsim.Sim_time.t ->
  ?tick_period:Eventsim.Sim_time.t ->
  ?on_match:(key:int -> time:int -> unit) ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** Defaults: 8 enqueues at occupancy >= 16 pkts followed by an
    overflow inside 50 µs, 10 µs detector tick. [on_match]'s [key] is
    the port. *)

val pattern : ramp:int -> depth:int -> window:Eventsim.Sim_time.t -> Cep.Pattern.t
val detector : t -> Cep.Detector.t
val bursts : t -> int
val culprit_ports : t -> int list
(** One entry per detected burst, oldest first. *)
