module Packet = Netcore.Packet
module Program = Evcore.Program
module Efsm = Pisa.Efsm

let tick = 1
let s_conform = 0
let s_throttled = 1

type t = {
  mutable efsm : Efsm.t option;
  mutable forwarded : int;
  mutable dropped : int;
  mutable windows : int;
}

let efsm t = Option.get t.efsm
let forwarded t = t.forwarded
let dropped t = t.dropped
let windows t = t.windows

(* r0 accumulates bytes within the window, r1 counts throttled drops,
   r2 counts throttle episodes. The timer broadcasts [tick] to every
   flow (Efsm.step_all), resetting the window; data packets present
   their length (always > tick, so the two inputs cannot collide). *)
let transitions ~limit_bytes =
  [
    {
      Efsm.from_state = s_conform;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const tick);
      next_state = s_conform;
      actions = [ { Efsm.reg = 0; update = Efsm.Set (Efsm.Const 0) } ];
    };
    {
      Efsm.from_state = s_throttled;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const tick);
      next_state = s_conform;
      actions = [ { Efsm.reg = 0; update = Efsm.Set (Efsm.Const 0) } ];
    };
    {
      Efsm.from_state = s_conform;
      guard = Efsm.Cmp (Efsm.Ge, Efsm.Reg 0, Efsm.Const limit_bytes);
      next_state = s_throttled;
      actions = [ { Efsm.reg = 2; update = Efsm.Sat_add (Efsm.Reg 2, Efsm.Const 1) } ];
    };
    {
      Efsm.from_state = s_conform;
      guard = Efsm.Always;
      next_state = s_conform;
      actions = [ { Efsm.reg = 0; update = Efsm.Sat_add (Efsm.Reg 0, Efsm.Input) } ];
    };
    {
      Efsm.from_state = s_throttled;
      guard = Efsm.Always;
      next_state = s_throttled;
      actions = [ { Efsm.reg = 1; update = Efsm.Sat_add (Efsm.Reg 1, Efsm.Const 1) } ];
    };
  ]

let program ?(slots = 1024) ?(window = Eventsim.Sim_time.us 100) ~limit_bytes ~out_port () =
  if limit_bytes <= tick then invalid_arg "Flow_enforcer.program: limit_bytes must exceed 1";
  let t = { efsm = None; forwarded = 0; dropped = 0; windows = 0 } in
  let spec ctx =
    let enf =
      Efsm.create ~alloc:ctx.Program.alloc ~name:"enforcer" ~entries:slots ~nregs:3
        ~transitions:(transitions ~limit_bytes) ()
    in
    t.efsm <- Some enf;
    let window_timer = ctx.Program.add_timer ~period:window in
    let ingress ctx pkt =
      ctx.Program.consume_budget 1;
      let o =
        Efsm.step enf ~now:(ctx.Program.now ()) ~key:(Stateful_fw.key_of pkt)
          ~input:(Packet.len pkt)
      in
      if o.Efsm.state = s_throttled then begin
        t.dropped <- t.dropped + 1;
        Program.Drop
      end
      else begin
        t.forwarded <- t.forwarded + 1;
        Program.Forward (out_port pkt)
      end
    in
    let timer _ctx (ev : Devents.Event.timer_event) =
      if ev.Devents.Event.id = window_timer then begin
        t.windows <- t.windows + 1;
        Efsm.step_all enf ~input:tick
      end
    in
    Program.make ~name:"flow-enforcer" ~ingress ~timer ()
  in
  (spec, t)
