(** Per-flow rate enforcer on the EFSM extern: each flow accumulates
    bytes into a window register; crossing [limit_bytes] within one
    window moves the flow to a throttled state where every packet is
    dropped until the next window tick. The tick is the OPP-style
    {e global transition}: a timer event broadcasts an input word to
    every tracked flow ({!Pisa.Efsm.step_all}), resetting windows and
    releasing throttled flows in one sweep. *)

val tick : int
(** The broadcast input word (1; packet lengths are always larger). *)

val s_conform : int
val s_throttled : int

type t

val efsm : t -> Pisa.Efsm.t
(** Only valid after the program has been installed on a switch. *)

val forwarded : t -> int
val dropped : t -> int
val windows : t -> int
(** Window ticks delivered so far. *)

val program :
  ?slots:int ->
  ?window:Eventsim.Sim_time.t ->
  limit_bytes:int ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [window] defaults to 100 µs. [limit_bytes] is the per-flow byte
    budget per window; raises [Invalid_argument] if it is not > 1. *)
