module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Event = Devents.Event
module Program = Evcore.Program
module Shared_register = Devents.Shared_register

type detection = { flow_id : int; occupancy_bytes : int; time : int }

type t = {
  mutable detections : detection list;
  mutable count : int;
  mutable reg : Shared_register.t option;
  over : bool array;
  slots : int;
}

let detections t = List.rev t.detections
let detection_count t = t.count

let state_bits t =
  match t.reg with None -> 0 | Some r -> Shared_register.total_bits r

let occupancy t ~flow_slot =
  match t.reg with None -> 0 | Some r -> Shared_register.read r flow_slot

let program ?(slots = 1024) ~threshold_bytes ~out_port () =
  let t = { detections = []; count = 0; reg = None; over = Array.make slots false; slots } in
  let spec ctx =
    (* shared_register<bit<32>>(NUM_REGS) bufSize_reg; *)
    let buf_size_reg =
      Program.shared_register ctx ~name:"flowBufSize" ~entries:slots ~width:32
    in
    t.reg <- Some buf_size_reg;
    (* One-entry memo over the address key: packets arrive in flow
       bursts, and [Hashes.mix64] chains boxed [Int64] ops, so
       re-mixing an unchanged key would put ~20 words of Int64 boxing
       on every packet. The memoised slot is exactly
       [fold_range (Flow.hash_addresses flow) slots] — hash values are
       unchanged, only recomputation is skipped. *)
    let last_key = ref (-2) in
    let last_slot = ref 0 in
    (* Same trick for the verdict: [Program.Forward port] is immutable,
       so consecutive packets to one egress port can share a single
       decision block instead of allocating one each. *)
    let last_fwd_port = ref (-1) in
    let last_fwd = ref Program.Drop in
    let ingress ctx pkt =
      (* hash(hdr.ip.src ++ hdr.ip.dst, flowID) *)
      let key = Packet.flow_key pkt in
      let flow_id =
        if key < 0 then 0
        else if key = !last_key then !last_slot
        else begin
          let slot = Netcore.Hashes.fold_range (Netcore.Hashes.mix64 key) t.slots in
          last_key := key;
          last_slot := slot;
          slot
        end
      in
      pkt.Packet.meta.Packet.flow_id <- flow_id;
      (* initialize enq & deq metadata for this pkt *)
      pkt.Packet.meta.Packet.enq_meta.(0) <- flow_id;
      pkt.Packet.meta.Packet.enq_meta.(1) <- Packet.len pkt;
      pkt.Packet.meta.Packet.deq_meta.(0) <- flow_id;
      pkt.Packet.meta.Packet.deq_meta.(1) <- Packet.len pkt;
      (* read buffer occupancy of this flow; detect microburst *)
      let occ = Shared_register.read buf_size_reg flow_id in
      if occ > threshold_bytes then begin
        if not t.over.(flow_id) then begin
          t.over.(flow_id) <- true;
          t.count <- t.count + 1;
          t.detections <-
            { flow_id; occupancy_bytes = occ; time = ctx.Program.now () } :: t.detections
        end
      end
      else t.over.(flow_id) <- false;
      let port = out_port pkt in
      if port <> !last_fwd_port then begin
        last_fwd_port := port;
        last_fwd := Program.Forward port
      end;
      !last_fwd
    in
    let enqueue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add buf_size_reg Shared_register.Enq_side ev.Event.meta.(0)
        ev.Event.meta.(1)
    in
    let dequeue _ctx (ev : Event.buffer_event) =
      Shared_register.event_add buf_size_reg Shared_register.Deq_side ev.Event.meta.(0)
        (-ev.Event.meta.(1))
    in
    Program.make ~name:"microburst" ~ingress ~enqueue ~dequeue ()
  in
  (spec, t)
