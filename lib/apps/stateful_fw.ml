module Packet = Netcore.Packet
module Tcp = Netcore.Tcp
module Flow = Netcore.Flow
module Program = Evcore.Program
module Efsm = Pisa.Efsm

(* Input word presented to the EFSM, classified from the parsed TCP
   header (RST > SYN > FIN priority; an ACK/PSH/payload segment is
   data). [input_non_tcp] matches no transition, so packets without a
   TCP header are always blocked — metadata marks cannot spoof a
   session. *)
let input_data = 0
let input_syn = 1
let input_fin = 2
let input_rst = 3
let input_non_tcp = 4
let s_new = 0
let s_syn = 1
let s_est = 2
let s_closed = 3

type t = {
  mutable efsm : Efsm.t option;
  mutable allowed : int;
  mutable blocked : int;
}

let efsm t = Option.get t.efsm
let allowed t = t.allowed
let blocked t = t.blocked

(* SYN opens, the handshake-completing ACK establishes, FIN closes and
   RST aborts; anything out of order has no matching transition (a
   guard miss) and the packet is blocked. r0 counts the session's
   forwarded packets; the SYN self-loop counts retransmits into r1. *)
let transitions =
  [
    {
      Efsm.from_state = s_new;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_syn);
      next_state = s_syn;
      actions = [ { Efsm.reg = 0; update = Efsm.Set (Efsm.Const 1) } ];
    };
    {
      Efsm.from_state = s_syn;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_syn);
      next_state = s_syn;
      actions = [ { Efsm.reg = 1; update = Efsm.Sat_add (Efsm.Reg 1, Efsm.Const 1) } ];
    };
    {
      Efsm.from_state = s_syn;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_data);
      next_state = s_est;
      actions = [ { Efsm.reg = 0; update = Efsm.Sat_add (Efsm.Reg 0, Efsm.Const 1) } ];
    };
    {
      Efsm.from_state = s_syn;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_fin);
      next_state = s_closed;
      actions = [];
    };
    {
      Efsm.from_state = s_syn;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_rst);
      next_state = s_closed;
      actions = [];
    };
    {
      Efsm.from_state = s_est;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_data);
      next_state = s_est;
      actions = [ { Efsm.reg = 0; update = Efsm.Sat_add (Efsm.Reg 0, Efsm.Const 1) } ];
    };
    {
      Efsm.from_state = s_est;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_fin);
      next_state = s_closed;
      actions = [ { Efsm.reg = 0; update = Efsm.Sat_add (Efsm.Reg 0, Efsm.Const 1) } ];
    };
    {
      Efsm.from_state = s_est;
      guard = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const input_rst);
      next_state = s_closed;
      actions = [];
    };
  ]

let key_of pkt =
  match Packet.flow pkt with Some flow -> Flow.pack flow land max_int | None -> 0

let input_of pkt =
  match pkt.Packet.l4 with
  | Packet.Tcp tcp ->
      let has f = tcp.Tcp.flags land f <> 0 in
      if has Tcp.flag_rst then input_rst
      else if has Tcp.flag_syn then input_syn
      else if has Tcp.flag_fin then input_fin
      else input_data
  | Packet.Udp _ | Packet.No_l4 -> input_non_tcp

let program ?(slots = 1024) ?timeout ?sweep_period ~out_port () =
  let timeout = Option.value timeout ~default:(Eventsim.Sim_time.us 500) in
  let sweep_period = Option.value sweep_period ~default:timeout in
  let t = { efsm = None; allowed = 0; blocked = 0 } in
  let spec ctx =
    let fw =
      Efsm.create ~alloc:ctx.Program.alloc ~timeout ~name:"fw" ~entries:slots ~nregs:2
        ~transitions ()
    in
    t.efsm <- Some fw;
    let sweep_timer = ctx.Program.add_timer ~period:sweep_period in
    let ingress ctx pkt =
      ctx.Program.consume_budget 1;
      let o =
        Efsm.step fw ~now:(ctx.Program.now ()) ~key:(key_of pkt) ~input:(input_of pkt)
      in
      if o.Efsm.fired then begin
        t.allowed <- t.allowed + 1;
        Program.Forward (out_port pkt)
      end
      else begin
        t.blocked <- t.blocked + 1;
        Program.Drop
      end
    in
    let timer ctx (ev : Devents.Event.timer_event) =
      if sweep_timer = ev.Devents.Event.id then
        ignore (Efsm.sweep fw ~now:(ctx.Program.now ()) : int)
    in
    Program.make ~name:"stateful-fw" ~ingress ~timer ()
  in
  (spec, t)
