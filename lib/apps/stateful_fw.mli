(** Stateful firewall on the per-flow EFSM extern (OPP's flagship
    example): SYN opens a session, the handshake-completing ACK
    establishes it, data sustains it, FIN or RST closes it.
    Out-of-order packets — data before SYN, anything after close —
    match no transition and are dropped, which also exercises the
    extern's guard-miss accounting. Session contexts idle past
    [timeout] are evicted by a sweep riding the switch's timer events,
    so eviction is supervised and shed-safe.

    Guards are driven by the {e parsed TCP header}: {!input_of}
    classifies each packet's real SYN/ACK/FIN/RST flag bits into one
    of the input words below. Packets without a TCP header classify as
    {!input_non_tcp}, which matches no transition — the [meta.mark]
    side channel plays no role, so a mark-spoofed packet cannot fake
    an established session. *)

val input_data : int
(** 0 — a TCP segment with none of SYN/FIN/RST set (ACK, PSH,
    payload). *)

val input_syn : int  (** 1 — SYN set (and not RST). *)

val input_fin : int  (** 2 — FIN set (and not SYN/RST). *)

val input_rst : int  (** 3 — RST set; aborts the session. *)

val input_non_tcp : int
(** 4 — no TCP header; matches no transition, always blocked. *)

val s_new : int
val s_syn : int
val s_est : int
val s_closed : int

type t

val efsm : t -> Pisa.Efsm.t
(** The underlying extern (counters, state lookups). Only valid after
    the program has been installed on a switch. *)

val allowed : t -> int
(** Packets forwarded (a transition fired). *)

val blocked : t -> int
(** Packets dropped (no transition matched). *)

val key_of : Netcore.Packet.t -> int
(** The flow key the firewall tracks sessions by. *)

val input_of : Netcore.Packet.t -> int
(** Classify a packet's parsed TCP flags (RST > SYN > FIN priority)
    into the EFSM input word; {!input_non_tcp} without a TCP header. *)

val program :
  ?slots:int ->
  ?timeout:Eventsim.Sim_time.t ->
  ?sweep_period:Eventsim.Sim_time.t ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [slots] bounds tracked sessions (LRU eviction beyond it; default
    1024). [timeout] (default 500 µs) is the idle eviction threshold
    and must be positive; [sweep_period] defaults to [timeout]. *)
