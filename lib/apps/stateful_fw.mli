(** Stateful firewall on the per-flow EFSM extern (OPP's flagship
    example): SYN opens a session, data packets establish and sustain
    it, FIN closes it. Out-of-order packets — data before SYN,
    anything after close — match no transition and are dropped, which
    also exercises the extern's guard-miss accounting. Session
    contexts idle past [timeout] are evicted by a sweep riding the
    switch's timer events, so eviction is supervised and shed-safe.

    Flags travel in [Packet.meta.mark] (the application-marking
    channel): {!flag_syn}, {!flag_fin}, or {!flag_data} for payload
    packets — a UDP-like rendering of connection tracking, matching
    the paper's metadata-carrying events. *)

val flag_data : int  (** 0 *)

val flag_syn : int  (** 1 *)

val flag_fin : int  (** 2 *)

val s_new : int
val s_syn : int
val s_est : int
val s_closed : int

type t

val efsm : t -> Pisa.Efsm.t
(** The underlying extern (counters, state lookups). Only valid after
    the program has been installed on a switch. *)

val allowed : t -> int
(** Packets forwarded (a transition fired). *)

val blocked : t -> int
(** Packets dropped (no transition matched). *)

val key_of : Netcore.Packet.t -> int
(** The flow key the firewall tracks sessions by. *)

val program :
  ?slots:int ->
  ?timeout:Eventsim.Sim_time.t ->
  ?sweep_period:Eventsim.Sim_time.t ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** [slots] bounds tracked sessions (LRU eviction beyond it; default
    1024). [timeout] (default 500 µs) is the idle eviction threshold;
    [sweep_period] defaults to [timeout]. *)
