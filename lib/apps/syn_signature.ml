module Packet = Netcore.Packet
module Tcp = Netcore.Tcp
module Sim_time = Eventsim.Sim_time
module Program = Evcore.Program
module P = Cep.Pattern

type t = { det : Cep.Detector.t }

let attr_other = 0
let attr_syn = 1

(* A connection-opening SYN (not SYN-ACK, not RST): the flag
   combination a flood forges. Parsed from the TCP header — the same
   hardening as the stateful firewall, so a marked or flag-less packet
   can neither trigger nor suppress the signature. *)
let pkt_attr pkt =
  match pkt.Packet.l4 with
  | Packet.Tcp tcp ->
      let has f = tcp.Tcp.flags land f <> 0 in
      if has Tcp.flag_syn && (not (has Tcp.flag_ack)) && not (has Tcp.flag_rst) then attr_syn
      else attr_other
  | Packet.Udp _ | Packet.No_l4 -> attr_other

(* Correlate by victim: the destination address. *)
let pkt_key pkt =
  match pkt.Packet.ip with
  | Some ip -> Netcore.Ipv4_addr.to_int ip.Netcore.Ipv4.dst
  | None -> 0

let pattern ~syns ~window =
  P.within window
    (P.count syns (P.atom ~label:"syn" ~lo:attr_syn ~hi:attr_syn Devents.Event.Ingress_packet))

let program ?slots ?timeout ?(syns = 16) ?(window = Sim_time.us 100)
    ?(tick_period = Sim_time.us 10) ?on_match ~out_port () =
  let c = Cep.Compile.compile ~tick_period (pattern ~syns ~window) in
  let forward ctx pkt =
    ignore (ctx : Program.ctx);
    Program.Forward (out_port pkt)
  in
  let spec, det =
    Cep.Detector.program ?slots ?timeout ~pkt_attr ~pkt_key ~forward ?on_match
      ~name:"syn-signature" ~compiled:c ()
  in
  (spec, { det })

let detector t = t.det
let alarms t = Cep.Detector.matches t.det
let victims t = List.map fst (Cep.Detector.match_log t.det)
