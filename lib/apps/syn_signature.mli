(** DDoS SYN-signature detector as a compiled CEP pattern:
    [within window (count syns SYN)] correlated by destination address
    — [syns] connection-opening SYNs (SYN set, ACK/RST clear, parsed
    from the real TCP header) aimed at one victim inside [window]
    raise an alarm for that victim. The countdown window expires
    automata that stall below the threshold, so slow organic connection
    setup does not accumulate into a false alarm. *)

type t

val program :
  ?slots:int ->
  ?timeout:Eventsim.Sim_time.t ->
  ?syns:int ->
  ?window:Eventsim.Sim_time.t ->
  ?tick_period:Eventsim.Sim_time.t ->
  ?on_match:(key:int -> time:int -> unit) ->
  out_port:(Netcore.Packet.t -> int) ->
  unit ->
  Evcore.Program.spec * t
(** Defaults: 16 SYNs inside 100 µs, 10 µs detector tick. [timeout]
    arms idle instance GC (off by default); [on_match] fires per alarm
    with the victim address as [key]. *)

val pattern : syns:int -> window:Eventsim.Sim_time.t -> Cep.Pattern.t

val pkt_attr : Netcore.Packet.t -> int
(** 1 for a connection-opening SYN, 0 otherwise. *)

val pkt_key : Netcore.Packet.t -> int
(** Victim (destination address) correlation key. *)

val detector : t -> Cep.Detector.t
val alarms : t -> int
val victims : t -> int list
(** Destination addresses with alarms, oldest first (duplicates kept —
    one entry per alarm). *)
