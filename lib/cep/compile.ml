module Efsm = Pisa.Efsm
module Event = Devents.Event

(* Pattern annotated with register indices: one counter per Count, one
   countdown per Within, assigned in pre-order. *)
type node =
  | NAtom of Pattern.atom
  | NSeq of node array
  | NConj of node array
  | NDisj of node array
  | NCount of int * int * node  (* n, counter reg *)
  | NWithin of int * int * node  (* window ticks, countdown reg *)

let annotate ~tick_period pat =
  let next = ref 0 in
  let fresh () =
    let r = !next in
    incr next;
    r
  in
  let rec go p =
    match (p : Pattern.t) with
    | Pattern.Atom a -> NAtom a
    | Pattern.Seq l -> NSeq (Array.of_list (List.map go l))
    | Pattern.Conj l -> NConj (Array.of_list (List.map go l))
    | Pattern.Disj l -> NDisj (Array.of_list (List.map go l))
    | Pattern.Count (n, p) ->
        let r = fresh () in
        NCount (n, r, go p)
    | Pattern.Within (w, p) ->
        let r = fresh () in
        NWithin (Pattern.ticks_of_window ~tick_period w, r, go p)
  in
  let root = go pat in
  (root, !next)

let rec subtree_regs = function
  | NAtom _ -> []
  | NSeq l | NConj l | NDisj l -> List.concat_map subtree_regs (Array.to_list l)
  | NCount (_, r, p) -> r :: subtree_regs p
  | NWithin (_, r, p) -> r :: subtree_regs p

let reset_actions node =
  List.map (fun r -> { Efsm.reg = r; update = Efsm.Set (Efsm.Const 0) }) (subtree_regs node)

(* Progress configuration: the structural part of a detector instance's
   state. Counter/countdown values live in registers, not here. *)
type prog =
  | PAtom
  | PSeq of int * prog
  | PConj of (bool * prog) array  (* (branch done?, branch progress) *)
  | PDisj of prog array
  | PCount of prog
  | PWithin of bool * prog  (* (countdown armed?, progress) *)

let rec initial = function
  | NAtom _ -> PAtom
  | NSeq l -> PSeq (0, initial l.(0))
  | NConj l -> PConj (Array.map (fun n -> (false, initial n)) l)
  | NDisj l -> PDisj (Array.map initial l)
  | NCount (_, _, p) -> PCount (initial p)
  | NWithin (_, _, p) -> PWithin (false, initial p)

(* One way the frontier can consume an atom occurrence: extra register
   guards, register updates, and the resulting configuration (None =
   the node completed). Alternatives are ordered specific-first. *)
type alt = { guards : Efsm.guard list; actions : Efsm.action list; out : prog option }

let with_arr arr i v =
  let a = Array.copy arr in
  a.(i) <- v;
  a

(* Frontier of a node under a configuration: every atom occurrence that
   can consume the next event, left to right — the interpreter's scan
   order, which first-match-wins row order must reproduce. *)
let rec frontier node prog : (Pattern.atom * alt list) list =
  match (node, prog) with
  | NAtom a, PAtom -> [ (a, [ { guards = []; actions = []; out = None } ]) ]
  | NSeq l, PSeq (i, pi) ->
      let map_alt alt =
        match alt.out with
        | Some p' -> { alt with out = Some (PSeq (i, p')) }
        | None ->
            if i = Array.length l - 1 then alt (* the whole Seq completes; parent resets *)
            else
              {
                alt with
                actions = alt.actions @ reset_actions l.(i);
                out = Some (PSeq (i + 1, initial l.(i + 1)));
              }
      in
      List.map (fun (a, alts) -> (a, List.map map_alt alts)) (frontier l.(i) pi)
  | NConj l, PConj branches ->
      List.concat
        (List.init (Array.length l) (fun j ->
             let done_j, pj = branches.(j) in
             if done_j then []
             else
               let others_done =
                 Array.for_all Fun.id (Array.mapi (fun k (d, _) -> k = j || d) branches)
               in
               let map_alt alt =
                 match alt.out with
                 | Some p' -> { alt with out = Some (PConj (with_arr branches j (false, p'))) }
                 | None ->
                     if others_done then alt (* last branch home: Conj completes *)
                     else
                       {
                         alt with
                         actions = alt.actions @ reset_actions l.(j);
                         out = Some (PConj (with_arr branches j (true, initial l.(j))));
                       }
               in
               List.map (fun (a, alts) -> (a, List.map map_alt alts)) (frontier l.(j) pj)))
  | NDisj l, PDisj progs ->
      List.concat
        (List.init (Array.length l) (fun j ->
             let map_alt alt =
               match alt.out with
               | Some p' -> { alt with out = Some (PDisj (with_arr progs j p')) }
               | None -> alt (* first branch to complete wins; parent resets all *)
             in
             List.map (fun (a, alts) -> (a, List.map map_alt alts)) (frontier l.(j) progs.(j))))
  | NCount (n, c, p), PCount pp ->
      let map_alts alts =
        List.concat_map
          (fun alt ->
            match alt.out with
            | Some p' -> [ { alt with out = Some (PCount p') } ]
            | None ->
                (* One repetition done: either the n-th (complete,
                   guarded on the counter) or not (reset the
                   sub-pattern, bump the counter). *)
                [
                  {
                    guards = alt.guards @ [ Efsm.Cmp (Efsm.Ge, Efsm.Reg c, Efsm.Const (n - 1)) ];
                    actions = alt.actions;
                    out = None;
                  };
                  {
                    guards = alt.guards;
                    actions =
                      alt.actions @ reset_actions p
                      @ [ { Efsm.reg = c; update = Efsm.Add (Efsm.Reg c, Efsm.Const 1) } ];
                    out = Some (PCount (initial p));
                  };
                ])
          alts
      in
      List.map (fun (a, alts) -> (a, map_alts alts)) (frontier p pp)
  | NWithin (w, r, p), PWithin (armed, pp) ->
      let arm = if armed then [] else [ { Efsm.reg = r; update = Efsm.Set (Efsm.Const w) } ] in
      let map_alt alt =
        match alt.out with
        | Some p' -> { alt with actions = alt.actions @ arm; out = Some (PWithin (true, p')) }
        | None -> alt (* completed within the window; parent resets the countdown *)
      in
      List.map (fun (a, alts) -> (a, List.map map_alt alts)) (frontier p pp)
  | _ -> assert false

(* Armed windows of a configuration, in pre-order (outermost first):
   countdown register, subtree registers to clear on expiry, and the
   configuration after the region resets. *)
let rec armed_windows node prog (rebuild : prog -> prog) : (int * int list * prog) list =
  match (node, prog) with
  | NAtom _, _ -> []
  | NSeq l, PSeq (i, pi) -> armed_windows l.(i) pi (fun p' -> rebuild (PSeq (i, p')))
  | NConj l, PConj branches ->
      List.concat
        (List.init (Array.length l) (fun j ->
             let done_j, pj = branches.(j) in
             if done_j then []
             else
               armed_windows l.(j) pj (fun p' -> rebuild (PConj (with_arr branches j (false, p'))))))
  | NDisj l, PDisj progs ->
      List.concat
        (List.init (Array.length l) (fun j ->
             armed_windows l.(j) progs.(j) (fun p' -> rebuild (PDisj (with_arr progs j p')))))
  | NCount (_, _, p), PCount pp -> armed_windows p pp (fun p' -> rebuild (PCount p'))
  | NWithin (_, r, p), PWithin (true, pp) ->
      (r, r :: subtree_regs p, rebuild (PWithin (false, initial p)))
      :: armed_windows p pp (fun p' -> rebuild (PWithin (true, p')))
  | NWithin (_, _, p), PWithin (false, pp) ->
      armed_windows p pp (fun p' -> rebuild (PWithin (false, p')))
  | _ -> assert false

type t = {
  pattern : Pattern.t;
  tick_period : Eventsim.Sim_time.t;
  nregs : int;
  states : int;
  accept : int;
  state_bits : int;
  transitions : Efsm.transition list;
}

let max_states = 512

let atom_guard (a : Pattern.atom) =
  let base = Event.cls_index a.cls * Pattern.attr_base in
  Efsm.All
    [
      Efsm.Cmp (Efsm.Ge, Efsm.Input, Efsm.Const (base + a.lo));
      Efsm.Cmp (Efsm.Le, Efsm.Input, Efsm.Const (base + a.hi));
    ]

let guard_of atom extra =
  match extra with
  | [] -> atom_guard atom
  | gs -> Efsm.All (atom_guard atom :: gs)

let tick_guard extra =
  let g = Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const Pattern.tick_input) in
  match extra with [] -> g | gs -> Efsm.All (g :: gs)

let compile ?(tick_period = Eventsim.Sim_time.us 1) pat =
  let root, nregs = annotate ~tick_period pat in
  let all_resets = reset_actions root in
  (* State 0 is the initial configuration, state 1 the accept state
     (reserved up front so completion rows can sit at their frontier
     position — first-match-wins needs them in scan order). Explored
     configurations are interned in discovery order from 2. *)
  let accept = 1 in
  let ids : (prog, int) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 2 in
  let queue = Queue.create () in
  let intern p =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = if Hashtbl.length ids = 0 then 0 else !next_id in
        if id > max_states then
          invalid_arg
            (Printf.sprintf "Cep.Compile: pattern %s exceeds %d states"
               (Pattern.to_string pat) max_states);
        if id > 0 then incr next_id;
        Hashtbl.replace ids p id;
        Queue.push (id, p) queue;
        id
  in
  let init = initial root in
  ignore (intern init : int);
  let rows = ref [] in
  let add ~from ~guard ~next ~actions =
    rows := { Efsm.from_state = from; guard; next_state = next; actions } :: !rows
  in
  while not (Queue.is_empty queue) do
    let from, p = Queue.pop queue in
    (* Event rows, in frontier order; completions fire into accept with
       every register cleared. *)
    List.iter
      (fun (a, alts) ->
        List.iter
          (fun alt ->
            match alt.out with
            | Some p' ->
                add ~from ~guard:(guard_of a alt.guards) ~next:(intern p') ~actions:alt.actions
            | None ->
                add ~from ~guard:(guard_of a alt.guards) ~next:accept
                  ~actions:(alt.actions @ all_resets))
          alts)
      (frontier root p);
    (* Tick rows: expiry per armed window (outermost first), then the
       decrement fallback. *)
    let armed = armed_windows root p Fun.id in
    if armed <> [] then begin
      let armed_regs = List.map (fun (r, _, _) -> r) armed in
      List.iter
        (fun (r, region_regs, p') ->
          let resets =
            List.map (fun reg -> { Efsm.reg; update = Efsm.Set (Efsm.Const 0) }) region_regs
          in
          let decrements =
            List.filter_map
              (fun reg ->
                if List.mem reg region_regs then None
                else Some { Efsm.reg; update = Efsm.Sat_sub (Efsm.Reg reg, Efsm.Const 1) })
              armed_regs
          in
          add ~from
            ~guard:(tick_guard [ Efsm.Cmp (Efsm.Le, Efsm.Reg r, Efsm.Const 1) ])
            ~next:(intern p') ~actions:(resets @ decrements))
        armed;
      add ~from ~guard:(tick_guard [])
        ~next:from
        ~actions:
          (List.map
             (fun reg -> { Efsm.reg; update = Efsm.Sat_sub (Efsm.Reg reg, Efsm.Const 1) })
             armed_regs)
    end
  done;
  (* The accept state behaves like a fresh start: duplicate state 0's
     rows (the initial configuration has no armed windows, so these are
     all event rows). *)
  let transitions = List.rev !rows in
  let accept_rows =
    List.filter_map
      (fun tr ->
        if tr.Efsm.from_state = 0 then Some { tr with Efsm.from_state = accept } else None)
      transitions
  in
  let transitions = transitions @ accept_rows in
  let states = Hashtbl.length ids + 1 in
  let max_label = max accept (!next_id - 1) in
  let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
  {
    pattern = pat;
    tick_period;
    nregs;
    states;
    accept;
    state_bits = bits max_label;
    transitions;
  }

let efsm ?alloc ?clock ?timeout ?(entries = 1024) ~name t () =
  Efsm.create ?alloc ?clock ?timeout ~state_bits:t.state_bits ~name ~entries ~nregs:t.nregs
    ~transitions:t.transitions ()

let is_match t (o : Efsm.outcome) = o.Efsm.fired && o.Efsm.state = t.accept
