(** Pattern → EFSM compiler.

    Compilation explores the pattern's reachable progress
    configurations (which {!Seq} component is active, which
    {!Conj}/{!Disj} branches have completed, which {!Within} windows
    are armed) and interns each as one EFSM state label; counter and
    countdown values stay out of the state space — they live in flow
    registers, referenced by guarded transitions:

    - an atom becomes an input-interval guard
      ([cls * attr_base + lo .. cls * attr_base + hi]);
    - [count n] allocates one register; completing the sub-pattern
      splits into a completion row guarded [reg >= n-1] and an
      increment row (first-match order keeps this deterministic);
    - [within w] allocates one countdown register armed when its
      region consumes its first event; the detector's tick — broadcast
      to every flow via {!Pisa.Efsm.step_all} — decrements armed
      countdowns, and a row guarded [reg <= 1] resets the expired
      region (idle whole-flow contexts are reclaimed separately by the
      EFSM's timeout sweep machinery);
    - completing the whole pattern jumps to a dedicated accept state
      whose outgoing rows mirror the start state's, with every
      register cleared — so a detector shim reports a match exactly
      when a step fires into [accept].

    Rows for one configuration are emitted in frontier order (the
    interpreter's scan order), so the EFSM's first-match-wins rule
    implements the same deterministic choice as {!Interp}. *)

type t = {
  pattern : Pattern.t;
  tick_period : Eventsim.Sim_time.t;
  nregs : int;
  states : int;  (** configuration count, including the accept state *)
  accept : int;  (** the accept state label *)
  state_bits : int;
  transitions : Pisa.Efsm.transition list;
}

val compile : ?tick_period:Eventsim.Sim_time.t -> Pattern.t -> t
(** Default tick period: 1 µs. Raises [Invalid_argument] if the
    configuration space exceeds {!max_states} (deeply nested
    conjunctions of counts). *)

val max_states : int

val efsm :
  ?alloc:Pisa.Register_alloc.t ->
  ?clock:(unit -> int) ->
  ?timeout:Eventsim.Sim_time.t ->
  ?entries:int ->
  name:string ->
  t ->
  unit ->
  Pisa.Efsm.t
(** Instantiate the compiled automaton as a flow table with one
    detector instance per correlation key ([entries] defaults to
    1024). *)

val is_match : t -> Pisa.Efsm.outcome -> bool
(** A step completed the pattern: it fired into the accept state. *)
