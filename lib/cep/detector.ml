module Event = Devents.Event
module Packet = Netcore.Packet
module Program = Evcore.Program
module Efsm = Pisa.Efsm

type t = {
  c : Compile.t;
  mutable efsm : Efsm.t option;
  mutable matches : int;
  mutable events_fed : int;
  mutable log : (int * int) list;  (* (key, time), newest first *)
}

let efsm t = Option.get t.efsm
let compiled t = t.c
let matches t = t.matches
let events_fed t = t.events_fed
let match_log t = List.rev t.log

let default_meta_attr = function
  | Event.Enqueue ev | Event.Dequeue ev | Event.Overflow ev -> ev.Event.occupancy_pkts
  | Event.Underflow _ -> 0
  | Event.Transmitted ev -> ev.Event.pkt_len
  | Event.Timer ev -> ev.Event.id
  | Event.Link_change ev -> if ev.Event.up then 1 else 0
  | Event.Control ev -> ev.Event.opcode
  | Event.User ev -> ev.Event.data

let default_meta_key = function
  | Event.Enqueue ev | Event.Dequeue ev | Event.Overflow ev -> ev.Event.port
  | Event.Underflow ev -> ev.Event.port
  | Event.Transmitted ev -> ev.Event.port
  | Event.Timer ev -> ev.Event.id
  | Event.Link_change ev -> ev.Event.port
  | Event.Control ev -> ev.Event.opcode
  | Event.User ev -> ev.Event.tag

let program ?(slots = 1024) ?timeout ?sweep_period ?pkt_attr ?pkt_key ?meta_attr ?meta_key
    ?forward ?on_match ~name ~compiled:c () =
  let pkt_attr = Option.value pkt_attr ~default:Packet.len in
  let meta_attr = Option.value meta_attr ~default:default_meta_attr in
  let meta_key = Option.value meta_key ~default:default_meta_key in
  let forward =
    Option.value forward
      ~default:(fun _ctx (pkt : Packet.t) -> Program.Forward pkt.Packet.meta.Packet.ingress_port)
  in
  let sweep_period = match sweep_period with Some p -> Some p | None -> timeout in
  let t = { c; efsm = None; matches = 0; events_fed = 0; log = [] } in
  let used = Pattern.classes c.Compile.pattern in
  let uses cls = List.exists (Event.cls_equal cls) used in
  let spec ctx =
    let det =
      Compile.efsm ~alloc:ctx.Program.alloc ?timeout ~entries:slots ~name c ()
    in
    t.efsm <- Some det;
    let feed ctx ~key ~cls ~attr =
      ctx.Program.consume_budget 1;
      t.events_fed <- t.events_fed + 1;
      let key = key land max_int in
      let input = Pattern.encode { Pattern.cls; attr } in
      let o = Efsm.step det ~now:(ctx.Program.now ()) ~key ~input in
      if Compile.is_match c o then begin
        t.matches <- t.matches + 1;
        let time = ctx.Program.now () in
        t.log <- (key, time) :: t.log;
        match on_match with None -> () | Some f -> f ~key ~time
      end
    in
    let pkt_key_default (pkt : Packet.t) = pkt.Packet.meta.Packet.ingress_port in
    let feed_pkt ctx cls pkt =
      let key = match pkt_key with Some f -> f pkt | None -> pkt_key_default pkt in
      feed ctx ~key ~cls ~attr:(pkt_attr pkt)
    in
    let feed_meta ctx cls ev = feed ctx ~key:(meta_key ev) ~cls ~attr:(meta_attr ev) in
    let pkt_handler cls ctx pkt =
      if uses cls then feed_pkt ctx cls pkt;
      forward ctx pkt
    in
    let tick_timer = ctx.Program.add_timer ~period:c.Compile.tick_period in
    let sweep_timer =
      match sweep_period with
      | Some p when timeout <> None -> Some (ctx.Program.add_timer ~period:p)
      | _ -> None
    in
    let timer ctx (ev : Event.timer_event) =
      if ev.Event.id = tick_timer then begin
        ctx.Program.consume_budget 1;
        Efsm.step_all det ~input:Pattern.tick_input
      end
      else if sweep_timer = Some ev.Event.id then
        ignore (Efsm.sweep det ~now:(ctx.Program.now ()) : int)
      else if uses Event.Timer_expiration then feed_meta ctx Event.Timer_expiration (Event.Timer ev)
    in
    let opt cls f = if uses cls then Some f else None in
    let egress ctx ~port pkt =
      (let key =
         match pkt_key with Some f -> f pkt | None -> port
       in
       feed ctx ~key ~cls:Event.Egress_packet ~attr:(pkt_attr pkt));
      Some pkt
    in
    {
      Program.name;
      ingress = pkt_handler Event.Ingress_packet;
      (* Explicit so recirculated/generated packets are not misfed
         through the ingress handler's class. *)
      recirculated = Some (pkt_handler Event.Recirculated_packet);
      generated = Some (pkt_handler Event.Generated_packet);
      egress = opt Event.Egress_packet egress;
      enqueue = opt Event.Buffer_enqueue (fun ctx ev -> feed_meta ctx Event.Buffer_enqueue (Event.Enqueue ev));
      dequeue = opt Event.Buffer_dequeue (fun ctx ev -> feed_meta ctx Event.Buffer_dequeue (Event.Dequeue ev));
      overflow = opt Event.Buffer_overflow (fun ctx ev -> feed_meta ctx Event.Buffer_overflow (Event.Overflow ev));
      underflow =
        opt Event.Buffer_underflow (fun ctx ev ->
            feed_meta ctx Event.Buffer_underflow (Event.Underflow ev));
      transmitted =
        opt Event.Packet_transmitted (fun ctx ev ->
            feed_meta ctx Event.Packet_transmitted (Event.Transmitted ev));
      timer = Some timer;
      link_change =
        opt Event.Link_status_change (fun ctx ev ->
            feed_meta ctx Event.Link_status_change (Event.Link_change ev));
      control = opt Event.Control_plane (fun ctx ev -> feed_meta ctx Event.Control_plane (Event.Control ev));
      user = opt Event.User_event (fun ctx ev -> feed_meta ctx Event.User_event (Event.User ev));
    }
  in
  (spec, t)
