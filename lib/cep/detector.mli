(** Runtime detector: a compiled pattern as an ordinary
    {!Evcore.Program}, with one automaton instance per correlation key
    backed by a {!Pisa.Efsm} flow table.

    Every event class the pattern mentions gets a handler that renders
    the event to a (key, input-word) pair and steps the EFSM; a step
    that fires into the accept state is a match. A hidden timer
    broadcasts the detector tick to every instance via
    {!Pisa.Efsm.step_all} (driving window countdowns), and an optional
    [timeout] arms the extern's idle sweep so abandoned partial
    matches are garbage-collected through the same supervised,
    shed-safe timer machinery as every other EFSM program.

    Correlation ([correlate ~key] in CEP terms) is the key extractor:
    by default metadata events correlate by port ([Control_plane] by
    opcode, [User_event] by tag, [Timer_expiration] by timer id) and
    packet events by ingress port ([Egress_packet] by egress port);
    [pkt_key] / [meta_key] substitute e.g. a flow or destination-host
    selector. [pkt_attr] / [meta_attr] override the attribute
    extractors the same way (defaults: queue occupancy for buffer
    events, packet length for packet and transmit events, 1/0 for link
    up/down, opcode / data / timer id for control / user / timer
    events). *)

type t

val program :
  ?slots:int ->
  ?timeout:Eventsim.Sim_time.t ->
  ?sweep_period:Eventsim.Sim_time.t ->
  ?pkt_attr:(Netcore.Packet.t -> int) ->
  ?pkt_key:(Netcore.Packet.t -> int) ->
  ?meta_attr:(Devents.Event.t -> int) ->
  ?meta_key:(Devents.Event.t -> int) ->
  ?forward:(Evcore.Program.ctx -> Netcore.Packet.t -> Evcore.Program.decision) ->
  ?on_match:(key:int -> time:int -> unit) ->
  name:string ->
  compiled:Compile.t ->
  unit ->
  Evcore.Program.spec * t
(** [slots] bounds concurrent instances (LRU beyond; default 1024).
    [timeout] (off by default) evicts instances idle that long —
    partial-match GC via the EFSM sweep; [sweep_period] defaults to
    [timeout]. [forward] decides packets (default: forward on the
    ingress port, i.e. reflect — detectors are usually installed as
    taps next to a routing [forward]). [on_match] fires at every
    pattern completion. *)

val efsm : t -> Pisa.Efsm.t
(** The flow table (state lookups, [pisa.efsm.*] counters). Only valid
    after install. *)

val compiled : t -> Compile.t
val matches : t -> int
val events_fed : t -> int

val match_log : t -> (int * int) list
(** [(key, time)] per match, oldest first. *)
