(* Progress with counters and countdowns stored inline — deliberately a
   different mechanism from the compiled automaton's register bank, so
   conformance between the two is a real check on the compiler. *)
type iprog =
  | IAtom
  | ISeq of int * iprog
  | IConj of (bool * iprog) array
  | IDisj of iprog array
  | ICount of int * iprog  (* completed repetitions *)
  | IWithin of int option * iprog  (* remaining ticks when armed *)

type t = {
  pattern : Pattern.t;
  tick_period : Eventsim.Sim_time.t;
  mutable prog : iprog;
  mutable matches : int;
}

let rec init (p : Pattern.t) =
  match p with
  | Pattern.Atom _ -> IAtom
  | Pattern.Seq l -> ISeq (0, init (List.hd l))
  | Pattern.Conj l -> IConj (Array.of_list (List.map (fun p -> (false, init p)) l))
  | Pattern.Disj l -> IDisj (Array.of_list (List.map init l))
  | Pattern.Count (_, p) -> ICount (0, init p)
  | Pattern.Within (_, p) -> IWithin (None, init p)

let create ?(tick_period = Eventsim.Sim_time.us 1) pattern =
  { pattern; tick_period; prog = init pattern; matches = 0 }

let reset t = t.prog <- init t.pattern
let matches t = t.matches

let with_arr arr i v =
  let a = Array.copy arr in
  a.(i) <- v;
  a

let nth l i = List.nth l i

(* Consume one event at the frontier, scanning left to right — the same
   order the compiler emits rows in. [None] = not consumed (no frontier
   atom matches); [Some None] = the node completed; [Some (Some p')] =
   progressed. *)
let rec consume (pat : Pattern.t) prog v ~tick_period : iprog option option =
  match (pat, prog) with
  | Pattern.Atom a, IAtom -> if Pattern.atom_matches a v then Some None else None
  | Pattern.Seq l, ISeq (i, pi) -> (
      match consume (nth l i) pi v ~tick_period with
      | None -> None
      | Some (Some p') -> Some (Some (ISeq (i, p')))
      | Some None ->
          if i = List.length l - 1 then Some None
          else Some (Some (ISeq (i + 1, init (nth l (i + 1))))))
  | Pattern.Conj l, IConj branches ->
      let rec scan j =
        if j = Array.length branches then None
        else
          let done_j, pj = branches.(j) in
          if done_j then scan (j + 1)
          else
            match consume (nth l j) pj v ~tick_period with
            | None -> scan (j + 1)
            | Some (Some p') -> Some (Some (IConj (with_arr branches j (false, p'))))
            | Some None ->
                let others_done =
                  Array.for_all Fun.id (Array.mapi (fun k (d, _) -> k = j || d) branches)
                in
                if others_done then Some None
                else Some (Some (IConj (with_arr branches j (true, init (nth l j)))))
      in
      scan 0
  | Pattern.Disj l, IDisj progs ->
      let rec scan j =
        if j = Array.length progs then None
        else
          match consume (nth l j) progs.(j) v ~tick_period with
          | None -> scan (j + 1)
          | Some (Some p') -> Some (Some (IDisj (with_arr progs j p')))
          | Some None -> Some None
      in
      scan 0
  | Pattern.Count (n, p), ICount (cnt, pp) -> (
      match consume p pp v ~tick_period with
      | None -> None
      | Some (Some p') -> Some (Some (ICount (cnt, p')))
      | Some None ->
          if cnt >= n - 1 then Some None else Some (Some (ICount (cnt + 1, init p))))
  | Pattern.Within (w, p), IWithin (rem, pp) -> (
      match consume p pp v ~tick_period with
      | None -> None
      | Some None -> Some None
      | Some (Some p') ->
          let rem =
            match rem with
            | Some _ -> rem
            | None -> Some (Pattern.ticks_of_window ~tick_period w)
          in
          Some (Some (IWithin (rem, p'))))
  | _ -> assert false

let feed t v =
  match consume t.pattern t.prog v ~tick_period:t.tick_period with
  | None -> false
  | Some (Some p') ->
      t.prog <- p';
      false
  | Some None ->
      t.matches <- t.matches + 1;
      t.prog <- init t.pattern;
      true

(* Tick: mirror the compiled tick rows exactly. Armed windows are
   scanned in pre-order; the FIRST with at most one tick remaining
   expires — its region resets — and every other armed window (outside
   the expired region) decrements, flooring at zero. With no expiry,
   all armed windows decrement. *)
let tick t =
  (* Pass 1: pre-order index of the first expiring armed window. *)
  let idx = ref (-1) in
  let expired = ref (-1) in
  let rec scan (pat : Pattern.t) prog =
    if !expired < 0 then
      match (pat, prog) with
      | Pattern.Atom _, IAtom -> ()
      | Pattern.Seq l, ISeq (i, pi) -> scan (nth l i) pi
      | Pattern.Conj l, IConj branches ->
          Array.iteri (fun j (done_j, pj) -> if not done_j then scan (nth l j) pj) branches
      | Pattern.Disj l, IDisj progs -> Array.iteri (fun j pj -> scan (nth l j) pj) progs
      | Pattern.Count (_, p), ICount (_, pp) -> scan p pp
      | Pattern.Within (_, p), IWithin (rem, pp) -> (
          match rem with
          | Some r ->
              incr idx;
              if r <= 1 && !expired < 0 then expired := !idx else scan p pp
          | None -> scan p pp)
      | _ -> assert false
  in
  scan t.pattern t.prog;
  (* Pass 2: rebuild — reset the expired region (skipping its inside),
     decrement every other armed window. Traversal order matches pass
     1, so the running index lines up. *)
  let k = !expired in
  let idx = ref (-1) in
  let rec rebuild (pat : Pattern.t) prog =
    match (pat, prog) with
    | Pattern.Atom _, IAtom -> IAtom
    | Pattern.Seq l, ISeq (i, pi) -> ISeq (i, rebuild (nth l i) pi)
    | Pattern.Conj l, IConj branches ->
        IConj
          (Array.mapi
             (fun j (done_j, pj) -> if done_j then (done_j, pj) else (done_j, rebuild (nth l j) pj))
             branches)
    | Pattern.Disj l, IDisj progs -> IDisj (Array.mapi (fun j pj -> rebuild (nth l j) pj) progs)
    | Pattern.Count (n, p), ICount (cnt, pp) ->
        ignore n;
        ICount (cnt, rebuild p pp)
    | Pattern.Within (_, p), IWithin (rem, pp) -> (
        match rem with
        | Some r ->
            incr idx;
            if !idx = k then IWithin (None, init p) (* region expires; inside untouched *)
            else IWithin (Some (max 0 (r - 1)), rebuild p pp)
        | None -> IWithin (None, rebuild p pp))
    | _ -> assert false
  in
  t.prog <- rebuild t.pattern t.prog
