(** Reference interpreter for one detector instance (one correlation
    key): a direct recursive execution of the pattern semantics
    documented in {!Pattern}, sharing no mechanism with {!Compile} —
    counters and countdowns live inline in the progress tree rather
    than in EFSM registers. The QCheck conformance property drives
    random event streams through both and requires identical verdicts
    event-for-event. *)

type t

val create : ?tick_period:Eventsim.Sim_time.t -> Pattern.t -> t
(** Default tick period 1 µs — keep it equal to the compiled
    automaton's. *)

val feed : t -> Pattern.view -> bool
(** Consume one event; [true] iff it completed the pattern (the
    instance then restarts from scratch). *)

val tick : t -> unit
(** One detector tick: decrement armed windows; the first expired
    window in pre-order resets its region (exactly one per tick). *)

val matches : t -> int
(** Total completions so far. *)

val reset : t -> unit
