module Event = Devents.Event

type view = { cls : Event.cls; attr : int }
type atom = { label : string; cls : Event.cls; lo : int; hi : int }

type t =
  | Atom of atom
  | Seq of t list
  | Conj of t list
  | Disj of t list
  | Count of int * t
  | Within of Eventsim.Sim_time.t * t

let attr_base = 1 lsl 20
let clamp_attr a = if a < 0 then 0 else if a >= attr_base then attr_base - 1 else a
let encode (v : view) = (Event.cls_index v.cls * attr_base) + clamp_attr v.attr
let tick_input = Event.num_classes * attr_base

let atom_matches (a : atom) (v : view) =
  Event.cls_equal a.cls v.cls && clamp_attr v.attr >= clamp_attr a.lo
  && clamp_attr v.attr <= clamp_attr a.hi

let atom ?(lo = 0) ?(hi = attr_base - 1) ~label cls =
  if clamp_attr lo > clamp_attr hi then
    invalid_arg (Printf.sprintf "Cep.Pattern.atom %s: empty attribute interval" label);
  Atom { label; cls; lo = clamp_attr lo; hi = clamp_attr hi }

let nonempty ctor = function
  | [] -> invalid_arg (Printf.sprintf "Cep.Pattern.%s: empty pattern list" ctor)
  | l -> l

let seq l = Seq (nonempty "seq" l)
let conj l = Conj (nonempty "conj" l)
let disj l = Disj (nonempty "disj" l)

let count n p =
  if n < 1 then invalid_arg "Cep.Pattern.count: n must be at least 1";
  Count (n, p)

let within w p =
  if w <= 0 then invalid_arg "Cep.Pattern.within: window must be positive";
  Within (w, p)

let ticks_of_window ~tick_period w =
  if tick_period <= 0 then invalid_arg "Cep.Pattern.ticks_of_window: tick_period must be positive";
  max 1 ((w + tick_period - 1) / tick_period)

let rec atoms = function
  | Atom a -> [ a ]
  | Seq l | Conj l | Disj l -> List.concat_map atoms l
  | Count (_, p) | Within (_, p) -> atoms p

let classes p =
  List.sort_uniq
    (fun a b -> compare (Event.cls_index a) (Event.cls_index b))
    (List.map (fun a -> a.cls) (atoms p))

let rec size = function
  | Atom _ -> 1
  | Seq l | Conj l | Disj l -> 1 + List.fold_left (fun acc p -> acc + size p) 0 l
  | Count (_, p) | Within (_, p) -> 1 + size p

let rec pp fmt p =
  let list sep l = Fmt.list ~sep:(fun fmt () -> Fmt.string fmt sep) pp fmt l in
  match p with
  | Atom a ->
      if a.lo = 0 && a.hi = attr_base - 1 then Fmt.string fmt a.label
      else Fmt.pf fmt "%s[%d..%d]" a.label a.lo a.hi
  | Seq l ->
      Fmt.string fmt "seq(";
      list "; " l;
      Fmt.string fmt ")"
  | Conj l ->
      Fmt.string fmt "conj(";
      list " & " l;
      Fmt.string fmt ")"
  | Disj l ->
      Fmt.string fmt "disj(";
      list " | " l;
      Fmt.string fmt ")"
  | Count (n, p) -> Fmt.pf fmt "count(%d, %a)" n pp p
  | Within (w, p) -> Fmt.pf fmt "within(%dps, %a)" w pp p

let to_string p = Fmt.str "%a" pp p
