(** Complex-event pattern combinators over the paper's 13 event
    classes (P4CEP-style, compiled onto the {!Pisa.Efsm} extern by
    {!Compile}).

    A pattern describes one detector instance per correlation key (the
    parameterisation of [correlate ~key]: port, flow, or a custom
    selector — chosen by {!Detector}). Every event is rendered to a
    {!view} — its class plus one class-specific attribute — and a
    pattern consumes views one at a time with single-instance,
    skip-till-next-match semantics:

    - an event that matches the pattern's current frontier (the
      left-most enabled atom, scanning {!seq} components in order and
      {!conj}/{!disj} branches left to right) advances it;
    - an event that matches nothing is ignored (no reset);
    - completing the whole pattern yields a match and restarts the
      instance from scratch.

    Time is quantised into detector ticks: {!within} windows arm a
    countdown when their sub-pattern consumes its first event,
    decrement once per tick, and on expiry reset the sub-pattern's
    progress (the first expired window per tick wins, scanning
    outermost-first — exactly one region resets per tick). The same
    tick stream drives both the reference interpreter ({!Interp}) and
    the compiled automaton, so their verdicts agree event-for-event. *)

type view = { cls : Devents.Event.cls; attr : int }
(** An event as the pattern sees it: its Table 1 class and one
    attribute (queue occupancy, packet length, TCP-flag class, link
    direction, ...), chosen by the detector's extractors. *)

type atom = private { label : string; cls : Devents.Event.cls; lo : int; hi : int }
(** Matches a view of class [cls] whose attribute lies in [lo..hi]
    (after clamping to the attribute range). *)

type t = private
  | Atom of atom
  | Seq of t list  (** components complete left to right *)
  | Conj of t list  (** all branches complete, interleaved *)
  | Disj of t list  (** first branch to complete wins *)
  | Count of int * t  (** [n] consecutive completions of the sub-pattern *)
  | Within of Eventsim.Sim_time.t * t
      (** the sub-pattern must complete within the window of its own
          first consumed event, else its progress resets *)

(** {1 Combinators} — each validates its arguments
    ([Invalid_argument] on an empty list, [count n] with [n < 1],
    a non-positive window, or an empty attribute interval). *)

val atom : ?lo:int -> ?hi:int -> label:string -> Devents.Event.cls -> t
(** [lo] defaults to 0, [hi] to the attribute maximum
    ({!attr_base}[- 1]) — i.e. any event of the class. *)

val seq : t list -> t
val conj : t list -> t
val disj : t list -> t
val count : int -> t -> t
val within : Eventsim.Sim_time.t -> t -> t

(** {1 Encoding} — shared by the compiler, the interpreter and the
    detector shim so all three agree on what an event looks like. *)

val attr_base : int
(** Attributes are clamped to [0 .. attr_base - 1] (2^20); the EFSM
    input word is [cls_index * attr_base + attr]. *)

val clamp_attr : int -> int

val encode : view -> int
(** The EFSM input word for a view. *)

val tick_input : int
(** The reserved input word carrying the detector tick (broadcast to
    every flow context via {!Pisa.Efsm.step_all}). *)

val atom_matches : atom -> view -> bool

val ticks_of_window : tick_period:Eventsim.Sim_time.t -> Eventsim.Sim_time.t -> int
(** Window length in whole ticks, rounded up, at least 1. *)

(** {1 Introspection} *)

val classes : t -> Devents.Event.cls list
(** Event classes the pattern's atoms mention, deduplicated, in
    class-index order — what a detector must subscribe to. *)

val atoms : t -> atom list
(** All atoms, left to right. *)

val size : t -> int
(** Node count. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
