module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time

type t = {
  sched : Scheduler.t;
  latency : int;
  min_gap : int; (* picoseconds between op executions *)
  jitter : int;
  rng : Stats.Rng.t;
  mutable next_free : int;
  mutable ops : int;
  mutable dropped_ops : int;
  mutable notifications : int;
  mutable pending : int;
  mutable queue_depth_hwm : int;
  guard : (Resil.Supervisor.t * Resil.Supervisor.key) option;
}

let create ~sched ?(latency = Sim_time.us 200) ?(op_rate_per_sec = 100_000.)
    ?(jitter = Sim_time.us 50) ?sup ~rng () =
  if op_rate_per_sec <= 0. then invalid_arg "Control_plane.create: op rate must be positive";
  {
    sched;
    latency;
    min_gap = int_of_float (1e12 /. op_rate_per_sec);
    jitter;
    rng;
    next_free = 0;
    ops = 0;
    dropped_ops = 0;
    notifications = 0;
    pending = 0;
    queue_depth_hwm = 0;
    guard =
      (match sup with
      | None -> None
      | Some s -> Some (s, Resil.Supervisor.register s ~name:"cp.op" ()));
  }

let submit t f =
  let now = Scheduler.now t.sched in
  let j = if t.jitter > 0 then Stats.Rng.int t.rng t.jitter else 0 in
  let exec_at = max (now + t.latency + j) t.next_free in
  t.next_free <- exec_at + t.min_gap;
  t.pending <- t.pending + 1;
  if t.pending > t.queue_depth_hwm then t.queue_depth_hwm <- t.pending;
  Scheduler.post ~cls:"control" t.sched ~at:exec_at (fun () ->
      t.pending <- t.pending - 1;
      match t.guard with
      | None ->
          t.ops <- t.ops + 1;
          f ()
      | Some (s, key) ->
          (* A [false] return means the supervisor refused the op
             (quarantined / permanently failed key) or the op crashed
             and the policy absorbed it — either way the device never
             completed it, so it counts as dropped, not executed. *)
          if Resil.Supervisor.protect s key f then t.ops <- t.ops + 1
          else t.dropped_ops <- t.dropped_ops + 1)

let periodic t ~period f = Scheduler.every ~cls:"control" t.sched ~period (fun () -> submit t f)

let notify t f =
  t.notifications <- t.notifications + 1;
  Scheduler.post_after ~cls:"control" t.sched ~delay:t.latency f

let ops t = t.ops
let dropped_ops t = t.dropped_ops
let notifications t = t.notifications
let pending t = t.pending
let queue_depth_hwm t = t.queue_depth_hwm
let ops_per_sec_limit t = 1e12 /. float_of_int t.min_gap
let latency t = t.latency

let export_metrics ?(labels = []) t reg =
  let open Obs.Metrics in
  Counter.set (counter reg ~labels "cp.ops") t.ops;
  Counter.set (counter reg ~labels "cp.dropped_ops") t.dropped_ops;
  Counter.set (counter reg ~labels "cp.notifications") t.notifications;
  Gauge.set (gauge reg ~labels "cp.queue_depth") t.queue_depth_hwm
