(** Modeled control plane.

    Baseline architectures must delegate periodic work (sketch resets,
    probe generation, failure handling) to a CPU-side agent. The agent
    is not free: every operation pays the control-channel latency, a
    per-operation jitter (OS scheduling noise), and queues behind other
    operations under a bounded operation rate. The experiments compare
    these costs against native data-plane events.

    Defaults: 200 us one-way latency, 100k ops/s, 50 us jitter. *)

type t

val create :
  sched:Eventsim.Scheduler.t ->
  ?latency:Eventsim.Sim_time.t ->
  ?op_rate_per_sec:float ->
  ?jitter:Eventsim.Sim_time.t ->
  ?sup:Resil.Supervisor.t ->
  rng:Stats.Rng.t ->
  unit ->
  t
(** With [?sup] the agent registers a ["cp.op"] supervision key and
    every submitted operation runs under the guard, so a crashing
    control-plane callback is subject to the same policy as a
    data-plane handler. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue an operation: it executes on the device after channel
    latency + jitter + any queueing delay imposed by the op rate. *)

val periodic : t -> period:Eventsim.Sim_time.t -> (unit -> unit) -> Eventsim.Scheduler.handle
(** A CPU-side periodic task whose every firing is a submitted op (so
    each firing pays latency, jitter and rate limiting). *)

val notify : t -> (unit -> unit) -> unit
(** Device-to-CPU notification: runs the callback CPU-side after the
    channel latency (no rate limit — the device pushes). *)

val ops : t -> int
(** Operations executed on the device so far (a supervised op counts
    only when the guard let it run to completion). *)

val dropped_ops : t -> int
(** Supervised ops the guard refused (quarantined key) or absorbed
    after a crash — submitted but never completed on the device.
    [ops + dropped_ops] equals the number of submissions that have
    reached their execution time. *)

val notifications : t -> int

val pending : t -> int
(** Submitted ops whose execution time has not yet arrived. *)

val queue_depth_hwm : t -> int
(** High-water mark of {!pending} — the deepest the submit queue got. *)

val ops_per_sec_limit : t -> float
val latency : t -> Eventsim.Sim_time.t

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Publish [cp.ops], [cp.dropped_ops], [cp.notifications] and
    [cp.queue_depth] (HWM gauge). Idempotent set-style export — call
    after (or periodically during) a run. *)
