(** Modeled control plane.

    Baseline architectures must delegate periodic work (sketch resets,
    probe generation, failure handling) to a CPU-side agent. The agent
    is not free: every operation pays the control-channel latency, a
    per-operation jitter (OS scheduling noise), and queues behind other
    operations under a bounded operation rate. The experiments compare
    these costs against native data-plane events.

    Defaults: 200 us one-way latency, 100k ops/s, 50 us jitter. *)

type t

val create :
  sched:Eventsim.Scheduler.t ->
  ?latency:Eventsim.Sim_time.t ->
  ?op_rate_per_sec:float ->
  ?jitter:Eventsim.Sim_time.t ->
  ?sup:Resil.Supervisor.t ->
  rng:Stats.Rng.t ->
  unit ->
  t
(** With [?sup] the agent registers a ["cp.op"] supervision key and
    every submitted operation runs under the guard, so a crashing
    control-plane callback is subject to the same policy as a
    data-plane handler. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue an operation: it executes on the device after channel
    latency + jitter + any queueing delay imposed by the op rate. *)

val periodic : t -> period:Eventsim.Sim_time.t -> (unit -> unit) -> Eventsim.Scheduler.handle
(** A CPU-side periodic task whose every firing is a submitted op (so
    each firing pays latency, jitter and rate limiting). *)

val notify : t -> (unit -> unit) -> unit
(** Device-to-CPU notification: runs the callback CPU-side after the
    channel latency (no rate limit — the device pushes). *)

val ops : t -> int
(** Operations executed on the device so far. *)

val notifications : t -> int
val ops_per_sec_limit : t -> float
val latency : t -> Eventsim.Sim_time.t
