module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Event_merger = Devents.Event_merger
module Timer_unit = Devents.Timer_unit
module Packet_gen = Devents.Packet_gen
module Traffic_manager = Tmgr.Traffic_manager

type config = {
  arch : Arch.t;
  num_ports : int;
  state_mode : Devents.Shared_register.mode;
  clock_period : Eventsim.Sim_time.t;
  pipeline_depth : int;
  merger_config : Devents.Event_merger.config;
  tm_config : Tmgr.Traffic_manager.config;
  timer_resolution : Eventsim.Sim_time.t;
  seed : int;
  resil : Resil.Supervisor.config;
  shed_watermark : int option;
}

let default_config arch =
  {
    arch;
    num_ports = 4;
    state_mode = Devents.Shared_register.Aggregated;
    clock_period = Pisa.Pipeline.default_clock_period;
    pipeline_depth = Pisa.Pipeline.default_depth;
    merger_config = Event_merger.default_config;
    tm_config = Traffic_manager.default_config;
    timer_resolution = Sim_time.ns 100;
    seed = 42;
    resil = Resil.Supervisor.default_config ();
    shed_watermark = !Resil.Shedder.default_watermark;
  }

type t = {
  sched : Scheduler.t;
  id : int;
  config : config;
  pipeline : Pisa.Pipeline.t;
  alloc : Pisa.Register_alloc.t;
  mutable merger : Event_merger.t option; (* set during wiring *)
  mutable tm : Traffic_manager.t option;
  mutable timer_unit : Timer_unit.t option;
  mutable pktgen : Packet_gen.t;
  mutable program : Program.t option;
  mutable prog_ctx : Program.ctx option;
  mutable subscriptions : bool array; (* by cls index: supported && handler present *)
  mutable base_subscriptions : bool array; (* install-time mask, for re-registration *)
  mutable subscription_toggles : int;
  (* Epoch-cached metadata dispatch: one persistent closure per class,
     rebuilt only when the subscription epoch changes (set_subscribed /
     quarantine), so per-event dispatch is a single array load. *)
  mutable dispatch : (Event.t -> unit) array; (* by cls index *)
  mutable dispatch_epoch : int; (* subscription_toggles when built; -1 = stale *)
  (* Pending packet decisions, FIFO. Admission exit times are monotone
     and same-time scheduler posts fire in seq order, so a ring plus
     one persistent callback replaces a closure allocation per packet. *)
  mutable dq_pkt : Packet.t array; (* power-of-two; empty slots hold nil *)
  mutable dq_dec : Program.decision array;
  mutable dq_head : int;
  mutable dq_count : int;
  mutable decision_cb : unit -> unit;
  mutable pending_decision : Program.decision; (* last call_sink result *)
  mutable decision_sink : Program.decision -> unit;
  port_tx : (Packet.t -> unit) option array;
  link_up : bool array;
  fired : int array;
  handled : int array;
  mutable program_drops : int;
  mutable unsupported_actions : int;
  mutable unrouted : int;
  mutable recirculations : int;
  mutable cp_injections : int;
  sup : Resil.Supervisor.t;
  notify_key : Resil.Supervisor.key;
  mutable sup_keys : Resil.Supervisor.key array; (* by cls index; filled after [t] *)
  mutable supervised_drops : int;
  notifications : (int * string) Queue.t;
  mutable notification_count : int;
  mutable notify_cb : (time:int -> string -> unit) option;
  mutable link_change_cb : (port:int -> up:bool -> unit) option;
}

let get_merger t = match t.merger with Some m -> m | None -> assert false
let get_tm t = match t.tm with Some m -> m | None -> assert false
let get_program t = match t.program with Some p -> p | None -> assert false
let get_ctx t = match t.prog_ctx with Some c -> c | None -> assert false

let count_fired t cls = t.fired.(Event.cls_index cls) <- t.fired.(Event.cls_index cls) + 1
let count_handled t cls = t.handled.(Event.cls_index cls) <- t.handled.(Event.cls_index cls) + 1

(* Offer a metadata event to the merger if the architecture exposes the
   class and the program subscribed to it. *)
let fire t ev =
  let cls = Event.cls_of ev in
  count_fired t cls;
  if t.subscriptions.(Event.cls_index cls) then ignore (Event_merger.offer_event (get_merger t) ev)

(* Run one metadata handler under its supervision key. [false] when
   the handler is absent, quarantined, or failed this invocation (the
   event is then not counted as handled). *)
let run_handler t cls f ctx arg =
  Resil.Supervisor.call_unit t.sup t.sup_keys.(Event.cls_index cls) f ctx arg

let dispatch_noop (_ : Event.t) = ()

(* Rebuild the per-class dispatch table for the current subscription
   epoch. Handler-absent classes get a no-op (the event was queued but
   has nothing to run — not counted as handled, as before);
   handler-present classes always route through the supervisor guard so
   quarantine drop accounting stays exact even while unsubscribed. *)
let rebuild_dispatch t =
  t.dispatch_epoch <- t.subscription_toggles;
  let program = get_program t in
  let ctx = get_ctx t in
  let d = t.dispatch in
  Array.fill d 0 (Array.length d) dispatch_noop;
  let ix = Event.cls_index in
  let install cls run =
    d.(ix cls) <- (fun ev -> if run ev then count_handled t cls)
  in
  (match program.Program.enqueue with
  | None -> ()
  | Some f ->
      install Event.Buffer_enqueue (function
        | Event.Enqueue b -> run_handler t Event.Buffer_enqueue f ctx b
        | _ -> false));
  (match program.Program.dequeue with
  | None -> ()
  | Some f ->
      install Event.Buffer_dequeue (function
        | Event.Dequeue b -> run_handler t Event.Buffer_dequeue f ctx b
        | _ -> false));
  (match program.Program.overflow with
  | None -> ()
  | Some f ->
      install Event.Buffer_overflow (function
        | Event.Overflow b -> run_handler t Event.Buffer_overflow f ctx b
        | _ -> false));
  (match program.Program.underflow with
  | None -> ()
  | Some f ->
      install Event.Buffer_underflow (function
        | Event.Underflow u -> run_handler t Event.Buffer_underflow f ctx u
        | _ -> false));
  (match program.Program.transmitted with
  | None -> ()
  | Some f ->
      install Event.Packet_transmitted (function
        | Event.Transmitted x -> run_handler t Event.Packet_transmitted f ctx x
        | _ -> false));
  (match program.Program.timer with
  | None -> ()
  | Some f ->
      install Event.Timer_expiration (function
        | Event.Timer x -> run_handler t Event.Timer_expiration f ctx x
        | _ -> false));
  (match program.Program.link_change with
  | None -> ()
  | Some f ->
      install Event.Link_status_change (function
        | Event.Link_change l -> run_handler t Event.Link_status_change f ctx l
        | _ -> false));
  (match program.Program.control with
  | None -> ()
  | Some f ->
      install Event.Control_plane (function
        | Event.Control c -> run_handler t Event.Control_plane f ctx c
        | _ -> false));
  match program.Program.user with
  | None -> ()
  | Some f ->
      install Event.User_event (function
        | Event.User u -> run_handler t Event.User_event f ctx u
        | _ -> false)


let set_subscribed t cls on =
  let i = Event.cls_index cls in
  let target = on && t.base_subscriptions.(i) in
  if t.subscriptions.(i) <> target then begin
    t.subscriptions.(i) <- target;
    t.subscription_toggles <- t.subscription_toggles + 1
  end

let transmit t ~port pkt =
  match t.port_tx.(port) with
  | Some tx -> tx pkt
  | None -> t.unrouted <- t.unrouted + 1

let apply_decision t pkt decision =
  match decision with
  | Program.Drop -> t.program_drops <- t.program_drops + 1
  | Program.Forward port ->
      if port < 0 || port >= t.config.num_ports then t.unrouted <- t.unrouted + 1
      else ignore (Traffic_manager.enqueue (get_tm t) ~port pkt)
  | Program.Multicast ports ->
      List.iter
        (fun port ->
          if port < 0 || port >= t.config.num_ports then t.unrouted <- t.unrouted + 1
          else
            let copy = Packet.clone_for_forward pkt in
            copy.Packet.meta.Packet.qid <- pkt.Packet.meta.Packet.qid;
            ignore (Traffic_manager.enqueue (get_tm t) ~port copy))
        ports
  | Program.Recirculate ->
      if t.config.arch.Arch.has_recirculation then begin
        t.recirculations <- t.recirculations + 1;
        count_fired t Event.Recirculated_packet;
        ignore (Event_merger.offer_packet (get_merger t) Event_merger.Recirculated pkt)
      end
      else begin
        t.unsupported_actions <- t.unsupported_actions + 1;
        t.program_drops <- t.program_drops + 1
      end

(* Park a decided packet until its carrier exits the pipeline. *)
let push_decision t pkt decision =
  let cap = Array.length t.dq_pkt in
  if t.dq_count = cap then begin
    (* Grow by doubling, unrolling the ring from head. *)
    let pkts = Array.make (2 * cap) Packet.nil in
    let decs = Array.make (2 * cap) Program.Drop in
    for i = 0 to cap - 1 do
      let j = (t.dq_head + i) land (cap - 1) in
      pkts.(i) <- t.dq_pkt.(j);
      decs.(i) <- t.dq_dec.(j)
    done;
    t.dq_pkt <- pkts;
    t.dq_dec <- decs;
    t.dq_head <- 0
  end;
  let cap = Array.length t.dq_pkt in
  let tail = (t.dq_head + t.dq_count) land (cap - 1) in
  t.dq_pkt.(tail) <- pkt;
  t.dq_dec.(tail) <- decision;
  t.dq_count <- t.dq_count + 1

let pop_decision t =
  assert (t.dq_count > 0);
  let i = t.dq_head in
  let pkt = t.dq_pkt.(i) in
  let decision = t.dq_dec.(i) in
  t.dq_pkt.(i) <- Packet.nil;
  t.dq_dec.(i) <- Program.Drop;
  t.dq_head <- (i + 1) land (Array.length t.dq_pkt - 1);
  t.dq_count <- t.dq_count - 1;
  apply_decision t pkt decision

let process_carrier t (carrier : Event_merger.carrier) ~exit_time =
  let pkt = carrier.Event_merger.pkt in
  if not (Packet.is_nil pkt) then begin
    let program = get_program t in
    let handler, cls =
      match carrier.Event_merger.kind with
      | Event_merger.Ingress -> (program.Program.ingress, Event.Ingress_packet)
      | Event_merger.Recirculated ->
          ( Option.value program.Program.recirculated ~default:program.Program.ingress,
            Event.Recirculated_packet )
      | Event_merger.Generated ->
          ( Option.value program.Program.generated ~default:program.Program.ingress,
            Event.Generated_packet )
    in
    let key = t.sup_keys.(Event.cls_index cls) in
    if Resil.Supervisor.call_sink t.sup key handler (get_ctx t) pkt ~sink:t.decision_sink then begin
      count_handled t cls;
      (* The decision takes effect when the carrier exits the pipeline.
         Decisions are applied FIFO: exit times are monotone, and the
         scheduler fires same-time posts in seq order. *)
      push_decision t pkt t.pending_decision;
      Scheduler.post ~cls:"switch.decision" t.sched ~at:exit_time t.decision_cb
    end
    else
      (* Handler quarantined or crashed: the packet has no decision
         and is lost — accounted so conservation still balances. *)
      t.supervised_drops <- t.supervised_drops + 1
  end;
  if t.dispatch_epoch <> t.subscription_toggles then rebuild_dispatch t;
  for i = 0 to carrier.Event_merger.n_events - 1 do
    let ev = carrier.Event_merger.events.(i) in
    t.dispatch.(Event.cls_ix_of ev) ev
  done

let create ~sched ?(id = 0) ~config ~program () =
  if config.num_ports <= 0 then invalid_arg "Event_switch.create: num_ports";
  let pipeline =
    Pisa.Pipeline.create ~sched ~clock_period:config.clock_period ~depth:config.pipeline_depth ()
  in
  let alloc = Pisa.Register_alloc.create ~clock:(Pisa.Pipeline.clock pipeline) () in
  (* The supervisor's master RNG seed is derived from the switch seed so
     backoff jitter is reproducible but independent of the program's
     stream. *)
  let sup = Resil.Supervisor.create ~sched ~config:config.resil ~seed:(config.seed lxor 0x5eed) () in
  let notify_key = Resil.Supervisor.register sup ~name:"notify-monitor" () in
  let t =
    {
      sched;
      id;
      config;
      pipeline;
      alloc;
      merger = None;
      tm = None;
      timer_unit = None;
      pktgen = Packet_gen.create ~sched ~sink:(fun _ -> ()) ();
      program = None;
      prog_ctx = None;
      subscriptions = Array.make Event.num_classes false;
      base_subscriptions = Array.make Event.num_classes false;
      subscription_toggles = 0;
      dispatch = Array.make Event.num_classes dispatch_noop;
      dispatch_epoch = -1;
      dq_pkt = Array.make 64 Packet.nil;
      dq_dec = Array.make 64 Program.Drop;
      dq_head = 0;
      dq_count = 0;
      decision_cb = (fun () -> ());
      pending_decision = Program.Drop;
      decision_sink = (fun _ -> ());
      port_tx = Array.make config.num_ports None;
      link_up = Array.make config.num_ports true;
      fired = Array.make Event.num_classes 0;
      handled = Array.make Event.num_classes 0;
      program_drops = 0;
      unsupported_actions = 0;
      unrouted = 0;
      recirculations = 0;
      cp_injections = 0;
      sup;
      notify_key;
      sup_keys = [||];
      supervised_drops = 0;
      notifications = Queue.create ();
      notification_count = 0;
      notify_cb = None;
      link_change_cb = None;
    }
  in
  t.decision_cb <- (fun () -> pop_decision t);
  t.decision_sink <- (fun d -> t.pending_decision <- d);
  (* One supervision key per event class, in class-index order (the
     order fixes each key's split RNG). Quarantining a metadata class
     also drops its subscription, so events stop queueing for a handler
     that cannot run; packet classes have no subscription mask and are
     gated inside the guard instead. *)
  t.sup_keys <-
    Array.of_list
      (List.map
         (fun cls ->
           Resil.Supervisor.register sup ~name:(Event.cls_name cls)
             ~on_disable:(fun () -> set_subscribed t cls false)
             ~on_enable:(fun () -> set_subscribed t cls true)
             ())
         Event.all_classes);
  let merger =
    Event_merger.create ~sched ~pipeline ~config:config.merger_config
      ~process:(fun carrier ~exit_time -> process_carrier t carrier ~exit_time)
      ()
  in
  (match config.shed_watermark with
  | Some w ->
      Event_merger.set_shedder merger
        (Resil.Shedder.create ~config:(Event_merger.shed_config ~watermark:w) ())
  | None -> ());
  t.merger <- Some merger;
  let timer_unit =
    Timer_unit.create ~sched ~resolution:config.timer_resolution ~sink:(fun ev -> fire t ev) ()
  in
  t.timer_unit <- Some timer_unit;
  (* Packet generator feeds the generated-packet input of the merger. *)
  let pktgen =
    Packet_gen.create ~sched
      ~sink:(fun pkt ->
        count_fired t Event.Generated_packet;
        ignore (Event_merger.offer_packet merger Event_merger.Generated pkt))
      ()
  in
  t.pktgen <- pktgen;
  let ctx =
    {
      Program.switch_id = id;
      num_ports = config.num_ports;
      sched;
      alloc;
      pipeline;
      state_mode = config.state_mode;
      rng = Stats.Rng.create ~seed:config.seed;
      add_timer =
        (fun ~period ->
          if not config.arch.Arch.has_timers then
            raise (Program.Unsupported (config.arch.Arch.name ^ " has no timers"));
          Timer_unit.add_periodic timer_unit ~period);
      cancel_timer = (fun tid -> Timer_unit.cancel timer_unit tid);
      configure_pktgen =
        (fun ~period ?count ~template () ->
          if not config.arch.Arch.has_packet_generator then
            raise (Program.Unsupported (config.arch.Arch.name ^ " has no packet generator"));
          Packet_gen.configure pktgen ~period ?count ~template ());
      stop_pktgen = (fun () -> Packet_gen.stop pktgen);
      emit_user_event =
        (fun ~tag ~data ->
          fire t (Event.User { tag; data; time = Scheduler.now sched }));
      mirror_to_ingress =
        (fun pkt ->
          if not config.arch.Arch.has_recirculation then
            raise (Program.Unsupported (config.arch.Arch.name ^ " has no recirculation"));
          t.recirculations <- t.recirculations + 1;
          count_fired t Event.Recirculated_packet;
          ignore
            (Event_merger.offer_packet merger Event_merger.Recirculated
               (Packet.clone_for_forward pkt)));
      notify_monitor =
        (fun msg ->
          let time = Scheduler.now sched in
          t.notification_count <- t.notification_count + 1;
          Queue.push (time, msg) t.notifications;
          if Queue.length t.notifications > 10_000 then ignore (Queue.pop t.notifications);
          match t.notify_cb with
          | Some cb ->
              ignore (Resil.Supervisor.protect sup t.notify_key (fun () -> cb ~time msg) : bool)
          | None -> ());
      port_occupancy_bytes = (fun port -> Traffic_manager.occupancy_bytes (get_tm t) ~port);
      link_is_up = (fun port -> t.link_up.(port));
      now = (fun () -> Scheduler.now sched);
      consume_budget = (fun n -> Resil.Supervisor.consume sup n);
    }
  in
  let prog = program ctx in
  t.program <- Some prog;
  t.prog_ctx <- Some ctx;
  (* Subscription mask = architecture support AND handler present. *)
  List.iter
    (fun cls ->
      if Arch.supports config.arch cls then
        t.subscriptions.(Event.cls_index cls) <- true)
    (Program.subscriptions prog);
  t.base_subscriptions <- Array.copy t.subscriptions;
  (* Traffic manager, firing buffer events back into the merger. *)
  let egress =
    match (prog.Program.egress, Arch.supports config.arch Event.Egress_packet) with
    | Some f, true ->
        let key = t.sup_keys.(Event.cls_index Event.Egress_packet) in
        (* One pre-built closure per port and a persistent result slot:
           the per-packet call then allocates neither the [~port]
           partial application nor the supervisor's [Some] wrapper. *)
        let per_port =
          Array.init config.num_ports (fun port -> fun ctx pkt -> f ctx ~port pkt)
        in
        let pending = ref None in
        let sink r = pending := r in
        Some
          (fun ~port pkt ->
            count_fired t Event.Egress_packet;
            (* A quarantined or crashing egress handler yields no packet;
               the TM then counts the drop (egress_drops), so the loss is
               accounted exactly once. *)
            if Resil.Supervisor.call_sink sup key per_port.(port) ctx pkt ~sink then begin
              count_handled t Event.Egress_packet;
              let r = !pending in
              pending := None;
              r
            end
            else None)
    | Some _, false | None, _ -> None
  in
  let tm_config =
    { config.tm_config with Traffic_manager.num_ports = config.num_ports }
  in
  (* The TM's unboxed event sink: count the fire, gate on the current
     subscription mask, and write straight into the merger's store —
     the boxed [fire] path is kept only for the rare timer / link /
     control / user classes. *)
  let events =
    let ix_tx = Event.cls_index Event.Packet_transmitted in
    let ix_enq = Event.cls_index Event.Buffer_enqueue in
    let ix_deq = Event.cls_index Event.Buffer_dequeue in
    let ix_ovf = Event.cls_index Event.Buffer_overflow in
    let ix_und = Event.cls_index Event.Buffer_underflow in
    let buffer cls_ix =
      fun ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time ->
       t.fired.(cls_ix) <- t.fired.(cls_ix) + 1;
       if t.subscriptions.(cls_ix) then
         ignore
           (Event_merger.offer_buffer merger ~cls_ix ~port ~qid ~pkt_len ~flow_id ~meta
              ~occupancy_pkts ~occupancy_bytes ~time
             : bool)
    in
    {
      Devents.Event_sink.enqueue = buffer ix_enq;
      dequeue = buffer ix_deq;
      overflow = buffer ix_ovf;
      underflow =
        (fun ~port ~qid ~time ->
          t.fired.(ix_und) <- t.fired.(ix_und) + 1;
          if t.subscriptions.(ix_und) then
            ignore (Event_merger.offer_underflow merger ~port ~qid ~time : bool));
      transmitted =
        (fun ~port ~pkt_len ~flow_id ~time ->
          t.fired.(ix_tx) <- t.fired.(ix_tx) + 1;
          if t.subscriptions.(ix_tx) then
            ignore (Event_merger.offer_transmitted merger ~port ~pkt_len ~flow_id ~time : bool));
    }
  in
  let tm =
    Traffic_manager.create ~sched ~config:tm_config
      ~emit:(fun ~port pkt -> transmit t ~port pkt)
      ~events ?egress ()
  in
  t.tm <- Some tm;
  t

let inject t ~port pkt =
  if port < 0 || port >= t.config.num_ports then invalid_arg "Event_switch.inject: bad port";
  pkt.Packet.meta.Packet.ingress_port <- port;
  count_fired t Event.Ingress_packet;
  ignore (Event_merger.offer_packet (get_merger t) Event_merger.Ingress pkt)

let inject_from_control_plane t pkt =
  pkt.Packet.meta.Packet.ingress_port <- -2;
  t.cp_injections <- t.cp_injections + 1;
  count_fired t Event.Ingress_packet;
  ignore (Event_merger.offer_packet (get_merger t) Event_merger.Ingress pkt)

let set_port_tx t ~port f =
  if port < 0 || port >= t.config.num_ports then invalid_arg "Event_switch.set_port_tx: bad port";
  t.port_tx.(port) <- Some f

let link_status t ~port ~up =
  if port < 0 || port >= t.config.num_ports then invalid_arg "Event_switch.link_status: bad port";
  if t.link_up.(port) <> up then begin
    t.link_up.(port) <- up;
    (match t.link_change_cb with None -> () | Some cb -> cb ~port ~up);
    fire t (Event.Link_change { port; up; time = Scheduler.now t.sched })
  end

let control_event t ~opcode ~arg =
  fire t (Event.Control { opcode; arg; time = Scheduler.now t.sched })

let subscribed t cls = t.subscriptions.(Event.cls_index cls)
let subscription_toggles t = t.subscription_toggles

let on_notification t cb = t.notify_cb <- Some cb
let on_link_change t cb = t.link_change_cb <- Some cb
let id t = t.id
let arch t = t.config.arch
let program_name t = (get_program t).Program.name
let ctx t = get_ctx t
let alloc t = t.alloc
let pipeline t = t.pipeline
let tm t = get_tm t
let merger t = get_merger t
let num_ports t = t.config.num_ports
let fired t cls = t.fired.(Event.cls_index cls)
let handled t cls = t.handled.(Event.cls_index cls)
let program_drops t = t.program_drops
let unsupported_actions t = t.unsupported_actions
let unrouted t = t.unrouted
let recirculations t = t.recirculations
let cp_injections t = t.cp_injections
let notification_count t = t.notification_count
let notifications t = List.of_seq (Queue.to_seq t.notifications)
let supervisor t = t.sup
let handler_key t cls = t.sup_keys.(Event.cls_index cls)
let supervised_drops t = t.supervised_drops

(* Register the switch's standard runtime invariants with a checker.
   Conservation is asserted as the monotone inequality (accounted ≤
   offered) because packets legitimately sit in flight between sweeps;
   exact balance only holds at quiescence and is checked by the
   experiments themselves. *)
let invariant_checks t inv =
  let ix = Event.cls_index in
  Resil.Invariants.add inv ~name:"packet-conservation" (fun () ->
      let merger = get_merger t in
      let offered =
        t.fired.(ix Event.Ingress_packet)
        + t.fired.(ix Event.Recirculated_packet)
        + t.fired.(ix Event.Generated_packet)
      in
      let accounted =
        t.handled.(ix Event.Ingress_packet)
        + t.handled.(ix Event.Recirculated_packet)
        + t.handled.(ix Event.Generated_packet)
        + t.supervised_drops
        + Event_merger.packet_drops merger
        + Event_merger.packets_shed merger
      in
      if accounted > offered then
        Some (Printf.sprintf "accounted packets %d exceed offered %d" accounted offered)
      else None);
  Resil.Invariants.add inv ~name:"buffer-occupancy" (fun () ->
      let tm = get_tm t in
      let cap = (Traffic_manager.config tm).Traffic_manager.buffer_bytes in
      let occ = Traffic_manager.total_occupancy_bytes tm in
      if occ > cap then Some (Printf.sprintf "buffer occupancy %dB exceeds capacity %dB" occ cap)
      else None);
  let last = ref 0 in
  Resil.Invariants.add inv ~name:"timer-monotonicity" (fun () ->
      match t.timer_unit with
      | None -> None
      | Some tu ->
          let at = Timer_unit.last_fire_time tu in
          let now = Scheduler.now t.sched in
          if at < !last then
            Some (Printf.sprintf "timer fire time went backwards (%d after %d)" at !last)
          else if at > now then Some (Printf.sprintf "timer fired in the future (%d > %d)" at now)
          else begin
            last := at;
            None
          end)

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    let labels = ("switch", string_of_int t.id) :: labels in
    let counter ?(labels = labels) name v =
      Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels name) v
    in
    let gauge ?(labels = labels) name v =
      Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels name) v
    in
    let merger = get_merger t in
    List.iter
      (fun cls ->
        let clabels = ("class", Event.cls_name cls) :: labels in
        counter ~labels:clabels "switch.events_fired" t.fired.(Event.cls_index cls);
        counter ~labels:clabels "switch.events_handled" t.handled.(Event.cls_index cls);
        gauge ~labels:clabels "merger.queue_hwm" (Event_merger.queue_high_watermark merger cls))
      Event.all_classes;
    counter "switch.program_drops" t.program_drops;
    counter "switch.unsupported_actions" t.unsupported_actions;
    counter "switch.unrouted" t.unrouted;
    counter "switch.recirculations" t.recirculations;
    counter "switch.cp_injections" t.cp_injections;
    counter "switch.notifications" t.notification_count;
    counter "switch.supervised_drops" t.supervised_drops;
    counter "merger.empty_carriers" (Event_merger.empty_carriers merger);
    counter "merger.piggybacked_events" (Event_merger.piggybacked_events merger);
    counter "merger.packet_drops" (Event_merger.packet_drops merger);
    counter "merger.shed_events" (Event_merger.events_shed merger);
    counter "merger.shed_packets" (Event_merger.packets_shed merger);
    (match Event_merger.shedder merger with
    | Some s -> Resil.Shedder.export_metrics ~labels s reg
    | None -> ());
    Resil.Supervisor.export_metrics ~labels t.sup reg;
    gauge "merger.events_waiting" (Event_merger.events_waiting merger);
    gauge "merger.packets_waiting" (Event_merger.packets_waiting merger);
    List.iter
      (fun (cls, n) ->
        counter ~labels:(("class", Event.cls_name cls) :: labels) "merger.event_drops" n)
      (Event_merger.event_drops merger);
    counter "pipeline.admissions" (Pisa.Pipeline.admissions t.pipeline);
    counter "pipeline.packet_carriers" (Pisa.Pipeline.packet_carriers t.pipeline);
    counter "pipeline.empty_carriers" (Pisa.Pipeline.empty_carriers t.pipeline);
    (* Externs allocated through the switch's register allocator (EFSMs
       today) publish their own series, labelled by extern name, so
       per-flow state evolution lands in merged conformance snapshots. *)
    List.iter
      (fun (name, stats) ->
        List.iter
          (fun (stat, v) -> counter ~labels:(("extern", name) :: labels) stat v)
          (stats ()))
      (Pisa.Register_alloc.stats_exporters t.alloc);
    Traffic_manager.export_metrics ~labels (get_tm t) reg
  end
