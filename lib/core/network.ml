module Link = Tmgr.Link

type t = {
  sched : Eventsim.Scheduler.t;
  mutable links : Link.t list;
  (* Switch ports already wired to a link; [==] on the switch because
     ids are caller-chosen and may collide. *)
  mutable occupied : (Event_switch.t * int) list;
}

let create ~sched = { sched; links = []; occupied = [] }

let claim_port t sw port ~who =
  if List.exists (fun (s, p) -> s == sw && p = port) t.occupied then
    invalid_arg
      (Printf.sprintf "%s: switch %d port %d is already connected" who (Event_switch.id sw)
         port);
  t.occupied <- (sw, port) :: t.occupied

let switch_endpoint sw port =
  {
    Link.deliver = (fun pkt -> Event_switch.inject sw ~port pkt);
    notify_status = (fun ~up -> Event_switch.link_status sw ~port ~up);
  }

let host_endpoint host =
  { Link.deliver = (fun pkt -> Host.deliver host pkt); notify_status = (fun ~up:_ -> ()) }

let register t link =
  t.links <- link :: t.links;
  link

let connect_switches t ~a:(sw_a, port_a) ~b:(sw_b, port_b) ?delay ?detection_delay () =
  claim_port t sw_a port_a ~who:"Network.connect_switches";
  (* Claim both sides before wiring so a failed [b] claim leaves no
     half-connected [a]. *)
  (try claim_port t sw_b port_b ~who:"Network.connect_switches"
   with exn ->
     t.occupied <- List.filter (fun (s, p) -> not (s == sw_a && p = port_a)) t.occupied;
     raise exn);
  let link =
    Link.create ~sched:t.sched ?delay ?detection_delay ~a:(switch_endpoint sw_a port_a)
      ~b:(switch_endpoint sw_b port_b) ()
  in
  Event_switch.set_port_tx sw_a ~port:port_a (fun pkt -> Link.send link ~from_a:true pkt);
  Event_switch.set_port_tx sw_b ~port:port_b (fun pkt -> Link.send link ~from_a:false pkt);
  register t link

let connect_host t ~host ~switch:(sw, port) ?delay ?detection_delay () =
  claim_port t sw port ~who:"Network.connect_host";
  let link =
    Link.create ~sched:t.sched ?delay ?detection_delay ~a:(host_endpoint host)
      ~b:(switch_endpoint sw port) ()
  in
  Host.set_tx host (fun pkt -> Link.send link ~from_a:true pkt);
  Event_switch.set_port_tx sw ~port (fun pkt -> Link.send link ~from_a:false pkt);
  register t link

let links t = List.rev t.links
