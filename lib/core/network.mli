(** Topology wiring: connects switch ports, hosts and links, routing
    link deliveries into [Event_switch.inject] / [Host.deliver] and
    link status changes into [Event_switch.link_status]. *)

type t

val create : sched:Eventsim.Scheduler.t -> t

val connect_switches :
  t ->
  a:Event_switch.t * int ->
  b:Event_switch.t * int ->
  ?delay:Eventsim.Sim_time.t ->
  ?detection_delay:Eventsim.Sim_time.t ->
  unit ->
  Tmgr.Link.t
(** Connect port [snd a] of switch [fst a] to port [snd b] of switch
    [fst b]. Returns the link for failure injection. Wiring a switch
    port that this network already connected (to a switch or a host)
    raises [Invalid_argument] — a double-wired port would silently
    overwrite the first link's transmit side. *)

val connect_host :
  t ->
  host:Host.t ->
  switch:Event_switch.t * int ->
  ?delay:Eventsim.Sim_time.t ->
  ?detection_delay:Eventsim.Sim_time.t ->
  unit ->
  Tmgr.Link.t

val links : t -> Tmgr.Link.t list
(** In creation order. *)
