module Event = Devents.Event

exception Unsupported of string

type decision = Forward of int | Multicast of int list | Drop | Recirculate

type ctx = {
  switch_id : int;
  num_ports : int;
  sched : Eventsim.Scheduler.t;
  alloc : Pisa.Register_alloc.t;
  pipeline : Pisa.Pipeline.t;
  state_mode : Devents.Shared_register.mode;
  rng : Stats.Rng.t;
  add_timer : period:Eventsim.Sim_time.t -> int;
  cancel_timer : int -> unit;
  configure_pktgen :
    period:Eventsim.Sim_time.t -> ?count:int -> template:(int -> Netcore.Packet.t) -> unit -> unit;
  stop_pktgen : unit -> unit;
  emit_user_event : tag:int -> data:int -> unit;
  mirror_to_ingress : Netcore.Packet.t -> unit;
  notify_monitor : string -> unit;
  port_occupancy_bytes : int -> int;
  link_is_up : int -> bool;
  now : unit -> int;
  consume_budget : int -> unit;
}

let shared_register ctx ~name ~entries ~width =
  Devents.Shared_register.create ~alloc:ctx.alloc ~pipeline:ctx.pipeline ~mode:ctx.state_mode
    ~name ~entries ~width ()

type t = {
  name : string;
  ingress : ctx -> Netcore.Packet.t -> decision;
  recirculated : (ctx -> Netcore.Packet.t -> decision) option;
  generated : (ctx -> Netcore.Packet.t -> decision) option;
  egress : (ctx -> port:int -> Netcore.Packet.t -> Netcore.Packet.t option) option;
  enqueue : (ctx -> Event.buffer_event -> unit) option;
  dequeue : (ctx -> Event.buffer_event -> unit) option;
  overflow : (ctx -> Event.buffer_event -> unit) option;
  underflow : (ctx -> Event.underflow_event -> unit) option;
  transmitted : (ctx -> Event.transmit_event -> unit) option;
  timer : (ctx -> Event.timer_event -> unit) option;
  link_change : (ctx -> Event.link_event -> unit) option;
  control : (ctx -> Event.control_event -> unit) option;
  user : (ctx -> Event.user_event -> unit) option;
}

type spec = ctx -> t

let make ~name ~ingress ?recirculated ?generated ?egress ?enqueue ?dequeue ?overflow ?underflow
    ?transmitted ?timer ?link_change ?control ?user () =
  {
    name;
    ingress;
    recirculated;
    generated;
    egress;
    enqueue;
    dequeue;
    overflow;
    underflow;
    transmitted;
    timer;
    link_change;
    control;
    user;
  }

let subscriptions t =
  List.filter_map
    (fun (cls, present) -> if present then Some cls else None)
    [
      (Event.Buffer_enqueue, t.enqueue <> None);
      (Event.Buffer_dequeue, t.dequeue <> None);
      (Event.Buffer_overflow, t.overflow <> None);
      (Event.Buffer_underflow, t.underflow <> None);
      (Event.Packet_transmitted, t.transmitted <> None);
      (Event.Timer_expiration, t.timer <> None);
      (Event.Link_status_change, t.link_change <> None);
      (Event.Control_plane, t.control <> None);
      (Event.User_event, t.user <> None);
    ]

let forward_all ~name ~out_port : spec =
 fun _ctx -> make ~name ~ingress:(fun _ctx _pkt -> Forward out_port) ()
