(** The event-driven data-plane programming model (§2).

    A program is a record of event handlers — the OCaml rendering of an
    event-driven P4 program, one [control] block per event class. All
    handlers of one program share state through registers allocated
    from the context at install time:

    {[
      let microburst threshold : Program.spec =
       fun ctx ->
        let buf = Program.shared_register ctx ~name:"bufSize" ~entries:1024 ~width:32 in
        Program.make ~name:"microburst"
          ~ingress:(fun ctx pkt -> ...)
          ~enqueue:(fun _ctx ev -> Shared_register.event_add buf Enq_side ... )
          ()
    ]}

    The architecture calls a handler only if the target supports that
    event class; a program installed on a baseline architecture simply
    never sees buffer or timer events. *)

exception Unsupported of string
(** Raised when a program uses a feature (timers, packet generator,
    recirculation) its architecture does not provide. *)

(** What ingress-side packet processing decides. *)
type decision =
  | Forward of int  (** egress port *)
  | Multicast of int list
  | Drop
  | Recirculate  (** send back through the pipeline (if supported) *)

(** Capabilities handed to a program. All closures are wired by the
    switch at install time. *)
type ctx = {
  switch_id : int;
  num_ports : int;
  sched : Eventsim.Scheduler.t;
  alloc : Pisa.Register_alloc.t;
  pipeline : Pisa.Pipeline.t;
  state_mode : Devents.Shared_register.mode;
  rng : Stats.Rng.t;  (** for randomised algorithms (RED) *)
  add_timer : period:Eventsim.Sim_time.t -> int;
  cancel_timer : int -> unit;
  configure_pktgen :
    period:Eventsim.Sim_time.t -> ?count:int -> template:(int -> Netcore.Packet.t) -> unit -> unit;
  stop_pktgen : unit -> unit;
  emit_user_event : tag:int -> data:int -> unit;
  mirror_to_ingress : Netcore.Packet.t -> unit;
      (** Clone a packet back into the pipeline's recirculation input —
          the Tofino-style egress-to-ingress mirror (§6) used to
          {e emulate} dequeue events on architectures without them.
          Requires recirculation support. *)
  notify_monitor : string -> unit;
      (** Send a report to an external monitor (counted; contents
          inspectable in tests). *)
  port_occupancy_bytes : int -> int;  (** TM occupancy of a port *)
  link_is_up : int -> bool;
  now : unit -> int;
  consume_budget : int -> unit;
      (** Report [n] steps of work against the supervisor's per-handler
          watchdog budget; an over-budget handler raises (and is then
          handled per the switch's {!Resil.Policy.t}). A no-op outside
          a supervised invocation. *)
}

val shared_register :
  ctx -> name:string -> entries:int -> width:int -> Devents.Shared_register.t
(** Allocate a [shared_register] extern in the context's state mode. *)

type t = {
  name : string;
  ingress : ctx -> Netcore.Packet.t -> decision;
  recirculated : (ctx -> Netcore.Packet.t -> decision) option;
      (** defaults to [ingress] when the class is supported *)
  generated : (ctx -> Netcore.Packet.t -> decision) option;
      (** defaults to [ingress] when the class is supported *)
  egress : (ctx -> port:int -> Netcore.Packet.t -> Netcore.Packet.t option) option;
  enqueue : (ctx -> Devents.Event.buffer_event -> unit) option;
  dequeue : (ctx -> Devents.Event.buffer_event -> unit) option;
  overflow : (ctx -> Devents.Event.buffer_event -> unit) option;
  underflow : (ctx -> Devents.Event.underflow_event -> unit) option;
  transmitted : (ctx -> Devents.Event.transmit_event -> unit) option;
  timer : (ctx -> Devents.Event.timer_event -> unit) option;
  link_change : (ctx -> Devents.Event.link_event -> unit) option;
  control : (ctx -> Devents.Event.control_event -> unit) option;
  user : (ctx -> Devents.Event.user_event -> unit) option;
}

type spec = ctx -> t
(** A program factory: receives the install-time context, allocates its
    state, returns its handlers. *)

val make :
  name:string ->
  ingress:(ctx -> Netcore.Packet.t -> decision) ->
  ?recirculated:(ctx -> Netcore.Packet.t -> decision) ->
  ?generated:(ctx -> Netcore.Packet.t -> decision) ->
  ?egress:(ctx -> port:int -> Netcore.Packet.t -> Netcore.Packet.t option) ->
  ?enqueue:(ctx -> Devents.Event.buffer_event -> unit) ->
  ?dequeue:(ctx -> Devents.Event.buffer_event -> unit) ->
  ?overflow:(ctx -> Devents.Event.buffer_event -> unit) ->
  ?underflow:(ctx -> Devents.Event.underflow_event -> unit) ->
  ?transmitted:(ctx -> Devents.Event.transmit_event -> unit) ->
  ?timer:(ctx -> Devents.Event.timer_event -> unit) ->
  ?link_change:(ctx -> Devents.Event.link_event -> unit) ->
  ?control:(ctx -> Devents.Event.control_event -> unit) ->
  ?user:(ctx -> Devents.Event.user_event -> unit) ->
  unit ->
  t

val subscriptions : t -> Devents.Event.cls list
(** The metadata-event classes this program defined handlers for. *)

val forward_all : name:string -> out_port:int -> spec
(** A trivial program forwarding every packet to [out_port] — useful in
    tests and as a quickstart. *)
