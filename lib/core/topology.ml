module Sim_time = Eventsim.Sim_time

type link = {
  link_id : int;
  a : int * int;
  b : int * int;
  delay : Sim_time.t;
  detection_delay : Sim_time.t option;
}

type attachment = { host : int; switch : int; port : int; host_delay : Sim_time.t }

type t = {
  switches : int;
  hosts : int;
  links : link list;
  attachments : attachment list;
}

let validate t =
  if t.switches < 1 then invalid_arg "Topology.validate: no switches";
  if t.hosts < 0 then invalid_arg "Topology.validate: negative host count";
  let seen = Hashtbl.create 64 in
  let claim ~who sw port =
    if sw < 0 || sw >= t.switches then
      invalid_arg (Printf.sprintf "Topology.validate: %s uses switch %d (of %d)" who sw t.switches);
    if port < 0 then invalid_arg (Printf.sprintf "Topology.validate: %s uses port %d" who port);
    if Hashtbl.mem seen (sw, port) then
      invalid_arg
        (Printf.sprintf "Topology.validate: switch %d port %d wired twice (%s and %s)" sw port
           (Hashtbl.find seen (sw, port))
           who);
    Hashtbl.add seen (sw, port) who
  in
  List.iteri
    (fun i l ->
      if l.link_id <> i then
        invalid_arg (Printf.sprintf "Topology.validate: link %d has link_id %d" i l.link_id);
      if l.delay <= 0 then
        invalid_arg (Printf.sprintf "Topology.validate: link %d has non-positive delay" i);
      let who = Printf.sprintf "link %d" i in
      claim ~who (fst l.a) (snd l.a);
      claim ~who (fst l.b) (snd l.b))
    t.links;
  let host_seen = Array.make t.hosts false in
  List.iter
    (fun at ->
      if at.host < 0 || at.host >= t.hosts then
        invalid_arg (Printf.sprintf "Topology.validate: attachment for host %d (of %d)" at.host t.hosts);
      if host_seen.(at.host) then
        invalid_arg (Printf.sprintf "Topology.validate: host %d attached twice" at.host);
      host_seen.(at.host) <- true;
      claim ~who:(Printf.sprintf "host %d" at.host) at.switch at.port)
    t.attachments;
  Array.iteri
    (fun h attached ->
      if not attached then invalid_arg (Printf.sprintf "Topology.validate: host %d unattached" h))
    host_seen

let max_port t sw =
  let fold_ep acc (s, p) = if s = sw then max acc p else acc in
  let acc =
    List.fold_left (fun acc l -> fold_ep (fold_ep acc l.a) l.b) (-1) t.links
  in
  List.fold_left (fun acc at -> fold_ep acc (at.switch, at.port)) acc t.attachments

(* Port counts for every switch in one pass over the link/attachment
   lists. [max_port] per switch is O(switches * links) across a whole
   topology — quadratic, and it shows at 1000+ switches. *)
let ports t =
  let n = Array.make t.switches 0 in
  let claim (sw, p) = if p + 1 > n.(sw) then n.(sw) <- p + 1 in
  List.iter
    (fun l ->
      claim l.a;
      claim l.b)
    t.links;
  List.iter (fun at -> claim (at.switch, at.port)) t.attachments;
  n

let host_counts t =
  let n = Array.make t.switches 0 in
  List.iter (fun at -> n.(at.switch) <- n.(at.switch) + 1) t.attachments;
  n

let min_link_delay t =
  match t.links with
  | [] -> invalid_arg "Topology.min_link_delay: no switch-to-switch links"
  | l :: rest -> List.fold_left (fun acc l -> min acc l.delay) l.delay rest

(* Builders. Link [i] gets delay [base + i * skew] so no two links share
   a propagation delay: packets arriving at one switch over different
   paths then land on distinct timestamps, which pins the event order
   regardless of how a partitioned run interleaves shards. *)

let ring ?(delay = Sim_time.us 1) ?(host_delay = Sim_time.us 1)
    ?(skew = Sim_time.ps 1) ~switches () =
  if switches < 2 then invalid_arg "Topology.ring: need at least 2 switches";
  let links =
    List.init switches (fun i ->
        {
          link_id = i;
          a = (i, 1);
          b = ((i + 1) mod switches, 2);
          delay = delay + (i * skew);
          detection_delay = None;
        })
  in
  let attachments =
    List.init switches (fun h -> { host = h; switch = h; port = 0; host_delay })
  in
  { switches; hosts = switches; links; attachments }

let ring_route ~switches ~sw ~dst_host =
  if dst_host < 0 || dst_host >= switches then
    invalid_arg (Printf.sprintf "Topology.ring_route: host %d (of %d)" dst_host switches);
  if sw = dst_host then 0 else 1

(* Fat tree (Al-Fares et al.): k pods, (k/2)^2 cores. Ids: cores
   [0 .. (k/2)^2 - 1], then pod p occupies a block of k switches —
   aggregations first, edges second. *)

let ft_half k = k / 2
let ft_cores k = ft_half k * ft_half k
let ft_agg ~k ~pod i = ft_cores k + (pod * k) + i
let ft_edge ~k ~pod e = ft_cores k + (pod * k) + ft_half k + e

let ft_host_loc ~k h =
  let half = ft_half k in
  let per_pod = half * half in
  let pod = h / per_pod in
  let e = h mod per_pod / half in
  let m = h mod half in
  (pod, e, m)

let fat_tree ?(host_delay = Sim_time.us 1) ?(edge_delay = Sim_time.us 1)
    ?(core_delay = Sim_time.us 2) ?(skew = Sim_time.ps 1) ~k () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let half = ft_half k in
  let switches = ft_cores k + (k * k) in
  let hosts = k * k * k / 4 in
  let links = ref [] in
  let n_links = ref 0 in
  let add ~base a b =
    let id = !n_links in
    incr n_links;
    links :=
      { link_id = id; a; b; delay = base + (id * skew); detection_delay = None } :: !links
  in
  (* Aggregation i of pod p, up-port [half + j], reaches core [i*half + j]
     whose port p faces pod p. *)
  for p = 0 to k - 1 do
    for i = 0 to half - 1 do
      for j = 0 to half - 1 do
        add ~base:core_delay ((i * half) + j, p) (ft_agg ~k ~pod:p i, half + j)
      done
    done
  done;
  (* Aggregation i, down-port e, to edge e's up-port [half + i]. *)
  for p = 0 to k - 1 do
    for i = 0 to half - 1 do
      for e = 0 to half - 1 do
        add ~base:edge_delay (ft_agg ~k ~pod:p i, e) (ft_edge ~k ~pod:p e, half + i)
      done
    done
  done;
  let attachments =
    List.init hosts (fun h ->
        let pod, e, m = ft_host_loc ~k h in
        { host = h; switch = ft_edge ~k ~pod e; port = m; host_delay })
  in
  { switches; hosts; links = List.rev !links; attachments }

let fat_tree_route ~k ~sw ~dst_host =
  let half = ft_half k in
  let cores = ft_cores k in
  let dpod, de, dm = ft_host_loc ~k dst_host in
  if dst_host < 0 || dpod >= k then
    invalid_arg (Printf.sprintf "Topology.fat_tree_route: host %d" dst_host);
  if sw < cores then
    (* Core switch: port p faces pod p. *)
    dpod
  else begin
    let off = (sw - cores) mod k in
    let pod = (sw - cores) / k in
    if off < half then
      (* Aggregation [off]: down-port e inside its pod, else up via the
         core column picked by the destination member index. *)
      if pod = dpod then de else half + dm
    else begin
      let e = off - half in
      if pod = dpod && e = de then dm else half + dm
    end
  end

type built = {
  network : Network.t;
  switches : Event_switch.t array;
  hosts : Host.t array;
  switch_links : Tmgr.Link.t array;
  host_links : Tmgr.Link.t array;
}

let build ~sched ~config ~program t =
  validate t;
  let nports = ports t in
  let switches =
    Array.init t.switches (fun sw ->
        let cfg = config sw in
        let cfg = { cfg with Event_switch.num_ports = max cfg.Event_switch.num_ports nports.(sw) } in
        Event_switch.create ~sched ~id:sw ~config:cfg ~program:(program sw) ())
  in
  let hosts = Array.init t.hosts (fun h -> Host.create ~sched ~id:h ()) in
  let network = Network.create ~sched in
  let switch_links =
    Array.of_list
      (List.map
         (fun l ->
           Network.connect_switches network
             ~a:(switches.(fst l.a), snd l.a)
             ~b:(switches.(fst l.b), snd l.b)
             ~delay:l.delay ?detection_delay:l.detection_delay ())
         t.links)
  in
  let host_links =
    Array.of_list
      (List.map
         (fun at ->
           Network.connect_host network ~host:hosts.(at.host)
             ~switch:(switches.(at.switch), at.port)
             ~delay:at.host_delay ())
         t.attachments)
  in
  { network; switches; hosts; switch_links; host_links }
