(** Declarative multi-switch topologies.

    A {!t} is pure data — switch count, switch-to-switch links, host
    attachments — that can be instantiated either sequentially
    ({!build}, on one scheduler via {!Network}) or partitioned across
    parallel shards (the [parsim] library). Builders exist for the
    common experiment shapes so multi-switch experiments stop
    hand-wiring ports.

    Every link carries its own propagation delay. The builders give
    link [i] a delay of [base + i * skew] (default skew 1 ps): distinct
    per-link delays keep independently-routed packets from colliding on
    the same picosecond at a switch, which makes event timestamps — and
    therefore merged traces — insensitive to how a partitioned run
    interleaves shards. The minimum link delay is also the conservative
    lookahead a partitioned execution may run ahead by. *)

type link = {
  link_id : int;
  a : int * int;  (** (switch, port) *)
  b : int * int;
  delay : Eventsim.Sim_time.t;
  detection_delay : Eventsim.Sim_time.t option;
}

type attachment = {
  host : int;
  switch : int;
  port : int;
  host_delay : Eventsim.Sim_time.t;
}

type t = {
  switches : int;  (** ids [0 .. switches-1] *)
  hosts : int;  (** ids [0 .. hosts-1] *)
  links : link list;  (** in [link_id] order *)
  attachments : attachment list;  (** in host-id order, one per host *)
}

val validate : t -> unit
(** Raises [Invalid_argument] if a (switch, port) pair is wired twice,
    an id is out of range, or host ids are not exactly [0..hosts-1]. *)

val max_port : t -> int -> int
(** Highest port used on a switch ([-1] if none). *)

val ports : t -> int array
(** Port count ([max_port + 1]) for every switch, computed in one pass
    over the links and attachments. Prefer this to calling {!max_port}
    per switch when building a whole topology — the per-switch form is
    quadratic and shows at 1000+ switches. *)

val host_counts : t -> int array
(** Number of hosts attached to every switch, one pass. Feeds the
    event-rate weights of [Parsim.default_weights]. *)

val min_link_delay : t -> Eventsim.Sim_time.t
(** Smallest switch-to-switch link delay — the global conservative
    lookahead bound. Raises [Invalid_argument] if there are no links. *)

(** {1 Builders} *)

val ring :
  ?delay:Eventsim.Sim_time.t ->
  ?host_delay:Eventsim.Sim_time.t ->
  ?skew:Eventsim.Sim_time.t ->
  switches:int ->
  unit ->
  t
(** [switches >= 2] switches in a cycle, one host each. Port 0 of each
    switch faces its host; port 1 is the clockwise uplink to the next
    switch's port 2. Defaults: 1 us link delay, 1 us host delay,
    1 ps skew. *)

val ring_route : switches:int -> sw:int -> dst_host:int -> int
(** Egress port on [sw] toward [dst_host] under clockwise routing:
    port 0 when the host is local, else port 1. *)

val fat_tree :
  ?host_delay:Eventsim.Sim_time.t ->
  ?edge_delay:Eventsim.Sim_time.t ->
  ?core_delay:Eventsim.Sim_time.t ->
  ?skew:Eventsim.Sim_time.t ->
  k:int ->
  unit ->
  t
(** A k-ary fat tree (k even, >= 2): [(k/2)^2] core switches, [k] pods
    of [k/2] aggregation plus [k/2] edge switches, [k^3/4] hosts.
    Switch ids: cores first, then pod [p]'s aggregations
    [(k/2)^2 + p*k ..] followed by its edges. Host
    [p*(k/2)^2 + e*(k/2) + m] sits on port [m] of edge [e] in pod [p].
    Edge/aggregation uplinks use ports [k/2 ..]. *)

val fat_tree_route : k:int -> sw:int -> dst_host:int -> int
(** Egress port on [sw] toward [dst_host]: standard two-level fat-tree
    routing with the deterministic ECMP choice fixed by the
    destination's member index, so every (sw, dst) pair always takes
    the same path. *)

(** {1 Sequential instantiation} *)

type built = {
  network : Network.t;
  switches : Event_switch.t array;
  hosts : Host.t array;
  switch_links : Tmgr.Link.t array;  (** by [link_id] *)
  host_links : Tmgr.Link.t array;  (** by host id *)
}

val build :
  sched:Eventsim.Scheduler.t ->
  config:(int -> Event_switch.config) ->
  program:(int -> Program.spec) ->
  t ->
  built
(** Instantiate on one scheduler: create every switch (its config's
    [num_ports] is raised to cover the ports the topology uses) and
    host, and wire every link through {!Network}. Validates first. *)
