type cls =
  | Ingress_packet
  | Egress_packet
  | Recirculated_packet
  | Generated_packet
  | Packet_transmitted
  | Buffer_enqueue
  | Buffer_dequeue
  | Buffer_overflow
  | Buffer_underflow
  | Timer_expiration
  | Control_plane
  | Link_status_change
  | User_event

let all_classes =
  [
    Ingress_packet;
    Egress_packet;
    Recirculated_packet;
    Generated_packet;
    Packet_transmitted;
    Buffer_enqueue;
    Buffer_dequeue;
    Buffer_overflow;
    Buffer_underflow;
    Timer_expiration;
    Control_plane;
    Link_status_change;
    User_event;
  ]

let cls_name = function
  | Ingress_packet -> "ingress-packet"
  | Egress_packet -> "egress-packet"
  | Recirculated_packet -> "recirculated-packet"
  | Generated_packet -> "generated-packet"
  | Packet_transmitted -> "packet-transmitted"
  | Buffer_enqueue -> "buffer-enqueue"
  | Buffer_dequeue -> "buffer-dequeue"
  | Buffer_overflow -> "buffer-overflow"
  | Buffer_underflow -> "buffer-underflow"
  | Timer_expiration -> "timer-expiration"
  | Control_plane -> "control-plane-triggered"
  | Link_status_change -> "link-status-change"
  | User_event -> "user-event"

let cls_index = function
  | Ingress_packet -> 0
  | Egress_packet -> 1
  | Recirculated_packet -> 2
  | Generated_packet -> 3
  | Packet_transmitted -> 4
  | Buffer_enqueue -> 5
  | Buffer_dequeue -> 6
  | Buffer_overflow -> 7
  | Buffer_underflow -> 8
  | Timer_expiration -> 9
  | Control_plane -> 10
  | Link_status_change -> 11
  | User_event -> 12

let num_classes = 13
let cls_equal a b = cls_index a = cls_index b

(* Fields are mutable so the off-heap event store can decode queued
   events into reused per-class scratch records instead of allocating a
   fresh record per event. Consumers treat events as read-only. *)
type buffer_event = {
  mutable port : int;
  mutable qid : int;
  mutable pkt_len : int;
  mutable flow_id : int;
  mutable meta : int array;
  mutable occupancy_pkts : int;
  mutable occupancy_bytes : int;
  mutable time : int;
}

type underflow_event = { mutable port : int; mutable qid : int; mutable time : int }

type transmit_event = {
  mutable port : int;
  mutable pkt_len : int;
  mutable flow_id : int;
  mutable time : int;
}

type timer_event = {
  mutable id : int;
  mutable period : int;
  mutable scheduled : int;
  mutable fired : int;
  mutable count : int;
}

type link_event = { mutable port : int; mutable up : bool; mutable time : int }
type control_event = { mutable opcode : int; mutable arg : int; mutable time : int }
type user_event = { mutable tag : int; mutable data : int; mutable time : int }

type t =
  | Enqueue of buffer_event
  | Dequeue of buffer_event
  | Overflow of buffer_event
  | Underflow of underflow_event
  | Transmitted of transmit_event
  | Timer of timer_event
  | Link_change of link_event
  | Control of control_event
  | User of user_event

let cls_of = function
  | Enqueue _ -> Buffer_enqueue
  | Dequeue _ -> Buffer_dequeue
  | Overflow _ -> Buffer_overflow
  | Underflow _ -> Buffer_underflow
  | Transmitted _ -> Packet_transmitted
  | Timer _ -> Timer_expiration
  | Link_change _ -> Link_status_change
  | Control _ -> Control_plane
  | User _ -> User_event

(* Direct class index, skipping the intermediate [cls] constructor on
   the dispatch hot path. *)
let cls_ix_of = function
  | Enqueue _ -> 5
  | Dequeue _ -> 6
  | Overflow _ -> 7
  | Underflow _ -> 8
  | Transmitted _ -> 4
  | Timer _ -> 9
  | Link_change _ -> 11
  | Control _ -> 10
  | User _ -> 12

let time_of = function
  | Enqueue b | Dequeue b | Overflow b -> b.time
  | Underflow u -> u.time
  | Transmitted t -> t.time
  | Timer t -> t.fired
  | Link_change l -> l.time
  | Control c -> c.time
  | User u -> u.time

let pp_cls ppf c = Format.pp_print_string ppf (cls_name c)

let pp ppf t =
  match t with
  | Enqueue b ->
      Format.fprintf ppf "enqueue port=%d qid=%d len=%d occ=%dB" b.port b.qid b.pkt_len
        b.occupancy_bytes
  | Dequeue b ->
      Format.fprintf ppf "dequeue port=%d qid=%d len=%d occ=%dB" b.port b.qid b.pkt_len
        b.occupancy_bytes
  | Overflow b -> Format.fprintf ppf "overflow port=%d qid=%d len=%d" b.port b.qid b.pkt_len
  | Underflow u -> Format.fprintf ppf "underflow port=%d qid=%d" u.port u.qid
  | Transmitted x -> Format.fprintf ppf "transmitted port=%d len=%d" x.port x.pkt_len
  | Timer x -> Format.fprintf ppf "timer id=%d count=%d" x.id x.count
  | Link_change l -> Format.fprintf ppf "link port=%d %s" l.port (if l.up then "up" else "down")
  | Control c -> Format.fprintf ppf "control op=%d arg=%d" c.opcode c.arg
  | User u -> Format.fprintf ppf "user tag=%d data=%d" u.tag u.data
