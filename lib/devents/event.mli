(** Data-plane events — the paper's Table 1.

    Packet events (ingress, egress, recirculated, generated) carry a
    packet through the pipeline; the remaining events are metadata-only
    and are merged into the pipeline by the {!Event_merger}
    (piggybacking on a packet or riding an empty carrier). *)

(** The thirteen event classes of Table 1. *)
type cls =
  | Ingress_packet
  | Egress_packet
  | Recirculated_packet
  | Generated_packet
  | Packet_transmitted
  | Buffer_enqueue
  | Buffer_dequeue
  | Buffer_overflow
  | Buffer_underflow
  | Timer_expiration
  | Control_plane
  | Link_status_change
  | User_event

val all_classes : cls list
val cls_name : cls -> string
val cls_index : cls -> int
val num_classes : int
val cls_equal : cls -> cls -> bool

(** Metadata carried by buffer events. [meta] is the packet's
    [enq_meta]/[deq_meta] slots as initialised by the ingress program
    (the paper's [enq_meta]/[deq_meta] mechanism). Occupancy fields are
    the port's queue state immediately after the event.

    Fields of every event record are mutable only so that
    {!Event_store} can decode queued events into reused per-class
    scratch records without allocating. Handlers must treat delivered
    events as {b read-only} and copy any field they want to retain past
    the handler's return — the record (and its [meta] array) is
    overwritten by the next event of the same class. *)
type buffer_event = {
  mutable port : int;
  mutable qid : int;
  mutable pkt_len : int;
  mutable flow_id : int;
  mutable meta : int array;
  mutable occupancy_pkts : int;
  mutable occupancy_bytes : int;
  mutable time : int;
}

type underflow_event = { mutable port : int; mutable qid : int; mutable time : int }

type transmit_event = {
  mutable port : int;
  mutable pkt_len : int;
  mutable flow_id : int;
  mutable time : int;
}

(** [scheduled] is the ideal instant, [fired] the quantised actual
    instant; [count] is the per-timer firing sequence number. *)
type timer_event = {
  mutable id : int;
  mutable period : int;
  mutable scheduled : int;
  mutable fired : int;
  mutable count : int;
}

type link_event = { mutable port : int; mutable up : bool; mutable time : int }
type control_event = { mutable opcode : int; mutable arg : int; mutable time : int }
type user_event = { mutable tag : int; mutable data : int; mutable time : int }

type t =
  | Enqueue of buffer_event
  | Dequeue of buffer_event
  | Overflow of buffer_event
      (** A packet that had to be dropped because the buffer was full;
          occupancy fields describe the (full) queue. *)
  | Underflow of underflow_event  (** A dequeue left the queue empty. *)
  | Transmitted of transmit_event
  | Timer of timer_event
  | Link_change of link_event
  | Control of control_event
  | User of user_event

val cls_of : t -> cls

val cls_ix_of : t -> int
(** [cls_ix_of ev = cls_index (cls_of ev)], in one match. *)

val time_of : t -> int
val pp_cls : Format.formatter -> cls -> unit
val pp : Format.formatter -> t -> unit
