module Scheduler = Eventsim.Scheduler
module Pipeline = Pisa.Pipeline

type packet_kind = Ingress | Recirculated | Generated

type carrier = {
  pkt : (packet_kind * Netcore.Packet.t) option;
  events : Event.t list;
}

type config = {
  event_queue_capacity : int;
  packet_queue_capacity : int;
  max_events_per_carrier : int;
  priority : Event.cls list;
}

let default_config =
  {
    event_queue_capacity = 64;
    packet_queue_capacity = 256;
    max_events_per_carrier = 4;
    priority =
      [
        Event.Link_status_change;
        Event.Timer_expiration;
        Event.Control_plane;
        Event.Buffer_overflow;
        Event.Buffer_underflow;
        Event.Buffer_dequeue;
        Event.Buffer_enqueue;
        Event.Packet_transmitted;
        Event.User_event;
      ];
  }

type t = {
  sched : Scheduler.t;
  pipeline : Pipeline.t;
  config : config;
  process : carrier -> exit_time:Eventsim.Sim_time.t -> unit;
  (* Packet input queues by kind priority: ingress, recirculated,
     generated. *)
  pkt_queues : Netcore.Packet.t Event_queue.t array;
  event_queues : Event.t Event_queue.t array; (* indexed by Event.cls_index *)
  mutable admission_armed : bool;
  mutable admit_cb : unit -> unit; (* persistent; posted once per carrier *)
  mutable empty_carriers : int;
  mutable piggybacked : int;
}

let kind_index = function Ingress -> 0 | Recirculated -> 1 | Generated -> 2
let kind_of_index = function 0 -> Ingress | 1 -> Recirculated | _ -> Generated

let packets_waiting t = Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.pkt_queues

let events_waiting t =
  Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.event_queues

let has_work t = packets_waiting t > 0 || events_waiting t > 0

let next_packet t =
  let rec go k =
    if k >= Array.length t.pkt_queues then None
    else
      match Event_queue.pop t.pkt_queues.(k) with
      | Some pkt -> Some (kind_of_index k, pkt)
      | None -> go (k + 1)
  in
  go 0

(* Collect up to the metadata-bus limit of events, one per class, in
   priority order. *)
let collect_events t =
  let rec go classes taken acc =
    match classes with
    | [] -> List.rev acc
    | _ when taken >= t.config.max_events_per_carrier -> List.rev acc
    | cls :: rest -> (
        match Event_queue.pop t.event_queues.(Event.cls_index cls) with
        | Some ev -> go rest (taken + 1) (ev :: acc)
        | None -> go rest taken acc)
  in
  go t.config.priority 0 []

let rec arm t =
  if (not t.admission_armed) && has_work t then begin
    t.admission_armed <- true;
    let at = Pipeline.earliest_admission t.pipeline in
    Scheduler.post ~cls:"merger.admit" t.sched ~at t.admit_cb
  end

and admit t =
  t.admission_armed <- false;
  if has_work t then begin
    let pkt = next_packet t in
    let events = collect_events t in
    (match pkt with
    | Some _ -> t.piggybacked <- t.piggybacked + List.length events
    | None -> if events <> [] then t.empty_carriers <- t.empty_carriers + 1);
    if pkt <> None || events <> [] then begin
      let exit_time = Pipeline.admit t.pipeline ~has_packet:(pkt <> None) in
      t.process { pkt; events } ~exit_time
    end;
    arm t
  end

let create ~sched ~pipeline ?(config = default_config) ~process () =
  if config.max_events_per_carrier <= 0 then
    invalid_arg "Event_merger: max_events_per_carrier must be positive";
  let t =
    {
      sched;
      pipeline;
      config;
      process;
      pkt_queues =
        Array.init 3 (fun _ -> Event_queue.create ~capacity:config.packet_queue_capacity);
      event_queues =
        Array.init Event.num_classes (fun _ ->
            Event_queue.create ~capacity:config.event_queue_capacity);
      admission_armed = false;
      admit_cb = (fun () -> ());
      empty_carriers = 0;
      piggybacked = 0;
    }
  in
  t.admit_cb <- (fun () -> admit t);
  t

let offer_packet t kind pkt =
  let ok = Event_queue.push t.pkt_queues.(kind_index kind) pkt in
  if ok then arm t;
  ok

let offer_event t ev =
  let ok = Event_queue.push t.event_queues.(Event.cls_index (Event.cls_of ev)) ev in
  if ok then arm t;
  ok

let empty_carriers t = t.empty_carriers
let piggybacked_events t = t.piggybacked

let event_drops t =
  List.filter_map
    (fun cls ->
      let d = Event_queue.dropped t.event_queues.(Event.cls_index cls) in
      if d > 0 then Some (cls, d) else None)
    Event.all_classes

let packet_drops t = Array.fold_left (fun acc q -> acc + Event_queue.dropped q) 0 t.pkt_queues
let queue_high_watermark t cls = Event_queue.high_watermark t.event_queues.(Event.cls_index cls)
