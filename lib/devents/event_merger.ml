module Scheduler = Eventsim.Scheduler
module Pipeline = Pisa.Pipeline

type packet_kind = Ingress | Recirculated | Generated

type carrier = {
  pkt : (packet_kind * Netcore.Packet.t) option;
  events : Event.t list;
}

type config = {
  event_queue_capacity : int;
  packet_queue_capacity : int;
  max_events_per_carrier : int;
  priority : Event.cls list;
}

let default_config =
  {
    event_queue_capacity = 64;
    packet_queue_capacity = 256;
    max_events_per_carrier = 4;
    priority =
      [
        Event.Link_status_change;
        Event.Timer_expiration;
        Event.Control_plane;
        Event.Buffer_overflow;
        Event.Buffer_underflow;
        Event.Buffer_dequeue;
        Event.Buffer_enqueue;
        Event.Packet_transmitted;
        Event.User_event;
      ];
  }

type t = {
  sched : Scheduler.t;
  pipeline : Pipeline.t;
  config : config;
  process : carrier -> exit_time:Eventsim.Sim_time.t -> unit;
  (* Packet input queues by kind priority: ingress, recirculated,
     generated. *)
  pkt_queues : Netcore.Packet.t Event_queue.t array;
  event_queues : Event.t Event_queue.t array; (* indexed by Event.cls_index *)
  mutable admission_armed : bool;
  mutable admit_cb : unit -> unit; (* persistent; posted once per carrier *)
  mutable empty_carriers : int;
  mutable piggybacked : int;
  mutable shedder : Resil.Shedder.t option;
  mutable shed_events : int;
  mutable shed_packets : int;
}

let kind_index = function Ingress -> 0 | Recirculated -> 1 | Generated -> 2
let kind_of_index = function 0 -> Ingress | 1 -> Recirculated | _ -> Generated

let packets_waiting t = Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.pkt_queues

let events_waiting t =
  Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.event_queues

let has_work t = packets_waiting t > 0 || events_waiting t > 0

let next_packet t =
  let rec go k =
    if k >= Array.length t.pkt_queues then None
    else
      match Event_queue.pop t.pkt_queues.(k) with
      | Some pkt -> Some (kind_of_index k, pkt)
      | None -> go (k + 1)
  in
  go 0

(* Collect up to the metadata-bus limit of events, one per class, in
   priority order. *)
let collect_events t =
  let rec go classes taken acc =
    match classes with
    | [] -> List.rev acc
    | _ when taken >= t.config.max_events_per_carrier -> List.rev acc
    | cls :: rest -> (
        match Event_queue.pop t.event_queues.(Event.cls_index cls) with
        | Some ev -> go rest (taken + 1) (ev :: acc)
        | None -> go rest taken acc)
  in
  go t.config.priority 0 []

let rec arm t =
  if (not t.admission_armed) && has_work t then begin
    t.admission_armed <- true;
    let at = Pipeline.earliest_admission t.pipeline in
    Scheduler.post ~cls:"merger.admit" t.sched ~at t.admit_cb
  end

and admit t =
  t.admission_armed <- false;
  if has_work t then begin
    let pkt = next_packet t in
    let events = collect_events t in
    (match pkt with
    | Some _ -> t.piggybacked <- t.piggybacked + List.length events
    | None -> if events <> [] then t.empty_carriers <- t.empty_carriers + 1);
    if pkt <> None || events <> [] then begin
      let exit_time = Pipeline.admit t.pipeline ~has_packet:(pkt <> None) in
      t.process { pkt; events } ~exit_time
    end;
    arm t
  end

let create ~sched ~pipeline ?(config = default_config) ~process () =
  if config.max_events_per_carrier <= 0 then
    invalid_arg "Event_merger: max_events_per_carrier must be positive";
  let t =
    {
      sched;
      pipeline;
      config;
      process;
      pkt_queues =
        Array.init 3 (fun _ -> Event_queue.create ~capacity:config.packet_queue_capacity);
      event_queues =
        Array.init Event.num_classes (fun _ ->
            Event_queue.create ~capacity:config.event_queue_capacity);
      admission_armed = false;
      admit_cb = (fun () -> ());
      empty_carriers = 0;
      piggybacked = 0;
      shedder = None;
      shed_events = 0;
      shed_packets = 0;
    }
  in
  t.admit_cb <- (fun () -> admit t);
  t

let kind_cls_index = function
  | Ingress -> Event.cls_index Event.Ingress_packet
  | Recirculated -> Event.cls_index Event.Recirculated_packet
  | Generated -> Event.cls_index Event.Generated_packet

(* With no shedder installed (the default) offers are untouched, so the
   seed behaviour is byte-identical. *)
let shed t ~cls =
  match t.shedder with
  | None -> false
  | Some s -> Resil.Shedder.offer s ~depth:(packets_waiting t + events_waiting t) ~cls

let offer_packet t kind pkt =
  if shed t ~cls:(kind_cls_index kind) then begin
    t.shed_packets <- t.shed_packets + 1;
    false
  end
  else begin
    let ok = Event_queue.push t.pkt_queues.(kind_index kind) pkt in
    if ok then arm t;
    ok
  end

let offer_event t ev =
  if shed t ~cls:(Event.cls_index (Event.cls_of ev)) then begin
    t.shed_events <- t.shed_events + 1;
    true
  end
  else begin
    let ok = Event_queue.push t.event_queues.(Event.cls_index (Event.cls_of ev)) ev in
    if ok then arm t;
    ok
  end

let set_shedder t s = t.shedder <- Some s
let shedder t = t.shedder
let events_shed t = t.shed_events
let packets_shed t = t.shed_packets

(* The canonical watermark ladder, mapping §4's staleness trade-off to
   overload tiers: telemetry-ish aggregation events go first at [w],
   control-ish events at [2w], packets only at [4w]. Overflow and
   link-change events are never shed — losing them hides the very
   conditions degradation is supposed to surface. *)
let shed_config ~watermark =
  if watermark <= 0 then invalid_arg "Event_merger.shed_config: watermark must be positive";
  let ix = Event.cls_index in
  {
    Resil.Shedder.tiers =
      [
        {
          Resil.Shedder.name = "telemetry";
          classes =
            [
              ix Event.Packet_transmitted;
              ix Event.Buffer_enqueue;
              ix Event.Buffer_dequeue;
              ix Event.User_event;
            ];
          high = watermark;
          low = max 1 (watermark / 2);
        };
        {
          Resil.Shedder.name = "control";
          classes = [ ix Event.Buffer_underflow; ix Event.Timer_expiration; ix Event.Control_plane ];
          high = 2 * watermark;
          low = watermark;
        };
        {
          Resil.Shedder.name = "packets";
          classes =
            [ ix Event.Ingress_packet; ix Event.Recirculated_packet; ix Event.Generated_packet ];
          high = 4 * watermark;
          low = 2 * watermark;
        };
      ];
  }

let empty_carriers t = t.empty_carriers
let piggybacked_events t = t.piggybacked

let event_drops t =
  List.filter_map
    (fun cls ->
      let d = Event_queue.dropped t.event_queues.(Event.cls_index cls) in
      if d > 0 then Some (cls, d) else None)
    Event.all_classes

let packet_drops t = Array.fold_left (fun acc q -> acc + Event_queue.dropped q) 0 t.pkt_queues
let queue_high_watermark t cls = Event_queue.high_watermark t.event_queues.(Event.cls_index cls)
