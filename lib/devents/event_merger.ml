module Scheduler = Eventsim.Scheduler
module Pipeline = Pisa.Pipeline
module Packet = Netcore.Packet

type packet_kind = Ingress | Recirculated | Generated

(* One reused scratch carrier per merger: [admit] refills it in place
   and hands it to [process], so steady-state admission allocates
   nothing. Consumers must copy anything they retain. *)
type carrier = {
  mutable kind : packet_kind;
  mutable pkt : Packet.t; (* [Packet.nil] for an empty carrier *)
  events : Event.t array; (* first [n_events] slots valid, priority order *)
  mutable n_events : int;
}

type config = {
  event_queue_capacity : int;
  packet_queue_capacity : int;
  max_events_per_carrier : int;
  priority : Event.cls list;
}

let default_config =
  {
    event_queue_capacity = 64;
    packet_queue_capacity = 256;
    max_events_per_carrier = 4;
    priority =
      [
        Event.Link_status_change;
        Event.Timer_expiration;
        Event.Control_plane;
        Event.Buffer_overflow;
        Event.Buffer_underflow;
        Event.Buffer_dequeue;
        Event.Buffer_enqueue;
        Event.Packet_transmitted;
        Event.User_event;
      ];
  }

type t = {
  sched : Scheduler.t;
  pipeline : Pipeline.t;
  config : config;
  process : carrier -> exit_time:Eventsim.Sim_time.t -> unit;
  (* Packet input queues by kind priority: ingress, recirculated,
     generated. *)
  pkt_queues : Packet.t Event_queue.t array;
  store : Event_store.t; (* queued metadata events, off-heap SoA rings *)
  priority_ix : int array; (* config.priority as class indices *)
  carrier : carrier;
  mutable admission_armed : bool;
  mutable admit_cb : unit -> unit; (* persistent; posted once per carrier *)
  mutable empty_carriers : int;
  mutable piggybacked : int;
  mutable shedder : Resil.Shedder.t option;
  mutable shed_events : int;
  mutable shed_packets : int;
}

let kind_index = function Ingress -> 0 | Recirculated -> 1 | Generated -> 2
let kind_of_index = function 0 -> Ingress | 1 -> Recirculated | _ -> Generated

(* Manual loop: [Array.fold_left] makes an indirect call per queue, and
   this runs two or three times per admitted carrier ([has_work] from
   both [admit] and [arm], plus shedder depth probes). *)
let packets_waiting t =
  let qs = t.pkt_queues in
  let acc = ref 0 in
  for i = 0 to Array.length qs - 1 do
    acc := !acc + Event_queue.length (Array.unsafe_get qs i)
  done;
  !acc
let events_waiting t = Event_store.total t.store
let has_work t = packets_waiting t > 0 || events_waiting t > 0

(* Refill the scratch carrier's packet slot from the highest-priority
   non-empty kind queue ([Packet.nil] when all are empty). *)
let fill_packet t =
  let c = t.carrier in
  let rec go k =
    if k >= Array.length t.pkt_queues then c.pkt <- Packet.nil
    else begin
      let pkt = Event_queue.pop_or t.pkt_queues.(k) ~default:Packet.nil in
      if Packet.is_nil pkt then go (k + 1)
      else begin
        c.kind <- kind_of_index k;
        c.pkt <- pkt
      end
    end
  in
  go 0

(* Collect up to the metadata-bus limit of events, one per class, in
   priority order. Each collected event decodes into its class's
   scratch record, and a carrier holds at most one event per class, so
   the slots never alias. *)
let collect_events t =
  let c = t.carrier in
  c.n_events <- 0;
  let limit = t.config.max_events_per_carrier in
  let n = Array.length t.priority_ix in
  let i = ref 0 in
  while c.n_events < limit && !i < n do
    let ix = Array.unsafe_get t.priority_ix !i in
    if Event_store.length t.store ~cls_ix:ix > 0 then begin
      c.events.(c.n_events) <- Event_store.take t.store ~cls_ix:ix;
      c.n_events <- c.n_events + 1
    end;
    incr i
  done

let rec arm t =
  if (not t.admission_armed) && has_work t then begin
    t.admission_armed <- true;
    let at = Pipeline.earliest_admission t.pipeline in
    Scheduler.post ~cls:"merger.admit" t.sched ~at t.admit_cb
  end

and admit t =
  t.admission_armed <- false;
  if has_work t then begin
    let c = t.carrier in
    fill_packet t;
    collect_events t;
    let has_packet = not (Packet.is_nil c.pkt) in
    if has_packet then t.piggybacked <- t.piggybacked + c.n_events
    else if c.n_events > 0 then t.empty_carriers <- t.empty_carriers + 1;
    if has_packet || c.n_events > 0 then begin
      let exit_time = Pipeline.admit t.pipeline ~has_packet in
      t.process c ~exit_time;
      c.pkt <- Packet.nil (* release the reference *)
    end;
    arm t
  end

let create ~sched ~pipeline ?(config = default_config) ~process () =
  if config.max_events_per_carrier <= 0 then
    invalid_arg "Event_merger: max_events_per_carrier must be positive";
  (* Inert filler for the carrier's event slots; process only reads
     slots below [n_events]. *)
  let filler = Event.Underflow { Event.port = 0; qid = 0; time = 0 } in
  let t =
    {
      sched;
      pipeline;
      config;
      process;
      pkt_queues =
        Array.init 3 (fun _ -> Event_queue.create ~capacity:config.packet_queue_capacity);
      store = Event_store.create ~capacity:config.event_queue_capacity ();
      priority_ix = Array.of_list (List.map Event.cls_index config.priority);
      carrier =
        {
          kind = Ingress;
          pkt = Packet.nil;
          events = Array.make config.max_events_per_carrier filler;
          n_events = 0;
        };
      admission_armed = false;
      admit_cb = (fun () -> ());
      empty_carriers = 0;
      piggybacked = 0;
      shedder = None;
      shed_events = 0;
      shed_packets = 0;
    }
  in
  t.admit_cb <- (fun () -> admit t);
  t

let kind_cls_index = function
  | Ingress -> Event.cls_index Event.Ingress_packet
  | Recirculated -> Event.cls_index Event.Recirculated_packet
  | Generated -> Event.cls_index Event.Generated_packet

(* With no shedder installed (the default) offers are untouched, so the
   seed behaviour is byte-identical. *)
let shed t ~cls =
  match t.shedder with
  | None -> false
  | Some s -> Resil.Shedder.offer s ~depth:(packets_waiting t + events_waiting t) ~cls

let offer_packet t kind pkt =
  if shed t ~cls:(kind_cls_index kind) then begin
    t.shed_packets <- t.shed_packets + 1;
    false
  end
  else begin
    let ok = Event_queue.push t.pkt_queues.(kind_index kind) pkt in
    if ok then arm t;
    ok
  end

(* {2 Unboxed event offers (the traffic-manager hot path)} *)

let offer_buffer t ~cls_ix ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes
    ~time =
  if shed t ~cls:cls_ix then begin
    t.shed_events <- t.shed_events + 1;
    true
  end
  else begin
    let ok =
      Event_store.push_buffer t.store ~cls_ix ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts
        ~occupancy_bytes ~time
    in
    if ok then arm t;
    ok
  end

let offer_underflow t ~port ~qid ~time =
  if shed t ~cls:(Event.cls_index Event.Buffer_underflow) then begin
    t.shed_events <- t.shed_events + 1;
    true
  end
  else begin
    let ok = Event_store.push_underflow t.store ~port ~qid ~time in
    if ok then arm t;
    ok
  end

let offer_transmitted t ~port ~pkt_len ~flow_id ~time =
  if shed t ~cls:(Event.cls_index Event.Packet_transmitted) then begin
    t.shed_events <- t.shed_events + 1;
    true
  end
  else begin
    let ok = Event_store.push_transmitted t.store ~port ~pkt_len ~flow_id ~time in
    if ok then arm t;
    ok
  end

let offer_event t ev =
  if shed t ~cls:(Event.cls_ix_of ev) then begin
    t.shed_events <- t.shed_events + 1;
    true
  end
  else begin
    let ok = Event_store.push t.store ev in
    if ok then arm t;
    ok
  end

let set_shedder t s = t.shedder <- Some s
let shedder t = t.shedder
let events_shed t = t.shed_events
let packets_shed t = t.shed_packets

(* The canonical watermark ladder, mapping §4's staleness trade-off to
   overload tiers: telemetry-ish aggregation events go first at [w],
   control-ish events at [2w], packets only at [4w]. Overflow and
   link-change events are never shed — losing them hides the very
   conditions degradation is supposed to surface. *)
let shed_config ~watermark =
  if watermark <= 0 then invalid_arg "Event_merger.shed_config: watermark must be positive";
  let ix = Event.cls_index in
  {
    Resil.Shedder.tiers =
      [
        {
          Resil.Shedder.name = "telemetry";
          classes =
            [
              ix Event.Packet_transmitted;
              ix Event.Buffer_enqueue;
              ix Event.Buffer_dequeue;
              ix Event.User_event;
            ];
          high = watermark;
          low = max 1 (watermark / 2);
        };
        {
          Resil.Shedder.name = "control";
          classes = [ ix Event.Buffer_underflow; ix Event.Timer_expiration; ix Event.Control_plane ];
          high = 2 * watermark;
          low = watermark;
        };
        {
          Resil.Shedder.name = "packets";
          classes =
            [ ix Event.Ingress_packet; ix Event.Recirculated_packet; ix Event.Generated_packet ];
          high = 4 * watermark;
          low = 2 * watermark;
        };
      ];
  }

let empty_carriers t = t.empty_carriers
let piggybacked_events t = t.piggybacked

let event_drops t =
  List.filter_map
    (fun cls ->
      let d = Event_store.dropped t.store ~cls_ix:(Event.cls_index cls) in
      if d > 0 then Some (cls, d) else None)
    Event.all_classes

let packet_drops t = Array.fold_left (fun acc q -> acc + Event_queue.dropped q) 0 t.pkt_queues
let queue_high_watermark t cls = Event_store.high_watermark t.store ~cls_ix:(Event.cls_index cls)
