(** The Event Merger (Figure 4): gathers pending data-plane events and
    merges them into the pipeline.

    Each admission slot (one per pipeline cycle) carries at most one
    packet — an ingress arrival, a recirculated packet, or a generated
    packet, in that priority order — plus event metadata piggybacked
    onto it: at most one event per class per carrier, as each class has
    a fixed metadata field in the bus. If events are pending but no
    packet is available, the merger emits an {e empty carrier} (the
    paper's "empty packet"), which consumes a pipeline slot; E4
    measures when that starts to eat into line rate.

    Event classes drain highest-priority-first; the default order puts
    rare control-ish events (link change, timer, control) first and
    high-volume buffer events after, matching the prototype.

    Queued metadata events live off-heap in an {!Event_store} (flat
    struct-of-arrays rings), and the carrier handed to [process] is a
    single reused scratch record — steady-state admission allocates
    zero minor words. *)

type packet_kind = Ingress | Recirculated | Generated

(** The merger's reused scratch carrier: valid only for the duration of
    the [process] callback, after which both the packet slot and the
    event slots (per-class scratch records of the event store) are
    recycled. Copy anything you retain. *)
type carrier = {
  mutable kind : packet_kind;  (** meaningful only when [pkt] is not nil *)
  mutable pkt : Netcore.Packet.t;  (** {!Netcore.Packet.nil} for an empty carrier *)
  events : Event.t array;  (** slots [0 .. n_events-1] valid, in priority order *)
  mutable n_events : int;
}

type config = {
  event_queue_capacity : int;  (** per class (default 64) *)
  packet_queue_capacity : int;  (** per packet kind (default 256) *)
  max_events_per_carrier : int;  (** metadata bus width (default 4) *)
  priority : Event.cls list;  (** drain order for metadata events *)
}

val default_config : config

type t

val create :
  sched:Eventsim.Scheduler.t ->
  pipeline:Pisa.Pipeline.t ->
  ?config:config ->
  process:(carrier -> exit_time:Eventsim.Sim_time.t -> unit) ->
  unit ->
  t
(** [process] is called at admission time with the carrier; [exit_time]
    is when the carrier leaves the pipeline (admission + depth). *)

val offer_packet : t -> packet_kind -> Netcore.Packet.t -> bool
(** [false] when the input queue for that kind overflowed (packet lost,
    counted) or the shedder refused it (counted in {!packets_shed}). *)

val offer_event : t -> Event.t -> bool
(** [false] when that class's event queue overflowed (event lost,
    counted). A shed event returns [true] — it was deliberately
    absorbed, not lost to overflow — and is counted in
    {!events_shed}. Field values are snapshotted into the store; the
    event itself is not retained. *)

(** {1 Unboxed offers}

    Same semantics as {!offer_event} for the high-volume buffer and
    transmit classes, taking plain fields instead of a boxed event —
    these write straight into the store's rings and allocate nothing.
    [meta] is snapshotted at offer time. *)

val offer_buffer :
  t ->
  cls_ix:int ->
  port:int ->
  qid:int ->
  pkt_len:int ->
  flow_id:int ->
  meta:int array ->
  occupancy_pkts:int ->
  occupancy_bytes:int ->
  time:int ->
  bool
(** [cls_ix] is the {!Event.cls_index} of [Buffer_enqueue],
    [Buffer_dequeue] or [Buffer_overflow]. *)

val offer_underflow : t -> port:int -> qid:int -> time:int -> bool
val offer_transmitted : t -> port:int -> pkt_len:int -> flow_id:int -> time:int -> bool

(** {1 Graceful degradation}

    With a {!Resil.Shedder} installed, every offer consults the current
    backlog (packets + events waiting) against the shedder's watermark
    tiers and discards whole classes under overload. No shedder (the
    default) means no behavioural change. *)

val shed_config : watermark:int -> Resil.Shedder.config
(** The standard three-tier ladder over a base [watermark] [w]:
    telemetry events (transmitted / enqueue / dequeue / user) shed at
    depth [w], control-ish events (underflow / timer / control-plane)
    at [2w], packets (ingress / recirculated / generated) at [4w].
    Overflow and link-change events are never shed. *)

val set_shedder : t -> Resil.Shedder.t -> unit
val shedder : t -> Resil.Shedder.t option
val events_shed : t -> int
val packets_shed : t -> int

val packets_waiting : t -> int
val events_waiting : t -> int
val empty_carriers : t -> int
val piggybacked_events : t -> int
val event_drops : t -> (Event.cls * int) list
(** Classes with at least one lost event. *)

val packet_drops : t -> int
val queue_high_watermark : t -> Event.cls -> int
