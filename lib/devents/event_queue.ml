(* Bounded FIFO as a preallocated ring buffer.

   The capacity is fixed at creation (hardware FIFOs are fixed-size),
   so the slot array is allocated once and a steady-state push/pop
   cycle allocates nothing — unlike the stdlib [Queue] this replaces,
   which consed a cell per push.

   The slot array is created with an inert immediate placeholder
   ([Obj.magic 0]); it is written before ever being read as ['a], and
   popped slots are reset to it so the queue never pins a dead element
   (same discipline as Event_heap's null entries). *)

type 'a t = {
  slots : 'a array;
  capacity : int;
  mutable head : int; (* index of the oldest element *)
  mutable count : int;
  mutable pushed : int;
  mutable dropped : int;
  mutable high_watermark : int;
}

let hole () : 'a = Obj.magic 0

let create ~capacity =
  if capacity <= 0 then invalid_arg "Event_queue.create: capacity must be positive";
  {
    slots = Array.make capacity (hole ());
    capacity;
    head = 0;
    count = 0;
    pushed = 0;
    dropped = 0;
    high_watermark = 0;
  }

let push t x =
  if t.count >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let i = t.head + t.count in
    let i = if i >= t.capacity then i - t.capacity else i in
    t.slots.(i) <- x;
    t.count <- t.count + 1;
    t.pushed <- t.pushed + 1;
    if t.count > t.high_watermark then t.high_watermark <- t.count;
    true
  end

(* Remove the head element; the caller has checked [count > 0]. *)
let take t =
  let x = t.slots.(t.head) in
  t.slots.(t.head) <- hole ();
  t.head <- (if t.head + 1 >= t.capacity then 0 else t.head + 1);
  t.count <- t.count - 1;
  x

let pop t = if t.count = 0 then None else Some (take t)
let pop_or t ~default = if t.count = 0 then default else take t
let peek t = if t.count = 0 then None else Some t.slots.(t.head)
let length t = t.count
let is_empty t = t.count = 0
let capacity t = t.capacity
let pushed t = t.pushed
let dropped t = t.dropped
let high_watermark t = t.high_watermark
