(** Bounded FIFO used by the event merger for its packet input queues.

    Hardware event queues are small fixed FIFOs; when one fills, new
    elements are lost (and counted) — a measurable pressure signal for
    experiments E4/E15. Implemented as a preallocated ring: a
    steady-state push/pop cycle allocates nothing. *)

type 'a t

val create : capacity:int -> 'a t
val push : 'a t -> 'a -> bool
(** [false] if the queue was full (the element is dropped). *)

val pop : 'a t -> 'a option

val pop_or : 'a t -> default:'a -> 'a
(** Allocation-free pop: the head element, or [default] when empty. *)

val peek : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int
val pushed : 'a t -> int
(** Accepted element count. *)

val dropped : 'a t -> int
val high_watermark : 'a t -> int
