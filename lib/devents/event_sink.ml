(* Unboxed event sink: the traffic manager reports buffer/transmit
   activity by calling these labelled entry points with plain int
   fields, so the hot TM -> switch -> merger -> event-store path never
   materialises a boxed [Event.t]. *)

type t = {
  enqueue :
    port:int -> qid:int -> pkt_len:int -> flow_id:int -> meta:int array ->
    occupancy_pkts:int -> occupancy_bytes:int -> time:int -> unit;
  dequeue :
    port:int -> qid:int -> pkt_len:int -> flow_id:int -> meta:int array ->
    occupancy_pkts:int -> occupancy_bytes:int -> time:int -> unit;
  overflow :
    port:int -> qid:int -> pkt_len:int -> flow_id:int -> meta:int array ->
    occupancy_pkts:int -> occupancy_bytes:int -> time:int -> unit;
  underflow : port:int -> qid:int -> time:int -> unit;
  transmitted : port:int -> pkt_len:int -> flow_id:int -> time:int -> unit;
}

(* Boxed compatibility wrapper. The [meta] array is snapshotted
   ([Array.copy]) because the produced events outlive the call, while
   the caller keeps mutating the packet's metadata bus. *)
let of_fn f =
  let buffer ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time =
    {
      Event.port;
      qid;
      pkt_len;
      flow_id;
      meta = Array.copy meta;
      occupancy_pkts;
      occupancy_bytes;
      time;
    }
  in
  {
    enqueue =
      (fun ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time ->
        f
          (Event.Enqueue
             (buffer ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time)));
    dequeue =
      (fun ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time ->
        f
          (Event.Dequeue
             (buffer ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time)));
    overflow =
      (fun ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time ->
        f
          (Event.Overflow
             (buffer ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes ~time)));
    underflow = (fun ~port ~qid ~time -> f (Event.Underflow { Event.port; qid; time }));
    transmitted =
      (fun ~port ~pkt_len ~flow_id ~time ->
        f (Event.Transmitted { Event.port; pkt_len; flow_id; time }));
  }
