(** Unboxed event sink for buffer and transmit notifications.

    The traffic manager used to report activity as boxed {!Event.t}
    values; on the hot path that meant a fresh payload record (plus a
    copied meta array) per enqueue/dequeue/transmit. A sink instead
    carries one labelled entry point per event shape, so producers pass
    plain int fields and the consumer decides — usually by writing them
    straight into an {!Event_store} ring — without any intermediate
    boxing.

    The [meta] array argument is only borrowed for the duration of the
    call: implementations must snapshot it if they retain it, and
    callers may keep mutating it afterwards. *)

type t = {
  enqueue :
    port:int -> qid:int -> pkt_len:int -> flow_id:int -> meta:int array ->
    occupancy_pkts:int -> occupancy_bytes:int -> time:int -> unit;
  dequeue :
    port:int -> qid:int -> pkt_len:int -> flow_id:int -> meta:int array ->
    occupancy_pkts:int -> occupancy_bytes:int -> time:int -> unit;
  overflow :
    port:int -> qid:int -> pkt_len:int -> flow_id:int -> meta:int array ->
    occupancy_pkts:int -> occupancy_bytes:int -> time:int -> unit;
  underflow : port:int -> qid:int -> time:int -> unit;
  transmitted : port:int -> pkt_len:int -> flow_id:int -> time:int -> unit;
}

val of_fn : (Event.t -> unit) -> t
(** Boxed compatibility wrapper: each entry point builds the
    corresponding {!Event.t} (snapshotting [meta]) and hands it to
    [f]. Convenient for tests and tools; allocates per event, so not
    for the hot path. *)
