(* Off-heap struct-of-arrays event store.

   Queued metadata events live as flat int columns in one Bigarray ring
   per class, not as boxed [Event.t] values: pushing an event writes its
   fields into the ring and popping decodes them into a reused per-class
   scratch record. A steady-state offer/collect cycle therefore
   allocates zero minor words, and the queued backlog is invisible to
   the OCaml GC (no scanning, no promotion).

   The only variable-size payload an event can carry is a buffer
   event's [meta] array. The common case — exactly
   [inline_meta_slots] slots, which is what the traffic manager always
   produces — is stored inline in the row. Rare other lengths (programs
   constructing their own events) fall back to a boxed side table: the
   row stores a slot index and the copied array parks in [boxed] until
   decoded. *)

module BA1 = Bigarray.Array1

type ring = {
  buf : (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t;
  width : int; (* ints per row; 0 for packet classes, never queued here *)
  cap : int; (* rows *)
  mutable head : int; (* row index of the oldest queued event *)
  mutable count : int;
  mutable pushed : int;
  mutable dropped : int;
  mutable hwm : int;
}

let inline_meta_slots = 4

(* Row widths by class index. Buffer events (ix 5-7) carry
   port, qid, pkt_len, flow_id, occ_pkts, occ_bytes, time, meta_tag and
   four inline meta slots. Packet classes (ix 0-3) ride the merger's
   packet queues, never the event store. *)
let widths = [| 0; 0; 0; 0; 4; 12; 12; 12; 3; 5; 3; 3; 3 |]

(* Shared scratch records, one per class, that [take] decodes into.
   The [Event.t] wrappers are preallocated too, so decoding allocates
   nothing. *)
type scratch = {
  s_enq : Event.buffer_event;
  s_deq : Event.buffer_event;
  s_ovf : Event.buffer_event;
  s_enq_meta : int array;
  s_deq_meta : int array;
  s_ovf_meta : int array;
  s_und : Event.underflow_event;
  s_tx : Event.transmit_event;
  s_timer : Event.timer_event;
  s_link : Event.link_event;
  s_ctl : Event.control_event;
  s_user : Event.user_event;
  wrappers : Event.t array; (* by class index *)
}

type t = {
  rings : ring array; (* by class index *)
  mutable total : int; (* queued events across all classes *)
  scratch : scratch;
  (* Boxed side table for odd-length [meta] payloads. *)
  mutable boxed : int array array;
  mutable boxed_free : int array; (* stack of free slot indices *)
  mutable boxed_free_top : int;
}

let no_meta : int array = [||]

let make_scratch () =
  let buf meta =
    {
      Event.port = 0;
      qid = 0;
      pkt_len = 0;
      flow_id = 0;
      meta;
      occupancy_pkts = 0;
      occupancy_bytes = 0;
      time = 0;
    }
  in
  let s_enq_meta = Array.make inline_meta_slots 0 in
  let s_deq_meta = Array.make inline_meta_slots 0 in
  let s_ovf_meta = Array.make inline_meta_slots 0 in
  let s_enq = buf s_enq_meta in
  let s_deq = buf s_deq_meta in
  let s_ovf = buf s_ovf_meta in
  let s_und = { Event.port = 0; qid = 0; time = 0 } in
  let s_tx = { Event.port = 0; pkt_len = 0; flow_id = 0; time = 0 } in
  let s_timer = { Event.id = 0; period = 0; scheduled = 0; fired = 0; count = 0 } in
  let s_link = { Event.port = 0; up = false; time = 0 } in
  let s_ctl = { Event.opcode = 0; arg = 0; time = 0 } in
  let s_user = { Event.tag = 0; data = 0; time = 0 } in
  let dummy = Event.Underflow s_und in
  let wrappers = Array.make Event.num_classes dummy in
  wrappers.(4) <- Event.Transmitted s_tx;
  wrappers.(5) <- Event.Enqueue s_enq;
  wrappers.(6) <- Event.Dequeue s_deq;
  wrappers.(7) <- Event.Overflow s_ovf;
  wrappers.(8) <- Event.Underflow s_und;
  wrappers.(9) <- Event.Timer s_timer;
  wrappers.(10) <- Event.Control s_ctl;
  wrappers.(11) <- Event.Link_change s_link;
  wrappers.(12) <- Event.User s_user;
  {
    s_enq;
    s_deq;
    s_ovf;
    s_enq_meta;
    s_deq_meta;
    s_ovf_meta;
    s_und;
    s_tx;
    s_timer;
    s_link;
    s_ctl;
    s_user;
    wrappers;
  }

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Event_store.create: capacity must be positive";
  let rings =
    Array.init Event.num_classes (fun ix ->
        let width = widths.(ix) in
        {
          buf = BA1.create Bigarray.int Bigarray.c_layout (max 1 (capacity * width));
          width;
          cap = capacity;
          head = 0;
          count = 0;
          pushed = 0;
          dropped = 0;
          hwm = 0;
        })
  in
  {
    rings;
    total = 0;
    scratch = make_scratch ();
    boxed = [||];
    boxed_free = [||];
    boxed_free_top = 0;
  }

let length t ~cls_ix = t.rings.(cls_ix).count
let total t = t.total
let pushed t ~cls_ix = t.rings.(cls_ix).pushed
let dropped t ~cls_ix = t.rings.(cls_ix).dropped
let high_watermark t ~cls_ix = t.rings.(cls_ix).hwm

(* Claim the next free row of [r], or count a drop. Returns the row's
   base offset into the ring's Bigarray, or -1 when full. *)
let claim t r =
  if r.count >= r.cap then begin
    r.dropped <- r.dropped + 1;
    -1
  end
  else begin
    let row = r.head + r.count in
    let row = if row >= r.cap then row - r.cap else row in
    r.count <- r.count + 1;
    r.pushed <- r.pushed + 1;
    if r.count > r.hwm then r.hwm <- r.count;
    t.total <- t.total + 1;
    row * r.width
  end

(* Release the oldest row of [r]; returns its base offset. The caller
   has checked [r.count > 0]. *)
let consume t r =
  let off = r.head * r.width in
  r.head <- (if r.head + 1 >= r.cap then 0 else r.head + 1);
  r.count <- r.count - 1;
  t.total <- t.total - 1;
  off

(* {2 Boxed side table (rare odd-length meta payloads)} *)

let boxed_put t arr =
  if t.boxed_free_top = 0 then begin
    (* Grow the slab and the free stack together. *)
    let old = Array.length t.boxed in
    let cap = if old = 0 then 8 else old * 2 in
    let boxed = Array.make cap no_meta in
    Array.blit t.boxed 0 boxed 0 old;
    t.boxed <- boxed;
    let free = Array.make cap 0 in
    for i = 0 to cap - old - 1 do
      free.(i) <- cap - 1 - i
    done;
    t.boxed_free <- free;
    t.boxed_free_top <- cap - old
  end;
  t.boxed_free_top <- t.boxed_free_top - 1;
  let slot = t.boxed_free.(t.boxed_free_top) in
  t.boxed.(slot) <- arr;
  slot

let boxed_get t slot =
  let arr = t.boxed.(slot) in
  t.boxed.(slot) <- no_meta;
  t.boxed_free.(t.boxed_free_top) <- slot;
  t.boxed_free_top <- t.boxed_free_top + 1;
  arr

(* {2 Unboxed pushes} *)

let push_buffer t ~cls_ix ~port ~qid ~pkt_len ~flow_id ~meta ~occupancy_pkts ~occupancy_bytes
    ~time =
  let r = t.rings.(cls_ix) in
  let off = claim t r in
  if off < 0 then false
  else begin
    let b = r.buf in
    BA1.unsafe_set b off port;
    BA1.unsafe_set b (off + 1) qid;
    BA1.unsafe_set b (off + 2) pkt_len;
    BA1.unsafe_set b (off + 3) flow_id;
    BA1.unsafe_set b (off + 4) occupancy_pkts;
    BA1.unsafe_set b (off + 5) occupancy_bytes;
    BA1.unsafe_set b (off + 6) time;
    if Array.length meta = inline_meta_slots then begin
      BA1.unsafe_set b (off + 7) 0;
      BA1.unsafe_set b (off + 8) (Array.unsafe_get meta 0);
      BA1.unsafe_set b (off + 9) (Array.unsafe_get meta 1);
      BA1.unsafe_set b (off + 10) (Array.unsafe_get meta 2);
      BA1.unsafe_set b (off + 11) (Array.unsafe_get meta 3)
    end
    else BA1.unsafe_set b (off + 7) (1 + boxed_put t (Array.copy meta));
    true
  end

let push_underflow t ~port ~qid ~time =
  let r = t.rings.(8) in
  let off = claim t r in
  if off < 0 then false
  else begin
    BA1.unsafe_set r.buf off port;
    BA1.unsafe_set r.buf (off + 1) qid;
    BA1.unsafe_set r.buf (off + 2) time;
    true
  end

let push_transmitted t ~port ~pkt_len ~flow_id ~time =
  let r = t.rings.(4) in
  let off = claim t r in
  if off < 0 then false
  else begin
    BA1.unsafe_set r.buf off port;
    BA1.unsafe_set r.buf (off + 1) pkt_len;
    BA1.unsafe_set r.buf (off + 2) flow_id;
    BA1.unsafe_set r.buf (off + 3) time;
    true
  end

let push_timer t ~id ~period ~scheduled ~fired ~count =
  let r = t.rings.(9) in
  let off = claim t r in
  if off < 0 then false
  else begin
    BA1.unsafe_set r.buf off id;
    BA1.unsafe_set r.buf (off + 1) period;
    BA1.unsafe_set r.buf (off + 2) scheduled;
    BA1.unsafe_set r.buf (off + 3) fired;
    BA1.unsafe_set r.buf (off + 4) count;
    true
  end

let push_control t ~opcode ~arg ~time =
  let r = t.rings.(10) in
  let off = claim t r in
  if off < 0 then false
  else begin
    BA1.unsafe_set r.buf off opcode;
    BA1.unsafe_set r.buf (off + 1) arg;
    BA1.unsafe_set r.buf (off + 2) time;
    true
  end

let push_link t ~port ~up ~time =
  let r = t.rings.(11) in
  let off = claim t r in
  if off < 0 then false
  else begin
    BA1.unsafe_set r.buf off port;
    BA1.unsafe_set r.buf (off + 1) (if up then 1 else 0);
    BA1.unsafe_set r.buf (off + 2) time;
    true
  end

let push_user t ~tag ~data ~time =
  let r = t.rings.(12) in
  let off = claim t r in
  if off < 0 then false
  else begin
    BA1.unsafe_set r.buf off tag;
    BA1.unsafe_set r.buf (off + 1) data;
    BA1.unsafe_set r.buf (off + 2) time;
    true
  end

(* Boxed fallback: encode an already-constructed [Event.t]. *)
let push t ev =
  match ev with
  | Event.Enqueue b | Event.Dequeue b | Event.Overflow b ->
      push_buffer t ~cls_ix:(Event.cls_ix_of ev) ~port:b.Event.port ~qid:b.Event.qid
        ~pkt_len:b.Event.pkt_len ~flow_id:b.Event.flow_id ~meta:b.Event.meta
        ~occupancy_pkts:b.Event.occupancy_pkts ~occupancy_bytes:b.Event.occupancy_bytes
        ~time:b.Event.time
  | Event.Underflow u ->
      push_underflow t ~port:u.Event.port ~qid:u.Event.qid ~time:u.Event.time
  | Event.Transmitted x ->
      push_transmitted t ~port:x.Event.port ~pkt_len:x.Event.pkt_len ~flow_id:x.Event.flow_id
        ~time:x.Event.time
  | Event.Timer x ->
      push_timer t ~id:x.Event.id ~period:x.Event.period ~scheduled:x.Event.scheduled
        ~fired:x.Event.fired ~count:x.Event.count
  | Event.Link_change l -> push_link t ~port:l.Event.port ~up:l.Event.up ~time:l.Event.time
  | Event.Control c -> push_control t ~opcode:c.Event.opcode ~arg:c.Event.arg ~time:c.Event.time
  | Event.User u -> push_user t ~tag:u.Event.tag ~data:u.Event.data ~time:u.Event.time

(* {2 Decoding} *)

let decode_buffer t r (s : Event.buffer_event) inline_meta =
  let off = consume t r in
  let b = r.buf in
  s.Event.port <- BA1.unsafe_get b off;
  s.Event.qid <- BA1.unsafe_get b (off + 1);
  s.Event.pkt_len <- BA1.unsafe_get b (off + 2);
  s.Event.flow_id <- BA1.unsafe_get b (off + 3);
  s.Event.occupancy_pkts <- BA1.unsafe_get b (off + 4);
  s.Event.occupancy_bytes <- BA1.unsafe_get b (off + 5);
  s.Event.time <- BA1.unsafe_get b (off + 6);
  let tag = BA1.unsafe_get b (off + 7) in
  if tag = 0 then begin
    Array.unsafe_set inline_meta 0 (BA1.unsafe_get b (off + 8));
    Array.unsafe_set inline_meta 1 (BA1.unsafe_get b (off + 9));
    Array.unsafe_set inline_meta 2 (BA1.unsafe_get b (off + 10));
    Array.unsafe_set inline_meta 3 (BA1.unsafe_get b (off + 11));
    s.Event.meta <- inline_meta
  end
  else s.Event.meta <- boxed_get t (tag - 1)

let take t ~cls_ix =
  let r = t.rings.(cls_ix) in
  if r.count = 0 then invalid_arg "Event_store.take: class queue is empty";
  let s = t.scratch in
  (match cls_ix with
  | 5 -> decode_buffer t r s.s_enq s.s_enq_meta
  | 6 -> decode_buffer t r s.s_deq s.s_deq_meta
  | 7 -> decode_buffer t r s.s_ovf s.s_ovf_meta
  | 8 ->
      let off = consume t r in
      s.s_und.Event.port <- BA1.unsafe_get r.buf off;
      s.s_und.Event.qid <- BA1.unsafe_get r.buf (off + 1);
      s.s_und.Event.time <- BA1.unsafe_get r.buf (off + 2)
  | 4 ->
      let off = consume t r in
      s.s_tx.Event.port <- BA1.unsafe_get r.buf off;
      s.s_tx.Event.pkt_len <- BA1.unsafe_get r.buf (off + 1);
      s.s_tx.Event.flow_id <- BA1.unsafe_get r.buf (off + 2);
      s.s_tx.Event.time <- BA1.unsafe_get r.buf (off + 3)
  | 9 ->
      let off = consume t r in
      s.s_timer.Event.id <- BA1.unsafe_get r.buf off;
      s.s_timer.Event.period <- BA1.unsafe_get r.buf (off + 1);
      s.s_timer.Event.scheduled <- BA1.unsafe_get r.buf (off + 2);
      s.s_timer.Event.fired <- BA1.unsafe_get r.buf (off + 3);
      s.s_timer.Event.count <- BA1.unsafe_get r.buf (off + 4)
  | 10 ->
      let off = consume t r in
      s.s_ctl.Event.opcode <- BA1.unsafe_get r.buf off;
      s.s_ctl.Event.arg <- BA1.unsafe_get r.buf (off + 1);
      s.s_ctl.Event.time <- BA1.unsafe_get r.buf (off + 2)
  | 11 ->
      let off = consume t r in
      s.s_link.Event.port <- BA1.unsafe_get r.buf off;
      s.s_link.Event.up <- BA1.unsafe_get r.buf (off + 1) <> 0;
      s.s_link.Event.time <- BA1.unsafe_get r.buf (off + 2)
  | 12 ->
      let off = consume t r in
      s.s_user.Event.tag <- BA1.unsafe_get r.buf off;
      s.s_user.Event.data <- BA1.unsafe_get r.buf (off + 1);
      s.s_user.Event.time <- BA1.unsafe_get r.buf (off + 2)
  | _ -> invalid_arg "Event_store.take: not a metadata event class");
  t.scratch.wrappers.(cls_ix)
