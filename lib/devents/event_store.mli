(** Off-heap struct-of-arrays event store.

    Per-class bounded FIFO rings of metadata events, stored as flat int
    columns in Bigarrays rather than boxed {!Event.t} values. Pushing
    writes fields straight into the ring (the unboxed [push_*] entry
    points allocate nothing); {!take} decodes the oldest event of a
    class into a reused per-class scratch record and returns a
    preallocated [Event.t] wrapper around it.

    The returned event is valid only until the next {!take} of the same
    class — consumers copy out any field they retain. The only
    variable-size payload, a buffer event's [meta] array, is stored
    inline when it has exactly [Packet.meta_slots] entries (the traffic
    manager's invariant) and falls back to a boxed side table
    otherwise.

    Class indices are {!Event.cls_index} values; packet classes
    (ingress/egress/recirculated/generated) are never queued here. *)

type t

val create : capacity:int -> unit -> t
(** [capacity] is the per-class ring size; a full ring refuses the push
    and counts the drop, like {!Event_queue}. *)

val length : t -> cls_ix:int -> int
val total : t -> int

val pushed : t -> cls_ix:int -> int
val dropped : t -> cls_ix:int -> int
val high_watermark : t -> cls_ix:int -> int

(** {1 Unboxed pushes} — [false] when that class's ring is full. *)

val push_buffer :
  t ->
  cls_ix:int ->
  port:int ->
  qid:int ->
  pkt_len:int ->
  flow_id:int ->
  meta:int array ->
  occupancy_pkts:int ->
  occupancy_bytes:int ->
  time:int ->
  bool
(** [cls_ix] selects enqueue, dequeue or overflow. [meta] is read (and
    snapshotted) at push time; the caller may keep mutating it. *)

val push_underflow : t -> port:int -> qid:int -> time:int -> bool
val push_transmitted : t -> port:int -> pkt_len:int -> flow_id:int -> time:int -> bool
val push_timer : t -> id:int -> period:int -> scheduled:int -> fired:int -> count:int -> bool
val push_control : t -> opcode:int -> arg:int -> time:int -> bool
val push_link : t -> port:int -> up:bool -> time:int -> bool
val push_user : t -> tag:int -> data:int -> time:int -> bool

val push : t -> Event.t -> bool
(** Boxed fallback: encode an already-constructed event (field values
    are snapshotted; the event itself is not retained). *)

val take : t -> cls_ix:int -> Event.t
(** Decode and dequeue the oldest event of the class. The result is a
    reused scratch record, valid until the next [take] of the same
    class.

    @raise Invalid_argument if the class ring is empty or [cls_ix] is a
    packet class. *)
