module Scheduler = Eventsim.Scheduler

type t = {
  sched : Scheduler.t;
  sink : Netcore.Packet.t -> unit;
  mutable handle : Scheduler.handle option;
  mutable generated : int;
  mutable emitted_this_config : int;
  mutable limit : int option;
  mutable template : (int -> Netcore.Packet.t) option;
}

let create ~sched ~sink () =
  {
    sched;
    sink;
    handle = None;
    generated = 0;
    emitted_this_config = 0;
    limit = None;
    template = None;
  }

let stop t =
  (match t.handle with Some h -> Scheduler.cancel h | None -> ());
  t.handle <- None;
  t.template <- None

let configure t ~period ?count ~template () =
  if period <= 0 then invalid_arg "Packet_gen.configure: period must be positive";
  stop t;
  t.limit <- count;
  t.template <- Some template;
  t.emitted_this_config <- 0;
  let handle =
    Scheduler.every ~cls:"pktgen" t.sched ~period (fun () ->
        match t.template with
        | None -> ()
        | Some template ->
            let i = t.emitted_this_config in
            let continue = match t.limit with None -> true | Some n -> i < n in
            if continue then begin
              t.emitted_this_config <- i + 1;
              t.generated <- t.generated + 1;
              t.sink (template i)
            end
            else stop t)
  in
  t.handle <- Some handle

let generated t = t.generated
let running t = t.handle <> None
