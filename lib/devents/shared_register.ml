module Register_array = Pisa.Register_array
module Pipeline = Pisa.Pipeline

type mode = Multiport | Aggregated
type side = Enq_side | Deq_side
type drain_policy = Round_robin | Enq_first | Deq_first

(* Pending-op queue as an int-pair ring ([q_idx], [q_cycle] in issue
   order) rather than an [(int * int) Queue.t]: the stdlib queue costs
   a tuple plus a cons cell per issued op, which puts two minor-heap
   allocations on every buffer event in aggregated mode. *)
type agg_side = {
  deltas : int array;
  dirty : bool array;
  mutable q_idx : int array;
  mutable q_cycle : int array;
  mutable q_head : int;
  mutable q_count : int;
  side_staleness : Stats.Histogram.t;
}

type t = {
  name : string;
  mode : mode;
  drain_policy : drain_policy;
  pipeline : Pipeline.t;
  main : Register_array.t;
  agg : agg_side array; (* [| enq; deq |], empty in Multiport mode *)
  (* Drain mark, inlined as two plain ints: [Pipeline.mark] would
     allocate a record (and [idle_cycles_since] a result tuple) on
     every [drain] — i.e. on every read/write/add of the register. *)
  mutable mark_cycle : int;
  mutable mark_admissions : int;
  mutable next_side : int; (* round-robin pointer between sides *)
  staleness : Stats.Histogram.t;
  mutable applied : int;
  agg_bits : int;
}

let make_side n =
  {
    deltas = Array.make n 0;
    dirty = Array.make n false;
    q_idx = Array.make 16 0;
    q_cycle = Array.make 16 0;
    q_head = 0;
    q_count = 0;
    side_staleness = Stats.Histogram.log2 ~max_exponent:30;
  }

(* Ring helpers; capacity is a power of two so indices are mask-derived. *)
let side_q_grow s =
  let cap = Array.length s.q_idx in
  let idx = Array.make (2 * cap) 0 in
  let cyc = Array.make (2 * cap) 0 in
  for k = 0 to s.q_count - 1 do
    let j = (s.q_head + k) land (cap - 1) in
    idx.(k) <- s.q_idx.(j);
    cyc.(k) <- s.q_cycle.(j)
  done;
  s.q_idx <- idx;
  s.q_cycle <- cyc;
  s.q_head <- 0

let side_q_push s i cycle =
  if s.q_count = Array.length s.q_idx then side_q_grow s;
  let tail = (s.q_head + s.q_count) land (Array.length s.q_idx - 1) in
  s.q_idx.(tail) <- i;
  s.q_cycle.(tail) <- cycle;
  s.q_count <- s.q_count + 1

let create ~alloc ~pipeline ~mode ?(drain_policy = Round_robin) ~name ~entries ~width () =
  let main =
    Pisa.Register_alloc.array alloc ~name:(name ^ "_main") ~entries ~width
  in
  let agg, agg_bits =
    match mode with
    | Multiport -> ([||], 0)
    | Aggregated ->
        (* The two aggregation arrays are real state: charge them. *)
        let enq = Pisa.Register_alloc.array alloc ~name:(name ^ "_enq_agg") ~entries ~width in
        let deq = Pisa.Register_alloc.array alloc ~name:(name ^ "_deq_agg") ~entries ~width in
        (* The allocator meters them; the live delta state lives in
           plain arrays for signed arithmetic, so keep the register
           arrays as footprint-only placeholders. *)
        ( [| make_side entries; make_side entries |],
          Register_array.bits enq + Register_array.bits deq )
  in
  {
    name;
    mode;
    drain_policy;
    pipeline;
    main;
    agg;
    mark_cycle = Pipeline.current_cycle pipeline;
    mark_admissions = Pipeline.admissions pipeline;
    next_side = 0;
    staleness = Stats.Histogram.log2 ~max_exponent:30;
    applied = 0;
    agg_bits;
  }

let mode t = t.mode
let entries t = Register_array.entries t.main

let apply_one t side ~apply_cycle =
  if side.q_count = 0 then false
  else begin
    let h = side.q_head in
    let index = side.q_idx.(h) in
    let issue_cycle = side.q_cycle.(h) in
    side.q_head <- (h + 1) land (Array.length side.q_idx - 1);
    side.q_count <- side.q_count - 1;
    side.dirty.(index) <- false;
    let delta = side.deltas.(index) in
    side.deltas.(index) <- 0;
    ignore (Register_array.add t.main index delta);
    t.applied <- t.applied + 1;
    let lag = apply_cycle - issue_cycle in
    let stale = float_of_int (if lag > 0 then lag else 0) in
    Stats.Histogram.add t.staleness stale;
    Stats.Histogram.add side.side_staleness stale;
    true
  end

(* Fold pending deltas into the main array, spending at most the
   idle-cycle budget accumulated since the last drain. Sides alternate
   so neither starves. The k-th op drained in this call is deemed to
   have been applied k idle cycles after the mark, never before the
   cycle after it was issued. *)
let drain t =
  match t.mode with
  | Multiport -> ()
  | Aggregated ->
      let current = Pipeline.current_cycle t.pipeline in
      let adm = Pipeline.admissions t.pipeline in
      let idle = current - t.mark_cycle - (adm - t.mark_admissions) in
      let budget = if idle > 0 then idle else 0 in
      t.mark_cycle <- current;
      t.mark_admissions <- adm;
      let remaining = ref budget in
      let exhausted = ref false in
      while (not !exhausted) && !remaining > 0 do
        let apply_cycle =
          let c = current - !remaining + 1 in
          if c > 0 then c else 0
        in
        let first =
          match t.drain_policy with
          | Round_robin ->
              let f = t.next_side in
              t.next_side <- 1 - t.next_side;
              f
          | Enq_first -> 0
          | Deq_first -> 1
        in
        let a = t.agg.(first) and b = t.agg.(1 - first) in
        if apply_one t a ~apply_cycle then decr remaining
        else if apply_one t b ~apply_cycle then decr remaining
        else exhausted := true
      done

let read t i =
  drain t;
  Register_array.read t.main i

let write t i v =
  drain t;
  Register_array.write t.main i v

let add t i delta =
  drain t;
  Register_array.add t.main i delta

let side_index = function Enq_side -> 0 | Deq_side -> 1

let event_add t side i delta =
  match t.mode with
  | Multiport -> ignore (Register_array.add t.main i delta)
  | Aggregated ->
      drain t;
      let s = t.agg.(side_index side) in
      if i < 0 || i >= Array.length s.deltas then
        invalid_arg "Shared_register.event_add: index out of range";
      s.deltas.(i) <- s.deltas.(i) + delta;
      if not s.dirty.(i) then begin
        s.dirty.(i) <- true;
        side_q_push s i (Pipeline.current_cycle t.pipeline)
      end

let event_read t i = read t i

let true_value t i =
  let base = Register_array.read t.main i in
  match t.mode with
  | Multiport -> base
  | Aggregated -> base + t.agg.(0).deltas.(i) + t.agg.(1).deltas.(i)

let pending_ops t =
  match t.mode with
  | Multiport -> 0
  | Aggregated -> t.agg.(0).q_count + t.agg.(1).q_count

let sync t =
  match t.mode with
  | Multiport -> ()
  | Aggregated ->
      Array.iter
        (fun s ->
          for k = 0 to s.q_count - 1 do
            let i = s.q_idx.((s.q_head + k) land (Array.length s.q_idx - 1)) in
            if s.dirty.(i) then begin
              s.dirty.(i) <- false;
              ignore (Register_array.add t.main i s.deltas.(i));
              s.deltas.(i) <- 0
            end
          done;
          s.q_head <- 0;
          s.q_count <- 0)
        t.agg

let staleness t = t.staleness

let side_staleness t side =
  match t.mode with
  | Multiport -> Stats.Histogram.log2 ~max_exponent:1
  | Aggregated -> t.agg.(side_index side).side_staleness
let max_staleness_cycles t = Stats.Histogram.max_seen t.staleness
let applied_ops t = t.applied
let total_bits t = Register_array.bits t.main + t.agg_bits
let name t = t.name

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    let labels = ("register", t.name) :: labels in
    Obs.Metrics.Counter.set
      (Obs.Metrics.counter reg ~labels "shared_register.applied_ops")
      t.applied;
    Obs.Metrics.Gauge.set
      (Obs.Metrics.gauge reg ~labels "shared_register.pending_ops")
      (pending_ops t);
    Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels "shared_register.bits") (total_bits t);
    match t.mode with
    | Multiport -> ()
    | Aggregated ->
        Obs.Metrics.attach_histogram reg ~labels "shared_register.staleness_cycles" t.staleness;
        Array.iteri
          (fun i s ->
            Obs.Metrics.attach_histogram reg
              ~labels:(("side", if i = 0 then "enq" else "deq") :: labels)
              "shared_register.staleness_cycles" s.side_staleness)
          t.agg
  end
