module Scheduler = Eventsim.Scheduler

type timer_id = int

type timer = {
  id : timer_id;
  period : int; (* 0 for one-shot *)
  mutable count : int;
  mutable cancelled : bool;
  mutable scheduled : int; (* nominal (unquantised) next firing instant *)
  mutable cb : unit -> unit; (* the one closure this timer ever allocates *)
}

type t = {
  sched : Scheduler.t;
  resolution : int;
  sink : Event.t -> unit;
  timers : (timer_id, timer) Hashtbl.t;
  mutable next_id : int;
  mutable fired : int;
  mutable last_fire : int;
}

let create ~sched ?(resolution = Eventsim.Sim_time.ns 100) ~sink () =
  if resolution <= 0 then invalid_arg "Timer_unit.create: resolution must be positive";
  { sched; resolution; sink; timers = Hashtbl.create 16; next_id = 0; fired = 0; last_fire = 0 }

(* Round an instant up to the next tick boundary. *)
let quantise t at = (at + t.resolution - 1) / t.resolution * t.resolution

let fire t timer ~scheduled =
  if not timer.cancelled then begin
    timer.count <- timer.count + 1;
    t.fired <- t.fired + 1;
    t.last_fire <- Scheduler.now t.sched;
    t.sink
      (Event.Timer
         {
           id = timer.id;
           period = timer.period;
           scheduled;
           fired = Scheduler.now t.sched;
           count = timer.count;
         })
  end

let fresh t ~period =
  let id = t.next_id in
  t.next_id <- id + 1;
  let timer = { id; period; count = 0; cancelled = false; scheduled = 0; cb = (fun () -> ()) } in
  Hashtbl.replace t.timers id timer;
  timer

let add_periodic t ~period =
  if period <= 0 then invalid_arg "Timer_unit.add_periodic: period must be positive";
  let timer = fresh t ~period in
  timer.scheduled <- Scheduler.now t.sched + period;
  (* One closure for the timer's whole life: it re-posts itself with the
     advanced nominal instant instead of allocating a fresh closure per
     firing. Posts are fire-and-forget, so the scheduler recycles the
     cell too — a steady periodic timer allocates nothing per tick. *)
  timer.cb <-
    (fun () ->
      if not timer.cancelled then begin
        fire t timer ~scheduled:timer.scheduled;
        timer.scheduled <- timer.scheduled + timer.period;
        Scheduler.post ~cls:"timer" t.sched ~at:(quantise t timer.scheduled) timer.cb
      end);
  Scheduler.post ~cls:"timer" t.sched ~at:(quantise t timer.scheduled) timer.cb;
  timer.id

let add_oneshot t ~delay =
  if delay < 0 then invalid_arg "Timer_unit.add_oneshot: negative delay";
  let timer = fresh t ~period:0 in
  let scheduled = Scheduler.now t.sched + delay in
  Scheduler.post ~cls:"timer" t.sched ~at:(quantise t scheduled) (fun () ->
      fire t timer ~scheduled;
      Hashtbl.remove t.timers timer.id);
  timer.id

let cancel t id =
  match Hashtbl.find_opt t.timers id with
  | None -> ()
  | Some timer ->
      timer.cancelled <- true;
      Hashtbl.remove t.timers id

let active t = Hashtbl.length t.timers
let fired t = t.fired
let last_fire_time t = t.last_fire
