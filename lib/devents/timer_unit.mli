(** Hardware timer unit.

    Fires {!Event.Timer} events at a configured period per timer id.
    Hardware timers tick at a coarse resolution, so actual firing
    instants are quantised up to the next tick boundary — the resulting
    (bounded) jitter is visible in the Timer event's [scheduled] vs
    [fired] fields. Compare with control-plane-generated "timers",
    whose jitter is the control-channel latency (experiment E8). *)

type t
type timer_id = int

val create : sched:Eventsim.Scheduler.t -> ?resolution:Eventsim.Sim_time.t ->
  sink:(Event.t -> unit) -> unit -> t
(** [resolution] is the tick quantum (default 100 ns, a typical FPGA
    timer tick). *)

val add_periodic : t -> period:Eventsim.Sim_time.t -> timer_id
(** Register a periodic timer; first firing one period from now. *)

val add_oneshot : t -> delay:Eventsim.Sim_time.t -> timer_id
val cancel : t -> timer_id -> unit
val active : t -> int
val fired : t -> int
(** Total Timer events emitted. *)

val last_fire_time : t -> Eventsim.Sim_time.t
(** Instant of the most recent firing (0 before any) — must be
    non-decreasing and never ahead of the scheduler clock; the runtime
    invariant checker asserts this timer-monotonicity property. *)
