type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

(* Slots at index >= len are dead; they must not keep the last entry
   that passed through them reachable (payloads are callback closures
   that can capture packets — pinning them for the life of the sim is a
   leak).  Dead slots hold this shared inert entry instead.  Its payload
   is never read: the API only exposes slots below [len].  [entry] is a
   mixed int/pointer record, so the representation is the same for
   every ['a] and the cast is safe. *)
let null_entry : Obj.t entry = { time = min_int; seq = min_int; payload = Obj.repr () }
let null () : 'a entry = Obj.magic null_entry

let create () = { data = [||]; len = 0; next_seq = 0 }
let length t = t.len
let is_empty t = t.len = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let data = Array.make cap' (null ()) in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then grow t;
  (* Sift up. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.data.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry t.data.(parent) then begin
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let peek_time t = if t.len = 0 then None else Some t.data.(0).time

(* Remove the root of a non-empty heap and restore the heap property. *)
let pop_root t =
  let top = t.data.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    let last = t.data.(t.len) in
    t.data.(t.len) <- null ();
    t.data.(0) <- last;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
      if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.data.(!i) in
        t.data.(!i) <- t.data.(!smallest);
        t.data.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end
  else t.data.(0) <- null ();
  top

let pop t =
  if t.len = 0 then None
  else
    let top = pop_root t in
    Some (top.time, top.payload)

let drain_upto t ~limit f =
  while t.len > 0 && t.data.(0).time <= limit do
    let top = pop_root t in
    f ~time:top.time top.payload
  done

let clear t =
  t.len <- 0;
  t.data <- [||]
