(* Binary min-heap on (time, seq), stored as a structure-of-arrays:
   three parallel arrays [times]/[seqs]/[payloads] instead of one array
   of entry records.  Two wins over the AoS layout on the hot path:
   [push] allocates nothing (the old layout boxed a fresh entry record
   per event), and every sift comparison is a load from a flat int
   array rather than a pointer dereference into a heap-allocated
   record.  Sifts move the hole instead of swapping: parents/children
   shift down one store each and the inserted element is written once
   at its final position.

   [payloads] is an [Obj.t array] so the array is always a pointer
   array regardless of ['a] (a ['a array] would go flat when ['a] is
   [float], and our sentinel below is not a valid unboxed float).
   Slots at index >= len are dead; they must not keep the last payload
   that passed through them reachable (payloads are callback closures
   that can capture packets — pinning them for the life of the sim is
   a leak), so dead slots hold the shared inert [dead] value.  All
   indices are bounds-checked by the [len] discipline, which justifies
   the unsafe accesses. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable len : int;
  mutable next_seq : int;
}

let dead = Obj.repr ()

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.times in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let times = Array.make cap' 0 in
  Array.blit t.times 0 times 0 t.len;
  t.times <- times;
  let seqs = Array.make cap' 0 in
  Array.blit t.seqs 0 seqs 0 t.len;
  t.seqs <- seqs;
  let payloads = Array.make cap' dead in
  Array.blit t.payloads 0 payloads 0 t.len;
  t.payloads <- payloads

let push t ~time payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.len = Array.length t.times then grow t;
  let times = t.times and seqs = t.seqs and payloads = t.payloads in
  (* Sift the hole up: parents later than (time, seq) shift down one
     slot each; the new element is stored once where the hole stops. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = Array.unsafe_get times p in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs p) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set payloads !i (Array.unsafe_get payloads p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set payloads !i (Obj.repr payload)

let peek_time t = if t.len = 0 then None else Some (Array.unsafe_get t.times 0)
let next_time t = if t.len = 0 then -1 else Array.unsafe_get t.times 0

(* Remove the root of a non-empty heap and restore the heap property,
   returning the root payload still as [Obj.t]. *)
let pop_root t =
  let payload = Array.unsafe_get t.payloads 0 in
  let len = t.len - 1 in
  t.len <- len;
  let times = t.times and seqs = t.seqs and payloads = t.payloads in
  if len > 0 then begin
    (* The last element re-enters at the root hole; sift the hole down
       past every smaller child, then store the element once. *)
    let lt = Array.unsafe_get times len in
    let ls = Array.unsafe_get seqs len in
    let lp = Array.unsafe_get payloads len in
    Array.unsafe_set payloads len dead;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ltm = Array.unsafe_get times l in
            let rtm = Array.unsafe_get times r in
            if
              rtm < ltm
              || (rtm = ltm && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
            then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get times c in
        if ct < lt || (ct = lt && Array.unsafe_get seqs c < ls) then begin
          Array.unsafe_set times !i ct;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set payloads !i (Array.unsafe_get payloads c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set times !i lt;
    Array.unsafe_set seqs !i ls;
    Array.unsafe_set payloads !i lp
  end
  else Array.unsafe_set payloads 0 dead;
  payload

let pop t =
  if t.len = 0 then None
  else
    let time = Array.unsafe_get t.times 0 in
    Some (time, (Obj.obj (pop_root t) : 'a))

let take t =
  if t.len = 0 then invalid_arg "Event_heap.take: empty heap";
  (Obj.obj (pop_root t) : 'a)

let drain_upto t ~limit f =
  while t.len > 0 && Array.unsafe_get t.times 0 <= limit do
    let time = Array.unsafe_get t.times 0 in
    f ~time (Obj.obj (pop_root t) : 'a)
  done

let clear t =
  t.len <- 0;
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||]
