(** Binary min-heap keyed by (time, sequence number).

    The sequence number makes the ordering total and FIFO among events
    scheduled for the same instant, which keeps simulations deterministic
    regardless of heap internals. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** Sequence numbers are assigned internally in [push] order. *)

val peek_time : 'a t -> int option

val next_time : 'a t -> int
(** Earliest queued time, or [-1] when empty — the allocation-free
    {!peek_time} for the scheduler hot path (times are non-negative). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest element with its time. *)

val take : 'a t -> 'a
(** Remove and return the earliest payload alone (allocation-free apart
    from heap bookkeeping). Raises [Invalid_argument] when empty; pair
    with {!next_time}. *)

val drain_upto : 'a t -> limit:int -> (time:int -> 'a -> unit) -> unit
(** Fire every element with [time <= limit] through [f], in (time, seq)
    order, re-checking the root after each callback so elements pushed
    by [f] at already-reached times are included. *)

val clear : 'a t -> unit
