(* Ladder queue (Tang, Goh & Thng 2005), keyed on Sim_time picoseconds.

   Three tiers. [top] is an unsorted bag for far-future events beyond
   [top_start]. Below it sits a stack of up to [max_rungs] {e rungs},
   each an array of [nbuckets] buckets spanning progressively finer
   time ranges: rung [i+1] always subdivides the most recently consumed
   bucket of rung [i], so the remaining coverages tile the timeline —
   bottom, then the innermost rung, outward to rung 0, then top.
   [bottom] is a short (time, seq)-sorted list holding the events that
   fire next.

   When bottom empties, the innermost rung's next non-empty bucket is
   consumed: sorted into bottom if small, or — if it holds more than
   [spawn_threshold] events across at least two distinct times — spread
   over a freshly spawned finer rung. When the rungs are exhausted the
   whole top is spread over a new rung 0. A bottom that grows past
   [bottom_spawn] through direct insertion is itself converted into a
   rung, keeping insertions O(1) amortised under any arrival pattern.

   Determinism: every node carries a push sequence number, and the only
   ordered structure is bottom, sorted by (time, seq). Bucket and top
   lists are unordered (LIFO appends), so firing order is exactly
   (time, seq) — identical to {!Event_heap} — regardless of how events
   migrated through the tiers.

   Nodes are recycled through a free list and the bucket-sorting
   scratch array is retained and grown geometrically, so a steady-state
   push/pop cycle allocates nothing. Dead nodes never pin their old
   payload (cleared on release), mirroring the Event_heap null-entry
   and Timing_wheel disciplines. *)

type 'a node = {
  mutable time : int;
  mutable seq : int;
  mutable payload : 'a;
  mutable next : 'a node;
}

(* Shared inert node used as list terminator and free-list end. [node]
   is a mixed int/pointer record, so its representation is the same for
   every ['a] and the cast is safe (same trick as Timing_wheel's
   nil_node). Its fields are never mutated: append/release always check
   for it first. *)
let nil_node : Obj.t node =
  let rec n = { time = min_int; seq = 0; payload = Obj.repr (); next = n } in
  n

let nil () : 'a node = Obj.magic nil_node
let is_nil (n : 'a node) = n == (Obj.magic nil_node : 'a node)

let nbuckets = 64
let max_rungs = 16
let spawn_threshold = 48
let bottom_spawn = 96

type 'a rung = {
  heads : 'a node array; (* [nbuckets] unordered bucket lists *)
  counts : int array;
  mutable width : int; (* bucket time span, >= 1 *)
  mutable r_start : int; (* time of bucket 0's left edge *)
  mutable r_cur : int; (* buckets [0, r_cur) already consumed *)
  mutable r_count : int; (* events resident in this rung *)
}

type 'a t = {
  mutable rungs : 'a rung array; (* stack, outermost first; grown lazily *)
  mutable nrungs : int;
  mutable top : 'a node; (* unordered; times >= top_start *)
  mutable top_count : int;
  mutable top_min : int;
  mutable top_max : int;
  mutable top_start : int;
  mutable bottom : 'a node; (* sorted by (time, seq) *)
  mutable bot_count : int;
  mutable pos : int; (* last popped time; never travels backwards *)
  mutable seq : int; (* monotone push counter *)
  mutable len : int;
  mutable free : 'a node;
  mutable scratch : 'a node array; (* bucket-sort staging, reused *)
}

let create () =
  {
    rungs = [||];
    nrungs = 0;
    top = nil ();
    top_count = 0;
    top_min = max_int;
    top_max = min_int;
    top_start = 0;
    bottom = nil ();
    bot_count = 0;
    pos = 0;
    seq = 0;
    len = 0;
    free = nil ();
    scratch = [||];
  }

let length t = t.len
let is_empty t = t.len = 0
let position t = t.pos

(* {2 Node pool} *)

let alloc_node t ~time payload =
  let s = t.seq in
  t.seq <- s + 1;
  let n = t.free in
  if is_nil n then { time; seq = s; payload; next = nil () }
  else begin
    t.free <- n.next;
    n.next <- nil ();
    n.time <- time;
    n.seq <- s;
    n.payload <- payload;
    n
  end

let release_node t n =
  n.payload <- Obj.magic ();
  n.time <- 0;
  n.next <- t.free;
  t.free <- n

(* {2 Rungs} *)

let fresh_rung () =
  {
    heads = Array.make nbuckets (nil ());
    counts = Array.make nbuckets 0;
    width = 1;
    r_start = 0;
    r_cur = 0;
    r_count = 0;
  }

(* Push a rung frame reusing any previously allocated one. *)
let push_rung t ~r_start ~width =
  if t.nrungs = Array.length t.rungs then begin
    let grown = Array.make (max 4 (2 * t.nrungs)) (fresh_rung ()) in
    Array.blit t.rungs 0 grown 0 t.nrungs;
    for i = max 1 t.nrungs to Array.length grown - 1 do
      grown.(i) <- fresh_rung ()
    done;
    t.rungs <- grown
  end;
  let r = t.rungs.(t.nrungs) in
  t.nrungs <- t.nrungs + 1;
  r.width <- width;
  r.r_start <- r_start;
  r.r_cur <- 0;
  r.r_count <- 0;
  r

(* Times before this edge have already left rung [r]. *)
let consumed_end r = r.r_start + (r.r_cur * r.width)

let bucket_insert r n =
  let idx = (n.time - r.r_start) / r.width in
  let idx = if idx >= nbuckets then nbuckets - 1 else idx in
  n.next <- Array.unsafe_get r.heads idx;
  Array.unsafe_set r.heads idx n;
  Array.unsafe_set r.counts idx (Array.unsafe_get r.counts idx + 1);
  r.r_count <- r.r_count + 1

(* Spread an unordered list over a freshly spawned rung. The rung
   starts at the list's actual minimum but its 64 buckets must cover
   everything up to [bound] — the consumed edge of the tier the list
   came from — so that the remaining coverages keep tiling the
   timeline exactly. An inner rung ending short of that edge would
   leave a gap: a later push into the gap would select this rung, get
   clamped into its last bucket, and — once the rung is fully consumed
   — strand the event behind [r_cur]. *)
let spawn_rung_from_list t list ~tmin ~bound =
  let width = max 1 ((bound - tmin + nbuckets - 1) / nbuckets) in
  let r = push_rung t ~r_start:tmin ~width in
  let n = ref list in
  while not (is_nil !n) do
    let next = !n.next in
    bucket_insert r !n;
    n := next
  done;
  r

(* {2 Bottom} *)

let node_before (a : 'a node) (b : 'a node) =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Insert one node into the sorted bottom list. Bottom is kept short by
   [bottom_spawn], so the scan is bounded in steady state. *)
let bottom_insert t n =
  if is_nil t.bottom || node_before n t.bottom then begin
    n.next <- t.bottom;
    t.bottom <- n
  end
  else begin
    let prev = ref t.bottom in
    while (not (is_nil !prev.next)) && node_before !prev.next n do
      prev := !prev.next
    done;
    n.next <- !prev.next;
    !prev.next <- n
  end;
  t.bot_count <- t.bot_count + 1

(* In-place heapsort of [a.(0) .. a.(cnt-1)] by (time, seq): the stdlib
   [Array.sort] has no subrange variant and the scratch array is longer
   than the live prefix (padded with nil nodes that must stay put).
   (time, seq) is a total order, so stability is irrelevant. *)
(* Top-level (not a local closure of [sort_nodes]: capturing [a] would
   put one closure allocation on every bucket consumption, breaking the
   zero-allocation steady state for single-event buckets). *)
let sift_down (a : 'a node array) root last =
  let r = ref root in
  let continue = ref true in
  while !continue do
    let child = (2 * !r) + 1 in
    if child > last then continue := false
    else begin
      let child =
        if child < last && node_before (Array.unsafe_get a child) (Array.unsafe_get a (child + 1))
        then child + 1
        else child
      in
      if node_before (Array.unsafe_get a !r) (Array.unsafe_get a child) then begin
        let tmp = Array.unsafe_get a !r in
        Array.unsafe_set a !r (Array.unsafe_get a child);
        Array.unsafe_set a child tmp;
        r := child
      end
      else continue := false
    end
  done

let sort_nodes (a : 'a node array) cnt =
  for i = (cnt / 2) - 1 downto 0 do
    sift_down a i (cnt - 1)
  done;
  for last = cnt - 1 downto 1 do
    let tmp = Array.unsafe_get a 0 in
    Array.unsafe_set a 0 (Array.unsafe_get a last);
    Array.unsafe_set a last tmp;
    sift_down a 0 (last - 1)
  done

(* Sort an unordered [cnt]-node list into the (empty) bottom via the
   scratch array: O(cnt log cnt), no allocation once scratch is warm. *)
let sort_list_into_bottom t list cnt =
  if Array.length t.scratch < cnt then
    t.scratch <- Array.make (max 64 (2 * cnt)) (nil ());
  let a = t.scratch in
  let n = ref list in
  for i = 0 to cnt - 1 do
    Array.unsafe_set a i !n;
    n := !n.next
  done;
  sort_nodes a cnt;
  let tail = ref t.bottom in
  (* Bottom is empty whenever a bucket is consumed; link back-to-front. *)
  for i = cnt - 1 downto 0 do
    let node = Array.unsafe_get a i in
    node.next <- !tail;
    tail := node;
    Array.unsafe_set a i (nil ())
  done;
  t.bottom <- !tail;
  t.bot_count <- t.bot_count + cnt

(* Convert an oversized bottom into a new innermost rung. Requires at
   least two distinct times (a same-time run cannot be subdivided and
   pops in O(1) anyway). *)
let spawn_rung_from_bottom t =
  let tmin = t.bottom.time in
  let tmax = ref min_int in
  let n = ref t.bottom in
  while not (is_nil !n) do
    if !n.time > !tmax then tmax := !n.time;
    n := !n.next
  done;
  if !tmax > tmin && t.nrungs < max_rungs then begin
    let list = t.bottom in
    t.bottom <- nil ();
    t.bot_count <- 0;
    (* Bottom's coverage ends at the innermost consumed edge (or at
       [top_start] when no rungs exist); the new rung takes it over. *)
    let bound =
      if t.nrungs > 0 then consumed_end t.rungs.(t.nrungs - 1) else t.top_start
    in
    ignore (spawn_rung_from_list t list ~tmin ~bound)
  end

(* {2 Insertion} *)

let push t ~time payload =
  if time < t.pos then
    invalid_arg
      (Printf.sprintf "Ladder_queue.push: time=%d is before ladder position %d"
         time t.pos);
  let n = alloc_node t ~time payload in
  t.len <- t.len + 1;
  if t.len = 1 then begin
    (* Structure was empty: drop any exhausted rung frames (moving
       [top_start] below their nominal spans would otherwise let a
       later push match a fully-consumed rung) and reset top so the
       bag covers everything again — far-future parking stays O(1). *)
    t.nrungs <- 0;
    t.top_start <- time;
    t.top_min <- time;
    t.top_max <- time;
    n.next <- nil ();
    t.top <- n;
    t.top_count <- 1
  end
  else if time >= t.top_start then begin
    n.next <- t.top;
    t.top <- n;
    t.top_count <- t.top_count + 1;
    if time < t.top_min then t.top_min <- time;
    if time > t.top_max then t.top_max <- time
  end
  else begin
    (* Outermost rung whose remaining coverage contains [time]; the
       consumed edges decrease inwards, so the first match wins. *)
    let i = ref 0 in
    while !i < t.nrungs && time < consumed_end t.rungs.(!i) do incr i done;
    if !i < t.nrungs then bucket_insert t.rungs.(!i) n
    else begin
      bottom_insert t n;
      if t.bot_count > bottom_spawn then spawn_rung_from_bottom t
    end
  end

(* {2 Refill: keep bottom non-empty while events remain} *)

let list_bounds list =
  let tmin = ref max_int and tmax = ref min_int in
  let n = ref list in
  while not (is_nil !n) do
    if !n.time < !tmin then tmin := !n.time;
    if !n.time > !tmax then tmax := !n.time;
    n := !n.next
  done;
  (!tmin, !tmax)

let rec ensure_bottom t =
  if t.bot_count = 0 then
    if t.nrungs > 0 then begin
      let r = t.rungs.(t.nrungs - 1) in
      if r.r_count = 0 then begin
        t.nrungs <- t.nrungs - 1;
        ensure_bottom t
      end
      else begin
        let j = ref r.r_cur in
        while Array.unsafe_get r.counts !j = 0 do incr j done;
        let list = Array.unsafe_get r.heads !j in
        let cnt = Array.unsafe_get r.counts !j in
        Array.unsafe_set r.heads !j (nil ());
        Array.unsafe_set r.counts !j 0;
        r.r_count <- r.r_count - cnt;
        r.r_cur <- !j + 1;
        if cnt > spawn_threshold && r.width > 1 && t.nrungs < max_rungs then begin
          let tmin, tmax = list_bounds list in
          if tmax > tmin then
            (* The new rung must cover everything up to this bucket's
               right edge — the consumed boundary just advanced. *)
            ignore (spawn_rung_from_list t list ~tmin ~bound:(consumed_end r))
          else sort_list_into_bottom t list cnt
        end
        else sort_list_into_bottom t list cnt;
        ensure_bottom t
      end
    end
    else if t.top_count > 0 then begin
      let span = t.top_max - t.top_min + 1 in
      let width = (span + nbuckets - 1) / nbuckets in
      let r = push_rung t ~r_start:t.top_min ~width in
      let n = ref t.top in
      t.top <- nil ();
      t.top_count <- 0;
      while not (is_nil !n) do
        let next = !n.next in
        bucket_insert r !n;
        n := next
      done;
      t.top_start <- r.r_start + (nbuckets * r.width);
      t.top_min <- max_int;
      t.top_max <- min_int;
      ensure_bottom t
    end

(* {2 Removal} *)

let peek_time t =
  ensure_bottom t;
  if t.bot_count = 0 then None else Some t.bottom.time

let next_time t =
  ensure_bottom t;
  if t.bot_count = 0 then -1 else t.bottom.time

let take t =
  ensure_bottom t;
  if t.bot_count = 0 then invalid_arg "Ladder_queue.take: empty queue";
  let n = t.bottom in
  t.bottom <- n.next;
  t.bot_count <- t.bot_count - 1;
  t.len <- t.len - 1;
  t.pos <- n.time;
  let payload = n.payload in
  release_node t n;
  payload

let pop t =
  ensure_bottom t;
  if t.bot_count = 0 then None
  else begin
    let n = t.bottom in
    t.bottom <- n.next;
    t.bot_count <- t.bot_count - 1;
    t.len <- t.len - 1;
    t.pos <- n.time;
    let time = n.time in
    let payload = n.payload in
    release_node t n;
    Some (time, payload)
  end

let drain_upto t ~limit f =
  let continue = ref true in
  while !continue do
    ensure_bottom t;
    if t.bot_count = 0 then continue := false
    else begin
      let n = t.bottom in
      let time = n.time in
      if time > limit then continue := false
      else begin
        t.bottom <- n.next;
        t.bot_count <- t.bot_count - 1;
        t.len <- t.len - 1;
        t.pos <- time;
        let payload = n.payload in
        release_node t n;
        f ~time payload
      end
    end
  done
