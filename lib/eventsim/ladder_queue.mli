(** Ladder queue (Tang, Goh & Thng 2005): the adaptive calendar-style
    scheduler queue backend.

    Far-future events sit in an unsorted top bag; popping spreads them
    across bucket rungs of progressively finer width, and only the
    handful of imminent events are ever kept sorted (the bottom list).
    Unlike {!Timing_wheel} there is no fixed resolution or horizon: the
    bucket widths adapt to the actual event-time distribution, so both
    dense same-instant bursts and sparse far-future parking stay
    amortised O(1) per event.

    Firing order is identical to {!Event_heap}: non-decreasing time,
    FIFO among same-time events (every node carries a push sequence
    number and the bottom list is sorted by (time, seq)).

    Internal nodes are free-listed and the sort scratch is reused, so a
    steady-state push/pop cycle allocates nothing. Not thread-safe.
    Times are {!Sim_time} picoseconds and must be non-negative. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit
(** Queue [payload] at [time].

    @raise Invalid_argument if [time] is before {!position} (the ladder
    cannot travel backwards). *)

val peek_time : 'a t -> int option
(** Earliest queued time, without removing anything (the refill this
    may trigger is order-neutral). *)

val next_time : 'a t -> int
(** Earliest queued time, or [-1] when empty — the allocation-free
    {!peek_time} for the scheduler hot path. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)],
    advancing the ladder position to [time]. *)

val take : 'a t -> 'a
(** Remove and return the earliest payload alone — allocation-free.
    Raises [Invalid_argument] when empty; pair with {!next_time}. *)

val drain_upto : 'a t -> limit:int -> (time:int -> 'a -> unit) -> unit
(** Fire every event with [time <= limit] through [f], in order,
    including events that [f] itself pushes at already-reached times
    (they sort into the bottom list behind their same-time
    predecessors). The position never advances past the earliest
    remaining event, so it never exceeds [limit]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val position : 'a t -> int
(** Latest popped time: pushes before this raise. *)
