type t = Heap | Wheel

let to_string = function Heap -> "heap" | Wheel -> "wheel"

let of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None

let names = [ "heap"; "wheel" ]
let all = [ Heap; Wheel ]
let default = ref Wheel
