type t = Heap | Wheel | Ladder

let to_string = function Heap -> "heap" | Wheel -> "wheel" | Ladder -> "ladder"

let of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | "ladder" -> Some Ladder
  | _ -> None

let names = [ "heap"; "wheel"; "ladder" ]
let all = [ Heap; Wheel; Ladder ]
let default = ref Wheel
