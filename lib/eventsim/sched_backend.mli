(** Scheduler event-queue backend selector.

    [Heap] is the binary min-heap ({!Event_heap}): O(log n) per event,
    allocation per push. [Wheel] is the hierarchical timing wheel
    ({!Timing_wheel}): amortised O(1) per event with internally recycled
    nodes. [Ladder] is the adaptive ladder queue ({!Ladder_queue}):
    amortised O(1) with bucket widths that track the event-time
    distribution instead of a fixed resolution. All three produce the
    exact same firing order — non-decreasing time, FIFO among ties — so
    simulations are byte-identical under any backend; the choice is
    purely a performance knob. *)

type t = Heap | Wheel | Ladder

val to_string : t -> string
val of_string : string -> t option
val names : string list
val all : t list

val default : t ref
(** Backend used by [Scheduler.create] when none is passed explicitly.
    Initially {!Wheel}. Mutable so a CLI flag (e.g. [evsim
    --sched-backend]) can steer every scheduler an experiment creates
    without threading a parameter through each [run] signature. Set it
    before creating schedulers; changing it never affects schedulers
    that already exist. *)
