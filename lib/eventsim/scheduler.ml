type cell = {
  mutable cancelled : bool;
  mutable callback : unit -> unit;
  mutable queued : bool;
  mutable cls : string;
  live : int ref; (* the owning scheduler's live-event count *)
  pooled : bool; (* fire-and-forget cell, recycled after firing *)
  mutable free_next : cell; (* free-list link, meaningful while recycled *)
}

type handle = cell

let noop () = ()

(* Free-list terminator. [cell] is monomorphic, so a plain shared record
   works; its fields are never mutated (alloc/release test identity
   first). *)
let rec nil_cell =
  {
    cancelled = true;
    callback = noop;
    queued = false;
    cls = "";
    live = ref 0;
    pooled = false;
    free_next = nil_cell;
  }

type queue =
  | QHeap of cell Event_heap.t
  | QWheel of cell Timing_wheel.t
  | QLadder of cell Ladder_queue.t

type prof = {
  reg : Obs.Metrics.t;
  enabled : bool ref; (* the registry's own flag, cached: one load to
                         skip the whole profiling block per event *)
  labels : Obs.Metrics.labels;
  wall : bool;
  depth : Obs.Metrics.Gauge.t;
  wall_per_sim : Obs.Metrics.Summary.t;
  by_cls : (string, Obs.Metrics.Counter.t) Hashtbl.t;
}

type t = {
  queue : queue;
  backend : Sched_backend.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
  live : int ref;
  mutable depth_hwm : int;
  mutable free : cell; (* pool of recycled fire-and-forget cells *)
  mutable prof : prof option;
  mutable dispatch_cb : time:int -> cell -> unit;
      (* persistent drain callback (advance clock, fire): [run] and
         [drain_until_horizon] would otherwise rebuild this closure on
         every call *)
}

let now t = t.clock
let backend t = t.backend

(* {2 Cell pool}

   Only [post]/[post_after] cells are pooled: they expose no handle, so
   no stale [cancel] can reach a recycled cell. [schedule]/[every] cells
   escape to the caller and are left to the GC. Recycled cells drop
   their callback and class so a parked cell never pins a closure (and
   transitively a packet) across the pool. *)

let alloc_cell t ~cls f =
  let c = t.free in
  if c == nil_cell then
    {
      cancelled = false;
      callback = f;
      queued = false;
      cls;
      live = t.live;
      pooled = true;
      free_next = nil_cell;
    }
  else begin
    t.free <- c.free_next;
    c.free_next <- nil_cell;
    c.cancelled <- false;
    c.callback <- f;
    c.cls <- cls;
    c
  end

let release_cell t c =
  c.callback <- noop;
  c.cls <- "";
  c.free_next <- t.free;
  t.free <- c

let enqueue_cell t ~time cell =
  cell.queued <- true;
  incr t.live;
  if !(t.live) > t.depth_hwm then t.depth_hwm <- !(t.live);
  (match t.queue with
  | QHeap h -> Event_heap.push h ~time cell
  | QWheel w -> Timing_wheel.push w ~time cell
  | QLadder l -> Ladder_queue.push l ~time cell);
  match t.prof with
  | Some p when !(p.enabled) -> Obs.Metrics.Gauge.set p.depth !(t.live)
  | Some _ | None -> ()

let schedule ?(cls = "callback") t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule: at=%d is before now=%d" at t.clock);
  let cell =
    {
      cancelled = false;
      callback = f;
      queued = false;
      cls;
      live = t.live;
      pooled = false;
      free_next = nil_cell;
    }
  in
  enqueue_cell t ~time:at cell;
  cell

let schedule_after ?cls t ~delay f =
  if delay < 0 then invalid_arg "Scheduler.schedule_after: negative delay";
  schedule ?cls t ~at:(t.clock + delay) f

let post ?(cls = "callback") t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.post: at=%d is before now=%d" at t.clock);
  enqueue_cell t ~time:at (alloc_cell t ~cls f)

let post_after ?cls t ~delay f =
  if delay < 0 then invalid_arg "Scheduler.post_after: negative delay";
  post ?cls t ~at:(t.clock + delay) f

let cancel cell =
  if not cell.cancelled then begin
    cell.cancelled <- true;
    if cell.queued then decr cell.live
  end

let every ?(cls = "periodic") t ?start ~period f =
  if period <= 0 then invalid_arg "Scheduler.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  if first < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.every: start=%d is before now=%d" first t.clock);
  let cell =
    {
      cancelled = false;
      callback = noop;
      queued = false;
      cls;
      live = t.live;
      pooled = false;
      free_next = nil_cell;
    }
  in
  let rec fire () =
    if not cell.cancelled then begin
      f ();
      if not cell.cancelled then begin
        cell.callback <- fire;
        enqueue_cell t ~time:(t.clock + period) cell
      end
    end
  in
  cell.callback <- fire;
  enqueue_cell t ~time:first cell;
  cell

let cls_counter p cls =
  match Hashtbl.find_opt p.by_cls cls with
  | Some c -> c
  | None ->
      let c =
        Obs.Metrics.counter p.reg ~labels:(("class", cls) :: p.labels) "scheduler.callbacks"
      in
      Hashtbl.add p.by_cls cls c;
      c

(* Execute one popped cell. Pooled cells are released back to the pool
   before their callback runs, so a [post] made inside the callback can
   reuse the very same cell. *)
let fire t cell =
  cell.queued <- false;
  if not cell.cancelled then begin
    decr t.live;
    t.executed <- t.executed + 1;
    (match t.prof with
    | Some p when !(p.enabled) -> Obs.Metrics.Counter.incr (cls_counter p cell.cls)
    | Some _ | None -> ());
    if cell.pooled then begin
      let f = cell.callback in
      release_cell t cell;
      f ()
    end
    else cell.callback ()
  end
  else if cell.pooled then release_cell t cell

let create ?backend () =
  let backend =
    match backend with Some b -> b | None -> !Sched_backend.default
  in
  let queue =
    match backend with
    | Sched_backend.Heap -> QHeap (Event_heap.create ())
    | Sched_backend.Wheel -> QWheel (Timing_wheel.create ())
    | Sched_backend.Ladder -> QLadder (Ladder_queue.create ())
  in
  let t =
    {
      queue;
      backend;
      clock = 0;
      executed = 0;
      live = ref 0;
      depth_hwm = 0;
      free = nil_cell;
      prof = None;
      dispatch_cb = (fun ~time:_ _ -> ());
    }
  in
  t.dispatch_cb <-
    (fun ~time cell ->
      if time > t.clock then t.clock <- time;
      fire t cell);
  t

(* Allocation-free single step: peek the next time as a bare int, then
   take the payload alone — no [Some (time, cell)] tuple per event. *)
let step t =
  match t.queue with
  | QHeap h ->
      let time = Event_heap.next_time h in
      if time < 0 then false
      else begin
        let cell = Event_heap.take h in
        if time > t.clock then t.clock <- time;
        fire t cell;
        true
      end
  | QWheel w ->
      let time = Timing_wheel.next_time w in
      if time < 0 then false
      else begin
        let cell = Timing_wheel.take w ~time in
        if time > t.clock then t.clock <- time;
        fire t cell;
        true
      end
  | QLadder l ->
      let time = Ladder_queue.next_time l in
      if time < 0 then false
      else begin
        let cell = Ladder_queue.take l in
        if time > t.clock then t.clock <- time;
        fire t cell;
        true
      end

(* Earliest queued timestamp as a bare int, negative when the queue is
   empty. A cancelled cell still parks at its timestamp until popped, so
   the value is a conservative lower bound on the next live event — safe
   for horizon computations, which only ever need "no event before t". *)
let next_time t =
  match t.queue with
  | QHeap h -> Event_heap.next_time h
  | QWheel w -> Timing_wheel.next_time w
  | QLadder l -> Ladder_queue.next_time l

let run ?until t =
  let wall0 =
    match t.prof with
    | Some p when p.wall && !(p.enabled) -> Some (Sys.time (), t.clock)
    | Some _ | None -> None
  in
  let executed0 = t.executed in
  let limit = match until with Some l -> l | None -> max_int in
  let dispatch = t.dispatch_cb in
  (match t.queue with
  | QHeap h -> Event_heap.drain_upto h ~limit dispatch
  | QWheel w -> Timing_wheel.drain_upto w ~limit dispatch
  | QLadder l -> Ladder_queue.drain_upto l ~limit dispatch);
  (match until with Some limit when limit > t.clock -> t.clock <- limit | Some _ | None -> ());
  match (t.prof, wall0) with
  | Some p, Some (w0, sim0) ->
      let sim_s = Sim_time.to_sec (t.clock - sim0) in
      (* Observing a wall/sim ratio is only meaningful when the run
         actually dispatched work; a zero-event run measures nothing
         but [Sys.time] granularity. *)
      if t.executed > executed0 && sim_s > 0. then
        Obs.Metrics.Summary.observe p.wall_per_sim ((Sys.time () -. w0) /. sim_s)
  | (Some _ | None), _ -> ()

let drain_until_horizon t ~horizon =
  if horizon < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.drain_until_horizon: horizon=%d is before now=%d" horizon
         t.clock);
  let limit = horizon - 1 in
  let dispatch = t.dispatch_cb in
  (match t.queue with
  | QHeap h -> Event_heap.drain_upto h ~limit dispatch
  | QWheel w -> Timing_wheel.drain_upto w ~limit dispatch
  | QLadder l -> Ladder_queue.drain_upto l ~limit dispatch);
  if horizon > t.clock then t.clock <- horizon

let pending t = !(t.live)
let executed t = t.executed
let queue_depth_hwm t = t.depth_hwm

let set_metrics ?(labels = []) ?(wall = true) t reg =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  t.prof <-
    Some
      {
        reg;
        enabled = Obs.Metrics.on_ref reg;
        labels;
        wall;
        depth = Obs.Metrics.gauge reg ~labels "scheduler.queue_depth";
        wall_per_sim = Obs.Metrics.summary reg ~labels "scheduler.wall_s_per_sim_s";
        by_cls = Hashtbl.create 16;
      }

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "scheduler.executed") t.executed;
    Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels "scheduler.pending") !(t.live);
    Obs.Metrics.Gauge.set
      (Obs.Metrics.gauge reg ~labels "scheduler.queue_depth_hwm")
      t.depth_hwm
  end
