type cell = {
  mutable cancelled : bool;
  mutable callback : unit -> unit;
  mutable queued : bool;
  cls : string;
  live : int ref; (* the owning scheduler's live-event count *)
}

type handle = cell

type prof = {
  reg : Obs.Metrics.t;
  labels : Obs.Metrics.labels;
  wall : bool;
  depth : Obs.Metrics.Gauge.t;
  wall_per_sim : Obs.Metrics.Summary.t;
  by_cls : (string, Obs.Metrics.Counter.t) Hashtbl.t;
}

type t = {
  heap : cell Event_heap.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
  live : int ref;
  mutable depth_hwm : int;
  mutable prof : prof option;
}

let create () =
  {
    heap = Event_heap.create ();
    clock = 0;
    executed = 0;
    live = ref 0;
    depth_hwm = 0;
    prof = None;
  }

let now t = t.clock

let enqueue_cell t ~time cell =
  cell.queued <- true;
  incr t.live;
  if !(t.live) > t.depth_hwm then t.depth_hwm <- !(t.live);
  Event_heap.push t.heap ~time cell;
  match t.prof with
  | Some p when Obs.Metrics.is_enabled p.reg -> Obs.Metrics.Gauge.set p.depth !(t.live)
  | Some _ | None -> ()

let schedule ?(cls = "callback") t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule: at=%d is before now=%d" at t.clock);
  let cell = { cancelled = false; callback = f; queued = false; cls; live = t.live } in
  enqueue_cell t ~time:at cell;
  cell

let schedule_after ?cls t ~delay f =
  if delay < 0 then invalid_arg "Scheduler.schedule_after: negative delay";
  schedule ?cls t ~at:(t.clock + delay) f

let cancel cell =
  if not cell.cancelled then begin
    cell.cancelled <- true;
    if cell.queued then decr cell.live
  end

let every ?(cls = "periodic") t ?start ~period f =
  if period <= 0 then invalid_arg "Scheduler.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  if first < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.every: start=%d is before now=%d" first t.clock);
  let cell = { cancelled = false; callback = (fun () -> ()); queued = false; cls; live = t.live } in
  let rec fire () =
    if not cell.cancelled then begin
      f ();
      if not cell.cancelled then begin
        cell.callback <- fire;
        enqueue_cell t ~time:(t.clock + period) cell
      end
    end
  in
  cell.callback <- fire;
  enqueue_cell t ~time:first cell;
  cell

let cls_counter p cls =
  match Hashtbl.find_opt p.by_cls cls with
  | Some c -> c
  | None ->
      let c =
        Obs.Metrics.counter p.reg ~labels:(("class", cls) :: p.labels) "scheduler.callbacks"
      in
      Hashtbl.add p.by_cls cls c;
      c

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, cell) ->
      t.clock <- max t.clock time;
      cell.queued <- false;
      if not cell.cancelled then begin
        decr t.live;
        t.executed <- t.executed + 1;
        (match t.prof with
        | Some p when Obs.Metrics.is_enabled p.reg ->
            Obs.Metrics.Counter.incr (cls_counter p cell.cls)
        | Some _ | None -> ());
        cell.callback ()
      end;
      true

let run ?until t =
  let wall0 =
    match t.prof with
    | Some p when p.wall && Obs.Metrics.is_enabled p.reg -> Some (Sys.time (), t.clock)
    | Some _ | None -> None
  in
  let continue = ref true in
  while !continue do
    match (Event_heap.peek_time t.heap, until) with
    | None, _ -> continue := false
    | Some time, Some limit when time > limit -> continue := false
    | Some _, _ -> ignore (step t)
  done;
  (match until with Some limit when limit > t.clock -> t.clock <- limit | Some _ | None -> ());
  match (t.prof, wall0) with
  | Some p, Some (w0, sim0) ->
      let sim_s = Sim_time.to_sec (t.clock - sim0) in
      if sim_s > 0. then
        Obs.Metrics.Summary.observe p.wall_per_sim ((Sys.time () -. w0) /. sim_s)
  | (Some _ | None), _ -> ()

let pending t = !(t.live)
let executed t = t.executed
let queue_depth_hwm t = t.depth_hwm

let set_metrics ?(labels = []) ?(wall = true) t reg =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  t.prof <-
    Some
      {
        reg;
        labels;
        wall;
        depth = Obs.Metrics.gauge reg ~labels "scheduler.queue_depth";
        wall_per_sim = Obs.Metrics.summary reg ~labels "scheduler.wall_s_per_sim_s";
        by_cls = Hashtbl.create 16;
      }

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "scheduler.executed") t.executed;
    Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels "scheduler.pending") !(t.live);
    Obs.Metrics.Gauge.set
      (Obs.Metrics.gauge reg ~labels "scheduler.queue_depth_hwm")
      t.depth_hwm
  end
