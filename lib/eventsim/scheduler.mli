(** Discrete-event simulation driver.

    Callbacks are executed in non-decreasing time order; ties run in
    schedule order. A callback may schedule further work, including at
    the current instant.

    Scheduling calls accept an optional callback class [?cls] (e.g.
    ["tm.tx"], ["timer"], ["workload"]), used only by the profiling
    hooks: with {!set_metrics} installed, per-class execution counts,
    the queue-depth high-water mark and wall-time per simulated second
    are recorded into an {!Obs.Metrics} registry. Without it (or with
    the registry disabled) the hooks cost one branch per event. *)

type t
type handle

val create : ?backend:Sched_backend.t -> unit -> t
(** [backend] selects the event-queue implementation (defaults to
    [!Sched_backend.default]). Both backends fire callbacks in exactly
    the same order; see {!Sched_backend}. *)

val now : t -> Sim_time.t

val backend : t -> Sched_backend.t
(** The backend this scheduler was created with. *)

val schedule : ?cls:string -> t -> at:Sim_time.t -> (unit -> unit) -> handle
(** Scheduling in the past raises [Invalid_argument]. [cls] defaults to
    ["callback"]. *)

val schedule_after : ?cls:string -> t -> delay:Sim_time.t -> (unit -> unit) -> handle

val post : ?cls:string -> t -> at:Sim_time.t -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule}: no handle, so the event cannot be
    cancelled — which lets the scheduler recycle its internal cell
    through a free list instead of allocating one per event. Use it on
    hot paths that never cancel. Past times raise [Invalid_argument]
    like {!schedule}. *)

val post_after : ?cls:string -> t -> delay:Sim_time.t -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule_after}; see {!post}. *)

val cancel : handle -> unit
(** Cancelling an already-run or cancelled handle is a no-op. For a
    periodic handle, cancellation stops all future firings. Cancelled
    events leave {!pending} immediately (they still occupy a heap slot
    until their time comes, but are never executed). *)

val every : ?cls:string -> t -> ?start:Sim_time.t -> period:Sim_time.t -> (unit -> unit) -> handle
(** Fire at [start] (default: now + period) and then every [period]
    until cancelled. [cls] defaults to ["periodic"]. A [start] in the
    past raises [Invalid_argument], exactly like {!schedule}. *)

val run : ?until:Sim_time.t -> t -> unit
(** Execute events until the queue is empty or the next event is after
    [until]; with [until], the clock is left at [until]. The loop drains
    same-timestamp batches without re-peeking the queue per event. *)

val step : t -> bool
(** Run the single earliest event; [false] if the queue was empty. *)

val drain_until_horizon : t -> horizon:Sim_time.t -> unit
(** Conservative-PDES window execution: run every queued event with
    time {e strictly before} [horizon] and leave the clock at exactly
    [horizon]. Events at [horizon] or later stay queued, and new work
    may still be scheduled at the horizon itself ([at = now] is legal),
    which is how a parallel shard injects cross-shard deliveries whose
    timestamps open the next window. Honoured identically by both
    backends. A horizon before [now] raises [Invalid_argument]. *)

val next_time : t -> Sim_time.t
(** Timestamp of the earliest queued cell, or a negative value when the
    queue is empty. The earliest cell may be a cancelled event (it parks
    at its slot until popped), so treat the result as a {e conservative
    lower bound} on the next live event — exactly what adaptive-horizon
    computations need. After {!drain_until_horizon} the result is never
    below {!now}. *)

val pending : t -> int
(** Number of queued live events. Cancelled events are excluded, so
    this is a truthful queue-depth gauge. *)

val executed : t -> int
(** Total callbacks executed so far. *)

val queue_depth_hwm : t -> int
(** Highest {!pending} ever reached (lifetime high-water mark). *)

(** {1 Profiling hooks} *)

val set_metrics : ?labels:Obs.Metrics.labels -> ?wall:bool -> t -> Obs.Metrics.t -> unit
(** Install live profiling into [reg]: [scheduler.callbacks] counters
    labelled by [class], a [scheduler.queue_depth] gauge (its max is
    the high-water mark since attach), and — unless [wall] is [false] —
    a [scheduler.wall_s_per_sim_s] summary observed once per {!run}
    call. Wall-clock series are inherently nondeterministic; pass
    [~wall:false] when snapshots must be reproducible. [labels] are
    added to every series. *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Publish current absolute values ([scheduler.executed],
    [scheduler.pending], [scheduler.queue_depth_hwm]) into [reg];
    idempotent, intended to run once before a snapshot. *)
