(* Hierarchical timing wheel (Varghese & Lauck), keyed on Sim_time
   picoseconds.

   Four levels of 256 slots each, with 8 bits of time per level: level
   [l] buckets times by bits [8l .. 8l+7] relative to the wheel position
   [base].  An event lands at the lowest level whose page (the bits
   above the level's own 8) matches [base]'s — i.e. level 0 holds the
   next 256 ps at 1 ps resolution, level 1 the next ~65 ns at 256 ps
   resolution, level 2 the next ~16.7 us, level 3 the next ~4.3 ms.
   Events further than 2^32 ps (~4.3 ms) ahead of [base] overflow into a
   binary heap and are pulled back into the wheel when [base] reaches
   their 2^32 page; a cold far-future timer therefore costs two O(log
   n_overflow) heap ops, while everything on the hot path is amortised
   O(1): insertion is an append to an intrusive singly-linked slot list,
   and each event is re-filed at most [levels - 1] times before firing.

   Determinism: firing order is exactly (time, schedule seq) like
   {!Event_heap}, without storing a sequence number.  Slot lists are
   FIFO, and every redistribution (advance_to flush, overflow drain)
   happens exactly when [base] enters the destination page — before any
   direct insertion into it could have occurred, because a time's level
   under [level_of] only decreases as [base] advances.  So append order
   within a slot is schedule order among equal times, always.

   Layout is optimised for the dispatch loop: the 4x256 slot heads and
   tails are flat 1024-entry arrays indexed [(level lsl 8) lor slot],
   slot occupancy is 32 words of 32 bits (flat, [(level lsl 3) lor
   word]) with a single 32-bit summary int marking non-empty words, so
   "first occupied slot of a level" is two count-trailing-zeros.  All
   indices are mask-derived, which justifies the unsafe accesses.

   Nodes are recycled through an internal free list; a steady-state
   push/pop cycle allocates nothing.  Dead nodes never pin their old
   payload (cleared on release), mirroring the Event_heap null-entry
   discipline. *)

type 'a node = {
  mutable time : int;
  mutable payload : 'a;
  mutable next : 'a node;
}

(* Shared inert node used as list terminator and free-list end.  [node]
   is a mixed int/pointer record, so its representation is the same for
   every ['a] and the cast is safe (same trick as Event_heap's
   null_entry).  Its fields are never mutated: append/release always
   check for it first. *)
let nil_node : Obj.t node =
  let rec n = { time = min_int; payload = Obj.repr (); next = n } in
  n

let nil () : 'a node = Obj.magic nil_node
let is_nil (n : 'a node) = n == (Obj.magic nil_node : 'a node)

let levels = 4
let slot_mask = 255

type 'a t = {
  heads : 'a node array; (* 1024: [(level lsl 8) lor slot] *)
  tails : 'a node array;
  occ : int array; (* 32 words of 32 bits: [(level lsl 3) lor word] *)
  mutable sums : int; (* bit [(level lsl 3) lor word] set iff occ word <> 0 *)
  mutable base : int; (* wheel position; never ahead of the earliest event *)
  mutable wheel_len : int; (* events resident in the wheel levels *)
  overflow : 'a Event_heap.t; (* events >= 2^32 ps ahead of [base] *)
  mutable free : 'a node;
}

let create () =
  {
    heads = Array.make (levels * 256) (nil ());
    tails = Array.make (levels * 256) (nil ());
    occ = Array.make (levels * 8) 0;
    sums = 0;
    base = 0;
    wheel_len = 0;
    overflow = Event_heap.create ();
    free = nil ();
  }

let length t = t.wheel_len + Event_heap.length t.overflow
let is_empty t = t.wheel_len = 0 && Event_heap.is_empty t.overflow
let position t = t.base

(* {2 Occupancy bitmaps} *)

(* [li] is the flat head/tail index [(l lsl 8) lor slot]; the matching
   occupancy word index is [li lsr 5] and the bit within it [li land
   31]. *)
let set_bit t li =
  let w = li lsr 5 in
  Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (li land 31)));
  t.sums <- t.sums lor (1 lsl w)

let clear_bit t li =
  let w = li lsr 5 in
  let word = Array.unsafe_get t.occ w land lnot (1 lsl (li land 31)) in
  Array.unsafe_set t.occ w word;
  if word = 0 then t.sums <- t.sums land lnot (1 lsl w)

let ctz32 x =
  let x = ref (x land (-x)) in
  let n = ref 0 in
  if !x land 0xffff = 0 then begin
    x := !x lsr 16;
    n := !n + 16
  end;
  if !x land 0xff = 0 then begin
    x := !x lsr 8;
    n := !n + 8
  end;
  if !x land 0xf = 0 then begin
    x := !x lsr 4;
    n := !n + 4
  end;
  if !x land 0x3 = 0 then begin
    x := !x lsr 2;
    n := !n + 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Flat head index of the first occupied slot of level [l], or -1.
   Slots before the current position are necessarily empty (their
   events already fired), so the lowest set bit is the first upcoming
   slot. *)
let first_occupied t l =
  let m = (t.sums lsr (l lsl 3)) land 0xff in
  if m = 0 then -1
  else
    let w = (l lsl 3) + ctz32 m in
    (w lsl 5) + ctz32 (Array.unsafe_get t.occ w)

(* {2 Node pool and slot lists} *)

let alloc_node t ~time payload =
  let n = t.free in
  if is_nil n then { time; payload; next = nil () }
  else begin
    t.free <- n.next;
    n.next <- nil ();
    n.time <- time;
    n.payload <- payload;
    n
  end

let release_node t n =
  n.payload <- Obj.magic ();
  n.time <- 0;
  n.next <- t.free;
  t.free <- n

(* Append to the slot list at flat index [li] (always in [0, 1024)). *)
let append t li n =
  if is_nil (Array.unsafe_get t.heads li) then begin
    Array.unsafe_set t.heads li n;
    Array.unsafe_set t.tails li n;
    set_bit t li
  end
  else begin
    (Array.unsafe_get t.tails li).next <- n;
    Array.unsafe_set t.tails li n
  end

(* {2 Insertion} *)

(* Lowest level whose page (the bits above the level's own 8) contains
   both [time] and the wheel position. Every resident node sits at
   [level_of] of its own time w.r.t. the CURRENT base: [advance_to]
   re-files the affected slot whenever the position enters a new page,
   so the invariant survives movement. *)
let level_of t time =
  if time lsr 8 = t.base lsr 8 then 0
  else if time lsr 16 = t.base lsr 16 then 1
  else if time lsr 24 = t.base lsr 24 then 2
  else 3

let insert_node t n =
  let l = level_of t n.time in
  append t ((l lsl 8) lor ((n.time lsr (l lsl 3)) land slot_mask)) n;
  t.wheel_len <- t.wheel_len + 1

let push t ~time payload =
  if time < t.base then
    invalid_arg
      (Printf.sprintf "Timing_wheel.push: time=%d is before wheel position %d"
         time t.base);
  if time lsr 32 <> t.base lsr 32 then Event_heap.push t.overflow ~time payload
  else insert_node t (alloc_node t ~time payload)

(* {2 Peeking (non-destructive)} *)

let slot_min_time t li =
  let n = ref (Array.unsafe_get t.heads li) in
  let m = ref max_int in
  while not (is_nil !n) do
    if !n.time < !m then m := !n.time;
    n := !n.next
  done;
  !m

(* Earliest queued time, or -1.  Level priority is exact: a level-l
   resident is inside [base]'s level-l page while every level-(l+1)
   resident is outside it (hence later), and overflow events are beyond
   the whole wheel span. *)
let next_time t =
  if t.wheel_len = 0 then
    match Event_heap.peek_time t.overflow with None -> -1 | Some x -> x
  else
    (* Unrolled over the four levels to keep this straight-line (a local
       recursive helper would allocate a closure on every peek). *)
    let li = first_occupied t 0 in
    if li >= 0 then ((t.base lsr 8) lsl 8) lor (li land slot_mask)
    else
      let li = first_occupied t 1 in
      if li >= 0 then slot_min_time t li
      else
        let li = first_occupied t 2 in
        if li >= 0 then slot_min_time t li
        else
          let li = first_occupied t 3 in
          if li >= 0 then slot_min_time t li else -1

let peek_time t =
  let x = next_time t in
  if x < 0 then None else Some x

(* {2 Advancing: cascades and the overflow drain} *)

(* Pull every overflow event belonging to [base]'s 2^32 page into the
   wheel.  Heap pop order is (time, push seq), so equal-time events are
   appended in schedule order, preserving FIFO ties. *)
let drain_overflow t =
  let continue = ref true in
  while !continue do
    match Event_heap.peek_time t.overflow with
    | Some time when time lsr 32 = t.base lsr 32 -> (
        match Event_heap.pop t.overflow with
        | Some (time, payload) -> insert_node t (alloc_node t ~time payload)
        | None -> assert false)
    | Some _ | None -> continue := false
  done

(* Advance the wheel position to [tm], the KNOWN earliest queued time,
   re-filing the slot containing [tm] down until its node reaches level
   0 — no occupancy scans needed.  Because [tm] is the minimum, no
   occupied slot precedes its slot at any level, so flushing exactly
   that slot is the flush-at-page-entry the FIFO ordering proof relies
   on.  [base] never exceeds [tm], so a later push at [time >= clock]
   can never land behind the wheel. *)
let rec advance_to t tm =
  let l = level_of t tm in
  if l = 0 then t.base <- tm
  else begin
    let sh = l lsl 3 in
    let li = (l lsl 8) lor ((tm lsr sh) land slot_mask) in
    let span_start = (tm lsr sh) lsl sh in
    if span_start > t.base then t.base <- span_start;
    let n = ref (Array.unsafe_get t.heads li) in
    Array.unsafe_set t.heads li (nil ());
    Array.unsafe_set t.tails li (nil ());
    clear_bit t li;
    while not (is_nil !n) do
      let next = !n.next in
      !n.next <- nil ();
      t.wheel_len <- t.wheel_len - 1;
      insert_node t !n;
      n := next
    done;
    advance_to t tm
  end

(* {2 Removal} *)

(* Remove the earliest event, whose time [tm] = [next_time t] the
   caller has already computed (and checked >= 0). *)
let take_at t tm =
  if t.wheel_len = 0 then begin
    (* Everything queued lives in the overflow: jump to its minimum's
       page and refill the wheel. *)
    t.base <- tm;
    drain_overflow t
  end;
  advance_to t tm;
  let li = tm land slot_mask in
  let n = Array.unsafe_get t.heads li in
  Array.unsafe_set t.heads li n.next;
  if is_nil n.next then begin
    Array.unsafe_set t.tails li (nil ());
    clear_bit t li
  end;
  n.next <- nil ();
  t.wheel_len <- t.wheel_len - 1;
  let payload = n.payload in
  release_node t n;
  payload

let pop t =
  let tm = next_time t in
  if tm < 0 then None else Some (tm, take_at t tm)

(* [time] is the value {!next_time} just returned: re-scanning the
   levels here would double the per-event peek cost on the scheduler
   hot path, so the caller hands the time back instead. *)
let take t ~time =
  if time < 0 || is_empty t then invalid_arg "Timing_wheel.take: empty wheel";
  take_at t time

let drain_upto t ~limit f =
  let continue = ref true in
  while !continue do
    let tm = next_time t in
    if tm < 0 || tm > limit then continue := false
    else begin
      if t.wheel_len = 0 then begin
        t.base <- tm;
        drain_overflow t
      end;
      advance_to t tm;
      let li = tm land slot_mask in
      let heads = t.heads in
      (* Drain the whole slot without re-peeking: a level-0 slot holds a
         single absolute time, and same-instant events scheduled by [f]
         are appended to this very list, so they run in this drain in
         FIFO order. *)
      let more = ref true in
      while !more do
        let n = Array.unsafe_get heads li in
        if is_nil n then more := false
        else begin
          Array.unsafe_set heads li n.next;
          n.next <- nil ();
          t.wheel_len <- t.wheel_len - 1;
          let payload = n.payload in
          release_node t n;
          f ~time:tm payload
        end
      done;
      Array.unsafe_set t.tails li (nil ());
      clear_bit t li
    end
  done
