(** Hierarchical timing wheel: the O(1) scheduler queue backend.

    Four levels of 256 slots, 1 ps resolution at level 0, covering a
    2^32 ps (~4.3 ms) window ahead of the wheel position; events beyond
    the window sit in an overflow heap until the wheel reaches their
    page. Firing order is identical to {!Event_heap}: non-decreasing
    time, FIFO among same-time events (slot lists preserve push order;
    cascades and overflow drains happen before any direct insertion into
    the destination page could occur).

    Not thread-safe. Times are {!Sim_time} picoseconds and must be
    non-negative. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit
(** Queue [payload] at [time].

    @raise Invalid_argument if [time] is before {!position} (the wheel
    cannot travel backwards). *)

val peek_time : 'a t -> int option
(** Earliest queued time, without removing or advancing anything. *)

val next_time : 'a t -> int
(** Earliest queued time, or [-1] when empty — the allocation-free
    {!peek_time} for the scheduler hot path. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)], advancing
    the wheel position to [time]. *)

val take : 'a t -> time:int -> 'a
(** Remove and return the earliest payload alone — allocation-free.
    [time] must be the value {!next_time} just returned (handing it
    back avoids a second level scan on the scheduler hot path).
    Raises [Invalid_argument] when the wheel is empty or [time < 0]. *)

val drain_upto : 'a t -> limit:int -> (time:int -> 'a -> unit) -> unit
(** Fire every event with [time <= limit] through [f], in order,
    including events that [f] itself pushes at already-reached times.
    Same-timestamp events drain from their slot in one pass without
    re-peeking the structure per event. The wheel position never
    advances past the earliest remaining event, so it never exceeds
    [limit]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val position : 'a t -> int
(** Current wheel position: the lower bound below which [push] refuses
    new events. Advances as events fire. *)
