(* E4 — Figure 4 / §1 line-rate claim.

   The event-driven architecture must process packets at line rate
   while event handling rides spare pipeline capacity: events
   piggyback on packet carriers, or consume idle slots as empty
   carriers; they never displace packets. We sweep offered load on a
   4x10G switch running the microburst program (every packet raises
   an enqueue and a dequeue event) plus a periodic timer, and report
   packet delivery, carrier composition and event delivery. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

type point = {
  load : float;  (** offered fraction of line rate *)
  offered_pkts : int;
  delivered_pkts : int;
  busy_fraction : float;
  empty_carriers : int;
  piggybacked : int;
  events_handled : int;
  events_dropped : int;
}

type result = { pkt_bytes : int; duration : Eventsim.Sim_time.t; points : point list }

let run_point ?metrics ~seed ~pkt_bytes ~duration load =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let spec, _detector =
    Apps.Microburst.program ~threshold_bytes:64_000
      ~out_port:(fun pkt -> (pkt.Netcore.Packet.meta.Netcore.Packet.ingress_port + 1) mod 4)
      ()
  in
  let program ctx =
    ignore (ctx.Program.add_timer ~period:(Sim_time.us 1));
    let base = spec ctx in
    { base with Program.timer = Some (fun _ctx _ev -> ()) }
  in
  let sw = Event_switch.create ~sched ~config ~program () in
  let obs_labels = [ ("load", Printf.sprintf "%.2f" load) ] in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels sched m
  | None -> ());
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  let rng = Stats.Rng.create ~seed in
  let sources =
    List.init 4 (fun port ->
        Traffic.poisson ~sched ~rng:(Stats.Rng.split rng)
          ~flow:
            (Netcore.Flow.make
               ~src:(Netcore.Ipv4_addr.host ~subnet:port 1)
               ~dst:(Netcore.Ipv4_addr.host ~subnet:((port + 1) mod 4) 1)
               ~src_port:(1000 + port) ~dst_port:80 ())
          ~pkt_bytes
          ~rate_pps:(load *. 10e9 /. (8. *. float_of_int pkt_bytes))
          ~stop:duration
          ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
          ())
  in
  (* Run the loaded interval plus a drain phase so queued packets
     finish transmitting (the periodic timer never lets the event queue
     empty, so bound the run explicitly). *)
  Scheduler.run ~until:(duration + Sim_time.us 150) sched;
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw m
  | None -> ());
  let offered = List.fold_left (fun acc s -> acc + Traffic.sent s) 0 sources in
  let merger = Event_switch.merger sw in
  let dropped =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Devents.Event_merger.event_drops merger)
  in
  {
    load;
    offered_pkts = offered;
    delivered_pkts = Tmgr.Traffic_manager.transmitted (Event_switch.tm sw);
    busy_fraction = Pisa.Pipeline.busy_fraction (Event_switch.pipeline sw);
    empty_carriers = Devents.Event_merger.empty_carriers merger;
    piggybacked = Devents.Event_merger.piggybacked_events merger;
    events_handled =
      Event_switch.handled sw Event.Buffer_enqueue
      + Event_switch.handled sw Event.Buffer_dequeue
      + Event_switch.handled sw Event.Timer_expiration;
    events_dropped = dropped;
  }

let run ?metrics ?(seed = 42) () =
  let pkt_bytes = 64 and duration = Sim_time.us 200 in
  let points =
    List.map (run_point ?metrics ~seed ~pkt_bytes ~duration) [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]
  in
  { pkt_bytes; duration; points }

let print r =
  Report.section "E4 / Fig 4 — line rate is preserved while events ride spare capacity";
  Report.kv "setup"
    (Printf.sprintf "4x10G, %dB packets, %s per point, microburst program + 1us timer"
       r.pkt_bytes
       (Report.time_ps r.duration));
  Report.blank ();
  Report.table
    ~headers:
      [
        "load"; "offered"; "delivered"; "loss"; "pipe busy"; "empty-carriers"; "piggybacked";
        "ev-handled"; "ev-dropped";
      ]
    ~rows:
      (List.map
         (fun p ->
           [
             Report.pct (100. *. p.load);
             string_of_int p.offered_pkts;
             string_of_int p.delivered_pkts;
             Report.pct
               (100.
               *. float_of_int (p.offered_pkts - p.delivered_pkts)
               /. float_of_int (max 1 p.offered_pkts));
             Report.pct (100. *. p.busy_fraction);
             string_of_int p.empty_carriers;
             string_of_int p.piggybacked;
             string_of_int p.events_handled;
             string_of_int p.events_dropped;
           ])
         r.points);
  Report.blank ();
  let worst =
    List.fold_left
      (fun acc p ->
        Float.max acc
          (float_of_int (p.offered_pkts - p.delivered_pkts) /. float_of_int (max 1 p.offered_pkts)))
      0. r.points
  in
  Report.kv "max packet loss across loads" (Report.pct (100. *. worst));
  Report.kv "shape check (paper: no loss at line rate)"
    (if worst < 0.005 then "PASS" else "FAIL")

let name = "fig4-linerate"
