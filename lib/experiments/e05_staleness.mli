(** E5 — Figure 3 / §4: aggregated shared registers; staleness versus
    the idle-cycle supply (load, packet size, overspeed). *)

type point = {
  label : string;
  clock_ns : float;
  busy_fraction : float;
  staleness_p50 : float;
  staleness_p99 : float;
  staleness_max : float;
  read_error_mean : float;
  read_error_max : float;
  applied_ops : int;
}

type result = { points : point list }

val run : ?metrics:Obs.Metrics.t -> ?seed:int -> unit -> result
(** With [metrics], scheduler profiling, per-switch series and the
    shared register's staleness histograms are recorded per sweep
    point (labelled [point=...]). *)

val print : result -> unit
val name : string
