(* E6 — §2 worked example: microburst culprit detection.

   Three culprit flows dump simultaneous bursts into one output port
   while background flows behave. The event-driven detector (exact
   per-flow occupancy from enqueue/dequeue events, checked at ingress
   before enqueue) is compared against the Snappy-like baseline
   (snapshot sketches at egress). The paper's claims: ~4x or more
   state reduction, detection moved to ingress (before the queueing
   delay), and exact rather than approximate occupancy. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Traffic = Workloads.Traffic

let slots = 1024
let threshold_bytes = 30_000
let congested_port = 3

type variant_result = {
  variant : string;
  state_bits : int;
  detected_slots : int list;
  latencies_ns : float list;  (** per true-positive culprit *)
}

type result = {
  culprit_slots : int list;
  event_driven : variant_result;
  event_driven_aggregated_bits : int;
  snappy : variant_result;
}

let flow_slot flow = Netcore.Hashes.fold_range (Flow.hash_addresses flow) slots

let background_flows =
  List.init 6 (fun i ->
      Flow.make
        ~src:(Netcore.Ipv4_addr.host ~subnet:1 (10 + i))
        ~dst:(Netcore.Ipv4_addr.host ~subnet:4 1)
        ~src_port:(2000 + i) ~dst_port:80 ())

let culprit_flows =
  List.init 3 (fun i ->
      Flow.make
        ~src:(Netcore.Ipv4_addr.host ~subnet:2 (50 + i))
        ~dst:(Netcore.Ipv4_addr.host ~subnet:4 2)
        ~src_port:(3000 + i) ~dst_port:80 ())

let burst_start = Sim_time.us 50

let drive_workload ~sched ~inject =
  (* Background: 6 flows x 0.3 Gb/s of 500B packets across ports 0-2. *)
  List.iteri
    (fun i flow ->
      ignore
        (Traffic.cbr ~sched ~flow ~pkt_bytes:500 ~rate_gbps:0.3 ~stop:(Sim_time.us 200)
           ~send:(fun pkt -> inject (i mod 3) pkt)
           ()))
    background_flows;
  (* Culprits: 60 x 1000B back-to-back at 10G each (60 KB > threshold),
     all starting at the same instant on different input ports. *)
  List.iteri
    (fun i flow ->
      ignore
        (Traffic.burst_once ~sched ~flow ~pkt_bytes:1000 ~count:60 ~rate_gbps:10.
           ~at:burst_start
           ~send:(fun pkt -> inject i pkt)
           ()))
    culprit_flows

let latency_of detections =
  List.filter_map
    (fun (slot, time) ->
      if List.exists (fun f -> flow_slot f = slot) culprit_flows then
        Some (Sim_time.to_ns (time - burst_start))
      else None)
    detections

let run_event_driven ?metrics ~state_mode () =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config = { config with Event_switch.state_mode } in
  let spec, detector =
    Apps.Microburst.program ~slots ~threshold_bytes ~out_port:(fun _ -> congested_port) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let obs_labels =
    [
      ( "variant",
        match state_mode with
        | Devents.Shared_register.Multiport -> "event-driven-multiport"
        | Devents.Shared_register.Aggregated -> "event-driven-aggregated" );
    ]
  in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels sched m
  | None -> ());
  Event_switch.set_port_tx sw ~port:congested_port (fun _ -> ());
  drive_workload ~sched ~inject:(fun port pkt -> Event_switch.inject sw ~port pkt);
  Scheduler.run sched;
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw m
  | None -> ());
  let detections =
    List.map
      (fun (d : Apps.Microburst.detection) ->
        (d.Apps.Microburst.flow_id, d.Apps.Microburst.time))
      (Apps.Microburst.detections detector)
  in
  {
    variant =
      (match state_mode with
      | Devents.Shared_register.Multiport -> "event-driven (multiport)"
      | Devents.Shared_register.Aggregated -> "event-driven (aggregated)");
    state_bits = Apps.Microburst.state_bits detector;
    detected_slots = List.sort_uniq Int.compare (List.map fst detections);
    latencies_ns = latency_of detections;
  }

let run_snappy ?metrics () =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.baseline_psa in
  let spec, detector =
    Apps.Snappy.program ~slots ~threshold_bytes ~out_port:(fun _ -> congested_port) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let obs_labels = [ ("variant", "snappy-baseline") ] in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels sched m
  | None -> ());
  Event_switch.set_port_tx sw ~port:congested_port (fun _ -> ());
  drive_workload ~sched ~inject:(fun port pkt -> Event_switch.inject sw ~port pkt);
  Scheduler.run sched;
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw m
  | None -> ());
  let detections =
    List.map
      (fun (d : Apps.Snappy.detection) -> (d.Apps.Snappy.flow_id, d.Apps.Snappy.time))
      (Apps.Snappy.detections detector)
  in
  {
    variant = "snappy baseline (PSA)";
    state_bits = Apps.Snappy.state_bits detector;
    detected_slots = List.sort_uniq Int.compare (List.map fst detections);
    latencies_ns = latency_of detections;
  }

let run ?metrics ?(seed = 42) () =
  ignore seed;
  let aggregated =
    run_event_driven ?metrics ~state_mode:Devents.Shared_register.Aggregated ()
  in
  {
    culprit_slots = List.sort_uniq Int.compare (List.map flow_slot culprit_flows);
    event_driven = run_event_driven ?metrics ~state_mode:Devents.Shared_register.Multiport ();
    event_driven_aggregated_bits = aggregated.state_bits;
    snappy = run_snappy ?metrics ();
  }

let precision_recall ~truth ~detected =
  let inter = List.filter (fun s -> List.mem s truth) detected in
  let p =
    if detected = [] then 1. else float_of_int (List.length inter) /. float_of_int (List.length detected)
  in
  let r =
    if truth = [] then 1. else float_of_int (List.length inter) /. float_of_int (List.length truth)
  in
  (p, r)

let print r =
  Report.section "E6 / §2 — microburst culprit detection: event-driven vs Snappy";
  Report.kv "culprits" (String.concat ", " (List.map string_of_int r.culprit_slots));
  Report.blank ();
  let row v =
    let p, rc = precision_recall ~truth:r.culprit_slots ~detected:v.detected_slots in
    let lat =
      if v.latencies_ns = [] then "-" else Report.ns (Stats.Summary.mean (Array.of_list v.latencies_ns))
    in
    [
      v.variant;
      string_of_int v.state_bits;
      string_of_int (List.length v.detected_slots);
      Report.f2 p;
      Report.f2 rc;
      lat;
    ]
  in
  Report.table
    ~headers:[ "variant"; "state bits"; "detections"; "precision"; "recall"; "mean latency" ]
    ~rows:[ row r.event_driven; row r.snappy ];
  Report.blank ();
  let ratio = float_of_int r.snappy.state_bits /. float_of_int r.event_driven.state_bits in
  Report.kv "state reduction (paper: at least 4x)" (Printf.sprintf "%.1fx" ratio);
  Report.kv "aggregated-mode bits (Fig 3: 3 arrays)"
    (string_of_int r.event_driven_aggregated_bits);
  let _, ed_recall = precision_recall ~truth:r.culprit_slots ~detected:r.event_driven.detected_slots in
  let ed_lat =
    if r.event_driven.latencies_ns = [] then infinity
    else Stats.Summary.mean (Array.of_list r.event_driven.latencies_ns)
  in
  let sn_lat =
    if r.snappy.latencies_ns = [] then infinity
    else Stats.Summary.mean (Array.of_list r.snappy.latencies_ns)
  in
  Report.kv "event-driven finds all culprits" (if ed_recall >= 0.999 then "PASS" else "FAIL");
  Report.kv "state reduction at least 4x" (if ratio >= 4. then "PASS" else "FAIL");
  Report.kv "event-driven detects earlier (pre-enqueue)"
    (if ed_lat < sn_lat then "PASS" else "FAIL")

let name = "microburst"
