(* E21 — chaos: microburst detection + fast re-route under seeded
   fault injection (the robustness face of the paper's Table 1 failure
   events).

   Topology (E12's): src host -> switch A -> {primary | backup} ->
   switch B -> dst host.  Switch A runs the event-driven fast-reroute
   program; switch B runs the microburst detector (all traffic routed
   to the host port, which is slower than the core links, so bursts
   queue there).  A seeded [Faults.Engine] then subjects the run to one
   of three profiles:

   - flaky-links: Poisson link flaps on the primary plus packet
     drop/duplicate/delay perturbations on both core links;
   - burst-storm: line-rate packet bursts injected at switch A,
     overflowing switch B's shared buffer;
   - churn: control-plane register writes, handler de/re-registration
     and CP packet injections against both switches;
   - handler-faults: injected crashes into the detector's dequeue
     handler and watchdog-busting slowdowns into its enqueue handler,
     exercising the supervision layer's quarantine/backoff path.

   Graceful-degradation claims checked: packet conservation holds to
   the unit under every profile (nothing is silently created or lost),
   the final routing state agrees with the final link state (the
   epoch-tagged status notifications of Tmgr.Link), traffic keeps
   flowing, and the targeted fault class demonstrably fired. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host
module Link = Tmgr.Link
module Traffic = Workloads.Traffic

let stop_at = Sim_time.ms 3
let rate_gbps = 1.
let primary_port = 1
let backup_port = 2
let burst_inject_port = 3

type result = {
  profile : string;
  seed : int;
  sent : int;  (** CBR packets from the source host *)
  burst_injected : int;
  cp_injected : int;
  duplicated : int;
  received : int;  (** delivered to either host *)
  link_lost : int;
  switch_dropped : int;
  balance : int;  (** conservation residue; 0 = nothing unaccounted *)
  flaps : int;
  stale_notifications : int;
  overflow_events : int;
  control_handled : int;
  subscription_toggles : int;
  detections : int;
  handler_trips : int;
  handler_recoveries : int;
  failover_latency_ns : float option;
  final_consistent : bool;
      (** routing state agrees with primary-link state after the dust settles *)
  faults : (string * Faults.Engine.counts) list;
}

(* Switch B's program: the §2 microburst detector, extended with a
   control-event handler that writes the event's argument into a config
   register — the "register writes mid-flight" half of the churn
   profile. *)
let detector_program ~slots ~threshold_bytes () =
  let spec, det = Apps.Microburst.program ~slots ~threshold_bytes ~out_port:(fun _ -> 0) () in
  let spec ctx =
    let p = spec ctx in
    let cfg = Evcore.Program.shared_register ctx ~name:"chaos_cfg" ~entries:16 ~width:32 in
    {
      p with
      Evcore.Program.control =
        Some
          (fun _ctx (ev : Event.control_event) ->
            Devents.Shared_register.write cfg (ev.Event.opcode land 15) ev.Event.arg);
    }
  in
  (spec, det)

(* One culprit flow, so its exact occupancy crosses the detector's
   threshold and the storm overflows the small shared buffer. *)
let burst_template i =
  Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:3 1)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 9)
    ~src_port:(4000 + (i mod 8))
    ~dst_port:80 ~payload_len:958 ()

let cp_probe i =
  Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:9 1)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 9)
    ~src_port:(5000 + (i mod 4))
    ~dst_port:7 ~payload_len:22 ()

let switch_drops sw =
  let tm = Event_switch.tm sw in
  let merger = Event_switch.merger sw in
  Event_switch.program_drops sw + Event_switch.unrouted sw
  + Event_switch.unsupported_actions sw
  + Event_switch.supervised_drops sw
  + Tmgr.Traffic_manager.drops tm
  + Tmgr.Traffic_manager.egress_drops tm
  + Devents.Event_merger.packet_drops merger
  + Devents.Event_merger.packets_shed merger

let run ?metrics ?(seed = 42) ?(profile = Faults.Profile.Flaky_links) () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let obs_labels = [ ("variant", Faults.Profile.to_string profile) ] in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels ~wall:false sched m
  | None -> ());
  (* Switch A: fast re-route. *)
  let frr_spec, frr = Apps.Fast_reroute.program ~mode:Apps.Fast_reroute.Event_driven
      ~primary:primary_port ~backup:backup_port ()
  in
  let sw_a =
    Event_switch.create ~sched ~id:0
      ~config:(Event_switch.default_config Arch.event_pisa_full)
      ~program:frr_spec ()
  in
  (* Switch B: microburst detector; host port at 2.5 Gb/s and a small
     shared buffer so storms actually queue and overflow. *)
  let det_spec, det = detector_program ~slots:256 ~threshold_bytes:15_000 () in
  let config_b =
    let base = Event_switch.default_config Arch.event_pisa_full in
    {
      base with
      Event_switch.tm_config =
        {
          base.Event_switch.tm_config with
          Tmgr.Traffic_manager.port_rate_gbps = 2.5;
          buffer_bytes = 32_000;
        };
    }
  in
  let sw_b = Event_switch.create ~sched ~id:1 ~config:config_b ~program:det_spec () in
  let primary = Network.connect_switches network ~a:(sw_a, primary_port) ~b:(sw_b, primary_port) () in
  let backup = Network.connect_switches network ~a:(sw_a, backup_port) ~b:(sw_b, backup_port) () in
  let src = Host.create ~sched ~id:0 () and dst = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:src ~switch:(sw_a, 0) ());
  ignore (Network.connect_host network ~host:dst ~switch:(sw_b, 0) ());
  (* Base traffic. *)
  let traffic =
    Traffic.cbr ~sched
      ~flow:
        (Netcore.Flow.make
           ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
           ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
           ~src_port:7 ~dst_port:7 ())
      ~pkt_bytes:500 ~rate_gbps ~stop:stop_at
      ~send:(fun pkt -> Host.send src pkt)
      ()
  in
  (* Fault processes per profile. *)
  let engine = Faults.Engine.create ~sched ~seed ~stop:stop_at () in
  let cp_count = ref 0 in
  (match profile with
  | Faults.Profile.Flaky_links ->
      Faults.Engine.add_link_flaps engine ~name:"link-flap"
        ~plan:(Faults.Schedule.Poisson { start = Sim_time.us 200; rate_per_sec = 2500. })
        ~down_for:(Sim_time.us 80) ~down_jitter:(Sim_time.us 40) primary;
      let perturb =
        Faults.Perturb.lossy ~drop_p:0.02 ~dup_p:0.01 ~delay_p:0.03
          ~max_extra_delay:(Sim_time.us 5) ()
      in
      Faults.Engine.add_perturbation engine ~name:"perturb" ~config:perturb primary;
      Faults.Engine.add_perturbation engine ~name:"perturb" ~config:perturb backup
  | Faults.Profile.Burst_storm ->
      Faults.Engine.add_burst_storm engine ~name:"burst"
        ~plan:
          (Faults.Schedule.Periodic
             { start = Sim_time.us 150; period = Sim_time.us 250; jitter = Sim_time.us 100 })
        ~pkts_per_burst:60 ~pkt_bytes:1000 ~rate_gbps:10. ~template:burst_template
        ~inject:(fun pkt -> Event_switch.inject sw_a ~port:burst_inject_port pkt)
  | Faults.Profile.Churn ->
      let op_rng = Stats.Rng.create ~seed:(seed lxor 0x5eed) in
      let ops =
        [|
          ( "register-write",
            fun () ->
              Event_switch.control_event sw_b ~opcode:(Stats.Rng.int op_rng 64)
                ~arg:(Stats.Rng.int op_rng 1_000_000) );
          ( "register-write-a",
            fun () ->
              Event_switch.control_event sw_a ~opcode:(Stats.Rng.int op_rng 64)
                ~arg:(Stats.Rng.int op_rng 1_000_000) );
          ( "handler-rereg",
            fun () ->
              (* De-register the detector's dequeue handler, re-register
                 shortly after: mid-flight handler churn. *)
              Event_switch.set_subscribed sw_b Event.Buffer_dequeue false;
              ignore
                (Scheduler.schedule_after ~cls:"fault" sched ~delay:(Sim_time.us 20)
                   (fun () -> Event_switch.set_subscribed sw_b Event.Buffer_dequeue true)) );
          ( "cp-inject",
            fun () ->
              incr cp_count;
              Event_switch.inject_from_control_plane sw_a (cp_probe !cp_count) );
        |]
      in
      Faults.Engine.add_churn engine ~name:"churn"
        ~plan:
          (Faults.Schedule.Periodic
             { start = Sim_time.us 100; period = Sim_time.us 50; jitter = Sim_time.us 25 })
        ~ops
  | Faults.Profile.Handler_faults ->
      (* Crash the detector's dequeue handler and slow its enqueue
         handler past the watchdog budget; under the default Quarantine
         policy both should trip, back off and recover repeatedly
         within the 3 ms run. *)
      Faults.Engine.add_handler_crash engine ~name:"handler-crash"
        ~plan:
          (Faults.Schedule.Periodic
             { start = Sim_time.us 200; period = Sim_time.us 300; jitter = Sim_time.us 50 })
        (Event_switch.handler_key sw_b Event.Buffer_dequeue);
      Faults.Engine.add_handler_slowdown engine ~name:"handler-slow"
        ~plan:
          (Faults.Schedule.Periodic
             { start = Sim_time.us 350; period = Sim_time.us 400; jitter = Sim_time.us 80 })
        ~steps:1_000_000
        (Event_switch.handler_key sw_b Event.Buffer_enqueue));
  Scheduler.run sched;
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw_a m;
      Event_switch.export_metrics ~labels:obs_labels sw_b m;
      Faults.Engine.export_metrics ~labels:obs_labels engine m
  | None -> ());
  let links = Network.links network in
  let link_lost = List.fold_left (fun acc l -> acc + Link.lost l) 0 links in
  let duplicated = List.fold_left (fun acc l -> acc + Link.perturb_dups l) 0 links in
  let stale = List.fold_left (fun acc l -> acc + Link.stale_notifications l) 0 links in
  let faults = Faults.Engine.stats engine in
  let burst_injected =
    match List.assoc_opt "burst" faults with
    | Some c -> c.Faults.Engine.injected
    | None -> 0
  in
  let flaps =
    match List.assoc_opt "link-flap" faults with
    | Some c -> c.Faults.Engine.injected
    | None -> 0
  in
  let sent = Traffic.sent traffic in
  let cp_injected = Event_switch.cp_injections sw_a + Event_switch.cp_injections sw_b in
  let received = Host.received dst + Host.received src in
  let switch_dropped = switch_drops sw_a + switch_drops sw_b in
  let balance =
    sent + burst_injected + cp_injected + duplicated
    - (received + link_lost + switch_dropped)
  in
  {
    profile = Faults.Profile.to_string profile;
    seed;
    sent;
    burst_injected;
    cp_injected;
    duplicated;
    received;
    link_lost;
    switch_dropped;
    balance;
    flaps;
    stale_notifications = stale;
    overflow_events =
      Event_switch.fired sw_a Event.Buffer_overflow + Event_switch.fired sw_b Event.Buffer_overflow;
    control_handled =
      Event_switch.handled sw_a Event.Control_plane + Event_switch.handled sw_b Event.Control_plane;
    subscription_toggles = Event_switch.subscription_toggles sw_b;
    detections = Apps.Microburst.detection_count det;
    handler_trips =
      Resil.Supervisor.trips (Event_switch.supervisor sw_a)
      + Resil.Supervisor.trips (Event_switch.supervisor sw_b);
    handler_recoveries =
      Resil.Supervisor.recoveries (Event_switch.supervisor sw_a)
      + Resil.Supervisor.recoveries (Event_switch.supervisor sw_b);
    failover_latency_ns =
      Option.map (fun t -> Sim_time.to_ns t) (Apps.Fast_reroute.failover_time frr);
    final_consistent = Apps.Fast_reroute.using_backup frr = not (Link.is_up primary);
    faults;
  }

let exercised r =
  match r.profile with
  | "flaky-links" -> r.flaps > 0 && r.link_lost > 0
  | "burst-storm" -> r.burst_injected > 0 && r.overflow_events > 0
  | "churn" -> r.control_handled > 0 && r.subscription_toggles > 0 && r.cp_injected > 0
  | "handler-faults" -> r.handler_trips > 0 && r.handler_recoveries > 0
  | _ -> false

let print r =
  Report.section
    (Printf.sprintf "E21 / chaos — fault injection (profile %s, seed %d)" r.profile r.seed);
  Report.kv "scenario"
    (Printf.sprintf
       "%.0f Gb/s CBR through FRR switch + microburst detector, %.0f ms under faults"
       rate_gbps (Sim_time.to_ms stop_at));
  Report.blank ();
  Report.table
    ~headers:[ "fault class"; "injected"; "absorbed"; "dropped" ]
    ~rows:
      (List.map
         (fun (name, c) ->
           [
             name;
             string_of_int c.Faults.Engine.injected;
             string_of_int c.Faults.Engine.absorbed;
             string_of_int c.Faults.Engine.dropped;
           ])
         r.faults);
  Report.blank ();
  Report.kv "packets in (sent+burst+cp+dup)"
    (Printf.sprintf "%d+%d+%d+%d" r.sent r.burst_injected r.cp_injected r.duplicated);
  Report.kv "packets out (rcvd+lost+dropped)"
    (Printf.sprintf "%d+%d+%d" r.received r.link_lost r.switch_dropped);
  Report.kv "flaps / stale notifications suppressed"
    (Printf.sprintf "%d / %d" r.flaps r.stale_notifications);
  Report.kv "overflow events / detections"
    (Printf.sprintf "%d / %d" r.overflow_events r.detections);
  Report.kv "handler trips / backoff recoveries"
    (Printf.sprintf "%d / %d" r.handler_trips r.handler_recoveries);
  (match r.failover_latency_ns with
  | Some l -> Report.kv "first failover" (Report.ns l)
  | None -> ());
  Report.blank ();
  Report.kv "packet conservation holds" (if r.balance = 0 then "PASS" else "FAIL");
  Report.kv "routing state consistent with link state"
    (if r.final_consistent then "PASS" else "FAIL");
  Report.kv "traffic still flows under chaos" (if r.received > 0 then "PASS" else "FAIL");
  Report.kv "targeted fault class exercised" (if exercised r then "PASS" else "FAIL")

let name = "chaos"
