(** E21 — chaos: microburst detection + fast re-route under seeded
    fault injection.

    Runs the E12 topology (source -> FRR switch -> primary/backup ->
    detector switch -> sink) for 3 ms while a {!Faults.Engine} applies
    one of three profiles, then checks graceful degradation: packet
    conservation to the unit, final routing state consistent with the
    final link state, traffic still flowing, and the targeted fault
    class demonstrably exercised. Fully deterministic per seed. *)

type result = {
  profile : string;
  seed : int;
  sent : int;
  burst_injected : int;
  cp_injected : int;
  duplicated : int;
  received : int;
  link_lost : int;
  switch_dropped : int;
  balance : int;  (** conservation residue; 0 = nothing unaccounted *)
  flaps : int;
  stale_notifications : int;
  overflow_events : int;
  control_handled : int;
  subscription_toggles : int;
  detections : int;
  handler_trips : int;  (** supervisor quarantine trips, both switches *)
  handler_recoveries : int;  (** successful backoff re-enables *)
  failover_latency_ns : float option;
  final_consistent : bool;
  faults : (string * Faults.Engine.counts) list;
}

val run :
  ?metrics:Obs.Metrics.t -> ?seed:int -> ?profile:Faults.Profile.t -> unit -> result

val exercised : result -> bool
(** The profile's targeted fault class actually fired and had effect. *)

val print : result -> unit
val name : string
