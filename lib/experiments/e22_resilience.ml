(* E22 — resilience under handler faults: what supervision buys.

   One switch runs the §2 microburst detector while a seeded fault
   engine crashes its dequeue handler, burns its enqueue handler's
   watchdog budget, and injects periodic burst storms for load. The
   same scenario is replayed under four resilience configurations
   (legs):

   - fail-fast: the pre-supervision baseline — the first handler fault
     aborts the whole simulation;
   - drop-event: faults are absorbed, each costs one event, the handler
     stays subscribed;
   - quarantine: tripped handlers are unsubscribed and re-enabled after
     exponential backoff with seeded jitter (the default policy);
   - quarantine+shed: quarantine plus merger event shedding with an
     aggressive watermark, to show graceful degradation engaging.

   Every completed leg also runs the periodic invariant checker
   (packet conservation, buffer occupancy, timer monotonicity) in
   record mode and reports its verdicts. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Network = Evcore.Network
module Host = Evcore.Host
module Link = Tmgr.Link
module Traffic = Workloads.Traffic

let stop_at = Sim_time.ms 3
let burst_inject_port = 3

type leg = {
  label : string;
  policy : string;
  completed : bool;  (** the run finished without an uncaught exception *)
  failed_handler : string option;  (** who aborted a fail-fast run *)
  sent : int;
  burst_injected : int;
  received : int;
  link_lost : int;
  switch_dropped : int;
  balance : int;
  crashes : int;
  watchdog_trips : int;
  trips : int;
  recoveries : int;
  permanent_failures : int;
  dropped_events : int;
  shed_events : int;
  detections : int;
  invariant_passes : int;
  invariant_violations : int;
}

type result = { seed : int; legs : leg list }

let burst_template i =
  Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:3 1)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 9)
    ~src_port:(4000 + (i mod 8))
    ~dst_port:80 ~payload_len:958 ()

let switch_drops sw =
  let tm = Event_switch.tm sw in
  let merger = Event_switch.merger sw in
  Event_switch.program_drops sw + Event_switch.unrouted sw
  + Event_switch.unsupported_actions sw
  + Event_switch.supervised_drops sw
  + Tmgr.Traffic_manager.drops tm
  + Tmgr.Traffic_manager.egress_drops tm
  + Devents.Event_merger.packet_drops merger
  + Devents.Event_merger.packets_shed merger

let run_leg ?metrics ~seed ~label ~policy ~shed () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let obs_labels = [ ("leg", label) ] in
  (match metrics with
  | Some m -> Scheduler.set_metrics ~labels:obs_labels ~wall:false sched m
  | None -> ());
  let det_spec, det =
    Apps.Microburst.program ~slots:256 ~threshold_bytes:15_000 ~out_port:(fun _ -> 0) ()
  in
  (* Make the program telemetry-heavy — also consuming transmitted and
     underflow events — so bursts genuinely cluster events at the
     merger and the shedding leg has overload to degrade under. *)
  let det_spec ctx =
    let p = det_spec ctx in
    {
      p with
      Evcore.Program.transmitted = Some (fun _ctx _ev -> ());
      underflow = Some (fun _ctx _ev -> ());
    }
  in
  let config =
    let base = Event_switch.default_config Arch.event_pisa_full in
    {
      base with
      Event_switch.resil =
        { (Resil.Supervisor.default_config ()) with Resil.Supervisor.policy };
      shed_watermark = shed;
      tm_config =
        {
          base.Event_switch.tm_config with
          Tmgr.Traffic_manager.port_rate_gbps = 2.5;
          buffer_bytes = 32_000;
        };
    }
  in
  let sw = Event_switch.create ~sched ~id:0 ~config ~program:det_spec () in
  let src = Host.create ~sched ~id:0 () and dst = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:dst ~switch:(sw, 0) ());
  ignore (Network.connect_host network ~host:src ~switch:(sw, 1) ());
  let traffic =
    Traffic.cbr ~sched
      ~flow:
        (Netcore.Flow.make
           ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
           ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
           ~src_port:7 ~dst_port:7 ())
      ~pkt_bytes:500 ~rate_gbps:1. ~stop:stop_at
      ~send:(fun pkt -> Host.send src pkt)
      ()
  in
  let engine = Faults.Engine.create ~sched ~seed ~stop:stop_at () in
  Faults.Engine.add_burst_storm engine ~name:"burst"
    ~plan:
      (Faults.Schedule.Periodic
         { start = Sim_time.us 150; period = Sim_time.us 250; jitter = Sim_time.us 100 })
    ~pkts_per_burst:60 ~pkt_bytes:1000 ~rate_gbps:10. ~template:burst_template
    ~inject:(fun pkt -> Event_switch.inject sw ~port:burst_inject_port pkt);
  Faults.Engine.add_handler_crash engine ~name:"handler-crash"
    ~plan:
      (Faults.Schedule.Periodic
         { start = Sim_time.us 200; period = Sim_time.us 300; jitter = Sim_time.us 50 })
    (Event_switch.handler_key sw Event.Buffer_dequeue);
  Faults.Engine.add_handler_slowdown engine ~name:"handler-slow"
    ~plan:
      (Faults.Schedule.Periodic
         { start = Sim_time.us 350; period = Sim_time.us 400; jitter = Sim_time.us 80 })
    ~steps:1_000_000
    (Event_switch.handler_key sw Event.Buffer_enqueue);
  let inv =
    Resil.Invariants.create ~sched ~policy:Resil.Invariants.Record ~period:(Sim_time.us 50) ()
  in
  Event_switch.invariant_checks sw inv;
  Resil.Invariants.start inv ~stop:stop_at;
  let completed, failed_handler =
    match Scheduler.run sched with
    | () -> (true, None)
    | exception Resil.Supervisor.Failed (name, _) -> (false, Some name)
  in
  (match metrics with
  | Some m ->
      Scheduler.export_metrics ~labels:obs_labels sched m;
      Event_switch.export_metrics ~labels:obs_labels sw m;
      Faults.Engine.export_metrics ~labels:obs_labels engine m;
      Resil.Invariants.export_metrics ~labels:obs_labels inv m
  | None -> ());
  let sup = Event_switch.supervisor sw in
  let merger = Event_switch.merger sw in
  let link_lost = List.fold_left (fun acc l -> acc + Link.lost l) 0 (Network.links network) in
  let burst_injected =
    match List.assoc_opt "burst" (Faults.Engine.stats engine) with
    | Some c -> c.Faults.Engine.injected
    | None -> 0
  in
  let sent = Traffic.sent traffic in
  let received = Host.received dst + Host.received src in
  let switch_dropped = switch_drops sw in
  {
    label;
    policy = Resil.Policy.to_string policy;
    completed;
    failed_handler;
    sent;
    burst_injected;
    received;
    link_lost;
    switch_dropped;
    balance = sent + burst_injected - (received + link_lost + switch_dropped);
    crashes = Resil.Supervisor.crashes sup;
    watchdog_trips = Resil.Supervisor.watchdog_trips sup;
    trips = Resil.Supervisor.trips sup;
    recoveries = Resil.Supervisor.recoveries sup;
    permanent_failures = Resil.Supervisor.permanent_failures sup;
    dropped_events = Resil.Supervisor.dropped sup;
    shed_events = Devents.Event_merger.events_shed merger;
    detections = Apps.Microburst.detection_count det;
    invariant_passes = Resil.Invariants.passes inv;
    invariant_violations = Resil.Invariants.violations inv;
  }

let run ?metrics ?(seed = 42) () =
  let legs =
    [
      run_leg ?metrics ~seed ~label:"fail-fast" ~policy:Resil.Policy.Fail_fast ~shed:None ();
      run_leg ?metrics ~seed ~label:"drop-event" ~policy:Resil.Policy.Drop_event ~shed:None ();
      run_leg ?metrics ~seed ~label:"quarantine" ~policy:Resil.Policy.Quarantine ~shed:None ();
      run_leg ?metrics ~seed ~label:"quarantine+shed" ~policy:Resil.Policy.Quarantine
        ~shed:(Some 2) ();
    ]
  in
  { seed; legs }

let find_leg r label = List.find (fun l -> l.label = label) r.legs

let passes r =
  let ff = find_leg r "fail-fast" in
  let q = find_leg r "quarantine" in
  let qs = find_leg r "quarantine+shed" in
  (not ff.completed)
  && q.completed && q.trips > 0 && q.recoveries > 0 && q.balance = 0
  && q.invariant_violations = 0
  && qs.completed && qs.shed_events > 0 && qs.balance = 0

let print r =
  Report.section (Printf.sprintf "E22 / resilience — supervised handler execution (seed %d)" r.seed);
  Report.kv "scenario"
    (Printf.sprintf
       "microburst detector under handler crashes + watchdog slowdowns + burst storms, %.0f ms"
       (Sim_time.to_ms stop_at));
  Report.blank ();
  Report.table
    ~headers:[ "leg"; "done"; "crashes"; "wdog"; "trips"; "recov"; "ev-drop"; "shed"; "balance" ]
    ~rows:
      (List.map
         (fun l ->
           [
             l.label;
             (if l.completed then "yes" else "ABORT");
             string_of_int l.crashes;
             string_of_int l.watchdog_trips;
             string_of_int l.trips;
             string_of_int l.recoveries;
             string_of_int l.dropped_events;
             string_of_int l.shed_events;
             (if l.completed then string_of_int l.balance else "-");
           ])
         r.legs);
  Report.blank ();
  let ff = find_leg r "fail-fast" in
  let q = find_leg r "quarantine" in
  let qs = find_leg r "quarantine+shed" in
  (match ff.failed_handler with
  | Some h -> Report.kv "fail-fast aborted by handler" h
  | None -> ());
  Report.kv "invariant sweeps (quarantine leg)"
    (Printf.sprintf "%d passes, %d violations" q.invariant_passes q.invariant_violations);
  Report.blank ();
  Report.kv "supervision off dies on first fault" (if not ff.completed then "PASS" else "FAIL");
  Report.kv "quarantine survives the same faults"
    (if q.completed && q.trips > 0 then "PASS" else "FAIL");
  Report.kv "backoff re-enables tripped handlers" (if q.recoveries > 0 then "PASS" else "FAIL");
  Report.kv "packet conservation under quarantine" (if q.balance = 0 then "PASS" else "FAIL");
  Report.kv "runtime invariants hold" (if q.invariant_violations = 0 then "PASS" else "FAIL");
  Report.kv "shedding engages under overload" (if qs.shed_events > 0 then "PASS" else "FAIL")

let name = "resilience"
