(** E22 — resilience under handler faults: what supervision buys.

    Replays one scenario — the microburst detector under injected
    handler crashes, watchdog-busting slowdowns and burst storms — as
    four legs differing only in resilience configuration: [fail-fast]
    (supervision off: the first fault aborts), [drop-event],
    [quarantine] (the default: unsubscribe + exponential backoff), and
    [quarantine+shed] (quarantine plus merger shedding at an
    aggressive watermark). Completed legs run the periodic runtime
    invariant checker in record mode. Fully deterministic per seed. *)

type leg = {
  label : string;
  policy : string;
  completed : bool;
  failed_handler : string option;
  sent : int;
  burst_injected : int;
  received : int;
  link_lost : int;
  switch_dropped : int;
  balance : int;  (** conservation residue; 0 = nothing unaccounted *)
  crashes : int;
  watchdog_trips : int;
  trips : int;
  recoveries : int;
  permanent_failures : int;
  dropped_events : int;
  shed_events : int;
  detections : int;
  invariant_passes : int;
  invariant_violations : int;
}

type result = { seed : int; legs : leg list }

val run : ?metrics:Obs.Metrics.t -> ?seed:int -> unit -> result
val find_leg : result -> string -> leg

val passes : result -> bool
(** Fail-fast aborted; quarantine completed with at least one trip and
    one recovery, exact conservation and zero invariant violations;
    the shedding leg actually shed. *)

val print : result -> unit
val name : string
