(* E23 — scale: sharded parallel execution of a k=4 fat tree.

   The paper's §4 asks how event-driven data-plane state behaves when
   the "switch" is no longer one sequential machine. This experiment
   runs the same declarative fat-tree forwarding workload under the
   sequential backend and under [Parsim]'s conservatively-synchronized
   shards, then checks the tentpole guarantee: the merged per-entity
   arrival trace and the merged per-switch metrics of an N-shard run
   are byte-identical to the 1-shard (true sequential) run of the same
   seed. Alongside the conformance check it records the throughput
   curve (events per wall-second at each shard count), and a chaos
   variant subjects intra-shard links to seeded faults through
   per-shard fault engines while checking packet conservation. *)

module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Program = Evcore.Program
module Arch = Evcore.Arch
module Host = Evcore.Host
module Traffic = Workloads.Traffic

let name = "scale"
let k = 4
let num_hosts = k * k * k / 4

let default_shard_counts : int list ref = ref [ 1; 2; 4 ]
(* The CLI's --shards flag narrows this to [1; N]. *)

let topo () = Topology.fat_tree ~k ()

(* Host h owns 10.0.(h lsr 8).(h land 0xff); the low 16 address bits
   recover the host id, which drives deterministic fat-tree routing. *)
let addr_of_host h = Ipv4_addr.of_octets 10 0 (h lsr 8) (h land 0xff)
let host_of_addr a = Ipv4_addr.to_int a land 0xffff

let routing_program : Program.spec =
 fun _install_ctx ->
  Program.make ~name:"ft-route"
    ~ingress:(fun ctx pkt ->
      match pkt.Packet.ip with
      | Some ip ->
          Program.Forward
            (Topology.fat_tree_route ~k ~sw:ctx.switch_id
               ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
      | None -> Program.Drop)
    ()

let switch_config ~seed sw =
  let cfg = Event_switch.default_config Arch.sume_event_switch in
  { cfg with Event_switch.seed = seed + (31 * sw) }

(* Every host streams CBR at host (h+5) mod 16 — crossing pods for
   most pairs, so core links (cross-shard under partitioning) carry
   real load. Traffic stops well before [until] so queues and links
   drain and conservation is exact at the cut-off. Each flow carries a
   small send jitter from its own per-host RNG: the seed visibly
   shapes the trace (the golden files for different seeds differ)
   while staying independent of how flows are spread over shards. *)
let install_traffic ~seed ~until (ctx : Parsim.shard_ctx) =
  let stop = until - Sim_time.us 100 in
  if stop <= 0 then invalid_arg "E23: until must exceed the 100 us drain margin";
  List.iter
    (fun (h, host) ->
      let dst = (h + 5) mod num_hosts in
      let flow =
        Netcore.Flow.make ~src:(addr_of_host h) ~dst:(addr_of_host dst)
          ~proto:Netcore.Ipv4.proto_udp ~src_port:(4000 + h) ~dst_port:(5000 + dst) ()
      in
      let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
      ignore
        (Traffic.cbr ~sched:ctx.Parsim.sched ~flow ~pkt_bytes:256 ~rate_gbps:2. ~stop
           ~jitter:(rng, Sim_time.ns 40)
           ~send:(Host.send host) ()
          : Traffic.t))
    ctx.Parsim.hosts

let scenario ?(shards = 1) ?backend ?(record_trace = true) ?on_shard ~seed ~until () =
  Parsim.config ~shards ?backend ~record_trace ~until
    ~switch_config:(switch_config ~seed)
    ~program:(fun _ -> routing_program)
    ~on_shard:(fun ctx ->
      install_traffic ~seed ~until ctx;
      match on_shard with None -> () | Some f -> f ctx)
    ()

(* The golden-trace suite runs this exact scenario — short enough that
   its canonical traces stay reviewable in-repo, long enough (> the
   100 us drain margin) that traffic flows. One definition shared by
   the generator and the conformance test so they cannot drift. *)
let golden_until = Sim_time.us 150
let golden_seeds = [ 42; 7 ]

let golden_scenario ?(shards = 1) ?backend ~seed () =
  scenario ~shards ?backend ~record_trace:true ~seed ~until:golden_until ()

let golden_file seed = Printf.sprintf "e23_seed%d.digest" seed

let digest_trace trace = Digest.to_hex (Digest.string (String.concat "\n" trace))

(* The digest lines pinned by test/golden/e23_seedN.digest: the trace
   and merged-metrics MD5s of the scenario — same fixture shape as
   E24-E26, replacing the old ~4700-line committed trace files. *)
let golden_digests ?backend ?(shards = 1) ~seed () =
  let cfg = golden_scenario ~shards ?backend ~seed () in
  let r = Parsim.run cfg (topo ()) in
  [
    ("trace", digest_trace r.Parsim.trace);
    ("metrics", Digest.to_hex (Digest.string r.Parsim.metrics_json));
  ]

(* ------------------------------------------------------------------ *)
(* Forwarding conformance + throughput                                 *)

type variant = {
  shards : int;
  rounds : int;
  events : int;
  cross_sent : int;
  received : int;
  wall_s : float;
  kev_per_s : float;
  trace_digest : string;
  metrics_digest : string;
  conformant : bool;  (** digests equal the 1-shard run's *)
}

type result = {
  seed : int;
  until : Sim_time.t;
  variants : variant list;
  all_conformant : bool;
}

let run ?metrics ?(seed = 42) ?(shard_counts = !default_shard_counts)
    ?(until = Sim_time.ms 1) () =
  let topo = topo () in
  let raw =
    List.map
      (fun shards ->
        let cfg = scenario ~shards ~seed ~until () in
        (shards, Parsim.run cfg topo))
      shard_counts
  in
  let ref_trace, ref_metrics =
    match raw with
    | (_, r) :: _ -> (digest_trace r.Parsim.trace, Digest.to_hex (Digest.string r.Parsim.metrics_json))
    | [] -> invalid_arg "E23: empty shard_counts"
  in
  let variants =
    List.map
      (fun (shards, (r : Parsim.result)) ->
        let trace_digest = digest_trace r.trace in
        let metrics_digest = Digest.to_hex (Digest.string r.metrics_json) in
        (match metrics with
        | None -> ()
        | Some reg ->
            let labels = [ ("shards", string_of_int shards) ] in
            Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e23.events") r.events;
            Obs.Metrics.Counter.set
              (Obs.Metrics.counter reg ~labels "e23.cross_messages")
              r.cross_sent);
        {
          (* Report the resolved count: [--shards 0] (auto) runs with
             the recommended domain count, not the literal 0. *)
          shards = r.plan.Parsim.part.Parsim.shards;
          rounds = r.rounds_executed;
          events = r.events;
          cross_sent = r.cross_sent;
          received = Array.fold_left ( + ) 0 r.host_received;
          wall_s = r.wall_s;
          kev_per_s = float_of_int r.events /. r.wall_s /. 1e3;
          trace_digest;
          metrics_digest;
          conformant = trace_digest = ref_trace && metrics_digest = ref_metrics;
        })
      raw
  in
  {
    seed;
    until;
    variants;
    all_conformant = List.for_all (fun v -> v.conformant) variants;
  }

let print r =
  Report.section "E23 / Sec 4 — sharded parallel execution of a k=4 fat tree";
  Report.kv "seed" (string_of_int r.seed);
  Report.kv "horizon" (Report.time_ps r.until);
  Report.blank ();
  Report.table
    ~headers:
      [ "shards"; "rounds"; "events"; "cross msgs"; "rx"; "wall ms"; "kev/s"; "trace"; "conform" ]
    ~rows:
      (List.map
         (fun v ->
           [
             string_of_int v.shards;
             string_of_int v.rounds;
             string_of_int v.events;
             string_of_int v.cross_sent;
             string_of_int v.received;
             Printf.sprintf "%.1f" (v.wall_s *. 1e3);
             Printf.sprintf "%.0f" v.kev_per_s;
             String.sub v.trace_digest 0 12;
             (if v.conformant then "ok" else "DIVERGED");
           ])
         r.variants);
  Report.blank ();
  Report.kv "merged trace and metrics identical across shard counts"
    (if r.all_conformant then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* Sharded chaos: per-shard fault engines on intra-shard links         *)

type chaos_result = {
  c_shards : int;
  c_seed : int;
  sent : int;
  received : int;
  duplicated : int;
  link_lost : int;
  switch_dropped : int;
  cross_lost : int;
  balance : int;
  injected : int;
  conserved : bool;
  flowing : bool;
  faults_fired : bool;
}

let switch_drops sw =
  let tm = Event_switch.tm sw in
  let merger = Event_switch.merger sw in
  Event_switch.program_drops sw + Event_switch.unrouted sw
  + Event_switch.unsupported_actions sw
  + Event_switch.supervised_drops sw
  + Tmgr.Traffic_manager.drops tm
  + Tmgr.Traffic_manager.egress_drops tm
  + Devents.Event_merger.packet_drops merger
  + Devents.Event_merger.packets_shed merger

(* Cross-shard links cannot be failed or perturbed (a status change
   cannot honour the lookahead contract), so chaos is confined to the
   intra-shard links each shard's engine owns — exactly the
   "injection targets owning shard" routing the partition dictates. *)
let chaos ?(shards = 2) ?(seed = 7) ?(until = Sim_time.ms 1) () =
  let topo = topo () in
  let fault_stop = until - Sim_time.us 100 in
  let engines = ref [] in
  let cfg =
    scenario ~shards ~record_trace:false ~seed ~until
      ~on_shard:(fun ctx ->
        let eng =
          Faults.Engine.create ~sched:ctx.Parsim.sched ~seed:(seed + (101 * ctx.Parsim.shard))
            ~stop:fault_stop ()
        in
        let perturb =
          Faults.Perturb.lossy ~drop_p:0.02 ~dup_p:0.01 ~delay_p:0.03
            ~max_extra_delay:(Sim_time.us 20) ()
        in
        List.iter
          (fun (lid, link) ->
            Faults.Engine.add_perturbation eng
              ~name:(Printf.sprintf "perturb.s%d" ctx.Parsim.shard)
              ~config:perturb link;
            if lid mod 5 = 0 then
              Faults.Engine.add_link_flaps eng
                ~name:(Printf.sprintf "flap.s%d" ctx.Parsim.shard)
                ~plan:
                  (Faults.Schedule.Poisson { start = Sim_time.us 200; rate_per_sec = 2000. })
                ~down_for:(Sim_time.us 30) link)
          ctx.Parsim.links;
        Faults.Engine.export_metrics eng ctx.Parsim.metrics;
        engines := (ctx.Parsim.shard, eng) :: !engines)
      ()
  in
  let r = Parsim.run cfg topo in
  let sent = Array.fold_left ( + ) 0 r.host_sent in
  let received = Array.fold_left ( + ) 0 r.host_received in
  let links = Array.to_list r.ctxs |> List.concat_map (fun c -> c.Parsim.links) in
  let duplicated = List.fold_left (fun acc (_, l) -> acc + Tmgr.Link.perturb_dups l) 0 links in
  let link_lost = List.fold_left (fun acc (_, l) -> acc + Tmgr.Link.lost l) 0 links in
  let switch_dropped =
    Array.to_list r.ctxs
    |> List.concat_map (fun c -> c.Parsim.switches)
    |> List.fold_left (fun acc (_, sw) -> acc + switch_drops sw) 0
  in
  let cross_lost = r.cross_sent - r.cross_delivered in
  (* Cross-link packets stay inside the switch-to-switch balance (sent
     by one switch's TM, received by another's ingress); only the ones
     [until] cut off in flight leave the books, counted as
     [cross_lost]. *)
  let balance = sent + duplicated - received - link_lost - switch_dropped - cross_lost in
  let injected =
    List.fold_left (fun acc (_, e) -> acc + Faults.Engine.total_injected e) 0 !engines
  in
  {
    c_shards = shards;
    c_seed = seed;
    sent;
    received;
    duplicated;
    link_lost;
    switch_dropped;
    cross_lost;
    balance;
    injected;
    conserved = balance = 0;
    flowing = received > 0 && received * 4 > sent;
    faults_fired = injected > 0;
  }

let chaos_passed c = c.conserved && c.flowing && c.faults_fired

let print_chaos c =
  Report.section "E23 chaos — sharded fault injection (intra-shard links)";
  Report.kv "shards" (string_of_int c.c_shards);
  Report.kv "seed" (string_of_int c.c_seed);
  Report.blank ();
  Report.table
    ~headers:[ "sent"; "dup"; "rx"; "link lost"; "sw dropped"; "cross cut"; "balance" ]
    ~rows:
      [
        [
          string_of_int c.sent;
          string_of_int c.duplicated;
          string_of_int c.received;
          string_of_int c.link_lost;
          string_of_int c.switch_dropped;
          string_of_int c.cross_lost;
          string_of_int c.balance;
        ];
      ];
  Report.blank ();
  Report.kv "fault actions injected" (string_of_int c.injected);
  Report.kv "packet conservation" (if c.conserved then "PASS" else "FAIL");
  Report.kv "traffic kept flowing" (if c.flowing then "PASS" else "FAIL");
  Report.kv "faults demonstrably fired" (if c.faults_fired then "PASS" else "FAIL")
