(** E23 — sharded parallel execution at scale (Sec 4, distributed
    data-plane state).

    Runs a k=4 fat tree (20 switches, 16 hosts, deterministic two-level
    routing) under [Parsim] at several shard counts and checks the
    conformance guarantee: merged arrival trace and merged per-switch
    metrics byte-identical to the 1-shard sequential run, while
    recording the throughput curve. The {!chaos} variant adds per-shard
    seeded fault engines on intra-shard links and checks packet
    conservation. *)

val name : string

val k : int
val num_hosts : int

val default_shard_counts : int list ref
(** Shard counts {!run} sweeps by default ([[1; 2; 4]]); the CLI's
    [--shards N] flag rewrites it to [[1; N]]. *)

val topo : unit -> Evcore.Topology.t
val addr_of_host : int -> Netcore.Ipv4_addr.t

val routing_program : Evcore.Program.spec
val switch_config : seed:int -> int -> Evcore.Event_switch.config

val scenario :
  ?shards:int ->
  ?backend:Eventsim.Sched_backend.t ->
  ?record_trace:bool ->
  ?on_shard:(Parsim.shard_ctx -> unit) ->
  seed:int ->
  until:Eventsim.Sim_time.t ->
  unit ->
  Parsim.config
(** The full forwarding scenario (topology traffic included) as a
    [Parsim] config — reused by the golden-trace suite and the bench
    harness. [record_trace] defaults to [true]. *)

(** {1 Golden-trace scenario}

    The canonical conformance artefact: the {e sequential, heap
    backend} trace of this scenario is recorded in [test/golden/] and
    every other execution mode (wheel backend, sharded runs) must
    reproduce it byte-for-byte. *)

val golden_until : Eventsim.Sim_time.t
val golden_seeds : int list  (** the E6 and E21 seeds: [[42; 7]] *)

val golden_scenario :
  ?shards:int -> ?backend:Eventsim.Sched_backend.t -> seed:int -> unit -> Parsim.config
(** {!scenario} pinned to {!golden_until} with the trace recorded. *)

val golden_file : int -> string
(** Digest filename for a seed, e.g. ["e23_seed42.digest"]. *)

val golden_digests :
  ?backend:Eventsim.Sched_backend.t -> ?shards:int -> seed:int -> unit -> (string * string) list
(** [(label, md5-hex)] lines pinned by the golden digest files: the
    merged trace and merged metrics of {!golden_scenario}. Every
    backend x shard-count combination must reproduce the committed
    sequential-heap values byte-for-byte. *)

type variant = {
  shards : int;
  rounds : int;
  events : int;
  cross_sent : int;
  received : int;
  wall_s : float;
  kev_per_s : float;
  trace_digest : string;
  metrics_digest : string;
  conformant : bool;
}

type result = {
  seed : int;
  until : Eventsim.Sim_time.t;
  variants : variant list;
  all_conformant : bool;
}

val run :
  ?metrics:Obs.Metrics.t ->
  ?seed:int ->
  ?shard_counts:int list ->
  ?until:Eventsim.Sim_time.t ->
  unit ->
  result

val print : result -> unit

(** {1 Sharded chaos} *)

type chaos_result = {
  c_shards : int;
  c_seed : int;
  sent : int;
  received : int;
  duplicated : int;
  link_lost : int;
  switch_dropped : int;
  cross_lost : int;  (** cut off in flight between shards by [until] *)
  balance : int;  (** conservation residue; 0 = nothing unaccounted *)
  injected : int;
  conserved : bool;
  flowing : bool;
  faults_fired : bool;
}

val chaos :
  ?shards:int -> ?seed:int -> ?until:Eventsim.Sim_time.t -> unit -> chaos_result

val chaos_passed : chaos_result -> bool
val print_chaos : chaos_result -> unit
