(* E24 — per-flow EFSM externs: state-access contention under flow
   skew, and cross-backend/sharded conformance of stateful programs.

   Part A reproduces the bottleneck OPP (Bianchi et al.) centres its
   design on: a per-flow state machine is a read-modify-write loop over
   single-ported memory, so two hits on the same flow within the
   pipeline's RMW latency cannot both be served — the second stalls.
   Back-to-back line-rate arrivals are driven through a stateful
   firewall under three key distributions (uniform single-hit, Zipf
   0.9, Zipf 1.3); uniform single-hit flows never revisit a context,
   so its stall count must be exactly zero, while Zipf skew
   concentrates hits on hot flows inside the contention window.

   Part B is the determinism tentpole extended to stateful processing:
   both EFSM apps (SYN→established→closed firewall, per-flow rate
   enforcer with broadcast window resets) run on a ring under Parsim
   at 1/2/4 shards; merged traces and merged metrics — which include
   the per-switch pisa.efsm.* series and a state-evolution digest —
   must be byte-identical to the sequential run. *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host
module Arch = Evcore.Arch
module Efsm = Pisa.Efsm

let name = "efsm"

let default_shard_counts : int list ref = ref [ 1; 2; 4 ]
(* The CLI's --shards flag narrows this to [1; N]. *)

(* ------------------------------------------------------------------ *)
(* Part A — contention vs flow skew on a single switch                 *)

type skew_row = {
  workload : string;
  packets : int;
  flows : int;
  steps : int;
  stalls : int;
  stall_frac : float;
  occupancy : int;
}

let mk_flow_pkt ~key ~flags =
  Packet.tcp_packet ~flags
    ~src:(Ipv4_addr.of_octets 10 1 (key lsr 8) (key land 0xff))
    ~dst:(Ipv4_addr.of_octets 10 2 0 1) ~src_port:(1 + (key land 0x7fff)) ~dst_port:80
    ~payload_len:64 ()

(* Back-to-back injection: one packet per pipeline cycle, the line-rate
   arrival pattern under which same-flow revisits land inside the RMW
   window. [key_at i] picks the flow of the i-th packet; the first
   packet of each flow is a SYN, the rest data. *)
let contention_run ?metrics ~label ~packets ~key_at () =
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let spec, fw =
    Apps.Stateful_fw.program ~slots:1024 ~timeout:(Sim_time.us 500) ~out_port:(fun _ -> 1) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  let seen = Hashtbl.create 1024 in
  let flows = ref 0 in
  for i = 0 to packets - 1 do
    let key = key_at i in
    let flags =
      if Hashtbl.mem seen key then Netcore.Tcp.flag_ack
      else begin
        Hashtbl.replace seen key ();
        incr flows;
        Netcore.Tcp.flag_syn
      end
    in
    let at = Sim_time.ns 100 + (i * Pisa.Pipeline.default_clock_period) in
    Scheduler.post sched ~at (fun () -> Event_switch.inject sw ~port:0 (mk_flow_pkt ~key ~flags))
  done;
  Scheduler.run ~until:(Sim_time.us 200) sched;
  let e = Apps.Stateful_fw.efsm fw in
  (match metrics with
  | None -> ()
  | Some reg -> Event_switch.export_metrics ~labels:[ ("workload", label) ] sw reg);
  {
    workload = label;
    packets;
    flows = !flows;
    steps = Efsm.steps e;
    stalls = Efsm.stalls e;
    stall_frac = (if Efsm.steps e = 0 then 0. else float_of_int (Efsm.stalls e) /. float_of_int (Efsm.steps e));
    occupancy = Efsm.occupancy e;
  }

let contention ?metrics ~seed () =
  let packets = 2048 in
  let zipf ~alpha =
    let rng = Stats.Rng.create ~seed in
    let z = Stats.Dist.zipf ~n:256 ~alpha in
    let keys = Array.init packets (fun _ -> Stats.Dist.zipf_draw rng z) in
    fun i -> keys.(i)
  in
  [
    (* Every packet its own flow: no context is ever revisited, so the
       contention model must stay perfectly silent. *)
    contention_run ?metrics ~label:"uniform-1hit" ~packets ~key_at:(fun i -> i) ();
    contention_run ?metrics ~label:"zipf-0.9" ~packets ~key_at:(zipf ~alpha:0.9) ();
    contention_run ?metrics ~label:"zipf-1.3" ~packets ~key_at:(zipf ~alpha:1.3) ();
  ]

(* ------------------------------------------------------------------ *)
(* Part B — sharded/cross-backend conformance of both EFSM apps        *)

type app = Fw | Rate

let apps = [ Fw; Rate ]
let app_label = function Fw -> "fw" | Rate -> "rate"

let switches = 8
let topo () = Topology.ring ~switches ()
let addr_of_host h = Ipv4_addr.of_octets 10 0 0 h
let host_of_addr a = Ipv4_addr.to_int a land 0xff

let route ~sw pkt =
  match pkt.Packet.ip with
  | Some ip -> Topology.ring_route ~switches ~sw ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst)
  | None -> 0

let program app sw : Evcore.Program.spec =
  match app with
  | Fw ->
      fst
        (Apps.Stateful_fw.program ~slots:256 ~timeout:(Sim_time.us 150)
           ~out_port:(fun pkt -> route ~sw pkt)
           ())
  | Rate ->
      fst
        (Apps.Flow_enforcer.program ~slots:256 ~window:(Sim_time.us 50) ~limit_bytes:2000
           ~out_port:(fun pkt -> route ~sw pkt)
           ())

let switch_config ~seed sw =
  let cfg = Event_switch.default_config Arch.event_pisa_full in
  { cfg with Event_switch.seed = seed + (31 * sw) }

let mk_pkt ~src_host ~dst_host ~sport ~payload_len =
  Packet.udp_packet ~src:(addr_of_host src_host) ~dst:(addr_of_host dst_host) ~src_port:sport
    ~dst_port:(5000 + dst_host) ~payload_len ()

let mk_tcp_pkt ~src_host ~dst_host ~sport ~flags ~payload_len =
  Packet.tcp_packet ~flags ~src:(addr_of_host src_host) ~dst:(addr_of_host dst_host)
    ~src_port:sport ~dst_port:(5000 + dst_host) ~payload_len ()

(* Firewall workload: each host runs short SYN / data / FIN sessions to
   a peer across the ring, plus stray never-SYN'd data packets that the
   first-hop firewall must block (guard misses). Times carry per-host
   seeded jitter so the seed shapes the trace. *)
let fw_traffic ~seed ~until (ctx : Parsim.shard_ctx) =
  let stop = until - Sim_time.us 100 in
  if stop <= 0 then invalid_arg "E24: until must exceed the 100 us drain margin";
  List.iter
    (fun (h, host) ->
      let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
      let dst = (h + 3) mod switches in
      let send_at at flags sport =
        if at < stop then
          Scheduler.post ctx.Parsim.sched ~at (fun () ->
              Host.send host
                (mk_tcp_pkt ~src_host:h ~dst_host:dst ~sport ~flags ~payload_len:128))
      in
      for session = 0 to 2 do
        let sport = 4000 + (16 * h) + session in
        let base = Sim_time.us (20 + (70 * session)) + Sim_time.ns (Stats.Rng.int rng 4000) in
        send_at base Netcore.Tcp.flag_syn sport;
        for d = 1 to 5 do
          send_at
            (base + Sim_time.us (2 * d) + Sim_time.ns (Stats.Rng.int rng 500))
            Netcore.Tcp.flag_ack sport
        done;
        send_at (base + Sim_time.us 14) Netcore.Tcp.flag_fin sport;
        (* A stray ACK on a port that never saw a SYN. *)
        send_at
          (base + Sim_time.us (3 + Stats.Rng.int rng 8))
          Netcore.Tcp.flag_ack (sport + 8)
      done)
    ctx.Parsim.hosts

(* Enforcer workload: even hosts stream fast enough to blow the
   per-window byte budget and get throttled; odd hosts stay conformant. *)
let rate_traffic ~seed ~until (ctx : Parsim.shard_ctx) =
  let stop = until - Sim_time.us 100 in
  if stop <= 0 then invalid_arg "E24: until must exceed the 100 us drain margin";
  List.iter
    (fun (h, host) ->
      let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
      let dst = (h + 1) mod switches in
      let gap = if h mod 2 = 0 then Sim_time.us 4 else Sim_time.us 20 in
      let n = (stop - Sim_time.us 20) / gap in
      for i = 0 to min n 400 do
        let at = Sim_time.us 20 + (i * gap) + Sim_time.ns (Stats.Rng.int rng 300) in
        if at < stop then
          Scheduler.post ctx.Parsim.sched ~at (fun () ->
              Host.send host (mk_pkt ~src_host:h ~dst_host:dst ~sport:(4000 + h) ~payload_len:228))
      done)
    ctx.Parsim.hosts

let scenario app ?(shards = 1) ?backend ?(record_trace = true) ~seed ~until () =
  Parsim.config ~shards ?backend ~record_trace ~until
    ~switch_config:(switch_config ~seed)
    ~program:(program app)
    ~on_shard:(fun ctx ->
      match app with
      | Fw -> fw_traffic ~seed ~until ctx
      | Rate -> rate_traffic ~seed ~until ctx)
    ()

(* Shared by gen_golden.exe and the conformance suite so the golden
   scenario cannot drift from the tested one. *)
let golden_until = Sim_time.us 400
let golden_seeds = [ 42; 7 ]
let golden_file seed = Printf.sprintf "e24_seed%d.digest" seed

let digest_trace trace = Digest.to_hex (Digest.string (String.concat "\n" trace))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The digest lines pinned by test/golden/e24_seedN.digest: one trace
   and one metrics digest per app, from the given execution mode. *)
let golden_digests ?backend ?(shards = 1) ~seed () =
  List.concat_map
    (fun app ->
      let cfg = scenario app ~shards ?backend ~seed ~until:golden_until () in
      let r = Parsim.run cfg (topo ()) in
      [
        (app_label app ^ ".trace", digest_trace r.Parsim.trace);
        (app_label app ^ ".metrics", Digest.to_hex (Digest.string r.Parsim.metrics_json));
      ])
    apps

(* ------------------------------------------------------------------ *)

type variant = {
  v_app : string;
  shards : int;
  events : int;
  received : int;
  efsm_stalls_exported : bool;  (** pisa.efsm.* series present in merged metrics *)
  trace_digest : string;
  metrics_digest : string;
  conformant : bool;  (** digests equal the 1-shard run's *)
}

type result = {
  seed : int;
  until : Sim_time.t;
  skew : skew_row list;
  variants : variant list;
  all_conformant : bool;
  uniform_stalls : int;
  zipf_stalls : int;
}

let run ?metrics ?(seed = 42) ?(shard_counts = !default_shard_counts)
    ?(until = Sim_time.us 400) () =
  let skew = contention ?metrics ~seed () in
  let topo = topo () in
  let variants =
    List.concat_map
      (fun app ->
        let raw =
          List.map
            (fun shards ->
              let cfg = scenario app ~shards ~seed ~until () in
              (shards, Parsim.run cfg topo))
            shard_counts
        in
        let ref_trace, ref_metrics =
          match raw with
          | (_, r) :: _ ->
              (digest_trace r.Parsim.trace, Digest.to_hex (Digest.string r.Parsim.metrics_json))
          | [] -> invalid_arg "E24: empty shard_counts"
        in
        List.map
          (fun (shards, (r : Parsim.result)) ->
            let trace_digest = digest_trace r.trace in
            let metrics_digest = Digest.to_hex (Digest.string r.metrics_json) in
            (match metrics with
            | None -> ()
            | Some reg ->
                let labels =
                  [ ("app", app_label app); ("shards", string_of_int shards) ]
                in
                Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e24.events") r.events);
            {
              v_app = app_label app;
              shards;
              events = r.events;
              received = Array.fold_left ( + ) 0 r.host_received;
              efsm_stalls_exported =
                contains_substring r.metrics_json "pisa.efsm.steps"
                && contains_substring r.metrics_json "pisa.efsm.state_hash";
              trace_digest;
              metrics_digest;
              conformant = trace_digest = ref_trace && metrics_digest = ref_metrics;
            })
          raw)
      apps
  in
  let stalls_of label =
    match List.find_opt (fun r -> r.workload = label) skew with
    | Some r -> r.stalls
    | None -> 0
  in
  {
    seed;
    until;
    skew;
    variants;
    all_conformant = List.for_all (fun v -> v.conformant) variants;
    uniform_stalls = stalls_of "uniform-1hit";
    zipf_stalls = stalls_of "zipf-1.3";
  }

let print r =
  Report.section "E24 / per-flow EFSM externs — contention and conformance";
  Report.kv "seed" (string_of_int r.seed);
  Report.kv "horizon" (Report.time_ps r.until);
  Report.blank ();
  Report.note "state-access contention under flow skew (one packet per cycle):";
  Report.table
    ~headers:[ "workload"; "pkts"; "flows"; "steps"; "stalls"; "stall frac"; "occupancy" ]
    ~rows:
      (List.map
         (fun s ->
           [
             s.workload;
             string_of_int s.packets;
             string_of_int s.flows;
             string_of_int s.steps;
             string_of_int s.stalls;
             Report.pct (100. *. s.stall_frac);
             string_of_int s.occupancy;
           ])
         r.skew);
  Report.blank ();
  Report.note "sharded conformance of stateful apps (ring of 8):";
  Report.table
    ~headers:[ "app"; "shards"; "events"; "rx"; "efsm metrics"; "trace"; "conform" ]
    ~rows:
      (List.map
         (fun v ->
           [
             v.v_app;
             string_of_int v.shards;
             string_of_int v.events;
             string_of_int v.received;
             (if v.efsm_stalls_exported then "exported" else "MISSING");
             String.sub v.trace_digest 0 12;
             (if v.conformant then "ok" else "DIVERGED");
           ])
         r.variants);
  Report.blank ();
  Report.kv "uniform single-hit stalls (must be 0)" (string_of_int r.uniform_stalls);
  Report.kv "zipf-1.3 stalls (must be > 0)" (string_of_int r.zipf_stalls);
  Report.kv "merged trace and metrics identical across shard counts"
    (if r.all_conformant then "PASS" else "FAIL")
