(** E24 — per-flow EFSM externs under flow skew.

    Part A measures the OPP contention bottleneck: back-to-back
    arrivals through a stateful firewall under uniform single-hit and
    Zipf key distributions. Same-flow revisits within the pipeline's
    RMW latency stall; single-hit traffic must record exactly zero
    stalls.

    Part B runs both EFSM apps (stateful firewall, per-flow rate
    enforcer) on a ring of 8 switches under Parsim at 1/2/4 shards and
    checks that merged traces and merged metrics — including the
    per-switch [pisa.efsm.*] series and state-evolution digest — are
    byte-identical to the sequential run. *)

val name : string

val default_shard_counts : int list ref
(** Shard counts Part B exercises; the CLI's [--shards] narrows it. *)

type skew_row = {
  workload : string;
  packets : int;
  flows : int;
  steps : int;
  stalls : int;
  stall_frac : float;
  occupancy : int;
}

type variant = {
  v_app : string;
  shards : int;
  events : int;
  received : int;
  efsm_stalls_exported : bool;
  trace_digest : string;
  metrics_digest : string;
  conformant : bool;
}

type result = {
  seed : int;
  until : Eventsim.Sim_time.t;
  skew : skew_row list;
  variants : variant list;
  all_conformant : bool;
  uniform_stalls : int;
  zipf_stalls : int;
}

val golden_until : Eventsim.Sim_time.t
val golden_seeds : int list

val golden_file : int -> string
(** Digest file name under [test/golden/] for a seed. *)

val golden_digests :
  ?backend:Eventsim.Sched_backend.t -> ?shards:int -> seed:int -> unit -> (string * string) list
(** [(label, md5-hex)] lines pinned by the golden digest files: one
    trace and one metrics digest per app ("fw.trace", "fw.metrics",
    "rate.trace", "rate.metrics"). The canon is the default
    (sequential, heap) execution; other backends and shard counts must
    reproduce it byte-for-byte. *)

val run :
  ?metrics:Obs.Metrics.t ->
  ?seed:int ->
  ?shard_counts:int list ->
  ?until:Eventsim.Sim_time.t ->
  unit ->
  result

val print : result -> unit
