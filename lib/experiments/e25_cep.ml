(* E25 — in-network complex-event processing on the EFSM extern.

   Part A measures detection quality of the two compiled CEP detectors
   on a single switch. A SYN-signature detector (within-window count of
   connection-opening SYNs per victim) faces injected attack bursts
   over Zipf-skewed organic traffic: we report detection latency per
   attack and the false-alarm rate the skewed background induces. A
   burst-forensics detector (occupancy ramp followed by an overflow,
   per port) faces engineered microbursts against a shallow queue and
   must name the afflicted port.

   Part B extends the determinism tentpole to compiled patterns: both
   detector apps run on a ring under Parsim at 1/2/4 shards, and a
   chaos leg crashes the SYN detector's ingress handler on every
   switch under the Quarantine policy with merger shedding armed — the
   detectors must recover, and merged traces/metrics (which pin every
   automaton's state evolution via pisa.efsm.state_hash) must stay
   byte-identical to the sequential run. *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host
module Arch = Evcore.Arch

let name = "cep"

let default_shard_counts : int list ref = ref [ 1; 2; 4 ]
(* The CLI's --shards flag narrows this to [1; N]. *)

(* ------------------------------------------------------------------ *)
(* Part A1 — SYN-flood detection quality on a single switch            *)

type flood_quality = {
  attacks : int;
  detected : int;
  latencies_us : float list;  (** one per detected attack, attack order *)
  alarms : int;
  false_alarms : int;
  fp_rate : float;  (** false alarms / alarms *)
  background_syns : int;
}

let flood_syns = 16
let flood_window = Sim_time.us 100
let flood_tick = Sim_time.us 10

let client_addr c = Ipv4_addr.of_octets 10 8 0 c
let service_addr d = Ipv4_addr.of_octets 10 9 0 d

let syn_pkt ~src ~dst ~sport =
  Packet.tcp_packet ~flags:Netcore.Tcp.flag_syn ~src ~dst ~src_port:sport ~dst_port:80
    ~payload_len:0 ()

let ack_pkt ~src ~dst ~sport =
  Packet.tcp_packet ~flags:Netcore.Tcp.flag_ack ~src ~dst ~src_port:sport ~dst_port:80
    ~payload_len:128 ()

let flood_quality ?metrics ~seed () =
  let sched = Scheduler.create () in
  let alarm_log = ref [] in
  let spec, _det =
    Apps.Syn_signature.program ~slots:256 ~syns:flood_syns ~window:flood_window
      ~tick_period:flood_tick
      ~on_match:(fun ~key ~time -> alarm_log := (key, time) :: !alarm_log)
      ~out_port:(fun _ -> 1) ()
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config = { config with Event_switch.seed } in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  (* Organic background: Zipf-skewed destinations, so the hot service
     legitimately accumulates SYNs — the false-positive pressure. *)
  let rng = Stats.Rng.create ~seed in
  let zipf = Stats.Dist.zipf ~n:32 ~alpha:1.1 in
  let background_syns = ref 0 in
  for _session = 0 to 299 do
    let c = Stats.Rng.int rng 32 in
    let d = Stats.Dist.zipf_draw rng zipf in
    let sport = 1024 + Stats.Rng.int rng 30000 in
    let base = Sim_time.us (5 + Stats.Rng.int rng 340) in
    incr background_syns;
    Scheduler.post sched ~at:base (fun () ->
        Event_switch.inject sw ~port:0 (syn_pkt ~src:(client_addr c) ~dst:(service_addr d) ~sport));
    for a = 1 to 2 do
      Scheduler.post sched
        ~at:(base + Sim_time.us (3 * a))
        (fun () ->
          Event_switch.inject sw ~port:0 (ack_pkt ~src:(client_addr c) ~dst:(service_addr d) ~sport))
    done
  done;
  (* Attack bursts: 24 spoofed-source SYNs in ~24 us at two victims. *)
  let attacks = [ (Sim_time.us 120, 40); (Sim_time.us 250, 41) ] in
  List.iter
    (fun (start, victim) ->
      for i = 0 to 23 do
        Scheduler.post sched
          ~at:(start + (i * Sim_time.us 1))
          (fun () ->
            Event_switch.inject sw ~port:1
              (syn_pkt ~src:(client_addr (i land 15)) ~dst:(service_addr victim)
                 ~sport:(20000 + (victim * 64) + i)))
      done)
    attacks;
  Scheduler.run ~until:(Sim_time.us 420) sched;
  let alarms = List.rev !alarm_log in
  let victim_keys =
    List.map (fun (_, v) -> Ipv4_addr.to_int (service_addr v) land max_int) attacks
  in
  let latencies_us =
    List.filter_map
      (fun (start, victim) ->
        let key = Ipv4_addr.to_int (service_addr victim) land max_int in
        match List.find_opt (fun (k, t) -> k = key && t >= start) alarms with
        | Some (_, t) -> Some (float_of_int (t - start) /. float_of_int (Sim_time.us 1))
        | None -> None)
      attacks
  in
  let false_alarms =
    List.length (List.filter (fun (k, _) -> not (List.mem k victim_keys)) alarms)
  in
  (match metrics with
  | None -> ()
  | Some reg -> Event_switch.export_metrics ~labels:[ ("part", "flood") ] sw reg);
  {
    attacks = List.length attacks;
    detected = List.length latencies_us;
    latencies_us;
    alarms = List.length alarms;
    false_alarms;
    fp_rate =
      (if alarms = [] then 0.
       else float_of_int false_alarms /. float_of_int (List.length alarms));
    background_syns = !background_syns;
  }

(* ------------------------------------------------------------------ *)
(* Part A2 — microburst forensics against a shallow queue              *)

type burst_quality = {
  bursts_injected : int;
  bursts_detected : int;
  culprit_ports : int list;
  culprit_correct : bool;  (** every report names the flooded port *)
  overflow_drops : int;
}

let burst_quality ?metrics ~seed () =
  let sched = Scheduler.create () in
  let spec, det =
    Apps.Burst_forensics.program ~slots:64 ~ramp:4 ~depth:4 ~window:(Sim_time.us 50)
      ~tick_period:(Sim_time.us 5)
      ~out_port:(fun _ -> 2)
      ()
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config =
    {
      config with
      Event_switch.seed;
      tm_config =
        {
          config.Event_switch.tm_config with
          Tmgr.Traffic_manager.queue_limit_bytes = Some 4096;
        };
    }
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  let bursts_injected = 2 in
  for b = 0 to bursts_injected - 1 do
    (* 60 packets back-to-back at 40 ns spacing: ~50 Gb/s offered into
       a 10 Gb/s port with a 4 KiB queue cap — ramp, then loss. *)
    for i = 0 to 59 do
      Scheduler.post sched
        ~at:(Sim_time.us (40 + (120 * b)) + (i * Sim_time.ns 40))
        (fun () ->
          Event_switch.inject sw ~port:(i land 1)
            (Packet.tcp_packet ~flags:Netcore.Tcp.flag_ack
               ~src:(client_addr (b + 1))
               ~dst:(service_addr 1) ~src_port:(3000 + i) ~dst_port:80 ~payload_len:200 ()))
    done
  done;
  Scheduler.run ~until:(Sim_time.us 400) sched;
  let ports = Apps.Burst_forensics.culprit_ports det in
  (match metrics with
  | None -> ()
  | Some reg -> Event_switch.export_metrics ~labels:[ ("part", "burst") ] sw reg);
  {
    bursts_injected;
    bursts_detected = Apps.Burst_forensics.bursts det;
    culprit_ports = ports;
    culprit_correct = ports <> [] && List.for_all (fun p -> p = 2) ports;
    overflow_drops = Tmgr.Traffic_manager.drops (Event_switch.tm sw);
  }

(* ------------------------------------------------------------------ *)
(* Part B — sharded/cross-backend conformance, plus the chaos leg      *)

type app = Syn | Burst

let apps = [ Syn; Burst ]
let app_label = function Syn -> "syn" | Burst -> "burst"

let switches = 8
let topo () = Topology.ring ~switches ()
let addr_of_host h = Ipv4_addr.of_octets 10 0 0 h
let host_of_addr a = Ipv4_addr.to_int a land 0xff

let route ~sw pkt =
  match pkt.Packet.ip with
  | Some ip -> Topology.ring_route ~switches ~sw ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst)
  | None -> 0

(* Per-run alarm sink: [scenario] threads it into every switch's
   on_match so single-shard runs can observe detector liveness (the
   chaos leg asserts the detectors keep matching through quarantine).
   Only read it from 1-shard runs. *)
let program ?alarms app sw : Evcore.Program.spec =
  let on_match ~key:_ ~time:_ = match alarms with None -> () | Some r -> incr r in
  match app with
  | Syn ->
      fst
        (Apps.Syn_signature.program ~slots:256 ~timeout:(Sim_time.us 200) ~syns:8
           ~window:(Sim_time.us 60) ~tick_period:(Sim_time.us 10) ~on_match
           ~out_port:(fun pkt -> route ~sw pkt)
           ())
  | Burst ->
      fst
        (Apps.Burst_forensics.program ~slots:64 ~ramp:3 ~depth:3 ~window:(Sim_time.us 40)
           ~tick_period:(Sim_time.us 10) ~on_match
           ~out_port:(fun pkt -> route ~sw pkt)
           ())

let switch_config ?(chaos = false) app ~seed sw =
  let cfg = Event_switch.default_config Arch.event_pisa_full in
  let cfg = { cfg with Event_switch.seed = seed + (31 * sw) } in
  let cfg =
    match app with
    | Syn -> cfg
    | Burst ->
        (* Shallow queues so ring congestion actually overflows. *)
        {
          cfg with
          Event_switch.tm_config =
            { cfg.Event_switch.tm_config with Tmgr.Traffic_manager.queue_limit_bytes = Some 2048 };
        }
  in
  if not chaos then cfg
  else
    {
      cfg with
      Event_switch.resil =
        {
          cfg.Event_switch.resil with
          Resil.Supervisor.policy = Resil.Policy.Quarantine;
          base_backoff = Sim_time.us 20;
          max_backoff = Sim_time.us 80;
        };
      shed_watermark = Some 8;
    }

let mk_tcp_pkt ~src_host ~dst_host ~sport ~flags ~payload_len =
  Packet.tcp_packet ~flags ~src:(addr_of_host src_host) ~dst:(addr_of_host dst_host)
    ~src_port:sport ~dst_port:(5000 + dst_host) ~payload_len ()

(* SYN-detector workload: organic sessions across the ring plus a
   coordinated flood — hosts 0, 2 and 4 each fire 12 quick SYNs at
   host 5, so first-hop and transit detectors all cross the per-victim
   threshold. Per-host seeded jitter shapes the trace. *)
let syn_traffic ~seed ~until (ctx : Parsim.shard_ctx) =
  let stop = until - Sim_time.us 100 in
  if stop <= 0 then invalid_arg "E25: until must exceed the 100 us drain margin";
  List.iter
    (fun (h, host) ->
      let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
      let dst = (h + 3) mod switches in
      let send_at at flags sport payload_len =
        if at < stop then
          Scheduler.post ctx.Parsim.sched ~at (fun () ->
              Host.send host (mk_tcp_pkt ~src_host:h ~dst_host:dst ~sport ~flags ~payload_len))
      in
      for session = 0 to 2 do
        let sport = 4000 + (16 * h) + session in
        let base = Sim_time.us (15 + (90 * session)) + Sim_time.ns (Stats.Rng.int rng 4000) in
        send_at base Netcore.Tcp.flag_syn sport 0;
        send_at (base + Sim_time.us 4) Netcore.Tcp.flag_ack sport 128;
        send_at (base + Sim_time.us 9) Netcore.Tcp.flag_ack sport 128
      done;
      if h mod 2 = 0 && h <= 4 then begin
        let base = Sim_time.us 130 + Sim_time.ns (Stats.Rng.int rng 2000) in
        for i = 0 to 11 do
          if base + (i * Sim_time.us 2) < stop then
            Scheduler.post ctx.Parsim.sched
              ~at:(base + (i * Sim_time.us 2))
              (fun () ->
                Host.send host
                  (mk_tcp_pkt ~src_host:h ~dst_host:5 ~sport:(7000 + (64 * h) + i)
                     ~flags:Netcore.Tcp.flag_syn ~payload_len:0))
        done
      end)
    ctx.Parsim.hosts

(* Burst-detector workload: even hosts fire back-to-back 24-packet
   bursts at their ring neighbour against the 2 KiB queue cap; odd
   hosts trickle. *)
let burst_traffic ~seed ~until (ctx : Parsim.shard_ctx) =
  let stop = until - Sim_time.us 100 in
  if stop <= 0 then invalid_arg "E25: until must exceed the 100 us drain margin";
  List.iter
    (fun (h, host) ->
      let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
      let dst = (h + 1) mod switches in
      if h mod 2 = 0 then
        for b = 0 to 1 do
          let base = Sim_time.us (30 + (110 * b) + (7 * h)) + Sim_time.ns (Stats.Rng.int rng 900) in
          for i = 0 to 23 do
            let at = base + (i * Sim_time.ns 60) in
            if at < stop then
              Scheduler.post ctx.Parsim.sched ~at (fun () ->
                  Host.send host
                    (mk_tcp_pkt ~src_host:h ~dst_host:dst ~sport:(4000 + h)
                       ~flags:Netcore.Tcp.flag_ack ~payload_len:200))
          done
        done
      else
        for i = 0 to 7 do
          let at = Sim_time.us (20 + (40 * i)) + Sim_time.ns (Stats.Rng.int rng 600) in
          if at < stop then
            Scheduler.post ctx.Parsim.sched ~at (fun () ->
                Host.send host
                  (mk_tcp_pkt ~src_host:h ~dst_host:dst ~sport:(4100 + h)
                     ~flags:Netcore.Tcp.flag_ack ~payload_len:128))
        done)
    ctx.Parsim.hosts

(* The chaos leg arms the supervisor against every switch's ingress
   handler (the SYN detector's hot path): the first invocation crashes,
   tripping a Quarantine with backoff, while merger shedding is live.
   One crash, not more — a first hop quarantined during the flood
   swallows it entirely, and the point here is recovery, not blindness.
   Armed per switch in on_shard, so the injection is identical at
   every shard count and the digests stay comparable. *)
let arm_chaos (ctx : Parsim.shard_ctx) =
  List.iter
    (fun (_, sw) ->
      Resil.Supervisor.inject_crash
        (Event_switch.handler_key sw Devents.Event.Ingress_packet)
        ~n:1)
    ctx.Parsim.switches

let scenario ?alarms ?(chaos = false) app ?(shards = 1) ?backend ?(record_trace = true) ~seed
    ~until () =
  Parsim.config ~shards ?backend ~record_trace ~until
    ~switch_config:(switch_config ~chaos app ~seed)
    ~program:(program ?alarms app)
    ~on_shard:(fun ctx ->
      if chaos then arm_chaos ctx;
      match app with
      | Syn -> syn_traffic ~seed ~until ctx
      | Burst -> burst_traffic ~seed ~until ctx)
    ()

(* Shared by gen_golden.exe and the conformance suite so the golden
   scenario cannot drift from the tested one. *)
let golden_until = Sim_time.us 400
let golden_seeds = [ 42; 7 ]
let golden_file seed = Printf.sprintf "e25_seed%d.digest" seed

let digest_trace trace = Digest.to_hex (Digest.string (String.concat "\n" trace))

(* The digest lines pinned by test/golden/e25_seedN.digest: trace and
   metrics digests for each detector app plus the chaos leg. *)
let golden_digests ?backend ?(shards = 1) ~seed () =
  let leg label ~chaos app =
    let cfg = scenario ~chaos app ~shards ?backend ~seed ~until:golden_until () in
    let r = Parsim.run cfg (topo ()) in
    [
      (label ^ ".trace", digest_trace r.Parsim.trace);
      (label ^ ".metrics", Digest.to_hex (Digest.string r.Parsim.metrics_json));
    ]
  in
  leg "syn" ~chaos:false Syn @ leg "burst" ~chaos:false Burst @ leg "chaos" ~chaos:true Syn

(* ------------------------------------------------------------------ *)

type variant = {
  v_app : string;
  shards : int;
  events : int;
  received : int;
  efsm_exported : bool;  (** pisa.efsm.* series present in merged metrics *)
  trace_digest : string;
  metrics_digest : string;
  conformant : bool;  (** digests equal the 1-shard run's *)
}

type result = {
  seed : int;
  until : Sim_time.t;
  flood : flood_quality;
  burst : burst_quality;
  variants : variant list;
  all_conformant : bool;
  chaos_alarms : int;  (** detector matches with crashes + shedding live *)
  chaos_conformant : bool;
}

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run ?metrics ?(seed = 42) ?(shard_counts = !default_shard_counts)
    ?(until = Sim_time.us 400) () =
  let flood = flood_quality ?metrics ~seed () in
  let burst = burst_quality ?metrics ~seed () in
  let topo = topo () in
  let variants =
    List.concat_map
      (fun app ->
        let raw =
          List.map
            (fun shards ->
              let cfg = scenario app ~shards ~seed ~until () in
              (shards, Parsim.run cfg topo))
            shard_counts
        in
        let ref_trace, ref_metrics =
          match raw with
          | (_, r) :: _ ->
              (digest_trace r.Parsim.trace, Digest.to_hex (Digest.string r.Parsim.metrics_json))
          | [] -> invalid_arg "E25: empty shard_counts"
        in
        List.map
          (fun (shards, (r : Parsim.result)) ->
            let trace_digest = digest_trace r.trace in
            let metrics_digest = Digest.to_hex (Digest.string r.metrics_json) in
            {
              v_app = app_label app;
              shards;
              events = r.events;
              received = Array.fold_left ( + ) 0 r.host_received;
              efsm_exported =
                contains_substring r.metrics_json "pisa.efsm.steps"
                && contains_substring r.metrics_json "pisa.efsm.state_hash";
              trace_digest;
              metrics_digest;
              conformant = trace_digest = ref_trace && metrics_digest = ref_metrics;
            })
          raw)
      apps
  in
  (* Chaos leg: sequential run observes detector liveness through the
     alarm sink; the shard sweep pins determinism of the full
     crash/quarantine/shed recovery path. *)
  let alarms = ref 0 in
  let chaos_ref = Parsim.run (scenario ~alarms ~chaos:true Syn ~shards:1 ~seed ~until ()) topo in
  let chaos_ref_digests =
    (digest_trace chaos_ref.Parsim.trace, Digest.to_hex (Digest.string chaos_ref.Parsim.metrics_json))
  in
  let chaos_conformant =
    List.for_all
      (fun shards ->
        let r = Parsim.run (scenario ~chaos:true Syn ~shards ~seed ~until ()) topo in
        (digest_trace r.Parsim.trace, Digest.to_hex (Digest.string r.Parsim.metrics_json))
        = chaos_ref_digests)
      (List.filter (fun s -> s > 1) shard_counts)
  in
  (match metrics with
  | None -> ()
  | Some reg ->
      Obs.Metrics.Counter.set (Obs.Metrics.counter reg "e25.flood.alarms") flood.alarms;
      Obs.Metrics.Counter.set (Obs.Metrics.counter reg "e25.burst.detected") burst.bursts_detected;
      Obs.Metrics.Counter.set (Obs.Metrics.counter reg "e25.chaos.alarms") !alarms);
  {
    seed;
    until;
    flood;
    burst;
    variants;
    all_conformant = List.for_all (fun v -> v.conformant) variants;
    chaos_alarms = !alarms;
    chaos_conformant;
  }

let print r =
  Report.section "E25 / in-network CEP — detection quality and conformance";
  Report.kv "seed" (string_of_int r.seed);
  Report.kv "horizon" (Report.time_ps r.until);
  Report.blank ();
  Report.note
    (Printf.sprintf "SYN-flood detector (count %d SYNs within %s, per victim):" flood_syns
       (Report.time_ps flood_window));
  Report.kv "attacks detected"
    (Printf.sprintf "%d/%d" r.flood.detected r.flood.attacks);
  Report.kv "detection latency (us)"
    (match r.flood.latencies_us with
    | [] -> "n/a"
    | l -> String.concat ", " (List.map (Printf.sprintf "%.1f") l));
  Report.kv "alarms / false alarms"
    (Printf.sprintf "%d / %d" r.flood.alarms r.flood.false_alarms);
  Report.kv "false-positive rate" (Report.pct (100. *. r.flood.fp_rate));
  Report.kv "organic SYNs (Zipf 1.1 destinations)" (string_of_int r.flood.background_syns);
  Report.blank ();
  Report.note "microburst forensics (occupancy ramp then overflow, per port):";
  Report.kv "bursts injected / detected"
    (Printf.sprintf "%d / %d" r.burst.bursts_injected r.burst.bursts_detected);
  Report.kv "culprit ports"
    (String.concat ", " (List.map string_of_int r.burst.culprit_ports));
  Report.kv "culprit correct" (if r.burst.culprit_correct then "yes" else "NO");
  Report.kv "overflow drops" (string_of_int r.burst.overflow_drops);
  Report.blank ();
  Report.note "sharded conformance of compiled detectors (ring of 8):";
  Report.table
    ~headers:[ "app"; "shards"; "events"; "rx"; "efsm metrics"; "trace"; "conform" ]
    ~rows:
      (List.map
         (fun v ->
           [
             v.v_app;
             string_of_int v.shards;
             string_of_int v.events;
             string_of_int v.received;
             (if v.efsm_exported then "exported" else "MISSING");
             String.sub v.trace_digest 0 12;
             (if v.conformant then "ok" else "DIVERGED");
           ])
         r.variants);
  Report.blank ();
  Report.kv "chaos leg alarms (crashes + shedding live, must be > 0)"
    (string_of_int r.chaos_alarms);
  Report.kv "chaos leg conformant across shard counts"
    (if r.chaos_conformant then "PASS" else "FAIL");
  Report.kv "merged trace and metrics identical across shard counts"
    (if r.all_conformant then "PASS" else "FAIL")
