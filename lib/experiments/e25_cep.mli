(** E25 — in-network complex-event processing on the EFSM extern.

    Part A measures detection quality on a single switch: the DDoS
    SYN-signature detector against Zipf-skewed organic traffic with two
    injected floods (detection latency and false-alarm rate), and the
    microburst-forensics detector against a shallow queue (culprit-port
    accuracy).

    Part B runs both CEP apps on a ring of 8 switches under Parsim at
    1/2/4 shards and checks that merged traces and merged metrics —
    including the detectors' [pisa.efsm.*] series — are byte-identical
    to the sequential run. A chaos leg repeats the SYN scenario with
    crash injection, quarantine and event shedding live, asserting the
    detectors keep matching through recovery and the whole path stays
    deterministic. *)

val name : string

val default_shard_counts : int list ref
(** Shard counts Part B exercises; the CLI's [--shards] narrows it. *)

type flood_quality = {
  attacks : int;
  detected : int;
  latencies_us : float list;  (** one per detected attack, attack order *)
  alarms : int;
  false_alarms : int;
  fp_rate : float;  (** false alarms / alarms *)
  background_syns : int;
}

type burst_quality = {
  bursts_injected : int;
  bursts_detected : int;
  culprit_ports : int list;
  culprit_correct : bool;  (** every report names the flooded port *)
  overflow_drops : int;
}

(** The two detector apps of the ring scenario. *)
type app = Syn | Burst

val scenario :
  ?alarms:int ref ->
  ?chaos:bool ->
  app ->
  ?shards:int ->
  ?backend:Eventsim.Sched_backend.t ->
  ?record_trace:bool ->
  seed:int ->
  until:Eventsim.Sim_time.t ->
  unit ->
  Parsim.config
(** The Part B ring scenario, shared with gen_golden.exe and the
    conformance suite. [alarms] is bumped on every detector match (read
    it from 1-shard runs only); [chaos] arms one crash per switch and
    enables quarantine + shedding. *)

val golden_until : Eventsim.Sim_time.t
val golden_seeds : int list

val golden_file : int -> string
(** Digest file name under [test/golden/] for a seed. *)

val golden_digests :
  ?backend:Eventsim.Sched_backend.t -> ?shards:int -> seed:int -> unit -> (string * string) list
(** [(label, md5-hex)] lines pinned by the golden digest files: one
    trace and one metrics digest per leg ("syn.*", "burst.*", plus the
    chaos leg "chaos.*"). The canon is the default (sequential, heap)
    execution; other backends and shard counts must reproduce it
    byte-for-byte. *)

type variant = {
  v_app : string;
  shards : int;
  events : int;
  received : int;
  efsm_exported : bool;  (** pisa.efsm.* series present in merged metrics *)
  trace_digest : string;
  metrics_digest : string;
  conformant : bool;  (** digests equal the 1-shard run's *)
}

type result = {
  seed : int;
  until : Eventsim.Sim_time.t;
  flood : flood_quality;
  burst : burst_quality;
  variants : variant list;
  all_conformant : bool;
  chaos_alarms : int;  (** detector matches with crashes + shedding live *)
  chaos_conformant : bool;
}

val run :
  ?metrics:Obs.Metrics.t ->
  ?seed:int ->
  ?shard_counts:int list ->
  ?until:Eventsim.Sim_time.t ->
  unit ->
  result

val print : result -> unit
