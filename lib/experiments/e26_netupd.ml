(* E26 — consistent event-driven network updates under chaos.

   An update storm on a ring of 8: the controller two-phase-commits a
   new policy version every ~90 us (alternating all-clockwise with a
   split policy that sends far destinations counter-clockwise), while
   hosts stream version-stamped traffic whose routes the storm keeps
   moving. The chaos leg layers on top of the storm: two mid-update
   link flaps (each one an event-driven trigger for a precomputed
   backup policy — E12's fast reroute, now as a checked update),
   control-plane op loss (Faults.Op_loss), and CP churn
   (Faults.Churn arming crash injections that trip per-channel
   quarantines, so ops are also *dropped*, not just lost).

   What must hold, and is pinned by golden digests at shards 1/2/4 ×
   heap/wheel/ladder: the mixed-version forwarding counter is exactly
   zero (no packet ever observes two policy versions), every proposed
   update commits or cleanly rolls back (nothing left in flight), and
   the control-op books balance: attempts = lost + quarantine-dropped
   + acked (first + duplicate + late).

   Determinism across shard counts comes from controller replication:
   every shard runs an identical controller replica driving shadow
   Control_plane instances for ALL switches (per-switch seeds, so op
   timing, jitter, loss verdicts and quarantine trips agree
   everywhere); only the replica owning a switch applies the device
   mutation. Replicas never communicate — every protocol input is a
   pure function of (seed, switch). *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4
module Ipv4_addr = Netcore.Ipv4_addr
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Control_plane = Evcore.Control_plane
module Host = Evcore.Host
module Arch = Evcore.Arch
module Program = Evcore.Program
module Policy = Netupd.Policy
module Agent = Netupd.Agent
module Commit = Netupd.Commit
module Controller = Netupd.Controller

let name = "netupd"

let default_shard_counts : int list ref = ref [ 1; 2; 4 ]
(* The CLI's --shards flag narrows this to [1; N]. *)

let switches = 8
let topo () = Topology.ring ~switches ()
let addr_of_host h = Ipv4_addr.of_octets 10 0 0 h
let host_of_addr a = Ipv4_addr.to_int a land 0xff

type leg = Clean | Chaos

let leg_label = function Clean -> "clean" | Chaos -> "chaos"

(* ------------------------------------------------------------------ *)
(* Scenario parameters (shared by run, gen_golden and the tests)       *)

let horizon = Sim_time.us 700

(* Update storm: a proposal every 90 us, alternating directions-split
   policies so routes genuinely move. *)
let storm_times = List.map Sim_time.us [ 50; 140; 230; 320; 410 ]

let storm_policy i =
  if i mod 2 = 0 then Policy.ring_threshold ~switches ~ccw_at:5 ~name:"split5" ()
  else Policy.ring_uniform ~switches ~name:"cw" ()

(* Chaos: two link flaps, both intra-shard at every shard count in
   {1,2,4} (contiguous partition of 8 switches: link 0 = sw0-sw1,
   link 4 = sw4-sw5). Trace plans with zero down-jitter make the
   outage window a compile-time constant — which is what lets every
   controller replica schedule the reroute trigger without having
   observed the (shard-local) link event itself. *)
type flap = { fl_link : int; fl_at : Sim_time.t; fl_down : Sim_time.t }

let flaps =
  [
    { fl_link = 0; fl_at = Sim_time.us 120; fl_down = Sim_time.us 50 };
    { fl_link = 4; fl_at = Sim_time.us 300; fl_down = Sim_time.us 50 };
  ]

let detect_delay = Sim_time.us 2

(* CP-op loss window and probability (chaos leg). Chaos subsides well
   before the horizon so in-flight updates can finish: a wedged update
   at the horizon is a protocol failure, not a truncation artefact. *)
let loss_window = (Sim_time.us 100, Sim_time.us 400)
let loss_p = 0.25

(* CP churn (chaos leg): every 90 us one of these switches' control
   channels gets its next op armed to crash, tripping a quarantine. *)
let churn_switches = [ 1; 3; 6 ]
let churn_plan = Faults.Schedule.Periodic { start = Sim_time.us 110; period = Sim_time.us 90; jitter = 0 }
let churn_stop = Sim_time.us 400

let commit_cfg () = Commit.default_config ()

let sup_config () =
  {
    (Resil.Supervisor.default_config ()) with
    Resil.Supervisor.policy = Resil.Policy.Quarantine;
    base_backoff = Sim_time.us 15;
    max_backoff = Sim_time.us 60;
  }

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)

(* Mutable run handles: agents are created before the run (the program
   closures capture them at build time); each shard's on_shard appends
   its controller replica and invariant checker. Only read the
   controllers/invariants of a 1-shard run for reporting — at higher
   shard counts the replicas are byte-identical by construction (that
   is the property under test). *)
type handles = {
  agents : Agent.t array;
  mutable controllers : (int * Controller.t) list;  (* shard -> replica *)
  mutable invariants : (int * Resil.Invariants.t) list;
  detections : int Atomic.t;  (* Event_switch.on_link_change observations *)
  churn_crashes : int Atomic.t;
}

let program agents sw : Program.spec =
 fun _install_ctx ->
  let agent = agents.(sw) in
  Program.make ~name:"netupd-fwd"
    ~ingress:(fun _ctx pkt ->
      match pkt.Packet.ip with
      | None -> Program.Drop
      | Some ip -> (
          let key = host_of_addr ip.Ipv4.dst in
          match Agent.decide agent pkt ~key with
          | -1 -> Program.Drop
          | port -> Program.Forward port))
    (* Subscribe to PHY link events so the data plane's view of the
       flap shows up in the switch's handled-event metrics. *)
    ~link_change:(fun _ctx _ev -> ())
    ()

let switch_config ~seed sw =
  let cfg = Event_switch.default_config Arch.event_pisa_full in
  { cfg with Event_switch.seed = seed + (31 * sw) }

(* Version-stamped UDP traffic. Two flows per host: a far destination
   (+5 clockwise — rerouted counter-clockwise by the split policy and
   by most backup policies) and a near one (+2). Sends stop 120 us
   before the horizon so the network is fully drained at the end. *)
let traffic ~seed ~until (ctx : Parsim.shard_ctx) =
  let stop = until - Sim_time.us 120 in
  if stop <= 0 then invalid_arg "E26: until must exceed the 120 us drain margin";
  List.iter
    (fun (h, host) ->
      let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
      List.iter
        (fun (d, sport) ->
          let dst = (h + d) mod switches in
          let k = ref 0 in
          let rec next at =
            if at < stop then begin
              Scheduler.post ctx.Parsim.sched ~at (fun () ->
                  Host.send host
                    (Packet.udp_packet ~src:(addr_of_host h) ~dst:(addr_of_host dst)
                       ~src_port:sport ~dst_port:(6000 + dst) ~payload_len:96 ()));
              incr k;
              next (at + Sim_time.us 6 + Sim_time.ns (Stats.Rng.int rng 500))
            end
          in
          next (Sim_time.us 8 + (h * Sim_time.ns 137) + Sim_time.ns (Stats.Rng.int rng 500)))
        [ (5, 4000 + h); (2, 4100 + h) ])
    ctx.Parsim.hosts

let wire ~leg ~seed ~until h (ctx : Parsim.shard_ctx) =
  let sched = ctx.Parsim.sched in
  let owned sw = List.mem_assoc sw ctx.Parsim.switches in
  (* Per-switch CP supervisors (chaos leg): seeded by switch id, so
     every replica's quarantine backoff timeline is identical. *)
  let sups =
    match leg with
    | Clean -> None
    | Chaos ->
        Some
          (Array.init switches (fun sw ->
               Resil.Supervisor.create ~sched ~config:(sup_config ()) ~seed:(seed + (977 * (sw + 1))) ()))
  in
  let lost =
    match leg with
    | Clean -> None
    | Chaos ->
        let start, stop = loss_window in
        let ol =
          Faults.Op_loss.create ~seed:(seed + 555) ~targets:switches ~drop_p:loss_p ~start ~stop ()
        in
        Some (fun ~switch ~now -> Faults.Op_loss.lost ol ~target:switch ~now)
  in
  let agents_opt =
    Array.init switches (fun sw -> if owned sw then Some h.agents.(sw) else None)
  in
  let ctrl =
    Controller.create ~sched ~switches ~agents:agents_opt
      ~initial:(Policy.with_version (Policy.ring_uniform ~switches ~name:"cw" ()) 1)
      ?sup:(Option.map (fun arr sw -> Some arr.(sw)) sups)
      ?lost ~commit:(commit_cfg ()) ~seed:(seed + 101) ()
  in
  h.controllers <- (ctx.Parsim.shard, ctrl) :: h.controllers;
  (* The storm. *)
  List.iteri
    (fun i at ->
      Scheduler.post ~cls:"netupd" sched ~at (fun () -> Controller.propose ctrl (storm_policy i)))
    storm_times;
  (match leg with
  | Clean -> ()
  | Chaos ->
      (* Link flaps — only the shard owning the link drives the PHY. *)
      List.iter
        (fun fl ->
          match List.assoc_opt fl.fl_link ctx.Parsim.links with
          | None -> ()
          | Some l ->
              Faults.Flapper.attach ~sched
                ~rng:(Stats.Rng.create ~seed:(seed + 303 + fl.fl_link))
                ~stop:until ~plan:(Faults.Schedule.Trace [ fl.fl_at ]) ~down_for:fl.fl_down
                ~down_jitter:0 l)
        flaps;
      (* Every switch reports PHY transitions to the controller layer;
         count them to assert the data plane really saw the flaps. *)
      List.iter
        (fun (_, sw) -> Event_switch.on_link_change sw (fun ~port:_ ~up:_ -> Atomic.incr h.detections))
        ctx.Parsim.switches;
      (* Event-driven reroute: link down -> precomputed backup policy;
         link up -> back to the primary. Trace-plan flaps with zero
         jitter mean every replica knows the event times exactly. *)
      List.iter
        (fun fl ->
          Scheduler.post ~cls:"netupd" sched ~at:(fl.fl_at + detect_delay) (fun () ->
              Controller.propose ctrl
                (Policy.ring_avoiding ~switches ~link:fl.fl_link
                   ~name:(Printf.sprintf "avoid-l%d" fl.fl_link) ()));
          Scheduler.post ~cls:"netupd" sched
            ~at:(fl.fl_at + fl.fl_down + detect_delay)
            (fun () -> Controller.propose ctrl (Policy.ring_uniform ~switches ~name:"cw" ())))
        flaps;
      (* CP churn: arm crash injections against the control channels. *)
      match sups with
      | None -> ()
      | Some arr ->
          let ops =
            churn_switches
            |> List.filter_map (fun sw ->
                   Resil.Supervisor.find_key arr.(sw) ~name:"cp.op"
                   |> Option.map (fun key ->
                          ( Printf.sprintf "crash-cp%d" sw,
                            fun () ->
                              Resil.Supervisor.inject_crash key ~n:1;
                              Atomic.incr h.churn_crashes )))
            |> Array.of_list
          in
          Faults.Churn.attach ~sched ~rng:(Stats.Rng.create ~seed:(seed + 606)) ~stop:churn_stop
            ~plan:churn_plan ~ops ());
  (* Runtime safety checks: no mixed-version forwarding, no wedged
     update. Kept out of the metrics registry so digests only carry
     simulation state. *)
  let inv = Resil.Invariants.create ~sched ~policy:Resil.Invariants.Record ~period:(Sim_time.us 25) () in
  Controller.register_invariants ~wedge_bound:(Sim_time.us 300) ctrl inv;
  Resil.Invariants.start inv ~stop:until;
  h.invariants <- (ctx.Parsim.shard, inv) :: h.invariants;
  (* Final-state metrics export, scheduled at the horizon (the last
     event of the run): controller books from shard 0's replica (all
     replicas agree), per-switch agent + CP series from the owner. *)
  Scheduler.post ~cls:"netupd" sched ~at:until (fun () ->
      if ctx.Parsim.shard = 0 then Controller.export_metrics ctrl ctx.Parsim.metrics;
      List.iter
        (fun (swid, _) ->
          let labels = [ ("switch", string_of_int swid) ] in
          Agent.export_metrics ~labels h.agents.(swid) ctx.Parsim.metrics;
          Control_plane.export_metrics ~labels (Controller.cp ctrl swid) ctx.Parsim.metrics)
        ctx.Parsim.switches);
  traffic ~seed ~until ctx

let scenario ?(leg = Clean) ?(shards = 1) ?backend ?(record_trace = true) ~seed ~until () =
  let agents =
    Array.init switches (fun sw ->
        Agent.create ~switch:sw ~keys:switches ~edge_port:(fun p -> p = 0) ())
  in
  let h =
    {
      agents;
      controllers = [];
      invariants = [];
      detections = Atomic.make 0;
      churn_crashes = Atomic.make 0;
    }
  in
  let cfg =
    Parsim.config ~shards ?backend ~record_trace ~until
      ~switch_config:(switch_config ~seed)
      ~program:(program agents)
      ~on_shard:(wire ~leg ~seed ~until h)
      ()
  in
  (cfg, h)

(* ------------------------------------------------------------------ *)
(* Golden digests (shared with gen_golden.exe and test_golden.ml)      *)

let golden_until = horizon
let golden_seeds = [ 42; 7 ]
let golden_file seed = Printf.sprintf "e26_seed%d.digest" seed
let digest_trace trace = Digest.to_hex (Digest.string (String.concat "\n" trace))

let golden_digests ?backend ?(shards = 1) ~seed () =
  List.concat_map
    (fun leg ->
      let cfg, _ = scenario ~leg ~shards ?backend ~seed ~until:golden_until () in
      let r = Parsim.run cfg (topo ()) in
      [
        (leg_label leg ^ ".trace", digest_trace r.Parsim.trace);
        (leg_label leg ^ ".metrics", Digest.to_hex (Digest.string r.Parsim.metrics_json));
      ])
    [ Clean; Chaos ]

(* ------------------------------------------------------------------ *)
(* Results                                                             *)

type leg_result = {
  leg : string;
  proposals : int;
  committed : int;
  rolled_back : int;
  superseded : int;
  final_version : int;
  in_flight_at_end : bool;  (** must be false: commit or roll back, never wedge *)
  replicas_agree : bool;  (** all shard replicas produced one protocol log *)
  mixed : int;  (** must be 0 *)
  unroutable : int;
  stamped : int;
  forwarded : int;
  attempts : int;
  lost_ops : int;
  acks : int;
  dup_acks : int;
  late_acks : int;
  retries : int;
  abandoned : int;
  canceled : int;
  applied : int;
  deduped : int;
  gc_skipped : int;
  cp_ops : int;
  cp_dropped : int;
  cp_notifications : int;
  cp_queue_hwm : int;
  books_ok : bool;  (** attempts = lost + dropped + all acks *)
  invariant_violations : int;
  link_detections : int;
  churn_crashes : int;
  host_received : int;
  schedule_digest : string;
}

type variant = {
  v_leg : string;
  v_shards : int;
  v_received : int;
  v_trace_digest : string;
  v_metrics_digest : string;
  v_conformant : bool;
}

type result = {
  seed : int;
  until : Sim_time.t;
  legs : leg_result list;
  variants : variant list;
  all_conformant : bool;
  safe : bool;  (** mixed = 0, books balance, nothing wedged, no violations *)
}

let leg_result ~leg ~seed ~until () =
  let cfg, h = scenario ~leg ~shards:1 ~seed ~until () in
  let r = Parsim.run cfg (topo ()) in
  let ctrl = List.assoc 0 h.controllers in
  let st = Controller.stats ctrl in
  let sum f = Array.fold_left (fun acc a -> acc + f a) 0 h.agents in
  let cps = Controller.cps ctrl in
  let sum_cp f = Array.fold_left (fun acc cp -> acc + f cp) 0 cps in
  let attempts = st.Commit.attempts in
  let lost_ops = st.Commit.lost in
  let acks_total = st.Commit.acks + st.Commit.dup_acks + st.Commit.late_acks in
  let cp_dropped = sum_cp Control_plane.dropped_ops in
  {
    leg = leg_label leg;
    proposals = Controller.proposals ctrl;
    committed = Controller.committed ctrl;
    rolled_back = Controller.rolled_back ctrl;
    superseded = Controller.superseded ctrl;
    final_version = Controller.version ctrl;
    in_flight_at_end = Controller.in_flight_version ctrl <> None;
    replicas_agree =
      (let digests = List.map (fun (_, c) -> Controller.schedule_digest c) h.controllers in
       match digests with [] -> false | d :: rest -> List.for_all (( = ) d) rest);
    mixed = sum Agent.mixed;
    unroutable = sum Agent.unroutable;
    stamped = sum Agent.stamped;
    forwarded = sum Agent.forwarded;
    attempts;
    lost_ops;
    acks = st.Commit.acks;
    dup_acks = st.Commit.dup_acks;
    late_acks = st.Commit.late_acks;
    retries = st.Commit.retries;
    abandoned = st.Commit.abandoned;
    canceled = st.Commit.canceled;
    applied = st.Commit.applied;
    deduped = st.Commit.deduped;
    gc_skipped = st.Commit.gc_skipped;
    cp_ops = sum_cp Control_plane.ops;
    cp_dropped;
    cp_notifications = sum_cp Control_plane.notifications;
    cp_queue_hwm = Array.fold_left (fun acc cp -> max acc (Control_plane.queue_depth_hwm cp)) 0 cps;
    books_ok = attempts = lost_ops + cp_dropped + acks_total;
    invariant_violations =
      List.fold_left (fun acc (_, inv) -> acc + Resil.Invariants.violations inv) 0 h.invariants;
    link_detections = Atomic.get h.detections;
    churn_crashes = Atomic.get h.churn_crashes;
    host_received = Array.fold_left ( + ) 0 r.Parsim.host_received;
    schedule_digest = Controller.schedule_digest ctrl;
  }

let run ?metrics ?(seed = 42) ?(shard_counts = !default_shard_counts) ?(until = horizon) () =
  let legs = List.map (fun leg -> leg_result ~leg ~seed ~until ()) [ Clean; Chaos ] in
  let t = topo () in
  let variants =
    List.concat_map
      (fun leg ->
        let reference = ref None in
        List.map
          (fun shards ->
            let cfg, _ = scenario ~leg ~shards ~seed ~until () in
            let r = Parsim.run cfg t in
            let td = digest_trace r.Parsim.trace in
            let md = Digest.to_hex (Digest.string r.Parsim.metrics_json) in
            let conformant =
              match !reference with
              | None ->
                  reference := Some (td, md);
                  true
              | Some rf -> rf = (td, md)
            in
            {
              v_leg = leg_label leg;
              v_shards = shards;
              v_received = Array.fold_left ( + ) 0 r.Parsim.host_received;
              v_trace_digest = td;
              v_metrics_digest = md;
              v_conformant = conformant;
            })
          shard_counts)
      [ Clean; Chaos ]
  in
  let safe =
    List.for_all
      (fun l ->
        l.mixed = 0 && l.books_ok && (not l.in_flight_at_end) && l.invariant_violations = 0
        && l.replicas_agree
        && l.committed + l.rolled_back + l.superseded = l.proposals)
      legs
  in
  (match metrics with
  | None -> ()
  | Some reg ->
      List.iter
        (fun l ->
          let labels = [ ("leg", l.leg) ] in
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e26.proposals") l.proposals;
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e26.committed") l.committed;
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e26.rolled_back") l.rolled_back;
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e26.mixed") l.mixed;
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e26.cp_dropped") l.cp_dropped;
          (* Leg-aggregated control-plane series, same names as the
             per-switch Control_plane.export_metrics ones that feed the
             conformance digests. *)
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "cp.ops") l.cp_ops;
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "cp.dropped_ops") l.cp_dropped;
          Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "cp.notifications") l.cp_notifications;
          Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels "cp.queue_depth") l.cp_queue_hwm)
        legs);
  {
    seed;
    until;
    legs;
    variants;
    all_conformant = List.for_all (fun v -> v.v_conformant) variants;
    safe;
  }

let print r =
  Report.section "E26 / consistent updates — two-phase commit under chaos";
  Report.kv "seed" (string_of_int r.seed);
  Report.kv "horizon" (Report.time_ps r.until);
  Report.kv "topology" (Printf.sprintf "ring of %d, update storm of %d + event triggers" switches
                          (List.length storm_times));
  List.iter
    (fun l ->
      Report.blank ();
      Report.note
        (Printf.sprintf "%s leg%s:" l.leg
           (if l.leg = "chaos" then
              Printf.sprintf " (op loss p=%.2f, %d CP crash injections, %d link flaps)" loss_p
                l.churn_crashes (List.length flaps)
            else ""));
      Report.kv "updates proposed / committed / rolled back / superseded"
        (Printf.sprintf "%d / %d / %d / %d" l.proposals l.committed l.rolled_back l.superseded);
      Report.kv "final committed version" (string_of_int l.final_version);
      Report.kv "wedged in flight at horizon" (if l.in_flight_at_end then "YES (FAIL)" else "none");
      Report.kv "controller replicas agree" (if l.replicas_agree then "yes" else "NO");
      Report.kv "packets stamped / forwarded / received"
        (Printf.sprintf "%d / %d / %d" l.stamped l.forwarded l.host_received);
      Report.kv "mixed-version forwardings (must be 0)" (string_of_int l.mixed);
      Report.kv "unroutable" (string_of_int l.unroutable);
      Report.kv "control ops: attempts = lost + dropped + acks"
        (Printf.sprintf "%d = %d + %d + (%d+%d+%d) %s" l.attempts l.lost_ops l.cp_dropped l.acks
           l.dup_acks l.late_acks
           (if l.books_ok then "(balanced)" else "(IMBALANCED)"));
      Report.kv "retries / abandoned / canceled" (Printf.sprintf "%d / %d / %d" l.retries l.abandoned l.canceled);
      Report.kv "device applies / deduped" (Printf.sprintf "%d / %d" l.applied l.deduped);
      Report.kv "cp ops / notifications / queue HWM"
        (Printf.sprintf "%d / %d / %d" l.cp_ops l.cp_notifications l.cp_queue_hwm);
      Report.kv "invariant violations" (string_of_int l.invariant_violations);
      if l.leg = "chaos" then
        Report.kv "data-plane link-change detections" (string_of_int l.link_detections);
      Report.kv "retry-schedule digest" (String.sub l.schedule_digest 0 12))
    r.legs;
  Report.blank ();
  Report.note "sharded conformance (merged trace + metrics vs 1 shard):";
  Report.table
    ~headers:[ "leg"; "shards"; "rx"; "trace"; "conform" ]
    ~rows:
      (List.map
         (fun v ->
           [
             v.v_leg;
             string_of_int v.v_shards;
             string_of_int v.v_received;
             String.sub v.v_trace_digest 0 12;
             (if v.v_conformant then "ok" else "DIVERGED");
           ])
         r.variants);
  Report.blank ();
  Report.kv "all variants conformant" (if r.all_conformant then "PASS" else "FAIL");
  Report.kv "update protocol safe (mixed=0, books balance, no wedge)"
    (if r.safe then "PASS" else "FAIL")
