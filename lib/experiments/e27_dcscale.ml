(* E27 — datacenter scale: k=16 fat tree under a streaming Zipf flow
   mix, plus adaptive-vs-static lookahead on sparse traffic and a
   1000+-switch ring.

   Where E23 pins conformance on a k=4 pod with a handful of CBR
   flows, this experiment is the scale tentpole: 1024 hosts, hundreds
   of thousands of Poisson flow arrivals streamed through
   [Workloads.Flowgen.install] (O(live flows) memory, never
   O(population)), and a packet-arrival population far too large to
   retain as a trace — conformance across shard counts is checked on
   [Parsim]'s O(1)-space order-independent arrival digest instead.
   Three legs:

   - {e conformance + throughput}: the same seeded workload at shard
     counts [1; 2; 4; 8]; every run must produce the sequential run's
     arrival digest and merged metrics byte-for-byte, while we record
     the throughput curve and the peak number of concurrently live
     flows (sampled at fixed simulated instants by per-shard probes).
   - {e sparse}: a k=8 fat tree where 16 hosts send 6 packets each at
     500 us spacing — the workload class where the static
     min-link-delay horizon grinds through thousands of empty windows.
     Adaptive lookahead must finish in measurably fewer rounds.
   - {e ring}: a 1024-switch ring (auto shard count) showing the
     partitioner and engine at 1000+ entities outside the fat-tree
     shape. *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Program = Evcore.Program
module Arch = Evcore.Arch
module Host = Evcore.Host
module Flowgen = Workloads.Flowgen
module Traffic = Workloads.Traffic

let name = "dcscale"
let k = 16
let num_hosts = k * k * k / 4 (* 1024 *)
let hosts_per_pod = k * k / 4 (* 64 *)

let default_shard_counts : int list ref = ref [ 1; 2; 4; 8 ]
(* The CLI's --shards flag narrows this to [1; N]. *)

let topo () = Topology.fat_tree ~k ()

(* Same addressing scheme as E23: host h owns 10.0.(h lsr 8).(h land
   0xff), low 16 bits recover the id. *)
let addr_of_host h = Ipv4_addr.of_octets 10 0 (h lsr 8) (h land 0xff)
let host_of_addr a = Ipv4_addr.to_int a land 0xffff

let routing_program : Program.spec =
 fun _install_ctx ->
  Program.make ~name:"dc-route"
    ~ingress:(fun ctx pkt ->
      match pkt.Packet.ip with
      | Some ip ->
          Program.Forward
            (Topology.fat_tree_route ~k ~sw:ctx.switch_id
               ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
      | None -> Program.Drop)
    ()

let switch_config ~seed sw =
  let cfg = Event_switch.default_config Arch.sume_event_switch in
  { cfg with Event_switch.seed = seed + (31 * sw) }

(* Popular keys (rank <= 100, the bulk of a Zipf-1.1 mix) stay inside
   the sender's pod; the tail crosses pods through the core. The
   mapping depends only on (host, rank) — never on shards. *)
let dst_of ~h rank =
  if rank <= 100 then begin
    let base = h / hosts_per_pod * hosts_per_pod in
    base + ((h - base + 1 + (rank mod (hosts_per_pod - 1))) mod hosts_per_pod)
  end
  else (h + hosts_per_pod + (rank * 97 mod (num_hosts - hosts_per_pod))) mod num_hosts

let flow_of ~h rank =
  Netcore.Flow.make ~src:(addr_of_host h)
    ~dst:(addr_of_host (dst_of ~h rank))
    ~proto:Netcore.Ipv4.proto_udp
    ~src_port:(1024 + (rank land 0xfff))
    ~dst_port:(5000 + (h land 0xfff))
    ()

(* Workload sizing, all simulated-time: flows arrive per host as a
   Poisson process until [arrival_stop], each emitting a capped-Pareto
   number of packets [rate_pps] apart; [until] leaves room for every
   started flow to finish and the fabric to drain. *)
type knobs = {
  until : Sim_time.t;
  arrival_stop : Sim_time.t;
  arrival_rate_per_host : float;
  rate_pps : float;
  mean_packets : float;
  max_packets : int;
  concurrency_target : int;  (** min peak live flows expected; 0 = not checked *)
}

(* ~233k flows fleet-wide, ~115k concurrently live at steady state
   (arrival rate x mean lifetime), ~0.7M packets. The time axis is
   deliberately stretched (packet arrivals ~5 ns apart fleet-wide,
   not sub-ns): picosecond timestamps of independent Poisson sources
   collide birthday-style once arrival density approaches the
   timestamp resolution, and every collision voids the
   no-simultaneous-arrivals precondition the cross-shard conformance
   guarantee rests on ({!Parsim.result.tie_arrivals}). At this
   density the pinned seeds run tie-free; the event count — the thing
   throughput scaling is measured on — is unaffected by the stretch. *)
let full_knobs =
  {
    until = Sim_time.us 22_400;
    arrival_stop = Sim_time.us 9_600;
    arrival_rate_per_host = 23_750.;
    rate_pps = 416.7;
    mean_packets = 6.;
    max_packets = 6;
    concurrency_target = 100_000;
  }

let spec_of knobs =
  {
    Flowgen.num_flows = 10_000_000 (* the arrival_stop cuts the chain first *);
    key_space = 400;
    zipf_alpha = 1.1;
    mean_packets = knobs.mean_packets;
    max_packets = knobs.max_packets;
    pkt_bytes = 256;
    arrival_rate_per_sec = knobs.arrival_rate_per_host;
  }

(* Concurrency is sampled at fixed simulated instants: each shard
   posts one bounded probe per instant summing its sources'
   [live_flows]; the fleet total at instant i is the sum over shards.
   Probes are plain workload events — identical on every shard layout,
   touching no packets, so digests are unaffected. *)
let sample_times knobs =
  let s = knobs.arrival_stop in
  [ s / 2; 3 * s / 4; s - 1; s + ((knobs.until - s) / 4) ]

let num_samples = 4

let install_traffic ~knobs ~seed ~samples ~sources (ctx : Parsim.shard_ctx) =
  let spec = spec_of knobs in
  let shard_sources =
    List.map
      (fun (h, host) ->
        let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
        Flowgen.install ~sched:ctx.Parsim.sched ~rng
          ~flow_of_rank:(fun rank -> flow_of ~h rank)
          ~arrival_stop:knobs.arrival_stop ~rate_pps_per_flow:knobs.rate_pps spec
          ~send:(Host.send host) ())
      ctx.Parsim.hosts
  in
  (* on_shard runs on the spawning domain before the clock starts, so
     this accumulation is sequential; the per-shard [samples] row is
     only ever written by the owning shard's domain. *)
  sources := shard_sources @ !sources;
  List.iteri
    (fun i t ->
      Scheduler.post ~cls:"workload" ctx.Parsim.sched ~at:t (fun () ->
          samples.(ctx.Parsim.shard).(i) <-
            List.fold_left (fun acc s -> acc + s.Flowgen.live_flows) 0 shard_sources))
    (sample_times knobs)

let scenario ?(shards = 1) ?backend ?horizon ?(record_digest = true) ?samples ?sources
    ~seed ~knobs () =
  let samples =
    match samples with Some s -> s | None -> Array.make_matrix num_hosts num_samples 0
  in
  let sources = match sources with Some s -> s | None -> ref [] in
  Parsim.config ~shards ?backend ?horizon ~record_digest ~until:knobs.until
    ~switch_config:(switch_config ~seed)
    ~program:(fun _ -> routing_program)
    ~on_shard:(install_traffic ~knobs ~seed ~samples ~sources)
    ()

(* ------------------------------------------------------------------ *)
(* Golden digests: a scaled-down (but still ~15k-flow, 320-switch)
   version of the workload whose arrival digest + merged metrics are
   pinned in test/golden/, exactly the E23-E26 fixture shape. *)

let golden_knobs =
  {
    until = Sim_time.us 300;
    arrival_stop = Sim_time.us 150;
    arrival_rate_per_host = 100_000.;
    rate_pps = 50_000.;
    mean_packets = 3.;
    max_packets = 4;
    concurrency_target = 0;
  }

let golden_seeds = [ 42; 7 ]
let golden_file seed = Printf.sprintf "e27_seed%d.digest" seed

let golden_digests ?backend ?(shards = 1) ~seed () =
  let cfg = scenario ~shards ?backend ~record_digest:true ~seed ~knobs:golden_knobs () in
  let r = Parsim.run cfg (topo ()) in
  [
    ("arrivals", r.Parsim.arrival_digest);
    ("metrics", Digest.to_hex (Digest.string r.Parsim.metrics_json));
  ]

(* ------------------------------------------------------------------ *)
(* Leg 1: conformance + throughput at datacenter size                  *)

type variant = {
  shards : int;
  rounds : int;
  events : int;
  cross_sent : int;
  flows : int;
  packets : int;
  received : int;
  ties : int;
  wall_s : float;
  mev_per_s : float;
  arrival_digest : string;
  metrics_digest : string;
  conformant : bool;  (** digests equal the first (sequential) run's *)
}

type sparse = {
  sp_shards : int;
  static_rounds : int;
  adaptive_rounds : int;
  static_wall : float;
  adaptive_wall : float;
  round_reduction : float;  (** static_rounds / adaptive_rounds *)
}

type ring_leg = {
  rg_switches : int;
  rg_shards : int;  (** resolved from auto *)
  rg_rounds : int;
  rg_events : int;
  rg_received : int;
  rg_wall : float;
}

type result = {
  seed : int;
  knobs : knobs;
  variants : variant list;
  all_conformant : bool;
  peak_live : int;  (** max over sample instants of fleet-wide live flows *)
  concurrency_ok : bool;
  sparse : sparse;
  ring : ring_leg;
}

let run_variant ~knobs ~seed ~shards topo =
  let samples = Array.make_matrix num_hosts num_samples 0 in
  let sources = ref [] in
  let cfg = scenario ~shards ~samples ~sources ~seed ~knobs () in
  let r = Parsim.run cfg topo in
  let peak = ref 0 in
  for i = 0 to num_samples - 1 do
    let total = Array.fold_left (fun acc row -> acc + row.(i)) 0 samples in
    if total > !peak then peak := total
  done;
  let flows = List.fold_left (fun acc s -> acc + s.Flowgen.flows_started) 0 !sources in
  let packets = List.fold_left (fun acc s -> acc + s.Flowgen.packets_sent) 0 !sources in
  (r, !peak, flows, packets)

(* ------------------------------------------------------------------ *)
(* Leg 2: sparse traffic, adaptive vs static lookahead                 *)

let sparse_k = 8
let sparse_hosts = sparse_k * sparse_k * sparse_k / 4 (* 128 *)
let sparse_until = Sim_time.ms 3

let sparse_program : Program.spec =
 fun _ ->
  Program.make ~name:"sparse-route"
    ~ingress:(fun ctx pkt ->
      match pkt.Packet.ip with
      | Some ip ->
          Program.Forward
            (Topology.fat_tree_route ~k:sparse_k ~sw:ctx.switch_id
               ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
      | None -> Program.Drop)
    ()

(* 16 active hosts, 6 packets each at 500 us spacing, cross-pod: the
   event population is tiny and bursty, so the static horizon (one
   min-link-delay window at a time) executes thousands of empty
   barrier rounds that the adaptive bound skips over. *)
let sparse_traffic ~seed:_ (ctx : Parsim.shard_ctx) =
  let gap = Sim_time.us 500 in
  List.iter
    (fun (h, host) ->
      if h mod 8 = 0 then begin
        let dst = (h + (sparse_hosts / sparse_k * 2)) mod sparse_hosts in
        let flow =
          Netcore.Flow.make ~src:(addr_of_host h) ~dst:(addr_of_host dst)
            ~proto:Netcore.Ipv4.proto_udp ~src_port:(4000 + h) ~dst_port:(5000 + dst) ()
        in
        let start = Sim_time.us (10 + h) in
        let stop = start + (5 * gap) + Sim_time.ns 1 in
        (* rate such that cbr's inter-packet gap is exactly 500 us *)
        let rate_gbps = 256. *. 8. /. Sim_time.to_ns gap in
        ignore
          (Traffic.cbr ~sched:ctx.Parsim.sched ~flow ~pkt_bytes:256 ~rate_gbps ~start
             ~stop ~send:(Host.send host) ()
            : Traffic.t)
      end)
    ctx.Parsim.hosts

let sparse_config ~horizon ~seed ~shards =
  Parsim.config ~shards ~horizon ~until:sparse_until
    ~switch_config:(switch_config ~seed)
    ~program:(fun _ -> sparse_program)
    ~on_shard:(sparse_traffic ~seed) ()

let run_sparse ~seed ~shards =
  let topo = Topology.fat_tree ~k:sparse_k () in
  let st = Parsim.run (sparse_config ~horizon:Parsim.Static ~seed ~shards) topo in
  let ad = Parsim.run (sparse_config ~horizon:Parsim.Adaptive ~seed ~shards) topo in
  {
    sp_shards = shards;
    static_rounds = st.Parsim.rounds_executed;
    adaptive_rounds = ad.Parsim.rounds_executed;
    static_wall = st.Parsim.wall_s;
    adaptive_wall = ad.Parsim.wall_s;
    round_reduction =
      float_of_int st.Parsim.rounds_executed
      /. float_of_int (max 1 ad.Parsim.rounds_executed);
  }

(* ------------------------------------------------------------------ *)
(* Leg 3: 1024-switch ring, auto shard count                           *)

let ring_switches = 1024
let ring_until = Sim_time.us 150

let ring_program : Program.spec =
 fun _ ->
  Program.make ~name:"ring-route"
    ~ingress:(fun ctx pkt ->
      match pkt.Packet.ip with
      | Some ip ->
          Program.Forward
            (Topology.ring_route ~switches:ring_switches ~sw:ctx.switch_id
               ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
      | None -> Program.Drop)
    ()

let ring_traffic (ctx : Parsim.shard_ctx) =
  let gap = Sim_time.us 20 in
  List.iter
    (fun (h, host) ->
      let dst = (h + 3) mod ring_switches in
      let flow =
        Netcore.Flow.make ~src:(addr_of_host h) ~dst:(addr_of_host dst)
          ~proto:Netcore.Ipv4.proto_udp ~src_port:(4000 + (h land 0xfff))
          ~dst_port:(5000 + (dst land 0xfff)) ()
      in
      let start = Sim_time.ns (10 * h) in
      let stop = start + (3 * gap) + Sim_time.ns 1 in
      let rate_gbps = 256. *. 8. /. Sim_time.to_ns gap in
      ignore
        (Traffic.cbr ~sched:ctx.Parsim.sched ~flow ~pkt_bytes:256 ~rate_gbps ~start ~stop
           ~send:(Host.send host) ()
          : Traffic.t))
    ctx.Parsim.hosts

let run_ring ~seed =
  let topo = Topology.ring ~switches:ring_switches () in
  let cfg =
    Parsim.config ~shards:0 (* auto: recommended domain count *) ~until:ring_until
      ~switch_config:(switch_config ~seed)
      ~program:(fun _ -> ring_program)
      ~on_shard:ring_traffic ()
  in
  let r = Parsim.run cfg topo in
  {
    rg_switches = ring_switches;
    rg_shards = r.Parsim.plan.Parsim.part.Parsim.shards;
    rg_rounds = r.Parsim.rounds_executed;
    rg_events = r.Parsim.events;
    rg_received = Array.fold_left ( + ) 0 r.Parsim.host_received;
    rg_wall = r.Parsim.wall_s;
  }

(* ------------------------------------------------------------------ *)

let run ?metrics ?(seed = 42) ?(shard_counts = !default_shard_counts)
    ?(knobs = full_knobs) () =
  let topo = topo () in
  let raw =
    List.map (fun shards -> run_variant ~knobs ~seed ~shards topo) shard_counts
  in
  let ref_digest, ref_metrics =
    match raw with
    | (r, _, _, _) :: _ ->
        (r.Parsim.arrival_digest, Digest.to_hex (Digest.string r.Parsim.metrics_json))
    | [] -> invalid_arg "E27: empty shard_counts"
  in
  let variants =
    List.map
      (fun ((r : Parsim.result), peak, flows, packets) ->
        let arrival_digest = r.arrival_digest in
        let metrics_digest = Digest.to_hex (Digest.string r.metrics_json) in
        let shards = r.plan.Parsim.part.Parsim.shards in
        (match metrics with
        | None -> ()
        | Some reg ->
            let labels = [ ("shards", string_of_int shards) ] in
            Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "e27.events") r.events;
            Obs.Metrics.Counter.set
              (Obs.Metrics.counter reg ~labels "e27.peak_live_flows")
              peak);
        {
          shards;
          rounds = r.rounds_executed;
          events = r.events;
          cross_sent = r.cross_sent;
          flows;
          packets;
          received = Array.fold_left ( + ) 0 r.host_received;
          ties = r.tie_arrivals;
          wall_s = r.wall_s;
          mev_per_s = float_of_int r.events /. r.wall_s /. 1e6;
          arrival_digest;
          metrics_digest;
          conformant = arrival_digest = ref_digest && metrics_digest = ref_metrics;
        })
      raw
  in
  let peak_live =
    List.fold_left (fun acc (_, p, _, _) -> max acc p) 0 raw
  in
  {
    seed;
    knobs;
    variants;
    all_conformant = List.for_all (fun v -> v.conformant) variants;
    peak_live;
    concurrency_ok = peak_live >= knobs.concurrency_target;
    sparse = run_sparse ~seed ~shards:4;
    ring = run_ring ~seed;
  }

let print r =
  Report.section
    (Printf.sprintf "E27 / Sec 4 — datacenter scale: k=%d fat tree (%d switches, %d hosts)"
       k (Topology.fat_tree ~k ()).Topology.switches num_hosts);
  Report.kv "seed" (string_of_int r.seed);
  Report.kv "horizon" (Report.time_ps r.knobs.until);
  Report.kv "flow arrivals until" (Report.time_ps r.knobs.arrival_stop);
  Report.blank ();
  Report.table
    ~headers:
      [ "shards"; "rounds"; "events"; "cross msgs"; "flows"; "pkts"; "rx"; "ties"; "wall s"; "Mev/s"; "digest"; "conform" ]
    ~rows:
      (List.map
         (fun v ->
           [
             string_of_int v.shards;
             string_of_int v.rounds;
             string_of_int v.events;
             string_of_int v.cross_sent;
             string_of_int v.flows;
             string_of_int v.packets;
             string_of_int v.received;
             string_of_int v.ties;
             Printf.sprintf "%.2f" v.wall_s;
             Printf.sprintf "%.2f" v.mev_per_s;
             String.sub v.arrival_digest 0 (min 12 (String.length v.arrival_digest));
             (if v.conformant then "ok" else "DIVERGED");
           ])
         r.variants);
  Report.blank ();
  Report.kv "arrival digest and metrics identical across shard counts"
    (if r.all_conformant then "PASS" else "FAIL");
  Report.kv "peak concurrently live flows"
    (Printf.sprintf "%d%s" r.peak_live
       (if r.knobs.concurrency_target > 0 then
          Printf.sprintf " (target >= %d: %s)" r.knobs.concurrency_target
            (if r.concurrency_ok then "PASS" else "FAIL")
        else ""));
  Report.blank ();
  Report.section "sparse leg — adaptive vs static lookahead (k=8, 16 sparse senders)";
  Report.table
    ~headers:[ "horizon"; "rounds"; "wall ms" ]
    ~rows:
      [
        [
          "static";
          string_of_int r.sparse.static_rounds;
          Printf.sprintf "%.1f" (r.sparse.static_wall *. 1e3);
        ];
        [
          "adaptive";
          string_of_int r.sparse.adaptive_rounds;
          Printf.sprintf "%.1f" (r.sparse.adaptive_wall *. 1e3);
        ];
      ];
  Report.kv "round reduction (static / adaptive)"
    (Printf.sprintf "%.1fx %s" r.sparse.round_reduction
       (if r.sparse.adaptive_rounds < r.sparse.static_rounds then "(PASS)" else "(FAIL)"));
  Report.blank ();
  Report.section "ring leg — 1024 switches, auto shard count";
  Report.kv "shards (auto)" (string_of_int r.ring.rg_shards);
  Report.kv "rounds" (string_of_int r.ring.rg_rounds);
  Report.kv "events" (string_of_int r.ring.rg_events);
  Report.kv "packets delivered" (string_of_int r.ring.rg_received);
  Report.kv "wall ms" (Printf.sprintf "%.1f" (r.ring.rg_wall *. 1e3))
