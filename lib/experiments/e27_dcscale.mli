(** E27 — datacenter-scale simulation (Sec 4 at k=16).

    Runs a k=16 fat tree (320 switches, 1024 hosts) under a streaming
    Zipf/Pareto/Poisson flow mix ({!Workloads.Flowgen.install}, O(live
    flows) memory) at shard counts [1; 2; 4; 8] and checks conformance
    on [Parsim]'s order-independent arrival digest — the trace itself
    is too large to retain. Two further legs: adaptive-vs-static
    lookahead on sparse traffic (k=8, 16 senders at 500 us spacing)
    and a 1024-switch ring at the auto shard count. *)

val name : string

val k : int
val num_hosts : int
val hosts_per_pod : int

val default_shard_counts : int list ref
(** Shard counts {!run} sweeps by default ([[1; 2; 4; 8]]); the CLI's
    [--shards N] flag rewrites it to [[1; N]]. *)

val topo : unit -> Evcore.Topology.t
val addr_of_host : int -> Netcore.Ipv4_addr.t

val routing_program : Evcore.Program.spec
val switch_config : seed:int -> int -> Evcore.Event_switch.config

val dst_of : h:int -> int -> int
(** Rank -> destination host for sender [h]: ranks <= 100 stay in the
    sender's pod, the Zipf tail crosses pods. Shard-count independent. *)

(** Workload sizing (simulated time + rates). [until] leaves room for
    every flow started before [arrival_stop] to finish and drain. *)
type knobs = {
  until : Eventsim.Sim_time.t;
  arrival_stop : Eventsim.Sim_time.t;
  arrival_rate_per_host : float;
  rate_pps : float;  (** per-flow emission rate *)
  mean_packets : float;
  max_packets : int;
  concurrency_target : int;  (** min peak live flows expected; 0 = unchecked *)
}

val full_knobs : knobs
(** The headline configuration: ~233k flows, ~115k concurrently live
    at steady state, ~0.7M packets. *)

val scenario :
  ?shards:int ->
  ?backend:Eventsim.Sched_backend.t ->
  ?horizon:Parsim.horizon_mode ->
  ?record_digest:bool ->
  ?samples:int array array ->
  ?sources:Workloads.Flowgen.source_stats list ref ->
  seed:int ->
  knobs:knobs ->
  unit ->
  Parsim.config
(** The full streaming scenario as a [Parsim] config. [samples] (one
    row per shard, {!num_samples} columns) receives the per-shard live
    flow counts probed at fixed simulated instants; [sources]
    accumulates every host's {!Workloads.Flowgen.source_stats}. *)

val num_samples : int

(** {1 Golden digests}

    A scaled-down (still ~15k-flow, 320-switch) version of the
    workload whose arrival digest and merged-metrics MD5 are pinned in
    [test/golden/] — every backend x shard-count combination must
    reproduce the sequential-heap values byte-for-byte. *)

val golden_knobs : knobs
val golden_seeds : int list  (** [[42; 7]] *)

val golden_file : int -> string
(** Digest filename for a seed, e.g. ["e27_seed42.digest"]. *)

val golden_digests :
  ?backend:Eventsim.Sched_backend.t -> ?shards:int -> seed:int -> unit -> (string * string) list

type variant = {
  shards : int;
  rounds : int;
  events : int;
  cross_sent : int;
  flows : int;
  packets : int;
  received : int;
  ties : int;  (** {!Parsim.result.tie_arrivals}; must be 0 for the guarantee *)
  wall_s : float;
  mev_per_s : float;
  arrival_digest : string;
  metrics_digest : string;
  conformant : bool;
}

type sparse = {
  sp_shards : int;
  static_rounds : int;
  adaptive_rounds : int;
  static_wall : float;
  adaptive_wall : float;
  round_reduction : float;  (** static_rounds / adaptive_rounds *)
}

type ring_leg = {
  rg_switches : int;
  rg_shards : int;
  rg_rounds : int;
  rg_events : int;
  rg_received : int;
  rg_wall : float;
}

type result = {
  seed : int;
  knobs : knobs;
  variants : variant list;
  all_conformant : bool;
  peak_live : int;
  concurrency_ok : bool;
  sparse : sparse;
  ring : ring_leg;
}

val run_sparse : seed:int -> shards:int -> sparse
(** The sparse adaptive-vs-static leg alone (cheap; used by tests). *)

val run_ring : seed:int -> ring_leg
(** The 1024-switch ring leg alone. *)

val run :
  ?metrics:Obs.Metrics.t ->
  ?seed:int ->
  ?shard_counts:int list ->
  ?knobs:knobs ->
  unit ->
  result

val print : result -> unit
