type entry = {
  name : string;
  experiment_id : string;
  paper_artifact : string;
  run_and_print : metrics:Obs.Metrics.t option -> seed:int -> unit;
}

let all =
  [
    {
      name = E01_table1.name;
      experiment_id = "E1";
      paper_artifact = "Table 1";
      run_and_print = (fun ~metrics ~seed:_ -> E01_table1.print (E01_table1.run ?metrics ()));
    };
    {
      name = E02_table2.name;
      experiment_id = "E2";
      paper_artifact = "Table 2";
      run_and_print = (fun ~metrics:_ ~seed -> E02_table2.print (E02_table2.run ~seed ()));
    };
    {
      name = E02b_int.name;
      experiment_id = "E2b";
      paper_artifact = "Sec 3 INT report reduction";
      run_and_print = (fun ~metrics:_ ~seed -> E02b_int.print (E02b_int.run ~seed ()));
    };
    {
      name = E03_table3.name;
      experiment_id = "E3";
      paper_artifact = "Table 3";
      run_and_print = (fun ~metrics:_ ~seed:_ -> E03_table3.print (E03_table3.run ()));
    };
    {
      name = E04_linerate.name;
      experiment_id = "E4";
      paper_artifact = "Figure 4 / line rate";
      run_and_print = (fun ~metrics ~seed -> E04_linerate.print (E04_linerate.run ?metrics ~seed ()));
    };
    {
      name = E05_staleness.name;
      experiment_id = "E5";
      paper_artifact = "Figure 3 / staleness";
      run_and_print = (fun ~metrics ~seed -> E05_staleness.print (E05_staleness.run ?metrics ~seed ()));
    };
    {
      name = E06_microburst.name;
      experiment_id = "E6";
      paper_artifact = "Sec 2 microburst example";
      run_and_print = (fun ~metrics ~seed -> E06_microburst.print (E06_microburst.run ?metrics ~seed ()));
    };
    {
      name = E07_cms_reset.name;
      experiment_id = "E7";
      paper_artifact = "Sec 1/3 CMS reset";
      run_and_print = (fun ~metrics:_ ~seed -> E07_cms_reset.print (E07_cms_reset.run ~seed ()));
    };
    {
      name = E08_hula.name;
      experiment_id = "E8";
      paper_artifact = "Sec 3 congestion-aware forwarding";
      run_and_print = (fun ~metrics:_ ~seed -> E08_hula.print (E08_hula.run ~seed ()));
    };
    {
      name = E09_liveness.name;
      experiment_id = "E9";
      paper_artifact = "Sec 5 liveness monitoring";
      run_and_print = (fun ~metrics:_ ~seed -> E09_liveness.print (E09_liveness.run ~seed ()));
    };
    {
      name = E10_flowrate.name;
      experiment_id = "E10";
      paper_artifact = "Sec 5 time-windowed measurement";
      run_and_print = (fun ~metrics:_ ~seed -> E10_flowrate.print (E10_flowrate.run ~seed ()));
    };
    {
      name = E11_aqm.name;
      experiment_id = "E11";
      paper_artifact = "Sec 3/5 AQM fairness";
      run_and_print = (fun ~metrics:_ ~seed -> E11_aqm.print (E11_aqm.run ~seed ()));
    };
    {
      name = E12_frr.name;
      experiment_id = "E12";
      paper_artifact = "Sec 3/5 fast re-route";
      run_and_print = (fun ~metrics:_ ~seed -> E12_frr.print (E12_frr.run ~seed ()));
    };
    {
      name = E13_policer.name;
      experiment_id = "E13";
      paper_artifact = "Sec 3 policing";
      run_and_print = (fun ~metrics:_ ~seed -> E13_policer.print (E13_policer.run ~seed ()));
    };
    {
      name = E14_netcache.name;
      experiment_id = "E14";
      paper_artifact = "Sec 3 in-network computing";
      run_and_print = (fun ~metrics:_ ~seed -> E14_netcache.print (E14_netcache.run ~seed ()));
    };
    {
      name = E15_tofino.name;
      experiment_id = "E15";
      paper_artifact = "Sec 6 Tofino emulation";
      run_and_print = (fun ~metrics:_ ~seed -> E15_tofino.print (E15_tofino.run ~seed ()));
    };
    {
      name = E16_ablations.name;
      experiment_id = "E16";
      paper_artifact = "Sec 4 open questions (ablations)";
      run_and_print = (fun ~metrics:_ ~seed -> E16_ablations.print (E16_ablations.run ~seed ()));
    };
    {
      name = E17_migration.name;
      experiment_id = "E17";
      paper_artifact = "Table 2 state migration";
      run_and_print = (fun ~metrics:_ ~seed -> E17_migration.print (E17_migration.run ~seed ()));
    };
    {
      name = E18_p4_equivalence.name;
      experiment_id = "E18";
      paper_artifact = "programming-model fidelity (P4 source)";
      run_and_print = (fun ~metrics:_ ~seed -> E18_p4_equivalence.print (E18_p4_equivalence.run ~seed ()));
    };
    {
      name = E19_wfq.name;
      experiment_id = "E19";
      paper_artifact = "Sec 3 programmable scheduling (PIFO)";
      run_and_print = (fun ~metrics:_ ~seed -> E19_wfq.print (E19_wfq.run ~seed ()));
    };
    {
      name = E20_ecn.name;
      experiment_id = "E20";
      paper_artifact = "Sec 3 multi-bit ECN";
      run_and_print = (fun ~metrics:_ ~seed -> E20_ecn.print (E20_ecn.run ~seed ()));
    };
    {
      name = E21_chaos.name;
      experiment_id = "E21";
      paper_artifact = "Table 1 failure events under fault injection";
      run_and_print =
        (fun ~metrics ~seed -> E21_chaos.print (E21_chaos.run ?metrics ~seed ()));
    };
    {
      name = E22_resilience.name;
      experiment_id = "E22";
      paper_artifact = "Sec 4 robustness (supervision + degradation)";
      run_and_print =
        (fun ~metrics ~seed -> E22_resilience.print (E22_resilience.run ?metrics ~seed ()));
    };
    {
      name = E23_scale.name;
      experiment_id = "E23";
      paper_artifact = "Sec 4 distributed state (sharded execution)";
      run_and_print = (fun ~metrics ~seed -> E23_scale.print (E23_scale.run ?metrics ~seed ()));
    };
    {
      name = E24_efsm.name;
      experiment_id = "E24";
      paper_artifact = "Sec 3 stateful externs (per-flow EFSM, OPP contention)";
      run_and_print = (fun ~metrics ~seed -> E24_efsm.print (E24_efsm.run ?metrics ~seed ()));
    };
    {
      name = E25_cep.name;
      experiment_id = "E25";
      paper_artifact = "Sec 3 event-driven apps (complex-event patterns)";
      run_and_print = (fun ~metrics ~seed -> E25_cep.print (E25_cep.run ?metrics ~seed ()));
    };
    {
      name = E26_netupd.name;
      experiment_id = "E26";
      paper_artifact = "Sec 5 event-driven control (consistent updates)";
      run_and_print = (fun ~metrics ~seed -> E26_netupd.print (E26_netupd.run ?metrics ~seed ()));
    };
    {
      name = E27_dcscale.name;
      experiment_id = "E27";
      paper_artifact = "Sec 4 at datacenter scale (k=16, adaptive lookahead)";
      run_and_print = (fun ~metrics ~seed -> E27_dcscale.print (E27_dcscale.run ?metrics ~seed ()));
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
