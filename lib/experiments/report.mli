(** Plain-text table rendering for experiment output, shared by the
    bench harness and the CLI. *)

val section : string -> unit
(** Underlined heading. *)

val kv : string -> string -> unit
(** Aligned "key: value" line. *)

val table : headers:string list -> rows:string list list -> unit
(** Column-aligned table with a header rule. *)

val note : string -> unit
val blank : unit -> unit
val pct : float -> string
val f2 : float -> string
(** Two-decimal float. *)

val f1 : float -> string
val ns : float -> string
(** Nanoseconds with adaptive unit. *)

val time_ps : int -> string

val metrics_summary : Obs.Metrics.t -> unit
(** Render a registry snapshot as an aligned table, one row per
    series (used by [evsim --metrics] alongside the JSON export). *)
