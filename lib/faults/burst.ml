module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time

let attach ~sched ~rng ~stop ~plan ~pkts_per_burst ~pkt_bytes ~rate_gbps ~template ~inject
    ?(on_packet = fun () -> ()) () =
  if pkts_per_burst <= 0 then invalid_arg "Faults.Burst: pkts_per_burst must be positive";
  let gap = Sim_time.tx_time ~bytes:pkt_bytes ~gbps:rate_gbps in
  let idx = ref 0 in
  Schedule.drive ~sched ~rng ~stop plan (fun () ->
      for k = 0 to pkts_per_burst - 1 do
        let i = !idx in
        incr idx;
        ignore
          (Scheduler.schedule_after ~cls:"fault" sched ~delay:(k * gap) (fun () ->
               inject (template i);
               on_packet ()))
      done)
