(** Burst-storm generator: at each occurrence of a plan, inject a train
    of back-to-back packets into a target (typically
    [Event_switch.inject]), at line rate — the workload shape that
    drives shared-buffer occupancy into {!Tmgr.Buffer_pool} overflow
    and fires Buffer Overflow events at handlers. *)

val attach :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  stop:Eventsim.Sim_time.t ->
  plan:Schedule.plan ->
  pkts_per_burst:int ->
  pkt_bytes:int ->
  rate_gbps:float ->
  template:(int -> Netcore.Packet.t) ->
  inject:(Netcore.Packet.t -> unit) ->
  ?on_packet:(unit -> unit) ->
  unit ->
  unit
(** [template i] builds the [i]-th injected packet (global index across
    bursts). Packets of one burst are spaced by the serialization time
    of [pkt_bytes] at [rate_gbps]. *)
