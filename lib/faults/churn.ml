let attach ~sched ~rng ~stop ~plan ~ops ?(on_op = fun _ -> ()) () =
  if Array.length ops = 0 then invalid_arg "Faults.Churn: ops must be non-empty";
  Schedule.drive ~sched ~rng ~stop plan (fun () ->
      let name, op = ops.(Stats.Rng.int rng (Array.length ops)) in
      op ();
      on_op name)
