(** Control-plane churn: at each occurrence of a plan, run one op drawn
    uniformly from a labelled set — register writes via control events,
    handler de/re-registration, config pokes — against a live switch.
    The ops are plain closures so this module stays independent of the
    switch layer. *)

val attach :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  stop:Eventsim.Sim_time.t ->
  plan:Schedule.plan ->
  ops:(string * (unit -> unit)) array ->
  ?on_op:(string -> unit) ->
  unit ->
  unit
