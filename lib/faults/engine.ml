module Link = Tmgr.Link

type counts = { injected : int; absorbed : int; dropped : int }

type cell = {
  mutable c_injected : int;
  mutable c_absorbed : int;
  mutable c_dropped : int;
}

type t = {
  sched : Eventsim.Scheduler.t;
  rng : Stats.Rng.t;
  seed : int;
  stop : Eventsim.Sim_time.t;
  classes : (string, cell) Hashtbl.t;
  mutable link_list : (string * Link.t) list; (* registration order, newest first *)
}

let create ~sched ~seed ~stop () =
  {
    sched;
    rng = Stats.Rng.create ~seed;
    seed;
    stop;
    classes = Hashtbl.create 8;
    link_list = [];
  }

let seed t = t.seed
let stop t = t.stop

let cell t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> c
  | None ->
      let c = { c_injected = 0; c_absorbed = 0; c_dropped = 0 } in
      Hashtbl.add t.classes name c;
      c

let add_link_flaps t ~name ~plan ?down_for ?down_jitter link =
  let c = cell t name in
  let rng = Stats.Rng.split t.rng in
  Flapper.attach ~sched:t.sched ~rng ~stop:t.stop ~plan ?down_for ?down_jitter
    ~on_flap:(fun ~effective ->
      if effective then c.c_injected <- c.c_injected + 1
      else c.c_absorbed <- c.c_absorbed + 1)
    link;
  t.link_list <- (name, link) :: t.link_list

let add_perturbation t ~name ~config link =
  let c = cell t name in
  let rng = Stats.Rng.split t.rng in
  Perturb.attach ~rng
    ~on_decision:(fun verdict ->
      match verdict with
      | Link.Deliver -> c.c_absorbed <- c.c_absorbed + 1
      | Link.Drop ->
          c.c_injected <- c.c_injected + 1;
          c.c_dropped <- c.c_dropped + 1
      | Link.Delay _ | Link.Duplicate _ -> c.c_injected <- c.c_injected + 1)
    config link;
  t.link_list <- (name, link) :: t.link_list

let add_burst_storm t ~name ~plan ~pkts_per_burst ~pkt_bytes ~rate_gbps ~template ~inject =
  let c = cell t name in
  let rng = Stats.Rng.split t.rng in
  Burst.attach ~sched:t.sched ~rng ~stop:t.stop ~plan ~pkts_per_burst ~pkt_bytes ~rate_gbps
    ~template ~inject
    ~on_packet:(fun () -> c.c_injected <- c.c_injected + 1)
    ()

let add_handler_fault t ~name ~plan ~kind key =
  let c = cell t name in
  let rng = Stats.Rng.split t.rng in
  Handler_fault.attach ~sched:t.sched ~rng ~stop:t.stop ~plan ~kind ~key
    ~on:(fun ~armed ->
      if armed then c.c_injected <- c.c_injected + 1 else c.c_absorbed <- c.c_absorbed + 1)
    ()

let add_handler_crash t ~name ~plan key =
  add_handler_fault t ~name ~plan ~kind:Handler_fault.Crash key

let add_handler_slowdown t ~name ~plan ~steps key =
  add_handler_fault t ~name ~plan ~kind:(Handler_fault.Slowdown steps) key

let add_churn t ~name ~plan ~ops =
  let c = cell t name in
  let rng = Stats.Rng.split t.rng in
  Churn.attach ~sched:t.sched ~rng ~stop:t.stop ~plan ~ops
    ~on_op:(fun _ -> c.c_injected <- c.c_injected + 1)
    ()

let stats t =
  Hashtbl.fold
    (fun name c acc ->
      (name, { injected = c.c_injected; absorbed = c.c_absorbed; dropped = c.c_dropped })
      :: acc)
    t.classes []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_injected t =
  Hashtbl.fold (fun _ c acc -> acc + c.c_injected) t.classes 0

let links t = List.rev t.link_list

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    List.iter
      (fun (name, c) ->
        let labels = ("fault", name) :: labels in
        Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "faults.injected") c.injected;
        Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "faults.absorbed") c.absorbed;
        Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "faults.dropped") c.dropped)
      (stats t);
    List.iter
      (fun (name, link) ->
        let labels = ("fault", name) :: labels in
        let set n v = Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels n) v in
        set "faults.link.perturb_drops" (Link.perturb_drops link);
        set "faults.link.perturb_dups" (Link.perturb_dups link);
        set "faults.link.perturb_delays" (Link.perturb_delays link);
        set "faults.link.stale_notifications" (Link.stale_notifications link);
        set "faults.link.lost" (Link.lost link))
      (links t)
  end
