(** Deterministic, seeded fault-injection engine.

    One engine owns a master {!Stats.Rng} (split per fault process, in
    registration order, so timelines are reproducible and independent)
    and the per-fault-class bookkeeping:

    - [injected]: fault actions that took effect (a flap that found the
      link up, a non-[Deliver] perturbation verdict, a storm packet, a
      churn op);
    - [absorbed]: occurrences with no effect (flap while already down,
      perturbation that decided [Deliver]);
    - [dropped]: packets destroyed by the fault class itself
      (perturbation [Drop] verdicts).

    Downstream losses (overflow drops, in-flight loss on a failed link)
    are counted where they happen — traffic manager, link — and
    reconciled by the chaos experiment's conservation check. *)

type t

type counts = { injected : int; absorbed : int; dropped : int }

val create :
  sched:Eventsim.Scheduler.t -> seed:int -> stop:Eventsim.Sim_time.t -> unit -> t

val seed : t -> int
val stop : t -> Eventsim.Sim_time.t

val add_link_flaps :
  t ->
  name:string ->
  plan:Schedule.plan ->
  ?down_for:Eventsim.Sim_time.t ->
  ?down_jitter:Eventsim.Sim_time.t ->
  Tmgr.Link.t ->
  unit
(** Register a {!Flapper} on the link under fault class [name]. *)

val add_perturbation : t -> name:string -> config:Perturb.config -> Tmgr.Link.t -> unit
(** Register a {!Perturb} on the link under fault class [name]; the
    link's stale-notification counter is exported alongside. *)

val add_burst_storm :
  t ->
  name:string ->
  plan:Schedule.plan ->
  pkts_per_burst:int ->
  pkt_bytes:int ->
  rate_gbps:float ->
  template:(int -> Netcore.Packet.t) ->
  inject:(Netcore.Packet.t -> unit) ->
  unit
(** Register a {!Burst} storm under fault class [name]. *)

val add_churn :
  t -> name:string -> plan:Schedule.plan -> ops:(string * (unit -> unit)) array -> unit
(** Register a {!Churn} process under fault class [name]. *)

val add_handler_crash :
  t -> name:string -> plan:Schedule.plan -> Resil.Supervisor.key -> unit
(** Register a {!Handler_fault} crash injector on a supervised handler.
    Occurrences that find the handler quarantined (so the fault cannot
    take effect) are counted [absorbed]. *)

val add_handler_slowdown :
  t -> name:string -> plan:Schedule.plan -> steps:int -> Resil.Supervisor.key -> unit
(** Like {!add_handler_crash} but each armed invocation burns [steps]
    watchdog steps, exercising the budget-exhaustion trap. *)

val stats : t -> (string * counts) list
(** Per-fault-class counters, sorted by class name (deterministic). *)

val total_injected : t -> int
val links : t -> (string * Tmgr.Link.t) list
(** Links under perturbation or flapping, by fault-class name. *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Publish [faults.injected] / [faults.absorbed] / [faults.dropped]
    counters labelled by fault class, plus per-link perturbation and
    stale-notification counters. Idempotent; no-op when disabled. *)
