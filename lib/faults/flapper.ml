module Scheduler = Eventsim.Scheduler
module Link = Tmgr.Link

let attach ~sched ~rng ~stop ~plan ?(down_for = Eventsim.Sim_time.us 50) ?(down_jitter = 0)
    ?(on_flap = fun ~effective:_ -> ()) link =
  if down_for <= 0 then invalid_arg "Faults.Flapper: down_for must be positive";
  Schedule.drive ~sched ~rng ~stop plan (fun () ->
      if Link.is_up link then begin
        Link.fail link;
        on_flap ~effective:true;
        let outage =
          down_for + if down_jitter > 0 then Stats.Rng.int rng (down_jitter + 1) else 0
        in
        ignore
          (Scheduler.schedule_after ~cls:"fault" sched ~delay:outage (fun () ->
               if not (Link.is_up link) then Link.restore link))
      end
      else on_flap ~effective:false)
