(** Link flap schedules: take a link down at each occurrence of a plan
    and bring it back after a (possibly jittered) outage. Occurrences
    while the link is already down are absorbed (counted, no effect) —
    chaos-rate plans deliberately overlap outages. *)

val attach :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  stop:Eventsim.Sim_time.t ->
  plan:Schedule.plan ->
  ?down_for:Eventsim.Sim_time.t ->
  ?down_jitter:Eventsim.Sim_time.t ->
  ?on_flap:(effective:bool -> unit) ->
  Tmgr.Link.t ->
  unit
(** Defaults: 50 us outages, no jitter. The final restore is scheduled
    even when it lands after [stop], so the link ends the run up. *)
