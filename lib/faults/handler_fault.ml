type kind = Crash | Slowdown of int

let attach ~sched ~rng ~stop ~plan ~kind ~key ~on () =
  Schedule.drive ~sched ~rng ~stop plan (fun () ->
      (* A fault aimed at a handler that is already quarantined (or
         permanently failed) cannot take effect — the supervisor will
         not run the handler — so it is reported un-armed and the
         engine counts it absorbed. *)
      let armed = Resil.Supervisor.active key in
      if armed then begin
        match kind with
        | Crash -> Resil.Supervisor.inject_crash key ~n:1
        | Slowdown steps -> Resil.Supervisor.inject_slowdown key ~steps ~n:1
      end;
      on ~armed)
