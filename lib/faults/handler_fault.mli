(** Handler-level fault injectors: the chaos-side counterpart of the
    supervision layer.

    At each occurrence of the plan, the next invocation of the target
    handler (identified by its {!Resil.Supervisor.key}) is armed to
    either raise ([Crash]) or burn watchdog budget ([Slowdown]) — so
    the supervisor's trap, quarantine and backoff paths are exercised
    under a deterministic seeded timeline. *)

type kind =
  | Crash  (** next invocation raises {!Resil.Supervisor.Injected_crash} *)
  | Slowdown of int
      (** next invocation consumes this many watchdog steps before the
          handler body runs *)

val attach :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  stop:Eventsim.Sim_time.t ->
  plan:Schedule.plan ->
  kind:kind ->
  key:Resil.Supervisor.key ->
  on:(armed:bool -> unit) ->
  unit ->
  unit
(** [on ~armed] fires at every plan occurrence; [armed = false] means
    the target was quarantined / permanently failed at that instant and
    the fault could not take effect (the engine counts it absorbed). *)
