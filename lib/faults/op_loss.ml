type t = {
  streams : Stats.Rng.t array;
  drop_p : float;
  start : int;
  stop : int;
  mutable drawn : int;
  mutable dropped : int;
}

let create ~seed ~targets ~drop_p ?(start = 0) ?(stop = max_int) () =
  if drop_p < 0. || drop_p > 1. then invalid_arg "Op_loss.create: drop_p out of [0,1]";
  if targets <= 0 then invalid_arg "Op_loss.create: targets must be positive";
  {
    (* One stream per target so loss decisions for a target depend only
       on that target's own submission history — a sharded replica that
       only drives a subset of targets still sees the same verdicts. *)
    streams = Array.init targets (fun i -> Stats.Rng.create ~seed:(seed + (0x9e3779b9 * (i + 1))));
    drop_p;
    start;
    stop;
    drawn = 0;
    dropped = 0;
  }

let lost t ~target ~now =
  if target < 0 || target >= Array.length t.streams then invalid_arg "Op_loss.lost: bad target";
  (* Draw unconditionally so a window change never shifts the stream. *)
  let u = Stats.Rng.float t.streams.(target) in
  t.drawn <- t.drawn + 1;
  let hit = now >= t.start && now < t.stop && u < t.drop_p in
  if hit then t.dropped <- t.dropped + 1;
  hit

let drawn t = t.drawn
let dropped t = t.dropped
