(** Deterministic control-plane op loss.

    A per-target Bernoulli oracle for "did this control-channel
    submission get lost in the churn?". Each target (switch) draws from
    its own seeded stream, consumed in that target's submission order —
    so verdicts are a pure function of [(seed, target, submission
    index)], independent of how targets interleave globally. That is
    what lets replicated controllers (one per parsim shard) agree on
    every loss without communicating, and keeps chaos runs
    byte-identical across shard counts.

    Losses only *occur* inside the [\[start, stop)] window, but the
    stream is drawn on every query so narrowing the window never shifts
    later verdicts. *)

type t

val create :
  seed:int -> targets:int -> drop_p:float ->
  ?start:Eventsim.Sim_time.t -> ?stop:Eventsim.Sim_time.t -> unit -> t
(** Defaults: window = always ([start = 0], [stop = max_int]). *)

val lost : t -> target:int -> now:Eventsim.Sim_time.t -> bool
(** Verdict for the next submission to [target] at time [now]; consumes
    one draw from the target's stream. *)

val drawn : t -> int
(** Total queries. *)

val dropped : t -> int
(** Queries answered [true]. *)
