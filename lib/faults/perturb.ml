type config = {
  drop_p : float;
  dup_p : float;
  max_extra_copies : int;
  delay_p : float;
  max_extra_delay : Eventsim.Sim_time.t;
}

let none =
  { drop_p = 0.; dup_p = 0.; max_extra_copies = 1; delay_p = 0.; max_extra_delay = 0 }

let lossy ?(drop_p = 0.01) ?(dup_p = 0.005) ?(delay_p = 0.02)
    ?(max_extra_delay = Eventsim.Sim_time.us 5) () =
  { drop_p; dup_p; max_extra_copies = 1; delay_p; max_extra_delay }

let check_config c =
  if
    c.drop_p < 0. || c.dup_p < 0. || c.delay_p < 0.
    || c.drop_p +. c.dup_p +. c.delay_p > 1.
  then invalid_arg "Faults.Perturb: probabilities must be >= 0 and sum to <= 1";
  if c.max_extra_copies < 1 then invalid_arg "Faults.Perturb: max_extra_copies < 1"

let is_none c = c.drop_p = 0. && c.dup_p = 0. && c.delay_p = 0.

let fate ~rng ?(on_decision = fun _ -> ()) config ~from_a:_ _pkt =
  let u = if is_none config then 1. else Stats.Rng.float rng in
  let verdict =
    if u >= 1. then Tmgr.Link.Deliver
    else if u < config.drop_p then Tmgr.Link.Drop
    else if u < config.drop_p +. config.dup_p then
      Tmgr.Link.Duplicate (Stats.Rng.int_in rng 1 config.max_extra_copies)
    else if u < config.drop_p +. config.dup_p +. config.delay_p && config.max_extra_delay > 0
    then Tmgr.Link.Delay (Stats.Rng.int_in rng 1 config.max_extra_delay)
    else Tmgr.Link.Deliver
  in
  on_decision verdict;
  verdict

let attach ~rng ?on_decision config link =
  check_config config;
  Tmgr.Link.set_perturb link (fate ~rng ?on_decision config)
