(** Per-packet perturbations at link endpoints: seeded drop, duplicate
    and delay/reorder decisions, compiled into a {!Tmgr.Link.fate}
    function for {!Tmgr.Link.set_perturb}. *)

type config = {
  drop_p : float;  (** loss probability *)
  dup_p : float;  (** duplication probability *)
  max_extra_copies : int;  (** copies per duplication, uniform in [1, n] *)
  delay_p : float;  (** extra-latency probability *)
  max_extra_delay : Eventsim.Sim_time.t;
      (** uniform in [1, d]; exceeding the inter-packet gap reorders *)
}

val none : config
(** All probabilities zero: every packet gets [Deliver]. *)

val lossy : ?drop_p:float -> ?dup_p:float -> ?delay_p:float -> ?max_extra_delay:Eventsim.Sim_time.t -> unit -> config

val fate :
  rng:Stats.Rng.t ->
  ?on_decision:(Tmgr.Link.fate -> unit) ->
  config ->
  from_a:bool ->
  Netcore.Packet.t ->
  Tmgr.Link.fate
(** One uniform draw per packet partitions [\[0,1)] into
    drop | duplicate | delay | deliver bands; [on_decision] observes
    every verdict (for injected/absorbed accounting). An all-zero
    config short-circuits to [Deliver] without touching the RNG, so a
    "faults disabled" hook costs no draw. The config is validated by
    {!attach}, not per packet. *)

val attach :
  rng:Stats.Rng.t -> ?on_decision:(Tmgr.Link.fate -> unit) -> config -> Tmgr.Link.t -> unit
(** Install [fate] on the link. *)
