type t = Flaky_links | Burst_storm | Churn

let all = [ Flaky_links; Burst_storm; Churn ]

let to_string = function
  | Flaky_links -> "flaky-links"
  | Burst_storm -> "burst-storm"
  | Churn -> "churn"

let of_string s =
  match String.lowercase_ascii s with
  | "flaky-links" | "flaky_links" | "flaky" -> Some Flaky_links
  | "burst-storm" | "burst_storm" | "burst" -> Some Burst_storm
  | "churn" -> Some Churn
  | _ -> None

let names = List.map to_string all
