type t = Flaky_links | Burst_storm | Churn | Handler_faults

let all = [ Flaky_links; Burst_storm; Churn; Handler_faults ]

let to_string = function
  | Flaky_links -> "flaky-links"
  | Burst_storm -> "burst-storm"
  | Churn -> "churn"
  | Handler_faults -> "handler-faults"

let of_string s =
  match String.lowercase_ascii s with
  | "flaky-links" | "flaky_links" | "flaky" -> Some Flaky_links
  | "burst-storm" | "burst_storm" | "burst" -> Some Burst_storm
  | "churn" -> Some Churn
  | "handler-faults" | "handler_faults" | "handlers" -> Some Handler_faults
  | _ -> None

let names = List.map to_string all
