(** Named chaos profiles for the CLI and experiments. *)

type t = Flaky_links | Burst_storm | Churn | Handler_faults

val all : t list
val to_string : t -> string
val of_string : string -> t option
val names : string list
