module Scheduler = Eventsim.Scheduler

type plan =
  | Periodic of {
      start : Eventsim.Sim_time.t;
      period : Eventsim.Sim_time.t;
      jitter : Eventsim.Sim_time.t;
    }
  | Poisson of { start : Eventsim.Sim_time.t; rate_per_sec : float }
  | Trace of Eventsim.Sim_time.t list

let periodic ?start ?(jitter = 0) period =
  let start = match start with Some s -> s | None -> period in
  Periodic { start; period; jitter }

let ps_of_sec s = max 1 (int_of_float (s *. 1e12))

let drive ~sched ~rng ~stop plan f =
  match plan with
  | Trace times ->
      List.iter
        (fun at ->
          if at < stop && at >= Scheduler.now sched then
            ignore (Scheduler.schedule ~cls:"fault" sched ~at f))
        (List.sort_uniq compare times)
  | Periodic { start; period; jitter } ->
      if period <= 0 then invalid_arg "Faults.Schedule: period must be positive";
      let rec arm at =
        if at < stop then
          ignore
            (Scheduler.schedule ~cls:"fault" sched ~at (fun () ->
                 f ();
                 let j = if jitter > 0 then Stats.Rng.int rng (jitter + 1) else 0 in
                 arm (at + period + j)))
      in
      arm (max start (Scheduler.now sched))
  | Poisson { start; rate_per_sec } ->
      if rate_per_sec <= 0. then invalid_arg "Faults.Schedule: rate must be positive";
      let rec arm at =
        if at < stop then
          ignore
            (Scheduler.schedule ~cls:"fault" sched ~at (fun () ->
                 f ();
                 arm (at + ps_of_sec (Stats.Dist.exponential rng ~rate:rate_per_sec))))
      in
      arm (max start (Scheduler.now sched))
