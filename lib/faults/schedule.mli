(** When faults happen: seeded occurrence processes.

    A plan turns into a chain of scheduler events firing a callback at
    each occurrence strictly before [stop]. All randomness is drawn
    from the caller's {!Stats.Rng} in firing order, so a fixed seed
    gives a byte-identical fault timeline. *)

type plan =
  | Periodic of {
      start : Eventsim.Sim_time.t;
      period : Eventsim.Sim_time.t;
      jitter : Eventsim.Sim_time.t;
          (** uniform extra gap in [0, jitter] added per period *)
    }
  | Poisson of { start : Eventsim.Sim_time.t; rate_per_sec : float }
      (** first occurrence at [start], then exponential gaps *)
  | Trace of Eventsim.Sim_time.t list
      (** explicit deterministic occurrence times *)

val periodic : ?start:Eventsim.Sim_time.t -> ?jitter:Eventsim.Sim_time.t -> Eventsim.Sim_time.t -> plan
(** [periodic ~start ~jitter period]; [start] defaults to one period,
    [jitter] to 0. *)

val drive :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  stop:Eventsim.Sim_time.t ->
  plan ->
  (unit -> unit) ->
  unit
(** Arrange the callback at every occurrence of the plan in
    [\[now, stop)]. Trace times already in the past are skipped. *)
