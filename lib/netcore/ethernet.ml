type t = { mutable dst : Mac_addr.t; mutable src : Mac_addr.t; mutable ethertype : int }

let size = 14
let ethertype_ipv4 = 0x0800
let ethertype_event = 0x88b7
let make ~dst ~src ~ethertype = { dst; src; ethertype = ethertype land 0xffff }

(* In-place refill for arena-recycled packets. *)
let set t ~dst ~src ~ethertype =
  t.dst <- dst;
  t.src <- src;
  t.ethertype <- ethertype land 0xffff

let write_mac w (m : Mac_addr.t) =
  let v = Mac_addr.to_int m in
  Cursor.u16 w (v lsr 32);
  Cursor.u32 w (v land 0xffffffff)

let read_mac r =
  let hi = Cursor.read_u16 r in
  let lo = Cursor.read_u32 r in
  Mac_addr.of_int ((hi lsl 32) lor lo)

let write w t =
  write_mac w t.dst;
  write_mac w t.src;
  Cursor.u16 w t.ethertype

let read r =
  let dst = read_mac r in
  let src = read_mac r in
  let ethertype = Cursor.read_u16 r in
  { dst; src; ethertype }

let equal a b = Mac_addr.equal a.dst b.dst && Mac_addr.equal a.src b.src && a.ethertype = b.ethertype

let pp ppf t =
  Format.fprintf ppf "eth %a -> %a type=0x%04x" Mac_addr.pp t.src Mac_addr.pp t.dst t.ethertype
