(** Ethernet II header. *)

(** Fields are mutable only for in-place reuse by
    {!Packet_arena}-recycled packets; treat received headers as
    read-only. *)
type t = { mutable dst : Mac_addr.t; mutable src : Mac_addr.t; mutable ethertype : int }

val size : int
(** 14 bytes (no VLAN tag). *)

val ethertype_ipv4 : int
val ethertype_event : int
(** Private ethertype used by the simulated architecture for internally
    generated control/event packets (probes, echoes, reports). *)

val make : dst:Mac_addr.t -> src:Mac_addr.t -> ethertype:int -> t

val set : t -> dst:Mac_addr.t -> src:Mac_addr.t -> ethertype:int -> unit
(** Refill every field in place, as {!make} would — allocation-free. *)

val write : Cursor.writer -> t -> unit
val read : Cursor.reader -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
