type t = {
  mutable dscp : int;
  mutable ecn : int;
  mutable total_len : int;
  mutable ident : int;
  mutable ttl : int;
  mutable proto : int;
  mutable src : Ipv4_addr.t;
  mutable dst : Ipv4_addr.t;
}

let size = 20
let proto_tcp = 6
let proto_udp = 17

let make ?(dscp = 0) ?(ecn = 0) ?(ident = 0) ?(ttl = 64) ~proto ~src ~dst ~payload_len () =
  {
    dscp = dscp land 0x3f;
    ecn = ecn land 0x3;
    total_len = size + payload_len;
    ident = ident land 0xffff;
    ttl = ttl land 0xff;
    proto = proto land 0xff;
    src;
    dst;
  }

(* In-place refill for arena-recycled packets: same masking as [make],
   zero allocation. *)
let set ?(dscp = 0) ?(ecn = 0) ?(ident = 0) ?(ttl = 64) t ~proto ~src ~dst ~payload_len =
  t.dscp <- dscp land 0x3f;
  t.ecn <- ecn land 0x3;
  t.total_len <- size + payload_len;
  t.ident <- ident land 0xffff;
  t.ttl <- ttl land 0xff;
  t.proto <- proto land 0xff;
  t.src <- src;
  t.dst <- dst

let checksum buf ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 buf !i lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let write w t =
  let start = Cursor.pos_w w in
  Cursor.u8 w ((4 lsl 4) lor 5);
  Cursor.u8 w ((t.dscp lsl 2) lor t.ecn);
  Cursor.u16 w t.total_len;
  Cursor.u16 w t.ident;
  Cursor.u16 w 0x4000 (* don't fragment *);
  Cursor.u8 w t.ttl;
  Cursor.u8 w t.proto;
  Cursor.u16 w 0 (* checksum placeholder *);
  Cursor.u32 w (Ipv4_addr.to_int t.src);
  Cursor.u32 w (Ipv4_addr.to_int t.dst);
  let csum = checksum (Cursor.contents w) ~off:start ~len:size in
  Bytes.set_uint16_be (Cursor.contents w) (start + 10) csum

let read r =
  let start = Cursor.pos_r r in
  let vihl = Cursor.read_u8 r in
  if vihl lsr 4 <> 4 then failwith "Ipv4.read: not IPv4";
  let ihl = (vihl land 0xf) * 4 in
  if ihl <> size then failwith "Ipv4.read: options unsupported";
  let tos = Cursor.read_u8 r in
  let total_len = Cursor.read_u16 r in
  let ident = Cursor.read_u16 r in
  let _flags = Cursor.read_u16 r in
  let ttl = Cursor.read_u8 r in
  let proto = Cursor.read_u8 r in
  let _csum = Cursor.read_u16 r in
  let src = Ipv4_addr.of_int (Cursor.read_u32 r) in
  let dst = Ipv4_addr.of_int (Cursor.read_u32 r) in
  (* Summing the header including the stored checksum must give zero
     (i.e. the one's-complement of the sum-without-checksum). *)
  if checksum (Cursor.buffer r) ~off:start ~len:size <> 0 then
    failwith "Ipv4.read: bad checksum";
  { dscp = tos lsr 2; ecn = tos land 3; total_len; ident; ttl; proto; src; dst }

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }
let with_ecn t ecn = { t with ecn = ecn land 3 }

let equal a b =
  a.dscp = b.dscp && a.ecn = b.ecn && a.total_len = b.total_len && a.ident = b.ident
  && a.ttl = b.ttl && a.proto = b.proto && Ipv4_addr.equal a.src b.src
  && Ipv4_addr.equal a.dst b.dst

let pp ppf t =
  Format.fprintf ppf "ipv4 %a -> %a proto=%d len=%d ttl=%d" Ipv4_addr.pp t.src Ipv4_addr.pp
    t.dst t.proto t.total_len t.ttl
