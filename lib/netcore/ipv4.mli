(** IPv4 header (no options). *)

(** Fields are mutable only for in-place reuse by
    {!Packet_arena}-recycled packets; treat received headers as
    read-only. *)
type t = {
  mutable dscp : int; (* 6 bits *)
  mutable ecn : int; (* 2 bits *)
  mutable total_len : int; (* header + payload, bytes *)
  mutable ident : int;
  mutable ttl : int;
  mutable proto : int;
  mutable src : Ipv4_addr.t;
  mutable dst : Ipv4_addr.t;
}

val size : int
(** 20 bytes. *)

val proto_tcp : int
val proto_udp : int

val make :
  ?dscp:int -> ?ecn:int -> ?ident:int -> ?ttl:int -> proto:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> payload_len:int -> unit -> t

val set :
  ?dscp:int -> ?ecn:int -> ?ident:int -> ?ttl:int -> t -> proto:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> payload_len:int -> unit
(** Refill every field in place, as {!make} would — allocation-free. *)

val checksum : bytes -> off:int -> len:int -> int
(** Internet checksum over [len] bytes at [off]. *)

val write : Cursor.writer -> t -> unit
(** Writes the header including a correct checksum. *)

val read : Cursor.reader -> t
(** Raises [Failure] if the checksum does not verify. *)

val decrement_ttl : t -> t option
(** [None] when the TTL would reach zero (packet must be dropped). *)

val with_ecn : t -> int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
