type l4 = Udp of Udp.t | Tcp of Tcp.t | No_l4
type payload = ..
type payload += Opaque

type meta = {
  mutable ingress_port : int;
  mutable flow_id : int;
  mutable priority : int;
  mutable qid : int;
  mutable mark : int;
  enq_meta : int array;
  deq_meta : int array;
}

type t = {
  uid : int;
  eth : Ethernet.t;
  ip : Ipv4.t option;
  l4 : l4;
  mutable payload : payload;
  payload_len : int;
  created_at : int;
  meta : meta;
}

let meta_slots = 4

(* Atomic so uids stay unique when several simulation shards (OCaml
   domains) create packets concurrently. *)
let next_uid = Atomic.make 0

let fresh_meta () =
  {
    ingress_port = -1;
    flow_id = 0;
    priority = 0;
    qid = 0;
    mark = 0;
    enq_meta = Array.make meta_slots 0;
    deq_meta = Array.make meta_slots 0;
  }

let create ?ip ?(l4 = No_l4) ?(payload = Opaque) ?(payload_len = 0) ?(created_at = 0) ~eth () =
  let uid = 1 + Atomic.fetch_and_add next_uid 1 in
  { uid; eth; ip; l4; payload; payload_len; created_at; meta = fresh_meta () }

let udp_packet ?(created_at = 0) ?(payload = Opaque) ~src ~dst ~src_port ~dst_port ~payload_len () =
  let udp = Udp.make ~src_port ~dst_port ~payload_len in
  let ip =
    Ipv4.make ~proto:Ipv4.proto_udp ~src ~dst ~payload_len:(Udp.size + payload_len) ()
  in
  let eth =
    Ethernet.make
      ~dst:(Mac_addr.host (Ipv4_addr.to_int dst land 0xffff))
      ~src:(Mac_addr.host (Ipv4_addr.to_int src land 0xffff))
      ~ethertype:Ethernet.ethertype_ipv4
  in
  create ~ip ~l4:(Udp udp) ~payload ~payload_len ~created_at ~eth ()

let tcp_packet ?(created_at = 0) ?(payload = Opaque) ?(flags = 0) ?(seq = 0) ?(ack = 0) ~src ~dst
    ~src_port ~dst_port ~payload_len () =
  let tcp = Tcp.make ~src_port ~dst_port ~seq ~ack ~flags () in
  let ip =
    Ipv4.make ~proto:Ipv4.proto_tcp ~src ~dst ~payload_len:(Tcp.size + payload_len) ()
  in
  let eth =
    Ethernet.make
      ~dst:(Mac_addr.host (Ipv4_addr.to_int dst land 0xffff))
      ~src:(Mac_addr.host (Ipv4_addr.to_int src land 0xffff))
      ~ethertype:Ethernet.ethertype_ipv4
  in
  create ~ip ~l4:(Tcp tcp) ~payload ~payload_len ~created_at ~eth ()

let l4_size = function Udp _ -> Udp.size | Tcp _ -> Tcp.size | No_l4 -> 0

let len t =
  Ethernet.size + (match t.ip with Some _ -> Ipv4.size | None -> 0) + l4_size t.l4 + t.payload_len

let flow t =
  match t.ip with
  | None -> None
  | Some ip ->
      let src_port, dst_port =
        match t.l4 with
        | Udp u -> (u.Udp.src_port, u.Udp.dst_port)
        | Tcp tc -> (tc.Tcp.src_port, tc.Tcp.dst_port)
        | No_l4 -> (0, 0)
      in
      Some (Flow.make ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~proto:ip.Ipv4.proto ~src_port ~dst_port ())

let flow_exn t =
  match flow t with Some f -> f | None -> invalid_arg "Packet.flow_exn: no IP header"

let with_meta_of dst src =
  dst.meta.ingress_port <- src.meta.ingress_port;
  dst.meta.flow_id <- src.meta.flow_id;
  dst.meta.priority <- src.meta.priority;
  dst.meta.qid <- src.meta.qid;
  dst.meta.mark <- src.meta.mark;
  Array.blit src.meta.enq_meta 0 dst.meta.enq_meta 0 meta_slots;
  Array.blit src.meta.deq_meta 0 dst.meta.deq_meta 0 meta_slots

let clone_for_forward ?eth ?ip t =
  let uid = 1 + Atomic.fetch_and_add next_uid 1 in
  let copy =
    {
      t with
      uid;
      eth = (match eth with Some e -> e | None -> t.eth);
      ip = (match ip with Some i -> Some i | None -> t.ip);
      meta = fresh_meta ();
    }
  in
  with_meta_of copy t;
  copy

let pp ppf t =
  match t.ip with
  | Some ip -> Format.fprintf ppf "pkt#%d %a len=%d" t.uid Ipv4.pp ip (len t)
  | None -> Format.fprintf ppf "pkt#%d %a len=%d" t.uid Ethernet.pp t.eth (len t)
