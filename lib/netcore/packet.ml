type l4 = Udp of Udp.t | Tcp of Tcp.t | No_l4
type payload = ..
type payload += Opaque

type meta = {
  mutable ingress_port : int;
  mutable flow_id : int;
  mutable priority : int;
  mutable qid : int;
  mutable mark : int;
  mutable version : int;
  enq_meta : int array;
  deq_meta : int array;
}

(* All fields are mutable so a {!Packet_arena} can recycle packet
   records in place; outside arena reuse they are set once at creation
   and treated as immutable. *)
type t = {
  mutable uid : int;
  mutable eth : Ethernet.t;
  mutable ip : Ipv4.t option;
  mutable l4 : l4;
  mutable payload : payload;
  mutable payload_len : int;
  mutable created_at : int;
  meta : meta;
}

let meta_slots = 4

(* Atomic so uids stay unique when several simulation shards (OCaml
   domains) create packets concurrently. *)
let next_uid = Atomic.make 0
let fresh_uid () = 1 + Atomic.fetch_and_add next_uid 1

let fresh_meta () =
  {
    ingress_port = -1;
    flow_id = 0;
    priority = 0;
    qid = 0;
    mark = 0;
    version = 0;
    enq_meta = Array.make meta_slots 0;
    deq_meta = Array.make meta_slots 0;
  }

let create ?ip ?(l4 = No_l4) ?(payload = Opaque) ?(payload_len = 0) ?(created_at = 0) ~eth () =
  let uid = fresh_uid () in
  { uid; eth; ip; l4; payload; payload_len; created_at; meta = fresh_meta () }

(* Distinguished "no packet" sentinel, identity-checked. Built as a
   literal so it consumes no uid (uid numbering stays reproducible). *)
let nil =
  {
    uid = -1;
    eth = Ethernet.make ~dst:(Mac_addr.host 0) ~src:(Mac_addr.host 0) ~ethertype:0;
    ip = None;
    l4 = No_l4;
    payload = Opaque;
    payload_len = 0;
    created_at = 0;
    meta = fresh_meta ();
  }

let is_nil t = t == nil

let udp_packet ?(created_at = 0) ?(payload = Opaque) ~src ~dst ~src_port ~dst_port ~payload_len () =
  let udp = Udp.make ~src_port ~dst_port ~payload_len in
  let ip =
    Ipv4.make ~proto:Ipv4.proto_udp ~src ~dst ~payload_len:(Udp.size + payload_len) ()
  in
  let eth =
    Ethernet.make
      ~dst:(Mac_addr.host (Ipv4_addr.to_int dst land 0xffff))
      ~src:(Mac_addr.host (Ipv4_addr.to_int src land 0xffff))
      ~ethertype:Ethernet.ethertype_ipv4
  in
  create ~ip ~l4:(Udp udp) ~payload ~payload_len ~created_at ~eth ()

let tcp_packet ?(created_at = 0) ?(payload = Opaque) ?(flags = 0) ?(seq = 0) ?(ack = 0) ~src ~dst
    ~src_port ~dst_port ~payload_len () =
  let tcp = Tcp.make ~src_port ~dst_port ~seq ~ack ~flags () in
  let ip =
    Ipv4.make ~proto:Ipv4.proto_tcp ~src ~dst ~payload_len:(Tcp.size + payload_len) ()
  in
  let eth =
    Ethernet.make
      ~dst:(Mac_addr.host (Ipv4_addr.to_int dst land 0xffff))
      ~src:(Mac_addr.host (Ipv4_addr.to_int src land 0xffff))
      ~ethertype:Ethernet.ethertype_ipv4
  in
  create ~ip ~l4:(Tcp tcp) ~payload ~payload_len ~created_at ~eth ()

let l4_size = function Udp _ -> Udp.size | Tcp _ -> Tcp.size | No_l4 -> 0

let len t =
  Ethernet.size + (match t.ip with Some _ -> Ipv4.size | None -> 0) + l4_size t.l4 + t.payload_len

let flow t =
  match t.ip with
  | None -> None
  | Some ip ->
      let src_port, dst_port =
        match t.l4 with
        | Udp u -> (u.Udp.src_port, u.Udp.dst_port)
        | Tcp tc -> (tc.Tcp.src_port, tc.Tcp.dst_port)
        | No_l4 -> (0, 0)
      in
      Some (Flow.make ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~proto:ip.Ipv4.proto ~src_port ~dst_port ())

let flow_exn t =
  match flow t with Some f -> f | None -> invalid_arg "Packet.flow_exn: no IP header"

(* Same key {!Flow.hash_addresses} feeds to the mixer, without building
   the flow record, the port tuple, or the option on the way — the
   per-packet hashing hot path must not allocate. [-1] (impossible for
   a real key: both addresses are non-negative) marks "no IP header". *)
let flow_key t =
  match t.ip with
  | None -> -1
  | Some ip -> (Ipv4_addr.to_int ip.Ipv4.src lsl 16) lxor Ipv4_addr.to_int ip.Ipv4.dst

let with_meta_of dst src =
  dst.meta.ingress_port <- src.meta.ingress_port;
  dst.meta.flow_id <- src.meta.flow_id;
  dst.meta.priority <- src.meta.priority;
  dst.meta.qid <- src.meta.qid;
  dst.meta.mark <- src.meta.mark;
  dst.meta.version <- src.meta.version;
  Array.blit src.meta.enq_meta 0 dst.meta.enq_meta 0 meta_slots;
  Array.blit src.meta.deq_meta 0 dst.meta.deq_meta 0 meta_slots

let clone_for_forward ?eth ?ip t =
  let uid = fresh_uid () in
  let copy =
    {
      t with
      uid;
      eth = (match eth with Some e -> e | None -> t.eth);
      ip = (match ip with Some i -> Some i | None -> t.ip);
      meta = fresh_meta ();
    }
  in
  with_meta_of copy t;
  copy

let pp ppf t =
  match t.ip with
  | Some ip -> Format.fprintf ppf "pkt#%d %a len=%d" t.uid Ipv4.pp ip (len t)
  | None -> Format.fprintf ppf "pkt#%d %a len=%d" t.uid Ethernet.pp t.eth (len t)
