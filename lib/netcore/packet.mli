(** The simulator's packet representation.

    Headers are structured records (serializable byte-for-byte via
    {!Frame}); application payloads are an extensible variant so that
    each application can define its own in-network message types
    (probes, echoes, cache requests) without [netcore] knowing about
    them. [payload_len] is authoritative for wire length regardless of
    the payload constructor. *)

type l4 = Udp of Udp.t | Tcp of Tcp.t | No_l4

type payload = ..
type payload += Opaque
(** Uninterpreted payload bytes (all zeros when serialized). *)

(** Per-packet metadata bus. [enq_meta] and [deq_meta] are the slots the
    paper's ingress logic fills so that enqueue/dequeue event handlers
    receive per-packet context; 4 slots of 32 bits each, matching a
    narrow hardware metadata bus. *)
type meta = {
  mutable ingress_port : int;
  mutable flow_id : int;
  mutable priority : int;  (** PIFO rank / scheduling priority. *)
  mutable qid : int;  (** output queue id chosen by ingress *)
  mutable mark : int;  (** application marking, e.g. multi-bit ECN *)
  mutable version : int;
      (** policy version the packet entered the network under (stamped
          at the ingress edge by [Netupd.Agent]); 0 = unversioned *)
  enq_meta : int array;
  deq_meta : int array;
}

(** All fields are mutable so {!Packet_arena} can recycle packet
    records in place (and data-plane programs rewrite payloads in
    flight, as P4 programs rewrite headers). Outside arena reuse, the
    header fields are set once at creation and must be treated as
    immutable. *)
type t = {
  mutable uid : int;  (** unique per-process packet id *)
  mutable eth : Ethernet.t;
  mutable ip : Ipv4.t option;
  mutable l4 : l4;
  mutable payload : payload;
  mutable payload_len : int;
  mutable created_at : int;  (** creation timestamp, ps *)
  meta : meta;
}

val meta_slots : int
(** Number of 32-bit slots in [enq_meta]/[deq_meta] (4). *)

val fresh_uid : unit -> int
(** Next packet uid from the global counter — what {!create} assigns.
    Exposed for {!Packet_arena}, which recycles records in place but
    must still give each logical packet a distinct identity. *)

val create :
  ?ip:Ipv4.t -> ?l4:l4 -> ?payload:payload -> ?payload_len:int -> ?created_at:int ->
  eth:Ethernet.t -> unit -> t

val nil : t
(** Distinguished "no packet" sentinel (identity-checked with
    {!is_nil}); lets hot-path slots hold a plain [t] instead of a
    [t option]. Never inject, enqueue, or mutate it. *)

val is_nil : t -> bool

val udp_packet :
  ?created_at:int -> ?payload:payload -> src:Ipv4_addr.t -> dst:Ipv4_addr.t ->
  src_port:int -> dst_port:int -> payload_len:int -> unit -> t
(** Convenience constructor for the common workload packet, with MACs
    derived from the addresses. *)

val tcp_packet :
  ?created_at:int -> ?payload:payload -> ?flags:int -> ?seq:int -> ?ack:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> src_port:int -> dst_port:int ->
  payload_len:int -> unit -> t
(** Like {!udp_packet} but with a TCP header carrying real [flags]
    (see {!Tcp.flag_syn} etc.) — what flag-driven stateful programs
    parse. *)

val len : t -> int
(** Wire length in bytes (headers + payload). *)

val flow : t -> Flow.t option
(** Five-tuple, when the packet has an IP header. *)

val flow_exn : t -> Flow.t

val flow_key : t -> int
(** The address key {!Flow.hash_addresses} mixes — i.e.
    [Hashes.mix64 (flow_key t)] equals [Flow.hash_addresses f] for the
    packet's flow [f] — computed without allocating the flow record.
    [-1] when the packet has no IP header. *)

val with_meta_of : t -> t -> unit
(** [with_meta_of dst src] copies the metadata bus of [src] into [dst]
    (used when rewriting headers while forwarding). *)

val clone_for_forward : ?eth:Ethernet.t -> ?ip:Ipv4.t -> t -> t
(** A copy with a fresh uid sharing payload, for multicast fan-out. *)

val pp : Format.formatter -> t -> unit
