(* Arena allocator for packets with free-list recycling.

   Traffic sources that create and retire packets at line rate dominate
   the minor heap if every packet is a fresh record tree (packet + meta
   + header records + two meta arrays ≈ 30 words). The arena keeps
   retired packets on a free stack and refills them in place: a
   steady-state acquire/traverse/release cycle allocates zero minor
   words, extending the pooled-cell discipline of the scheduler and
   timing wheel to packets.

   Ownership discipline: release a packet only when no other reference
   to it remains. In particular [Packet.clone_for_forward] shares
   header records between the original and the clone — releasing the
   original while a clone is alive, then acquiring (which refills
   headers in place), would mutate the clone's view. *)

type t = {
  mutable free : Packet.t array; (* stack; slots >= top hold Packet.nil *)
  mutable top : int;
  mutable created : int;
  mutable reused : int;
  mutable released : int;
  mutable live : int;
}

let create ?(initial = 64) () =
  if initial <= 0 then invalid_arg "Packet_arena.create: initial must be positive";
  { free = Array.make initial Packet.nil; top = 0; created = 0; reused = 0; released = 0; live = 0 }

let live t = t.live
let created t = t.created
let reused t = t.reused
let pooled t = t.top

(* Reset the recycled packet's identity and metadata bus; headers are
   refilled by the typed acquire below. *)
let recycle t ~created_at =
  t.top <- t.top - 1;
  let p = t.free.(t.top) in
  t.free.(t.top) <- Packet.nil;
  t.reused <- t.reused + 1;
  p.Packet.uid <- Packet.fresh_uid ();
  p.Packet.created_at <- created_at;
  p.Packet.payload <- Packet.Opaque;
  let m = p.Packet.meta in
  m.Packet.ingress_port <- -1;
  m.Packet.flow_id <- 0;
  m.Packet.priority <- 0;
  m.Packet.qid <- 0;
  m.Packet.mark <- 0;
  m.Packet.version <- 0;
  Array.fill m.Packet.enq_meta 0 Packet.meta_slots 0;
  Array.fill m.Packet.deq_meta 0 Packet.meta_slots 0;
  p

let acquire_udp t ?(created_at = 0) ~src ~dst ~src_port ~dst_port ~payload_len () =
  t.live <- t.live + 1;
  if t.top = 0 then begin
    t.created <- t.created + 1;
    Packet.udp_packet ~created_at ~src ~dst ~src_port ~dst_port ~payload_len ()
  end
  else begin
    let p = recycle t ~created_at in
    p.Packet.payload_len <- payload_len;
    (* Refill the header records in place when the recycled packet has
       the right shape (it does whenever the arena is used uniformly);
       rebuild them only on a shape change. *)
    (match (p.Packet.ip, p.Packet.l4) with
    | Some ip, Packet.Udp udp ->
        Udp.set udp ~src_port ~dst_port ~payload_len;
        Ipv4.set ip ~proto:Ipv4.proto_udp ~src ~dst ~payload_len:(Udp.size + payload_len);
        Ethernet.set p.Packet.eth
          ~dst:(Mac_addr.host (Ipv4_addr.to_int dst land 0xffff))
          ~src:(Mac_addr.host (Ipv4_addr.to_int src land 0xffff))
          ~ethertype:Ethernet.ethertype_ipv4
    | _ ->
        p.Packet.l4 <- Packet.Udp (Udp.make ~src_port ~dst_port ~payload_len);
        p.Packet.ip <-
          Some (Ipv4.make ~proto:Ipv4.proto_udp ~src ~dst ~payload_len:(Udp.size + payload_len) ());
        p.Packet.eth <-
          Ethernet.make
            ~dst:(Mac_addr.host (Ipv4_addr.to_int dst land 0xffff))
            ~src:(Mac_addr.host (Ipv4_addr.to_int src land 0xffff))
            ~ethertype:Ethernet.ethertype_ipv4);
    p
  end

let release t p =
  if Packet.is_nil p then invalid_arg "Packet_arena.release: nil packet";
  t.released <- t.released + 1;
  t.live <- t.live - 1;
  if t.top = Array.length t.free then begin
    let free = Array.make (2 * t.top) Packet.nil in
    Array.blit t.free 0 free 0 t.top;
    t.free <- free
  end;
  t.free.(t.top) <- p;
  t.top <- t.top + 1
