(** Arena allocator for packets with free-list recycling.

    Retired packets go on a free stack; {!acquire_udp} refills a pooled
    record in place (fresh uid, reset metadata bus, rewritten headers)
    instead of allocating a new record tree. A steady-state
    acquire/traverse/release cycle allocates zero minor words.

    Ownership: call {!release} only when no other reference to the
    packet remains — in particular not while a
    {!Packet.clone_for_forward} clone sharing its header records is
    still alive, since the next acquire mutates those headers.
    Arenas are single-domain; use one arena per shard. *)

type t

val create : ?initial:int -> unit -> t
(** [initial] is the starting free-stack capacity (default 64); the
    stack grows by doubling. *)

val acquire_udp :
  t -> ?created_at:int -> src:Ipv4_addr.t -> dst:Ipv4_addr.t ->
  src_port:int -> dst_port:int -> payload_len:int -> unit -> Packet.t
(** A UDP workload packet as {!Packet.udp_packet} would build, with
    MACs derived from the addresses and a fresh uid — recycled from the
    pool when possible, freshly allocated when the pool is empty. *)

val release : t -> Packet.t -> unit
(** Return a packet to the pool. Raises [Invalid_argument] on
    {!Packet.nil}. Releasing a packet that is still referenced
    elsewhere (or releasing it twice) is a logic error the arena cannot
    detect. *)

val live : t -> int
(** Packets acquired and not yet released. *)

val created : t -> int
(** Packets the arena had to allocate fresh. *)

val reused : t -> int
(** Acquisitions served from the pool. *)

val pooled : t -> int
(** Packets currently parked on the free stack. *)
