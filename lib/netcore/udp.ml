type t = { mutable src_port : int; mutable dst_port : int; mutable length : int }

let size = 8

let make ~src_port ~dst_port ~payload_len =
  { src_port = src_port land 0xffff; dst_port = dst_port land 0xffff; length = size + payload_len }

(* In-place refill for arena-recycled packets: same field discipline as
   [make], zero allocation. *)
let set t ~src_port ~dst_port ~payload_len =
  t.src_port <- src_port land 0xffff;
  t.dst_port <- dst_port land 0xffff;
  t.length <- size + payload_len

let write w t =
  Cursor.u16 w t.src_port;
  Cursor.u16 w t.dst_port;
  Cursor.u16 w t.length;
  Cursor.u16 w 0

let read r =
  let src_port = Cursor.read_u16 r in
  let dst_port = Cursor.read_u16 r in
  let length = Cursor.read_u16 r in
  let _csum = Cursor.read_u16 r in
  { src_port; dst_port; length }

let equal a b = a.src_port = b.src_port && a.dst_port = b.dst_port && a.length = b.length
let pp ppf t = Format.fprintf ppf "udp %d -> %d len=%d" t.src_port t.dst_port t.length
