(** UDP header (checksum left zero: legal for IPv4 and what most
    switch-centric simulations do). *)

(** Fields are mutable only for in-place reuse by
    {!Packet_arena}-recycled packets; treat received headers as
    read-only. *)
type t = { mutable src_port : int; mutable dst_port : int; mutable length : int }

val size : int
val make : src_port:int -> dst_port:int -> payload_len:int -> t

val set : t -> src_port:int -> dst_port:int -> payload_len:int -> unit
(** Refill every field in place, as {!make} would — allocation-free. *)

val write : Cursor.writer -> t -> unit
val read : Cursor.reader -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
