module Packet = Netcore.Packet

type t = {
  switch : int;
  table : Table.t;
  edge_port : int -> bool;
  mutable ingress_version : int;
  mutable stamped : int;
  mutable forwarded : int;
  mutable mixed : int;
  mutable unroutable : int;
}

let create ~switch ~keys ~edge_port () =
  { switch; table = Table.create ~keys (); edge_port; ingress_version = 0;
    stamped = 0; forwarded = 0; mixed = 0; unroutable = 0 }

let switch t = t.switch
let table t = t.table
let ingress_version t = t.ingress_version
let set_ingress_version t v = t.ingress_version <- v

let decide t pkt ~key =
  let m = pkt.Packet.meta in
  if t.edge_port m.Packet.ingress_port then begin
    (* Edge ingress: stamp the packet with this switch's live version. *)
    m.Packet.version <- t.ingress_version;
    t.stamped <- t.stamped + 1
  end;
  let v = m.Packet.version in
  let port = Table.lookup t.table ~version:v ~key in
  if port >= 0 then begin
    t.forwarded <- t.forwarded + 1;
    port
  end
  else begin
    (* The packet's stamped version is not resident here — it is about
       to be forwarded under some *other* version (or dropped). Either
       way it observed two versions: the consistency violation the
       two-phase protocol exists to prevent. *)
    t.mixed <- t.mixed + 1;
    let fallback = Table.lookup t.table ~version:t.ingress_version ~key in
    if fallback >= 0 then begin
      t.forwarded <- t.forwarded + 1;
      fallback
    end
    else begin
      t.unroutable <- t.unroutable + 1;
      -1
    end
  end

let stamped t = t.stamped
let forwarded t = t.forwarded
let mixed t = t.mixed
let unroutable t = t.unroutable

let export_metrics ?(labels = []) t reg =
  let open Obs.Metrics in
  Counter.set (counter reg ~labels "netupd.agent.stamped") t.stamped;
  Counter.set (counter reg ~labels "netupd.agent.forwarded") t.forwarded;
  Counter.set (counter reg ~labels "netupd.agent.mixed") t.mixed;
  Counter.set (counter reg ~labels "netupd.agent.unroutable") t.unroutable;
  Gauge.set (gauge reg ~labels "netupd.agent.ingress_version") t.ingress_version
