(** The switch-resident half of the update protocol.

    One agent per switch: it owns the switch's versioned {!Table}, the
    ingress version register (which version packets entering the
    network here get stamped with), and the counters the safety
    argument rests on. The data-plane program calls {!decide} per
    packet; the {!Controller} mutates the table / ingress register via
    acked control-plane ops. *)

type t

val create : switch:int -> keys:int -> edge_port:(int -> bool) -> unit -> t
(** [edge_port p] says whether ingress port [p] is a network edge
    (host-facing) — packets arriving there get stamped with the
    current ingress version; packets on fabric ports keep the version
    they already carry. *)

val switch : t -> int
val table : t -> Table.t
val ingress_version : t -> int
val set_ingress_version : t -> int -> unit

val decide : t -> Netcore.Packet.t -> key:int -> int
(** Forwarding decision: stamp if the packet arrived on an edge port,
    then look up [(packet version, key)]. Returns the out-port, or
    [-1] for drop. A lookup miss on the packet's stamped version
    counts as {!mixed} — the packet can only proceed under a different
    version (the ingress fallback), which is exactly the
    inconsistency E26's invariant asserts never happens. *)

val stamped : t -> int
val forwarded : t -> int

val mixed : t -> int
(** Packets whose stamped version was not resident at this switch —
    each one observed two policy versions. Must be zero under the
    two-phase protocol. *)

val unroutable : t -> int
(** Mixed packets with no fallback either (dropped). *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** [netupd.agent.stamped/forwarded/mixed/unroutable] counters plus the
    [netupd.agent.ingress_version] gauge. Set-style; idempotent. *)
