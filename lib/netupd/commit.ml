module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time

type action = Install | Flip | Unflip | Gc_old | Gc_new

let action_name = function
  | Install -> "install"
  | Flip -> "flip"
  | Unflip -> "unflip"
  | Gc_old -> "gc-old"
  | Gc_new -> "gc-new"

type phase = Installing | Flipping | Draining | Gc | Unflipping | Rb_draining | Rb_gc | Finished

let phase_name = function
  | Installing -> "installing"
  | Flipping -> "flipping"
  | Draining -> "draining"
  | Gc -> "gc"
  | Unflipping -> "unflipping"
  | Rb_draining -> "rb-draining"
  | Rb_gc -> "rb-gc"
  | Finished -> "finished"

(* Bounded retries then abort-and-rollback; the backward direction gets
   generous retries instead (abandoning a rollback op must degrade
   gracefully, never wedge). *)
let commit_direction = function
  | Installing | Flipping -> true
  | Gc | Unflipping | Rb_gc | Draining | Rb_draining | Finished -> false

type outcome = Committed | Rolled_back

type config = {
  ack_timeout : Sim_time.t;
  max_retries : int;
  rollback_max_retries : int;
  backoff_base : Sim_time.t;
  backoff_cap : Sim_time.t;
  drain : Sim_time.t;
}

let default_config () =
  {
    ack_timeout = Sim_time.us 12;
    max_retries = 3;
    rollback_max_retries = 12;
    backoff_base = Sim_time.us 8;
    backoff_cap = Sim_time.us 64;
    drain = Sim_time.us 20;
  }

type stats = {
  mutable attempts : int;
  mutable lost : int;
  mutable acks : int;
  mutable dup_acks : int;
  mutable late_acks : int;
  mutable retries : int;
  mutable abandoned : int;
  mutable canceled : int;
  mutable applied : int;
  mutable deduped : int;
  mutable gc_skipped : int;
}

let fresh_stats () =
  { attempts = 0; lost = 0; acks = 0; dup_acks = 0; late_acks = 0; retries = 0;
    abandoned = 0; canceled = 0; applied = 0; deduped = 0; gc_skipped = 0 }

type env = {
  sched : Scheduler.t;
  submit : switch:int -> (unit -> unit) -> unit;
  ack : switch:int -> (unit -> unit) -> unit;
  lost : switch:int -> now:Sim_time.t -> bool;
  apply : switch:int -> action -> unit;
  log : string -> unit;
  next_seq : unit -> int;
  stats : stats;
}

type op_state = In_flight | Acked | Abandoned

type op = {
  op_sw : int;
  op_action : action;
  op_seq : int;
  op_phase : int;
  mutable op_attempts : int;
  mutable op_state : op_state;
  mutable op_applied : bool; (* device-side dedup: apply at most once *)
  mutable op_timer : Scheduler.handle option;
}

type t = {
  env : env;
  cfg : config;
  version : int;
  targets : int array;
  on_done : outcome -> unit;
  mutable phase : phase;
  mutable phase_id : int;
  mutable phase_ops : op array;
  mutable outcome : outcome option;
  mutable gc_skip : bool;
}

let cancel_timer op =
  match op.op_timer with
  | None -> ()
  | Some h ->
      Scheduler.cancel h;
      op.op_timer <- None

let rec attempt t op =
  if t.outcome = None && op.op_phase = t.phase_id && op.op_state = In_flight then begin
    let st = t.env.stats in
    op.op_attempts <- op.op_attempts + 1;
    st.attempts <- st.attempts + 1;
    let now = Scheduler.now t.env.sched in
    (* The loss verdict is drawn at submit time so every controller
       replica, seeing the same submission order per switch, agrees. *)
    let is_lost = t.env.lost ~switch:op.op_sw ~now in
    if is_lost then st.lost <- st.lost + 1;
    t.env.log
      (Printf.sprintf "t=%d v=%d %s sw=%d seq=%d try=%d%s" now t.version
         (action_name op.op_action) op.op_sw op.op_seq op.op_attempts
         (if is_lost then " LOST" else ""));
    (* A lost submission never reaches the device — no CP queueing, no
       exec, no ack; the op resolves via its timeout. *)
    if not is_lost then
      t.env.submit ~switch:op.op_sw (fun () ->
          (* Device side. Retried ops can land twice — dedup by seq. *)
          if op.op_applied then st.deduped <- st.deduped + 1
          else begin
            op.op_applied <- true;
            st.applied <- st.applied + 1;
            t.env.apply ~switch:op.op_sw op.op_action
          end;
          t.env.ack ~switch:op.op_sw (fun () -> on_ack t op));
    op.op_timer <-
      Some
        (Scheduler.schedule ~cls:"netupd" t.env.sched ~at:(now + t.cfg.ack_timeout)
           (fun () -> on_timeout t op))
  end

and on_ack t op =
  let st = t.env.stats in
  match op.op_state with
  | Acked -> st.dup_acks <- st.dup_acks + 1
  | Abandoned -> st.late_acks <- st.late_acks + 1
  | In_flight ->
      if t.outcome <> None || op.op_phase <> t.phase_id then begin
        (* Defensive: a phase teardown resolves its ops, so this should
           be unreachable — but never let a stale ack advance a phase. *)
        op.op_state <- Acked;
        st.late_acks <- st.late_acks + 1
      end
      else begin
        op.op_state <- Acked;
        st.acks <- st.acks + 1;
        cancel_timer op;
        maybe_advance t
      end

and on_timeout t op =
  op.op_timer <- None;
  if op.op_state = In_flight && t.outcome = None && op.op_phase = t.phase_id then begin
    let st = t.env.stats in
    let limit =
      if commit_direction t.phase then t.cfg.max_retries else t.cfg.rollback_max_retries
    in
    if op.op_attempts >= 1 + limit then give_up t op
    else begin
      st.retries <- st.retries + 1;
      (* Forward ops back off exponentially (congestion courtesy on the
         control channel); rollback ops retry at a steady base cadence
         — the backward path prioritizes liveness over politeness. *)
      let backoff =
        if commit_direction t.phase then
          let shift = min (op.op_attempts - 1) 16 in
          min t.cfg.backoff_cap (t.cfg.backoff_base * (1 lsl shift))
        else t.cfg.backoff_base
      in
      let now = Scheduler.now t.env.sched in
      Scheduler.post ~cls:"netupd" t.env.sched ~at:(now + backoff) (fun () -> attempt t op)
    end
  end

and give_up t op =
  let st = t.env.stats in
  op.op_state <- Abandoned;
  st.abandoned <- st.abandoned + 1;
  t.env.log
    (Printf.sprintf "t=%d v=%d ABANDON %s sw=%d seq=%d" (Scheduler.now t.env.sched) t.version
       (action_name op.op_action) op.op_sw op.op_seq);
  match t.phase with
  | Installing -> begin_rollback t ~flipped:false
  | Flipping -> begin_rollback t ~flipped:true
  | Unflipping ->
      (* An ingress we could not unflip keeps stamping the new version;
         the new rules stay installed everywhere (the install phase
         fully acked before any flip), so skipping their GC keeps the
         network consistent. *)
      t.gc_skip <- true;
      maybe_advance t
  | Gc | Rb_gc ->
      (* Stale rules linger on one switch — wasteful, never unsafe. *)
      maybe_advance t
  | Draining | Rb_draining | Finished -> ()

and maybe_advance t =
  if t.outcome = None && Array.for_all (fun o -> o.op_state <> In_flight) t.phase_ops then
    match t.phase with
    | Installing -> start_phase t Flipping
    | Flipping -> start_drain t Draining ~next:Gc
    | Gc -> finish t Committed
    | Unflipping ->
        if t.gc_skip then begin
          t.env.stats.gc_skipped <- t.env.stats.gc_skipped + 1;
          finish t Rolled_back
        end
        else start_drain t Rb_draining ~next:Rb_gc
    | Rb_gc -> finish t Rolled_back
    | Draining | Rb_draining | Finished -> ()

and start_drain t phase ~next =
  t.phase <- phase;
  t.phase_id <- t.phase_id + 1;
  t.phase_ops <- [||];
  let id = t.phase_id in
  let now = Scheduler.now t.env.sched in
  t.env.log (Printf.sprintf "t=%d v=%d phase=%s" now t.version (phase_name phase));
  Scheduler.post ~cls:"netupd" t.env.sched ~at:(now + t.cfg.drain) (fun () ->
      if t.outcome = None && t.phase_id = id then start_phase t next)

and start_phase t phase =
  t.phase <- phase;
  t.phase_id <- t.phase_id + 1;
  let action =
    match phase with
    | Installing -> Install
    | Flipping -> Flip
    | Unflipping -> Unflip
    | Gc -> Gc_old
    | Rb_gc -> Gc_new
    | Draining | Rb_draining | Finished -> assert false
  in
  t.env.log
    (Printf.sprintf "t=%d v=%d phase=%s" (Scheduler.now t.env.sched) t.version (phase_name phase));
  t.phase_ops <-
    Array.map
      (fun sw ->
        { op_sw = sw; op_action = action; op_seq = t.env.next_seq (); op_phase = t.phase_id;
          op_attempts = 0; op_state = In_flight; op_applied = false; op_timer = None })
      t.targets;
  Array.iter (fun op -> attempt t op) t.phase_ops

and begin_rollback t ~flipped =
  let st = t.env.stats in
  t.env.log
    (Printf.sprintf "t=%d v=%d ROLLBACK from=%s" (Scheduler.now t.env.sched) t.version
       (phase_name t.phase));
  Array.iter
    (fun o ->
      if o.op_state = In_flight then begin
        o.op_state <- Abandoned;
        st.canceled <- st.canceled + 1;
        cancel_timer o
      end)
    t.phase_ops;
  if flipped then start_phase t Unflipping else start_phase t Rb_gc

and finish t outcome =
  t.outcome <- Some outcome;
  t.phase <- Finished;
  t.phase_ops <- [||];
  t.env.log
    (Printf.sprintf "t=%d v=%d %s" (Scheduler.now t.env.sched) t.version
       (match outcome with Committed -> "COMMITTED" | Rolled_back -> "ROLLED_BACK"));
  t.on_done outcome

let start env cfg ~version ~targets ~on_done =
  if Array.length targets = 0 then invalid_arg "Commit.start: no targets";
  let t =
    { env; cfg; version; targets; on_done; phase = Finished; phase_id = 0; phase_ops = [||];
      outcome = None; gc_skip = false }
  in
  start_phase t Installing;
  t

let outcome t = t.outcome
let phase t = t.phase
let version t = t.version
