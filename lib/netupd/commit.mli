(** The two-phase update transaction.

    One [t] drives a single policy version from proposal to
    {!Committed} or {!Rolled_back}:

    + [Installing] — install the new version's rules on every switch
      (old rules untouched; packets keep using the old version).
    + [Flipping] — once *every* install acked, flip each ingress to
      stamp the new version.
    + [Draining] — wait out the maximum packet lifetime so no
      old-version packet is still in flight.
    + [Gc] — garbage-collect the old version's rules.

    Every control op carries a sequence number, is retried with
    exponential backoff when its ack misses the deadline, and is
    deduplicated device-side (a retried op that landed twice applies
    once). Exhausting the bounded retries in a forward phase aborts the
    update and runs the mirror-image rollback — unflip any flipped
    ingresses, drain, remove the new rules — whose ops get a much
    larger retry budget so the backward path degrades (stale rules
    linger) rather than wedges. The protocol invariant: at any instant,
    every version some packet may carry is fully resident on every
    switch it can reach.

    The engine is deliberately deaf to wall structure: it talks to
    switches only through the closures in {!env}, so a controller
    replica that owns no switches still runs the identical transaction
    (see {!Controller}). *)

type action = Install | Flip | Unflip | Gc_old | Gc_new

val action_name : action -> string

type phase = Installing | Flipping | Draining | Gc | Unflipping | Rb_draining | Rb_gc | Finished

val phase_name : phase -> string

type outcome = Committed | Rolled_back

type config = {
  ack_timeout : Eventsim.Sim_time.t;  (** per-attempt ack deadline *)
  max_retries : int;  (** per op, forward direction — then abort *)
  rollback_max_retries : int;
      (** per op, backward direction; rollback ops retry at a steady
          [backoff_base] cadence (liveness over politeness) *)
  backoff_base : Eventsim.Sim_time.t;  (** doubles per forward retry *)
  backoff_cap : Eventsim.Sim_time.t;
  drain : Eventsim.Sim_time.t;  (** ≥ max packet lifetime in the network *)
}

val default_config : unit -> config
(** 12 us ack deadline, 3 forward / 12 rollback retries, 8 us backoff
    doubling to a 64 us cap, 20 us drain. *)

(** Aggregate op accounting, shared across transactions by the
    controller so conservation books can be balanced per run:
    [attempts = lost + (acks + dup_acks + late_acks) + supervisor-dropped]
    once the network is quiet. *)
type stats = {
  mutable attempts : int;  (** submissions, including retries *)
  mutable lost : int;  (** submissions the loss oracle dropped *)
  mutable acks : int;  (** first acks (one per resolved op) *)
  mutable dup_acks : int;  (** acks for already-acked ops (retry races) *)
  mutable late_acks : int;  (** acks for abandoned / torn-down ops *)
  mutable retries : int;
  mutable abandoned : int;  (** ops that exhausted their retry budget *)
  mutable canceled : int;  (** in-flight ops resolved by an abort *)
  mutable applied : int;  (** device mutations performed *)
  mutable deduped : int;  (** duplicate device deliveries skipped *)
  mutable gc_skipped : int;  (** rollbacks that left the new rules in *)
}

val fresh_stats : unit -> stats

type env = {
  sched : Eventsim.Scheduler.t;
  submit : switch:int -> (unit -> unit) -> unit;
      (** control channel down to a switch (pays CP latency/queueing) *)
  ack : switch:int -> (unit -> unit) -> unit;
      (** device-to-controller ack path *)
  lost : switch:int -> now:Eventsim.Sim_time.t -> bool;
      (** loss oracle, consulted once per attempt at submit time *)
  apply : switch:int -> action -> unit;
      (** device-side effect; called at most once per op (deduped) *)
  log : string -> unit;
      (** deterministic protocol log — retry schedules, phase
          transitions; digested by the QCheck determinism property *)
  next_seq : unit -> int;  (** global op sequence numbers *)
  stats : stats;
}

type t

val start :
  env -> config -> version:int -> targets:int array -> on_done:(outcome -> unit) -> t
(** Begin the transaction (submits the install ops immediately). *)

val outcome : t -> outcome option
(** [None] while in flight. *)

val phase : t -> phase
val version : t -> int
