module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Control_plane = Evcore.Control_plane

type t = {
  sched : Scheduler.t;
  agents : Agent.t option array;
  cps : Control_plane.t array;
  commit_cfg : Commit.config;
  lost : switch:int -> now:Sim_time.t -> bool;
  targets : int array;
  log : Buffer.t;
  next_seq : int ref;
  stats : Commit.stats;
  mutable next_version : int;
  mutable current : Policy.t;
  mutable in_flight : (Policy.t * int * Commit.t) option; (* policy, old version, txn *)
  mutable pending : Policy.t option;
  mutable started_at : Sim_time.t;
  mutable proposals : int;
  mutable committed : int;
  mutable rolled_back : int;
  mutable superseded : int;
}

let bootstrap_agent t p =
  Array.iteri
    (fun sw slot ->
      match slot with
      | None -> ()
      | Some a ->
          Table.install (Agent.table a) ~version:(Policy.version p) (Policy.rules p sw);
          Agent.set_ingress_version a (Policy.version p))
    t.agents

let create ~sched ~switches ~agents ~initial ?(cp_latency = Sim_time.us 4)
    ?(cp_jitter = Sim_time.ns 500) ?(cp_rate = 1_000_000.) ?sup
    ?(commit = Commit.default_config ()) ?lost ~seed () =
  if Array.length agents <> switches then invalid_arg "Controller.create: agents/switches mismatch";
  if Policy.switches initial <> switches then invalid_arg "Controller.create: policy size mismatch";
  let cps =
    Array.init switches (fun sw ->
        (* Per-switch seed, not per-replica: every controller replica
           draws identical CP jitter for switch [sw], which is what
           makes replicated (sharded) runs byte-identical. *)
        let rng = Stats.Rng.create ~seed:(seed + (31 * (sw + 1))) in
        let sup = match sup with None -> None | Some f -> f sw in
        Control_plane.create ~sched ~latency:cp_latency ~op_rate_per_sec:cp_rate
          ~jitter:cp_jitter ?sup ~rng ())
  in
  let t =
    {
      sched;
      agents;
      cps;
      commit_cfg = commit;
      lost = (match lost with Some f -> f | None -> fun ~switch:_ ~now:_ -> false);
      targets = Array.init switches Fun.id;
      log = Buffer.create 4096;
      next_seq = ref 0;
      stats = Commit.fresh_stats ();
      next_version = Policy.version initial + 1;
      current = initial;
      in_flight = None;
      pending = None;
      started_at = 0;
      proposals = 0;
      committed = 0;
      rolled_back = 0;
      superseded = 0;
    }
  in
  bootstrap_agent t initial;
  t

let logf t fmt = Printf.ksprintf (fun s -> Buffer.add_string t.log s; Buffer.add_char t.log '\n') fmt

let env t =
  {
    Commit.sched = t.sched;
    submit = (fun ~switch f -> Control_plane.submit t.cps.(switch) f);
    ack = (fun ~switch f -> Control_plane.notify t.cps.(switch) f);
    lost = t.lost;
    apply = (fun ~switch:_ _ -> assert false) (* replaced per update *);
    log = (fun s -> Buffer.add_string t.log s; Buffer.add_char t.log '\n');
    next_seq =
      (fun () ->
        let s = !(t.next_seq) in
        t.next_seq := s + 1;
        s);
    stats = t.stats;
  }

let rec start_update t p =
  let v_new = Policy.version p in
  let v_old = Policy.version t.current in
  t.started_at <- Scheduler.now t.sched;
  let apply ~switch action =
    match t.agents.(switch) with
    | None -> () (* this replica does not own the switch; a peer replica
                    performs the identical mutation at the same time *)
    | Some a -> (
        match action with
        | Commit.Install -> Table.install (Agent.table a) ~version:v_new (Policy.rules p switch)
        | Commit.Flip -> Agent.set_ingress_version a v_new
        | Commit.Unflip -> Agent.set_ingress_version a v_old
        | Commit.Gc_old -> Table.uninstall (Agent.table a) ~version:v_old
        | Commit.Gc_new -> Table.uninstall (Agent.table a) ~version:v_new)
  in
  let env = { (env t) with Commit.apply } in
  let txn =
    Commit.start env t.commit_cfg ~version:v_new ~targets:t.targets ~on_done:(fun outcome ->
        (match outcome with
        | Commit.Committed ->
            t.committed <- t.committed + 1;
            t.current <- p
        | Commit.Rolled_back -> t.rolled_back <- t.rolled_back + 1);
        t.in_flight <- None;
        match t.pending with
        | None -> ()
        | Some next ->
            t.pending <- None;
            start_update t next)
  in
  t.in_flight <- Some (p, v_old, txn)

let propose t p =
  if Policy.switches p <> Array.length t.agents then
    invalid_arg "Controller.propose: policy size mismatch";
  let v = t.next_version in
  t.next_version <- v + 1;
  let p = Policy.with_version p v in
  t.proposals <- t.proposals + 1;
  logf t "t=%d PROPOSE v=%d %s" (Scheduler.now t.sched) v (Policy.name p);
  match t.in_flight with
  | None -> start_update t p
  | Some _ ->
      (match t.pending with
      | Some old ->
          t.superseded <- t.superseded + 1;
          logf t "t=%d SUPERSEDE v=%d by v=%d" (Scheduler.now t.sched) (Policy.version old) v
      | None -> ());
      t.pending <- Some p

let version t = Policy.version t.current
let policy t = t.current
let in_flight_version t = match t.in_flight with None -> None | Some (p, _, _) -> Some (Policy.version p)
let stats t = t.stats
let proposals t = t.proposals
let committed t = t.committed
let rolled_back t = t.rolled_back
let superseded t = t.superseded
let cp t sw = t.cps.(sw)
let cps t = t.cps
let log_contents t = Buffer.contents t.log

let schedule_digest t =
  Digest.to_hex (Digest.string (Buffer.contents t.log ^ Printf.sprintf "|final=%d" (version t)))

let owned_agents t =
  Array.to_list t.agents |> List.filter_map Fun.id

let mixed t = List.fold_left (fun acc a -> acc + Agent.mixed a) 0 (owned_agents t)

let register_invariants ?(wedge_bound = Sim_time.ms 1) t inv =
  Resil.Invariants.add_zero inv ~name:"netupd.mixed" (fun () -> mixed t);
  Resil.Invariants.add inv ~name:"netupd.wedged" (fun () ->
      match t.in_flight with
      | None -> None
      | Some (p, _, txn) ->
          let age = Scheduler.now t.sched - t.started_at in
          if age > wedge_bound then
            Some
              (Printf.sprintf "update v%d stuck in %s for %d ps" (Policy.version p)
                 (Commit.phase_name (Commit.phase txn)) age)
          else None)

let export_metrics ?(labels = []) t reg =
  let open Obs.Metrics in
  let c name v = Counter.set (counter reg ~labels name) v in
  c "netupd.proposals" t.proposals;
  c "netupd.committed" t.committed;
  c "netupd.rolled_back" t.rolled_back;
  c "netupd.superseded" t.superseded;
  c "netupd.op.attempts" t.stats.Commit.attempts;
  c "netupd.op.lost" t.stats.Commit.lost;
  c "netupd.op.acks" t.stats.Commit.acks;
  c "netupd.op.dup_acks" t.stats.Commit.dup_acks;
  c "netupd.op.late_acks" t.stats.Commit.late_acks;
  c "netupd.op.retries" t.stats.Commit.retries;
  c "netupd.op.abandoned" t.stats.Commit.abandoned;
  c "netupd.op.canceled" t.stats.Commit.canceled;
  c "netupd.op.applied" t.stats.Commit.applied;
  c "netupd.op.deduped" t.stats.Commit.deduped;
  c "netupd.gc_skipped" t.stats.Commit.gc_skipped;
  Gauge.set (gauge reg ~labels "netupd.version") (version t);
  Gauge.set (gauge reg ~labels "netupd.in_flight") (match t.in_flight with None -> 0 | Some _ -> 1)
