(** The consistent-update controller.

    Sits above [Evcore.Control_plane] — one modeled control channel per
    switch — and drives {!Commit} transactions over {!Policy} versions.
    {!propose} assigns the next monotonic version and two-phase-commits
    it; a proposal arriving mid-update parks in a single pending slot
    (a newer proposal supersedes an older parked one — the storm
    semantics: latest intent wins).

    {b Replication.} A controller is built per parsim shard, but every
    replica is given the {e full} switch set: each runs shadow
    [Control_plane] instances (seeded per switch, so op timing and
    jitter are identical everywhere) and the identical {!Commit} state
    machine; only the replica that {e owns} a switch (its [agents]
    slot is [Some]) applies the device mutation. Because every input —
    CP jitter, the loss oracle, link-event trigger times — is a pure
    function of (seed, switch), the replicas never need to talk and a
    sharded run stays byte-identical to the sequential one. *)

type t

val create :
  sched:Eventsim.Scheduler.t ->
  switches:int ->
  agents:Agent.t option array ->
  initial:Policy.t ->
  ?cp_latency:Eventsim.Sim_time.t ->
  ?cp_jitter:Eventsim.Sim_time.t ->
  ?cp_rate:float ->
  ?sup:(int -> Resil.Supervisor.t option) ->
  ?commit:Commit.config ->
  ?lost:(switch:int -> now:Eventsim.Sim_time.t -> bool) ->
  seed:int ->
  unit ->
  t
(** [agents.(sw) = Some a] iff this replica owns switch [sw]. The
    [initial] policy is bootstrapped directly (installed on owned
    agents at time zero, no protocol); versions then count up from
    [Policy.version initial + 1]. [sup sw] supplies an optional
    supervisor guarding switch [sw]'s control channel (quarantined
    channels drop ops — counted by [cp.dropped_ops]). [lost] is the
    op-loss oracle (default: lossless); CP defaults: 4 us latency,
    500 ns jitter, 1M ops/s. *)

val propose : t -> Policy.t -> unit
(** Stamp the next version onto [p] and start (or park) its update. *)

val version : t -> int
(** Version of the last committed policy. *)

val policy : t -> Policy.t
val in_flight_version : t -> int option
val stats : t -> Commit.stats
val proposals : t -> int
val committed : t -> int
val rolled_back : t -> int
val superseded : t -> int
val cp : t -> int -> Evcore.Control_plane.t
val cps : t -> Evcore.Control_plane.t array
val mixed : t -> int
(** Sum of {!Agent.mixed} over owned agents. *)

val log_contents : t -> string
(** The deterministic protocol log (proposals, phase transitions,
    every submission attempt with its seq / try count / loss verdict,
    outcomes). *)

val schedule_digest : t -> string
(** MD5 of {!log_contents} plus the final committed version — the
    value the determinism property compares across backends and shard
    counts. *)

val register_invariants : ?wedge_bound:Eventsim.Sim_time.t -> t -> Resil.Invariants.t -> unit
(** Install the runtime safety checks: [netupd.mixed] (no packet ever
    observes two versions — {!Agent.mixed} stays zero) and
    [netupd.wedged] (no update stays in flight longer than
    [wedge_bound], default 1 ms). *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Set-style [netupd.*] series: proposal / outcome counts, the op
    ledger (attempts, losses, acks, retries, abandons, dedups) and the
    committed-version / in-flight gauges. *)
