type rule = { key : int; port : int }
type t = { name : string; version : int; tables : rule list array }

let make ~name ?(version = 0) tables = { name; version; tables }
let with_version t version = { t with version }
let name t = t.name
let version t = t.version
let switches t = Array.length t.tables
let rules t sw = t.tables.(sw)

let lookup t ~switch ~key =
  let rec find = function
    | [] -> None
    | r :: rest -> if r.key = key then Some r.port else find rest
  in
  find t.tables.(switch)

(* Ring port convention (Evcore.Topology.ring): port 0 = local host,
   port 1 = clockwise neighbour (sw+1), port 2 = counter-clockwise. *)
let cw_port = 1
let ccw_port = 2

(* The clockwise path sw -> dst crosses ring link [l] (the link between
   switches l and l+1) iff l lies in the arc [sw, sw+d). *)
let cw_crosses ~switches ~sw ~dst l =
  let d = (dst - sw + switches) mod switches in
  (l - sw + switches) mod switches < d

let ring_tables ~switches choose =
  Array.init switches (fun sw ->
      List.init switches (fun dst ->
          { key = dst; port = (if dst = sw then 0 else choose ~sw ~dst) }))

let ring_threshold ~switches ~ccw_at ~name () =
  make ~name
    (ring_tables ~switches (fun ~sw ~dst ->
         let d = (dst - sw + switches) mod switches in
         if d >= ccw_at then ccw_port else cw_port))

let ring_uniform ~switches ~name () = ring_threshold ~switches ~ccw_at:switches ~name ()

let ring_avoiding ~switches ~link ~name () =
  make ~name
    (ring_tables ~switches (fun ~sw ~dst ->
         if cw_crosses ~switches ~sw ~dst link then ccw_port else cw_port))

let ring_delivers t =
  let n = switches t in
  let ok = ref true in
  for sw = 0 to n - 1 do
    for dst = 0 to n - 1 do
      (* Walk the ring under this policy; must reach dst in < n hops. *)
      let cur = ref sw and hops = ref 0 and alive = ref true in
      while !alive && !cur <> dst do
        (match lookup t ~switch:!cur ~key:dst with
        | Some p when p = cw_port -> cur := (!cur + 1) mod n
        | Some p when p = ccw_port -> cur := (!cur - 1 + n) mod n
        | _ -> alive := false);
        incr hops;
        if !hops >= n then alive := false
      done;
      if !cur <> dst then ok := false
    done
  done;
  !ok
