(** Declarative versioned forwarding policies.

    A policy is one forwarding table per switch — a list of
    [(key, out-port)] rules, where the key is whatever the data-plane
    program matches on (E26 uses the destination host id) — tagged with
    a monotonically increasing version. The version is what makes
    per-packet-consistent updates possible: a switch holds the tables
    of several versions at once ({!Table}) and matches on
    [(version, key)], so a packet stamped [v] at its ingress edge is
    forwarded under exactly policy [v] end-to-end. *)

type rule = { key : int; port : int }
type t

val make : name:string -> ?version:int -> rule list array -> t
(** One rule list per switch, indexed by switch id. The version
    defaults to 0 — {!Controller.propose} re-stamps it anyway. *)

val with_version : t -> int -> t
val name : t -> string
val version : t -> int
val switches : t -> int
val rules : t -> int -> rule list
val lookup : t -> switch:int -> key:int -> int option

(** {1 Ring policies} (port convention of [Evcore.Topology.ring]:
    port 0 = host, 1 = clockwise, 2 = counter-clockwise) *)

val ring_uniform : switches:int -> name:string -> unit -> t
(** Always clockwise (the {!Evcore.Topology.ring_route} default). *)

val ring_threshold : switches:int -> ccw_at:int -> name:string -> unit -> t
(** Clockwise for destinations fewer than [ccw_at] hops away clockwise,
    counter-clockwise otherwise. [ccw_at = switches] degenerates to
    {!ring_uniform}; lower thresholds shift traffic onto the reverse
    direction — E26's update storm alternates two such policies. *)

val ring_avoiding : switches:int -> link:int -> name:string -> unit -> t
(** The precomputed backup policy for ring link [link] (between
    switches [link] and [link+1]): any pair whose clockwise path would
    cross the dead link routes counter-clockwise instead. Loop-free by
    construction — each path is a single arc. *)

val cw_crosses : switches:int -> sw:int -> dst:int -> int -> bool
(** Does the clockwise path [sw -> dst] cross ring link [l]? (Exposed
    for tests.) *)

val ring_delivers : t -> bool
(** Sanity check used by tests: under ring port semantics, every
    (switch, destination) pair reaches its destination in fewer than
    [switches] hops — no loops, no black holes. *)
