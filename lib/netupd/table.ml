type t = {
  keys : int;
  tbl : (int, int array) Hashtbl.t; (* version -> dense key->port map, -1 = no rule *)
  mutable installs : int;
  mutable uninstalls : int;
}

let create ~keys () =
  if keys <= 0 then invalid_arg "Table.create: keys must be positive";
  { keys; tbl = Hashtbl.create 4; installs = 0; uninstalls = 0 }

let install t ~version rules =
  let dense =
    match Hashtbl.find_opt t.tbl version with
    | Some d -> d (* reinstall overwrites in place (idempotent) *)
    | None ->
        let d = Array.make t.keys (-1) in
        Hashtbl.replace t.tbl version d;
        d
  in
  Array.fill dense 0 t.keys (-1);
  List.iter
    (fun { Policy.key; port } ->
      if key < 0 || key >= t.keys then invalid_arg "Table.install: key out of range";
      dense.(key) <- port)
    rules;
  t.installs <- t.installs + 1

let uninstall t ~version =
  if Hashtbl.mem t.tbl version then begin
    Hashtbl.remove t.tbl version;
    t.uninstalls <- t.uninstalls + 1
  end

let has t version = Hashtbl.mem t.tbl version

let lookup t ~version ~key =
  if key < 0 || key >= t.keys then -1
  else match Hashtbl.find_opt t.tbl version with None -> -1 | Some d -> d.(key)

let versions t = List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) t.tbl [])
let installs t = t.installs
let uninstalls t = t.uninstalls
