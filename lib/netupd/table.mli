(** A switch's versioned match table.

    Holds the rules of several policy versions side by side — the heart
    of the two-phase scheme: during an update both the old and new
    version are resident, and which one a packet hits is decided purely
    by the version stamped in its metadata, never by *when* the packet
    crossed the switch. *)

type t

val create : keys:int -> unit -> t
(** [keys] bounds the match-key space (dense per-version arrays). *)

val install : t -> version:int -> Policy.rule list -> unit
(** Install (or idempotently overwrite) one version's rules. *)

val uninstall : t -> version:int -> unit
(** Remove a version's rules; no-op if absent (idempotent). *)

val has : t -> int -> bool
val lookup : t -> version:int -> key:int -> int
(** Out-port, or [-1] when the version is absent or has no rule. *)

val versions : t -> int list
(** Resident versions, ascending. *)

val installs : t -> int
val uninstalls : t -> int
