type labels = (string * string) list

module Counter = struct
  type t = { mutable v : int; on : bool ref }

  let incr c = if !(c.on) then c.v <- c.v + 1
  let add c n = if !(c.on) then c.v <- c.v + n
  let set c n = if !(c.on) then c.v <- n
  let value c = c.v
end

module Gauge = struct
  type t = {
    mutable v : int;
    mutable mx : int;
    mutable mn : int;
    mutable seen : bool;
    on : bool ref;
  }

  let set g n =
    if !(g.on) then begin
      g.v <- n;
      if (not g.seen) || n > g.mx then g.mx <- n;
      if (not g.seen) || n < g.mn then g.mn <- n;
      g.seen <- true
    end

  let add g n = set g (g.v + n)
  let value g = g.v
  let max_seen g = if g.seen then g.mx else 0
  let min_seen g = if g.seen then g.mn else 0
end

module Histo = struct
  type t = { h : Stats.Histogram.t; on : bool ref }

  let observe t x = if !(t.on) then Stats.Histogram.add t.h x
  let stats t = t.h
end

module Summary = struct
  type t = { w : Stats.Welford.t; on : bool ref }

  let observe t x = if !(t.on) then Stats.Welford.add t.w x
  let stats t = t.w
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histo of Histo.t
  | I_summary of Summary.t

type metric = { m_name : string; m_labels : labels; instrument : instrument }

type t = { on : bool ref; tbl : (string, metric) Hashtbl.t }

let create ?(enabled = true) () = { on = ref enabled; tbl = Hashtbl.create 64 }
let enable t = t.on := true
let disable t = t.on := false
let is_enabled t = !(t.on)
let on_ref t = t.on

let canonical labels =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    labels

let key name labels =
  let buf = Buffer.create 48 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histo _ -> "histogram"
  | I_summary _ -> "summary"

(* Register under (name, labels); an existing series of the same kind
   is shared, a different kind is a collision. *)
let register t ~name ~labels ~make =
  let labels = canonical labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some m -> m.instrument
  | None ->
      let m = { m_name = name; m_labels = labels; instrument = make () } in
      Hashtbl.add t.tbl k m;
      m.instrument

let collision name got want =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a %s, not a %s" name (kind_name got) want)

let counter t ?(labels = []) name =
  match register t ~name ~labels ~make:(fun () -> I_counter { Counter.v = 0; on = t.on }) with
  | I_counter c -> c
  | other -> collision name other "counter"

let gauge t ?(labels = []) name =
  match
    register t ~name ~labels ~make:(fun () ->
        I_gauge { Gauge.v = 0; mx = 0; mn = 0; seen = false; on = t.on })
  with
  | I_gauge g -> g
  | other -> collision name other "gauge"

let histogram t ?(labels = []) ?(max_exponent = 40) name =
  match
    register t ~name ~labels ~make:(fun () ->
        I_histo { Histo.h = Stats.Histogram.log2 ~max_exponent; on = t.on })
  with
  | I_histo h -> h
  | other -> collision name other "histogram"

let summary t ?(labels = []) name =
  match
    register t ~name ~labels ~make:(fun () ->
        I_summary { Summary.w = Stats.Welford.create (); on = t.on })
  with
  | I_summary s -> s
  | other -> collision name other "summary"

let attach_histogram t ?(labels = []) name h =
  match register t ~name ~labels ~make:(fun () -> I_histo { Histo.h; on = t.on }) with
  | I_histo _ -> ()
  | other -> collision name other "histogram"

type value =
  | Counter_v of int
  | Gauge_v of { last : int; max : int; min : int }
  | Histo_v of { count : int; mean : float; p50 : float; p99 : float; max : float }
  | Summary_v of { count : int; mean : float; std : float; min : float; max : float }

type sample = { name : string; labels : labels; value : value }

(* Exported floats must be finite and deterministic: empty series report
   zeros rather than nan/infinity. *)
let finite x = if Float.is_nan x || x = infinity || x = neg_infinity then 0. else x

let value_of = function
  | I_counter c -> Counter_v c.Counter.v
  | I_gauge g -> Gauge_v { last = g.Gauge.v; max = Gauge.max_seen g; min = Gauge.min_seen g }
  | I_histo { Histo.h; _ } ->
      let count = Stats.Histogram.count h in
      if count = 0 then Histo_v { count = 0; mean = 0.; p50 = 0.; p99 = 0.; max = 0. }
      else
        Histo_v
          {
            count;
            mean = finite (Stats.Histogram.mean h);
            p50 = finite (Stats.Histogram.percentile h 0.5);
            p99 = finite (Stats.Histogram.percentile h 0.99);
            max = finite (Stats.Histogram.max_seen h);
          }
  | I_summary { Summary.w; _ } ->
      let count = Stats.Welford.count w in
      if count = 0 then Summary_v { count = 0; mean = 0.; std = 0.; min = 0.; max = 0. }
      else
        Summary_v
          {
            count;
            mean = finite (Stats.Welford.mean w);
            std = finite (Stats.Welford.std w);
            min = finite (Stats.Welford.min w);
            max = finite (Stats.Welford.max w);
          }

let compare_labels a b = compare a b

let snapshot t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.sort (fun a b ->
         match String.compare a.m_name b.m_name with
         | 0 -> compare_labels a.m_labels b.m_labels
         | c -> c)
  |> List.map (fun m -> { name = m.m_name; labels = m.m_labels; value = value_of m.instrument })

let cardinality t = Hashtbl.length t.tbl

let find_value t ?(labels = []) name =
  let k = key name (canonical labels) in
  Option.map (fun m -> value_of m.instrument) (Hashtbl.find_opt t.tbl k)

(* --- export --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x = Printf.sprintf "%.17g" (finite x)

let sample_json buf { name; labels; value } =
  Buffer.add_string buf "    { \"name\": \"";
  Buffer.add_string buf (json_escape name);
  Buffer.add_string buf "\", \"labels\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf " \"%s\": \"%s\"" (json_escape k) (json_escape v)))
    labels;
  if labels <> [] then Buffer.add_char buf ' ';
  Buffer.add_string buf "}, ";
  (match value with
  | Counter_v v -> Buffer.add_string buf (Printf.sprintf "\"kind\": \"counter\", \"value\": %d" v)
  | Gauge_v { last; max; min } ->
      Buffer.add_string buf
        (Printf.sprintf "\"kind\": \"gauge\", \"value\": %d, \"max\": %d, \"min\": %d" last max min)
  | Histo_v { count; mean; p50; p99; max } ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"kind\": \"histogram\", \"count\": %d, \"mean\": %s, \"p50\": %s, \"p99\": %s, \
            \"max\": %s"
           count (json_float mean) (json_float p50) (json_float p99) (json_float max))
  | Summary_v { count; mean; std; min; max } ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"kind\": \"summary\", \"count\": %d, \"mean\": %s, \"std\": %s, \"min\": %s, \
            \"max\": %s"
           count (json_float mean) (json_float std) (json_float min) (json_float max)));
  Buffer.add_string buf " }"

let samples_to_json samples =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"metrics\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      sample_json buf s)
    samples;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let to_json t = samples_to_json (snapshot t)

(* Merging several registries (one per simulation shard) must be
   deterministic and shard-count-independent: the union is re-sorted by
   (name, labels) exactly as [snapshot] sorts a single registry, so a
   sequential run's [to_json] and a sharded run's [merged_json] are
   byte-comparable. Series are required to be disjoint — two shards
   exporting the same (name, labels) pair means a partitioning bug, not
   something to silently sum. *)
let merged_snapshot regs =
  let samples =
    List.concat_map snapshot regs
    |> List.sort (fun a b ->
           match String.compare a.name b.name with
           | 0 -> compare_labels a.labels b.labels
           | c -> c)
  in
  let rec check = function
    | a :: (b : sample) :: _ when a.name = b.name && a.labels = b.labels ->
        invalid_arg
          (Printf.sprintf "Metrics.merged_snapshot: series %S registered by several registries"
             a.name)
    | _ :: rest -> check rest
    | [] -> ()
  in
  check samples;
  samples

let merged_json regs = samples_to_json (merged_snapshot regs)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let samples = snapshot t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "name,labels,kind,value,count,mean,p50,p99,min,max\n";
  List.iter
    (fun { name; labels; value } ->
      let labels_s =
        String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      in
      let row =
        match value with
        | Counter_v v ->
            [ "counter"; string_of_int v; ""; ""; ""; ""; ""; "" ]
        | Gauge_v { last; max; min } ->
            [ "gauge"; string_of_int last; ""; ""; ""; ""; string_of_int min; string_of_int max ]
        | Histo_v { count; mean; p50; p99; max } ->
            [
              "histogram";
              "";
              string_of_int count;
              json_float mean;
              json_float p50;
              json_float p99;
              "";
              json_float max;
            ]
        | Summary_v { count; mean; std; min; max } ->
            [
              "summary";
              "";
              string_of_int count;
              json_float mean;
              json_float std;
              "";
              json_float min;
              json_float max;
            ]
      in
      Buffer.add_string buf
        (String.concat "," (csv_escape name :: csv_escape labels_s :: row));
      Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf

let write_string ~path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let write_json t ~path = write_string ~path (to_json t)
let write_csv t ~path = write_string ~path (to_csv t)

let pp ppf t =
  List.iter
    (fun { name; labels; value } ->
      let labels_s =
        if labels = [] then ""
        else
          "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels) ^ "}"
      in
      match value with
      | Counter_v v -> Format.fprintf ppf "%s%s = %d@." name labels_s v
      | Gauge_v { last; max; min } ->
          Format.fprintf ppf "%s%s = %d (min %d, max %d)@." name labels_s last min max
      | Histo_v { count; mean; p50; p99; max } ->
          Format.fprintf ppf "%s%s: n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g@." name labels_s
            count mean p50 p99 max
      | Summary_v { count; mean; std; min; max } ->
          Format.fprintf ppf "%s%s: n=%d mean=%.4g std=%.4g min=%.4g max=%.4g@." name labels_s
            count mean std min max)
    (snapshot t)
