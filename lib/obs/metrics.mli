(** Simulator-wide metrics registry.

    Components register typed instruments — monotonic {!Counter}s,
    {!Gauge}s, {!Histo}grams (backed by {!Stats.Histogram}) and
    {!Summary} series (backed by {!Stats.Welford}) — identified by a
    name plus a label set (component, switch, port, event class, ...).
    Experiments and the CLI take a {!snapshot} and export it as JSON or
    CSV.

    Recording is a no-op while the registry is {!disable}d: every
    instrument shares the registry's enabled flag and checks it with a
    single load-and-branch, so an instrumented hot path costs nothing
    measurable when observability is off (the bench harness proves it
    on the event-dispatch kernel).

    Registration is idempotent: asking twice for the same
    (name, labels) pair returns the same instrument, so two components
    that agree on a series share it. Asking for the same pair with a
    different instrument kind is a label collision and raises
    [Invalid_argument]. Label order does not matter — labels are
    canonicalised by sorting on key. *)

type t

type labels = (string * string) list

val create : ?enabled:bool -> unit -> t
(** A fresh registry, enabled by default. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val on_ref : t -> bool ref
(** The registry's shared enabled flag itself. Hot paths that guard a
    whole block of instrument updates (rather than one instrument) can
    cache this ref once and test it with a single load — cheaper than
    calling {!is_enabled} through a module boundary per event. The ref
    tracks {!enable}/{!disable} live; never write to it directly. *)

(** {1 Instruments} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit

  val set : t -> int -> unit
  (** For components that keep their own native counters and export the
      absolute value at snapshot time (idempotent, unlike {!add}). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  (** Record the current level; min/max watermarks update alongside. *)

  val add : t -> int -> unit
  val value : t -> int

  val max_seen : t -> int
  (** High-water mark of all {!set} values (0 before any set). *)

  val min_seen : t -> int
end

module Histo : sig
  type t

  val observe : t -> float -> unit
  val stats : t -> Stats.Histogram.t
end

module Summary : sig
  type t

  val observe : t -> float -> unit
  val stats : t -> Stats.Welford.t
end

val counter : t -> ?labels:labels -> string -> Counter.t
val gauge : t -> ?labels:labels -> string -> Gauge.t

val histogram : t -> ?labels:labels -> ?max_exponent:int -> string -> Histo.t
(** Log2-bucketed (default [max_exponent] 40), suiting long-tailed
    quantities (cycles, nanoseconds, bytes). *)

val summary : t -> ?labels:labels -> string -> Summary.t

val attach_histogram : t -> ?labels:labels -> string -> Stats.Histogram.t -> unit
(** Expose a histogram a component already maintains (e.g. register
    staleness) under the registry's namespace. The component keeps
    recording into it directly; snapshots read it live. Attaching the
    same series twice keeps the first attachment. *)

(** {1 Snapshots and export} *)

type value =
  | Counter_v of int
  | Gauge_v of { last : int; max : int; min : int }
  | Histo_v of { count : int; mean : float; p50 : float; p99 : float; max : float }
  | Summary_v of { count : int; mean : float; std : float; min : float; max : float }

type sample = { name : string; labels : labels; value : value }

val snapshot : t -> sample list
(** Deterministic: sorted by (name, labels), independent of
    registration order. *)

val cardinality : t -> int
(** Number of registered series. *)

val merged_snapshot : t list -> sample list
(** Union of the registries' snapshots re-sorted by (name, labels) —
    the deterministic merge of per-shard registries from a partitioned
    simulation. The series sets must be disjoint (shards own disjoint
    switches); a (name, labels) pair appearing in two registries raises
    [Invalid_argument]. [merged_snapshot [r]] equals [snapshot r]. *)

val merged_json : t list -> string
(** {!merged_snapshot} rendered exactly as {!to_json} renders a single
    registry, so a sequential run's snapshot and a sharded run's merged
    snapshot are byte-comparable. *)

val find_value : t -> ?labels:labels -> string -> value option

val to_json : t -> string
(** The whole snapshot as a JSON document
    [{ "metrics": [ {name; labels; kind; ...fields}; ... ] }]. *)

val to_csv : t -> string
(** One row per series:
    [name,labels,kind,value,count,mean,p50,p99,min,max]. *)

val write_json : t -> path:string -> unit
val write_csv : t -> path:string -> unit
val pp : Format.formatter -> t -> unit
