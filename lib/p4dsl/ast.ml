type position = { line : int; col : int }
type typ = Bit of int | Bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr
  | Concat
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | BitNot | Neg

type expr =
  | Int of int
  | Bool_lit of bool
  | String_lit of string
  | Path of string list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list

type lvalue = string list

type stmt =
  | Declare of { typ : typ; name : string; init : expr option; pos : position }
  | Assign of { lvalue : lvalue; expr : expr; pos : position }
  | If of { cond : expr; then_ : stmt list; else_ : stmt list; pos : position }
  | Method_call of { target : string; meth : string; args : expr list; pos : position }
  | Builtin_call of { name : string; args : expr list; pos : position }

type efsm_transition = {
  t_from : int;
  t_guard : expr option;
  t_next : int;
  t_actions : (string * expr) list;
  t_pos : position;
}

type decl =
  | Shared_register_decl of { width : int; entries : int; name : string; pos : position }
  | Register_decl of { width : int; entries : int; name : string; pos : position }
  | Const_decl of { name : string; value : int; pos : position }
  | Timer_decl of { name : string; period_us : int; pos : position }
  | Efsm_decl of {
      name : string;
      entries : int;
      nregs : int;
      timeout_us : int option;
      transitions : efsm_transition list;
      pos : position;
    }
  | Pattern_decl of {
      name : string;
      entries : int;
      tick_us : int option;
      timeout_us : int option;
      expr : expr;
      pos : position;
    }
  | Control_decl of { name : string; body : stmt list; pos : position }

type program = decl list

let pp_typ ppf = function
  | Bit n -> Format.fprintf ppf "bit<%d>" n
  | Bool -> Format.pp_print_string ppf "bool"

let control_names program =
  List.filter_map
    (function Control_decl { name; _ } -> Some name | _ -> None)
    program
