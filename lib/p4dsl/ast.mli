(** Abstract syntax of the embedded P4 subset.

    The subset covers what the paper's event-driven programs need —
    §2's [microburst.p4] runs nearly verbatim (see the test suite):
    register externs shared between controls, per-event [control]
    blocks with an [apply] body, bit<N> locals, arithmetic /
    comparison / concatenation expressions, extern method calls
    ([reg.read]/[reg.write]/[reg.add]), and the architecture builtins
    ([hash], [forward], [drop], [recirculate], [multicast], [mark],
    [emit_user], [notify]). *)

type position = { line : int; col : int }

type typ = Bit of int  (** [bit<N>], N <= 62 *) | Bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr
  | Concat  (** [++], width-aware concatenation *)
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | BitNot | Neg

type expr =
  | Int of int
  | Bool_lit of bool
  | String_lit of string
  | Path of string list  (** [x], [meta.flowID], [hdr.ip.src] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** value-returning builtins, e.g. [now()], [max(a,b)] *)

type lvalue = string list

type stmt =
  | Declare of { typ : typ; name : string; init : expr option; pos : position }
  | Assign of { lvalue : lvalue; expr : expr; pos : position }
  | If of { cond : expr; then_ : stmt list; else_ : stmt list; pos : position }
  | Method_call of { target : string; meth : string; args : expr list; pos : position }
      (** [reg.read(i, dst)], [reg.write(i, v)], [reg.add(i, delta)] *)
  | Builtin_call of { name : string; args : expr list; pos : position }
      (** [forward(p)], [drop()], [hash(e, dst)], [notify("...")] ... *)

type efsm_transition = {
  t_from : int;
  t_guard : expr option;  (** [None] = unconditional *)
  t_next : int;
  t_actions : (string * expr) list;  (** register-name, update expression *)
  t_pos : position;
}
(** One [on FROM when GUARD => NEXT { rN = e; ... }] clause. Guard and
    action expressions are restricted at load time to what the
    {!Pisa.Efsm} extern can execute (consts, [state], [in], [rN],
    comparisons, [&&]/[||], [+]/[-], [min]/[max]/[sat_add]/[sat_sub]). *)

(** Top-level declarations. *)
type decl =
  | Shared_register_decl of { width : int; entries : int; name : string; pos : position }
      (** [shared_register<bit<32>>(1024) name;] *)
  | Register_decl of { width : int; entries : int; name : string; pos : position }
      (** [register<bit<32>>(64) name;] — plain single-threaded state *)
  | Const_decl of { name : string; value : int; pos : position }
  | Timer_decl of { name : string; period_us : int; pos : position }
      (** [timer(100) tick;] — a periodic timer, period in microseconds *)
  | Efsm_decl of {
      name : string;
      entries : int;
      nregs : int;
      timeout_us : int option;
      transitions : efsm_transition list;
      pos : position;
    }
      (** [efsm(1024) conn { regs 2; timeout 500; on 0 when in == 1 => 1 { r0 = 1; } ... }]
          — a per-flow EFSM extern; controls drive it with
          [conn.step(key, input, dst)]. *)
  | Pattern_decl of {
      name : string;
      entries : int;
      tick_us : int option;  (** detector tick period; default 10 µs *)
      timeout_us : int option;
      expr : expr;
      pos : position;
    }
      (** [pattern(1024) flood { tick 10; timeout 200;
          match within(100, count(16, ingress_packet(1, 1))); }]
          — a complex-event pattern compiled onto the EFSM extern
          ({!Cep.Compile}). The match expression reuses the ordinary
          expression grammar: [seq(...)], [conj(...)], [disj(...)],
          [count(n, p)], [within(us, p)] and class atoms
          ([ingress_packet], [buffer_overflow], ...) optionally
          restricted to an attribute interval [cls(lo)] / [cls(lo, hi)].
          Controls drive it with [flood.step(key, attr, matched)];
          [matched] reads 1 exactly when that event completed the
          pattern for [key]. *)
  | Control_decl of { name : string; body : stmt list; pos : position }
      (** [control Name(...) { ... apply { body } }]; parameters are
          accepted and ignored (the architecture supplies the
          environment) *)

type program = decl list

val pp_typ : Format.formatter -> typ -> unit
val control_names : program -> string list
