open Ast

exception Runtime_error of string * Ast.position option

type env = {
  consts : (string, int) Hashtbl.t;
  locals : (string, local) Hashtbl.t;
  get_field : string list -> Ast.position -> int;
  set_field : string list -> int -> Ast.position -> unit;
  reg_read : target:string -> index:int -> Ast.position -> int;
  reg_write : target:string -> index:int -> value:int -> Ast.position -> unit;
  reg_add : target:string -> index:int -> delta:int -> Ast.position -> unit;
  builtin : name:string -> args:arg list -> Ast.position -> unit;
  func : name:string -> args:int list -> Ast.position -> int;
  efsm_step : target:string -> key:int -> input:int -> Ast.position -> int;
}

and local = { mutable value : int; mask : int }
and arg = Num of int | Str of string | Dest of Ast.lvalue

let err ?pos msg = raise (Runtime_error (msg, pos))

let mask_of_typ = function
  | Bit n when n >= 62 -> max_int
  | Bit n -> (1 lsl n) - 1
  | Bool -> 1

let bool_of_int v = v <> 0
let int_of_bool b = if b then 1 else 0

let rec eval_expr env expr =
  match expr with
  | Int n -> n
  | Bool_lit b -> int_of_bool b
  | String_lit _ -> err "a string is not a value in this context"
  | Path [ x ] when Hashtbl.mem env.locals x -> (Hashtbl.find env.locals x).value
  | Path [ x ] when Hashtbl.mem env.consts x -> Hashtbl.find env.consts x
  | Path p -> env.get_field p { line = 0; col = 0 }
  | Unop (Not, e) -> int_of_bool (not (bool_of_int (eval_expr env e)))
  | Unop (BitNot, e) -> lnot (eval_expr env e) land max_int
  | Unop (Neg, e) -> -eval_expr env e
  | Binop (And, a, b) ->
      int_of_bool (bool_of_int (eval_expr env a) && bool_of_int (eval_expr env b))
  | Binop (Or, a, b) ->
      int_of_bool (bool_of_int (eval_expr env a) || bool_of_int (eval_expr env b))
  | Binop (op, a, b) -> (
      let x = eval_expr env a and y = eval_expr env b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> if y = 0 then err "division by zero" else x / y
      | Mod -> if y = 0 then err "modulo by zero" else x mod y
      | BitAnd -> x land y
      | BitOr -> x lor y
      | BitXor -> x lxor y
      | Shl -> (x lsl min 61 y) land max_int
      | Shr -> x lsr min 61 y
      | Concat -> ((x lsl 32) lor (y land 0xffffffff)) land max_int
      | Eq -> int_of_bool (x = y)
      | Neq -> int_of_bool (x <> y)
      | Lt -> int_of_bool (x < y)
      | Le -> int_of_bool (x <= y)
      | Gt -> int_of_bool (x > y)
      | Ge -> int_of_bool (x >= y)
      | And | Or -> assert false)
  | Call (name, args) ->
      let vals = List.map (eval_expr env) args in
      env.func ~name ~args:vals { line = 0; col = 0 }

let assign env lvalue v pos =
  match lvalue with
  | [ x ] when Hashtbl.mem env.locals x ->
      let l = Hashtbl.find env.locals x in
      l.value <- v land l.mask
  | [ x ] when Hashtbl.mem env.consts x ->
      err ~pos (Printf.sprintf "cannot assign to constant %s" x)
  | p -> env.set_field p v pos

let rec exec_stmt env stmt =
  match stmt with
  | Declare { typ; name; init; pos } ->
      if Hashtbl.mem env.locals name then
        err ~pos (Printf.sprintf "duplicate local %s" name);
      let mask = mask_of_typ typ in
      let value = match init with None -> 0 | Some e -> eval_expr env e land mask in
      Hashtbl.replace env.locals name { value; mask }
  | Assign { lvalue; expr; pos } -> assign env lvalue (eval_expr env expr) pos
  | If { cond; then_; else_; _ } ->
      if bool_of_int (eval_expr env cond) then exec_block env then_ else exec_block env else_
  | Method_call { target; meth; args; pos } -> (
      match (meth, args) with
      | "read", [ idx; Path dst ] ->
          let v = env.reg_read ~target ~index:(eval_expr env idx) pos in
          assign env dst v pos
      | "read", _ -> err ~pos "read expects (index, destination)"
      | "write", [ idx; v ] ->
          env.reg_write ~target ~index:(eval_expr env idx) ~value:(eval_expr env v) pos
      | "write", _ -> err ~pos "write expects (index, value)"
      | "add", [ idx; d ] ->
          env.reg_add ~target ~index:(eval_expr env idx) ~delta:(eval_expr env d) pos
      | "add", _ -> err ~pos "add expects (index, delta)"
      | "step", [ k; inp; Path dst ] ->
          let v =
            env.efsm_step ~target ~key:(eval_expr env k) ~input:(eval_expr env inp) pos
          in
          assign env dst v pos
      | "step", [ k; inp ] ->
          ignore (env.efsm_step ~target ~key:(eval_expr env k) ~input:(eval_expr env inp) pos)
      | "step", _ -> err ~pos "step expects (key, input) or (key, input, destination)"
      | m, _ -> err ~pos (Printf.sprintf "unknown register method %s" m))
  | Builtin_call { name; args; pos } ->
      let to_arg = function
        | String_lit s -> Str s
        | e -> Num (eval_expr env e)
      in
      (* For hash(data, dst) only the last argument is a destination. *)
      let args =
        match (name, args) with
        | "hash", [ data; Path dst ] -> [ Num (eval_expr env data); Dest dst ]
        | "hash", _ -> err ~pos "hash expects (data, destination)"
        | _ -> List.map to_arg args
      in
      env.builtin ~name ~args pos

and exec_block env stmts = List.iter (exec_stmt env) stmts
