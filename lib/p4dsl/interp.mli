(** Evaluator for the P4 subset.

    The loader builds an {!env} per handler invocation: dotted paths
    resolve through [get_field]/[set_field] (the event's metadata),
    register method calls go through [reg_read]/[reg_write]/[reg_add],
    and effect builtins ([forward], [drop], [hash], ...) through
    [builtin]. Locals live in the environment and are width-masked on
    every assignment.

    Semantics notes (subset limitations, documented rather than
    silent): integer ops are on 62-bit values; [a ++ b] concatenates
    with the right operand taken as 32 bits ([a lsl 32 | b land
    0xffffffff]) — wide enough for the paper's [ip.src ++ ip.dst];
    division/modulo by zero raise {!Runtime_error}. *)

exception Runtime_error of string * Ast.position option

type env = {
  consts : (string, int) Hashtbl.t;
  locals : (string, local) Hashtbl.t;
  get_field : string list -> Ast.position -> int;
  set_field : string list -> int -> Ast.position -> unit;
  reg_read : target:string -> index:int -> Ast.position -> int;
  reg_write : target:string -> index:int -> value:int -> Ast.position -> unit;
  reg_add : target:string -> index:int -> delta:int -> Ast.position -> unit;
  builtin : name:string -> args:arg list -> Ast.position -> unit;
  func : name:string -> args:int list -> Ast.position -> int;
  efsm_step : target:string -> key:int -> input:int -> Ast.position -> int;
      (** [efsm.step(key, input)] / [efsm.step(key, input, dst)]:
          drive the named EFSM extern one transition for [key],
          returning the post-transition state. *)
}

and local = { mutable value : int; mask : int }

and arg = Num of int | Str of string | Dest of Ast.lvalue
    (** [Dest]: an out-parameter, e.g. the second argument of
        [hash(data, dst)]. *)

val mask_of_typ : Ast.typ -> int
val eval_expr : env -> Ast.expr -> int
val exec_block : env -> Ast.stmt list -> unit
val assign : env -> Ast.lvalue -> int -> Ast.position -> unit
(** Store into a local or a writable field. *)
